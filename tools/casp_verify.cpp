// casp_verify: schedule-exploration driver for the vmpi runtime.
//
// Sweeps the SPMD corpus (src/vmpi/sched_corpus.*) across deterministic
// schedules — seeded-random plus optional CHESS-style bounded-systematic —
// and, optionally, fault seeds. Known-bug programs must be flagged with
// their expected diagnosis and every flag carries a schedule string that
// `--replay` reproduces exactly; good programs must stay clean on every
// schedule (a flag there is an analyzer false positive and fails the run).
//
//   casp_verify                          verify the whole corpus
//   casp_verify crossed_tags             verify one program
//   casp_verify --list                   list corpus programs
//   casp_verify --replay=<string> NAME   re-run one schedule, print report
//
// This is check.sh stage (h)'s workhorse; exit 0 means every expectation
// held within the schedule budget.

#ifndef CASP_VMPI_SCHED
#include <cstdio>
int main() {
  std::fprintf(stderr,
               "casp_verify: built without CASP_VMPI_SCHED; reconfigure "
               "with -DCASP_VMPI_SCHED=ON\n");
  return 2;
}
#else

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "vmpi/sched_corpus.hpp"
#include "vmpi/sched_explore.hpp"

namespace {

using casp::vmpi::ExploreOptions;
using casp::vmpi::ExploreResult;
using casp::vmpi::FaultPlan;
using casp::vmpi::SchedPlan;
using casp::vmpi::ScheduleOutcome;

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: casp_verify [options] [program ...]\n"
      "\n"
      "Explores vmpi schedules over the SPMD corpus. With no programs, the\n"
      "whole corpus runs: known-bug programs must be flagged with their\n"
      "expected diagnosis, good programs must stay clean on every schedule.\n"
      "\n"
      "options:\n"
      "  --list                 list corpus programs and exit\n"
      "  --schedules=N          seeded-random schedules per program "
      "(default 32)\n"
      "  --seed=N               first random seed (default 1)\n"
      "  --systematic           add bounded-systematic DFS on top\n"
      "  --preemption-bound=N   systematic preemption bound (default 2)\n"
      "  --max-schedules=N      total schedule budget per program "
      "(default 64)\n"
      "  --faults=SPEC          FaultPlan spec (CASP_VMPI_FAULTS grammar)\n"
      "  --fault-seeds=A,B,..   rerun every schedule per fault seed\n"
      "  --replay=STRING        replay one schedule (needs exactly one\n"
      "                         program); STRING is a schedule string,\n"
      "                         \"seed=N\", or \"replay=<string>\"\n"
      "  -v, --verbose          print every flagged outcome, not just the\n"
      "                         first\n");
}

bool parse_int_opt(const char* arg, const char* name, long* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  char* end = nullptr;
  const long v = std::strtol(arg + n + 1, &end, 10);
  if (end == arg + n + 1 || *end != '\0') {
    std::fprintf(stderr, "casp_verify: bad value in \"%s\"\n", arg);
    std::exit(2);
  }
  *out = v;
  return true;
}

std::vector<std::uint64_t> parse_seed_list(const std::string& spec) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) out.push_back(std::strtoull(item.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

void print_outcome(const ScheduleOutcome& o, const char* indent) {
  std::printf("%sschedule: %s\n", indent, o.schedule.c_str());
  if (o.fault_seed != 0)
    std::printf("%sfault seed: %llu\n", indent,
                static_cast<unsigned long long>(o.fault_seed));
  if (!o.failure_kind.empty())
    std::printf("%sfailure [%s]: %s\n", indent, o.failure_kind.c_str(),
                o.failure_what.c_str());
  for (const casp::vmpi::SchedFinding& f : o.findings)
    std::printf("%sfinding [%s] rank %d: %s\n", indent, f.kind.c_str(),
                f.rank, f.detail.c_str());
  std::printf("%sreplay: CASP_VMPI_SCHED=\"replay=%s\"\n", indent,
              o.schedule.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool verbose = false;
  bool systematic = false;
  long schedules = 32;
  long seed = 1;
  long preemption_bound = 2;
  long max_schedules = 64;
  std::optional<FaultPlan> faults;
  std::vector<std::uint64_t> fault_seeds;
  std::string replay;
  std::vector<std::string> names;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(stdout);
      return 0;
    } else if (std::strcmp(a, "--list") == 0) {
      list = true;
    } else if (std::strcmp(a, "--systematic") == 0) {
      systematic = true;
    } else if (std::strcmp(a, "-v") == 0 || std::strcmp(a, "--verbose") == 0) {
      verbose = true;
    } else if (parse_int_opt(a, "--schedules", &schedules) ||
               parse_int_opt(a, "--seed", &seed) ||
               parse_int_opt(a, "--preemption-bound", &preemption_bound) ||
               parse_int_opt(a, "--max-schedules", &max_schedules)) {
      // parsed in the condition
    } else if (std::strncmp(a, "--faults=", 9) == 0) {
      faults = FaultPlan::parse(a + 9);
    } else if (std::strncmp(a, "--fault-seeds=", 14) == 0) {
      fault_seeds = parse_seed_list(a + 14);
    } else if (std::strncmp(a, "--replay=", 9) == 0) {
      replay = a + 9;
    } else if (a[0] == '-') {
      std::fprintf(stderr, "casp_verify: unknown option \"%s\"\n", a);
      usage(stderr);
      return 2;
    } else {
      names.push_back(a);
    }
  }

  try {
    if (list) {
      for (const auto& p : casp::vmpi::corpus::programs())
        std::printf("%-22s p=%d  %s%s\n", p.name.c_str(), p.size,
                    p.buggy ? "buggy: expects " : "good",
                    p.expected.c_str());
      return 0;
    }

    if (!replay.empty()) {
      if (names.size() != 1) {
        std::fprintf(stderr,
                     "casp_verify: --replay needs exactly one program name\n");
        return 2;
      }
      const casp::vmpi::corpus::Program p =
          casp::vmpi::corpus::find(names[0]);
      const SchedPlan plan = SchedPlan::parse(replay);
      const ScheduleOutcome o = casp::vmpi::run_schedule(
          p.size, p.body, plan, faults, 0, p.deadline_ms);
      std::printf("%s under %s:\n", p.name.c_str(), plan.describe().c_str());
      print_outcome(o, "  ");
      return o.flagged() ? 1 : 0;
    }

    std::vector<casp::vmpi::corpus::Program> selected;
    if (names.empty()) {
      selected = casp::vmpi::corpus::programs();
    } else {
      for (const std::string& n : names)
        selected.push_back(casp::vmpi::corpus::find(n));
    }

    int failures = 0;
    for (const auto& p : selected) {
      ExploreOptions opt;
      opt.size = p.size;
      opt.random_schedules = static_cast<int>(schedules);
      opt.base_seed = static_cast<std::uint64_t>(seed);
      opt.systematic = systematic;
      opt.preemption_bound = static_cast<int>(preemption_bound);
      opt.max_schedules = static_cast<int>(max_schedules);
      opt.faults = faults;
      opt.fault_seeds = fault_seeds;
      opt.deadline_ms = p.deadline_ms;  // virtual-clock budget, if any
      const ExploreResult r = casp::vmpi::explore(p.body, opt);

      if (p.buggy) {
        const ScheduleOutcome* hit = r.first_with(p.expected);
        if (hit != nullptr) {
          std::printf("PASS %-22s flagged \"%s\" (%d schedules, %zu "
                      "flagged)\n",
                      p.name.c_str(), p.expected.c_str(), r.schedules_run,
                      r.flagged.size());
          print_outcome(*hit, "       ");
        } else {
          ++failures;
          std::printf("FAIL %-22s expected \"%s\" but %d schedules found "
                      "%zu other flag(s)\n",
                      p.name.c_str(), p.expected.c_str(), r.schedules_run,
                      r.flagged.size());
          for (const ScheduleOutcome& o : r.flagged) {
            print_outcome(o, "       ");
            if (!verbose) break;
          }
        }
      } else {
        if (r.clean()) {
          std::printf("PASS %-22s clean across %d schedules\n",
                      p.name.c_str(), r.schedules_run);
        } else {
          ++failures;
          std::printf("FAIL %-22s flagged %zu time(s) in %d schedules "
                      "(false positive)\n",
                      p.name.c_str(), r.flagged.size(), r.schedules_run);
          for (const ScheduleOutcome& o : r.flagged) {
            print_outcome(o, "       ");
            if (!verbose) break;
          }
        }
      }
    }
    if (failures != 0) {
      std::printf("casp_verify: %d corpus expectation(s) failed\n", failures);
      return 1;
    }
    std::printf("casp_verify: all %zu corpus expectations held\n",
                selected.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "casp_verify: %s\n", e.what());
    return 2;
  }
}

#endif  // CASP_VMPI_SCHED
