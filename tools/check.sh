#!/usr/bin/env bash
# Repo verification gate — run before merging. Exits nonzero on the first
# failure. Stages:
#   (a) static lint        tools/casp_lint.py (+ clang-tidy when installed)
#   (b) release            configure + build + full ctest
#   (c) thread sanitizer   configure + build + ctest -L tsan-safe
#   (d) address/UB san     configure + build + full ctest
#   (e) perf diff          rerun perf benches, tools/perf_diff.py vs the
#                          committed BENCH_*.json snapshots
#   (f) fault matrix       the Fault* suites under several CASP_FAULT_SEED
#                          values (deterministic fault-injection sweep)
#   (g) crash recovery     the Recovery* suites under several
#                          CASP_FAULT_SEED values (checkpoint/restart:
#                          crashed jobs must recover bit-identically)
#   (h) schedule sweep     casp-verify: the SPMD corpus across 32 seeded
#                          schedules plus fault seeds 1-3 — known bugs must
#                          be rediscovered with a replayable schedule, good
#                          programs must stay clean on every schedule
#   (i) service soak       spgemm_serve drains a mixed SpGEMM/MCL multi-
#                          tenant queue (one crashing tenant) twice on a
#                          resident pool; the per-job deterministic reports
#                          must be byte-identical across the two runs.
#                          Then a mixed-deadline queue drains at
#                          --concurrency 2 (EDF over disjoint 9-rank pool
#                          splits) twice plus once serially — all three
#                          report files must be byte-identical
#   (j) chaos soak         casp_chaos: >= 20 jobs from 3 tenants under
#                          sustained seeded faults (delays, transient sends,
#                          corruption, transient + permanent crashes, alloc
#                          faults, a deadline storm) — zero wedges,
#                          degraded-grid bit-identity, reconciled billing,
#                          double-drain determinism byte-compare; then the
#                          --churn membership storm (auto-rejoin, regrow,
#                          flapper quarantine) swept over seeds 1-3
#
# Usage: tools/check.sh [--skip-tsan] [--skip-asan] [--skip-perf]
#                       [--skip-faults] [--skip-recovery] [--skip-sched]
#                       [--skip-serve] [--skip-chaos]
# CASP_PERF_THRESHOLD tunes stage (e)'s allowed slowdown (default 0.25).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 2)
SKIP_TSAN=0
SKIP_ASAN=0
SKIP_PERF=0
SKIP_FAULTS=0
SKIP_RECOVERY=0
SKIP_SCHED=0
SKIP_SERVE=0
SKIP_CHAOS=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-perf) SKIP_PERF=1 ;;
    --skip-faults) SKIP_FAULTS=1 ;;
    --skip-recovery) SKIP_RECOVERY=1 ;;
    --skip-sched) SKIP_SCHED=1 ;;
    --skip-serve) SKIP_SERVE=1 ;;
    --skip-chaos) SKIP_CHAOS=1 ;;
    *) echo "usage: tools/check.sh [--skip-tsan] [--skip-asan] [--skip-perf] [--skip-faults] [--skip-recovery] [--skip-sched] [--skip-serve] [--skip-chaos]" >&2; exit 2 ;;
  esac
done

step() { printf '\n== %s ==\n' "$*"; }

step "(a) lint: tools/casp_lint.py"
python3 tools/casp_lint.py --root .

if command -v clang-tidy > /dev/null 2>&1; then
  step "(a) lint: clang-tidy (src/, config in .clang-tidy)"
  cmake --preset release -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  find src -name '*.cpp' -print0 |
    xargs -0 clang-tidy -p build/release --quiet
else
  echo "clang-tidy not installed — skipping (casp_lint covers the repo rules)"
fi

step "(b) release build + full test suite"
cmake --preset release
cmake --build --preset release -j "$JOBS"
ctest --test-dir build/release --output-on-failure -j "$JOBS"

if [ "$SKIP_TSAN" = 1 ]; then
  echo "skipping ThreadSanitizer stage (--skip-tsan)"
else
  step "(c) ThreadSanitizer build + ctest -L tsan-safe"
  cmake --preset tsan
  cmake --build --preset tsan -j "$JOBS"
  ctest --test-dir build/tsan -L tsan-safe --output-on-failure -j "$JOBS"
fi

if [ "$SKIP_ASAN" = 1 ]; then
  echo "skipping Address/UBSanitizer stage (--skip-asan)"
else
  step "(d) Address+UBSanitizer build + full test suite"
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$JOBS"
  ctest --test-dir build/asan-ubsan --output-on-failure -j "$JOBS"
fi

if [ "$SKIP_PERF" = 1 ]; then
  echo "skipping perf-diff stage (--skip-perf)"
else
  step "(e) perf diff vs committed BENCH_*.json snapshots"
  # The benches write their JSON into the cwd; run them in a scratch dir so
  # a passing check never touches the committed snapshots.
  PERF_DIR=$(mktemp -d)
  trap 'rm -rf "$PERF_DIR"' EXIT
  # perf_bench <bench-binary> <json-name> [extra perf_diff args...]
  # A regression must be *reproducible* to fail the gate: on a diff
  # failure the bench reruns (up to 3 attempts total) and only a
  # persistent slowdown fails. A real regression fails every attempt; a
  # scheduling-noise spike on this oversubscribed single core does not.
  perf_bench() {
    local bench="$1" json="$2"
    shift 2
    local attempt
    for attempt in 1 2 3; do
      (cd "$PERF_DIR" && "$OLDPWD/build/release/bench/$bench" > "$bench.log")
      if python3 tools/perf_diff.py --base "$json" \
           --fresh "$PERF_DIR/$json" "$@"; then
        return 0
      fi
      echo "-- $bench: diff failed (attempt $attempt/3), retrying"
    done
    echo "-- $bench: regression reproduced on all attempts" >&2
    return 1
  }
  perf_bench bench_micro_kernels BENCH_kernels.json
  # The abcast time band is wider: its μs-scale broadcast timings swing up
  # to ~1.8x against the run median on an oversubscribed single core
  # (measured over 12 runs), so 0.25 would flag pure scheduling noise.
  # The payload deep-copy comparison — the actual zero-copy guarantee —
  # stays exact regardless of the threshold.
  perf_bench bench_fig5_abcast_scaling BENCH_abcast.json \
    --threshold "${CASP_ABCAST_THRESHOLD:-1.0}"
  # Hook-site overhead: release builds must carry zero CASP_SCHED_EVENT
  # code. The bench's anchor-* ops have no hook sites and pin the
  # median-normalized ratio, so hook code leaking back into release
  # codegen fails the hook-laden ops here; deep-copy counts (the steal
  # and transport ops must stay copy-free) are compared exactly.
  perf_bench bench_sched_overhead BENCH_sched_overhead.json
  # Sparse A-exchange gate: the binary itself asserts >= 30% A-Bcast byte
  # savings and zero added deep copies (exit nonzero otherwise); perf_diff
  # then compares the snapshot. End-to-end SUMMA walls swing hard on an
  # oversubscribed core, so the time band is wide — the byte and copy
  # comparisons don't depend on it.
  perf_bench bench_sparse_exchange BENCH_sparse_exchange.json \
    --threshold "${CASP_SPARSE_THRESHOLD:-1.0}"
fi

if [ "$SKIP_FAULTS" = 1 ]; then
  echo "skipping fault-matrix stage (--skip-faults)"
else
  step "(f) fault matrix: Fault*/ElasticSvc suites across seeds"
  # Same binaries, different deterministic fault schedules. Every seed must
  # classify each injected fault (never hang — CTest timeouts bound it).
  # ElasticSvc moves the crashed rank / crash op with the seed too: each
  # seed kills a different rank and the elastic job must still finish
  # bit-identically on the survivor grid.
  for seed in 1 2 3; do
    echo "-- CASP_FAULT_SEED=$seed"
    CASP_FAULT_SEED=$seed ctest --test-dir build/release \
      -R '^Fault|^ElasticSvc' --output-on-failure -j "$JOBS"
  done
fi

if [ "$SKIP_RECOVERY" = 1 ]; then
  echo "skipping crash-recovery stage (--skip-recovery)"
else
  step "(g) crash recovery: Recovery* suites across seeds"
  # Checkpoint/restart sweep: each seed crashes a different rank schedule;
  # the supervised rerun must fast-forward from the newest valid snapshot
  # and reproduce the fault-free results bit-identically.
  for seed in 1 2 3; do
    echo "-- CASP_FAULT_SEED=$seed"
    CASP_FAULT_SEED=$seed ctest --test-dir build/release -R '^Recovery' \
      --output-on-failure -j "$JOBS"
  done
fi

if [ "$SKIP_SCHED" = 1 ]; then
  echo "skipping schedule-exploration stage (--skip-sched)"
else
  step "(h) schedule sweep: casp-verify corpus, 32 schedules x fault seeds 1-3"
  cmake --preset sched
  cmake --build --preset sched -j "$JOBS" --target casp_verify test_sched
  # Acceptance tests first (replay determinism, known-bug rediscovery with
  # exact replay), then the full sweep: 32 seeded schedules per program,
  # fault-free, plus a transient-send-failure plan swept over seeds 1-3 so
  # retry-loop interleavings get explored too.
  ctest --test-dir build/sched -R '^Sched' --output-on-failure -j "$JOBS"
  ./build/sched/tools/casp_verify --schedules=32 --systematic
  # The good programs additionally sweep a transient-send-failure plan:
  # retry-loop interleavings must stay clean too. (The buggy programs'
  # expectations are proven fault-free above — injected faults would only
  # add noise to what they're expected to find.)
  ./build/sched/tools/casp_verify --schedules=8 \
    --faults="send_fail=0.05" --fault-seeds=1,2,3 \
    bcast_tree pipeline_ibcast ckpt_consensus rebatch_consensus \
    sole_owner_handoff
fi

if [ "$SKIP_SERVE" = 1 ]; then
  echo "skipping service-soak stage (--skip-serve)"
else
  step "(i) service soak: deterministic multi-job queue, double-run byte-compare"
  # A mixed SpGEMM/MCL queue from three tenants on one resident pool: one
  # tenant injects a crash (supervised, must recover without taking the
  # pool down), one runs under a tight traffic quota (its second job must
  # be throttled while the others proceed). Drained twice; the per-job
  # deterministic reports must be byte-identical across the two runs.
  SERVE_DIR=$(mktemp -d)
  trap 'rm -rf "${PERF_DIR:-}" "$SERVE_DIR"' EXIT
  cat > "$SERVE_DIR/jobs.json" <<'EOF'
[
  {"tenant": "alice", "op": "spgemm",
   "a": {"kind": "er", "er": {"nrows": 56, "ncols": 56, "nnz_per_col": 3.0, "seed": 100}},
   "ranks": 4, "memory_bytes": 16777216},
  {"tenant": "alice", "op": "spgemm", "aat": true,
   "a": {"kind": "er", "er": {"nrows": 56, "ncols": 56, "nnz_per_col": 3.0, "seed": 101}},
   "ranks": 4},
  {"tenant": "bob", "op": "mcl", "priority": 2,
   "a": {"kind": "protein", "protein": {"n": 40, "seed": 200}},
   "ranks": 4, "mcl": {"max_iterations": 5}},
  {"tenant": "bob", "op": "mcl",
   "a": {"kind": "protein", "protein": {"n": 40, "seed": 201}},
   "ranks": 4, "mcl": {"max_iterations": 5}},
  {"tenant": "alice", "op": "triangle",
   "a": {"kind": "rmat", "rmat": {"scale": 6, "edge_factor": 4.0, "seed": 300}},
   "ranks": 4},
  {"tenant": "chaos", "op": "spgemm",
   "a": {"kind": "er", "er": {"nrows": 48, "ncols": 48, "nnz_per_col": 3.0, "seed": 400}},
   "ranks": 4, "fault_spec": "seed=1;crash_rank=2;crash_op=15", "max_restarts": 2}
]
EOF
  for pass in 1 2; do
    ./build/release/tools/spgemm_serve "$SERVE_DIR/jobs.json" \
      --quota 'bob:0:100000' \
      --reports "$SERVE_DIR/reports.$pass.json" \
      --tenant-reports "$SERVE_DIR/tenants.$pass.json" \
      --deterministic
  done
  cmp "$SERVE_DIR/reports.1.json" "$SERVE_DIR/reports.2.json"
  # The crashing tenant recovered (restarts billed) and bob's quota bit.
  grep -q '"restarts": 1' "$SERVE_DIR/reports.1.json"
  grep -q '"state": "throttled"' "$SERVE_DIR/reports.1.json"
  echo "service soak: reports byte-identical across runs"

  # Deadline-aware concurrent drain: a mixed-deadline 3-tenant queue on a
  # 9-rank pool with up to 2 jobs in flight on disjoint splits. EDF
  # ordering is exercised by the deadline_ms jobs (budgets generous enough
  # that the watchdog never fires); the supervised crash job recovers on
  # its own split. Drained twice at K=2 (byte-identical deterministic
  # reports) and once serially — the concurrent drain must reproduce the
  # serial drain's reports byte-for-byte, billing included.
  cat > "$SERVE_DIR/jobs_edf.json" <<'EOF'
[
  {"tenant": "alice", "op": "spgemm",
   "a": {"kind": "er", "er": {"nrows": 56, "ncols": 56, "nnz_per_col": 3.0, "seed": 100}},
   "ranks": 4, "memory_bytes": 16777216},
  {"tenant": "bob", "op": "mcl", "priority": 2,
   "a": {"kind": "protein", "protein": {"n": 40, "seed": 200}},
   "ranks": 4, "mcl": {"max_iterations": 5}},
  {"tenant": "chaos", "op": "spgemm", "deadline_ms": 60000,
   "a": {"kind": "er", "er": {"nrows": 48, "ncols": 48, "nnz_per_col": 3.0, "seed": 400}},
   "ranks": 4},
  {"tenant": "alice", "op": "spgemm", "deadline_ms": 120000, "priority": 2,
   "a": {"kind": "er", "er": {"nrows": 56, "ncols": 56, "nnz_per_col": 3.0, "seed": 101}},
   "ranks": 4},
  {"tenant": "bob", "op": "triangle",
   "a": {"kind": "rmat", "rmat": {"scale": 6, "edge_factor": 4.0, "seed": 300}},
   "ranks": 4},
  {"tenant": "chaos", "op": "spgemm",
   "a": {"kind": "er", "er": {"nrows": 48, "ncols": 48, "nnz_per_col": 3.0, "seed": 401}},
   "ranks": 4, "fault_spec": "seed=1;crash_rank=2;crash_op=15", "max_restarts": 2}
]
EOF
  for pass in 1 2; do
    ./build/release/tools/spgemm_serve "$SERVE_DIR/jobs_edf.json" \
      --pool-ranks 9 --concurrency 2 \
      --reports "$SERVE_DIR/edf.k2.$pass.json" --deterministic
  done
  cmp "$SERVE_DIR/edf.k2.1.json" "$SERVE_DIR/edf.k2.2.json"
  ./build/release/tools/spgemm_serve "$SERVE_DIR/jobs_edf.json" \
    --pool-ranks 9 --concurrency 1 \
    --reports "$SERVE_DIR/edf.serial.json" --deterministic
  cmp "$SERVE_DIR/edf.k2.1.json" "$SERVE_DIR/edf.serial.json"
  grep -q '"restarts": 1' "$SERVE_DIR/edf.k2.1.json"
  echo "concurrent drain: K=2 reports byte-identical to the serial drain"
fi

if [ "$SKIP_CHAOS" = 1 ]; then
  echo "skipping chaos-soak stage (--skip-chaos)"
else
  step "(j) chaos soak: casp_chaos, 24 jobs / 3 tenants under sustained faults"
  # The tool drains the chaos queue twice internally (double-drain
  # determinism) plus once fault-free (the bit-identity reference), and
  # exits nonzero on any violated gate: a wedged job, an unclassified
  # failure, a degraded elastic job whose product diverged, a tenant whose
  # billing does not reconcile, or reports that differ across drains.
  CHAOS_DIR=$(mktemp -d)
  trap 'rm -rf "${PERF_DIR:-}" "${SERVE_DIR:-}" "$CHAOS_DIR"' EXIT
  ./build/release/tools/casp_chaos --jobs 24 --tenants 3 \
    --seed "${CASP_FAULT_SEED:-1}" --ckpt-root "$CHAOS_DIR/ckpt" \
    --reports "$CHAOS_DIR/reports.json"
  # Membership-churn storm (DESIGN.md §5k): the same queue with
  # auto-rejoin — every permanent crash's replacement enters probation,
  # one seeded flapper corrupts its handshake on every attempt. Swept over
  # seeds 1-3 so the crash victim / flapping rank rotate: every seed must
  # show a regrown job, a quarantined flapper, zero wedges, and keep the
  # bit-identity + double-drain gates.
  for seed in 1 2 3; do
    echo "-- churn seed $seed"
    ./build/release/tools/casp_chaos --jobs 24 --tenants 3 --churn \
      --seed "$seed" --ckpt-root "$CHAOS_DIR/churn$seed"
  done
fi

step "all gates passed"
