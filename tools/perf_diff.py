#!/usr/bin/env python3
"""Compare a fresh bench run against a committed perf snapshot.

Usage:
  tools/perf_diff.py --base BENCH_kernels.json --fresh /tmp/BENCH_kernels.json
                     [--threshold 0.25] [--min-ns 1e5]

Both files are JSON arrays of {"op", "bytes", "ns", "copies"} records (the
format bench::JsonRecords writes). The comparison is *median-normalized*:
the snapshot may come from a different machine or load level, so a uniform
slowdown across every op is calibration, not regression. For each op we
compute ratio = fresh_ns / base_ns, take the median ratio over all
comparable ops, and flag an op only when its ratio exceeds
median * (1 + threshold) — i.e. it got slower *relative to its peers*.

Snapshot records may carry an optional "ns_max": the op's slowest time
observed across the runs that produced the snapshot. When present, the
op's limit is scaled by ns_max/ns, granting ops with measured run-to-run
noise exactly the headroom they demonstrated — an op fails only when it
is `threshold` slower (relative to peers) than anything seen while
snapshotting. Ops without "ns_max" keep the plain median band.

Payload deep-copy counts are deterministic (no normalization): any increase
of more than 0.5 copies/op is flagged — that is the zero-copy transport
regressing, not noise.

Ops below --min-ns in the snapshot are ignored for time comparisons (too
noisy); missing/extra ops produce warnings, not failures, so benches can
gain cases without invalidating old snapshots.

Exit status: 0 clean, 1 regression(s), 2 usage/IO error.
Environment: CASP_PERF_THRESHOLD overrides the default threshold (0.25).
"""

import argparse
import json
import os
import statistics
import sys


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, list):
        print(f"perf_diff: {path}: expected a JSON array", file=sys.stderr)
        sys.exit(2)
    records = {}
    for rec in data:
        if not isinstance(rec, dict) or "op" not in rec:
            print(f"perf_diff: {path}: malformed record {rec!r}",
                  file=sys.stderr)
            sys.exit(2)
        records[rec["op"]] = rec
    return records


def main():
    parser = argparse.ArgumentParser(
        description="diff a fresh bench run against a perf snapshot")
    parser.add_argument("--base", required=True,
                        help="committed snapshot JSON")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated JSON from the same bench")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("CASP_PERF_THRESHOLD", "0.25")),
        help="allowed slowdown over the median ratio (default 0.25, "
        "or $CASP_PERF_THRESHOLD)")
    parser.add_argument("--min-ns", type=float, default=1e5,
                        help="ignore ops faster than this in the snapshot "
                        "(default 1e5 ns)")
    args = parser.parse_args()

    base = load_records(args.base)
    fresh = load_records(args.fresh)

    for op in sorted(base.keys() - fresh.keys()):
        print(f"  warning: op disappeared from fresh run: {op}")
    for op in sorted(fresh.keys() - base.keys()):
        print(f"  warning: new op not in snapshot: {op}")

    common = sorted(base.keys() & fresh.keys())
    if not common:
        print("perf_diff: no common ops to compare", file=sys.stderr)
        sys.exit(2)

    ratios = {}
    noise = {}
    for op in common:
        b, f = base[op], fresh[op]
        if b.get("ns", 0) >= args.min_ns and f.get("ns", 0) > 0:
            ratios[op] = f["ns"] / b["ns"]
            noise[op] = max(1.0, b.get("ns_max", 0.0) / b["ns"])

    failures = []
    if ratios:
        median = statistics.median(ratios.values())
        limit = median * (1.0 + args.threshold)
        print(f"  {len(ratios)} timed ops, median fresh/base ratio "
              f"{median:.3f}, per-op limit {limit:.3f} "
              f"(x measured noise ceiling where recorded)")
        for op, ratio in sorted(ratios.items(), key=lambda kv: -kv[1]):
            op_limit = limit * noise[op]
            if ratio > op_limit:
                failures.append(
                    f"SLOWER  {op}: {base[op]['ns']:.0f} ns -> "
                    f"{fresh[op]['ns']:.0f} ns ({ratio:.2f}x, "
                    f"limit {op_limit:.2f}x)")
    else:
        print("  no ops above --min-ns; time comparison skipped")

    for op in common:
        b_copies = base[op].get("copies", 0.0)
        f_copies = fresh[op].get("copies", 0.0)
        if f_copies > b_copies + 0.5:
            failures.append(
                f"COPIES  {op}: {b_copies:.3f} -> {f_copies:.3f} "
                "payload deep copies/op")

    if failures:
        print(f"perf_diff: {len(failures)} regression(s) vs {args.base}:")
        for line in failures:
            print(f"  {line}")
        sys.exit(1)
    print(f"  ok: no regressions vs {args.base}")


if __name__ == "__main__":
    main()
