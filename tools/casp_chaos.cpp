// casp_chaos — sustained multi-tenant chaos soak against svc::Server.
//
// The ISSUE-9 acceptance driver: a generated queue of mixed-tenant jobs
// (SpGEMM / MCL / triangle count) drains on one resident 9-rank pool under
// sustained seeded faults — delays, transient sends, payload corruption,
// transient crashes, permanent crashes, alloc faults, and a deadline storm —
// and the tool asserts the service's survival contract:
//
//   1. zero wedges: every job reaches a terminal state (done or classified
//      failed); the injected deadline / always-corrupt / alloc jobs fail
//      with their expected kinds and nothing else hangs the pool;
//   2. the chaos actually bit: restarts happened, a permanent crash forced
//      at least one elastic job onto a degraded survivor grid, and the
//      payload checksum caught corruption;
//   3. surviving-output bit-identity: every done job's output equals the
//      fault-free run of the stripped spec (no faults, no deadline, no
//      checkpoints) on a fresh healthy server — tolerance 0.0. Elastic
//      jobs that finished on a shrunk grid use integer-valued inputs, so
//      the comparison is legitimate across grid shapes;
//   4. reconciled billing: per tenant, the sum of per-job billed logical
//      bytes equals the ledger's traffic_billed();
//   5. double-drain determinism: two independent servers fed the same specs
//      produce byte-identical deterministic per-job reports.
//
// --churn turns the soak into the ISSUE-10 membership storm: the server
// runs with auto_rejoin, so every permanent crash immediately requests
// re-join (kill -> replace -> probation), and the membership corrupt hook
// models one flapping replacement — the rank `seed % 9`, whose handshake
// echo is corrupted on every probation attempt. Extra gates:
//
//   6. at least one elastic job healed all the way: paused at a batch
//      boundary, re-admitted its crashed rank, and REGREW its grid
//      (recovery.regrown_to_ranks > regrown_from_ranks), still finishing
//      bit-identical to the fault-free reference under gate 3;
//   7. the flapping rank failed probation max_failures times and sits in
//      quarantine when the drain ends — and nothing else does.
//
// Usage:
//   casp_chaos [--jobs N] [--tenants T] [--seed S] [--churn]
//              [--ckpt-root DIR] [--reports FILE]
//
// Defaults: 24 jobs, 3 tenants, seed 1 (check.sh stage (j) sweeps seeds).
// Exit 0 when every gate holds, 1 on any violation, 2 on usage errors.
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "svc/server.hpp"

namespace {

using casp::Bytes;
using casp::Index;

int failures = 0;

/// Soak-style assertion: report and count, never abort — a later gate's
/// evidence is still worth printing after an earlier one fails.
void check(bool ok, const std::string& what) {
  if (ok) return;
  ++failures;
  std::cerr << "FAIL: " << what << "\n";
}

void usage() {
  std::cerr << "usage: casp_chaos [--jobs N] [--tenants T] [--seed S]\n"
               "                  [--churn] [--ckpt-root DIR] "
               "[--reports FILE]\n";
}

std::string tenant_name(int k) {
  static const char* kNamed[] = {"alice", "bob", "chaos"};
  if (k < 3) return kNamed[k];
  return "tenant" + std::to_string(k);
}

std::int64_t counter_sum(const casp::vmpi::RunResult& result,
                         const std::string& name) {
  std::int64_t total = 0;
  for (const casp::obs::Recorder& rec : result.recorders) {
    auto it = rec.counters().find(name);
    if (it != rec.counters().end()) total += it->second;
  }
  return total;
}

/// The generated queue plus the ids of the jobs whose outcome is pinned.
struct ChaosPlan {
  std::vector<casp::svc::JobSpec> specs;
  std::string deadline_id;  ///< must fail "deadline_exceeded" (empty = none)
  std::string corrupt_id;   ///< must fail "retry_exhausted" via checksum
  std::string alloc_id;     ///< must fail classified (alloc_fail=1.0)
  std::vector<std::string> perm_ids;  ///< elastic jobs with a permanent crash
};

/// Deterministic job mix for (jobs, tenants, seed). Two calls with the same
/// arguments build byte-identical specs except for ckpt_root, which must
/// differ per drain so the second drain cannot resume from the first one's
/// checkpoints. Shapes rotate mod 8:
///   0 clean SpGEMM · 1 AᵀA / hybrid kernel · 2 transient crash (supervised)
///   3 MCL + ckpt + transient crash · 4 corrupt / send_fail storm
///   5 triangle count under delay faults · 6 elastic 9-rank SpGEMM with
///   checkpoints (the first two occurrences add a permanent crash; later
///   ones run degraded from the start once the pool has dead ranks)
///   7 one-off specials: deadline storm, always-corrupt, alloc-fault, then
///   clean MCL.
ChaosPlan make_plan(int jobs, int tenants, std::uint64_t seed,
                    bool sched_active, const std::string& ckpt_root) {
  using casp::svc::JobOp;
  using casp::svc::JobSpec;
  using casp::svc::MatrixSource;
  ChaosPlan plan;
  for (int i = 0; i < jobs; ++i) {
    const int occ = i / 8;  // how many times this shape appeared before
    const std::uint64_t js = seed * 1000 + static_cast<std::uint64_t>(i);
    JobSpec s;
    s.job_id = "chaos-" + std::to_string(i);
    s.tenant = tenant_name(i % tenants);
    s.priority = i % 3;
    s.ranks = 4;
    switch (i % 8) {
      case 0:  // clean SpGEMM baseline
        s.a = MatrixSource::er_square(56, 3.0, js);
        break;
      case 1:  // A·Aᵀ on the prior-work kernel
        s.a = MatrixSource::er_square(48, 3.0, js);
        s.aat = true;
        s.kernel = "hybrid";
        break;
      case 2:  // transient crash, supervised recovery on the full grid
        s.a = MatrixSource::er_square(52, 3.0, js);
        s.fault_spec = "seed=" + std::to_string(js) +
                       ";crash_rank=" + std::to_string(i % 4) +
                       ";crash_op=" + std::to_string(12 + 3 * (occ % 4));
        s.max_restarts = 2;
        break;
      case 3:  // MCL with checkpoints; the relaunch may resume mid-iteration
        s.op = JobOp::kMcl;
        s.a = MatrixSource::protein_network(36, js);
        s.mcl.max_iterations = 6;
        s.ckpt_dir = ckpt_root + "/" + s.job_id;
        s.fault_spec = "seed=" + std::to_string(js) +
                       ";crash_rank=" + std::to_string(i % 4) +
                       ";crash_op=" + std::to_string(60 + 10 * (occ % 5));
        s.max_restarts = 2;
        break;
      case 4:  // seeded storms riding the transport retry ladder
        s.a = MatrixSource::er_square(52, 3.0, js);
        s.fault_spec = "seed=" + std::to_string(js) +
                       (occ % 2 == 0 ? ";corrupt_prob=0.05" : ";send_fail=0.04");
        s.max_restarts = 2;
        break;
      case 5:  // triangle count under delay faults (result unchanged)
        s.op = JobOp::kTriangleCount;
        s.a = MatrixSource::rmat_graph(6, 4.0, js);
        s.fault_spec = "seed=" + std::to_string(js) +
                       ";delay_us=40;delay_every=9;delay_rank=" +
                       std::to_string(i % 4);
        break;
      case 6:  // elastic full-grid SpGEMM; integer values so the degraded
               // grid's output stays bit-comparable across grid shapes
        s.a = MatrixSource::er_square(48, 3.0, js);
        s.a.er.random_values = false;
        s.ranks = 9;
        s.elastic = true;
        s.force_batches = 3;
        s.ckpt_dir = ckpt_root + "/" + s.job_id;
        s.max_restarts = 1;
        if (occ < 2) {
          s.fault_spec =
              "seed=" + std::to_string(js) + ";perm_crash_rank=" +
              std::to_string((seed + static_cast<std::uint64_t>(occ)) % 9) +
              ";perm_crash_op=" + std::to_string(20 + 6 * occ);
          plan.perm_ids.push_back(s.job_id);
        }
        break;
      case 7:
        if (occ == 0 && !sched_active) {
          // Deadline storm: 3 ms injected delay on every vmpi op makes the
          // 60 ms budget hopeless; the watchdog must cancel and classify.
          // (Deadlines are wall-clock; skipped under CASP_VMPI_SCHED.)
          s.a = MatrixSource::er_square(48, 3.0, js);
          s.fault_spec =
              "seed=" + std::to_string(js) + ";delay_us=3000;delay_every=1";
          s.deadline_ms = 60;
          plan.deadline_id = s.job_id;
        } else if (occ == 1) {
          // Every payload corrupted: the FNV-1a64 checksum must reject each
          // delivery until retries exhaust. Unsupervised on purpose — a
          // supervised attempt would disarm the storm and succeed.
          s.a = MatrixSource::er_square(48, 3.0, js);
          s.fault_spec = "seed=" + std::to_string(js) + ";corrupt_prob=1.0";
          plan.corrupt_id = s.job_id;
        } else if (occ == 2) {
          // Every tracked allocation fails against the declared budget.
          s.a = MatrixSource::er_square(48, 3.0, js);
          s.fault_spec = "seed=" + std::to_string(js) + ";alloc_fail=1.0";
          s.memory_bytes = Bytes{64} << 20;
          plan.alloc_id = s.job_id;
        } else {
          s.op = JobOp::kMcl;
          s.a = MatrixSource::protein_network(32, js);
          s.mcl.max_iterations = 5;
        }
        break;
    }
    plan.specs.push_back(std::move(s));
  }
  return plan;
}

/// Fault-free equivalent of a chaos spec: same work, same grid request,
/// no faults / deadline / checkpoints / elasticity. Run on a fresh healthy
/// server, its outputs are the bit-identity reference.
casp::svc::JobSpec stripped(casp::svc::JobSpec s) {
  s.fault_spec.clear();
  s.deadline_ms = 0;
  s.max_restarts = -1;
  s.ckpt_dir.clear();
  s.elastic = false;
  return s;
}

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  out << text << "\n";
  std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace casp;
  namespace fs = std::filesystem;
  int jobs = 24;
  int tenants = 3;
  std::uint64_t seed = 1;
  bool churn = false;
  std::string ckpt_root, reports_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--jobs") {
        jobs = std::stoi(next("--jobs"));
      } else if (arg == "--tenants") {
        tenants = std::stoi(next("--tenants"));
      } else if (arg == "--seed") {
        seed = static_cast<std::uint64_t>(std::stoull(next("--seed")));
      } else if (arg == "--churn") {
        churn = true;
      } else if (arg == "--ckpt-root") {
        ckpt_root = next("--ckpt-root");
      } else if (arg == "--reports") {
        reports_path = next("--reports");
      } else if (arg == "--help" || arg == "-h") {
        usage();
        return 0;
      } else {
        std::cerr << "unknown option " << arg << "\n";
        usage();
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return 2;
    }
  }
  if (jobs < 1 || tenants < 1) {
    std::cerr << "--jobs and --tenants must be >= 1\n";
    return 2;
  }
  if (jobs < 20)
    std::cout << "note: " << jobs
              << " jobs is below the stage (j) soak floor of 20\n";
  const bool sched_active = std::getenv("CASP_VMPI_SCHED") != nullptr;
  if (sched_active)
    std::cout << "note: CASP_VMPI_SCHED set — deadline job replaced "
                 "(wall-clock deadlines are not enforced under the "
                 "deterministic scheduler)\n";
  if (ckpt_root.empty())
    ckpt_root = (fs::temp_directory_path() /
                 ("casp_chaos-" + std::to_string(::getpid())))
                    .string();

  try {
    svc::ServerOptions server_opts;
    server_opts.pool_ranks = 9;
    // Membership storm: permanent crashes auto-request re-join, and the
    // rank `seed % 9` flaps — its probation handshake echo is corrupted on
    // every attempt, so it must end the drain quarantined. The fault plan
    // guarantees that rank is the first shape-6 job's crash victim, and the
    // second shape-6 victim (a different rank mod 9) re-joins cleanly and
    // lets its job regrow.
    const int flap_rank = static_cast<int>(seed % 9);
    if (churn) {
      server_opts.auto_rejoin = true;
      server_opts.membership.corrupt = [flap_rank](int rank, int) {
        return rank == flap_rank;
      };
    }

    // ---- Drain 1: the chaos queue whose outcomes we inspect. -------------
    ChaosPlan plan =
        make_plan(jobs, tenants, seed, sched_active, ckpt_root + "/drain0");
    svc::Server server(server_opts);
    std::vector<std::string> ids;
    for (const svc::JobSpec& spec : plan.specs) ids.push_back(server.submit(spec));
    server.drain();

    // Gate 1: zero wedges — every job terminal, failures classified.
    int done = 0, failed = 0;
    int restarts = 0, degraded = 0, regrown = 0;
    std::int64_t checksum_rejects = 0;
    for (const std::string& id : ids) {
      const svc::JobRecord* job = server.find(id);
      check(job != nullptr && job->terminal(), id + " not terminal (wedged)");
      if (job == nullptr || !job->terminal()) continue;
      const bool is_done = job->state == svc::JobState::kDone;
      const bool is_failed = job->state == svc::JobState::kFailed;
      check(is_done || is_failed,
            id + " unexpected state " + to_string(job->state));
      done += is_done;
      failed += is_failed;
      if (is_failed)
        check(!job->reason.empty(), id + " failed without a classified reason");
      restarts += job->report.billing.restarts;
      checksum_rejects += counter_sum(job->run_result, "vmpi.checksum_rejects");
      if (job->report.run && job->report.run->recovery &&
          job->report.run->recovery->degraded_to_ranks > 0)
        ++degraded;
      if (job->report.run && job->report.run->recovery &&
          job->report.run->recovery->regrown_to_ranks > 0)
        ++regrown;
      std::cout << id << " tenant=" << job->spec.tenant
                << " op=" << to_string(job->spec.op)
                << " state=" << to_string(job->state);
      if (job->report.billing.restarts > 0)
        std::cout << " restarts=" << job->report.billing.restarts;
      if (job->report.run && job->report.run->recovery &&
          job->report.run->recovery->degraded_to_ranks > 0)
        std::cout << " degraded_to="
                  << job->report.run->recovery->degraded_to_ranks;
      if (job->report.run && job->report.run->recovery &&
          job->report.run->recovery->regrown_to_ranks > 0)
        std::cout << " regrown="
                  << job->report.run->recovery->regrown_from_ranks << "->"
                  << job->report.run->recovery->regrown_to_ranks;
      if (!job->reason.empty()) std::cout << " (" << job->reason << ")";
      std::cout << "\n";
    }
    auto expect_failed_kind = [&](const std::string& id,
                                  const std::string& kind) {
      if (id.empty()) return;
      const svc::JobRecord* job = server.find(id);
      check(job != nullptr && job->state == svc::JobState::kFailed,
            id + " should have failed (" + kind + ")");
      if (job == nullptr) return;
      if (!kind.empty())
        check(job->reason.find(kind) != std::string::npos,
              id + " reason lacks \"" + kind + "\": " + job->reason);
    };
    expect_failed_kind(plan.deadline_id, "deadline_exceeded");
    expect_failed_kind(plan.corrupt_id, "retry_exhausted");
    expect_failed_kind(plan.alloc_id, "");  // classified, kind not pinned

    // Gate 2: the chaos actually bit.
    if (jobs >= 8) check(restarts >= 1, "no supervised restart happened");
    if (!plan.perm_ids.empty()) {
      check(degraded >= 1, "no job finished on a degraded grid");
      for (const std::string& id : plan.perm_ids) {
        const svc::JobRecord* job = server.find(id);
        check(job != nullptr && job->state == svc::JobState::kDone,
              id + " (elastic, permanent crash) did not finish");
      }
      check(server.pool().alive_count() <
                static_cast<int>(server_opts.pool_ranks),
            "permanent crashes left no dead rank in the pool health map");
    }
    if (!plan.corrupt_id.empty())
      check(checksum_rejects >= 1, "checksum caught no corrupted payload");

    // Gates 6 + 7 (churn only): the membership storm must have produced a
    // full kill -> replace -> rejoin -> regrow cycle, and the flapping
    // replacement must sit in quarantine — alone.
    if (churn && plan.perm_ids.size() >= 2) {
      check(regrown >= 1,
            "churn: no job re-admitted its crashed rank and regrew its grid");
      for (const std::string& id : plan.perm_ids) {
        const svc::JobRecord* job = server.find(id);
        if (job == nullptr || !job->report.run || !job->report.run->recovery)
          continue;
        const obs::RecoveryReport& rec = *job->report.run->recovery;
        if (rec.regrown_to_ranks > 0) {
          check(rec.regrown_to_ranks > rec.regrown_from_ranks,
                id + " regrow evidence is not an expansion");
          check(!rec.rejoined_ranks.empty(),
                id + " regrew without recording the re-joined ranks");
        }
      }
      const std::vector<int> quarantined = server.pool().quarantined_ranks();
      check(quarantined == std::vector<int>{flap_rank},
            "churn: expected exactly rank " + std::to_string(flap_rank) +
                " (the flapping replacement) in quarantine");
      check(server.pool().probation_failures(flap_rank) >=
                server_opts.membership.max_failures,
            "churn: flapping rank quarantined before max_failures strikes");
    }

    // Gate 3: surviving-output bit-identity against stripped specs on a
    // fresh healthy server (tolerance 0.0 — integer inputs make this
    // legitimate even for jobs that finished on a shrunk grid).
    svc::Server reference(server_opts);
    for (const svc::JobSpec& spec : plan.specs)
      reference.submit(stripped(spec));
    reference.drain();
    for (const std::string& id : ids) {
      const svc::JobRecord* job = server.find(id);
      if (job == nullptr || job->state != svc::JobState::kDone) continue;
      const svc::JobRecord* ref = reference.find(id);
      check(ref != nullptr && ref->state == svc::JobState::kDone,
            id + " reference run did not finish (" +
                (ref ? ref->reason : "missing") + ")");
      if (ref == nullptr || ref->state != svc::JobState::kDone) continue;
      switch (job->spec.op) {
        case svc::JobOp::kSpGemm:
          check(job->c == ref->c, id + " product diverged from fault-free run");
          break;
        case svc::JobOp::kMcl:
          check(job->mcl.cluster_of == ref->mcl.cluster_of &&
                    job->mcl.num_clusters == ref->mcl.num_clusters &&
                    job->mcl.iterations == ref->mcl.iterations,
                id + " clustering diverged from fault-free run");
          break;
        case svc::JobOp::kTriangleCount:
          check(job->triangles == ref->triangles,
                id + " triangle count diverged from fault-free run");
          break;
      }
    }

    // Gate 4: billing reconciliation — per tenant, the per-job billed
    // logical bytes sum to the ledger's total.
    std::map<std::string, Bytes> billed;
    for (const std::string& id : ids) {
      const svc::JobRecord* job = server.find(id);
      if (job != nullptr)
        billed[job->spec.tenant] += job->report.billing.logical_bytes;
    }
    for (const auto& [tenant, logical] : billed)
      check(server.tenant(tenant).traffic_billed() == logical,
            "tenant " + tenant + " ledger does not reconcile with job bills");

    // Gate 5: double-drain determinism — a second server fed the same specs
    // (fresh checkpoint root, so nothing resumes across drains) must emit
    // byte-identical deterministic reports.
    const std::string det1 =
        server.job_reports_json(/*deterministic=*/true).dump();
    {
      ChaosPlan plan2 =
          make_plan(jobs, tenants, seed, sched_active, ckpt_root + "/drain1");
      svc::Server server2(server_opts);
      for (const svc::JobSpec& spec : plan2.specs) server2.submit(spec);
      server2.drain();
      const std::string det2 =
          server2.job_reports_json(/*deterministic=*/true).dump();
      check(!det1.empty() && det1 == det2,
            "deterministic reports differ across double-drain");
    }

    if (!reports_path.empty() &&
        !write_text(reports_path,
                    server.job_reports_json(true).dump_pretty()))
      ++failures;

    fs::remove_all(ckpt_root);
    std::cout << "casp_chaos: " << jobs << " jobs, " << tenants
              << " tenants, seed " << seed << (churn ? " (churn)" : "")
              << " — " << done << " done, " << failed
              << " failed (classified), " << restarts << " restarts, "
              << degraded << " degraded, " << regrown << " regrown, "
              << checksum_rejects << " checksum rejects\n";
    if (failures == 0) {
      std::cout << "CHAOS SOAK: PASS\n";
      return 0;
    }
    std::cerr << "CHAOS SOAK: FAIL (" << failures << " violations)\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::error_code ec;
    fs::remove_all(ckpt_root, ec);
    return 1;
  }
}
