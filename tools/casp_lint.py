#!/usr/bin/env python3
"""casp_lint — static enforcement of repo-wide C++ invariants.

The compiler cannot see these rules and clang-tidy is not guaranteed to be
installed in the reference environment, so this gate runs as a tier-1 CTest
test (see tests/CMakeLists.txt). Rules:

  new-delete      No `new` / `delete` expressions anywhere. The codebase owns
                  memory exclusively through containers and RAII; placement
                  new (`new (addr) T`) is permitted for arena-style code.
  threading       No std::thread / raw mutex / condition_variable outside
                  src/vmpi/. All parallelism must flow through the virtual
                  runtime so the CollectiveChecker and deadlock watchdog see
                  every interaction. (Applies to src/; tests may coordinate
                  with rank threads directly.)
  cast-pairing    Every `reinterpret_cast` must be paired with a
                  `static_assert(std::is_trivially_copyable_v<...>)` in the
                  same scope (heuristic: within the preceding 40 lines) —
                  byte-punning a non-trivially-copyable type through the
                  mailbox is undefined behavior the sanitizers can miss.
  payload-ownership
                  In any file that handles shared `Payload` / `CscView` wire
                  buffers, no `const_cast`. Received arrays are borrowed from
                  a refcounted buffer that other ranks (and possibly the
                  sender) still read, so casting away const is a cross-rank
                  data race. Copy out first (CscView::materialize(),
                  Payload::release_or_copy()). reinterpret_cast on those
                  borrowed arrays additionally falls under cast-pairing: it
                  must carry the trivially-copyable static_assert.
  pragma-once     Every header's first non-comment line is `#pragma once`.
  include-order   Within a contiguous `#include` block, system includes
                  (<...>) precede project includes ("..."), and each group
                  is lexicographically sorted.
  empty-catch     No empty `catch` body for MemoryError or
                  TransientCommError. Both exceptions carry recovery
                  obligations — re-batching / retry / classification — so
                  silently swallowing one hides a budget overrun or a
                  dropped message. Handle it (retry, re-batch, rethrow,
                  record) or let it propagate to vmpi::run's classifier.
  comm-compat     The byte-vector Comm wrappers (send_bytes, recv_bytes,
                  bcast_bytes, ibcast_bytes, bcast_vec, allgather_bytes,
                  alltoall_bytes) were removed from Comm; this rule keeps
                  them from coming back anywhere — tests included. All
                  code uses the payload-first surface (send_payload /
                  Payload::copy_of, recv_payload, bcast_payload,
                  allgather_vec, ...); tests that want a typed broadcast
                  use testing::bcast_typed from tests/test_util.hpp.
  jobspec-single-source
                  SummaOptions is a thin view derived from svc::JobSpec
                  (JobSpec::summa_options()). In src/ and tools/, outside
                  src/svc/ itself, constructing a fresh SummaOptions
                  (`SummaOptions o;` / `SummaOptions{...}`) is forbidden —
                  build a JobSpec and derive the view, so every knob stays
                  serializable, quota-checkable and covered by the one job
                  API. Copying an existing value (`SummaOptions b = a;`)
                  stays allowed: the batching loop and MCL iterations
                  specialize a caller-provided view per step. tests/,
                  bench/ and examples/ are exempt (they exercise the
                  library layer directly).
  ckpt-atomic-write
                  In src/ckpt/, every file-writing open (std::ofstream,
                  std::fstream, fopen) must write to the kTmpSuffix temp
                  path — the atomic-write protocol is tmp + flush +
                  rename, so a reader can never observe a torn final
                  checkpoint file. Opening a final path directly defeats
                  the crash-safety the subsystem exists to provide. The
                  open expression must mention kTmpSuffix on the same
                  line (route writes through atomic_write_file).
  sparse-subview-pack
                  In the sparse-exchange packer (src/**/sparse_comm.*),
                  no `Payload::copy_of` or `.materialize(` — every reply
                  the sender builds must carry block bytes as
                  `Payload::subview` handles of the already-packed block
                  (descriptors may be built fresh with `Payload::wrap`).
                  A deep copy here silently voids the zero-copy send
                  guarantee that bench_sparse_exchange gates on.
  rank-divergent-collective
                  In src/, no collective call (barrier, bcast*/ibcast*,
                  allreduce*, allgather*, alltoall*, reduce_to_root,
                  split, bcast_wait) lexically inside an `if` whose
                  condition mentions a rank — a collective only some
                  ranks enter is the canonical SPMD deadlock (every rank
                  must participate). Intentional sub-communicator use is
                  allowlisted with `// lint: collective-ok` on the same
                  or preceding line. The `else` branch of a rank guard
                  counts too: it is equally rank-divergent.
  failure-kind-classified
                  In src/, every FailureReport kind string assigned
                  (`kind = "<name>"`) must have an entry in the
                  supervisor's recoverable/non-recoverable classification
                  table (kKindTable in src/vmpi/runtime.cpp). The table is
                  the supervisor's single source of truth: an unclassified
                  kind silently falls through recoverable_failure() as
                  non-recoverable, so a fault class someone meant to be
                  retried would quietly stop being retried. Comparisons
                  (`kind == "..."`) are reads, not introductions, and do
                  not count.
  health-transition-classified
                  In src/, every RankHealth state write
                  (`... = RankHealth::k<State>`) must happen inside
                  RankPool::transition — the single write site that
                  validates the membership state machine's legal edges
                  (alive->suspect/dead, suspect->alive/dead,
                  dead->probation, probation->alive/dead/probation/
                  quarantined; quarantine terminal). A bare assignment
                  anywhere else can fabricate an illegal edge — e.g.
                  resurrect a quarantined flapper straight to alive,
                  skipping the probation handshake. Comparisons
                  (`== / !=`) are reads and do not count, and the
                  whole-vector construction reset
                  `health_.assign(n, RankHealth::kAlive)` (before any
                  edge exists) stays allowed: it carries no `=` into the
                  enum token.

Waivers (use sparingly, justify in a comment on the same line):
  // casp-lint: allow(<rule>)        — waives <rule> on this or next line
  // casp-lint: allow-file(<rule>)   — waives <rule> for the whole file
                                       (must appear in the first 40 lines)

Exit status is nonzero if any violation is found.
"""

import argparse
import re
import sys
from pathlib import Path

CXX_DIRS = ("src", "tools", "tests", "bench", "examples")
CXX_EXTS = (".hpp", ".cpp")

ALLOW_LINE_RE = re.compile(r"casp-lint:\s*allow\(([a-z-]+)\)")
ALLOW_FILE_RE = re.compile(r"casp-lint:\s*allow-file\(([a-z-]+)\)")

THREADING_TOKENS = re.compile(
    r"std::(thread|jthread|mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"condition_variable|condition_variable_any|lock_guard|unique_lock|"
    r"scoped_lock|shared_lock)\b"
)

# `new` expressions: allow placement new `new (addr) T`, flag the rest.
NEW_RE = re.compile(r"\bnew\b(?!\s*\()")
# `delete` expressions: `delete p` / `delete[] p`. Deleted functions
# (`= delete`) and `operator delete` are filtered by context.
DELETE_RE = re.compile(r"\bdelete\b")
DELETE_OK_BEFORE = re.compile(r"(=\s*|operator\s*)$")

REINTERPRET_RE = re.compile(r"\breinterpret_cast\b")
TRIVIAL_RE = re.compile(r"is_trivially_copyable")
CAST_SCOPE_LINES = 40

CONST_CAST_RE = re.compile(r"\bconst_cast\b")
PAYLOAD_TYPE_RE = re.compile(r"\b(Payload|CscView)\b")

# Deep-copy constructions banned in the sparse-exchange packer: the only
# sanctioned ways to put block bytes on the wire there are subview handles
# of the packed block (descriptors may be wrapped fresh).
SPARSE_DEEP_COPY_RE = re.compile(r"\bPayload::copy_of\s*\(|\.\s*materialize\s*\(")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"][^>"]+[>"])')

# catch (const MemoryError& e) { <whitespace only> } — after strip_code()
# a comment-only body is whitespace too, which is intended: a comment is
# not a recovery action.
EMPTY_CATCH_RE = re.compile(
    r"\bcatch\s*\(\s*(?:const\s+)?[\w:]*\b"
    r"(MemoryError|TransientCommError)\s*[&\s]*\w*\s*\)\s*\{\s*\}"
)

COMM_COMPAT_RE = re.compile(
    r"\b(send_bytes|recv_bytes|bcast_bytes|ibcast_bytes|bcast_vec|"
    r"allgather_bytes|alltoall_bytes)\s*[(<]"
)

# A fresh SummaOptions construction: declaration with default init or a
# braced temporary. Copy-initialization from an existing value
# (`SummaOptions b = a;`) deliberately does not match.
JOBSPEC_SINGLE_SOURCE_RE = re.compile(
    r"(?<!struct )\bSummaOptions\s*\{|\bSummaOptions\s+\w+\s*[;{]"
)

# File-writing opens in src/ckpt/: an ofstream/fstream construction or
# .open(...), or a C fopen. Plain `std::ifstream` reads are fine.
CKPT_WRITE_OPEN_RE = re.compile(
    r"\bstd::(?:ofstream|fstream)\b|\bfopen\s*\("
)
CKPT_TMP_TOKEN_RE = re.compile(r"\bkTmpSuffix\b")

# A FailureReport kind introduction: `kind = "<name>"` (assignment, not
# the `==`/`!=` comparisons, which only read an existing kind). Scanned on
# comment-stripped-but-string-preserving text, so prose in comments never
# trips it.
KIND_ASSIGN_RE = re.compile(r'\bkind\s*=(?!=)\s*"([a-z_]+)"')
# One entry of the supervisor's classification table:
# {"<kind>", true|false}.
KIND_TABLE_ENTRY_RE = re.compile(r'\{\s*"([a-z_]+)"\s*,\s*(?:true|false)\s*\}')
KIND_TABLE_NAME = "kKindTable"
KIND_TABLE_FILE = "src/vmpi/runtime.cpp"

# A RankHealth state write: `= RankHealth::k<State>` where the `=` is a
# plain assignment (the lookarounds drop `==`, `!=`, `<=`, `>=`). The
# `.assign(n, RankHealth::kAlive)` construction reset never matches: the
# enum token there follows a comma, not an `=`.
HEALTH_ASSIGN_RE = re.compile(r"(?<![=!<>])=(?!=)\s*RankHealth::k\w+")
# The one sanctioned write site; its brace-matched body is exempt.
TRANSITION_DEF_RE = re.compile(r"\bRankPool::transition\s*\(")

# A collective call on a Comm (or sub-Comm): receiver-dotted so plain
# helper functions named e.g. `barrier_us` don't trip the rule.
COLLECTIVE_CALL_RE = re.compile(
    r"[.>]\s*(barrier|bcast_\w+|ibcast_\w+|bcast_wait|allreduce(?:_\w+)?|"
    r"allgather_\w+|alltoall_\w+|reduce_to_root|split)\s*\("
)
# An `if` condition that branches on a rank: the identifier `rank`, any
# *_rank/rank_* variable, or a .rank()/->rank() accessor.
RANK_COND_RE = re.compile(r"\b\w*rank\w*\b|[.>]\s*rank\s*\(")
COLLECTIVE_OK_RE = re.compile(r"lint:\s*collective-ok")


def strip_code(text: str, keep_strings: bool = False) -> str:
    """Blank out comments — and, unless keep_strings, string and char
    literals — preserving line structure, so token scans don't trip on
    prose or paths. keep_strings=True serves the rules that inspect
    literal contents (failure-kind-classified) but must still ignore
    commented-out code."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    mode = "raw"
                    out.append(m.group(0) if keep_strings else " " * m.end())
                    i += m.end()
                    continue
            if c == '"':
                mode = "string"
                out.append('"' if keep_strings else " ")
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append("'" if keep_strings else " ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif mode == "string":
            if c == "\\":
                out.append(text[i:i + 2] if keep_strings else "  ")
                i += 2
            elif c == '"':
                mode = "code"
                out.append('"' if keep_strings else " ")
                i += 1
            else:
                out.append(c if (keep_strings or c == "\n") else " ")
                i += 1
        elif mode == "char":
            if c == "\\":
                out.append(text[i:i + 2] if keep_strings else "  ")
                i += 2
            elif c == "'":
                mode = "code"
                out.append("'" if keep_strings else " ")
                i += 1
            else:
                out.append(c if (keep_strings or c == "\n") else " ")
                i += 1
        elif mode == "raw":
            if text.startswith(raw_delim, i):
                mode = "code"
                out.append(raw_delim if keep_strings else " " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append(c if (keep_strings or c == "\n") else " ")
                i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.errors = []
        self._repo_kind_table = None  # lazily parsed from KIND_TABLE_FILE

    def error(self, rel: str, line_no: int, rule: str, msg: str):
        self.errors.append(f"{rel}:{line_no}: [{rule}] {msg}")

    # -- per-file driver ----------------------------------------------------

    def lint_file(self, path: Path):
        text = path.read_text(encoding="utf-8", errors="replace")
        self.lint_text(path.relative_to(self.root).as_posix(), text)

    def lint_text(self, rel: str, text: str):
        """Run every rule on `text` as if it lived at repo-relative `rel`.
        Split out from lint_file so the --self-test fixtures (which must NOT
        be real .cpp files, or the main gate would scan them) lint under a
        pretend path."""
        raw_lines = text.splitlines()
        code_text = strip_code(text)
        code_lines = code_text.splitlines()

        file_waivers = set()
        for line in raw_lines[:CAST_SCOPE_LINES]:
            for m in ALLOW_FILE_RE.finditer(line):
                file_waivers.add(m.group(1))

        def waived(rule: str, idx: int) -> bool:
            if rule in file_waivers:
                return True
            for probe in (idx, idx - 1):
                if 0 <= probe < len(raw_lines):
                    for m in ALLOW_LINE_RE.finditer(raw_lines[probe]):
                        if m.group(1) == rule:
                            return True
            return False

        in_src = rel.startswith("src/")
        in_vmpi = rel.startswith("src/vmpi/")

        self.check_new_delete(rel, code_lines, waived)
        if in_src and not in_vmpi:
            self.check_threading(rel, code_lines, waived)
        self.check_comm_compat(rel, code_lines, waived)
        if (in_src or rel.startswith("tools/")) and not rel.startswith(
                "src/svc/"):
            self.check_jobspec_single_source(rel, code_lines, waived)
        if rel.startswith("src/ckpt/"):
            self.check_ckpt_atomic_write(rel, code_lines, waived)
        if in_src:
            self.check_rank_divergent_collective(rel, code_text, raw_lines,
                                                 waived)
            self.check_failure_kind_classified(
                rel, strip_code(text, keep_strings=True), waived)
            self.check_health_transition_classified(rel, code_text, waived)
        self.check_cast_pairing(rel, code_lines, waived)
        self.check_empty_catch(rel, code_text, waived)
        self.check_payload_ownership(rel, code_lines, waived)
        if in_src and "sparse_comm" in rel:
            self.check_sparse_subview_pack(rel, code_lines, waived)
        if rel.endswith(".hpp"):
            self.check_pragma_once(rel, code_lines, waived)
        self.check_include_order(rel, raw_lines, waived)

    # -- rules --------------------------------------------------------------

    def check_new_delete(self, rel, code_lines, waived):
        for idx, line in enumerate(code_lines):
            if NEW_RE.search(line) and not waived("new-delete", idx):
                self.error(rel, idx + 1, "new-delete",
                           "`new` expression — use containers/RAII "
                           "(placement new is allowed: `new (addr) T`)")
            for m in DELETE_RE.finditer(line):
                if DELETE_OK_BEFORE.search(line[:m.start()]):
                    continue  # `= delete` / `operator delete`
                if not waived("new-delete", idx):
                    self.error(rel, idx + 1, "new-delete",
                               "`delete` expression — use containers/RAII")

    def check_threading(self, rel, code_lines, waived):
        for idx, line in enumerate(code_lines):
            m = THREADING_TOKENS.search(line)
            if m and not waived("threading", idx):
                self.error(rel, idx + 1, "threading",
                           f"std::{m.group(1)} outside src/vmpi/ — all "
                           "parallelism must go through the virtual runtime")

    def check_comm_compat(self, rel, code_lines, waived):
        for idx, line in enumerate(code_lines):
            m = COMM_COMPAT_RE.search(line)
            if m and not waived("comm-compat", idx):
                self.error(
                    rel, idx + 1, "comm-compat",
                    f"{m.group(1)} is a removed byte-vector compat wrapper "
                    "— use the payload-first Comm API (send_payload/"
                    "recv_payload/bcast_payload/allgather_vec/...; tests: "
                    "testing::bcast_typed)")

    def check_jobspec_single_source(self, rel, code_lines, waived):
        for idx, line in enumerate(code_lines):
            if JOBSPEC_SINGLE_SOURCE_RE.search(line) and not waived(
                    "jobspec-single-source", idx):
                self.error(
                    rel, idx + 1, "jobspec-single-source",
                    "fresh SummaOptions construction outside src/svc/ — "
                    "build a svc::JobSpec and derive the view with "
                    "JobSpec::summa_options() (copying an existing value "
                    "is fine)")

    def check_ckpt_atomic_write(self, rel, code_lines, waived):
        for idx, line in enumerate(code_lines):
            if not CKPT_WRITE_OPEN_RE.search(line):
                continue
            if CKPT_TMP_TOKEN_RE.search(line):
                continue
            if not waived("ckpt-atomic-write", idx):
                self.error(
                    rel, idx + 1, "ckpt-atomic-write",
                    "file-writing open in src/ckpt/ that does not target "
                    "the kTmpSuffix temp path — checkpoint files must be "
                    "written atomically (tmp + flush + rename); route "
                    "writes through atomic_write_file")

    def check_rank_divergent_collective(self, rel, code_text, raw_lines,
                                        waived):
        regions = self._rank_guarded_regions(code_text)
        if not regions:
            return
        for m in COLLECTIVE_CALL_RE.finditer(code_text):
            if not any(lo <= m.start() < hi for lo, hi in regions):
                continue
            idx = code_text.count("\n", 0, m.start())
            ok = False
            for probe in (idx, idx - 1):
                if 0 <= probe < len(raw_lines) and COLLECTIVE_OK_RE.search(
                        raw_lines[probe]):
                    ok = True
            if ok or waived("rank-divergent-collective", idx):
                continue
            self.error(
                rel, idx + 1, "rank-divergent-collective",
                f"collective {m.group(1)}() inside a rank-guarded `if` — "
                "every rank must enter a collective, or only some ranks "
                "wait forever; hoist it out of the branch, or mark "
                "intentional sub-communicator use with "
                "`// lint: collective-ok`")

    @staticmethod
    def _rank_guarded_regions(code_text):
        """[start, end) character ranges of code lexically inside an
        `if (...rank...)` block, its brace-less statement, or the attached
        `else` block."""

        def matching(open_ch, close_ch, start):
            depth = 0
            for j in range(start, len(code_text)):
                if code_text[j] == open_ch:
                    depth += 1
                elif code_text[j] == close_ch:
                    depth -= 1
                    if depth == 0:
                        return j
            return len(code_text)

        def skip_ws(j):
            while j < len(code_text) and code_text[j] in " \t\n":
                j += 1
            return j

        regions = []
        for m in re.finditer(r"\bif\s*\(", code_text):
            paren_open = m.end() - 1
            paren_close = matching("(", ")", paren_open)
            if not RANK_COND_RE.search(code_text[paren_open:paren_close]):
                continue
            body = skip_ws(paren_close + 1)
            if body < len(code_text) and code_text[body] == "{":
                end = matching("{", "}", body)
                regions.append((body, end))
                after = skip_ws(end + 1)
                if code_text.startswith("else", after):
                    tail = skip_ws(after + 4)
                    if tail < len(code_text) and code_text[tail] == "{":
                        regions.append((tail, matching("{", "}", tail)))
                    # `else if (...)` is re-examined by its own `if` match.
            else:
                semi = code_text.find(";", body)
                regions.append(
                    (body, semi if semi != -1 else len(code_text)))
        return regions

    def _kind_table(self, code_with_strings):
        """Classification entries in scope for this file: a kKindTable the
        text defines itself (runtime.cpp, self-test fixtures), else the
        repo's table in src/vmpi/runtime.cpp, parsed once."""
        pos = code_with_strings.find(KIND_TABLE_NAME)
        if pos != -1:
            region = code_with_strings[pos:]
            end = region.find("};")
            if end != -1:
                region = region[:end]
            entries = {m.group(1)
                       for m in KIND_TABLE_ENTRY_RE.finditer(region)}
            if entries:
                return entries
        if self._repo_kind_table is None:
            self._repo_kind_table = set()
            table_path = self.root / KIND_TABLE_FILE
            if table_path.exists():
                text = strip_code(
                    table_path.read_text(encoding="utf-8", errors="replace"),
                    keep_strings=True)
                pos = text.find(KIND_TABLE_NAME)
                if pos != -1:
                    region = text[pos:]
                    end = region.find("};")
                    if end != -1:
                        region = region[:end]
                    self._repo_kind_table = {
                        m.group(1)
                        for m in KIND_TABLE_ENTRY_RE.finditer(region)
                    }
        return self._repo_kind_table

    def check_failure_kind_classified(self, rel, code_with_strings, waived):
        matches = list(KIND_ASSIGN_RE.finditer(code_with_strings))
        if not matches:
            return
        table = self._kind_table(code_with_strings)
        for m in matches:
            kind = m.group(1)
            if kind in table:
                continue
            idx = code_with_strings.count("\n", 0, m.start())
            if waived("failure-kind-classified", idx):
                continue
            self.error(
                rel, idx + 1, "failure-kind-classified",
                f'FailureReport kind "{kind}" has no entry in '
                f"{KIND_TABLE_NAME} ({KIND_TABLE_FILE}) — "
                "recoverable_failure() silently treats unlisted kinds as "
                "non-recoverable; add it to the classification table")

    @staticmethod
    def _transition_bodies(code_text):
        """[start, end) character ranges of RankPool::transition definition
        bodies — the sanctioned RankHealth write site. Declarations and the
        unqualified calls inside pool.cpp don't match the qualified name."""
        regions = []
        for m in TRANSITION_DEF_RE.finditer(code_text):
            brace = code_text.find("{", m.end())
            if brace == -1:
                continue
            depth = 0
            end = len(code_text)
            for j in range(brace, len(code_text)):
                if code_text[j] == "{":
                    depth += 1
                elif code_text[j] == "}":
                    depth -= 1
                    if depth == 0:
                        end = j
                        break
            regions.append((brace, end))
        return regions

    def check_health_transition_classified(self, rel, code_text, waived):
        matches = list(HEALTH_ASSIGN_RE.finditer(code_text))
        if not matches:
            return
        bodies = self._transition_bodies(code_text)
        for m in matches:
            if any(lo <= m.start() < hi for lo, hi in bodies):
                continue
            idx = code_text.count("\n", 0, m.start())
            if waived("health-transition-classified", idx):
                continue
            self.error(
                rel, idx + 1, "health-transition-classified",
                "RankHealth state written outside RankPool::transition — "
                "the transition function is the single write site that "
                "validates the membership state machine's legal edges; a "
                "bare assignment can fabricate an illegal edge (e.g. "
                "resurrect a quarantined rank past the probation "
                "handshake)")

    def check_cast_pairing(self, rel, code_lines, waived):
        for idx, line in enumerate(code_lines):
            if not REINTERPRET_RE.search(line):
                continue
            lo = max(0, idx - CAST_SCOPE_LINES)
            window = code_lines[lo:idx + 1]
            if any(TRIVIAL_RE.search(w) for w in window):
                continue
            if not waived("cast-pairing", idx):
                self.error(
                    rel, idx + 1, "cast-pairing",
                    "reinterpret_cast without a nearby static_assert("
                    "std::is_trivially_copyable_v<...>) in the same scope")

    def check_empty_catch(self, rel, code_text, waived):
        # Multiline scan: `catch` clauses wrap freely, so match on the
        # whole stripped text and map the offset back to a line number.
        for m in EMPTY_CATCH_RE.finditer(code_text):
            idx = code_text.count("\n", 0, m.start())
            if not waived("empty-catch", idx):
                self.error(
                    rel, idx + 1, "empty-catch",
                    f"empty catch body for {m.group(1)} — this exception "
                    "carries a recovery obligation (retry / re-batch / "
                    "classify); handle it or let vmpi::run classify it")

    def check_payload_ownership(self, rel, code_lines, waived):
        if not any(PAYLOAD_TYPE_RE.search(line) for line in code_lines):
            return
        for idx, line in enumerate(code_lines):
            if CONST_CAST_RE.search(line) and not waived(
                    "payload-ownership", idx):
                self.error(
                    rel, idx + 1, "payload-ownership",
                    "const_cast in a file handling shared Payload/CscView "
                    "buffers — borrowed wire arrays are shared across ranks; "
                    "copy out (materialize()/release_or_copy()) before "
                    "mutating")

    def check_sparse_subview_pack(self, rel, code_lines, waived):
        for idx, line in enumerate(code_lines):
            if SPARSE_DEEP_COPY_RE.search(line) and not waived(
                    "sparse-subview-pack", idx):
                self.error(
                    rel, idx + 1, "sparse-subview-pack",
                    "payload deep copy in the sparse-exchange packer — "
                    "sends must ship Payload::subview handles of the "
                    "packed block (Payload::wrap for fresh descriptors); "
                    "a copy_of/materialize here breaks the zero-copy "
                    "guarantee bench_sparse_exchange gates on")

    def check_pragma_once(self, rel, code_lines, waived):
        for idx, line in enumerate(code_lines):
            stripped = line.strip()
            if not stripped:
                continue
            if stripped == "#pragma once":
                return
            if not waived("pragma-once", idx):
                self.error(rel, idx + 1, "pragma-once",
                           "first directive in a header must be #pragma once")
            return
        self.error(rel, 1, "pragma-once", "header lacks #pragma once")

    def check_include_order(self, rel, raw_lines, waived):
        block = []  # list of (idx, token)
        for idx in range(len(raw_lines) + 1):
            m = INCLUDE_RE.match(raw_lines[idx]) if idx < len(raw_lines) else None
            if m:
                block.append((idx, m.group(1)))
                continue
            if len(block) > 1:
                self._check_include_block(rel, block, waived)
            block = []

    def _check_include_block(self, rel, block, waived):
        seen_quote = False
        for idx, token in block:
            if token.startswith('"'):
                seen_quote = True
            elif seen_quote and not waived("include-order", idx):
                self.error(rel, idx + 1, "include-order",
                           f"system include {token} after a project include "
                           "in the same block")
        for style in ("<", '"'):
            group = [(idx, t) for idx, t in block if t.startswith(style)]
            for (idx_a, a), (idx_b, b) in zip(group, group[1:]):
                if a > b and not waived("include-order", idx_b):
                    self.error(rel, idx_b + 1, "include-order",
                               f"{b} breaks sort order (after {a})")

    # -- entry --------------------------------------------------------------

    def run(self) -> int:
        files = []
        for d in CXX_DIRS:
            base = self.root / d
            if not base.is_dir():
                continue
            files.extend(p for ext in CXX_EXTS for p in base.rglob(f"*{ext}"))
        for path in sorted(files):
            self.lint_file(path)
        if self.errors:
            for e in self.errors:
                print(e)
            print(f"casp_lint: {len(self.errors)} violation(s) in "
                  f"{len(files)} files", file=sys.stderr)
            return 1
        print(f"casp_lint: OK ({len(files)} files clean)")
        return 0


FIXTURE_RULES_RE = re.compile(r"lint-rules:\s*([a-z, -]+)")


def self_test(root: Path) -> int:
    """Lint the fixture corpus (tests/lint/fixtures/*.cpp.txt) under a
    pretend src/ path and compare against the `// expect-violation` line
    markers. Positive fixtures prove the rule fires where it must; negative
    fixtures prove the allowlist and benign shapes stay silent. Each
    fixture declares the rule(s) it exercises with a `// lint-rules: a,b`
    header line — errors from other rules are ignored, so a fixture only
    tests what it claims to. Fixtures without the header default to
    rank-divergent-collective (the original corpus)."""
    fixtures = sorted((root / "tests" / "lint" / "fixtures").glob("*.cpp.txt"))
    if not fixtures:
        print("casp_lint --self-test: no fixtures found", file=sys.stderr)
        return 2
    failures = 0
    for path in fixtures:
        text = path.read_text(encoding="utf-8")
        expected = {
            idx + 1
            for idx, line in enumerate(text.splitlines())
            if "expect-violation" in line
        }
        rules = {"rank-divergent-collective"}
        m = FIXTURE_RULES_RE.search(text)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        linter = Linter(root)
        linter.lint_text(f"src/{path.stem}", text)
        got = {
            int(e.split(":")[1])
            for e in linter.errors
            if any(f"[{rule}]" in e for rule in rules)
        }
        if got == expected:
            print(f"self-test PASS {path.name} "
                  f"({len(expected)} expected violation(s))")
            continue
        failures += 1
        print(f"self-test FAIL {path.name}: expected lines "
              f"{sorted(expected)}, got {sorted(got)}")
        for e in linter.errors:
            print(f"  {e}")
    if failures:
        print(f"casp_lint --self-test: {failures} fixture(s) failed",
              file=sys.stderr)
        return 1
    print(f"casp_lint --self-test: OK ({len(fixtures)} fixtures)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the fixture corpus instead of the repo "
                             "and verify expected violations")
    args = parser.parse_args()
    root = Path(args.root).resolve()
    if not (root / "CMakeLists.txt").exists():
        print(f"casp_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    if args.self_test:
        return self_test(root)
    return Linter(root).run()


if __name__ == "__main__":
    sys.exit(main())
