// spgemm_serve — drain a file of JobSpecs through the multi-tenant service.
//
// The demo front end for svc::Server: one resident rank pool, a queue of
// mixed SpGEMM/MCL/triangle jobs from any number of tenants, per-tenant
// memory/traffic quotas, and per-job "casp.job_report.v1" reports. A job
// that crashes (its spec carries a fault_spec) is supervised and scoped to
// its own tenant — the pool survives and the rest of the queue drains.
//
// Usage:
//   spgemm_serve jobs.json
//     --pool-ranks N                resident pool width (default 4)
//     --concurrency K               jobs in flight on disjoint pool splits
//                                   during the drain (default 1 = serial;
//                                   clamped to 1 under CASP_VMPI_SCHED)
//     --quota T:MEM_B:TRAFFIC_B     per-tenant quotas in bytes (0 =
//                                   unlimited); repeatable, one per flag
//     --reports FILE                write the per-job report array
//     --tenant-reports FILE         write the per-tenant report object
//     --deterministic               strip wall-clock fields from reports so
//                                   two runs of the same job file are
//                                   byte-identical (the soak gate)
//
// The job file is a JSON array of JobSpec objects (svc::JobSpec::from_json,
// strict). Per-job one-line outcomes go to stdout; exit status is 0 when
// every job that was admitted ran to done/rejected/throttled as scheduled,
// 1 when any job failed structurally (unparseable spec, unreadable input).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cli_common.hpp"

namespace {
void usage() {
  std::cerr << "usage: spgemm_serve jobs.json [--pool-ranks N]\n"
               "                    [--concurrency K] [--auto-rejoin]\n"
               "                    [--quota TENANT:MEM_B:TRAFFIC_B]...\n"
               "                    [--reports FILE] [--tenant-reports FILE]\n"
               "                    [--deterministic]\n";
}

/// Parse "tenant:mem_bytes:traffic_bytes" into a quota entry.
bool parse_quota(const std::string& text, std::string& tenant,
                 casp::svc::TenantQuota& quota) {
  const std::size_t c1 = text.find(':');
  if (c1 == std::string::npos) return false;
  const std::size_t c2 = text.find(':', c1 + 1);
  if (c2 == std::string::npos) return false;
  tenant = text.substr(0, c1);
  try {
    quota.memory_bytes =
        static_cast<casp::Bytes>(std::stoll(text.substr(c1 + 1, c2 - c1 - 1)));
    quota.traffic_bytes =
        static_cast<casp::Bytes>(std::stoll(text.substr(c2 + 1)));
  } catch (const std::exception&) {
    return false;
  }
  return !tenant.empty();
}

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  out << text << "\n";
  std::cout << "wrote " << path << "\n";
  return true;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace casp;
  std::string jobs_path, reports_path, tenant_reports_path;
  bool deterministic = false;
  svc::ServerOptions server_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--pool-ranks") {
      server_opts.pool_ranks = std::stoi(next("--pool-ranks"));
    } else if (arg == "--concurrency") {
      server_opts.concurrency = std::stoi(next("--concurrency"));
    } else if (arg == "--auto-rejoin") {
      server_opts.auto_rejoin = true;
    } else if (arg == "--quota") {
      std::string tenant;
      svc::TenantQuota quota;
      if (!parse_quota(next("--quota"), tenant, quota)) {
        std::cerr << "bad --quota (want TENANT:MEM_MB:TRAFFIC_MB)\n";
        return 2;
      }
      server_opts.quotas[tenant] = quota;
    } else if (arg == "--reports") {
      reports_path = next("--reports");
    } else if (arg == "--tenant-reports") {
      tenant_reports_path = next("--tenant-reports");
    } else if (arg == "--deterministic") {
      deterministic = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    } else if (jobs_path.empty()) {
      jobs_path = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (jobs_path.empty()) {
    usage();
    return 2;
  }

  try {
    std::ifstream in(jobs_path);
    if (!in) {
      std::cerr << "cannot read " << jobs_path << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const obs::Json doc = obs::Json::parse(buf.str());
    if (!doc.is_array()) {
      std::cerr << jobs_path << ": expected a JSON array of JobSpecs\n";
      return 1;
    }

    svc::Server server(server_opts);
    std::vector<std::string> tenants;
    int structural_errors = 0;
    for (std::size_t i = 0; i < doc.size(); ++i) {
      try {
        svc::JobSpec spec = svc::JobSpec::from_json(doc.at(i));
        const std::string tenant = spec.tenant;
        const std::string id = server.submit(std::move(spec));
        bool seen = false;
        for (const std::string& t : tenants) seen = seen || t == tenant;
        if (!seen) tenants.push_back(tenant);
        std::cout << "queued " << id << " (tenant " << tenant << ")\n";
      } catch (const std::exception& e) {
        std::cerr << "job[" << i << "]: " << e.what() << "\n";
        ++structural_errors;
      }
    }

    server.drain();

    for (const std::string& id : server.job_ids()) {
      const svc::JobRecord* job = server.find(id);
      std::cout << id << " tenant=" << job->spec.tenant
                << " op=" << to_string(job->spec.op)
                << " state=" << to_string(job->state);
      if (job->report.billing.restarts > 0)
        std::cout << " restarts=" << job->report.billing.restarts;
      if (!job->reason.empty()) std::cout << " (" << job->reason << ")";
      std::cout << "\n";
    }

    if (!reports_path.empty() &&
        !write_text(reports_path,
                    server.job_reports_json(deterministic).dump_pretty()))
      return 1;
    if (!tenant_reports_path.empty()) {
      obs::Json all = obs::Json::object();
      for (const std::string& t : tenants) all.set(t, server.tenant_report(t));
      if (!write_text(tenant_reports_path, all.dump_pretty())) return 1;
    }
    return structural_errors == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
