// mcl — cluster a similarity network from a Matrix Market file with the
// distributed, memory-constrained Markov clustering of apps/mcl.
//
// Usage:
//   mcl network.mtx [--ranks N] [--layers L] [--memory-mb M]
//       [--inflation R] [--prune T] [--keep K] [--max-iters I]
//       [--out clusters.txt] [--report report.json] [--trace trace.json]
//       [--ckpt-dir DIR] [--ckpt-every N] [--max-restarts R]
//
// Output: one line per vertex, "<vertex> <cluster-id>". --report writes the
// RunReport JSON (per-phase traffic, timings, counters, memory); --trace
// writes a Chrome trace-event timeline loadable in Perfetto. --ckpt-dir
// checkpoints the iterate at iteration boundaries; with --max-restarts the
// job is supervised and relaunches (resuming from the newest valid
// generation) after recoverable injected failures.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "apps/mcl.hpp"
#include "ckpt/checkpoint.hpp"
#include "obs/report.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/stats.hpp"
#include "vmpi/runtime.hpp"

int main(int argc, char** argv) {
  using namespace casp;
  std::string in_path, out_path, report_path, trace_path, ckpt_dir;
  int ranks = 4, layers = 1;
  Bytes memory_mb = 0;
  std::uint64_t ckpt_every = 1;
  int max_restarts = -1;  // -1: unsupervised single attempt
  MclParams params;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--ranks") {
      ranks = std::stoi(next("--ranks"));
    } else if (arg == "--layers") {
      layers = std::stoi(next("--layers"));
    } else if (arg == "--memory-mb") {
      memory_mb = static_cast<Bytes>(std::stoll(next("--memory-mb")));
    } else if (arg == "--inflation") {
      params.inflation = std::stod(next("--inflation"));
    } else if (arg == "--prune") {
      params.prune_threshold = std::stod(next("--prune"));
    } else if (arg == "--keep") {
      params.keep_per_col = std::stoll(next("--keep"));
    } else if (arg == "--max-iters") {
      params.max_iterations = std::stoi(next("--max-iters"));
    } else if (arg == "--out") {
      out_path = next("--out");
    } else if (arg == "--report") {
      report_path = next("--report");
    } else if (arg == "--trace") {
      trace_path = next("--trace");
    } else if (arg == "--ckpt-dir") {
      ckpt_dir = next("--ckpt-dir");
    } else if (arg == "--ckpt-every") {
      ckpt_every = std::stoull(next("--ckpt-every"));
      if (ckpt_every == 0) {
        std::cerr << "--ckpt-every must be >= 1\n";
        return 2;
      }
    } else if (arg == "--max-restarts") {
      max_restarts = std::stoi(next("--max-restarts"));
      if (max_restarts < 0) {
        std::cerr << "--max-restarts must be >= 0\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cerr << "usage: mcl network.mtx [--ranks N] [--layers L] "
                   "[--memory-mb M]\n           [--inflation R] [--prune T] "
                   "[--keep K] [--max-iters I] [--out F]\n           "
                   "[--report report.json] [--trace trace.json]\n           "
                   "[--ckpt-dir DIR] [--ckpt-every N] [--max-restarts R]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    } else if (in_path.empty()) {
      in_path = arg;
    } else {
      std::cerr << "unexpected argument " << arg << "\n";
      return 2;
    }
  }
  if (in_path.empty()) {
    std::cerr << "usage: mcl network.mtx [options]; --help for details\n";
    return 2;
  }
  if (!Grid3D::valid_shape(ranks, layers)) {
    std::cerr << "invalid (ranks, layers) grid\n";
    return 2;
  }

  try {
    const CscMat network =
        CscMat::from_triples(read_matrix_market_file(in_path));
    if (network.nrows() != network.ncols()) {
      std::cerr << "error: similarity network must be square\n";
      return 1;
    }
    std::cout << describe("network", network) << "\n";

    MclResult result;
    // Capture failures (injected faults, budget exhaustion) as a structured
    // FailureReport in the run report instead of a bare abort.
    auto body = [&](vmpi::Comm& world) {
      ckpt::Checkpointer ck;
      SummaOptions summa_opts;
      if (!ckpt_dir.empty()) {
        ck = ckpt::Checkpointer(ckpt_dir, world.rank(), ckpt_every,
                                &world.recorder());
        summa_opts.ckpt = &ck;
      }
      Grid3D grid(world, layers);
      MclResult r = mcl_cluster_distributed(
          grid, network, params, memory_mb * 1024 * 1024, summa_opts);
      if (world.rank() == 0) result = std::move(r);
    };

    // --ckpt-dir / --max-restarts turn on supervision: recoverable
    // failures relaunch the job, which fast-forwards from the newest valid
    // checkpoint generation (iteration-boundary snapshots).
    const bool supervise = !ckpt_dir.empty() || max_restarts >= 0;
    vmpi::RunResult job;
    obs::RunReport report;
    if (supervise) {
      vmpi::SupervisorOptions sup_opts;
      if (max_restarts >= 0) sup_opts.max_restarts = max_restarts;
      vmpi::SupervisedResult sup = vmpi::run_supervised(ranks, body, sup_opts);
      report = obs::build_report(sup);
      if (sup.restarts > 0) {
        std::cout << "supervisor: " << sup.restarts << " restart(s)";
        if (sup.recovered()) std::cout << ", recovered";
        std::cout << "\n";
      }
      job = std::move(sup.result);
    } else {
      vmpi::RunOptions run_opts;
      run_opts.capture_failure = true;
      job = vmpi::run(ranks, body, run_opts);
      report = obs::build_report(job);
    }
    if (!report_path.empty()) {
      obs::write_report_json(report, report_path);
      std::cout << "wrote " << report_path << "\n";
    }
    if (!trace_path.empty()) {
      obs::write_chrome_trace(job, trace_path);
      std::cout << "wrote " << trace_path << "\n";
    }
    if (job.failed()) {
      std::cerr << job.failure->describe() << "\n";
      return 1;
    }

    std::cout << "converged after " << result.iterations << " iterations; "
              << result.num_clusters << " clusters\n";
    for (std::size_t i = 0; i < result.per_iteration.size(); ++i)
      std::cout << "  iter " << i + 1 << ": b="
                << result.per_iteration[i].batches
                << " chaos=" << result.per_iteration[i].chaos
                << " nnz=" << result.per_iteration[i].nnz_after << "\n";

    std::ostream* out = &std::cout;
    std::ofstream file;
    if (!out_path.empty()) {
      file.open(out_path);
      if (!file) {
        std::cerr << "cannot open " << out_path << "\n";
        return 1;
      }
      out = &file;
    }
    for (std::size_t v = 0; v < result.cluster_of.size(); ++v)
      *out << v << ' ' << result.cluster_of[v] << '\n';
    if (!out_path.empty()) std::cout << "wrote " << out_path << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
