// mcl — cluster a similarity network from a Matrix Market file with the
// distributed, memory-constrained Markov clustering of apps/mcl.
//
// A thin wrapper over the job service: flags build one svc::JobSpec
// (op = mcl), the spec runs on an in-process svc::Server, and the
// clustering plus the per-job "casp.job_report.v1" report come back from
// the job record.
//
// Usage:
//   mcl network.mtx [flags]   (see --help for the shared JobSpec flags)
//
// Output: one line per vertex, "<vertex> <cluster-id>". --report writes the
// job report JSON (admission estimate, billing, per-phase traffic,
// timings); --trace writes a Chrome trace-event timeline loadable in
// Perfetto. --ckpt-dir checkpoints the iterate at iteration boundaries;
// with --max-restarts the job is supervised and relaunches (resuming from
// the newest valid generation) after recoverable injected failures.
#include <fstream>
#include <iostream>
#include <string>
#include <utility>

#include "cli_common.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  using namespace casp;
  cli::CommonArgs args;
  args.spec.ranks = 4;
  args.spec.layers = 1;
  const int rc = cli::parse_common(argc, argv, args);
  if (rc != 0 || args.help || args.positional.size() != 1) {
    std::cerr << "usage: mcl network.mtx [flags]\n"
              << cli::common_flags_help();
    return rc != 0 ? rc : (args.help ? 0 : 2);
  }
  svc::JobSpec& spec = args.spec;
  spec.op = svc::JobOp::kMcl;
  spec.a = svc::MatrixSource::file(args.positional[0]);

  try {
    svc::ServerOptions server_opts;
    server_opts.pool_ranks = spec.ranks;
    svc::Server server(std::move(server_opts));
    const std::string id = server.submit(std::move(spec));
    std::cout << describe("network", server.find(id)->in_a) << "\n";

    const svc::JobRecord& job = server.wait(id);
    const int out_rc = cli::report_outcome(job, args);
    if (out_rc != 0) return out_rc;

    const MclResult& result = job.mcl;
    std::cout << "converged after " << result.iterations << " iterations; "
              << result.num_clusters << " clusters\n";
    for (std::size_t i = 0; i < result.per_iteration.size(); ++i)
      std::cout << "  iter " << i + 1 << ": b="
                << result.per_iteration[i].batches
                << " chaos=" << result.per_iteration[i].chaos
                << " nnz=" << result.per_iteration[i].nnz_after << "\n";

    std::ostream* out = &std::cout;
    std::ofstream file;
    if (!args.out_path.empty()) {
      file.open(args.out_path);
      if (!file) {
        std::cerr << "cannot open " << args.out_path << "\n";
        return 1;
      }
      out = &file;
    }
    for (std::size_t v = 0; v < result.cluster_of.size(); ++v)
      *out << v << ' ' << result.cluster_of[v] << '\n';
    if (!args.out_path.empty()) std::cout << "wrote " << args.out_path << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
