// Shared command-line handling for the JobSpec-driven tools (spgemm, mcl,
// spgemm_serve).
//
// Every tool used to hand-roll the same flags (--ranks, --memory-mb,
// --ckpt-dir, --report, ...) with subtly different parsing and defaults;
// now there is exactly one mapping from flags onto svc::JobSpec — the one
// job-description API — plus the handful of CLI-side outputs (where to
// write the product, the report, the trace). Tool-specific flags hook in
// through the `extra` callback; everything else lands in the spec and is
// validated by JobSpec::validate() at submit.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "svc/server.hpp"

namespace casp::cli {

/// Parsed command line: the job description plus CLI-side outputs.
struct CommonArgs {
  svc::JobSpec spec;
  std::vector<std::string> positional;
  std::string out_path;
  std::string report_path;
  std::string trace_path;
  bool help = false;
};

/// Tool-specific flag hook: return true when `arg` was consumed. `next`
/// fetches the flag's value (exits 2 when missing, like the shared flags).
using ExtraFlag = std::function<bool(
    const std::string& arg, const std::function<std::string(const char*)>& next)>;

/// One-line description of every flag the shared parser understands, for
/// usage text.
inline const char* common_flags_help() {
  return "  --ranks N --layers L          grid shape (ranks/layers: square)\n"
         "  --memory-mb M                 aggregate budget (0 = unlimited)\n"
         "  --batches B                   pin the batch count (0 = symbolic)\n"
         "  --kernel hash|hybrid          this paper's / prior-work kernels\n"
         "  --threads T                   per-rank kernel threads\n"
         "  --sparse-comm                 symbolic-informed sparse A exchange\n"
         "  --ckpt-dir DIR --ckpt-every N checkpoint/restart cadence\n"
         "  --max-restarts R              supervise: relaunch up to R times\n"
         "  --faults SPEC                 FaultPlan spec for this job only\n"
         "  --tenant T --priority P --job-id ID   service identity\n"
         "  --inflation R --prune T --keep K --max-iters I   MCL knobs\n"
         "  --out F --report F.json --trace F.json           outputs\n";
}

/// Parse argv into `args`. Returns 0 on success (args.help set when --help
/// was seen), 2 on a malformed command line (message already printed).
inline int parse_common(int argc, char** argv, CommonArgs& args,
                        const ExtraFlag& extra = {}) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    svc::JobSpec& spec = args.spec;
    try {
      if (arg == "--ranks") {
        spec.ranks = std::stoi(next("--ranks"));
      } else if (arg == "--layers") {
        spec.layers = std::stoi(next("--layers"));
      } else if (arg == "--memory-mb") {
        spec.memory_bytes =
            static_cast<Bytes>(std::stoll(next("--memory-mb"))) * 1024 * 1024;
      } else if (arg == "--batches") {
        spec.force_batches = std::stoll(next("--batches"));
      } else if (arg == "--kernel") {
        spec.kernel = next("--kernel");
      } else if (arg == "--threads") {
        spec.threads = std::stoi(next("--threads"));
      } else if (arg == "--sparse-comm") {
        spec.sparse_comm = true;
      } else if (arg == "--ckpt-dir") {
        spec.ckpt_dir = next("--ckpt-dir");
      } else if (arg == "--ckpt-every") {
        spec.ckpt_every = std::stoull(next("--ckpt-every"));
        if (spec.ckpt_every == 0) {
          std::cerr << "--ckpt-every must be >= 1\n";
          return 2;
        }
      } else if (arg == "--max-restarts") {
        spec.max_restarts = std::stoi(next("--max-restarts"));
        if (spec.max_restarts < 0) {
          std::cerr << "--max-restarts must be >= 0\n";
          return 2;
        }
      } else if (arg == "--faults") {
        spec.fault_spec = next("--faults");
      } else if (arg == "--tenant") {
        spec.tenant = next("--tenant");
      } else if (arg == "--priority") {
        spec.priority = std::stoi(next("--priority"));
      } else if (arg == "--job-id") {
        spec.job_id = next("--job-id");
      } else if (arg == "--inflation") {
        spec.mcl.inflation = std::stod(next("--inflation"));
      } else if (arg == "--prune") {
        spec.mcl.prune_threshold = std::stod(next("--prune"));
      } else if (arg == "--keep") {
        spec.mcl.keep_per_col = std::stoll(next("--keep"));
      } else if (arg == "--max-iters") {
        spec.mcl.max_iterations = std::stoi(next("--max-iters"));
      } else if (arg == "--out") {
        args.out_path = next("--out");
      } else if (arg == "--report") {
        args.report_path = next("--report");
      } else if (arg == "--trace") {
        args.trace_path = next("--trace");
      } else if (arg == "--help" || arg == "-h") {
        args.help = true;
        return 0;
      } else if (extra && extra(arg, next)) {
        // tool-specific flag, consumed by the hook
      } else if (!arg.empty() && arg[0] == '-') {
        std::cerr << "unknown option " << arg << "\n";
        return 2;
      } else {
        args.positional.push_back(arg);
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return 2;
    }
  }
  return 0;
}

/// Shared post-run handling: write the per-job report ("casp.job_report.v1")
/// and the Chrome trace when asked, echo supervision/failure summaries.
/// Returns the process exit code (0 done, 1 failed/rejected/throttled).
inline int report_outcome(const svc::JobRecord& job, const CommonArgs& args) {
  if (!args.report_path.empty()) {
    std::ofstream out(args.report_path);
    if (!out) {
      std::cerr << "cannot open " << args.report_path << "\n";
      return 1;
    }
    out << job.report.to_json().dump_pretty() << "\n";
    std::cout << "wrote " << args.report_path << "\n";
  }
  if (!args.trace_path.empty()) {
    obs::write_chrome_trace(job.run_result, args.trace_path);
    std::cout << "wrote " << args.trace_path << "\n";
  }
  if (job.report.billing.restarts > 0) {
    std::cout << "supervisor: " << job.report.billing.restarts
              << " restart(s)";
    if (job.state == svc::JobState::kDone) std::cout << ", recovered";
    std::cout << "\n";
  }
  if (job.state != svc::JobState::kDone) {
    std::cerr << to_string(job.state) << ": " << job.reason << "\n";
    return 1;
  }
  return 0;
}

}  // namespace casp::cli
