// spgemm — multiply Matrix Market files with BatchedSUMMA3D.
//
// Usage:
//   spgemm A.mtx [B.mtx]            multiply two files (omit B to square A)
//     --aat                         multiply A by its transpose instead
//     --ranks N (16)  --layers L (4)
//     --memory-mb M                 aggregate budget (0 = unlimited)
//     --batches B                   pin the batch count (0 = symbolic)
//     --kernel hash|hybrid          this paper's / prior-work kernels
//     --out C.mtx                   write the product
//     --batch-dir DIR               stream batches to DIR instead of RAM
//     --stats                       print flops / nnz / cf before running
//     --report report.json          write the RunReport (traffic/timings)
//     --trace trace.json            write a Chrome trace-event timeline
//     --ckpt-dir DIR                checkpoint batches to DIR (enables
//                                   restart from the newest valid snapshot)
//     --ckpt-every N (1)            save every N finished batches
//     --max-restarts R (3)          supervise the job: relaunch up to R
//                                   times after recoverable failures
//
// Exit status 0 on success; a short per-step breakdown is always printed.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>

#include "apps/batch_io.hpp"
#include "ckpt/checkpoint.hpp"
#include "grid/dist.hpp"
#include "obs/report.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/stats.hpp"
#include "summa/batched.hpp"
#include "vmpi/runtime.hpp"

namespace {
void usage() {
  std::cerr
      << "usage: spgemm A.mtx [B.mtx] [--aat] [--ranks N] [--layers L]\n"
         "              [--memory-mb M] [--batches B] [--kernel hash|hybrid]\n"
         "              [--out C.mtx] [--batch-dir DIR] [--stats]\n"
         "              [--report report.json] [--trace trace.json]\n"
         "              [--ckpt-dir DIR] [--ckpt-every N] "
         "[--max-restarts R]\n";
}
}  // namespace

int main(int argc, char** argv) {
  using namespace casp;
  std::string a_path, b_path, out_path, batch_dir, report_path, trace_path;
  std::string ckpt_dir;
  bool aat = false, stats = false;
  int ranks = 16, layers = 4;
  Bytes memory_mb = 0;
  Index batches = 0;
  std::uint64_t ckpt_every = 1;
  int max_restarts = -1;  // -1: unsupervised single attempt
  SummaOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--aat") {
      aat = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--ranks") {
      ranks = std::stoi(next("--ranks"));
    } else if (arg == "--layers") {
      layers = std::stoi(next("--layers"));
    } else if (arg == "--memory-mb") {
      memory_mb = static_cast<Bytes>(std::stoll(next("--memory-mb")));
    } else if (arg == "--batches") {
      batches = std::stoll(next("--batches"));
    } else if (arg == "--kernel") {
      const std::string kernel = next("--kernel");
      if (kernel == "hash") {
        opts.local_kind = SpGemmKind::kUnsortedHash;
        opts.merge_kind = MergeKind::kUnsortedHash;
      } else if (kernel == "hybrid") {
        opts.local_kind = SpGemmKind::kHybrid;
        opts.merge_kind = MergeKind::kSortedHeap;
      } else {
        std::cerr << "unknown kernel '" << kernel << "'\n";
        return 2;
      }
    } else if (arg == "--out") {
      out_path = next("--out");
    } else if (arg == "--batch-dir") {
      batch_dir = next("--batch-dir");
    } else if (arg == "--report") {
      report_path = next("--report");
    } else if (arg == "--trace") {
      trace_path = next("--trace");
    } else if (arg == "--ckpt-dir") {
      ckpt_dir = next("--ckpt-dir");
    } else if (arg == "--ckpt-every") {
      ckpt_every = std::stoull(next("--ckpt-every"));
      if (ckpt_every == 0) {
        std::cerr << "--ckpt-every must be >= 1\n";
        return 2;
      }
    } else if (arg == "--max-restarts") {
      max_restarts = std::stoi(next("--max-restarts"));
      if (max_restarts < 0) {
        std::cerr << "--max-restarts must be >= 0\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      usage();
      return 2;
    } else if (a_path.empty()) {
      a_path = arg;
    } else if (b_path.empty()) {
      b_path = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (a_path.empty()) {
    usage();
    return 2;
  }
  if (!Grid3D::valid_shape(ranks, layers)) {
    std::cerr << "ranks=" << ranks << " layers=" << layers
              << " is not a valid grid (ranks/layers must be a perfect "
                 "square)\n";
    return 2;
  }

  try {
    const CscMat a = CscMat::from_triples(read_matrix_market_file(a_path));
    CscMat b;
    if (aat) {
      b = a.transpose();
    } else if (!b_path.empty()) {
      b = CscMat::from_triples(read_matrix_market_file(b_path));
    } else {
      b = a;
    }
    std::cout << describe("A", a) << "\n" << describe("B", b) << "\n";
    if (stats) {
      const MultiplyStats ms = multiply_stats(a, b);
      std::cout << "flops=" << ms.flops << " nnz(C)=" << ms.nnz_c
                << " cf=" << ms.compression_factor << "\n";
    }

    opts.force_batches = batches;
    const Bytes total_memory = memory_mb * 1024 * 1024;
    CscMat product;
    Index chosen_b = 1;
    Index final_b = 1;
    // Capture failures instead of letting them propagate as a bare abort:
    // injected faults (CASP_VMPI_FAULTS) and budget exhaustion surface as a
    // structured FailureReport in the run report and on stderr.
    auto body = [&](vmpi::Comm& world) {
      // With an aggregate budget, enforce each rank's share exactly
      // (Symbolic3D only *estimates*; adaptive re-batching recovers
      // when the estimate is wrong).
      MemoryTracker tracker(total_memory == 0
                                ? 0
                                : std::max<Bytes>(1, total_memory /
                                                         world.size()));
      vmpi::arm_alloc_faults(world, tracker);
      SummaOptions my_opts = opts;
      if (total_memory != 0) my_opts.memory = &tracker;
      ckpt::Checkpointer ck;
      if (!ckpt_dir.empty()) {
        ck = ckpt::Checkpointer(ckpt_dir, world.rank(), ckpt_every,
                                &world.recorder());
        my_opts.ckpt = &ck;
      }
      Grid3D grid(world, layers);
      const DistMat3D da = distribute_a_style(grid, a);
      const DistMat3D db = distribute_b_style(grid, b);
      const bool stream = !batch_dir.empty();
      BatchedResult r = batched_summa3d<PlusTimes>(
          grid, da, db, total_memory, my_opts,
          stream ? make_disk_batch_writer(batch_dir, world.rank())
                 : BatchCallback{},
          /*keep_output=*/!stream);
      if (!stream) {
        CscMat full = gather_dist(grid, r.c);
        if (world.rank() == 0) product = std::move(full);
      }
      if (world.rank() == 0) {
        chosen_b = r.batches;
        final_b = r.final_batches;
      }
    };

    // --ckpt-dir / --max-restarts turn on supervision: recoverable
    // failures (rank crash, retry exhaustion, deadlock) relaunch the job,
    // which fast-forwards from the newest valid checkpoint generation.
    const bool supervise = !ckpt_dir.empty() || max_restarts >= 0;
    vmpi::RunResult result;
    obs::RunReport report;
    if (supervise) {
      vmpi::SupervisorOptions sup_opts;
      if (max_restarts >= 0) sup_opts.max_restarts = max_restarts;
      vmpi::SupervisedResult sup =
          vmpi::run_supervised(ranks, body, sup_opts);
      report = obs::build_report(sup);
      if (sup.restarts > 0) {
        std::cout << "supervisor: " << sup.restarts << " restart(s)";
        if (sup.recovered()) std::cout << ", recovered";
        std::cout << "\n";
      }
      result = std::move(sup.result);
    } else {
      vmpi::RunOptions run_opts;
      run_opts.capture_failure = true;
      result = vmpi::run(ranks, body, run_opts);
      report = obs::build_report(result);
    }

    if (!report_path.empty()) {
      obs::write_report_json(report, report_path);
      std::cout << "wrote " << report_path << "\n";
    }
    if (!trace_path.empty()) {
      obs::write_chrome_trace(result, trace_path);
      std::cout << "wrote " << trace_path << "\n";
    }
    if (result.failed()) {
      std::cerr << result.failure->describe() << "\n";
      return 1;
    }

    std::cout << "ran on " << ranks << " virtual ranks, " << layers
              << " layer(s), " << chosen_b << " batch(es)";
    if (final_b != chosen_b)
      std::cout << " (re-batched to " << final_b << ")";
    std::cout << "\n";
    for (const std::string& name : result.time_names())
      std::cout << "  " << name << ": " << result.max_time(name) * 1e3
                << " ms\n";
    if (!batch_dir.empty()) {
      std::cout << "batches streamed to " << batch_dir << "\n";
    } else {
      std::cout << describe("C", product) << "\n";
      if (!out_path.empty()) {
        write_matrix_market_file(out_path, product.to_triples());
        std::cout << "wrote " << out_path << "\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
