// spgemm — multiply Matrix Market files with BatchedSUMMA3D.
//
// A thin wrapper over the job service: flags build one svc::JobSpec, the
// spec is submitted to an in-process svc::Server, and the product plus the
// per-job "casp.job_report.v1" report come back from the job record. The
// only direct-run path left is --batch-dir, which streams batches to disk
// through a callback the service API deliberately does not carry.
//
// Usage:
//   spgemm A.mtx [B.mtx]            multiply two files (omit B to square A)
//     --aat                         multiply A by its transpose instead
//     --stats                       print flops / nnz / cf before running
//     --batch-dir DIR               stream batches to DIR instead of RAM
//   plus the shared JobSpec flags (see --help).
//
// Exit status 0 on success; a short per-step breakdown is always printed.
#include <algorithm>
#include <iostream>
#include <string>
#include <utility>

#include "apps/batch_io.hpp"
#include "ckpt/checkpoint.hpp"
#include "cli_common.hpp"
#include "grid/dist.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/stats.hpp"
#include "summa/batched.hpp"
#include "vmpi/runtime.hpp"

namespace {
void usage() {
  std::cerr << "usage: spgemm A.mtx [B.mtx] [--aat] [--stats] "
               "[--batch-dir DIR] [flags]\n"
            << casp::cli::common_flags_help();
}

/// Direct-run escape hatch for --batch-dir: the service keeps gathered
/// results in the job record, but batch streaming wants a per-rank disk
/// writer callback, so this path drives vmpi::run itself — still deriving
/// every option from the same JobSpec views the service uses.
int run_streaming(const casp::svc::JobSpec& spec, const casp::CscMat& a,
                  const casp::CscMat& b, const std::string& batch_dir,
                  const casp::cli::CommonArgs& args) {
  using namespace casp;
  auto body = [&](vmpi::Comm& world) {
    MemoryTracker tracker(
        spec.memory_bytes == 0
            ? 0
            : std::max<Bytes>(1, spec.memory_bytes /
                                     static_cast<Bytes>(world.size())));
    vmpi::arm_alloc_faults(world, tracker);
    SummaOptions my_opts = spec.summa_options();
    if (spec.memory_bytes != 0) my_opts.memory = &tracker;
    ckpt::Checkpointer ck;
    if (!spec.ckpt_dir.empty()) {
      ck = ckpt::Checkpointer(spec.ckpt_dir, world.rank(), spec.ckpt_every,
                              &world.recorder());
      my_opts.ckpt = &ck;
    }
    Grid3D grid(world, spec.layers);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, b);
    (void)batched_summa3d<PlusTimes>(
        grid, da, db, spec.memory_bytes, my_opts,
        make_disk_batch_writer(batch_dir, world.rank()),
        /*keep_output=*/false);
  };

  vmpi::RunResult result;
  if (spec.supervised()) {
    vmpi::SupervisedResult sup =
        vmpi::run_supervised(spec.ranks, body, spec.supervisor_options());
    if (sup.restarts > 0) {
      std::cout << "supervisor: " << sup.restarts << " restart(s)";
      if (sup.recovered()) std::cout << ", recovered";
      std::cout << "\n";
    }
    result = std::move(sup.result);
  } else {
    result = vmpi::run(spec.ranks, body, spec.run_options());
  }
  if (!args.trace_path.empty()) {
    obs::write_chrome_trace(result, args.trace_path);
    std::cout << "wrote " << args.trace_path << "\n";
  }
  if (result.failed()) {
    std::cerr << result.failure->describe() << "\n";
    return 1;
  }
  std::cout << "batches streamed to " << batch_dir << "\n";
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace casp;
  cli::CommonArgs args;
  args.spec.ranks = 16;
  args.spec.layers = 4;
  bool stats = false;
  std::string batch_dir;
  const int rc = cli::parse_common(
      argc, argv, args,
      [&](const std::string& arg,
          const std::function<std::string(const char*)>& next) {
        if (arg == "--aat") {
          args.spec.aat = true;
        } else if (arg == "--stats") {
          stats = true;
        } else if (arg == "--batch-dir") {
          batch_dir = next("--batch-dir");
        } else {
          return false;
        }
        return true;
      });
  if (rc != 0 || args.help || args.positional.empty() ||
      args.positional.size() > 2) {
    usage();
    return rc != 0 ? rc : (args.help ? 0 : 2);
  }
  svc::JobSpec& spec = args.spec;
  spec.op = svc::JobOp::kSpGemm;
  spec.a = svc::MatrixSource::file(args.positional[0]);
  if (args.positional.size() == 2)
    spec.b = svc::MatrixSource::file(args.positional[1]);

  try {
    if (!batch_dir.empty()) {
      spec.validate();
      const CscMat a = spec.a.materialize();
      const CscMat b = spec.aat ? a.transpose()
                                : (spec.b.empty() ? a : spec.b.materialize());
      std::cout << describe("A", a) << "\n" << describe("B", b) << "\n";
      return run_streaming(spec, a, b, batch_dir, args);
    }

    svc::ServerOptions server_opts;
    server_opts.pool_ranks = spec.ranks;
    svc::Server server(std::move(server_opts));
    const std::string id = server.submit(std::move(spec));
    const svc::JobRecord* queued = server.find(id);
    std::cout << describe("A", queued->in_a) << "\n"
              << describe("B", queued->in_b) << "\n";
    if (stats) {
      const MultiplyStats ms = multiply_stats(queued->in_a, queued->in_b);
      std::cout << "flops=" << ms.flops << " nnz(C)=" << ms.nnz_c
                << " cf=" << ms.compression_factor << "\n";
    }

    const svc::JobRecord& job = server.wait(id);
    const int out = cli::report_outcome(job, args);
    if (out != 0) return out;

    std::cout << "ran on " << job.spec.ranks << " virtual ranks, "
              << job.spec.layers << " layer(s), " << job.batches
              << " batch(es)";
    if (job.final_batches != job.batches)
      std::cout << " (re-batched to " << job.final_batches << ")";
    std::cout << "\n";
    for (const std::string& name : job.run_result.time_names())
      std::cout << "  " << name << ": " << job.run_result.max_time(name) * 1e3
                << " ms\n";
    std::cout << describe("C", job.c) << "\n";
    if (!args.out_path.empty()) {
      write_matrix_market_file(args.out_path, job.c.to_triples());
      std::cout << "wrote " << args.out_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
