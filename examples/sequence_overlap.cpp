// BELLA-style long-read overlap detection via A*A^T (Sec. V-G, Figs.
// 10-11): reads x k-mers matrix, multiplied by its transpose, filtered by
// shared-k-mer count — all-pairs overlap without the quadratic cost.
//
//   ./sequence_overlap [reads] [genome_len] [ranks] [layers] [min_shared]
#include <cstdlib>
#include <iostream>

#include "apps/overlap.hpp"
#include "gen/kmer.hpp"
#include "sparse/stats.hpp"
#include "vmpi/runtime.hpp"

int main(int argc, char** argv) {
  using namespace casp;
  const Index reads = argc > 1 ? std::atoll(argv[1]) : 400;
  const Index genome = argc > 2 ? std::atoll(argv[2]) : 4000;
  const int ranks = argc > 3 ? std::atoi(argv[3]) : 8;
  const int layers = argc > 4 ? std::atoi(argv[4]) : 2;
  const double min_shared = argc > 5 ? std::atof(argv[5]) : 8.0;
  if (!Grid3D::valid_shape(ranks, layers)) {
    std::cerr << "invalid grid\n";
    return 1;
  }

  KmerParams params;
  params.num_reads = reads;
  params.genome_length = genome;
  params.min_read_len = 40;
  params.max_read_len = 120;
  params.kmer_keep_fraction = 0.6;  // BELLA-style k-mer subsampling
  params.seed = 21;
  const KmerMatrix km = generate_kmer_matrix(params);
  std::cout << describe("reads x k-mers", km.mat) << "\n";

  std::vector<OverlapPair> pairs;
  vmpi::run(ranks, [&](vmpi::Comm& world) {
    Grid3D grid(world, layers);
    auto found = find_overlaps_distributed(grid, km.mat, min_shared);
    if (world.rank() == 0) pairs = std::move(found);
  });
  std::cout << "candidate overlaps with >= " << min_shared
            << " shared k-mers: " << pairs.size() << "\n";

  // Precision/recall against the interval ground truth (an overlap "should"
  // be found when the true genomic overlap is comfortably above threshold).
  const Index true_cutoff =
      static_cast<Index>(min_shared / params.kmer_keep_fraction * 1.5);
  Index relevant = 0, hits = 0;
  for (Index i = 0; i < reads; ++i) {
    for (Index j = i + 1; j < reads; ++j) {
      if (km.true_overlap(i, j) >= true_cutoff) ++relevant;
    }
  }
  for (const OverlapPair& pr : pairs)
    if (km.true_overlap(pr.read_a, pr.read_b) >= true_cutoff) ++hits;
  std::cout << "ground-truth overlaps (>= " << true_cutoff
            << " bases): " << relevant << "\n";
  if (!pairs.empty())
    std::cout << "precision: "
              << static_cast<double>(hits) / static_cast<double>(pairs.size())
              << "\n";
  if (relevant > 0)
    std::cout << "recall:    "
              << static_cast<double>(hits) / static_cast<double>(relevant)
              << "\n";
  for (std::size_t k = 0; k < std::min<std::size_t>(5, pairs.size()); ++k)
    std::cout << "  e.g. reads " << pairs[k].read_a << " & " << pairs[k].read_b
              << " share " << pairs[k].shared << " k-mers (true overlap "
              << km.true_overlap(pairs[k].read_a, pairs[k].read_b)
              << " bases)\n";
  return 0;
}
