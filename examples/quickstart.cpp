// Quickstart: multiply two sparse matrices with the full
// communication-avoiding, memory-constrained pipeline.
//
//   ./quickstart [n] [ranks] [layers]
//
// Generates two random n x n matrices, distributes them on a
// ranks-process 3D grid with the given layer count, runs BatchedSUMMA3D,
// and prints the per-step breakdown the paper reports.
#include <cstdlib>
#include <iostream>

#include "gen/er.hpp"
#include "grid/dist.hpp"
#include "sparse/stats.hpp"
#include "summa/batched.hpp"
#include "vmpi/runtime.hpp"

int main(int argc, char** argv) {
  using namespace casp;
  const Index n = argc > 1 ? std::atoll(argv[1]) : 512;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 8;
  const int layers = argc > 3 ? std::atoi(argv[3]) : 2;
  if (!Grid3D::valid_shape(ranks, layers)) {
    std::cerr << "p=" << ranks << ", l=" << layers
              << " is not a valid grid (need p/l a perfect square)\n";
    return 1;
  }

  // 1. Build inputs (any CscMat works: generators, Matrix Market, ...).
  const CscMat a = generate_er_square(n, 8.0, /*seed=*/1);
  const CscMat b = generate_er_square(n, 8.0, /*seed=*/2);
  std::cout << describe("A", a) << "\n" << describe("B", b) << "\n";

  // 2. Run the virtual distributed job.
  CscMat product;  // gathered back for display
  auto result = vmpi::run(ranks, [&](vmpi::Comm& world) {
    Grid3D grid(world, layers);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, b);

    // total_memory = 0 means "fit everything"; give a finite budget and the
    // symbolic step will batch automatically (see
    // memory_constrained_square.cpp).
    BatchedResult r = batched_summa3d<PlusTimes>(grid, da, db,
                                                 /*total_memory=*/0);
    if (world.rank() == 0)
      std::cout << "symbolic chose b=" << r.batches << " batch(es)\n";
    CscMat full = gather_dist(grid, r.c);
    if (world.rank() == 0) product = std::move(full);
  });

  // 3. Inspect the result and the step breakdown.
  std::cout << describe("C = A*B", product) << "\n\nper-step times (max over "
            << ranks << " ranks):\n";
  for (const std::string& name : result.time_names())
    std::cout << "  " << name << ": " << result.max_time(name) * 1e3 << " ms\n";
  const auto traffic = result.traffic_summary();
  std::cout << "\ncommunication volume per phase (total bytes):\n";
  for (const auto& [phase, t] : traffic.total_per_phase)
    std::cout << "  " << phase << ": " << t.bytes << " B in " << t.messages
              << " messages\n";
  return 0;
}
