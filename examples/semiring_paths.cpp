// Semiring generality (Sec. II-A): the same distributed machinery computes
// shortest 2-hop paths with min-plus and widest bottleneck paths with
// max-min — no code change, just a different (add, multiply) pair.
//
//   ./semiring_paths [n] [ranks] [layers]
#include <cstdlib>
#include <iostream>

#include "gen/er.hpp"
#include "grid/dist.hpp"
#include "summa/batched.hpp"
#include "vmpi/runtime.hpp"

int main(int argc, char** argv) {
  using namespace casp;
  const Index n = argc > 1 ? std::atoll(argv[1]) : 400;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 4;
  const int layers = argc > 3 ? std::atoi(argv[3]) : 1;
  if (!Grid3D::valid_shape(ranks, layers)) {
    std::cerr << "invalid grid\n";
    return 1;
  }

  // Edge weights in (0, 1] interpreted as distances (min-plus) or
  // capacities (max-min).
  const CscMat graph = generate_er_square(n, 5.0, 7);
  std::cout << "graph: " << n << " vertices, " << graph.nnz() << " edges\n";

  Index two_hop_pairs = 0;
  double best_two_hop = 1e100;
  double widest = 0.0;
  vmpi::run(ranks, [&](vmpi::Comm& world) {
    Grid3D grid(world, layers);
    const DistMat3D da = distribute_a_style(grid, graph);
    const DistMat3D db = distribute_b_style(grid, graph);

    // (min, +): D2(i,j) = cheapest 2-hop distance from j to i.
    BatchedResult shortest = batched_summa3d<MinPlus>(grid, da, db, 0);
    Index my_pairs = 0;
    double my_best = 1e100;
    for (Value v : shortest.c.local.vals()) {
      ++my_pairs;
      my_best = std::min(my_best, static_cast<double>(v));
    }
    // (max, min): W2(i,j) = widest bottleneck over 2-hop routes.
    BatchedResult bottleneck = batched_summa3d<MaxMin>(grid, da, db, 0);
    double my_widest = 0.0;
    for (Value v : bottleneck.c.local.vals())
      my_widest = std::max(my_widest, static_cast<double>(v));

    const Index pairs = world.allreduce_sum<Index>(my_pairs);
    const double best =
        -world.allreduce_max<double>(-my_best);  // min via negated max
    const double wide = world.allreduce_max<double>(my_widest);
    if (world.rank() == 0) {
      two_hop_pairs = pairs;
      best_two_hop = best;
      widest = wide;
    }
  });

  std::cout << "2-hop reachable ordered pairs: " << two_hop_pairs << "\n";
  std::cout << "cheapest 2-hop distance anywhere: " << best_two_hop << "\n";
  std::cout << "widest 2-hop bottleneck anywhere: " << widest << "\n";
  std::cout << "\n(identical SUMMA pipeline, two different semirings —\n"
            << "swap PlusTimes/MinPlus/MaxMin/OrAnd freely.)\n";
  return 0;
}
