// The headline capability: squaring a matrix whose output does NOT fit in
// memory, by streaming batches (Sec. IV).
//
//   ./memory_constrained_square [n] [ranks] [layers]
//
// Sweeps the memory budget downward and shows the symbolic step choosing
// ever more batches (Eq. 2), while the streamed result stays identical.
// At the bottom of the sweep the inputs themselves no longer fit and the
// library refuses with MemoryError — the regime where "previous SpGEMMs
// could not solve the problem at all".
#include <cstdlib>
#include <iostream>

#include "gen/protein.hpp"
#include "grid/dist.hpp"
#include "sparse/stats.hpp"
#include "summa/batched.hpp"
#include "vmpi/runtime.hpp"

int main(int argc, char** argv) {
  using namespace casp;
  const Index n = argc > 1 ? std::atoll(argv[1]) : 800;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 4;
  const int layers = argc > 3 ? std::atoi(argv[3]) : 1;
  if (!Grid3D::valid_shape(ranks, layers)) {
    std::cerr << "invalid grid\n";
    return 1;
  }

  ProteinParams gp;
  gp.n = n;
  gp.within_density = 0.5;
  gp.seed = 31;
  const CscMat a = generate_protein_similarity(gp).mat;
  std::cout << describe("A", a) << "\n";
  const MultiplyStats ms = multiply_stats(a, a);
  std::cout << "nnz(A^2) = " << ms.nnz_c << "  flops = " << ms.flops
            << "  -> output is " << static_cast<double>(ms.nnz_c) /
                                       static_cast<double>(a.nnz())
            << "x the input\n\n";

  std::cout << "budget(KB/rank)  batches  peak(KB/rank)  output nnz\n";
  vmpi::run(ranks, [&](vmpi::Comm& world) {
    Grid3D grid(world, layers);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    const SymbolicResult sym = symbolic3d(grid, da.local, db.local, 0);
    // Sweep from "everything fits" down to "inputs barely fit".
    const Bytes inputs =
        static_cast<Bytes>(sym.max_nnz_a + sym.max_nnz_b) * kBytesPerNonzero;
    const Bytes full =
        inputs + static_cast<Bytes>(sym.max_nnz_c) * kBytesPerNonzero;
    for (double frac : {1.0, 0.5, 0.25, 0.1, 0.05}) {
      const Bytes per_rank =
          inputs + static_cast<Bytes>(static_cast<double>(full - inputs) * frac);
      MemoryTracker tracker(2 * per_rank);  // slack for transient batch slices
      SummaOptions opts;
      opts.memory = &tracker;
      Index out_nnz = 0;
      BatchedResult r = batched_summa3d<PlusTimes>(
          grid, da, db, static_cast<Bytes>(ranks) * per_rank, opts,
          [&](CscMat&& piece, const BatchInfo&) { out_nnz += piece.nnz(); },
          /*keep_output=*/false);
      const Index total_nnz = world.allreduce_sum<Index>(out_nnz);
      if (world.rank() == 0)
        std::cout << "  " << per_rank / 1024 << "\t\t " << r.batches << "\t  "
                  << tracker.peak() / 1024 << "\t\t" << total_nnz << "\n";
    }
    // And below the floor: refuse loudly instead of crashing mid-run.
    try {
      (void)batched_summa3d<PlusTimes>(grid, da, db,
                                       static_cast<Bytes>(ranks) * inputs / 2);
    } catch (const MemoryError& e) {
      if (world.rank() == 0)
        std::cout << "\nbudget below inputs -> " << e.what() << "\n";
    }
  });
  return 0;
}
