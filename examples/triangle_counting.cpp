// Triangle counting on a power-law (social-network-like) graph — the
// Friendster use case of Sec. V-B(b), via L*U masked SpGEMM.
//
//   ./triangle_counting [scale] [ranks] [layers]
#include <cstdlib>
#include <iostream>

#include "apps/triangle.hpp"
#include "gen/rmat.hpp"
#include "sparse/stats.hpp"
#include "vmpi/runtime.hpp"

int main(int argc, char** argv) {
  using namespace casp;
  const int scale = argc > 1 ? std::atoi(argv[1]) : 11;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 8;
  const int layers = argc > 3 ? std::atoi(argv[3]) : 2;
  if (!Grid3D::valid_shape(ranks, layers)) {
    std::cerr << "invalid grid\n";
    return 1;
  }

  RmatParams params;
  params.scale = scale;
  params.edge_factor = 8.0;
  params.seed = 11;
  const CscMat graph = generate_rmat(params);
  std::cout << describe("R-MAT graph", graph) << "\n";

  Index triangles = 0;
  auto result = vmpi::run(ranks, [&](vmpi::Comm& world) {
    Grid3D grid(world, layers);
    const Index count = count_triangles_distributed(grid, graph);
    if (world.rank() == 0) triangles = count;
  });

  std::cout << "triangles: " << triangles << "\n";
  std::cout << "wall time: " << result.wall_seconds << " s on " << ranks
            << " virtual ranks, " << layers << " layer(s)\n";
  const Index serial = count_triangles_serial(graph);
  std::cout << "serial check: " << serial
            << (serial == triangles ? " (match)" : " (MISMATCH!)") << "\n";
  return serial == triangles ? 0 : 1;
}
