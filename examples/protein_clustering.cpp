// Protein clustering with HipMCL-on-BatchedSUMMA3D (the paper's flagship
// application, Sec. V-C / Fig. 3).
//
//   ./protein_clustering [n] [ranks] [layers] [memory_kb_per_rank]
//
// Generates a synthetic protein-similarity network with planted families,
// clusters it with distributed Markov clustering under the given memory
// budget, and reports recovered-vs-planted quality plus the per-iteration
// batch counts — the quantity Fig. 3 annotates.
#include <cstdlib>
#include <iostream>
#include <map>

#include "apps/mcl.hpp"
#include "gen/protein.hpp"
#include "sparse/stats.hpp"
#include "vmpi/runtime.hpp"

int main(int argc, char** argv) {
  using namespace casp;
  const Index n = argc > 1 ? std::atoll(argv[1]) : 600;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 4;
  const int layers = argc > 3 ? std::atoi(argv[3]) : 1;
  const Bytes mem_kb = argc > 4 ? static_cast<Bytes>(std::atoll(argv[4])) : 0;
  if (!Grid3D::valid_shape(ranks, layers)) {
    std::cerr << "invalid grid\n";
    return 1;
  }

  ProteinParams gp;
  gp.n = n;
  gp.min_family = 8;
  gp.max_family = 64;
  gp.within_density = 0.75;
  gp.cross_edges_per_node = 0.05;
  gp.seed = 42;
  const ProteinMatrix pm = generate_protein_similarity(gp);
  std::cout << describe("similarity network", pm.mat) << "\n";
  const MultiplyStats ms = multiply_stats(pm.mat, pm.mat);
  std::cout << "squaring needs " << ms.flops << " flops, nnz(A^2)=" << ms.nnz_c
            << " (cf=" << ms.compression_factor << ")\n\n";

  MclParams params;
  params.max_iterations = 40;
  MclResult result;
  vmpi::run(ranks, [&](vmpi::Comm& world) {
    Grid3D grid(world, layers);
    const Bytes budget = mem_kb * 1024 * static_cast<Bytes>(ranks);
    MclResult r = mcl_cluster_distributed(grid, pm.mat, params, budget);
    if (world.rank() == 0) result = std::move(r);
  });

  std::cout << "iter  batches  chaos        nnz\n";
  for (std::size_t i = 0; i < result.per_iteration.size(); ++i) {
    const auto& it = result.per_iteration[i];
    std::cout << "  " << i + 1 << "     " << it.batches << "       "
              << it.chaos << "   " << it.nnz_after << "\n";
  }
  std::cout << "\nconverged after " << result.iterations << " iterations; "
            << result.num_clusters << " clusters found\n";

  // Compare against the planted families: majority-label purity.
  std::map<Index, std::map<Index, Index>> cluster_family_counts;
  for (Index v = 0; v < n; ++v)
    ++cluster_family_counts[result.cluster_of[static_cast<std::size_t>(v)]]
                           [pm.family_of[static_cast<std::size_t>(v)]];
  Index majority = 0;
  for (const auto& [cluster, counts] : cluster_family_counts) {
    Index best = 0;
    for (const auto& [family, count] : counts) best = std::max(best, count);
    majority += best;
  }
  std::cout << "purity vs planted families: "
            << static_cast<double>(majority) / static_cast<double>(n) << "\n";
  return 0;
}
