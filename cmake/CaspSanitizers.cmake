# Sanitizer build modes for the whole tree.
#
# CASP_SANITIZE is a comma- or semicolon-separated list of sanitizers:
#   off        (default) no instrumentation
#   thread     ThreadSanitizer — the mode that matters most here, since the
#              vmpi runtime backs every "rank" with a std::thread
#   address    AddressSanitizer (+ leak detection where supported)
#   undefined  UndefinedBehaviorSanitizer, non-recovering so CTest sees
#              failures as failures
# address+undefined may be combined; thread is incompatible with address.
# Flags are applied globally (add_compile_options/add_link_options) so every
# target — library, tests, benches, examples — is instrumented consistently.
#
# Runtime suppressions for ThreadSanitizer live in tools/tsan.supp; the test
# harness points TSAN_OPTIONS at it automatically (see tests/CMakeLists.txt).

set(CASP_SANITIZE "off" CACHE STRING
    "Sanitizer mode: off, thread, address, undefined (address,undefined combinable)")

set(CASP_SANITIZE_ACTIVE FALSE)
set(CASP_SANITIZE_THREAD FALSE)

function(_casp_apply_sanitizers)
  string(REPLACE "," ";" _modes "${CASP_SANITIZE}")
  set(_flags "")
  set(_has_thread FALSE)
  set(_has_address FALSE)
  foreach(_mode IN LISTS _modes)
    string(STRIP "${_mode}" _mode)
    if(_mode STREQUAL "" OR _mode STREQUAL "off" OR _mode STREQUAL "OFF")
      continue()
    elseif(_mode STREQUAL "thread")
      list(APPEND _flags -fsanitize=thread)
      set(_has_thread TRUE)
    elseif(_mode STREQUAL "address")
      list(APPEND _flags -fsanitize=address)
      set(_has_address TRUE)
    elseif(_mode STREQUAL "undefined")
      list(APPEND _flags -fsanitize=undefined -fno-sanitize-recover=all)
    else()
      message(FATAL_ERROR
        "CASP_SANITIZE: unknown mode '${_mode}' (expected off|thread|address|undefined)")
    endif()
  endforeach()

  if(_has_thread AND _has_address)
    message(FATAL_ERROR "CASP_SANITIZE: thread and address cannot be combined")
  endif()
  if(NOT _flags)
    return()
  endif()

  list(REMOVE_DUPLICATES _flags)
  # Frame pointers + debug info make sanitizer reports readable even in
  # optimized builds.
  list(APPEND _flags -fno-omit-frame-pointer -g)
  add_compile_options(${_flags})
  add_link_options(${_flags})
  set(CASP_SANITIZE_ACTIVE TRUE PARENT_SCOPE)
  if(_has_thread)
    set(CASP_SANITIZE_THREAD TRUE PARENT_SCOPE)
  endif()
  message(STATUS "casp: sanitizers enabled (${CASP_SANITIZE})")
endfunction()

_casp_apply_sanitizers()
