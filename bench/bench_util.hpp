// Shared infrastructure for the per-table/per-figure benchmark binaries.
//
// Two execution modes, labeled in every output:
//  - MEASURED: real execution on thread-backed virtual ranks on this host.
//    Timings are real; communication volumes/messages are exact.
//  - MODELED: the alpha-beta cost model (model/costs.hpp) evaluated at the
//    paper's scale (thousands of nodes), driven by exactly-measured problem
//    statistics from the scaled dataset analogs.
#pragma once

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "gen/er.hpp"
#include "gen/kmer.hpp"
#include "gen/protein.hpp"
#include "gen/rmat.hpp"
#include "grid/dist.hpp"
#include "model/costs.hpp"
#include "model/machine.hpp"
#include "model/scaling.hpp"
#include "obs/report.hpp"
#include "sparse/stats.hpp"
#include "summa/batched.hpp"
#include "vmpi/runtime.hpp"

namespace casp::bench {

// ---------------------------------------------------------------------------
// Dataset registry: scaled-down analogs of Table V. Each targets the shape
// that matters for its experiments (output blow-up ratio, cf, sparsity
// skew), at ~1/10^4 of the paper's size so a bench run takes seconds.
// ---------------------------------------------------------------------------

struct Dataset {
  std::string name;        ///< paper matrix this stands in for
  CscMat a;                ///< the matrix (A)
  CscMat b;                ///< second operand (A, or A^T for the AAT cases)
  bool is_aat = false;     ///< true when b = a^T (BELLA/PASTIS pattern)
};

/// Eukarya analog: smallest protein network (3M rows, nnz(C)/nnz(A) ~ 5.6).
Dataset eukarya_s();
/// Isolates-small analog: mid-size protein network, cf ~ 170 in the paper;
/// high within-family density so squaring is compute-heavy.
Dataset isolates_small_s();
/// Isolates analog: the biggest squaring workload (301T flops in paper).
Dataset isolates_s();
/// Metaclust50 analog: sparser than Isolates but vast (nnz(C) ~ 27x nnz(A)).
Dataset metaclust50_s();
/// Friendster analog: power-law social network, nnz(C) ~ 280x nnz(A).
Dataset friendster_s();
/// Rice-kmers analog: hyper-sparse tall A (2 nnz/col), nnz(AA^T) ~ nnz(A),
/// communication-bound, b = 1.
Dataset rice_kmers_s();
/// Metaclust20m analog: reads x k-mers with heavy output blow-up
/// (nnz(C) ~ 156x nnz(A) in the paper).
Dataset metaclust20m_s();

/// All of Table V, in paper order.
std::vector<Dataset> all_datasets();

// ---------------------------------------------------------------------------
// Measured runs
// ---------------------------------------------------------------------------

struct MeasuredRun {
  Index p = 1, l = 1, b = 1;
  /// Max-over-ranks seconds per step (real wall time).
  std::map<std::string, double> step_seconds;
  /// Exact communication per phase (sum over ranks).
  std::map<std::string, vmpi::PhaseTraffic> traffic;
  double wall_seconds = 0.0;
  Index symbolic_batches = 1;  ///< what the symbolic step would choose
  Index output_nnz = 0;
  /// The full observability aggregate of the run — the same document the
  /// CLIs' --report flag writes. step_seconds/traffic above are convenience
  /// views of its entries.
  obs::RunReport report;
};

/// Run BatchedSUMMA3D on `p` virtual ranks and collect the breakdown.
/// force_b = 0 lets the symbolic step decide against `total_memory`.
MeasuredRun run_measured(const Dataset& data, int p, int l, Index force_b,
                         Bytes total_memory = 0,
                         const SummaOptions& base_opts = {});

// ---------------------------------------------------------------------------
// Modeled runs
// ---------------------------------------------------------------------------

/// Problem statistics of a dataset, scaled up by `scale_factor` to paper
/// magnitude (1 = use the analog's own size). The layered intermediate
/// volume is measured exactly on the analog and scaled with everything
/// else, preserving the compression structure.
/// `stages` further subdivides the inner dimension (the SUMMA stage count
/// q): the unmerged volume is measured on l*stages slices, matching what
/// the distributed algorithm stores per process at grid sqrt(p/l)^2 * l.
ProblemStats dataset_stats(const Dataset& data, Index layers,
                           double scale_factor = 1.0, Index stages = 1);

/// The Table V statistics of each original matrix (indexable by the analog
/// name, e.g. "Friendster-s" -> the real Friendster numbers).
struct PaperStats {
  double nnz_a = 0;
  double nnz_b = 0;
  double flops = 0;
  double nnz_c = 0;
};
PaperStats paper_stats(const std::string& analog_name);

/// Analog statistics rescaled so every field matches the *original*
/// matrix's Table V magnitude: nnz(A)/nnz(B) by the input ratio, flops by
/// the flop ratio, nnz(C) by the output ratio, and the layered
/// intermediate volume by the flop ratio (it lives between nnz(C) and
/// flops). This preserves the paper's compute-to-communication balance,
/// which plain single-factor scaling cannot (the analogs' compression
/// factors are necessarily smaller at ~10^4x reduced size).
ProblemStats dataset_stats_paper_scale(const Dataset& data, Index layers,
                                       Index stages = 1);

/// Configure a machine's per-node memory so that, at the *smallest*
/// process count of a sweep, inputs fit with `input_headroom`x slack but
/// only `output_fraction` of the unmerged output does — the memory-tight
/// regime of the paper's experiments, where the symbolic step must batch.
/// As the sweep adds nodes, aggregate memory grows and b falls, exactly
/// the super-linear-speedup mechanism of Figs. 6-7.
Machine machine_with_tight_memory(Machine machine, const ProblemStats& stats,
                                  Index smallest_p,
                                  double input_headroom = 4.0,
                                  double output_fraction = 0.15);

// ---------------------------------------------------------------------------
// Output helpers
// ---------------------------------------------------------------------------

/// Fixed-width table printing.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(const std::vector<std::string>& cells);
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double v, int precision = 3);
std::string fmt_int(Index v);
/// "1.23 s" / "45.6 ms" / "789 us" auto-ranged.
std::string fmt_time(double seconds);
/// "12.3 GB" auto-ranged.
std::string fmt_bytes(double bytes);

void print_header(const std::string& title, const std::string& mode);

/// Machine-readable perf records for cross-PR tracking: a JSON array of
/// {"op", "bytes", "ns", "copies"} objects (BENCH_kernels.json /
/// BENCH_abcast.json). `bytes` is the logical payload per operation, `ns`
/// wall time per operation, `copies` Payload deep copies per operation.
class JsonRecords {
 public:
  void add(const std::string& op, double bytes, double ns, double copies);
  /// Writes the array to `path`; prints a note and returns false on error.
  bool write(const std::string& path) const;

 private:
  struct Record {
    std::string op;
    double bytes = 0;
    double ns = 0;
    double copies = 0;
  };
  std::vector<Record> records_;
};

}  // namespace casp::bench
