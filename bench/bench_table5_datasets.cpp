// Table V: statistics of the test matrices.
//
// Prints the same columns the paper reports (rows, columns, nnz(A),
// nnz(C), flops) for the scaled-down analogs, next to the paper's values
// for the originals, plus the shape ratios (output blow-up, compression
// factor) that the analogs are built to preserve.
#include "bench_util.hpp"

namespace {
struct PaperRow {
  const char* name;
  double rows, cols, nnz_a, nnz_c, flops;  // paper values
};
// Table V of the paper. M/B/T expanded.
const PaperRow kPaper[] = {
    {"Eukarya", 3e6, 3e6, 360e6, 2e9, 134e9},
    {"Rice-kmers", 5e6, 2e9, 4.5e9, 6e9, 12.4e9},
    {"Metaclust20m", 20e6, 244e6, 2e9, 312e9, 347e9},
    {"Isolates-small", 35e6, 35e6, 17e9, 248e9, 42e12},
    {"Friendster", 66e6, 66e6, 3.6e9, 1e12, 1.4e12},
    {"Isolates", 70e6, 70e6, 68e9, 984e9, 301e12},
    {"Metaclust50", 282e6, 282e6, 37e9, 1e12, 92e12},
};
}  // namespace

int main() {
  using namespace casp;
  using namespace casp::bench;
  print_header("Table V: test matrices (scaled analogs vs paper originals)",
               "MEASURED (analog statistics are exact; paper values quoted)");

  Table table({"matrix", "rows", "cols", "nnz(A)", "nnz(C)", "flops",
               "nnzC/nnzA", "paper", "cf", "paper"});
  const auto datasets = all_datasets();
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    const Dataset& d = datasets[i];
    const MultiplyStats ms = multiply_stats(d.a, d.b);
    const PaperRow& p = kPaper[i];
    const double blowup = static_cast<double>(ms.nnz_c) /
                          static_cast<double>(d.a.nnz());
    const double paper_blowup = p.nnz_c / p.nnz_a;
    const double paper_cf = p.flops / p.nnz_c;
    table.add_row({d.name, fmt_int(d.a.nrows()), fmt_int(d.a.ncols()),
                   fmt_int(d.a.nnz()), fmt_int(ms.nnz_c), fmt_int(ms.flops),
                   fmt(blowup), fmt(paper_blowup), fmt(ms.compression_factor),
                   fmt(paper_cf)});
  }
  table.print();
  std::printf(
      "\nShape criterion: the analogs preserve the *regime* of each matrix —\n"
      "which ones blow up when squared (batching needed) and which are\n"
      "compute- vs communication-bound (cf). Absolute sizes are ~10^4x\n"
      "smaller than the paper's (Sec. 'substitutions', DESIGN.md).\n");
  return 0;
}
