// Table VII: local computation improvements (previous heap/hybrid kernels
// vs this paper's unsorted-hash kernels) for Local-Multiply, Merge-Layer
// and Merge-Fiber, at l in {1, 4, 16}.
//
// MEASURED: the exact local workload of one process on the paper's
// 65,536-core grid (p = 4096 processes, q = sqrt(p/l) SUMMA stages) is
// reconstructed serially from the Isolates-small analog:
//   - Local-Multiply: the q per-stage partial products (inner dimension
//     sliced q*l ways, the layer's q slices multiplied one by one);
//   - Merge-Layer:    the q-way merge of those partials;
//   - Merge-Fiber:    the l-way merge of per-layer column pieces.
// Both kernel stacks run on identical inputs; fan-ins match the paper's
// grid, which is what makes the heap merges pay their lg(ways) factor.
//
// Paper findings to reproduce: merges improve by roughly an order of
// magnitude; the unsorted local multiply gains more at higher l (it may
// lose at l = 1 where the hybrid's heap branch shines); Merge-Fiber does
// not exist at l = 1.
#include <algorithm>
#include <cmath>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "gen/er.hpp"
#include "kernels/merge.hpp"
#include "kernels/spgemm.hpp"

using namespace casp;
using namespace casp::bench;

namespace {

struct StepTimes {
  double local_multiply = 0.0;
  double merge_layer = 0.0;
  double merge_fiber = 0.0;
};

/// Reconstruct one process's pipeline: q stage-multiplies per layer ->
/// q-way Merge-Layer -> l-way Merge-Fiber over column pieces.
StepTimes run_pipeline(const CscMat& a, const CscMat& b, Index l, Index q,
                       SpGemmKind local_kind, MergeKind merge_kind) {
  StepTimes out;
  const Index inner = a.ncols();
  const CscMat bt = b.transpose();

  std::vector<CscMat> layer_results;  // D^(k) for each layer
  for (Index k = 0; k < l; ++k) {
    // Layer k's inner-dimension slice, further split into q stage slices.
    std::vector<CscMat> partials;
    for (Index s = 0; s < q; ++s) {
      const Index t = s * l + k;  // stage-major nesting as in the grid
      const Index lo = part_low(t, q * l, inner);
      const Index hi = part_low(t + 1, q * l, inner);
      const CscMat a_slice = a.slice_cols(lo, hi);
      const CscMat b_slice = bt.slice_cols(lo, hi).transpose();
      Stopwatch watch;
      partials.push_back(local_spgemm<PlusTimes>(a_slice, b_slice, local_kind));
      out.local_multiply += watch.seconds();
    }
    Stopwatch watch;
    layer_results.push_back(
        merge_matrices<PlusTimes>(csc_refs(partials), merge_kind));
    out.merge_layer += watch.seconds();
  }

  if (l > 1) {
    // Merge-Fiber: each rank merges the l pieces covering its column
    // share; measure it on the first column share (1/l of the columns from
    // every layer result).
    std::vector<CscMat> pieces;
    for (const CscMat& d : layer_results)
      pieces.push_back(d.slice_cols(0, part_low(1, l, d.ncols())));
    Stopwatch watch;
    CscMat merged = merge_matrices<PlusTimes>(csc_refs(pieces), merge_kind);
    if (merge_kind == MergeKind::kUnsortedHash) merged.sort_columns();
    out.merge_fiber = watch.seconds() * static_cast<double>(l);  // all shares
  }
  return out;
}

/// Merge time on pieces with paper-representative per-column fill.
///
/// Substitution note (DESIGN.md): dividing the 6000-row analog across 4096
/// processes leaves the per-stage partials with nearly-empty columns, so
/// merging them cannot exhibit the paper's regime. One process's D pieces
/// on Cori carry tens of nonzeros per column; these synthesized pieces
/// match that fill (and the paper's fan-in), which is what the lg(ways)
/// heap penalty actually depends on.
double merge_time(Index ways, MergeKind kind, std::uint64_t seed) {
  std::vector<CscMat> pieces;
  for (Index s = 0; s < ways; ++s)
    pieces.push_back(generate_er_square(2048, 24.0, seed + static_cast<std::uint64_t>(s)));
  Stopwatch watch;
  CscMat merged = merge_matrices<PlusTimes>(csc_refs(pieces), kind);
  const double t = watch.seconds();
  if (merged.nnz() == 0) std::abort();  // keep the optimizer honest
  return t;
}

}  // namespace

int main() {
  print_header("Table VII: local kernel improvements, Isolates-small analog",
               "MEASURED (one process's workload at the 65,536-core grid "
               "shape: p=4096, q=sqrt(p/l))");

  Dataset data = isolates_small_s();
  const int repeats = 3;

  // -- Local-Multiply: the analog's per-layer stage multiplies -------------
  std::printf("--- Local-Multiply on the analog's stage slices ---\n");
  Table mult_table({"l", "q(stages)", "prev (hybrid)", "now (unsorted-hash)",
                    "speedup"});
  double l16_mult = 0.0;
  for (Index l : {Index{1}, Index{4}, Index{16}}) {
    const Index q = static_cast<Index>(std::sqrt(4096.0 / static_cast<double>(l)));
    double best[2] = {1e100, 1e100};
    int idx = 0;
    for (bool previous : {true, false}) {
      for (int rep = 0; rep < repeats; ++rep) {
        const StepTimes t = run_pipeline(
            data.a, data.b, l, q,
            previous ? SpGemmKind::kHybrid : SpGemmKind::kUnsortedHash,
            previous ? MergeKind::kSortedHeap : MergeKind::kUnsortedHash);
        best[idx] = std::min(best[idx], t.local_multiply);
      }
      ++idx;
    }
    mult_table.add_row({fmt_int(l), fmt_int(q), fmt_time(best[0]),
                        fmt_time(best[1]), fmt(best[0] / best[1])});
    if (l == 16) l16_mult = best[0] / best[1];
  }
  mult_table.print();

  // -- Merges at the paper's fan-ins and per-column fill --------------------
  std::printf("\n--- merges at the grid's fan-ins, paper-like column fill "
              "(synthesized pieces; see comment) ---\n");
  Table merge_table({"l", "step", "ways", "prev (sorted-heap)",
                     "now (unsorted-hash)", "speedup"});
  double l16_merge[2] = {0, 0};
  for (Index l : {Index{1}, Index{4}, Index{16}}) {
    const Index q = static_cast<Index>(std::sqrt(4096.0 / static_cast<double>(l)));
    double layer_prev = 1e100, layer_now = 1e100;
    for (int rep = 0; rep < repeats; ++rep) {
      layer_prev = std::min(layer_prev,
                            merge_time(q, MergeKind::kSortedHeap, 500));
      layer_now = std::min(layer_now,
                           merge_time(q, MergeKind::kUnsortedHash, 500));
    }
    merge_table.add_row({fmt_int(l), "Merge-Layer", fmt_int(q),
                         fmt_time(layer_prev), fmt_time(layer_now),
                         fmt(layer_prev / layer_now)});
    if (l > 1) {
      double fiber_prev = 1e100, fiber_now = 1e100;
      for (int rep = 0; rep < repeats; ++rep) {
        fiber_prev = std::min(fiber_prev,
                              merge_time(l, MergeKind::kSortedHeap, 600));
        fiber_now = std::min(fiber_now,
                             merge_time(l, MergeKind::kUnsortedHash, 600));
      }
      merge_table.add_row({"", "Merge-Fiber", fmt_int(l),
                           fmt_time(fiber_prev), fmt_time(fiber_now),
                           fmt(fiber_prev / fiber_now)});
      if (l == 16) {
        l16_merge[0] = layer_prev / layer_now;
        l16_merge[1] = fiber_prev / fiber_now;
      }
    }
  }
  merge_table.print();
  std::printf("\nat l=16: Local-Multiply speedup %.2fx (paper: ~1.3x), "
              "Merge-Layer speedup %.1fx (paper: ~11x), Merge-Fiber "
              "speedup %.1fx (paper: ~10x)\n",
              l16_mult, l16_merge[0], l16_merge[1]);
  std::printf(
      "\nShape criteria: merges favor hash increasingly with fan-in; the\n"
      "absolute gap vs the paper's 10x also reflects their heavier heap\n"
      "implementation — ours (std::priority_queue over spans) narrows it.\n");
  return 0;
}
