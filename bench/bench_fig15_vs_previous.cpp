// Fig. 15: BatchedSUMMA3D (this paper: unsorted-hash kernels, one final
// sort) vs the previous SUMMA3D of [13] (hybrid sorted local multiply +
// heap merges), squaring Eukarya with 4 layers, no batching.
//
// MEASURED: both pipelines run for real on virtual ranks; only the kernel
// configuration differs (SummaOptions::local_kind / merge_kind), exactly
// like flipping between the two implementations. Paper finding: >8x faster
// computation, slightly faster communication.
#include <algorithm>
#include <cmath>

#include "bench_util.hpp"

using namespace casp;
using namespace casp::bench;

int main() {
  print_header("Fig. 15: this work vs previous SUMMA3D [13], Eukarya, l = 4",
               "MEASURED (real kernel execution, virtual ranks)");

  Dataset data = eukarya_s();
  const int p = 16, l = 4;
  const int repeats = 3;

  struct Pipeline {
    const char* name;
    SummaOptions opts;
  };
  Pipeline pipelines[2];
  pipelines[0].name = "BatchedSUMMA3D (this work)";
  pipelines[0].opts.local_kind = SpGemmKind::kUnsortedHash;
  pipelines[0].opts.merge_kind = MergeKind::kUnsortedHash;
  pipelines[1].name = "previous SUMMA3D [13]";
  pipelines[1].opts.local_kind = SpGemmKind::kHybrid;
  pipelines[1].opts.merge_kind = MergeKind::kSortedHeap;

  Table table({"pipeline", "Local-Mult", "Merge-Layer", "Merge-Fiber",
               "computation", "communication", "wall"});
  double computation[2] = {0, 0};
  double communication[2] = {0, 0};
  for (int which = 0; which < 2; ++which) {
    // Best-of-N to de-noise the shared-core timings.
    MeasuredRun best;
    double best_wall = 1e100;
    for (int rep = 0; rep < repeats; ++rep) {
      MeasuredRun r = run_measured(data, p, l, 1, 0, pipelines[which].opts);
      if (r.wall_seconds < best_wall) {
        best_wall = r.wall_seconds;
        best = std::move(r);
      }
    }
    auto sec = [&](const char* s) {
      const auto it = best.step_seconds.find(s);
      return it == best.step_seconds.end() ? 0.0 : it->second;
    };
    computation[which] = sec(steps::kLocalMultiply) +
                         sec(steps::kMergeLayer) + sec(steps::kMergeFiber);
    communication[which] = sec(steps::kABcast) + sec(steps::kBBcast) +
                           sec(steps::kAllToAllFiber);
    table.add_row({pipelines[which].name, fmt_time(sec(steps::kLocalMultiply)),
                   fmt_time(sec(steps::kMergeLayer)),
                   fmt_time(sec(steps::kMergeFiber)),
                   fmt_time(computation[which]),
                   fmt_time(communication[which]), fmt_time(best.wall_seconds)});
  }
  table.print();
  std::printf("\ncomputation speedup of this work: %.1fx (paper: >8x)\n",
              computation[1] / computation[0]);
  std::printf("communication ratio (previous/now): %.2fx (paper: slightly "
              ">1, same volumes, lighter handling)\n",
              communication[1] / std::max(communication[0], 1e-12));
  return 0;
}
