// Fig. 8: computation vs communication inside the symbolic step
// (Isolates-small, 65,536 cores), l in {1, 4, 16}.
//
// Shape criteria: the symbolic step is communication-dominated (its
// compute is a cheap counting pass), so adding layers shrinks its
// communication >4x from l=1 to l=16 and its total >2x. The measured part
// runs the real Symbolic3D on virtual ranks and reports its exact traffic.
#include <algorithm>
#include <cmath>

#include "bench_util.hpp"
#include "summa/symbolic3d.hpp"

using namespace casp;
using namespace casp::bench;

int main() {
  print_header("Fig. 8: symbolic step, computation vs communication",
               "MODELED at 65,536 cores + MEASURED at 64 ranks");

  Dataset data = isolates_small_s();
  const Machine machine = cori_knl();
  const Index p = 65536 / machine.threads_per_process;

  Table table({"l", "symbolic comm (modeled)", "symbolic comp (modeled)",
               "total"});
  double comm_l1 = 0.0;
  for (Index l : {Index{1}, Index{4}, Index{16}}) {
    const ProblemStats stats = dataset_stats_paper_scale(data, l);
    // Separate the model's symbolic terms: comm = bcast latency+bandwidth,
    // comp = counting pass.
    const double q = std::sqrt(static_cast<double>(p) / static_cast<double>(l));
    const double r = static_cast<double>(kBytesPerNonzero);
    const double comm =
        2.0 * machine.alpha * q * std::log2(std::max(2.0, q)) +
        machine.beta * r *
            static_cast<double>(stats.nnz_a + stats.nnz_b) * q /
            static_cast<double>(p);
    const double comp = static_cast<double>(stats.flops) /
                        (static_cast<double>(p) * machine.symbolic_rate);
    if (l == 1) comm_l1 = comm;
    table.add_row({fmt_int(l), fmt_time(comm), fmt_time(comp),
                   fmt_time(comm + comp)});
  }
  table.print();
  (void)comm_l1;

  // The communication-shrink ratio from l=1 to l=16.
  {
    const ProblemStats s1 = dataset_stats_paper_scale(data, 1);
    const double q1 = std::sqrt(static_cast<double>(p));
    const double q16 = std::sqrt(static_cast<double>(p) / 16.0);
    const double r = static_cast<double>(kBytesPerNonzero);
    const double c1 = 2.0 * machine.alpha * q1 * std::log2(q1) +
                      machine.beta * r *
                          static_cast<double>(s1.nnz_a + s1.nnz_b) * q1 /
                          static_cast<double>(p);
    const double c16 = 2.0 * machine.alpha * q16 * std::log2(q16) +
                       machine.beta * r *
                           static_cast<double>(s1.nnz_a + s1.nnz_b) * q16 /
                           static_cast<double>(p);
    std::printf("\nl=1 -> l=16 shrinks symbolic communication %.2fx "
                "(paper: >4x; sqrt(16)=4 expected in the bandwidth "
                "regime)\n\n",
                c1 / c16);
  }

  std::printf("--- measured Symbolic3D traffic, 64 virtual ranks "
              "[MEASURED] ---\n");
  Table meas({"l", "symbolic bytes", "symbolic messages", "chosen b"});
  for (int l : {1, 4, 16}) {
    Index batches = 0;
    std::map<std::string, vmpi::PhaseTraffic> traffic;
    auto result = vmpi::run(64, [&](vmpi::Comm& world) {
      Grid3D grid(world, l);
      const DistMat3D da = distribute_a_style(grid, data.a);
      const DistMat3D db = distribute_b_style(grid, data.b);
      // Offer enough memory for inputs plus a tenth of the output.
      const SymbolicResult probe = symbolic3d(grid, da.local, db.local, 0);
      const Bytes budget =
          static_cast<Bytes>(world.size()) *
          (static_cast<Bytes>(probe.max_nnz_a + probe.max_nnz_b) +
           static_cast<Bytes>(probe.max_nnz_c) / 10) *
          kBytesPerNonzero;
      const SymbolicResult sym = symbolic3d(grid, da.local, db.local, budget);
      if (world.rank() == 0) batches = sym.batches;
    });
    traffic = result.traffic_summary().total_per_phase;
    const auto& t = traffic.at(steps::kSymbolic);
    meas.add_row({fmt_int(l), fmt_bytes(static_cast<double>(t.bytes)),
                  fmt_int(static_cast<Index>(t.messages)), fmt_int(batches)});
  }
  meas.print();
  std::printf("\n(measured bytes include both symbolic probes; the 1/sqrt(l)\n"
              "volume law is the same one the model integrates.)\n");
  return 0;
}
