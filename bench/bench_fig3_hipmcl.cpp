// Fig. 3: first iterations of HipMCL on Isolates-small, 1-layer vs
// 16-layer BatchedSUMMA3D, with per-iteration batch counts.
//
// Paper findings to reproduce: (1) without batching the first iterations
// simply cannot run (memory), (2) the early, dense iterations need several
// batches, later ones fewer as pruning thins the iterate, (3) 16 layers
// beats 1 layer by ~1.88x overall at 65,536 cores.
//
// MEASURED: real distributed MCL on virtual ranks with a tight budget,
// reporting per-iteration batch counts and iterate sizes. MODELED: the
// per-iteration expansion cost at 65,536 cores for l = 1 vs l = 16, driven
// by the measured per-iteration statistics.
#include "apps/mcl.hpp"
#include "bench_util.hpp"

using namespace casp;
using namespace casp::bench;

int main() {
  print_header("Fig. 3: HipMCL iterations, 1 vs 16 layers",
               "MEASURED on 16 virtual ranks + MODELED at 65,536 cores");

  // A protein network in the HipMCL regime (clusters + noise).
  ProteinParams gp;
  gp.n = 2000;
  gp.min_family = 8;
  gp.max_family = 128;
  gp.within_density = 0.3;
  gp.cross_edges_per_node = 0.5;
  gp.seed = 301;
  const ProteinMatrix pm = generate_protein_similarity(gp);

  MclParams params;
  params.max_iterations = 10;  // "first 10 iterations" as in Fig. 3
  params.chaos_threshold = 0.0;  // do not converge early; run all 10

  // Budget: inputs + a fraction of the first expansion's output, so early
  // iterations batch and later (pruned) ones need fewer batches.
  MclResult measured;
  std::vector<double> iter_walls;
  for (int l : {1, 4}) {  // q must stay >= 1: 16 ranks -> l in {1, 4}
    Stopwatch watch;
    MclResult r;
    vmpi::run(16, [&](vmpi::Comm& world) {
      Grid3D grid(world, l);
      const DistMat3D da = distribute_a_style(grid, pm.mat);
      const DistMat3D db = distribute_b_style(grid, pm.mat);
      const SymbolicResult probe = symbolic3d(grid, da.local, db.local, 0);
      const Bytes budget =
          static_cast<Bytes>(world.size()) *
          (static_cast<Bytes>(probe.max_nnz_a + probe.max_nnz_b) * 4 +
           static_cast<Bytes>(probe.max_nnz_c) / 3) *
          kBytesPerNonzero;
      MclResult local = mcl_cluster_distributed(grid, pm.mat, params, budget);
      if (world.rank() == 0) r = std::move(local);
    });
    const double wall = watch.seconds();
    std::printf("--- l = %d [MEASURED, 16 virtual ranks] ---\n", l);
    Table table({"iteration", "batches", "nnz after prune", "chaos"});
    for (std::size_t i = 0; i < r.per_iteration.size(); ++i) {
      const auto& it = r.per_iteration[i];
      table.add_row({fmt_int(static_cast<Index>(i + 1)), fmt_int(it.batches),
                     fmt_int(it.nnz_after), fmt(it.chaos)});
    }
    table.print();
    std::printf("wall time for %d iterations: %s; clusters so far: %lld\n\n",
                r.iterations, fmt_time(wall).c_str(),
                static_cast<long long>(r.num_clusters));
    if (l == 1) measured = r;
    iter_walls.push_back(wall);
  }

  // Modeled comparison at paper scale: expansion cost per iteration for
  // l = 1 vs l = 16 on 65,536 cores, using the measured per-iteration nnz.
  std::printf("--- modeled expansion per iteration at 65,536 cores "
              "[MODELED] ---\n");
  const Machine machine = cori_knl();
  const Index p = 65536 / machine.threads_per_process;
  const double scale = 17e9 / static_cast<double>(pm.mat.nnz());
  Table model({"iteration", "l=1 total", "(b)", "l=16 total", "(b)",
               "speedup 16-layer"});
  double sum1 = 0.0, sum16 = 0.0;
  CscMat iterate = pm.mat;
  mcl_normalize_columns(iterate);
  for (int iter = 1; iter <= 5; ++iter) {
    Dataset d;
    d.name = "iterate";
    d.a = iterate;
    d.b = iterate;
    double totals[2];
    Index bs[2];
    int idx = 0;
    for (Index l : {Index{1}, Index{16}}) {
      ProblemStats stats = dataset_stats(d, l, scale);
      // Budget derived from the *first* iterate (fixed hardware across
      // iterations, as on Cori).
      Machine m = machine_with_tight_memory(
          machine, dataset_stats(Dataset{"i0", pm.mat, pm.mat, false}, 16, scale),
          p, 4.0, 0.2);
      const Index nodes = p / m.processes_per_node();
      const Bytes memory = static_cast<Bytes>(nodes) * m.memory_per_node;
      const Index b = predict_batches(stats, p, memory);
      const StepSeconds t = predict_steps(m, stats, {p, l, b, true});
      totals[idx] = total_seconds(t);
      bs[idx] = b;
      ++idx;
    }
    sum1 += totals[0];
    sum16 += totals[1];
    model.add_row({fmt_int(iter), fmt_time(totals[0]), fmt_int(bs[0]),
                   fmt_time(totals[1]), fmt_int(bs[1]),
                   fmt(totals[0] / totals[1])});
    // Advance the iterate like MCL would (expansion + prune) to let the
    // modeled batch counts decay across iterations as in Fig. 3.
    iterate = local_spgemm<PlusTimes>(iterate, iterate, SpGemmKind::kSortedHash);
    mcl_inflate(iterate, params.inflation);
    mcl_prune(iterate, params.prune_threshold, params.keep_per_col);
    mcl_normalize_columns(iterate);
  }
  model.print();
  std::printf("\nfirst-5-iterations total: l=1 %s vs l=16 %s -> %.2fx "
              "(paper: 1.88x over 66 iterations)\n",
              fmt_time(sum1).c_str(), fmt_time(sum16).c_str(), sum1 / sum16);
  return 0;
}
