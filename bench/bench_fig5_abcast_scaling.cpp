// Fig. 5: with fixed b, A-Bcast time decreases ~ sqrt(l) as layers grow.
//
// The paper plots observed A-Bcast time against the dashed "expected"
// curve that halves per 4x layer increase (communicator rows shrink by 2).
// We print the modeled time at Fig. 4(b)'s configuration (Friendster,
// 65,536 cores) next to the expected sqrt(l) reference, plus the measured
// per-process A-Bcast volume on virtual ranks, which follows the same law
// exactly.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "common/payload.hpp"

using namespace casp;
using namespace casp::bench;

namespace {

/// Pre-rework broadcast: the same binomial tree as Comm::bcast_payload but
/// with an explicit Payload::copy_of at every tree hop's send boundary,
/// reproducing the per-hop deep copy the transport rework removed (so the
/// p-1 sends still show up as p-1 copies in the ablation's counter delta).
void legacy_bcast(vmpi::Comm& comm, int root, std::vector<std::byte>& data) {
  const int size = comm.size();
  const int relative = (comm.rank() - root + size) % size;
  constexpr int kTag = 77;
  int mask = 1;
  while (mask < size) {
    if ((relative & mask) != 0) {
      const int src = (relative - mask + root) % size;
      data = comm.recv_payload(src, kTag).release_or_copy();
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < size && (relative & (mask - 1)) == 0 &&
        (relative & mask) == 0) {
      const int dest = (relative + mask + root) % size;
      comm.send_payload(dest, kTag,
                        Payload::copy_of(data.data(), data.size()));
    }
    mask >>= 1;
  }
}

struct AblationRun {
  double seconds_per_bcast = 0;
  double copies_per_bcast = 0;
  std::map<std::string, vmpi::PhaseTraffic> traffic;
};

/// `iters` broadcasts of `bytes` payload bytes on `p` ranks, timed as the
/// max over ranks. The job body is nothing but the broadcasts, so the
/// global deep-copy counter delta is attributable to the transport.
AblationRun run_ablation(int p, std::size_t bytes, int iters, bool legacy) {
  const std::uint64_t copies_before = Payload::deep_copies();
  auto result = vmpi::run(p, [&](vmpi::Comm& comm) {
    std::vector<std::byte> buf;
    Payload handle;
    if (comm.rank() == 0) {
      buf.assign(bytes, std::byte{0x5a});
      if (!legacy) handle = Payload::wrap(std::move(buf));
    }
    for (int it = 0; it < iters; ++it) {
      vmpi::ScopedPhase phase(comm.traffic(), steps::kABcast);
      ScopedTimer timer(comm.times(), "bcast");
      if (legacy) {
        legacy_bcast(comm, 0, buf);
      } else {
        (void)comm.bcast_payload(0, handle);
      }
    }
  });
  AblationRun out;
  out.seconds_per_bcast = result.max_time("bcast") / iters;
  out.copies_per_bcast =
      static_cast<double>(Payload::deep_copies() - copies_before) / iters;
  out.traffic = result.traffic_summary().total_per_phase;
  return out;
}

}  // namespace

int main() {
  print_header("Fig. 5: A-Bcast time vs number of layers (fixed b)",
               "MODELED at 65,536 cores + MEASURED volumes at 64 ranks");

  Dataset friendster = friendster_s();
  const Machine machine = cori_knl();
  const Index p = 65536 / machine.threads_per_process;

  Table table({"b", "l", "A-Bcast (modeled)", "expected sqrt(l) ref",
               "ratio vs l=1"});
  for (Index b : {Index{4}, Index{16}, Index{64}}) {
    double base = 0.0;
    for (Index l : {Index{1}, Index{4}, Index{16}}) {
      const ProblemStats stats = dataset_stats_paper_scale(friendster, l);
      const StepSeconds t = predict_steps(machine, stats, {p, l, b, true});
      const double abcast = t.at(steps::kABcast);
      if (l == 1) base = abcast;
      const double expected = base / std::sqrt(static_cast<double>(l));
      table.add_row({fmt_int(b), fmt_int(l), fmt_time(abcast),
                     fmt_time(expected), fmt(base / abcast)});
    }
  }
  table.print();

  std::printf("\n--- measured A-Bcast volume per (receiving) process, 64 "
              "virtual ranks, b = 4 [MEASURED] ---\n");
  Table meas({"l", "total A-Bcast bytes", "bytes x sqrt(l) (should be ~const)"});
  for (int l : {1, 4, 16}) {
    const MeasuredRun r = run_measured(friendster, 64, l, 4);
    const double bytes =
        static_cast<double>(r.traffic.at(steps::kABcast).bytes);
    meas.add_row({fmt_int(l), fmt_bytes(bytes),
                  fmt_bytes(bytes * std::sqrt(static_cast<double>(l)))});
  }
  meas.print();
  std::printf(
      "\nShape criterion: modeled A-Bcast time tracks the sqrt(l) reference\n"
      "(bandwidth term dominates); measured volumes scale exactly as\n"
      "1/sqrt(l) once per-message headers are amortized.\n");

  std::printf(
      "\n--- transport ablation: per-hop deep copies (legacy) vs handle\n"
      "forwarding (reworked), binomial broadcast [MEASURED] ---\n");
  JsonRecords json;
  Table abl({"p", "payload", "legacy copy/hop", "handle fwd", "speedup",
             "copies/bcast L", "copies/bcast H", "traffic"});
  bool all_traffic_identical = true;
  bool speedup_ok = true;
  for (const int p : {8, 16}) {
    for (const std::size_t mb : {std::size_t{1}, std::size_t{4},
                                 std::size_t{16}}) {
      const std::size_t bytes = mb << 20;
      const int iters = 8;
      const AblationRun legacy = run_ablation(p, bytes, iters, true);
      const AblationRun handle = run_ablation(p, bytes, iters, false);
      const bool same_traffic =
          legacy.traffic.size() == handle.traffic.size() &&
          std::all_of(legacy.traffic.begin(), legacy.traffic.end(),
                      [&](const auto& kv) {
                        const auto it = handle.traffic.find(kv.first);
                        return it != handle.traffic.end() &&
                               it->second.messages == kv.second.messages &&
                               it->second.bytes == kv.second.bytes;
                      });
      all_traffic_identical = all_traffic_identical && same_traffic;
      const double speedup =
          legacy.seconds_per_bcast / handle.seconds_per_bcast;
      if (speedup < 2.0) speedup_ok = false;
      abl.add_row({fmt_int(p), fmt_bytes(static_cast<double>(bytes)),
                   fmt_time(legacy.seconds_per_bcast),
                   fmt_time(handle.seconds_per_bcast), fmt(speedup),
                   fmt(legacy.copies_per_bcast), fmt(handle.copies_per_bcast),
                   same_traffic ? "identical" : "DIVERGED"});
      const std::string shape =
          "p" + std::to_string(p) + "/" + std::to_string(mb) + "MiB";
      json.add("bcast-legacy/" + shape, static_cast<double>(bytes),
               legacy.seconds_per_bcast * 1e9, legacy.copies_per_bcast);
      json.add("bcast-payload/" + shape, static_cast<double>(bytes),
               handle.seconds_per_bcast * 1e9, handle.copies_per_bcast);
    }
  }
  abl.print();
  json.write("BENCH_abcast.json");
  std::printf(
      "\nAcceptance: per-phase traffic %s; >=2x wall-clock at p>=8, >=1MiB "
      "payloads %s.\n",
      all_traffic_identical ? "bit-identical in both modes" : "DIVERGED",
      speedup_ok ? "MET" : "NOT MET on this host");
  return 0;
}
