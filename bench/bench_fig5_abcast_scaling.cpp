// Fig. 5: with fixed b, A-Bcast time decreases ~ sqrt(l) as layers grow.
//
// The paper plots observed A-Bcast time against the dashed "expected"
// curve that halves per 4x layer increase (communicator rows shrink by 2).
// We print the modeled time at Fig. 4(b)'s configuration (Friendster,
// 65,536 cores) next to the expected sqrt(l) reference, plus the measured
// per-process A-Bcast volume on virtual ranks, which follows the same law
// exactly.
#include <algorithm>
#include <cmath>

#include "bench_util.hpp"

using namespace casp;
using namespace casp::bench;

int main() {
  print_header("Fig. 5: A-Bcast time vs number of layers (fixed b)",
               "MODELED at 65,536 cores + MEASURED volumes at 64 ranks");

  Dataset friendster = friendster_s();
  const Machine machine = cori_knl();
  const Index p = 65536 / machine.threads_per_process;

  Table table({"b", "l", "A-Bcast (modeled)", "expected sqrt(l) ref",
               "ratio vs l=1"});
  for (Index b : {Index{4}, Index{16}, Index{64}}) {
    double base = 0.0;
    for (Index l : {Index{1}, Index{4}, Index{16}}) {
      const ProblemStats stats = dataset_stats_paper_scale(friendster, l);
      const StepSeconds t = predict_steps(machine, stats, {p, l, b, true});
      const double abcast = t.at(steps::kABcast);
      if (l == 1) base = abcast;
      const double expected = base / std::sqrt(static_cast<double>(l));
      table.add_row({fmt_int(b), fmt_int(l), fmt_time(abcast),
                     fmt_time(expected), fmt(base / abcast)});
    }
  }
  table.print();

  std::printf("\n--- measured A-Bcast volume per (receiving) process, 64 "
              "virtual ranks, b = 4 [MEASURED] ---\n");
  Table meas({"l", "total A-Bcast bytes", "bytes x sqrt(l) (should be ~const)"});
  for (int l : {1, 4, 16}) {
    const MeasuredRun r = run_measured(friendster, 64, l, 4);
    const double bytes =
        static_cast<double>(r.traffic.at(steps::kABcast).bytes);
    meas.add_row({fmt_int(l), fmt_bytes(bytes),
                  fmt_bytes(bytes * std::sqrt(static_cast<double>(l)))});
  }
  meas.print();
  std::printf(
      "\nShape criterion: modeled A-Bcast time tracks the sqrt(l) reference\n"
      "(bandwidth term dominates); measured volumes scale exactly as\n"
      "1/sqrt(l) once per-message headers are amortized.\n");
  return 0;
}
