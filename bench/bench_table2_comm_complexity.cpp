// Table II: communication complexity of every step — validated by
// comparing the *exactly counted* messages and bytes from the
// instrumented runtime against the closed-form totals.
//
// For each (p, l, b) configuration and each communication step:
//   A-Bcast   volume: r * b * nnz(A) * (q-1)/q * q/p * p = r*b*nnzA*(q-1)
//             (a q-rank binomial tree transmits size*(q-1) bytes total)
//   B-Bcast   volume: r * nnz(B) * (q-1)   (b cancels)
//   A2A-Fiber volume: r * Sum_k nnz(D^(k)) * (l-1)/l  (self-share stays)
//   messages: tree depth / pairwise partner counts per invocation.
#include <cmath>

#include "bench_util.hpp"

using namespace casp;
using namespace casp::bench;

int main() {
  print_header("Table II: communication complexity, counted vs closed form",
               "MEASURED (exact message/byte counts) vs FORMULA");

  Dataset data = eukarya_s();
  const double r = static_cast<double>(kBytesPerNonzero);

  Table table({"p", "l", "b", "step", "counted bytes", "formula bytes",
               "ratio", "counted msgs", "formula msgs"});
  for (const auto& [p, l, b] : std::vector<std::tuple<int, int, Index>>{
           {16, 1, 1}, {16, 4, 2}, {16, 16, 1},  // q = 4, 2, 1
           {64, 4, 4}, {64, 16, 2}, {36, 1, 3}}) {
    const MeasuredRun run = run_measured(data, p, l, b);
    const int q = static_cast<int>(std::sqrt(p / l));
    const double nnz_a = static_cast<double>(data.a.nnz());
    const double nnz_b = static_cast<double>(data.b.nnz());
    const Index unmerged = layered_unmerged_nnz(data.a, data.b, l * q) /
                           1;  // per (layer, stage) inner slice
    auto counted = [&](const char* s) -> vmpi::PhaseTraffic {
      const auto it = run.traffic.find(s);
      return it == run.traffic.end() ? vmpi::PhaseTraffic{} : it->second;
    };

    // A-Bcast: b*q broadcasts per (row, layer); each tree moves
    // (block bytes)*(q-1). Summed over all roots and layers, the payload
    // volume is r*b*nnzA*(q-1) (every nonzero of A is shipped (q-1) times
    // per batch). Message count: b*q*(q-1) sends per (row, layer) pair...
    // total = l*q rows * b*q trees * (q-1) messages per tree.
    const double a_bytes = r * static_cast<double>(b) * nnz_a *
                           static_cast<double>(q - 1);
    const double a_msgs = static_cast<double>(l) * q * b * q * (q - 1);
    const auto a_counted = counted(steps::kABcast);
    table.add_row({fmt_int(p), fmt_int(l), fmt_int(b), "A-Bcast",
                   fmt_bytes(static_cast<double>(a_counted.bytes)),
                   fmt_bytes(a_bytes),
                   q == 1 ? "-"
                          : fmt(static_cast<double>(a_counted.bytes) / a_bytes),
                   fmt_int(static_cast<Index>(a_counted.messages)),
                   fmt_int(static_cast<Index>(a_msgs))});

    // B-Bcast: volume independent of b.
    const double b_bytes = r * nnz_b * static_cast<double>(q - 1);
    const auto b_counted = counted(steps::kBBcast);
    table.add_row({"", "", "", "B-Bcast",
                   fmt_bytes(static_cast<double>(b_counted.bytes)),
                   fmt_bytes(b_bytes),
                   q == 1 ? "-"
                          : fmt(static_cast<double>(b_counted.bytes) / b_bytes),
                   fmt_int(static_cast<Index>(b_counted.messages)),
                   fmt_int(static_cast<Index>(a_msgs))});

    // AllToAll-Fiber: the layer-merged volume crosses the fiber except the
    // self share: r * unmerged * (l-1)/l, where unmerged is the tight
    // Sum nnz(D) bound computed on (l*q) inner slices.
    const double fiber_bytes = r * static_cast<double>(unmerged) *
                               static_cast<double>(l - 1) /
                               static_cast<double>(l);
    const double fiber_msgs =
        static_cast<double>(b) * q * q * l * (l - 1);  // pairwise, per grid pos
    const auto f_counted = counted(steps::kAllToAllFiber);
    table.add_row(
        {"", "", "", "A2A-Fiber",
         fmt_bytes(static_cast<double>(f_counted.bytes)),
         fmt_bytes(fiber_bytes),
         l == 1 ? "-"
                : fmt(static_cast<double>(f_counted.bytes) /
                      std::max(fiber_bytes, 1.0)),
         fmt_int(static_cast<Index>(f_counted.messages)),
         fmt_int(static_cast<Index>(fiber_msgs))});
  }
  table.print();
  std::printf(
      "\nMessage counts match the closed forms exactly. Byte ratios differ\n"
      "from 1 for two understood reasons: (1) the formulas use the paper's\n"
      "r = 24 bytes/nonzero triples accounting while the wire format is\n"
      "CSC (16 B/nonzero + 8 B/column), so dense-column payloads land near\n"
      "0.7 and colptr-dominated slices above 1; (2) the A2A-Fiber formula\n"
      "uses the per-(layer,stage)-slice Sum nnz(D^(k)) bound, which is\n"
      "still loose versus the per-process merging a real run performs\n"
      "before the exchange — the below-1 ratios there mirror the paper's\n"
      "remark that flops/(bp) is a loose bandwidth bound.\n");
  return 0;
}
