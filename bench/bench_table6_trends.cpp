// Table VI: direction-of-change summary — how each step's time responds
// to increasing b (fixed l) and increasing l (fixed b).
//
// Derived from the same sweep as Fig. 4, evaluated with the cost model at
// 65,536 cores and cross-checked against measured communication volumes.
// Expected (paper):
//   b up:  A-Bcast UP; B-Bcast flat; Local-Multiply flat (slight up at
//          extreme b); Merge-Layer flat; Merge-Fiber flat; A2A-Fiber flat.
//   l up:  A-Bcast DOWN; B-Bcast DOWN; Local-Multiply DOWN; Merge-Layer
//          flat; Merge-Fiber UP; A2A-Fiber UP.
#include "bench_util.hpp"

using namespace casp;
using namespace casp::bench;

namespace {
std::string direction(double before, double after) {
  if (after > before * 1.15) return "UP";
  if (after < before * 0.87) return "DOWN";
  return "flat";
}
}  // namespace

int main() {
  print_header("Table VI: impact directions of l and b on each step",
               "MODELED at 65,536 cores (derived) + expectations from paper");

  Dataset data = friendster_s();  // the matrix Fig. 4(b) sweeps
  const Machine machine = cori_knl();
  const Index p = 65536 / machine.threads_per_process;
  const double scale = 3.6e9 / static_cast<double>(data.a.nnz());

  const char* kSteps[] = {steps::kABcast,     steps::kBBcast,
                          steps::kLocalMultiply, steps::kMergeLayer,
                          steps::kMergeFiber, steps::kAllToAllFiber};
  const char* kPaperB[] = {"UP", "flat", "flat", "flat", "flat", "flat"};
  const char* kPaperL[] = {"DOWN", "DOWN", "DOWN", "flat", "UP", "UP"};

  // b direction: l = 16 fixed, b 1 -> 16.
  const ProblemStats stats16 = dataset_stats(data, 16, scale);
  const StepSeconds b1 = predict_steps(machine, stats16, {p, 16, 1, true});
  const StepSeconds b16 = predict_steps(machine, stats16, {p, 16, 16, true});
  // l direction: b = 4 fixed, l 1 -> 16 (stats recomputed: volume grows).
  const ProblemStats stats1 = dataset_stats(data, 1, scale);
  const StepSeconds l1 = predict_steps(machine, stats1, {p, 1, 4, true});
  const StepSeconds l16 = predict_steps(machine, stats16, {p, 16, 4, true});

  Table table({"step", "b up (model)", "paper", "l up (model)", "paper"});
  bool all_match = true;
  for (std::size_t i = 0; i < 6; ++i) {
    const std::string db = direction(b1.at(kSteps[i]), b16.at(kSteps[i]));
    std::string dl = direction(l1.at(kSteps[i]), l16.at(kSteps[i]));
    // Merge-Fiber / A2A-Fiber do not exist at l = 1; going from absent to
    // present is "UP".
    if ((kSteps[i] == std::string(steps::kMergeFiber) ||
         kSteps[i] == std::string(steps::kAllToAllFiber)) &&
        l1.at(kSteps[i]) == 0.0 && l16.at(kSteps[i]) > 0.0)
      dl = "UP";
    table.add_row({kSteps[i], db, kPaperB[i], dl, kPaperL[i]});
    all_match = all_match && db == kPaperB[i] && dl == kPaperL[i];
  }
  table.print();
  std::printf("\nall directions match the paper's Table VI: %s\n",
              all_match ? "YES" : "NO");
  return all_match ? 0 : 1;
}
