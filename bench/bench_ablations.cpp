// Ablations of the design choices DESIGN.md calls out.
//
// 1. Block-cyclic vs plain-block batch splitting (Sec. IV-B): the paper
//    chooses block-cyclic column batches so every layer merges an equal
//    share after AllToAll-Fiber. We quantify the Merge-Fiber *balance*
//    under both splittings by measuring the per-layer merged piece sizes.
// 2. Deferred vs incremental merging (Sec. III-A): merging per-stage
//    partials once at the end vs folding each stage into a running
//    accumulator ("computationally more expensive in the worst case [34]").
// 3. Accumulator choice vs compression factor (Sec. II-C): which local
//    kernel wins at low / medium / high cf.
#include <algorithm>
#include <cmath>
#include <numeric>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "gen/er.hpp"
#include "kernels/merge.hpp"
#include "kernels/spgemm.hpp"
#include "sparse/stats.hpp"

using namespace casp;
using namespace casp::bench;

namespace {

// --- Ablation 1: batch splitting and Merge-Fiber balance -------------------

void ablate_batch_splitting() {
  std::printf("--- ablation 1: block-cyclic vs plain-block batches "
              "(Merge-Fiber balance) [MEASURED] ---\n");
  // Within one batch, each layer merges exactly one of the batch's l
  // column blocks. Under plain-block splitting (batch = one contiguous
  // column run, ColSplit into l adjacent pieces) a dense *cluster* of
  // columns — a protein family — can land entirely inside one piece,
  // hammering that layer for the whole batch. Block-cyclic splitting
  // draws the batch's l blocks from distant regions, decorrelating pieces
  // from local structure. Metric: within each batch, max layer-piece nnz
  // over the average; worst case over batches (the Merge-Fiber
  // critical-path inflation of that batch).
  Dataset dataset = isolates_small_s();  // blocky family structure
  const CscMat& b = dataset.b;
  const Index n = b.ncols();
  const Index l = 4, batches = 16;
  const Index nblocks = l * batches;

  Table table({"splitting", "worst per-batch imbalance", "mean imbalance"});
  for (bool cyclic : {true, false}) {
    double worst = 0.0, sum = 0.0;
    for (Index bi = 0; bi < batches; ++bi) {
      std::vector<Index> piece_nnz(static_cast<std::size_t>(l), 0);
      for (Index m = 0; m < l; ++m) {
        Index lo, hi;
        if (cyclic) {
          const Index blk = bi + m * batches;  // the library's scheme
          lo = part_low(blk, nblocks, n);
          hi = part_low(blk + 1, nblocks, n);
        } else {
          // Plain block: batch bi = one contiguous run, split l ways.
          const Index b0 = part_low(bi, batches, n);
          const Index b1 = part_low(bi + 1, batches, n);
          lo = b0 + part_low(m, l, b1 - b0);
          hi = b0 + part_low(m + 1, l, b1 - b0);
        }
        piece_nnz[static_cast<std::size_t>(m)] =
            b.colptr()[static_cast<std::size_t>(hi)] -
            b.colptr()[static_cast<std::size_t>(lo)];
      }
      const Index mx = *std::max_element(piece_nnz.begin(), piece_nnz.end());
      const double avg = static_cast<double>(std::accumulate(
                             piece_nnz.begin(), piece_nnz.end(), Index{0})) /
                         static_cast<double>(l);
      const double imb = avg > 0 ? static_cast<double>(mx) / avg
                                 : 1.0;
      worst = std::max(worst, imb);
      sum += imb;
    }
    table.add_row({cyclic ? "block-cyclic (paper)" : "plain block",
                   fmt(worst), fmt(sum / static_cast<double>(batches))});
  }
  table.print();
  std::printf("(Merge-Fiber waits for the *slowest* layer, so the worst\n"
              "per-batch imbalance is the cost. Clustered inputs — protein\n"
              "families — can concentrate inside a contiguous batch piece;\n"
              "interleaving the batch's blocks across the column range,\n"
              "Fig. 1(i), trims that worst case.)\n\n");
}

// --- Ablation 2: deferred vs incremental merging ---------------------------

void ablate_merge_schedule() {
  std::printf("--- ablation 2: merge once after all stages vs incremental "
              "merging [MEASURED] ---\n");
  // q partial results; deferred = one q-way merge; incremental = fold each
  // partial into a running merged matrix (q-1 pairwise merges that re-touch
  // the accumulated output every time -> O(q * volume) worst case).
  Table table({"stages q", "deferred (1 merge)", "incremental (q-1 merges)",
               "ratio"});
  for (Index q : {Index{4}, Index{16}, Index{64}}) {
    std::vector<CscMat> partials;
    for (Index s = 0; s < q; ++s)
      partials.push_back(
          generate_er_square(2048, 12.0, 40 + static_cast<std::uint64_t>(s)));

    Stopwatch deferred_watch;
    const CscMat deferred =
        merge_matrices<PlusTimes>(csc_refs(partials), MergeKind::kUnsortedHash);
    const double deferred_t = deferred_watch.seconds();

    Stopwatch inc_watch;
    CscMat running = partials[0];
    for (Index s = 1; s < q; ++s) {
      const CscMat pair[] = {std::move(running), partials[static_cast<std::size_t>(s)]};
      running =
          merge_matrices<PlusTimes>(csc_refs(pair), MergeKind::kUnsortedHash);
    }
    const double incremental_t = inc_watch.seconds();
    if (running.nnz() != deferred.nnz()) std::abort();

    table.add_row({fmt_int(q), fmt_time(deferred_t), fmt_time(incremental_t),
                   fmt(incremental_t / deferred_t)});
  }
  table.print();
  std::printf("(the running result is re-hashed q-1 times; deferring the\n"
              "merge touches every entry once — the Sec. III-A choice.)\n\n");
}

// --- Ablation 3: accumulator vs compression factor -------------------------

void ablate_accumulators() {
  std::printf("--- ablation 3: local kernel vs compression factor "
              "[MEASURED] ---\n");
  Table table({"matrix", "cf", "unsorted-hash", "sorted-hash", "heap",
               "hybrid", "spa", "winner"});
  struct Workload {
    const char* name;
    CscMat a;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"ER d=2 (cf~1)", generate_er_square(4096, 2.0, 50)});
  workloads.push_back({"ER d=16 (cf~8)", generate_er_square(2048, 16.0, 51)});
  {
    ProteinParams p;
    p.n = 2000;
    p.min_family = 16;
    p.max_family = 256;
    p.within_density = 0.5;
    p.seed = 52;
    workloads.push_back({"protein (cf high)",
                         generate_protein_similarity(p).mat});
  }
  const SpGemmKind kinds[] = {SpGemmKind::kUnsortedHash,
                              SpGemmKind::kSortedHash, SpGemmKind::kHeap,
                              SpGemmKind::kHybrid, SpGemmKind::kSpa};
  for (const Workload& w : workloads) {
    const MultiplyStats ms = multiply_stats(w.a, w.a);
    double times[5];
    int best = 0;
    for (int k = 0; k < 5; ++k) {
      double t = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        Stopwatch watch;
        const CscMat c = local_spgemm<PlusTimes>(w.a, w.a, kinds[k]);
        t = std::min(t, watch.seconds());
        if (c.nnz() == 0) std::abort();
      }
      times[k] = t;
      if (t < times[best]) best = k;
    }
    table.add_row({w.name, fmt(ms.compression_factor), fmt_time(times[0]),
                   fmt_time(times[1]), fmt_time(times[2]), fmt_time(times[3]),
                   fmt_time(times[4]), to_string(kinds[best])});
  }
  table.print();
  std::printf("(the unsorted-hash kernel is the best or near-best default;\n"
              "SPA competes when the output is dense relative to rows —\n"
              "the accumulator observations of Sec. II-C.)\n");
}

}  // namespace

int main() {
  print_header("Ablations: batching layout, merge schedule, accumulators",
               "MEASURED");
  ablate_batch_splitting();
  ablate_merge_schedule();
  ablate_accumulators();
  return 0;
}
