// Fig. 14: applicability at low concurrency — squaring Eukarya (the
// smallest matrix) on 16 and 256 nodes with l in {1, 4, 16}.
//
// Paper findings: on 16 nodes communication is insignificant, so layering
// does not help (and l=16 even needs 2 batches from the thinner per-layer
// memory); on 256 nodes l=4 is the sweet spot while l=16 stops helping as
// AllToAll-Fiber becomes the new bottleneck. Lesson: modest l helps even
// at a few hundred nodes.
#include "bench_util.hpp"

using namespace casp;
using namespace casp::bench;

int main() {
  print_header("Fig. 14: small matrix (Eukarya) at low concurrency",
               "MODELED at 16/256 nodes + MEASURED at 16 ranks");

  Dataset data = eukarya_s();

  Table table({"nodes", "l", "b", "A-Bcast", "A2A-Fiber", "Merge-Fiber",
               "compute(other)", "total"});
  for (Index nodes : {Index{16}, Index{256}}) {
    // Tight at 16 nodes so l = 16's thinner memory slack forces b = 2
    // there, as Fig. 14 reports.
    const Machine machine = machine_with_tight_memory(
        cori_knl(), dataset_stats_paper_scale(data, 16),
        Index{16} * cori_knl().processes_per_node(), 4.0, 0.6);
    const Index p = nodes * machine.processes_per_node();
    const Bytes memory = static_cast<Bytes>(nodes) * machine.memory_per_node;
    for (Index l : {Index{1}, Index{4}, Index{16}}) {
      ProblemStats stats = dataset_stats_paper_scale(data, l);
      const Index b = predict_batches(stats, p, memory);
      const StepSeconds t = predict_steps(machine, stats, {p, l, b, true});
      const double other = t.at(steps::kLocalMultiply) +
                           t.at(steps::kMergeLayer) + t.at(steps::kSymbolic) +
                           t.at(steps::kBBcast);
      table.add_row({fmt_int(nodes), fmt_int(l), fmt_int(b),
                     fmt_time(t.at(steps::kABcast)),
                     fmt_time(t.at(steps::kAllToAllFiber)),
                     fmt_time(t.at(steps::kMergeFiber)), fmt_time(other),
                     fmt_time(total_seconds(t))});
    }
  }
  table.print();
  std::printf(
      "\nShape criteria: on 16 nodes the totals are nearly flat in l (no\n"
      "communication to avoid); on 256 nodes l=4 wins while l=16 gives the\n"
      "gains back to AllToAll-Fiber/Merge-Fiber — matching Fig. 14.\n\n");

  std::printf("--- measured on 16 virtual ranks [MEASURED] ---\n");
  Table meas({"l", "A-Bcast bytes", "A2A-Fiber bytes", "wall"});
  for (int l : {1, 4, 16}) {
    const MeasuredRun r = run_measured(data, 16, l, 1);
    const auto bytes_of = [&](const char* s) -> double {
      const auto it = r.traffic.find(s);
      return it == r.traffic.end() ? 0.0 : static_cast<double>(it->second.bytes);
    };
    meas.add_row({fmt_int(l), fmt_bytes(bytes_of(steps::kABcast)),
                  fmt_bytes(bytes_of(steps::kAllToAllFiber)),
                  fmt_time(r.wall_seconds)});
  }
  meas.print();
  std::printf("\n(A-Bcast volume falls with l while fiber volume rises —\n"
              "the crossover that picks the optimal l.)\n");
  return 0;
}
