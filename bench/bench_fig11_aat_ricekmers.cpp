// Fig. 11: A*A^T with the Rice-kmers matrix (BELLA overlap), scaling over
// nodes with 1 vs 16 layers, b = 1.
//
// Paper findings: Rice-kmers has ~2 nonzeros per column and
// nnz(AA^T) ~ nnz(A), so no batching is needed and the run is completely
// communication-dominated; 16 layers is up to ~6x faster than 1 layer at
// 1024 nodes. This demonstrates BatchedSUMMA3D helping "any SpGEMM ... with
// or without batching".
#include "bench_util.hpp"

using namespace casp;
using namespace casp::bench;

int main() {
  print_header("Fig. 11: A*A^T, Rice-kmers, communication-bound scaling",
               "MODELED at 64-1024 nodes + MEASURED at 16 ranks");

  Dataset data = rice_kmers_s();
  const Machine machine = cori_knl();

  Table table({"nodes", "l", "comm (bcasts+fiber)", "compute", "Symbolic",
               "total", "16-layer speedup"});
  for (Index nodes : {Index{64}, Index{256}, Index{1024}}) {
    const Index p = nodes * machine.processes_per_node();
    double totals[2] = {0, 0};
    int idx = 0;
    for (Index l : {Index{1}, Index{16}}) {
      ProblemStats stats = dataset_stats_paper_scale(data, l);
      const StepSeconds t = predict_steps(machine, stats, {p, l, 1, true});
      const double comm = t.at(steps::kABcast) + t.at(steps::kBBcast) +
                          t.at(steps::kAllToAllFiber);
      const double compute = t.at(steps::kLocalMultiply) +
                             t.at(steps::kMergeLayer) +
                             t.at(steps::kMergeFiber);
      totals[idx] = total_seconds(t);
      table.add_row({fmt_int(nodes), fmt_int(l), fmt_time(comm),
                     fmt_time(compute), fmt_time(t.at(steps::kSymbolic)),
                     fmt_time(totals[idx]),
                     idx == 1 ? fmt(totals[0] / totals[1]) : ""});
      ++idx;
    }
  }
  table.print();
  std::printf(
      "\nShape criteria: communication dwarfs compute at every size (the\n"
      "matrix has ~2 nnz/col); the 16-layer speedup grows with node count\n"
      "(paper: ~6x at 1024 nodes).\n\n");

  std::printf("--- measured, 16 virtual ranks, b chosen by symbolic "
              "[MEASURED] ---\n");
  Table meas({"l", "b", "comm bytes (bcasts)", "A2A-Fiber bytes",
              "output nnz"});
  for (int l : {1, 4}) {
    const MeasuredRun r = run_measured(data, 16, l, 0, 0);
    const auto bytes_of = [&](const char* s) -> double {
      const auto it = r.traffic.find(s);
      return it == r.traffic.end() ? 0.0 : static_cast<double>(it->second.bytes);
    };
    meas.add_row({fmt_int(l), fmt_int(r.b),
                  fmt_bytes(bytes_of(steps::kABcast) +
                            bytes_of(steps::kBBcast)),
                  fmt_bytes(bytes_of(steps::kAllToAllFiber)),
                  fmt_int(r.output_nnz)});
  }
  meas.print();
  std::printf("\n(b = 1 everywhere: nnz(AA^T) ~ nnz(A) needs no batching;\n"
              "layering trades broadcast volume for fiber volume.)\n");
  return 0;
}
