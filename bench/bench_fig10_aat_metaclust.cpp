// Fig. 10: A*A^T with the Metaclust20m matrix (PASTIS candidate
// generation), 1 vs 16 layers on 64 and 1024 nodes.
//
// Paper findings: on 64 nodes the 16-layer run is only slightly faster
// (it needs 2x the batches, eroding the communication win); on 1024 nodes
// 16 layers is ~2x faster even though the 1-layer case needs no batching.
#include "bench_util.hpp"

using namespace casp;
using namespace casp::bench;

int main() {
  print_header("Fig. 10: A*A^T, Metaclust20m, 1 vs 16 layers",
               "MODELED at 64/1024 nodes + MEASURED at 16 ranks");

  Dataset data = metaclust20m_s();
  // Memory-tight regime so the symbolic step batches at 64 nodes.
  const Machine machine = machine_with_tight_memory(
      cori_knl(), dataset_stats_paper_scale(data, 16),
      Index{64} * cori_knl().processes_per_node(), 3.0, 0.1);

  Table table({"nodes", "l", "b", "A-Bcast", "B-Bcast", "A2A-Fiber",
               "compute", "total"});
  for (Index nodes : {Index{64}, Index{1024}}) {
    const Index p = nodes * machine.processes_per_node();
    const Bytes memory = static_cast<Bytes>(nodes) * machine.memory_per_node;
    for (Index l : {Index{1}, Index{16}}) {
      ProblemStats stats = dataset_stats_paper_scale(data, l);
      const Index b = predict_batches(stats, p, memory);
      const StepSeconds t = predict_steps(machine, stats, {p, l, b, true});
      const double compute = t.at(steps::kLocalMultiply) +
                             t.at(steps::kMergeLayer) +
                             t.at(steps::kMergeFiber);
      table.add_row({fmt_int(nodes), fmt_int(l), fmt_int(b),
                     fmt_time(t.at(steps::kABcast)),
                     fmt_time(t.at(steps::kBBcast)),
                     fmt_time(t.at(steps::kAllToAllFiber)), fmt_time(compute),
                     fmt_time(total_seconds(t))});
    }
  }
  table.print();
  std::printf(
      "\nShape criteria: at 64 nodes more layers also mean more batches\n"
      "(less memory headroom per layer grid) so the win is small; at 1024\n"
      "nodes the 16-layer configuration is ~2x faster (paper: ~2x).\n\n");

  std::printf("--- measured A*A^T, 16 virtual ranks [MEASURED] ---\n");
  Table meas({"l", "b (symbolic)", "output nnz", "wall"});
  for (int l : {1, 4}) {
    // Budget: inputs + a quarter of the unmerged output.
    Index probe_b = 0;
    Bytes budget = 0;
    vmpi::run(16, [&, l](vmpi::Comm& world) {
      Grid3D grid(world, l);
      const DistMat3D da = distribute_a_style(grid, data.a);
      const DistMat3D db = distribute_b_style(grid, data.b);
      const SymbolicResult probe = symbolic3d(grid, da.local, db.local, 0);
      if (world.rank() == 0) {
        budget = static_cast<Bytes>(world.size()) *
                 (static_cast<Bytes>(probe.max_nnz_a + probe.max_nnz_b) +
                  static_cast<Bytes>(probe.max_nnz_c) / 4) *
                 kBytesPerNonzero;
        probe_b = probe.batches;
      }
    });
    const MeasuredRun r = run_measured(data, 16, l, 0, budget);
    meas.add_row({fmt_int(l), fmt_int(r.b), fmt_int(r.output_nnz),
                  fmt_time(r.wall_seconds)});
  }
  meas.print();
  std::printf("\n(both layer counts produce the identical output nnz —\n"
              "correctness under batching is untouched by the layout.)\n");
  return 0;
}
