// Sparse A-exchange plane vs the dense broadcast — the wire-byte gate.
//
// For each (dataset, grid) the same multiply runs twice: dense ibcast and
// the sparsity-aware exchange (SummaOptions::sparse_comm). The A-Bcast
// row of the traffic summary then gives, exactly:
//   - dense logical bytes (what the broadcast ships),
//   - sparse *shipped* bytes (need-list metadata + trimmed payloads; the
//     logical column stays at the dense-equivalent volume).
// The savings assertion runs here, not in perf_diff: on the skewed R-MAT
// and protein inputs the sparse plane must ship >= 30% fewer A-exchange
// bytes than dense, or the binary exits nonzero. The committed
// BENCH_sparse_exchange.json snapshots the byte volumes (deterministic)
// and Payload deep-copy counts (exact; perf_diff flags any increase — the
// sender-side zero-copy contract) plus wall times (median-normalized).
//
// check.sh stage (e) runs this via perf_bench with a wide time threshold:
// the end-to-end SUMMA walls swing on an oversubscribed core, but the
// bytes and copies comparisons don't depend on it.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/payload.hpp"
#include "summa/steps.hpp"

namespace {

using namespace casp;

struct Combo {
  bench::Dataset data;
  int p;
  int l;
};

struct ModeResult {
  vmpi::PhaseTraffic abcast;
  double wall_seconds = 0;
  std::uint64_t deep_copies = 0;
};

// Bench-local inputs, sparser and more skewed than the Table V analogs:
// the sparse plane pays on blocks whose row support has real holes, i.e.
// hyper-sparse distributed blocks. The Table V protein analogs put >= 13
// nnz in every row of every half-width block (full support, nothing to
// trim); these two sit in the regime the plane targets.

/// Heavy-tailed R-MAT (Friendster shape) at ~2 edges/vertex: the skew
/// concentrates edges on hub rows and leaves long empty-row stretches in
/// every off-hub block.
bench::Dataset rmat_tail_s() {
  RmatParams p;
  p.scale = 13;
  p.edge_factor = 1.0;
  p.a = 0.65;
  p.b = p.c = 0.15;
  p.d = 0.05;
  p.seed = 205;
  bench::Dataset d;
  d.name = "Rmat-tail-s";
  d.a = generate_rmat(p);
  d.b = d.a;
  return d;
}

/// Protein-family network with few cross-family edges: families are
/// contiguous index blocks, so off-diagonal distributed blocks hold only
/// the rare cross edges — most of their rows are empty.
bench::Dataset protein_sparse_s() {
  ProteinParams p;
  p.n = 10000;
  p.min_family = 4;
  p.max_family = 160;
  p.within_density = 0.08;
  p.cross_edges_per_node = 0.25;
  p.seed = 206;
  bench::Dataset d;
  d.name = "Protein-sparse-s";
  d.a = generate_protein_similarity(p).mat;
  d.b = d.a;
  return d;
}

ModeResult run_mode(const bench::Dataset& data, int p, int l,
                    bool sparse_comm) {
  SummaOptions opts;
  opts.sparse_comm = sparse_comm;
  const std::uint64_t copies_before = Payload::deep_copies();
  const bench::MeasuredRun run =
      bench::run_measured(data, p, l, /*force_b=*/1, /*total_memory=*/0,
                          opts);
  ModeResult out;
  out.abcast = run.traffic.at(steps::kABcast);
  out.wall_seconds = run.wall_seconds;
  out.deep_copies = Payload::deep_copies() - copies_before;
  return out;
}

}  // namespace

int main() {
  bench::print_header("sparse A-exchange vs dense broadcast", "MEASURED");

  // The two input families of the acceptance gate, each on two grid
  // widths (wider grids shrink the per-stage blocks, thinning the row
  // support the need-lists trim against; the R-MAT needs q >= 3 before
  // its hub rows leave real holes in a block).
  const std::vector<Combo> combos = {
      {rmat_tail_s(), 9, 1},
      {rmat_tail_s(), 16, 1},
      {protein_sparse_s(), 4, 1},
      {protein_sparse_s(), 16, 1},
  };

  bench::JsonRecords json;
  bench::Table table({"dataset", "grid", "dense A-bytes", "sparse shipped",
                      "saved", "dense copies", "sparse copies"});
  bool ok = true;

  for (const Combo& c : combos) {
    const ModeResult dense = run_mode(c.data, c.p, c.l, /*sparse_comm=*/false);
    const ModeResult sparse = run_mode(c.data, c.p, c.l, /*sparse_comm=*/true);

    const auto dense_bytes = static_cast<double>(dense.abcast.bytes);
    const auto shipped = static_cast<double>(sparse.abcast.shipped);
    const double saved = dense_bytes > 0 ? 1.0 - shipped / dense_bytes : 0.0;

    const std::string tag = c.data.name + "/p" + std::to_string(c.p) + "l" +
                            std::to_string(c.l);
    json.add(tag + "/dense-abcast", dense_bytes, dense.wall_seconds * 1e9,
             static_cast<double>(dense.deep_copies));
    json.add(tag + "/sparse-abcast", shipped, sparse.wall_seconds * 1e9,
             static_cast<double>(sparse.deep_copies));
    table.add_row({c.data.name,
                   std::to_string(c.p) + "x" + std::to_string(c.l),
                   bench::fmt_bytes(dense_bytes), bench::fmt_bytes(shipped),
                   bench::fmt(saved * 100.0, 3) + "%",
                   bench::fmt_int(static_cast<Index>(dense.deep_copies)),
                   bench::fmt_int(static_cast<Index>(sparse.deep_copies))});

    if (saved < 0.30) {
      std::fprintf(stderr,
                   "FAIL %s: sparse exchange saved only %.1f%% of A-Bcast "
                   "bytes (gate: >= 30%%)\n",
                   tag.c_str(), saved * 100.0);
      ok = false;
    }
    // The sender packs subviews of the already-packed block; turning the
    // sparse plane on must not add a single payload deep copy.
    if (sparse.deep_copies > dense.deep_copies) {
      std::fprintf(stderr,
                   "FAIL %s: sparse run made %llu deep copies vs dense %llu "
                   "(sparse exchange must be sender-zero-copy)\n",
                   tag.c_str(),
                   static_cast<unsigned long long>(sparse.deep_copies),
                   static_cast<unsigned long long>(dense.deep_copies));
      ok = false;
    }
  }

  table.print();
  if (!json.write("BENCH_sparse_exchange.json")) return 1;
  if (!ok) {
    std::fprintf(stderr, "bench_sparse_exchange: acceptance gate failed\n");
    return 1;
  }
  std::printf("all combos: >= 30%% A-exchange bytes saved, zero added deep "
              "copies\n");
  return 0;
}
