// Microbenchmarks (google-benchmark) for the local kernels of Sec. IV-D:
// every SpGEMM accumulator and both merge algorithms across compression
// regimes, plus the serialization path. These are the numbers the cost
// model's per-process rates come from, and the direct evidence for the
// paper's claims that unsorted-hash beats hybrid by 30-50% and hash merge
// beats heap merge by an order of magnitude.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "bench_util.hpp"
#include "common/payload.hpp"
#include "common/rng.hpp"
#include "gen/er.hpp"
#include "gen/protein.hpp"
#include "gen/rmat.hpp"
#include "kernels/merge.hpp"
#include "kernels/spgemm.hpp"
#include "kernels/symbolic.hpp"
#include "sparse/dcsc_mat.hpp"
#include "sparse/serialize.hpp"
#include "sparse/stats.hpp"

namespace casp {
namespace {

CscMat bench_matrix(int which) {
  switch (which) {
    case 0:  // low compression: ER, cf ~ 1-2
      return generate_er_square(4096, 4.0, 11);
    case 1: {  // high compression: protein families, cf >> 1
      ProteinParams p;
      p.n = 3000;
      p.min_family = 8;
      p.max_family = 128;
      p.within_density = 0.3;
      p.seed = 12;
      return generate_protein_similarity(p).mat;
    }
    default: {  // skewed: R-MAT
      RmatParams p;
      p.scale = 12;
      p.edge_factor = 6.0;
      p.seed = 13;
      return generate_rmat(p);
    }
  }
}

const char* matrix_name(int which) {
  switch (which) {
    case 0: return "ER(cf~2)";
    case 1: return "protein(cf-high)";
    default: return "rmat(skewed)";
  }
}

void BM_LocalSpGemm(benchmark::State& state) {
  const CscMat a = bench_matrix(static_cast<int>(state.range(1)));
  const auto kind = static_cast<SpGemmKind>(state.range(0));
  Index flops = multiply_flops(a, a);
  for (auto _ : state) {
    CscMat c = local_spgemm<PlusTimes>(a, a, kind);
    benchmark::DoNotOptimize(c.nnz());
  }
  state.SetItemsProcessed(state.iterations() * flops);
  state.SetLabel(std::string(to_string(kind)) + " on " +
                 matrix_name(static_cast<int>(state.range(1))));
}
BENCHMARK(BM_LocalSpGemm)
    ->ArgsProduct({{static_cast<long>(SpGemmKind::kUnsortedHash),
                    static_cast<long>(SpGemmKind::kSortedHash),
                    static_cast<long>(SpGemmKind::kHeap),
                    static_cast<long>(SpGemmKind::kHybrid),
                    static_cast<long>(SpGemmKind::kSpa)},
                   {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

void BM_Merge(benchmark::State& state) {
  const auto kind = static_cast<MergeKind>(state.range(0));
  const int ways = static_cast<int>(state.range(1));
  // Pieces shaped like per-stage SUMMA partials: same output block, random
  // overlapping nonzeros.
  std::vector<CscMat> pieces;
  Index volume = 0;
  for (int s = 0; s < ways; ++s) {
    pieces.push_back(
        generate_er_square(2048, 24.0, 100 + static_cast<std::uint64_t>(s)));
    volume += pieces.back().nnz();
  }
  // The heap merge requires sorted inputs (generator output is sorted);
  // the hash merge accepts either.
  for (auto _ : state) {
    CscMat merged = merge_matrices<PlusTimes>(csc_refs(pieces), kind);
    benchmark::DoNotOptimize(merged.nnz());
  }
  state.SetItemsProcessed(state.iterations() * volume);
  state.SetLabel(std::string(to_string(kind)) + " " + std::to_string(ways) +
                 "-way");
}
BENCHMARK(BM_Merge)
    ->ArgsProduct({{static_cast<long>(MergeKind::kUnsortedHash),
                    static_cast<long>(MergeKind::kSortedHeap)},
                   {2, 4, 16}})
    ->Unit(benchmark::kMillisecond);

void BM_FinalColumnSort(benchmark::State& state) {
  // The single post-Merge-Fiber sort the paper's pipeline performs once.
  const CscMat a = generate_er_square(4096, 4.0, 14);
  const CscMat unsorted =
      local_spgemm<PlusTimes>(a, a, SpGemmKind::kUnsortedHash);
  for (auto _ : state) {
    CscMat copy = unsorted;
    copy.sort_columns();
    benchmark::DoNotOptimize(copy.columns_sorted());
  }
  state.SetItemsProcessed(state.iterations() * unsorted.nnz());
}
BENCHMARK(BM_FinalColumnSort)->Unit(benchmark::kMillisecond);

void BM_SymbolicVsNumeric(benchmark::State& state) {
  // LocalSymbolic must be much cheaper than Local-Multiply for the
  // symbolic step to be worth its communication (Sec. IV-A).
  const CscMat a = bench_matrix(1);
  const bool symbolic = state.range(0) == 1;
  for (auto _ : state) {
    if (symbolic) {
      benchmark::DoNotOptimize(symbolic_nnz(a, a));
    } else {
      CscMat c = local_spgemm<PlusTimes>(a, a, SpGemmKind::kUnsortedHash);
      benchmark::DoNotOptimize(c.nnz());
    }
  }
  state.SetLabel(symbolic ? "symbolic (count only)" : "numeric multiply");
}
BENCHMARK(BM_SymbolicVsNumeric)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_PackUnpackCsc(benchmark::State& state) {
  // Serialization sits on every broadcast; it must be memcpy-bound.
  const CscMat a = generate_er_square(8192, 8.0, 15);
  for (auto _ : state) {
    auto buf = pack_csc(a);
    CscMat back = unpack_csc(buf);
    benchmark::DoNotOptimize(back.nnz());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(packed_size(a)));
}
BENCHMARK(BM_PackUnpackCsc)->Unit(benchmark::kMillisecond);

void BM_HypersparseMultiply(benchmark::State& state) {
  // The Sec. V-D regime: with many layers both local operands are
  // hypersparse (nnz << ncols). The CSC pipeline pays O(ncols) per
  // multiply for colptr/output scaffolding; the fully-DCSC pipeline
  // touches only nonempty columns.
  const bool dcsc = state.range(0) == 1;
  const Index dim = 1 << 18;  // 262,144-wide blocks, a few hundred nonzeros
  Rng rng(21);
  auto make_hypersparse = [&](std::uint64_t seed) {
    Rng local(seed);
    TripleMat t(dim, dim);
    for (int k = 0; k < 160; ++k) {
      const Index j = local.range(0, dim);
      for (int e = 0; e < 4; ++e) t.push_back(local.range(0, dim), j, 1.0);
    }
    return CscMat::from_triples(std::move(t));
  };
  const CscMat a_csc = make_hypersparse(22);
  // B's rows must hit A's nonempty columns occasionally: reuse A.
  const CscMat b_csc = a_csc;
  const DcscMat a_dcsc = DcscMat::from_csc(a_csc);
  const DcscMat b_dcsc = DcscMat::from_csc(b_csc);
  for (auto _ : state) {
    if (dcsc) {
      DcscMat c = hypersparse_spgemm_dcsc<PlusTimes>(a_dcsc, b_dcsc);
      benchmark::DoNotOptimize(c.nnz());
    } else {
      CscMat c = local_spgemm<PlusTimes>(a_csc, b_csc,
                                         SpGemmKind::kUnsortedHash);
      benchmark::DoNotOptimize(c.nnz());
    }
  }
  state.SetLabel(dcsc ? "DCSC in/out (no O(ncols) term)"
                      : "CSC (O(ncols) scaffolding per multiply)");
}
BENCHMARK(BM_HypersparseMultiply)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Transpose(benchmark::State& state) {
  const CscMat a = generate_er_square(8192, 8.0, 16);
  for (auto _ : state) {
    CscMat t = a.transpose();
    benchmark::DoNotOptimize(t.nnz());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Transpose)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace casp

namespace {

/// Normal console output, plus one {op, bytes, ns, copies} record per run
/// into BENCH_kernels.json so future changes can diff kernel perf
/// mechanically. `copies` is the global Payload deep-copy delta observed
/// across the run's report group, per iteration (only the serialization
/// benches move it today).
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    double group_iters = 0;
    for (const Run& run : reports)
      if (run.run_type == Run::RT_Iteration && !run.error_occurred)
        group_iters += static_cast<double>(run.iterations);
    const std::uint64_t copies_now = casp::Payload::deep_copies();
    const double copies_per_iter =
        group_iters > 0
            ? static_cast<double>(copies_now - last_copies_) / group_iters
            : 0.0;
    last_copies_ = copies_now;
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      const double sec_per_op = run.real_accumulated_time / iters;
      double bytes = 0;
      const auto it = run.counters.find("bytes_per_second");
      if (it != run.counters.end()) bytes = it->second.value * sec_per_op;
      std::string op = run.benchmark_name();
      if (!run.report_label.empty()) op += " [" + run.report_label + "]";
      records_.add(op, bytes, sec_per_op * 1e9, copies_per_iter);
    }
  }

  const casp::bench::JsonRecords& records() const { return records_; }

 private:
  casp::bench::JsonRecords records_;
  std::uint64_t last_copies_ = casp::Payload::deep_copies();
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.records().write("BENCH_kernels.json");
  benchmark::Shutdown();
  return 0;
}
