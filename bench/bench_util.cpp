#include "bench_util.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace casp::bench {

namespace {
Dataset protein_dataset(const std::string& name, Index n, Index min_family,
                        Index max_family, double density, double cross,
                        std::uint64_t seed) {
  ProteinParams p;
  p.n = n;
  p.min_family = min_family;
  p.max_family = max_family;
  p.within_density = density;
  p.cross_edges_per_node = cross;
  p.seed = seed;
  Dataset d;
  d.name = name;
  d.a = generate_protein_similarity(p).mat;
  d.b = d.a;
  return d;
}
}  // namespace

Dataset eukarya_s() {
  // Eukarya: nnz(C)/nnz(A) ~ 5.6, cf ~ 67. Small, modest blow-up.
  return protein_dataset("Eukarya-s", 3000, 4, 128, 0.3, 0.5, 101);
}

Dataset isolates_small_s() {
  // Isolates-small: nnz(C)/nnz(A) ~ 15, cf ~ 170: dense families.
  return protein_dataset("Isolates-small-s", 6000, 8, 320, 0.18, 0.3, 102);
}

Dataset isolates_s() {
  // Isolates: the biggest compute (cf ~ 306 in the paper).
  return protein_dataset("Isolates-s", 8000, 8, 448, 0.15, 0.2, 103);
}

Dataset metaclust50_s() {
  // Metaclust50: sparser inputs (131 nnz/col vs Isolates' 971) but a 27x
  // output blow-up; communication-heavy at scale.
  return protein_dataset("Metaclust50-s", 10000, 4, 160, 0.08, 1.0, 104);
}

Dataset friendster_s() {
  RmatParams p;
  p.scale = 13;  // 8192 vertices
  p.edge_factor = 7.0;
  p.seed = 105;
  Dataset d;
  d.name = "Friendster-s";
  d.a = generate_rmat(p);
  d.b = d.a;
  return d;
}

Dataset rice_kmers_s() {
  // Rice-kmers: 5M x 2B with only ~2 nnz per column; AA^T barely grows
  // (nnz(C) ~ 1.3x nnz(A)). Hyper-sparse & latency/communication bound.
  KmerParams p;
  p.num_reads = 4000;
  p.genome_length = 30000;
  p.min_read_len = 30;
  p.max_read_len = 60;
  p.kmer_keep_fraction = 0.5;
  p.seed = 106;
  Dataset d;
  d.name = "Rice-kmers-s";
  d.a = generate_kmer_matrix(p).mat;
  d.b = d.a.transpose();
  d.is_aat = true;
  return d;
}

Dataset metaclust20m_s() {
  // Metaclust20m: 20M reads x 244M k-mers, nnz(AA^T) ~ 156x nnz(A): long
  // reads over a small genome so many read pairs overlap.
  KmerParams p;
  p.num_reads = 5000;
  p.genome_length = 300;
  p.min_read_len = 12;
  p.max_read_len = 24;
  p.kmer_keep_fraction = 1.0;
  p.seed = 107;
  Dataset d;
  d.name = "Metaclust20m-s";
  d.a = generate_kmer_matrix(p).mat;
  d.b = d.a.transpose();
  d.is_aat = true;
  return d;
}

std::vector<Dataset> all_datasets() {
  std::vector<Dataset> all;
  all.push_back(eukarya_s());
  all.push_back(rice_kmers_s());
  all.push_back(metaclust20m_s());
  all.push_back(isolates_small_s());
  all.push_back(friendster_s());
  all.push_back(isolates_s());
  all.push_back(metaclust50_s());
  return all;
}

MeasuredRun run_measured(const Dataset& data, int p, int l, Index force_b,
                         Bytes total_memory, const SummaOptions& base_opts) {
  MeasuredRun out;
  out.p = p;
  out.l = l;
  Index batches = 1;
  Index symbolic_batches = 1;
  Index output_nnz = 0;
  auto result = vmpi::run(p, [&](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, data.a);
    const DistMat3D db = distribute_b_style(grid, data.b);
    SummaOptions opts = base_opts;
    opts.force_batches = force_b;
    Index my_nnz = 0;
    BatchedResult r = batched_summa3d<PlusTimes>(
        grid, da, db, total_memory, opts,
        [&](CscMat&& piece, const BatchInfo&) { my_nnz += piece.nnz(); },
        /*keep_output=*/false);
    const Index total_nnz = world.allreduce_sum<Index>(my_nnz);
    if (world.rank() == 0) {
      batches = r.batches;
      symbolic_batches =
          r.symbolic.batches > 0 ? r.symbolic.batches : r.batches;
      output_nnz = total_nnz;
    }
  });
  out.b = batches;
  out.symbolic_batches = symbolic_batches;
  out.output_nnz = output_nnz;
  out.wall_seconds = result.wall_seconds;
  for (const std::string& name : result.time_names())
    out.step_seconds[name] = result.max_time(name);
  out.traffic = result.traffic_summary().total_per_phase;
  out.report = obs::build_report(result);
  out.report.counters["output_nnz"] = output_nnz;
  return out;
}

ProblemStats dataset_stats(const Dataset& data, Index layers,
                           double scale_factor, Index stages) {
  ProblemStats s = analyze_problem(data.a, data.b);
  s.unmerged_nnz = layered_unmerged_nnz(data.a, data.b, layers, stages);
  if (scale_factor != 1.0) {
    s.nnz_a = static_cast<Index>(static_cast<double>(s.nnz_a) * scale_factor);
    s.nnz_b = static_cast<Index>(static_cast<double>(s.nnz_b) * scale_factor);
    s.flops = static_cast<Index>(static_cast<double>(s.flops) * scale_factor);
    s.nnz_c = static_cast<Index>(static_cast<double>(s.nnz_c) * scale_factor);
    s.unmerged_nnz =
        static_cast<Index>(static_cast<double>(s.unmerged_nnz) * scale_factor);
  }
  return s;
}

PaperStats paper_stats(const std::string& analog_name) {
  // Table V of the paper, M/B/T expanded.
  if (analog_name == "Eukarya-s") return {360e6, 360e6, 134e9, 2e9};
  if (analog_name == "Rice-kmers-s") return {4.5e9, 4.5e9, 12.4e9, 6e9};
  if (analog_name == "Metaclust20m-s") return {2e9, 2e9, 347e9, 312e9};
  if (analog_name == "Isolates-small-s") return {17e9, 17e9, 42e12, 248e9};
  if (analog_name == "Friendster-s") return {3.6e9, 3.6e9, 1.4e12, 1e12};
  if (analog_name == "Isolates-s") return {68e9, 68e9, 301e12, 984e9};
  if (analog_name == "Metaclust50-s") return {37e9, 37e9, 92e12, 1e12};
  throw InvalidArgument("no paper statistics for dataset " + analog_name);
}

ProblemStats dataset_stats_paper_scale(const Dataset& data, Index layers,
                                       Index stages) {
  const ProblemStats analog = dataset_stats(data, layers, 1.0, stages);
  const PaperStats paper = paper_stats(data.name);
  ProblemStats s;
  s.nnz_a = static_cast<Index>(paper.nnz_a);
  s.nnz_b = static_cast<Index>(paper.nnz_b);
  s.flops = static_cast<Index>(paper.flops);
  s.nnz_c = static_cast<Index>(paper.nnz_c);
  // Preserve the analog's measured layer-dependence of the intermediate
  // volume, anchored to the paper's flop count; Eq. 1 still bounds it from
  // below by nnz(C).
  s.unmerged_nnz = std::max(
      s.nnz_c, static_cast<Index>(static_cast<double>(analog.unmerged_nnz) /
                                  static_cast<double>(analog.flops) *
                                  paper.flops));
  return s;
}

Machine machine_with_tight_memory(Machine machine, const ProblemStats& stats,
                                  Index smallest_p, double input_headroom,
                                  double output_fraction) {
  const double r = static_cast<double>(kBytesPerNonzero);
  const double inputs_per_proc =
      r * static_cast<double>(stats.nnz_a + stats.nnz_b) /
      static_cast<double>(smallest_p);
  const double output_per_proc =
      r * static_cast<double>(stats.effective_unmerged()) /
      static_cast<double>(smallest_p);
  const double per_proc =
      inputs_per_proc * input_headroom + output_per_proc * output_fraction;
  machine.memory_per_node = static_cast<Bytes>(
      per_proc * static_cast<double>(machine.processes_per_node()));
  return machine;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
  rows_.back().resize(headers_.size());
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("  ");
    for (std::size_t c = 0; c < row.size(); ++c)
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 2;
  for (std::size_t w : widths) total += w + 2;
  std::printf("  %s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

std::string fmt_int(Index v) {
  // Group thousands for readability.
  std::string raw = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count != 0 && count % 3 == 0 && *it != '-') out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fmt_time(double seconds) {
  std::ostringstream os;
  os.precision(3);
  if (seconds >= 1.0)
    os << seconds << " s";
  else if (seconds >= 1e-3)
    os << seconds * 1e3 << " ms";
  else
    os << seconds * 1e6 << " us";
  return os.str();
}

std::string fmt_bytes(double bytes) {
  std::ostringstream os;
  os.precision(3);
  if (bytes >= 1e12)
    os << bytes / 1e12 << " TB";
  else if (bytes >= 1e9)
    os << bytes / 1e9 << " GB";
  else if (bytes >= 1e6)
    os << bytes / 1e6 << " MB";
  else if (bytes >= 1e3)
    os << bytes / 1e3 << " KB";
  else
    os << bytes << " B";
  return os.str();
}

void JsonRecords::add(const std::string& op, double bytes, double ns,
                      double copies) {
  records_.push_back({op, bytes, ns, copies});
}

bool JsonRecords::write(const std::string& path) const {
  obs::Json arr = obs::Json::array();
  for (const Record& r : records_) {
    obs::Json rec = obs::Json::object();
    rec.set("op", obs::Json(r.op));
    rec.set("bytes", obs::Json(r.bytes));
    rec.set("ns", obs::Json(r.ns));
    rec.set("copies", obs::Json(r.copies));
    arr.push_back(std::move(rec));
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("(could not write %s)\n", path.c_str());
    return false;
  }
  const std::string text = arr.dump_pretty();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %zu records to %s\n", records_.size(), path.c_str());
  return true;
}

void print_header(const std::string& title, const std::string& mode) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("mode: %s\n", mode.c_str());
  std::printf("==============================================================\n\n");
}

}  // namespace casp::bench
