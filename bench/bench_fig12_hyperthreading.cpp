// Fig. 12: impact of 4-way hyperthreading when squaring Metaclust50 on
// 4,096 nodes of Cori-KNL (l in {16, 64}).
//
// Paper findings: hyperthreading (4 hw threads/core -> 1,048,576 threads,
// 4x the processes) reduces computation time but increases communication
// time; the net is faster overall, and the benefit is largest where
// computation dominates (l = 64).
#include "bench_util.hpp"

using namespace casp;
using namespace casp::bench;

int main() {
  print_header("Fig. 12: hyperthreading, Metaclust50 on 4,096 nodes",
               "MODELED");

  Dataset data = metaclust50_s();
  const Index nodes = 4096;

  Table table({"l", "HT", "processes", "threads", "b", "comm", "compute",
               "total"});
  for (Index l : {Index{16}, Index{64}}) {
    // Identical *physical* node memory in both settings: derive the tight
    // budget once from the non-HT machine and reuse it.
    const Machine budget_machine = machine_with_tight_memory(
        cori_knl(), dataset_stats_paper_scale(data, l),
        nodes * cori_knl().processes_per_node(), 3.0, 0.05);
    for (bool ht : {false, true}) {
      Machine machine = ht ? cori_knl_hyperthreaded() : cori_knl();
      machine.memory_per_node = budget_machine.memory_per_node;
      const Index p = nodes * machine.processes_per_node();
      const Bytes memory =
          static_cast<Bytes>(nodes) * machine.memory_per_node;
      ProblemStats stats = dataset_stats_paper_scale(data, l);
      const Index b = predict_batches(stats, p, memory);
      const StepSeconds t = predict_steps(machine, stats, {p, l, b, true});
      const double comm = t.at(steps::kABcast) + t.at(steps::kBBcast) +
                          t.at(steps::kAllToAllFiber) +
                          t.at(steps::kSymbolic);
      const double compute = t.at(steps::kLocalMultiply) +
                             t.at(steps::kMergeLayer) +
                             t.at(steps::kMergeFiber);
      table.add_row({fmt_int(l), ht ? "yes" : "no", fmt_int(p),
                     fmt_int(p * machine.threads_per_process), fmt_int(b),
                     fmt_time(comm), fmt_time(compute),
                     fmt_time(comm + compute)});
    }
  }
  table.print();
  std::printf(
      "\nShape criteria (paper): HT shrinks computation sharply while\n"
      "communication does not improve (the NIC is shared by 4x the\n"
      "processes), so the total improves only because compute dominated —\n"
      "and the l = 64 configuration, being the most compute-bound, gains\n"
      "the most. With HT the job spans more than one million hardware\n"
      "threads.\n");
  return 0;
}
