// Fig. 9: parallel efficiency (P1/P2) * T(P1)/T(P2) of BatchedSUMMA3D for
// the four large matrices across the strong-scaling sweeps of Figs. 6-7.
//
// Shape criteria: efficiency stays near (or above — superlinear batching
// effects) 1.0 for Friendster, Isolates-small and Isolates; Metaclust50,
// being the sparsest, drops toward ~0.4 at 262K cores as communication
// dominates.
#include <algorithm>
#include <cmath>

#include "bench_util.hpp"

using namespace casp;
using namespace casp::bench;

namespace {

std::vector<ScalingPoint> series_for(const Dataset& data,
                                     double output_fraction,
                                     const std::vector<Index>& cores) {
  const Index l = 16;
  std::vector<Index> procs;
  for (Index c : cores) procs.push_back(c / cori_knl().threads_per_process);
  const auto stats_for = [&data, l](Index p) {
    const Index q = static_cast<Index>(
        std::sqrt(static_cast<double>(p) / static_cast<double>(l)));
    return dataset_stats_paper_scale(data, l, std::max<Index>(1, q));
  };
  const Machine machine = machine_with_tight_memory(
      cori_knl(), stats_for(procs.front()), procs.front(), 1.5,
      output_fraction);
  return strong_scaling(machine, stats_for, procs, l);
}

}  // namespace

int main() {
  print_header("Fig. 9: parallel efficiency of BatchedSUMMA3D",
               "MODELED at paper scale");

  const std::vector<Index> small_sweep = {4096, 8192, 16384, 32768, 65536};
  const std::vector<Index> large_sweep = {16384, 32768, 65536, 131072, 262144};

  struct Row {
    std::string name;
    std::vector<Index> cores;
    std::vector<ScalingPoint> series;
  };
  std::vector<Row> rows;
  rows.push_back({"Friendster", small_sweep,
                  series_for(friendster_s(), 0.15, small_sweep)});
  rows.push_back({"Isolates-small", small_sweep,
                  series_for(isolates_small_s(), 0.15, small_sweep)});
  rows.push_back({"Isolates", large_sweep,
                  series_for(isolates_s(), 0.004, large_sweep)});
  rows.push_back({"Metaclust50", large_sweep,
                  series_for(metaclust50_s(), 0.004, large_sweep)});

  Table table({"matrix", "cores", "b", "total", "efficiency"});
  for (const Row& row : rows) {
    for (std::size_t i = 0; i < row.series.size(); ++i) {
      const ScalingPoint& pt = row.series[i];
      table.add_row({i == 0 ? row.name : "", fmt_int(row.cores[i]),
                     fmt_int(pt.b), fmt_time(pt.total), fmt(pt.efficiency)});
    }
  }
  table.print();

  const double metaclust_final = rows.back().series.back().efficiency;
  std::printf(
      "\nShape criteria met: efficiencies hover near (or above — the\n"
      "superlinear fewer-batches effect) 1.0, and Metaclust50 (sparsest)\n"
      "carries the largest communication fraction (see Fig. 7 bench).\n"
      "\nKnown deviation: the paper measured 0.4 efficiency for Metaclust50\n"
      "at 262K cores; the balanced alpha-beta model predicts %.2f. The gap\n"
      "is attributable to effects outside a contention-free model —\n"
      "network contention at 4096 nodes, stragglers from the power-law\n"
      "nonzero skew, and MPI software overheads — which the paper itself\n"
      "points at ('communication does not scale as well as computation').\n",
      metaclust_final);
  return 0;
}
