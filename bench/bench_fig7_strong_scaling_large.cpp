// Fig. 7: strong scaling of the two biggest matrices (Isolates,
// Metaclust50) from 16,384 to 262,144 cores, l = 16.
//
// Shape criteria from the paper: Isolates ~13x and Metaclust50 ~6.3x total
// speedup for 16x cores; batch counts at the low end are large (125 for
// Isolates on 256 nodes) and at least halve per 4x nodes; Metaclust's
// speedup degrades because it is sparser and communication-bound (48% of
// runtime at 4,096 nodes vs 36% for Isolates).
#include <algorithm>
#include <cmath>

#include "bench_util.hpp"

using namespace casp;
using namespace casp::bench;

namespace {

void panel(const Dataset& data, double paper_speedup) {
  const Index l = 16;
  std::vector<Index> procs;
  for (Index cores : {16384, 32768, 65536, 131072, 262144})
    procs.push_back(cores / cori_knl().threads_per_process);
  // Grid-dependent intermediate volume: see Fig. 6 bench and Sec. V-E.
  const auto stats_for = [&data, l](Index p) {
    const Index q = static_cast<Index>(
        std::sqrt(static_cast<double>(p) / static_cast<double>(l)));
    return dataset_stats_paper_scale(data, l, std::max<Index>(1, q));
  };
  // Very tight at 16,384 cores: the paper needed b = 125 for Isolates.
  const Machine machine = machine_with_tight_memory(
      cori_knl(), stats_for(procs.front()), procs.front(), 1.5, 0.01);
  const auto series = strong_scaling(machine, stats_for, procs, l);

  std::printf("--- %s, l = 16 [MODELED] ---\n", data.name.c_str());
  Table table({"cores", "b", "A-Bcast", "Local-Mult", "A2A-Fiber", "total",
               "speedup", "comm frac"});
  for (const ScalingPoint& pt : series) {
    const double comm = pt.steps.at(steps::kABcast) +
                        pt.steps.at(steps::kBBcast) +
                        pt.steps.at(steps::kAllToAllFiber);
    table.add_row({fmt_int(pt.p * machine.threads_per_process), fmt_int(pt.b),
                   fmt_time(pt.steps.at(steps::kABcast)),
                   fmt_time(pt.steps.at(steps::kLocalMultiply)),
                   fmt_time(pt.steps.at(steps::kAllToAllFiber)),
                   fmt_time(pt.total), fmt(pt.speedup_vs_first),
                   fmt(comm / pt.total)});
  }
  table.print();
  std::printf("16x cores -> %.1fx modeled speedup (paper: %.1fx)\n\n",
              series.front().total / series.back().total, paper_speedup);
}

}  // namespace

int main() {
  print_header("Fig. 7: strong scaling of the biggest matrices, "
               "16,384 -> 262,144 cores",
               "MODELED at paper scale");
  panel(isolates_s(), 13.0);
  panel(metaclust50_s(), 6.3);
  std::printf(
      "Shape criteria: Isolates keeps scaling (compute-rich, cf high);\n"
      "Metaclust50's communication fraction grows fastest, degrading its\n"
      "speedup — the paper's explanation for its 0.4 efficiency at 262K\n"
      "cores.\n");
  return 0;
}
