// Hook-site overhead microbench — the zero-cost assertion for casp-verify.
//
// Every payload-*/tracker-*/p2p-* op hammers a code path carrying
// CASP_SCHED_EVENT hook sites (refcount transitions, subview, the
// release_or_copy steal, MemoryTracker budget commits, the p2p transport).
// In the release preset CASP_VMPI_SCHED is OFF and the macro expands to
// nothing, so these ops must run exactly as fast as the pre-hook code;
// tools/perf_diff.py gates that against the committed
// BENCH_sched_overhead.json snapshot (check.sh stage (e)).
//
// The anchor-* ops contain no hook sites at all. perf_diff normalizes by
// the median fresh/base ratio, so a slowdown spread uniformly over every
// op would read as machine calibration — the anchors pin the median to
// hook-free code, making hook overhead that leaks back into release
// codegen show up as the hook-laden ops slowing *relative to their peers*.
//
// Each record is a whole-batch timing (comfortably above perf_diff's
// --min-ns floor, where single-op nanoseconds would be noise). "copies" is
// the exact Payload deep-copy count per batch: the steal and transport
// ops must stay at zero — that is the zero-copy contract itself, and
// perf_diff compares it without any normalization.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <vector>

#include "bench_util.hpp"
#include "common/memory_tracker.hpp"
#include "common/payload.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/runtime.hpp"

namespace {

using namespace casp;

// Defeats dead-code elimination without perturbing the measured loops.
volatile std::uint64_t g_sink = 0;

double timed_ns(const std::function<void()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

/// Best-of-reps batch time plus the deep-copy delta per batch (exact: the
/// copy counter is deterministic, so delta/reps is an integer per batch).
struct Measured {
  double ns = 0;
  double copies = 0;
};

Measured measure(int reps, const std::function<void()>& batch) {
  batch();  // warmup — page in buffers, spin up caches
  const std::uint64_t copies_before = Payload::deep_copies();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) best = std::min(best, timed_ns(batch));
  const std::uint64_t copies_after = Payload::deep_copies();
  Measured m;
  m.ns = best;
  m.copies =
      static_cast<double>(copies_after - copies_before) / (reps + 1);
  return m;
}

}  // namespace

int main() {
  bench::print_header("casp-verify hook-site overhead", "MEASURED");
#ifdef CASP_VMPI_SCHED
  std::printf("hook sites: compiled IN (inactive — no scheduler attached)\n");
  std::printf("note: the committed snapshot is from the release preset,\n");
  std::printf("      where CASP_VMPI_SCHED is OFF and hooks compile out.\n");
#else
  std::printf("hook sites: compiled OUT (CASP_VMPI_SCHED off)\n");
#endif

  constexpr int kReps = 5;
  constexpr std::size_t kBytes = 4096;

  bench::JsonRecords json;
  bench::Table table({"op", "batch", "ns/iter", "copies/batch"});
  bool copies_ok = true;
  auto record = [&](const std::string& op, double iters, Measured m,
                    double expected_copies) {
    json.add(op, static_cast<double>(kBytes), m.ns, m.copies);
    table.add_row({op, bench::fmt_int(static_cast<Index>(iters)),
                   bench::fmt(m.ns / iters, 2), bench::fmt(m.copies, 0)});
    if (m.copies > expected_copies + 0.5) {
      std::fprintf(stderr, "FAIL %s: %.0f deep copies/batch (expected %.0f)\n",
                   op.c_str(), m.copies, expected_copies);
      copies_ok = false;
    }
  };

  // -- anchors: zero hook sites, pin the perf_diff median ------------------
  {
    constexpr int kIters = 1'000'000;
    Measured m = measure(kReps, [&] {
      std::uint64_t x = 0x9e3779b97f4a7c15ULL, acc = 0;
      for (int i = 0; i < kIters; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc += x;
      }
      g_sink = acc;
    });
    record("anchor-xorshift", kIters, m, 0);
  }
  {
    constexpr int kIters = 16'384;
    std::vector<std::byte> a(kBytes, std::byte{1});
    std::vector<std::byte> b(kBytes, std::byte{2});
    Measured m = measure(kReps, [&] {
      for (int i = 0; i < kIters; ++i) {
        std::memcpy((i & 1) ? a.data() : b.data(),
                    (i & 1) ? b.data() : a.data(), kBytes);
      }
      g_sink = static_cast<std::uint64_t>(a[0]);
    });
    record("anchor-memcpy", kIters, m, 0);
  }

  // -- payload hot paths: one to four hook sites per iteration -------------
  {
    // kAccess per call; the baseline is a branch + pointer add, so this op
    // is the most sensitive to any hook code reappearing.
    constexpr int kIters = 1'000'000;
    Payload p = Payload::wrap(std::vector<std::byte>(kBytes, std::byte{3}));
    Measured m = measure(kReps, [&] {
      std::uint64_t acc = 0;
      for (int i = 0; i < kIters; ++i)
        acc += std::to_integer<std::uint64_t>(p.data()[i & (kBytes - 1)]);
      g_sink = acc;
    });
    record("payload-data-access", kIters, m, 0);
  }
  {
    // kHandleAcquire + kHandleRelease per iteration (copy ctor + drop).
    constexpr int kIters = 200'000;
    Payload p = Payload::wrap(std::vector<std::byte>(kBytes, std::byte{4}));
    Measured m = measure(kReps, [&] {
      std::uint64_t acc = 0;
      for (int i = 0; i < kIters; ++i) {
        Payload copy = p;  // NOLINT(performance-unnecessary-copy-initialization)
        acc += copy.size();
      }
      g_sink = acc;
    });
    record("payload-handle-churn", kIters, m, 0);
  }
  {
    // Bounds checks + kHandleAcquire on creation, kHandleRelease on drop.
    constexpr int kIters = 200'000;
    Payload p = Payload::wrap(std::vector<std::byte>(kBytes, std::byte{5}));
    Measured m = measure(kReps, [&] {
      std::uint64_t acc = 0;
      for (int i = 0; i < kIters; ++i) {
        Payload s = p.subview(static_cast<std::size_t>(i & 15) * 64, 64);
        acc += s.size();
      }
      g_sink = acc;
    });
    record("payload-subview", kIters, m, 0);
  }
  {
    // kBufferCreate + kObserveSoleAcquire + kSteal + kHandleRelease per
    // iteration, and the batch must be copy-free: every round steals the
    // allocation back as the sole owner.
    constexpr int kIters = 100'000;
    std::vector<std::byte> bytes(kBytes, std::byte{6});
    Measured m = measure(kReps, [&] {
      for (int i = 0; i < kIters; ++i) {
        Payload p = Payload::wrap(std::move(bytes));
        bytes = std::move(p).release_or_copy();
      }
      g_sink = bytes.size();
    });
    record("payload-steal-roundtrip", kIters, m, 0);
  }

  // -- MemoryTracker commit point: kAllocCommit per allocate ---------------
  {
    constexpr int kIters = 200'000;
    MemoryTracker tracker;  // unlimited budget: the commit still runs
    Measured m = measure(kReps, [&] {
      for (int i = 0; i < kIters; ++i) {
        tracker.allocate(kBytes, "bench");
        tracker.release(kBytes);
      }
      g_sink = tracker.peak();
    });
    record("tracker-commit", kIters, m, 0);
  }

  // -- transport: post/take hook sites on every hop, zero-copy ping-pong ---
  {
    constexpr int kRoundtrips = 4096;
    Measured m = measure(kReps, [&] {
      vmpi::run(2, [&](vmpi::Comm& c) {
        if (c.rank() == 0) {
          Payload ball =
              Payload::wrap(std::vector<std::byte>(kBytes, std::byte{7}));
          for (int i = 0; i < kRoundtrips; ++i) {
            c.send_payload(1, 0, std::move(ball));
            ball = c.recv_payload(1, 0);
          }
          g_sink = ball.size();
        } else {
          for (int i = 0; i < kRoundtrips; ++i) {
            Payload ball = c.recv_payload(0, 0);
            c.send_payload(0, 0, std::move(ball));
          }
        }
      });
    });
    record("p2p-roundtrip", kRoundtrips, m, 0);
  }

  table.print();
  json.write("BENCH_sched_overhead.json");

  if (!copies_ok) {
    std::fprintf(stderr,
                 "bench_sched_overhead: zero-copy contract violated\n");
    return 1;
  }
  return 0;
}
