// Fig. 6: strong scaling of BatchedSUMMA3D from 4,096 to 65,536 cores
// (Friendster and Isolates-small), l = 16, batch counts from the symbolic
// memory rule.
//
// Paper headline numbers reproduced as shape criteria: overall speedups of
// ~14x (Friendster) and ~17.3x (Isolates-small) for 16x more cores, batch
// counts falling as memory grows, and A-Bcast scaling superlinearly when b
// shrinks. A small-scale MEASURED sweep (real wall time on virtual ranks,
// 1 -> 16 ranks) follows; note single-host thread oversubscription caps
// its observable speedup.
#include <algorithm>
#include <cmath>

#include "bench_util.hpp"

using namespace casp;
using namespace casp::bench;

namespace {

void modeled_panel(const Dataset& data, double input_headroom,
                   double output_fraction) {
  const Index l = 16;
  std::vector<Index> procs;
  for (Index cores : {4096, 8192, 16384, 32768, 65536})
    procs.push_back(cores / cori_knl().threads_per_process);
  // The unmerged volume depends on the grid: finer inner-dimension slicing
  // at higher p compresses less, which is why b shrinks sub-linearly in
  // memory (Sec. V-E).
  const auto stats_for = [&data, l](Index p) {
    const Index q = static_cast<Index>(
        std::sqrt(static_cast<double>(p) / static_cast<double>(l)));
    return dataset_stats_paper_scale(data, l, std::max<Index>(1, q));
  };
  // Memory-tight at the low end of the sweep, as in the paper's runs. The
  // per-panel knobs compensate for the analogs' smaller output-to-input
  // ratios relative to the originals (see DESIGN.md substitutions).
  const Machine machine = machine_with_tight_memory(
      cori_knl(), stats_for(procs.front()), procs.front(), input_headroom,
      output_fraction);
  const auto series = strong_scaling(machine, stats_for, procs, l);

  std::printf("--- %s, l = 16 [MODELED] ---\n", data.name.c_str());
  Table table({"cores", "b", "Symbolic", "A-Bcast", "B-Bcast", "Local-Mult",
               "Merge-Layer", "A2A-Fiber", "Merge-Fiber", "total", "speedup"});
  for (const ScalingPoint& pt : series) {
    table.add_row(
        {fmt_int(pt.p * machine.threads_per_process), fmt_int(pt.b),
         fmt_time(pt.steps.at(steps::kSymbolic)),
         fmt_time(pt.steps.at(steps::kABcast)),
         fmt_time(pt.steps.at(steps::kBBcast)),
         fmt_time(pt.steps.at(steps::kLocalMultiply)),
         fmt_time(pt.steps.at(steps::kMergeLayer)),
         fmt_time(pt.steps.at(steps::kAllToAllFiber)),
         fmt_time(pt.steps.at(steps::kMergeFiber)), fmt_time(pt.total),
         fmt(pt.speedup_vs_first)});
  }
  table.print();
  const double total_speedup = series.front().total / series.back().total;
  const double abcast_speedup = series.front().steps.at(steps::kABcast) /
                                series.back().steps.at(steps::kABcast);
  std::printf("16x cores -> %.1fx total speedup (paper: 14x Friendster, "
              "17.3x Isolates-small); A-Bcast speedup %.1fx%s\n\n",
              total_speedup, abcast_speedup,
              abcast_speedup > 16.0 ? " (superlinear, via fewer batches)" : "");
}

}  // namespace

int main() {
  print_header("Fig. 6: strong scaling, 4,096 -> 65,536 cores, l = 16",
               "MODELED at paper scale + MEASURED at small scale");
  Dataset friendster = friendster_s();
  Dataset isolates_small = isolates_small_s();
  modeled_panel(friendster, 4.0, 0.15);
  modeled_panel(isolates_small, 1.5, 0.08);

  std::printf("--- measured wall times, Isolates-small-s, l=1, b=4, real "
              "execution [MEASURED] ---\n");
  Table meas({"virtual ranks", "wall", "Local-Mult", "Merge-Layer"});
  for (int p : {1, 4, 16}) {
    const MeasuredRun r = run_measured(isolates_small_s(), p, 1, 4);
    meas.add_row({fmt_int(p), fmt_time(r.wall_seconds),
                  fmt_time(r.step_seconds.at(steps::kLocalMultiply)),
                  fmt_time(r.step_seconds.at(steps::kMergeLayer))});
  }
  meas.print();
  std::printf("\n(single host: ranks share one core, so wall time cannot\n"
              "strong-scale; per-rank compute steps shrink as 1/p, which is\n"
              "the distributed-work property the model extrapolates.)\n");
  return 0;
}
