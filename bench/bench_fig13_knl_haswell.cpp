// Fig. 13: Cori-KNL vs Cori-Haswell, squaring Isolates-small on 256 nodes
// with the same interconnect (l = 16, b = 23 in the paper).
//
// Paper findings: computation ~2.1x faster on Haswell, communication
// ~1.4x faster (same Aries network, faster data handling around MPI), so
// communication takes a larger *fraction* of the total on Haswell — the
// argument for why communication avoidance matters even more on faster
// processors (and GPUs).
#include "bench_util.hpp"

using namespace casp;
using namespace casp::bench;

int main() {
  print_header("Fig. 13: KNL vs Haswell, Isolates-small on 256 nodes",
               "MODELED (machine presets encode the measured 2.1x/1.4x)");

  Dataset data = isolates_small_s();
  const Index nodes = 256;
  const Index l = 16;

  Table table({"machine", "processes", "b", "comm", "compute", "total",
               "comm fraction"});
  double comm_times[2] = {0, 0}, compute_times[2] = {0, 0};
  int idx = 0;
  for (const Machine& base : {cori_knl(), cori_haswell()}) {
    // Paper note: both machines use the same process grid (16 layers, 23
    // batches on both); pin the grid to KNL's so only the rates differ.
    const Index p = nodes * cori_knl().processes_per_node();
    Machine machine = machine_with_tight_memory(
        base, dataset_stats_paper_scale(data, l), p, 3.0, 0.1);
    const Bytes memory = static_cast<Bytes>(nodes) * machine.memory_per_node;
    ProblemStats stats = dataset_stats_paper_scale(data, l);
    const Index b = predict_batches(stats, p, memory);
    const StepSeconds t = predict_steps(machine, stats, {p, l, b, true});
    const double comm = t.at(steps::kABcast) + t.at(steps::kBBcast) +
                        t.at(steps::kAllToAllFiber) + t.at(steps::kSymbolic);
    const double compute = t.at(steps::kLocalMultiply) +
                           t.at(steps::kMergeLayer) + t.at(steps::kMergeFiber);
    comm_times[idx] = comm;
    compute_times[idx] = compute;
    ++idx;
    table.add_row({machine.name, fmt_int(p), fmt_int(b), fmt_time(comm),
                   fmt_time(compute), fmt_time(comm + compute),
                   fmt(comm / (comm + compute))});
  }
  table.print();
  std::printf("\ncompute speedup on Haswell: %.2fx (paper: 2.1x); "
              "communication speedup: %.2fx (paper: 1.4x)\n",
              compute_times[0] / compute_times[1],
              comm_times[0] / comm_times[1]);
  std::printf("communication fraction grows on the faster machine — the\n"
              "faster the cores, the more communication avoidance pays.\n");
  return 0;
}
