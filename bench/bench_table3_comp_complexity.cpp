// Table III: computational complexity of the local steps — validated by
// comparing measured work against the closed forms:
//   Local-Multiply total:  flops/p per process (exact, b- and l-invariant
//                          in total across the job)
//   Merge-Layer total:     Sum of unmerged per-stage outputs = the layered
//                          intermediate volume (grows with l)
//   Merge-Fiber total:     layer-merged volume crossing fibers
// We count the actual entries processed (the complexity driver) rather
// than wall time, so the check is exact and machine-independent.
#include <cmath>

#include "bench_util.hpp"
#include "kernels/symbolic.hpp"

using namespace casp;
using namespace casp::bench;

int main() {
  print_header("Table III: computational complexity, counted vs closed form",
               "MEASURED work items vs FORMULA");

  Dataset data = eukarya_s();
  const Index total_flops = multiply_flops(data.a, data.b);
  const Index nnz_c = symbolic_nnz(data.a, data.b);

  Table table({"p", "l", "b", "total flops (invariant)",
               "merge-layer volume", "= layered bound", "merge-fiber volume",
               "vs nnz(C)"});
  for (const auto& [p, l, b] : std::vector<std::tuple<int, int, Index>>{
           {4, 1, 1}, {16, 4, 2}, {64, 16, 4}, {16, 1, 8}, {64, 4, 1}}) {
    const int q = static_cast<int>(std::sqrt(p / l));
    // The job-wide Merge-Layer input volume equals the unmerged
    // intermediate nnz over (l*q) inner slices (each stage of each layer
    // contributes one merged partial). Independent of b (Table III).
    const Index merge_layer_volume = layered_unmerged_nnz(data.a, data.b,
                                                          l, q);
    // Merge-Fiber consumes the per-layer merged volume = unmerged over l
    // slices. At l = 1 there is no fiber merge.
    const Index merge_fiber_volume =
        l > 1 ? layered_unmerged_nnz(data.a, data.b, l, 1) : 0;
    table.add_row(
        {fmt_int(p), fmt_int(l), fmt_int(b), fmt_int(total_flops),
         fmt_int(merge_layer_volume),
         fmt(static_cast<double>(merge_layer_volume) /
             static_cast<double>(total_flops)),
         fmt_int(merge_fiber_volume),
         l > 1 ? fmt(static_cast<double>(merge_fiber_volume) /
                     static_cast<double>(nnz_c))
               : std::string("-")});
  }
  table.print();
  std::printf(
      "\nInvariants checked (Table III): total multiply work is flops\n"
      "regardless of (p, l, b); merge volumes are bounded above by flops\n"
      "and below by nnz(C) (Eq. 1) and grow with the slice count — the\n"
      "lg(p/l) and lg(l) factors of the paper's heap merges apply on top\n"
      "of these volumes (see bench_table7 for the measured-time version).\n\n");

  // Cross-check with a real instrumented run: the memory tracker's peak
  // unmerged charge equals the merge-layer volume for the max-loaded rank.
  const int p = 16, l = 4;
  Index max_unmerged = 0;
  vmpi::run(p, [&](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, data.a);
    const DistMat3D db = distribute_b_style(grid, data.b);
    const SymbolicResult sym = symbolic3d(grid, da.local, db.local, 0);
    if (world.rank() == 0) max_unmerged = sym.total_unmerged_nnz;
  });
  const Index expected = layered_unmerged_nnz(data.a, data.b, l, 2);
  std::printf("distributed symbolic total unmerged at (p=16, l=4): %s; "
              "serial layered bound (l*q = 8 slices): %s (ratio %.3f)\n",
              fmt_int(max_unmerged).c_str(), fmt_int(expected).c_str(),
              static_cast<double>(max_unmerged) /
                  static_cast<double>(expected));
  return 0;
}
