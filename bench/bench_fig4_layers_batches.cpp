// Fig. 4: impact of the number of layers (l) and batches (b) on every step
// of BatchedSUMMA3D.
//
// Panel (a): Friendster on 16,384 cores; (b) Friendster on 65,536 cores;
// (c) Isolates-small on 65,536 cores — all MODELED at paper scale from the
// analogs' exactly-measured statistics. A MEASURED sweep on 64 virtual
// ranks follows, confirming the same directions with real execution.
//
// Shape criteria (paper): A-Bcast ~ linear in b, ~1/sqrt(l) in l;
// B-Bcast and the fiber steps flat in b; fiber steps grow with l.
#include "bench_util.hpp"

using namespace casp;
using namespace casp::bench;

namespace {

void modeled_panel(const char* title, const Dataset& data, Index cores) {
  const Machine machine = cori_knl();
  const Index p = cores / machine.threads_per_process;
  std::printf("--- %s: p = %lld processes (%lld cores) [MODELED] ---\n", title,
              static_cast<long long>(p), static_cast<long long>(cores));
  Table table({"l", "b", "Symbolic", "A-Bcast", "B-Bcast", "Local-Mult",
               "Merge-Layer", "A2A-Fiber", "Merge-Fiber", "total"});
  for (Index l : {Index{1}, Index{4}, Index{16}}) {
    const ProblemStats stats = dataset_stats_paper_scale(data, l);
    for (Index b : {Index{1}, Index{4}, Index{16}, Index{64}}) {
      const StepSeconds t = predict_steps(machine, stats, {p, l, b, true});
      table.add_row({fmt_int(l), fmt_int(b), fmt_time(t.at(steps::kSymbolic)),
                     fmt_time(t.at(steps::kABcast)),
                     fmt_time(t.at(steps::kBBcast)),
                     fmt_time(t.at(steps::kLocalMultiply)),
                     fmt_time(t.at(steps::kMergeLayer)),
                     fmt_time(t.at(steps::kAllToAllFiber)),
                     fmt_time(t.at(steps::kMergeFiber)),
                     fmt_time(total_seconds(t))});
    }
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  print_header(
      "Fig. 4: per-step impact of layers (l) and batches (b)",
      "MODELED at paper scale + MEASURED at small scale");

  // The analogs are ~10^4x smaller than the originals; every statistic is
  // rescaled to its Table V magnitude so the modeled times land in the
  // paper's range with the paper's compute-to-communication balance.
  Dataset friendster = friendster_s();
  Dataset isolates_small = isolates_small_s();
  modeled_panel("(a) Friendster", friendster, 16384);
  modeled_panel("(b) Friendster", friendster, 65536);
  modeled_panel("(c) Isolates-small", isolates_small, 65536);

  std::printf("--- measured confirmation: Friendster-s on 64 virtual ranks "
              "[MEASURED] ---\n");
  Table table({"l", "b", "A-Bcast bytes", "B-Bcast bytes", "A2A-Fiber bytes",
               "Local-Mult", "Merge-Layer", "Merge-Fiber", "wall"});
  for (int l : {1, 4, 16}) {
    for (Index b : {Index{1}, Index{4}, Index{16}}) {
      const MeasuredRun r = run_measured(friendster, 64, l, b);
      auto phase_bytes = [&](const char* name) -> double {
        const auto it = r.traffic.find(name);
        return it == r.traffic.end() ? 0.0
                                     : static_cast<double>(it->second.bytes);
      };
      table.add_row(
          {fmt_int(l), fmt_int(b), fmt_bytes(phase_bytes(steps::kABcast)),
           fmt_bytes(phase_bytes(steps::kBBcast)),
           fmt_bytes(phase_bytes(steps::kAllToAllFiber)),
           fmt_time(r.step_seconds.at(steps::kLocalMultiply)),
           fmt_time(r.step_seconds.at(steps::kMergeLayer)),
           fmt_time(r.step_seconds.count(steps::kMergeFiber)
                        ? r.step_seconds.at(steps::kMergeFiber)
                        : 0.0),
           fmt_time(r.wall_seconds)});
    }
  }
  table.print();
  std::printf(
      "\nExpected shapes: A-Bcast bytes grow ~linearly with b and shrink\n"
      "with l; B-Bcast bytes independent of b; AllToAll-Fiber grows with l\n"
      "and is flat in b; merge times flat in b.\n");
  return 0;
}
