// Distribution round-trip and partition-coverage properties for the 3D
// layouts of Fig. 1.
#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "grid/dist.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

struct DistCase {
  int p;
  int l;
  Index rows;
  Index cols;
};

class DistRoundTrip : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistRoundTrip, AStyleGatherRestoresGlobal) {
  const auto [p, l, rows, cols] = GetParam();
  const CscMat global = testing::random_matrix(rows, cols, 3.0, 42);
  vmpi::run(p, [&, l = l](vmpi::Comm& world) {
    Grid3D grid(world, l);
    DistMat3D dist = distribute_a_style(grid, global);
    EXPECT_EQ(dist.local.nrows(), dist.rows.count);
    EXPECT_EQ(dist.local.ncols(), dist.cols.count);
    CscMat back = gather_dist(grid, dist);
    testing::expect_mat_near(back, global);
  });
}

TEST_P(DistRoundTrip, BStyleGatherRestoresGlobal) {
  const auto [p, l, rows, cols] = GetParam();
  const CscMat global = testing::random_matrix(rows, cols, 3.0, 43);
  vmpi::run(p, [&, l = l](vmpi::Comm& world) {
    Grid3D grid(world, l);
    DistMat3D dist = distribute_b_style(grid, global);
    CscMat back = gather_dist(grid, dist);
    testing::expect_mat_near(back, global);
  });
}

TEST_P(DistRoundTrip, LocalNnzSumsToGlobal) {
  const auto [p, l, rows, cols] = GetParam();
  const CscMat global = testing::random_matrix(rows, cols, 2.5, 44);
  vmpi::run(p, [&, l = l](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, global);
    const DistMat3D db = distribute_b_style(grid, global);
    EXPECT_EQ(world.allreduce_sum<Index>(da.local.nnz()), global.nnz());
    EXPECT_EQ(world.allreduce_sum<Index>(db.local.nnz()), global.nnz());
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistRoundTrip,
    ::testing::Values(DistCase{1, 1, 10, 10}, DistCase{4, 1, 16, 16},
                      DistCase{4, 4, 17, 23},  // odd sizes, deep layering
                      DistCase{8, 2, 33, 19}, DistCase{16, 4, 40, 40},
                      DistCase{18, 2, 29, 37}, DistCase{16, 16, 21, 13},
                      DistCase{9, 1, 27, 31},
                      // more ranks than columns: some blocks empty
                      DistCase{16, 4, 5, 3}));

TEST(DistRanges, AStyleRangesPartitionTheMatrix) {
  // Across all ranks, the (rows x cols) rectangles must tile the matrix
  // exactly: every global (row, col) owned by exactly one rank.
  const int p = 8, l = 2;
  const Index rows = 13, cols = 11;
  std::vector<std::vector<int>> owners(
      static_cast<std::size_t>(rows),
      std::vector<int>(static_cast<std::size_t>(cols), 0));
  std::mutex mutex;
  vmpi::run(p, [&](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const LocalRange rr = a_style_row_range(grid, rows);
    const LocalRange cr = a_style_col_range(grid, cols);
    std::lock_guard<std::mutex> lock(mutex);
    for (Index r = rr.start; r < rr.start + rr.count; ++r)
      for (Index c = cr.start; c < cr.start + cr.count; ++c)
        ++owners[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
  });
  for (Index r = 0; r < rows; ++r)
    for (Index c = 0; c < cols; ++c)
      EXPECT_EQ(owners[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)],
                1)
          << "cell (" << r << "," << c << ")";
}

TEST(DistRanges, BStyleRangesPartitionTheMatrix) {
  const int p = 18, l = 2;  // q = 3: odd grid
  const Index rows = 17, cols = 23;
  std::vector<std::vector<int>> owners(
      static_cast<std::size_t>(rows),
      std::vector<int>(static_cast<std::size_t>(cols), 0));
  std::mutex mutex;
  vmpi::run(p, [&](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const LocalRange rr = b_style_row_range(grid, rows);
    const LocalRange cr = b_style_col_range(grid, cols);
    std::lock_guard<std::mutex> lock(mutex);
    for (Index r = rr.start; r < rr.start + rr.count; ++r)
      for (Index c = cr.start; c < cr.start + cr.count; ++c)
        ++owners[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
  });
  // B-style: rows split q*l ways keyed by (i, k), columns q ways keyed by
  // j — every cell owned exactly once.
  for (Index r = 0; r < rows; ++r)
    for (Index c = 0; c < cols; ++c)
      EXPECT_EQ(owners[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)],
                1)
          << "cell (" << r << "," << c << ")";
}

TEST(DistRanges, InnerDimensionAlignmentAcrossStyles) {
  // The stage-s broadcast alignment invariant: A's column slice owned by
  // (i=anything, j=s, k) must equal B's row slice owned by (i=s,
  // j=anything, k) for every layer k.
  const int p = 8, l = 2;
  const Index inner = 29;
  std::mutex mutex;
  // a_cols[s][k] and b_rows[s][k] collected from the ranks.
  std::map<std::pair<int, int>, LocalRange> a_cols, b_rows;
  vmpi::run(p, [&](vmpi::Comm& world) {
    Grid3D grid(world, l);
    std::lock_guard<std::mutex> lock(mutex);
    a_cols[{grid.col(), grid.layer()}] = a_style_col_range(grid, inner);
    b_rows[{grid.row(), grid.layer()}] = b_style_row_range(grid, inner);
  });
  for (const auto& [key, range] : a_cols) {
    ASSERT_TRUE(b_rows.count(key));
    EXPECT_EQ(range.start, b_rows[key].start) << key.first << "," << key.second;
    EXPECT_EQ(range.count, b_rows[key].count);
  }
}

TEST(ExtractBlock, ReindexesAndFilters) {
  TripleMat t(6, 6);
  t.push_back(0, 0, 1.0);
  t.push_back(2, 1, 2.0);
  t.push_back(3, 1, 3.0);
  t.push_back(5, 5, 4.0);
  t.push_back(2, 4, 5.0);
  const CscMat m = CscMat::from_triples(std::move(t));
  const CscMat block = extract_block(m, 2, 4, 1, 5);
  EXPECT_EQ(block.nrows(), 2);
  EXPECT_EQ(block.ncols(), 4);
  EXPECT_EQ(block.nnz(), 3);  // (2,1), (3,1), (2,4)
  TripleMat bt = block.to_triples();
  ASSERT_EQ(bt.nnz(), 3);
  EXPECT_EQ(bt.entries()[0].row, 0);  // global (2,1) -> local (0,0)
  EXPECT_EQ(bt.entries()[0].col, 0);
  EXPECT_EQ(bt.entries()[1].row, 1);  // global (3,1) -> local (1,0)
  EXPECT_EQ(bt.entries()[2].col, 3);  // global (2,4) -> local (0,3)
}

}  // namespace
}  // namespace casp
