#include <gtest/gtest.h>

#include "grid/grid3d.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

TEST(Grid3DShape, ValidShapes) {
  EXPECT_TRUE(Grid3D::valid_shape(1, 1));
  EXPECT_TRUE(Grid3D::valid_shape(4, 1));
  EXPECT_TRUE(Grid3D::valid_shape(8, 2));
  EXPECT_TRUE(Grid3D::valid_shape(16, 4));
  EXPECT_TRUE(Grid3D::valid_shape(16, 16));
  EXPECT_TRUE(Grid3D::valid_shape(18, 2));  // 9 per layer, q=3
  EXPECT_FALSE(Grid3D::valid_shape(6, 2));  // 3 not square
  EXPECT_FALSE(Grid3D::valid_shape(4, 3));  // not divisible
  EXPECT_FALSE(Grid3D::valid_shape(0, 1));
  EXPECT_FALSE(Grid3D::valid_shape(4, 0));
}

struct GridCase {
  int p;
  int l;
};

class Grid3DComms : public ::testing::TestWithParam<GridCase> {};

TEST_P(Grid3DComms, CoordinatesAndCommunicatorShapes) {
  const auto [p, l] = GetParam();
  vmpi::run(p, [p, l](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const int q = grid.q();
    EXPECT_EQ(q * q * l, p);
    EXPECT_EQ(grid.size(), p);
    // Coordinates in range.
    EXPECT_GE(grid.row(), 0);
    EXPECT_LT(grid.row(), q);
    EXPECT_GE(grid.col(), 0);
    EXPECT_LT(grid.col(), q);
    EXPECT_GE(grid.layer(), 0);
    EXPECT_LT(grid.layer(), l);
    // Rank decomposition is bijective.
    EXPECT_EQ(world.rank(), grid.layer() * q * q + grid.row() * q + grid.col());
  });
}

TEST_P(Grid3DComms, RowCommSeesWholeRow) {
  const auto [p, l] = GetParam();
  vmpi::run(p, [l = l](vmpi::Comm& world) {
    Grid3D grid(world, l);
    // Every member of my row communicator shares (row, layer): verify by
    // allgathering coordinates.
    struct Coord {
      int row, col, layer;
    };
    const Coord mine{grid.row(), grid.col(), grid.layer()};
    auto rows = grid.row_comm().allgather_value(mine);
    ASSERT_EQ(static_cast<int>(rows.size()), grid.q());
    for (int j = 0; j < grid.q(); ++j) {
      EXPECT_EQ(rows[static_cast<std::size_t>(j)].row, grid.row());
      EXPECT_EQ(rows[static_cast<std::size_t>(j)].col, j);
      EXPECT_EQ(rows[static_cast<std::size_t>(j)].layer, grid.layer());
    }
    auto cols = grid.col_comm().allgather_value(mine);
    for (int i = 0; i < grid.q(); ++i) {
      EXPECT_EQ(cols[static_cast<std::size_t>(i)].row, i);
      EXPECT_EQ(cols[static_cast<std::size_t>(i)].col, grid.col());
    }
    auto fiber = grid.fiber_comm().allgather_value(mine);
    ASSERT_EQ(static_cast<int>(fiber.size()), grid.layers());
    for (int k = 0; k < grid.layers(); ++k) {
      EXPECT_EQ(fiber[static_cast<std::size_t>(k)].row, grid.row());
      EXPECT_EQ(fiber[static_cast<std::size_t>(k)].col, grid.col());
      EXPECT_EQ(fiber[static_cast<std::size_t>(k)].layer, k);
    }
  });
}

TEST(Grid3DComms, InvalidShapeThrows) {
  EXPECT_THROW(vmpi::run(6, [](vmpi::Comm& world) { Grid3D grid(world, 2); }),
               std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Grid3DComms,
                         ::testing::Values(GridCase{1, 1}, GridCase{4, 1},
                                           GridCase{4, 4}, GridCase{8, 2},
                                           GridCase{16, 4}, GridCase{18, 2},
                                           GridCase{12, 3}));

}  // namespace
}  // namespace casp
