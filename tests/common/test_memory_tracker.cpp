#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/memory_tracker.hpp"

namespace casp {
namespace {

TEST(MemoryTracker, TracksLiveAndPeak) {
  MemoryTracker t(1000);
  t.allocate(300);
  EXPECT_EQ(t.live(), 300u);
  EXPECT_EQ(t.peak(), 300u);
  t.allocate(500);
  EXPECT_EQ(t.live(), 800u);
  t.release(300);
  EXPECT_EQ(t.live(), 500u);
  EXPECT_EQ(t.peak(), 800u);
}

TEST(MemoryTracker, ThrowsOnBudgetOverflowAndRollsBack) {
  MemoryTracker t(100);
  t.allocate(90);
  EXPECT_THROW(t.allocate(20, "big buffer"), MemoryError);
  EXPECT_EQ(t.live(), 90u) << "failed allocation must not leak a charge";
  t.allocate(10);  // exactly at budget is fine
  EXPECT_EQ(t.live(), 100u);
}

TEST(MemoryTracker, ZeroBudgetMeansUnlimited) {
  MemoryTracker t(0);
  t.allocate(1ull << 40);
  EXPECT_EQ(t.live(), 1ull << 40);
}

TEST(MemoryTracker, ChargeRaiiReleasesOnScopeExit) {
  MemoryTracker t(1000);
  {
    MemoryCharge charge(t, 400);
    EXPECT_EQ(t.live(), 400u);
  }
  EXPECT_EQ(t.live(), 0u);
  EXPECT_EQ(t.peak(), 400u);
}

TEST(MemoryTracker, ChargeMoveTransfersOwnership) {
  MemoryTracker t(1000);
  MemoryCharge a(t, 100);
  MemoryCharge b = std::move(a);
  EXPECT_EQ(t.live(), 100u);
  a.reset();  // moved-from reset is a no-op
  EXPECT_EQ(t.live(), 100u);
  b.reset();
  EXPECT_EQ(t.live(), 0u);
}

TEST(MemoryTracker, ConcurrentChargesAreExact) {
  MemoryTracker t(0);
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t]() {
      for (int k = 0; k < kIters; ++k) {
        t.allocate(3);
        t.release(3);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.live(), 0u);
  EXPECT_GE(t.peak(), 3u);
}

TEST(MemoryTracker, EnforcementIsExactUnderContention) {
  // The budget check and the charge commit are one CAS: with a budget of
  // 100 units and racing 10-unit charges, the sum of successful charges
  // can never exceed the budget, no matter the interleaving. (Under TSan
  // this also proves the check-then-act race is gone.)
  constexpr Bytes kBudget = 100;
  constexpr Bytes kChunk = 10;
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  MemoryTracker t(kBudget);
  std::vector<std::thread> threads;
  std::atomic<bool> violated{false};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&]() {
      for (int k = 0; k < kIters; ++k) {
        try {
          t.allocate(kChunk);
        } catch (const MemoryError&) {
          continue;  // full right now — that is the point
        }
        if (t.live() > kBudget) violated.store(true);
        t.release(kChunk);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violated.load()) << "charges jointly slipped past the budget";
  EXPECT_EQ(t.live(), 0u);
  EXPECT_LE(t.peak(), kBudget);
}

TEST(MemoryTracker, ProbeWindowDefersOverrunToTheBoundary) {
  MemoryTracker t(100);
  t.allocate(90);
  t.begin_probe();
  // Over budget inside the window: charged, flagged, but no throw — the
  // rank must reach the batch boundary instead of stranding its peers.
  EXPECT_NO_THROW(t.allocate(50, "batch working set"));
  EXPECT_EQ(t.live(), 140u);
  EXPECT_EQ(t.peak(), 140u) << "transient over-budget peak reported honestly";
  t.release(50);
  EXPECT_TRUE(t.end_probe());
  // Outside the window the hard contract is back.
  EXPECT_THROW(t.allocate(50), MemoryError);
  // A clean window reports no overrun.
  t.begin_probe();
  t.allocate(10);
  t.release(10);
  EXPECT_FALSE(t.end_probe());
}

TEST(MemoryTracker, FailureHookInjectsAllocationFaults) {
  MemoryTracker t(0);  // unlimited: only the hook can fail allocations
  int calls = 0;
  t.set_failure_hook([&calls](Bytes bytes, const char*) {
    ++calls;
    return bytes == 13;  // fail exactly the marked allocation
  });
  EXPECT_NO_THROW(t.allocate(7));
  EXPECT_THROW(t.allocate(13, "doomed"), MemoryError);
  EXPECT_EQ(t.live(), 7u) << "injected failure must not leak a charge";
  EXPECT_EQ(calls, 2);
  // Inside a probe window an injected failure marks the overrun instead.
  t.begin_probe();
  EXPECT_NO_THROW(t.allocate(13));
  EXPECT_TRUE(t.end_probe());
  t.release(13);
}

TEST(MemoryTracker, ResetPeak) {
  MemoryTracker t(0);
  t.allocate(100);
  t.release(100);
  EXPECT_EQ(t.peak(), 100u);
  t.reset_peak();
  EXPECT_EQ(t.peak(), 0u);
}

}  // namespace
}  // namespace casp
