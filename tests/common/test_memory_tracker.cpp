#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/memory_tracker.hpp"

namespace casp {
namespace {

TEST(MemoryTracker, TracksLiveAndPeak) {
  MemoryTracker t(1000);
  t.allocate(300);
  EXPECT_EQ(t.live(), 300u);
  EXPECT_EQ(t.peak(), 300u);
  t.allocate(500);
  EXPECT_EQ(t.live(), 800u);
  t.release(300);
  EXPECT_EQ(t.live(), 500u);
  EXPECT_EQ(t.peak(), 800u);
}

TEST(MemoryTracker, ThrowsOnBudgetOverflowAndRollsBack) {
  MemoryTracker t(100);
  t.allocate(90);
  EXPECT_THROW(t.allocate(20, "big buffer"), MemoryError);
  EXPECT_EQ(t.live(), 90u) << "failed allocation must not leak a charge";
  t.allocate(10);  // exactly at budget is fine
  EXPECT_EQ(t.live(), 100u);
}

TEST(MemoryTracker, ZeroBudgetMeansUnlimited) {
  MemoryTracker t(0);
  t.allocate(1ull << 40);
  EXPECT_EQ(t.live(), 1ull << 40);
}

TEST(MemoryTracker, ChargeRaiiReleasesOnScopeExit) {
  MemoryTracker t(1000);
  {
    MemoryCharge charge(t, 400);
    EXPECT_EQ(t.live(), 400u);
  }
  EXPECT_EQ(t.live(), 0u);
  EXPECT_EQ(t.peak(), 400u);
}

TEST(MemoryTracker, ChargeMoveTransfersOwnership) {
  MemoryTracker t(1000);
  MemoryCharge a(t, 100);
  MemoryCharge b = std::move(a);
  EXPECT_EQ(t.live(), 100u);
  a.reset();  // moved-from reset is a no-op
  EXPECT_EQ(t.live(), 100u);
  b.reset();
  EXPECT_EQ(t.live(), 0u);
}

TEST(MemoryTracker, ConcurrentChargesAreExact) {
  MemoryTracker t(0);
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t]() {
      for (int k = 0; k < kIters; ++k) {
        t.allocate(3);
        t.release(3);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.live(), 0u);
  EXPECT_GE(t.peak(), 3u);
}

TEST(MemoryTracker, ResetPeak) {
  MemoryTracker t(0);
  t.allocate(100);
  t.release(100);
  EXPECT_EQ(t.peak(), 100u);
  t.reset_peak();
  EXPECT_EQ(t.peak(), 0u);
}

}  // namespace
}  // namespace casp
