#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"

namespace casp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(9);
  for (std::uint64_t n : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.below(n), n);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> hist(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++hist[rng.below(10)];
  for (int b = 0; b < 10; ++b)
    EXPECT_NEAR(hist[static_cast<std::size_t>(b)], trials / 10, trials / 50);
}

TEST(Rng, RangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const Index v = rng.range(-5, 12);
    ASSERT_GE(v, -5);
    ASSERT_LT(v, 12);
  }
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent(42);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  Rng c1_again = parent.fork(1);
  // Same stream id -> same sequence.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c1(), c1_again());
  // Different ids -> different sequences.
  Rng c1_reset = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (c1_reset() == c2()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, Splitmix64KnownBehaviour) {
  // Two consecutive outputs from the same state must differ and be
  // reproducible.
  std::uint64_t s1 = 0, s2 = 0;
  const auto a1 = splitmix64(s1);
  const auto a2 = splitmix64(s1);
  EXPECT_NE(a1, a2);
  EXPECT_EQ(a1, splitmix64(s2));
}

}  // namespace
}  // namespace casp
