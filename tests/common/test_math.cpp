#include <gtest/gtest.h>

#include "common/math.hpp"

namespace casp {
namespace {

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_EQ(ceil_div(1'000'000'007, 2), 500'000'004);
}

TEST(Pow2, Predicates) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Pow2, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(17), 32u);
  EXPECT_EQ(next_pow2((1ull << 30) + 1), 1ull << 31);
}

TEST(Log2, FloorAndCeil) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(ExactIsqrt, PerfectAndImperfect) {
  EXPECT_EQ(exact_isqrt(0), 0);
  EXPECT_EQ(exact_isqrt(1), 1);
  EXPECT_EQ(exact_isqrt(4), 2);
  EXPECT_EQ(exact_isqrt(144), 12);
  EXPECT_EQ(exact_isqrt(2), -1);
  EXPECT_EQ(exact_isqrt(143), -1);
  EXPECT_EQ(exact_isqrt(-4), -1);
}

class PartitionProperties
    : public ::testing::TestWithParam<std::pair<Index, Index>> {};

TEST_P(PartitionProperties, CoversExactlyOnceAndBalanced) {
  const auto [parts, n] = GetParam();
  Index covered = 0;
  Index min_size = n + 1, max_size = -1;
  for (Index i = 0; i < parts; ++i) {
    const Index lo = part_low(i, parts, n);
    const Index hi = part_low(i + 1, parts, n);
    EXPECT_EQ(hi - lo, part_size(i, parts, n));
    EXPECT_LE(lo, hi);
    covered += hi - lo;
    min_size = std::min(min_size, hi - lo);
    max_size = std::max(max_size, hi - lo);
  }
  EXPECT_EQ(covered, n);
  EXPECT_EQ(part_low(0, parts, n), 0);
  EXPECT_EQ(part_low(parts, parts, n), n);
  // Balanced: sizes differ by at most 1.
  if (n >= parts) {
    EXPECT_LE(max_size - min_size, 1);
  }
}

TEST_P(PartitionProperties, PartOfInvertsPartLow) {
  const auto [parts, n] = GetParam();
  if (n == 0) return;
  for (Index g = 0; g < n; ++g) {
    const Index i = part_of(g, parts, n);
    EXPECT_GE(g, part_low(i, parts, n));
    EXPECT_LT(g, part_low(i + 1, parts, n));
  }
}

TEST_P(PartitionProperties, NestedSplitsCompose) {
  // The identity BatchedSUMMA3D relies on: splitting into l*b blocks and
  // taking runs of b consecutive blocks equals splitting into l parts.
  const auto [parts, n] = GetParam();
  for (Index b : {Index{1}, Index{2}, Index{3}, Index{5}}) {
    for (Index k = 0; k <= parts; ++k) {
      EXPECT_EQ(part_low(k * b, parts * b, n), part_low(k, parts, n))
          << "b=" << b << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperties,
    ::testing::Values(std::pair<Index, Index>{1, 0},
                      std::pair<Index, Index>{1, 7},
                      std::pair<Index, Index>{3, 7},
                      std::pair<Index, Index>{4, 4},
                      std::pair<Index, Index>{7, 3},  // more parts than items
                      std::pair<Index, Index>{5, 100},
                      std::pair<Index, Index>{16, 1000},
                      std::pair<Index, Index>{13, 997},
                      std::pair<Index, Index>{64, 65}));

}  // namespace
}  // namespace casp
