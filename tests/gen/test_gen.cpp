#include <gtest/gtest.h>

#include <set>

#include "gen/er.hpp"
#include "gen/kmer.hpp"
#include "gen/protein.hpp"
#include "gen/rmat.hpp"
#include "kernels/reference.hpp"
#include "sparse/stats.hpp"
#include "test_util.hpp"

namespace casp {
namespace {

TEST(ErGenerator, ShapeDensityAndDeterminism) {
  ErParams p;
  p.nrows = 500;
  p.ncols = 400;
  p.nnz_per_col = 5.0;
  p.seed = 77;
  const CscMat a = generate_er(p);
  EXPECT_EQ(a.nrows(), 500);
  EXPECT_EQ(a.ncols(), 400);
  // Duplicates merge, so realized density is slightly below the target.
  EXPECT_GT(a.nnz(), 400 * 4);
  EXPECT_LE(a.nnz(), 400 * 5);
  const CscMat b = generate_er(p);
  EXPECT_EQ(a, b) << "same seed must generate identical matrices";
  p.seed = 78;
  const CscMat c = generate_er(p);
  EXPECT_NE(a.nnz() == c.nnz() && a == c, true);
}

TEST(ErGenerator, EmptyAndDegenerate) {
  EXPECT_EQ(generate_er({0, 0, 3.0, true, 1}).nnz(), 0);
  EXPECT_EQ(generate_er({10, 10, 0.0, true, 1}).nnz(), 0);
  const CscMat one = generate_er({1, 100, 1.0, true, 1});
  for (Index r : one.rowids()) EXPECT_EQ(r, 0);
}

TEST(RmatGenerator, ShapeSymmetryAndSkew) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8.0;
  p.seed = 5;
  const CscMat a = generate_rmat(p);
  EXPECT_EQ(a.nrows(), 1024);
  EXPECT_EQ(a.ncols(), 1024);
  EXPECT_GT(a.nnz(), 0);
  // Symmetric: A == A^T up to summation order of duplicate edges.
  testing::expect_mat_near(a, a.transpose(), 1e-9);
  // Power-law: the max column degree should far exceed the average.
  const MatrixStats s = matrix_stats(a);
  EXPECT_GT(static_cast<double>(s.max_nnz_per_col), 4.0 * s.avg_nnz_per_col);
  // No self loops.
  for (Index j = 0; j < a.ncols(); ++j)
    for (Index r : a.col_rowids(j)) EXPECT_NE(r, j);
}

TEST(RmatGenerator, Deterministic) {
  RmatParams p;
  p.scale = 8;
  p.seed = 9;
  EXPECT_EQ(generate_rmat(p), generate_rmat(p));
}

TEST(ProteinGenerator, FamiliesAreDenseAndSquaringBlowsUp) {
  ProteinParams p;
  p.n = 800;
  p.min_family = 8;
  p.max_family = 120;
  p.within_density = 0.5;
  p.cross_edges_per_node = 0.2;
  p.seed = 3;
  const ProteinMatrix pm = generate_protein_similarity(p);
  const CscMat& a = pm.mat;
  EXPECT_EQ(a.nrows(), 800);
  EXPECT_EQ(static_cast<Index>(pm.family_of.size()), 800);
  // Every vertex got a family.
  for (Index f : pm.family_of) EXPECT_GE(f, 0);
  // Symmetric with unit diagonal.
  for (Index v = 0; v < a.ncols(); ++v) {
    bool has_diag = false;
    for (std::size_t k = 0; k < a.col_rowids(v).size(); ++k) {
      if (a.col_rowids(v)[k] == v) {
        has_diag = true;
        EXPECT_DOUBLE_EQ(a.col_vals(v)[k], 1.0);
      }
    }
    EXPECT_TRUE(has_diag);
  }
  // Values stay in (0, 1].
  for (Value v : a.vals()) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // The memory-constrained regime: nnz(A^2) substantially exceeds nnz(A).
  const MultiplyStats ms = multiply_stats(a, a);
  EXPECT_GT(ms.nnz_c, 2 * a.nnz());
  EXPECT_GT(ms.compression_factor, 1.5);
}

TEST(ProteinGenerator, Deterministic) {
  ProteinParams p;
  p.n = 300;
  p.seed = 8;
  const auto a = generate_protein_similarity(p);
  const auto b = generate_protein_similarity(p);
  EXPECT_EQ(a.mat, b.mat);
  EXPECT_EQ(a.family_of, b.family_of);
}

TEST(KmerGenerator, SharedKmersEqualOverlapWhenKeepingAll) {
  KmerParams p;
  p.num_reads = 60;
  p.genome_length = 400;
  p.min_read_len = 20;
  p.max_read_len = 40;
  p.kmer_keep_fraction = 1.0;  // exact ground truth
  p.seed = 4;
  const KmerMatrix km = generate_kmer_matrix(p);
  EXPECT_EQ(km.mat.nrows(), 60);
  EXPECT_EQ(km.mat.ncols(), 400);
  // A * A^T counts shared k-mers; with keep=1 that is the interval overlap.
  const CscMat at = km.mat.transpose();
  const CscMat c = reference_multiply<PlusTimes>(km.mat, at);
  for (Index j = 0; j < c.ncols(); ++j) {
    const auto rows = c.col_rowids(j);
    const auto vals = c.col_vals(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      EXPECT_DOUBLE_EQ(vals[k],
                       static_cast<double>(km.true_overlap(rows[k], j)))
          << "pair (" << rows[k] << "," << j << ")";
    }
  }
}

TEST(KmerGenerator, SubsamplingReducesNnz) {
  KmerParams p;
  p.num_reads = 100;
  p.genome_length = 500;
  p.seed = 6;
  p.kmer_keep_fraction = 1.0;
  const Index full = generate_kmer_matrix(p).mat.nnz();
  p.kmer_keep_fraction = 0.3;
  const Index sampled = generate_kmer_matrix(p).mat.nnz();
  EXPECT_LT(sampled, full / 2);
  EXPECT_GT(sampled, 0);
}

TEST(KmerGenerator, TrueOverlapIsSymmetricAndBounded) {
  KmerParams p;
  p.num_reads = 40;
  p.genome_length = 300;
  p.seed = 12;
  const KmerMatrix km = generate_kmer_matrix(p);
  for (Index i = 0; i < 40; ++i) {
    EXPECT_EQ(km.true_overlap(i, i), km.read_len[static_cast<std::size_t>(i)]);
    for (Index j = 0; j < 40; ++j) {
      EXPECT_EQ(km.true_overlap(i, j), km.true_overlap(j, i));
      EXPECT_LE(km.true_overlap(i, j),
                std::min(km.read_len[static_cast<std::size_t>(i)],
                         km.read_len[static_cast<std::size_t>(j)]));
    }
  }
}

}  // namespace
}  // namespace casp
