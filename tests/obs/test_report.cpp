// Golden-structure tests for the observability layer: Json roundtrips, the
// RunReport document (schema, Table II agreement, rank×rank matrices,
// bit-identical deterministic subset), and Chrome-trace well-formedness
// (paired B/E spans, nondecreasing timestamps per tid).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "grid/dist.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "summa/batched.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

using obs::Json;

// ---------------------------------------------------------------------------
// Json value type
// ---------------------------------------------------------------------------

TEST(Json, DumpParseRoundtrip) {
  Json doc = Json::object();
  doc.set("int", std::int64_t{-42});
  doc.set("big", std::uint64_t{9007199254740993});  // not double-exact
  doc.set("pi", 3.25);
  doc.set("flag", true);
  doc.set("none", nullptr);
  doc.set("text", "quo\"te\n\\tab");
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  Json inner = Json::object();
  inner.set("k", 3);
  arr.push_back(std::move(inner));
  doc.set("list", std::move(arr));

  const std::string text = doc.dump();
  const Json back = Json::parse(text);
  EXPECT_EQ(back.find("int")->as_int(), -42);
  EXPECT_EQ(back.find("big")->as_int(), std::int64_t{9007199254740993});
  EXPECT_EQ(back.find("pi")->as_double(), 3.25);
  EXPECT_TRUE(back.find("flag")->as_bool());
  EXPECT_TRUE(back.find("none")->is_null());
  EXPECT_EQ(back.find("text")->as_string(), "quo\"te\n\\tab");
  ASSERT_EQ(back.find("list")->size(), 3u);
  EXPECT_EQ(back.find("list")->at(2).find("k")->as_int(), 3);
  // A parse/dump cycle is the identity on writer output.
  EXPECT_EQ(back.dump(), text);
  // Pretty output parses back to the same document.
  EXPECT_EQ(Json::parse(doc.dump_pretty()).dump(), text);
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json doc = Json::object();
  doc.set("zebra", 1);
  doc.set("alpha", 2);
  doc.set("zebra", 3);  // overwrite keeps the original position
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "zebra");
  EXPECT_EQ(doc.members()[0].second.as_int(), 3);
  EXPECT_EQ(doc.members()[1].first, "alpha");
  EXPECT_EQ(doc.dump(), "{\"zebra\":3,\"alpha\":2}");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("'single'"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

vmpi::RunResult run_batched(const CscMat& a, int p, int l, Index b) {
  return vmpi::run(p, [&, l, b](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    SummaOptions opts;
    opts.force_batches = b;
    (void)batched_summa3d<PlusTimes>(grid, da, db, 0, opts);
  });
}

TEST(RunReport, TableIICountsOn4x4x4Grid) {
  const int p = 64, l = 4, q = 4;
  const Index b = 2;
  const CscMat a = testing::random_matrix(40, 40, 3.0, 180);
  const vmpi::RunResult result = run_batched(a, p, l, b);
  const obs::RunReport report = obs::build_report(result);

  // The report is a view of the ledger TrafficStats keeps, so its phase
  // totals must be bit-identical to the summary counts...
  const auto traffic = result.traffic_summary().total_per_phase;
  for (const char* phase :
       {steps::kABcast, steps::kBBcast, steps::kAllToAllFiber}) {
    ASSERT_TRUE(report.phases.count(phase)) << phase;
    const obs::PhaseEntry& e = report.phases.at(phase);
    EXPECT_EQ(e.total.messages, traffic.at(phase).messages) << phase;
    EXPECT_EQ(e.total.bytes, traffic.at(phase).bytes) << phase;
  }

  // ...and those counts are pinned by the Table II closed forms.
  const std::uint64_t bcast_msgs = static_cast<std::uint64_t>(l) * q * b * q *
                                   static_cast<std::uint64_t>(q - 1);
  const std::uint64_t fiber_msgs = static_cast<std::uint64_t>(b) * q * q * l *
                                   static_cast<std::uint64_t>(l - 1);
  EXPECT_EQ(report.phases.at(steps::kABcast).total.messages, bcast_msgs);
  EXPECT_EQ(report.phases.at(steps::kBBcast).total.messages, bcast_msgs);
  EXPECT_EQ(report.phases.at(steps::kAllToAllFiber).total.messages,
            fiber_msgs);

  // The serialized document carries the same numbers through a parse.
  const Json doc = Json::parse(report.to_json().dump());
  EXPECT_EQ(doc.find("schema")->as_string(), "casp.run_report.v1");
  EXPECT_EQ(doc.find("ranks")->as_int(), p);
  const Json* phases = doc.find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_EQ(phases->find(steps::kABcast)->find("messages")->as_int(),
            static_cast<std::int64_t>(bcast_msgs));
  EXPECT_EQ(phases->find(steps::kAllToAllFiber)->find("messages")->as_int(),
            static_cast<std::int64_t>(fiber_msgs));
  ASSERT_NE(doc.find("counters"), nullptr);
  EXPECT_EQ(doc.find("counters")->find("batches")->as_int(), b);

  // The rank×rank matrix is charged by the very same record_send calls, so
  // its grand total reproduces the phase total.
  const Json* matrix = doc.find("traffic_matrix")->find(steps::kABcast);
  ASSERT_NE(matrix, nullptr);
  EXPECT_EQ(matrix->find("ranks")->as_int(), p);
  std::uint64_t grand = 0;
  for (const Json& row : matrix->find("messages")->items())
    for (const Json& cell : row.items())
      grand += static_cast<std::uint64_t>(cell.as_int());
  EXPECT_EQ(grand, bcast_msgs);
}

TEST(RunReport, MatrixRowSumsReproducePerRankTotals) {
  const CscMat a = testing::random_matrix(40, 40, 3.0, 181);
  const vmpi::RunResult result = run_batched(a, 16, 4, 2);
  const obs::RunReport report = obs::build_report(result);
  ASSERT_FALSE(report.matrices.empty());
  for (const auto& [phase, m] : report.matrices) {
    ASSERT_EQ(m.ranks, 16);
    for (int src = 0; src < m.ranks; ++src) {
      std::uint64_t row_msgs = 0, row_bytes = 0;
      for (int dst = 0; dst < m.ranks; ++dst) {
        const std::size_t i = static_cast<std::size_t>(src) * 16 +
                              static_cast<std::size_t>(dst);
        row_msgs += m.messages[i];
        row_bytes += m.bytes[i];
      }
      const auto& per_phase =
          result.traffic[static_cast<std::size_t>(src)].per_phase();
      const auto it = per_phase.find(phase);
      const std::uint64_t want_msgs =
          it == per_phase.end() ? 0 : it->second.messages;
      const std::uint64_t want_bytes =
          it == per_phase.end()
              ? 0
              : static_cast<std::uint64_t>(it->second.bytes);
      EXPECT_EQ(row_msgs, want_msgs) << phase << " rank " << src;
      EXPECT_EQ(row_bytes, want_bytes) << phase << " rank " << src;
    }
  }
}

TEST(RunReport, DeterministicJsonBitIdenticalAcrossRuns) {
  const CscMat a = testing::random_matrix(40, 40, 3.0, 182);
  const std::string one =
      obs::build_report(run_batched(a, 16, 4, 2)).deterministic_json().dump();
  const std::string two =
      obs::build_report(run_batched(a, 16, 4, 2)).deterministic_json().dump();
  EXPECT_EQ(one, two);

  // The subset really is deterministic-only: no wall times, no memory.
  const Json doc = Json::parse(one);
  EXPECT_FALSE(doc.contains("wall_seconds"));
  EXPECT_FALSE(doc.contains("memory"));
  const Json* abcast = doc.find("phases")->find(steps::kABcast);
  ASSERT_NE(abcast, nullptr);
  EXPECT_FALSE(abcast->contains("seconds_sum"));
  EXPECT_FALSE(abcast->contains("seconds_max"));
}

TEST(RunReport, FullDocumentSchemaKeyOrder) {
  const CscMat a = testing::random_matrix(30, 30, 3.0, 183);
  const vmpi::RunResult result = run_batched(a, 4, 1, 1);
  const Json doc = Json::parse(obs::build_report(result).to_json().dump());
  const std::vector<std::string> want = {
      "schema",   "ranks",  "wall_seconds",  "phases",
      "counters", "memory", "traffic_matrix"};
  ASSERT_EQ(doc.members().size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_EQ(doc.members()[i].first, want[i]);
  const Json* mem = doc.find("memory");
  ASSERT_NE(mem, nullptr);
  EXPECT_TRUE(mem->contains("peak_bytes_max"));
  EXPECT_EQ(mem->find("peak_bytes_per_rank")->size(), 4u);
  // Timed phases report both aggregate and critical-path seconds.
  const Json* abcast = doc.find("phases")->find(steps::kABcast);
  ASSERT_NE(abcast, nullptr);
  EXPECT_TRUE(abcast->contains("seconds_sum"));
  EXPECT_TRUE(abcast->contains("seconds_max"));
  EXPECT_GE(abcast->find("seconds_sum")->as_double(),
            abcast->find("seconds_max")->as_double());
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST(ChromeTrace, WellFormedPairedSpansAndMonotoneTimestamps) {
  const CscMat a = testing::random_matrix(40, 40, 3.0, 184);
  const vmpi::RunResult result = run_batched(a, 16, 4, 2);
  const Json doc = Json::parse(obs::chrome_trace_string(result));
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->size(), 0u);

  std::map<std::int64_t, std::vector<std::string>> open;  // tid -> B stack
  std::map<std::int64_t, double> last_ts;
  bool saw_tagged_bcast = false;
  for (const Json& e : events->items()) {
    const std::string ph = e.find("ph")->as_string();
    const std::int64_t tid = e.find("tid")->as_int();
    EXPECT_EQ(e.find("pid")->as_int(), 0);
    if (ph == "M") {
      EXPECT_EQ(e.find("args")->find("name")->as_string(),
                "rank " + std::to_string(tid));
      continue;
    }
    const double ts = e.find("ts")->as_double();
    const auto [it, first] = last_ts.try_emplace(tid, ts);
    EXPECT_GE(ts, it->second) << "tid " << tid << " timestamps regressed";
    it->second = ts;
    const std::string& name = e.find("name")->as_string();
    if (ph == "B") {
      open[tid].push_back(name);
      const Json* args = e.find("args");
      if (name == steps::kABcast && args != nullptr &&
          args->contains("stage") && args->contains("layer"))
        saw_tagged_bcast = true;
    } else if (ph == "E") {
      ASSERT_FALSE(open[tid].empty()) << "unmatched E for " << name;
      EXPECT_EQ(open[tid].back(), name) << "tid " << tid;
      open[tid].pop_back();
    } else {
      EXPECT_EQ(ph, "C") << "unexpected event type " << ph;
      ASSERT_NE(e.find("args"), nullptr);
      EXPECT_TRUE(e.find("args")->contains("value"));
    }
  }
  for (const auto& [tid, stack] : open)
    EXPECT_TRUE(stack.empty()) << "tid " << tid << " has unclosed spans";
  // The structured tags made it into the span args: broadcast spans carry
  // their SUMMA stage and grid layer.
  EXPECT_TRUE(saw_tagged_bcast);
}

}  // namespace
}  // namespace casp
