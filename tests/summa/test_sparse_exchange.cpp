// Sparsity-aware A exchange (summa/sparse_comm.hpp): protocol unit tests,
// bit-identity against the dense broadcast path across grids and input
// families, the shipped<=logical ledger invariant with exact reconciliation
// of the report's new columns, the degenerate all-columns-needed fallback,
// and (FaultSparseExchange, swept by check.sh stage (f)) completion under
// injected transient send faults.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "gen/protein.hpp"
#include "gen/rmat.hpp"
#include "grid/dist.hpp"
#include "kernels/reference.hpp"
#include "model/costs.hpp"
#include "obs/report.hpp"
#include "sparse/serialize.hpp"
#include "summa/batched.hpp"
#include "summa/sparse_comm.hpp"
#include "summa/summa3d.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

std::uint64_t sweep_seed() {
  const char* env = std::getenv("CASP_FAULT_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

// ---------------------------------------------------------------------------
// Protocol units: need-lists, replies, reassembly.

TEST(SparseComm, RowSupportIsSortedDistinctRows) {
  TripleMat t(6, 3);
  t.push_back(4, 0, 1.0);
  t.push_back(1, 0, 1.0);
  t.push_back(4, 2, 1.0);
  t.push_back(0, 2, 1.0);
  const CscMat b = CscMat::from_triples(std::move(t));
  const std::vector<Index> support = row_support(b);
  EXPECT_EQ(support, (std::vector<Index>{0, 1, 4}));
}

TEST(SparseComm, CoalesceBridgesSmallGapsOnly) {
  const std::vector<Index> cols = {0, 1, 5, 20, 21};
  const auto tight = coalesce_cols(cols, 0);
  ASSERT_EQ(tight.size(), 3u);
  EXPECT_EQ(tight[0].begin, 0);
  EXPECT_EQ(tight[0].end, 2);
  EXPECT_EQ(tight[1].begin, 5);
  EXPECT_EQ(tight[1].end, 6);
  EXPECT_EQ(tight[2].begin, 20);
  EXPECT_EQ(tight[2].end, 22);
  const auto bridged = coalesce_cols(cols, 3);
  ASSERT_EQ(bridged.size(), 2u);  // gap of 3 bridged, gap of 14 not
  EXPECT_EQ(bridged[0].begin, 0);
  EXPECT_EQ(bridged[0].end, 6);
  EXPECT_EQ(bridged[1].begin, 20);
  EXPECT_EQ(bridged[1].end, 22);
}

TEST(SparseComm, NeedRequestRoundTrips) {
  const std::vector<ColRange> ranges = {{2, 5}, {9, 10}, {12, 40}};
  const Payload req = pack_need_request(ranges);
  const std::vector<ColRange> back = unpack_need_request(req);
  ASSERT_EQ(back.size(), ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(back[i].begin, ranges[i].begin);
    EXPECT_EQ(back[i].end, ranges[i].end);
  }
  // Malformed wire bytes must be rejected, not trusted.
  EXPECT_THROW((void)unpack_need_request(
                   pack_need_request(std::vector<ColRange>{{5, 3}})),
               std::logic_error);
}

TEST(SparseComm, SparseReplyReassemblesRequestedColumnsBitIdentically) {
  const CscMat block = testing::random_matrix(40, 30, 2.5, 901);
  const Payload packed = pack_csc_payload(block);
  const std::vector<ColRange> ranges = {{0, 4}, {11, 13}, {22, 30}};
  vmpi::SparseReply reply =
      make_sparse_reply(packed, pack_need_request(ranges));
  ASSERT_GE(reply.messages.size(), 1u);
  const CscView got = assemble_sparse_block(reply.messages);
  EXPECT_EQ(got.nrows(), block.nrows());
  EXPECT_EQ(got.ncols(), block.ncols());
  for (const ColRange& r : ranges) {
    for (Index j = r.begin; j < r.end; ++j) {
      const auto want_rows = block.col_rowids(j);
      const auto got_rows = got.col_rowids(j);
      ASSERT_EQ(got_rows.size(), want_rows.size()) << "column " << j;
      for (std::size_t k = 0; k < want_rows.size(); ++k) {
        EXPECT_EQ(got_rows[k], want_rows[k]);
        EXPECT_EQ(got.col_vals(j)[k], block.col_vals(j)[k]);
      }
    }
  }
}

TEST(SparseComm, ZeroCopyReplyNeverDeepCopiesBlockBytes) {
  const CscMat block = testing::random_matrix(64, 64, 3.0, 902);
  const Payload packed = pack_csc_payload(block);
  const std::vector<ColRange> ranges = {{3, 9}, {40, 50}};
  const std::uint64_t before = Payload::deep_copies();
  vmpi::SparseReply reply =
      make_sparse_reply(packed, pack_need_request(ranges));
  EXPECT_EQ(Payload::deep_copies(), before)
      << "sender-side reply must be subviews only";
  ASSERT_FALSE(reply.messages.empty());
}

TEST(SparseComm, WholeBlockRequestFallsBackToDenseSubview) {
  const CscMat block = testing::random_matrix(32, 20, 2.0, 903);
  const Payload packed = pack_csc_payload(block);
  const std::vector<ColRange> all = {{0, block.ncols()}};
  vmpi::SparseReply reply = make_sparse_reply(packed, pack_need_request(all));
  // A full-width sparse reply costs strictly more than the block (extra
  // descriptor words), so the packer must choose the dense fallback: one
  // kind word plus one whole-block subview.
  ASSERT_EQ(reply.messages.size(), 2u);
  EXPECT_EQ(reply.messages[0].size(), sizeof(std::uint64_t));
  EXPECT_EQ(reply.messages[1].size(), packed.size());
  EXPECT_EQ(reply.messages[1].data(), packed.data());  // same bytes, no copy
  const CscView got = assemble_sparse_block(reply.messages);
  EXPECT_EQ(got.nnz(), block.nnz());
}

TEST(SparseComm, PaysOffPredicateWeighsLatencyAgainstSavedBytes) {
  Machine m;
  m.alpha = 1e-6;
  m.beta = 1e-9;  // 1 GB/s: 1 us buys 1000 bytes
  EXPECT_TRUE(sparse_exchange_pays_off(m, 1 << 20, 1 << 10, 4));
  EXPECT_FALSE(sparse_exchange_pays_off(m, 2048, 1024, 4));  // saves 1024 B,
                                                             // costs 4 us
  EXPECT_FALSE(sparse_exchange_pays_off(m, 1024, 1024, 0));  // no savings
  EXPECT_FALSE(sparse_exchange_pays_off(m, 1024, 4096, 0));
}

TEST(SparseComm, CostModelSparseTermDropsWithNeedFraction) {
  const Machine m = cori_knl();
  ProblemStats stats;
  stats.nnz_a = stats.nnz_b = 1 << 22;
  stats.flops = 1 << 26;
  ModelConfig config;
  config.p = 64;
  config.l = 4;
  config.b = 2;
  const double dense = predict_steps(m, stats, config).at(steps::kABcast);
  config.sparse_comm = true;
  stats.a_need_fraction = 1.0;
  const double sparse_full =
      predict_steps(m, stats, config).at(steps::kABcast);
  stats.a_need_fraction = 0.25;
  const double sparse_quarter =
      predict_steps(m, stats, config).at(steps::kABcast);
  // At need-fraction 1 only the latency shape changes; at 0.25 the
  // bandwidth term shrinks 4x, so the prediction strictly improves.
  EXPECT_LT(sparse_quarter, sparse_full);
  EXPECT_LT(sparse_quarter, dense);
}

// ---------------------------------------------------------------------------
// End-to-end: sparse_comm toggle across grids and input families.

struct GridCase {
  int p;
  int l;
};

class SparseExchange : public ::testing::TestWithParam<GridCase> {};

vmpi::RunResult run_summa(const CscMat& a, const CscMat& b, int p, int l,
                          bool sparse_comm, CscMat* out = nullptr) {
  return vmpi::run(p, [&, l, sparse_comm](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, b);
    SummaOptions opts;
    opts.sparse_comm = sparse_comm;
    DistMat3D dc;
    dc.global_rows = a.nrows();
    dc.global_cols = b.ncols();
    dc.rows = a_style_row_range(grid, a.nrows());
    dc.cols = a_style_col_range(grid, b.ncols());
    dc.local = summa3d<PlusTimes>(grid, da.local, db.local, opts);
    CscMat gathered = gather_dist(grid, dc);
    if (out != nullptr && world.rank() == 0) *out = std::move(gathered);
  });
}

CscMat skewed_rmat(Index scale, std::uint64_t seed) {
  RmatParams p;
  p.scale = static_cast<int>(scale);
  p.edge_factor = 4.0;
  p.seed = seed;
  return generate_rmat(p);
}

CscMat protein_like(Index n, std::uint64_t seed) {
  ProteinParams p;
  p.n = n;
  p.min_family = 2;
  p.max_family = n / 4;
  p.seed = seed;
  return generate_protein_similarity(p).mat;
}

TEST_P(SparseExchange, BitIdenticalToDenseAcrossInputFamilies) {
  const auto [p, l] = GetParam();
  const std::vector<std::pair<std::string, CscMat>> inputs = {
      {"er", testing::random_matrix(48, 48, 3.0, 910)},
      {"rmat", skewed_rmat(6, 911)},
      {"protein", protein_like(40, 912)},
  };
  for (const auto& [name, a] : inputs) {
    SCOPED_TRACE(name);
    const CscMat expected = reference_multiply<PlusTimes>(a, a);
    CscMat dense, sparse;
    run_summa(a, a, p, l, /*sparse_comm=*/false, &dense);
    run_summa(a, a, p, l, /*sparse_comm=*/true, &sparse);
    testing::expect_mat_near(dense, expected, 1e-9);
    testing::expect_mat_near(sparse, dense, 0.0);
  }
}

TEST_P(SparseExchange, ShippedNeverExceedsLogicalAndColumnsReconcile) {
  const auto [p, l] = GetParam();
  const CscMat a = skewed_rmat(6, 913);

  const vmpi::RunResult result = run_summa(a, a, p, l, /*sparse_comm=*/true);
  const obs::RunReport report = obs::build_report(result);
  for (const auto& [phase, e] : report.phases) {
    EXPECT_LE(e.total.shipped, e.total.bytes) << "phase " << phase;
    EXPECT_LE(e.max.shipped, e.max.bytes) << "phase " << phase;
    if (phase != steps::kABcast) {
      // Only the sparse A exchange elides bytes; every other phase ships
      // its full logical volume.
      EXPECT_EQ(e.total.shipped, e.total.bytes) << "phase " << phase;
    }
  }
  // The per-phase totals and the rank x rank matrices are two views of the
  // same record_send/record_unshipped calls: cell sums reconcile exactly
  // for all three columns.
  for (const auto& [phase, m] : report.matrices) {
    std::uint64_t msgs = 0, bytes = 0, shipped = 0;
    for (std::size_t i = 0; i < m.messages.size(); ++i) {
      msgs += m.messages[i];
      bytes += m.bytes[i];
      shipped += m.shipped[i];
    }
    const obs::PhaseEntry& e = report.phases.at(phase);
    EXPECT_EQ(msgs, e.total.messages) << "phase " << phase;
    EXPECT_EQ(bytes, static_cast<std::uint64_t>(e.total.bytes))
        << "phase " << phase;
    EXPECT_EQ(shipped, static_cast<std::uint64_t>(e.total.shipped))
        << "phase " << phase;
  }
  // The dense path must not use the new column at all: shipped == logical
  // in every phase, including A-Bcast.
  const obs::RunReport dense_report =
      obs::build_report(run_summa(a, a, p, l, /*sparse_comm=*/false));
  for (const auto& [phase, e] : dense_report.phases)
    EXPECT_EQ(e.total.shipped, e.total.bytes) << "phase " << phase;
}

TEST_P(SparseExchange, SkewedInputsShipFewerABcastBytesOnRealGrids) {
  const auto [p, l] = GetParam();
  if (p / l <= 1) GTEST_SKIP() << "q=1 grids have no A exchange traffic";
  // Sparser and more skewed than the bit-identity inputs: per-block column
  // support must have real gaps even after layers shrink the stage blocks,
  // or metadata overhead swamps the savings on the layered grids.
  RmatParams rp;
  rp.scale = 9;
  rp.edge_factor = 2.0;
  rp.a = 0.65;
  rp.d = 0.05;
  rp.b = rp.c = 0.15;
  rp.seed = 914;
  const CscMat a = generate_rmat(rp);
  const auto dense =
      run_summa(a, a, p, l, /*sparse_comm=*/false).traffic_summary();
  const auto sparse =
      run_summa(a, a, p, l, /*sparse_comm=*/true).traffic_summary();
  const vmpi::PhaseTraffic& d = dense.total_per_phase.at(steps::kABcast);
  const vmpi::PhaseTraffic& s = sparse.total_per_phase.at(steps::kABcast);
  // On a heavy-tailed input the need-lists trim real volume: strictly
  // fewer wire bytes than the dense broadcast shipped (the >=30% bench
  // acceptance is asserted at bench scale by bench_sparse_exchange).
  EXPECT_LT(s.shipped, d.bytes);
  // And B-Bcast is untouched by the A-side rework.
  EXPECT_EQ(sparse.total_per_phase.at(steps::kBBcast).bytes,
            dense.total_per_phase.at(steps::kBBcast).bytes);
}

TEST_P(SparseExchange, BatchedSymbolicHintsPreserveResults) {
  const auto [p, l] = GetParam();
  const Index n = 40;
  const CscMat a = protein_like(n, 915);
  const CscMat expected = reference_multiply<PlusTimes>(a, a);
  for (const bool sparse_comm : {false, true}) {
    SCOPED_TRACE(sparse_comm ? "sparse" : "dense");
    vmpi::run(p, [&, l, sparse_comm](vmpi::Comm& world) {
      Grid3D grid(world, l);
      const DistMat3D da = distribute_a_style(grid, a);
      const DistMat3D db = distribute_b_style(grid, a);
      SummaOptions opts;
      opts.sparse_comm = sparse_comm;
      opts.force_batches = 0;  // run the symbolic pass: hints + batch count
      const BatchedResult r =
          batched_summa3d<PlusTimes>(grid, da, db, /*total_memory=*/0, opts);
      // The symbolic pass produced per-column hints covering my B part.
      ASSERT_EQ(static_cast<Index>(r.symbolic.col_nnz.size()),
                db.local.ncols());
      testing::expect_mat_near(gather_dist(grid, r.c), expected, 1e-9);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, SparseExchange,
                         ::testing::Values(GridCase{1, 1}, GridCase{2, 2},
                                           GridCase{4, 1}, GridCase{4, 4},
                                           GridCase{8, 2}, GridCase{16, 4}));

TEST(SparseExchangeDegenerate, AllColumnsNeededCostsAtMostDensePlusMetadata) {
  // A fully dense B makes every stage request every A column, so each
  // reply takes the kind-0 fallback. Bound the regression exactly: the
  // sparse run may exceed the dense run only by the fixed metadata — one
  // request, one count header and one kind word per (stage, peer) pair.
  const int p = 4, l = 1;
  const Index n = 24;
  const CscMat a = testing::random_matrix(n, n, 3.0, 916);
  const CscMat b = testing::random_matrix(n, n, static_cast<double>(n), 917);

  const auto dense =
      run_summa(a, b, p, l, /*sparse_comm=*/false).traffic_summary();
  const auto sparse =
      run_summa(a, b, p, l, /*sparse_comm=*/true).traffic_summary();
  const vmpi::PhaseTraffic& d = dense.total_per_phase.at(steps::kABcast);
  const vmpi::PhaseTraffic& s = sparse.total_per_phase.at(steps::kABcast);

  const int q = 2;  // sqrt(p / l)
  const std::uint64_t pairs = static_cast<std::uint64_t>(l) * q * q * (q - 1);
  // request = [nranges][begin,end] = 24 B; count header 8 B; kind word 8 B.
  const Bytes metadata_bound = static_cast<Bytes>(pairs) * (24 + 8 + 8);
  EXPECT_LE(s.shipped, d.bytes + metadata_bound);
  EXPECT_EQ(s.shipped, s.bytes)
      << "dense fallback must not book unshipped credit";
}

// ---------------------------------------------------------------------------
// FaultSparseExchange: stage (f) sweeps this suite over CASP_FAULT_SEED.

TEST(FaultSparseExchange, TransientSendFaultsRetryToTheSameResult) {
  const int p = 4, l = 1;
  const CscMat a = skewed_rmat(5, 918);
  CscMat clean;
  run_summa(a, a, p, l, /*sparse_comm=*/true, &clean);

  vmpi::RunOptions opts;
  vmpi::FaultPlan plan;
  plan.seed = sweep_seed();
  plan.send_fail = 0.05;
  plan.retry.base_delay_us = 1;
  plan.retry.cap_delay_us = 4;
  opts.faults = plan;

  CscMat faulty;
  const vmpi::RunResult result = vmpi::run(
      p,
      [&](vmpi::Comm& world) {
        Grid3D grid(world, l);
        const DistMat3D da = distribute_a_style(grid, a);
        const DistMat3D db = distribute_b_style(grid, a);
        SummaOptions sopts;
        sopts.sparse_comm = true;
        DistMat3D dc;
        dc.global_rows = a.nrows();
        dc.global_cols = a.ncols();
        dc.rows = a_style_row_range(grid, a.nrows());
        dc.cols = a_style_col_range(grid, a.ncols());
        dc.local = summa3d<PlusTimes>(grid, da.local, db.local, sopts);
        CscMat gathered = gather_dist(grid, dc);
        if (world.rank() == 0) faulty = std::move(gathered);
      },
      opts);
  ASSERT_FALSE(result.failure.has_value())
      << result.failure->kind << ": " << result.failure->what;
  testing::expect_mat_near(faulty, clean, 0.0);
  // Retransmissions only ever add to both ledger columns together, so the
  // invariant survives injected faults too.
  for (const auto& [phase, t] : result.traffic_summary().total_per_phase)
    EXPECT_LE(t.shipped, t.bytes) << "phase " << phase;
}

}  // namespace
}  // namespace casp
