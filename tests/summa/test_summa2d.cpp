// SUMMA2D (Algorithm 1) correctness: the gathered distributed product must
// equal the serial reference for random matrices across grid shapes,
// kernel choices, and semirings. Runs with l = 1 so the layer is the whole
// grid and the 2D result is the final result.
#include <gtest/gtest.h>

#include "grid/dist.hpp"
#include "kernels/reference.hpp"
#include "summa/summa2d.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

struct Summa2DCase {
  int p;
  Index n;
  double density;
  SpGemmKind local_kind;
  MergeKind merge_kind;
};

class Summa2DCorrectness : public ::testing::TestWithParam<Summa2DCase> {};

TEST_P(Summa2DCorrectness, MatchesSerialReference) {
  const auto param = GetParam();
  const CscMat a = testing::random_matrix(param.n, param.n, param.density, 7);
  const CscMat b = testing::random_matrix(param.n, param.n, param.density, 8);
  const CscMat expected = reference_multiply<PlusTimes>(a, b);

  vmpi::run(param.p, [&](vmpi::Comm& world) {
    Grid3D grid(world, /*layers=*/1);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, b);
    SummaOptions opts;
    opts.local_kind = param.local_kind;
    opts.merge_kind = param.merge_kind;
    CscMat local_d = summa2d<PlusTimes>(grid, da.local, db.local, opts);

    DistMat3D dc;
    dc.local = std::move(local_d);
    dc.global_rows = a.nrows();
    dc.global_cols = b.ncols();
    dc.rows = da.rows;
    dc.cols = db.cols;  // with l=1 the 2D product is distributed like B cols
    CscMat gathered = gather_dist(grid, dc);
    testing::expect_mat_near(gathered, expected, 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, Summa2DCorrectness,
    ::testing::Values(
        Summa2DCase{1, 12, 3.0, SpGemmKind::kUnsortedHash,
                    MergeKind::kUnsortedHash},
        Summa2DCase{4, 20, 3.0, SpGemmKind::kUnsortedHash,
                    MergeKind::kUnsortedHash},
        Summa2DCase{4, 21, 4.0, SpGemmKind::kSortedHash,
                    MergeKind::kSortedHeap},
        Summa2DCase{9, 30, 3.0, SpGemmKind::kHeap, MergeKind::kSortedHeap},
        Summa2DCase{9, 31, 2.0, SpGemmKind::kHybrid, MergeKind::kSortedHeap},
        Summa2DCase{16, 37, 3.5, SpGemmKind::kUnsortedHash,
                    MergeKind::kUnsortedHash},
        Summa2DCase{16, 40, 5.0, SpGemmKind::kSpa, MergeKind::kUnsortedHash},
        // denser than rows: guaranteed collisions and compression
        Summa2DCase{4, 8, 6.0, SpGemmKind::kUnsortedHash,
                    MergeKind::kUnsortedHash}));

TEST(Summa2DRectangular, TallTimesWide) {
  const Index m = 26, k = 14, n = 33;
  const CscMat a = testing::random_matrix(m, k, 3.0, 9);
  const CscMat b = testing::random_matrix(k, n, 3.0, 10);
  const CscMat expected = reference_multiply<PlusTimes>(a, b);
  vmpi::run(4, [&](vmpi::Comm& world) {
    Grid3D grid(world, 1);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, b);
    CscMat local_d = summa2d<PlusTimes>(grid, da.local, db.local, {});
    DistMat3D dc{std::move(local_d), m, n, /*global_nnz=*/0, da.rows, db.cols};
    testing::expect_mat_near(gather_dist(grid, dc), expected);
  });
}

TEST(Summa2DSemiring, MinPlusShortestPathStep) {
  const Index n = 18;
  const CscMat a = testing::random_matrix(n, n, 3.0, 11);
  const CscMat expected = reference_multiply<MinPlus>(a, a);
  vmpi::run(4, [&](vmpi::Comm& world) {
    Grid3D grid(world, 1);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    CscMat local_d = summa2d<MinPlus>(grid, da.local, db.local, {});
    DistMat3D dc{std::move(local_d), n, n, /*global_nnz=*/0, da.rows, db.cols};
    testing::expect_mat_near(gather_dist(grid, dc), expected);
  });
}

TEST(Summa2DTiming, RecordsAllStepTimes) {
  const Index n = 16;
  const CscMat a = testing::random_matrix(n, n, 3.0, 12);
  auto result = vmpi::run(4, [&](vmpi::Comm& world) {
    Grid3D grid(world, 1);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    (void)summa2d<PlusTimes>(grid, da.local, db.local, {});
  });
  EXPECT_GT(result.max_time(steps::kABcast), 0.0);
  EXPECT_GT(result.max_time(steps::kBBcast), 0.0);
  EXPECT_GT(result.max_time(steps::kLocalMultiply), 0.0);
  EXPECT_GT(result.max_time(steps::kMergeLayer), 0.0);
  // Traffic must be attributed to the bcast phases.
  const auto summary = result.traffic_summary();
  EXPECT_GT(summary.total_per_phase.at(steps::kABcast).bytes, 0u);
  EXPECT_GT(summary.total_per_phase.at(steps::kBBcast).bytes, 0u);
}

}  // namespace
}  // namespace casp
