// BatchedSUMMA3D (Algorithm 4): correctness across (p, l, b), callback
// streaming, block-cyclic column mapping, and memory-budget behaviour.
#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "grid/dist.hpp"
#include "kernels/reference.hpp"
#include "summa/batched.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

struct BatchedCase {
  int p;
  int l;
  Index batches;
  Index n;
  double density;
};

class BatchedCorrectness : public ::testing::TestWithParam<BatchedCase> {};

TEST_P(BatchedCorrectness, ConcatenatedOutputMatchesReference) {
  const auto [p, l, batches, n, density] = GetParam();
  const CscMat a = testing::random_matrix(n, n, density, 31);
  const CscMat b = testing::random_matrix(n, n, density, 32);
  const CscMat expected = reference_multiply<PlusTimes>(a, b);

  vmpi::run(p, [&, l = l, batches = batches](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, b);
    SummaOptions opts;
    opts.force_batches = batches;
    BatchedResult result =
        batched_summa3d<PlusTimes>(grid, da, db, /*total_memory=*/0, opts);
    EXPECT_EQ(result.batches, std::min(batches, std::max<Index>(1, n)));
    // Output must be A-style distributed.
    EXPECT_EQ(result.c.rows.start, a_style_row_range(grid, n).start);
    EXPECT_EQ(result.c.cols.start, a_style_col_range(grid, n).start);
    EXPECT_EQ(result.c.cols.count, a_style_col_range(grid, n).count);
    testing::expect_mat_near(gather_dist(grid, result.c), expected, 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BatchedCorrectness,
    ::testing::Values(BatchedCase{1, 1, 3, 17, 3.0},
                      BatchedCase{4, 1, 2, 20, 3.0},
                      BatchedCase{4, 4, 3, 22, 3.0},
                      BatchedCase{8, 2, 4, 26, 3.0},
                      BatchedCase{16, 4, 5, 31, 3.0},
                      BatchedCase{9, 1, 7, 23, 3.0},
                      BatchedCase{16, 16, 2, 21, 2.0},
                      // b larger than per-part columns: empty batches
                      BatchedCase{8, 2, 16, 9, 2.0},
                      BatchedCase{12, 3, 6, 29, 3.5}));

TEST(BatchedCallback, StreamedPiecesTileTheOutputExactly) {
  const int p = 8, l = 2;
  const Index n = 24, batches = 3;
  const CscMat a = testing::random_matrix(n, n, 3.0, 33);
  const CscMat b = testing::random_matrix(n, n, 3.0, 34);
  const CscMat expected = reference_multiply<PlusTimes>(a, b);

  std::mutex mutex;
  TripleMat assembled(n, n);
  std::map<Index, int> batch_calls;  // batch index -> callback count

  vmpi::run(p, [&](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, b);
    SummaOptions opts;
    opts.force_batches = batches;
    batched_summa3d<PlusTimes>(
        grid, da, db, 0, opts,
        [&](CscMat&& piece, const BatchInfo& info) {
          EXPECT_EQ(info.num_batches, batches);
          EXPECT_EQ(piece.ncols(), info.global_cols.count);
          EXPECT_EQ(piece.nrows(), info.global_rows.count);
          EXPECT_TRUE(piece.columns_sorted());
          std::lock_guard<std::mutex> lock(mutex);
          ++batch_calls[info.batch_index];
          for (Index j = 0; j < piece.ncols(); ++j) {
            const auto rows = piece.col_rowids(j);
            const auto vals = piece.col_vals(j);
            for (std::size_t k = 0; k < rows.size(); ++k)
              assembled.push_back(rows[k] + info.global_rows.start,
                                  j + info.global_cols.start, vals[k]);
          }
        },
        /*keep_output=*/false);
  });

  // Every batch invoked on every rank.
  ASSERT_EQ(batch_calls.size(), static_cast<std::size_t>(batches));
  for (const auto& [bi, count] : batch_calls) EXPECT_EQ(count, p);

  // Streamed pieces are disjoint (no duplicate coordinates) and assemble to
  // the full product.
  ASSERT_TRUE(assembled.nnz() == expected.nnz());
  CscMat full = CscMat::from_triples(std::move(assembled));
  EXPECT_EQ(full.nnz(), expected.nnz()) << "pieces overlapped";
  testing::expect_mat_near(full, expected, 1e-9);
}

TEST(BatchedSymbolic, TightMemoryForcesMultipleBatches) {
  const int p = 8, l = 2;
  const Index n = 32;
  const CscMat a = testing::random_matrix(n, n, 6.0, 35);
  const CscMat expected = reference_multiply<PlusTimes>(a, a);

  vmpi::run(p, [&](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);

    // First find the unconstrained memory need, then offer a fraction.
    SymbolicResult unlimited = symbolic3d(grid, da.local, db.local, 0);
    const Bytes inputs_per_rank =
        static_cast<Bytes>(unlimited.max_nnz_a + unlimited.max_nnz_b) *
        kBytesPerNonzero;
    const Bytes output_per_rank =
        static_cast<Bytes>(unlimited.max_nnz_c) * kBytesPerNonzero;
    // Budget: inputs + a third of the unmerged output per rank -> needs >= 3
    // batches.
    const Bytes budget =
        static_cast<Bytes>(world.size()) * (inputs_per_rank + output_per_rank / 3);

    BatchedResult result = batched_summa3d<PlusTimes>(grid, da, db, budget);
    EXPECT_GE(result.batches, 3);
    testing::expect_mat_near(gather_dist(grid, result.c), expected, 1e-9);
  });
}

TEST(BatchedSymbolic, ImpossibleBudgetThrowsMemoryError) {
  const int p = 4;
  const Index n = 24;
  const CscMat a = testing::random_matrix(n, n, 4.0, 36);
  EXPECT_THROW(vmpi::run(p,
                         [&](vmpi::Comm& world) {
                           Grid3D grid(world, 1);
                           const DistMat3D da = distribute_a_style(grid, a);
                           const DistMat3D db = distribute_b_style(grid, a);
                           // 10 bytes per rank: inputs alone cannot fit.
                           batched_summa3d<PlusTimes>(grid, da, db,
                                                      /*total_memory=*/40);
                         }),
               MemoryError);
}

TEST(BatchedRectangular, AatViaExplicitTranspose) {
  // The BELLA/PASTIS pattern: tall-thin A times its transpose.
  const Index m = 18, k = 40;
  const CscMat a = testing::random_matrix(m, k, 2.0, 37);
  const CscMat at = a.transpose();
  const CscMat expected = reference_multiply<PlusTimes>(a, at);
  vmpi::run(8, [&](vmpi::Comm& world) {
    Grid3D grid(world, 2);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, at);
    SummaOptions opts;
    opts.force_batches = 3;
    BatchedResult result = batched_summa3d<PlusTimes>(grid, da, db, 0, opts);
    testing::expect_mat_near(gather_dist(grid, result.c), expected, 1e-9);
  });
}

class RowwiseBatched : public ::testing::TestWithParam<BatchedCase> {};

TEST_P(RowwiseBatched, MatchesReference) {
  const auto [p, l, batches, n, density] = GetParam();
  const CscMat a = testing::random_matrix(n, n, density, 131);
  const CscMat b = testing::random_matrix(n, n, density, 132);
  const CscMat expected = reference_multiply<PlusTimes>(a, b);
  vmpi::run(p, [&, l = l, batches = batches](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, b);
    SummaOptions opts;
    opts.force_batches = batches;
    BatchedResult result =
        batched_summa3d_rowwise<PlusTimes>(grid, da, db, 0, opts);
    EXPECT_EQ(result.c.rows.start, a_style_row_range(grid, n).start);
    EXPECT_EQ(result.c.cols.count, a_style_col_range(grid, n).count);
    testing::expect_mat_near(gather_dist(grid, result.c), expected, 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RowwiseBatched,
    ::testing::Values(BatchedCase{1, 1, 3, 17, 3.0},
                      BatchedCase{4, 1, 2, 20, 3.0},
                      BatchedCase{8, 2, 4, 26, 3.0},
                      BatchedCase{16, 4, 5, 31, 3.0},
                      BatchedCase{12, 3, 6, 29, 3.5},
                      // more batches than per-part rows
                      BatchedCase{8, 2, 16, 9, 2.0}));

TEST(RowwiseBatched, CallbackPiecesAreRowBlocks) {
  const int p = 8, l = 2;
  const Index n = 24, batches = 3;
  const CscMat a = testing::random_matrix(n, n, 3.0, 133);
  const CscMat expected = reference_multiply<PlusTimes>(a, a);
  std::mutex mutex;
  TripleMat assembled(n, n);
  vmpi::run(p, [&](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    SummaOptions opts;
    opts.force_batches = batches;
    batched_summa3d_rowwise<PlusTimes>(
        grid, da, db, 0, opts,
        [&](CscMat&& piece, const BatchInfo& info) {
          EXPECT_EQ(piece.nrows(), info.global_rows.count);
          std::lock_guard<std::mutex> lock(mutex);
          for (Index j = 0; j < piece.ncols(); ++j) {
            const auto rows = piece.col_rowids(j);
            const auto vals = piece.col_vals(j);
            for (std::size_t k = 0; k < rows.size(); ++k)
              assembled.push_back(rows[k] + info.global_rows.start,
                                  j + info.global_cols.start, vals[k]);
          }
        },
        /*keep_output=*/false);
  });
  CscMat full = CscMat::from_triples(std::move(assembled));
  EXPECT_EQ(full.nnz(), expected.nnz()) << "row pieces overlapped";
  testing::expect_mat_near(full, expected, 1e-9);
}

// Adaptive re-batching (the graceful-degradation protocol): when the
// enforced budget is below what Eq. 2's estimate assumed, the run must
// split batches at the overrun consensus and still produce output
// bit-identical to an unconstrained run (part_low nesting).
TEST(AdaptiveRebatch, SplitsAndMatchesUnconstrainedBitExact) {
  const int p = 8, l = 2;
  const Index n = 32, batches = 2;
  const CscMat a = testing::random_matrix(n, n, 5.0, 39);
  const CscMat b = testing::random_matrix(n, n, 5.0, 40);
  const CscMat expected = reference_multiply<PlusTimes>(a, b);

  // Pass 1 (unconstrained): record each rank's actual peak and the exact
  // streamed output at the forced granularity.
  std::vector<Bytes> peak(static_cast<std::size_t>(p), 0);
  std::vector<Bytes> inputs(static_cast<std::size_t>(p), 0);
  std::mutex mutex;
  TripleMat base_triples(n, n);
  auto assemble = [&](TripleMat& into) {
    return [&](CscMat&& piece, const BatchInfo& info) {
      std::lock_guard<std::mutex> lock(mutex);
      for (Index j = 0; j < piece.ncols(); ++j) {
        const auto rows = piece.col_rowids(j);
        const auto vals = piece.col_vals(j);
        for (std::size_t k = 0; k < rows.size(); ++k)
          into.push_back(rows[k] + info.global_rows.start,
                         j + info.global_cols.start, vals[k]);
      }
    };
  };
  vmpi::run(p, [&](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, b);
    MemoryTracker tracker(0);  // unlimited: just measure
    SummaOptions opts;
    opts.force_batches = batches;
    opts.memory = &tracker;
    BatchedResult r =
        batched_summa3d<PlusTimes>(grid, da, db, 0, opts,
                                   assemble(base_triples),
                                   /*keep_output=*/false);
    EXPECT_EQ(r.rebatch_events, 0);
    EXPECT_EQ(r.final_batches, batches);
    const auto rank = static_cast<std::size_t>(world.rank());
    peak[rank] = tracker.peak();
    inputs[rank] =
        static_cast<Bytes>(da.local.nnz() + db.local.nnz()) * kBytesPerNonzero;
  });
  const CscMat base = CscMat::from_triples(std::move(base_triples));
  testing::expect_mat_near(base, expected, 1e-9);

  // Pass 2: give each rank a budget strictly between its steady-state
  // (inputs) and its unconstrained peak, so the forced granularity
  // overruns but a finer one fits. The run must recover by splitting.
  TripleMat adaptive_triples(n, n);
  Index rebatch_events = -1, final_batches = -1;
  auto result = vmpi::run(p, [&](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, b);
    const auto rank = static_cast<std::size_t>(world.rank());
    MemoryTracker tracker(inputs[rank] +
                          (peak[rank] - inputs[rank]) * 3 / 5);
    SummaOptions opts;
    opts.force_batches = batches;
    opts.memory = &tracker;
    BatchedResult r =
        batched_summa3d<PlusTimes>(grid, da, db, 0, opts,
                                   assemble(adaptive_triples),
                                   /*keep_output=*/false);
    if (world.rank() == 0) {
      rebatch_events = r.rebatch_events;
      final_batches = r.final_batches;
    }
  });
  EXPECT_GE(rebatch_events, 1);
  EXPECT_GT(final_batches, batches);
  EXPECT_GE(result.recorders.at(0).counters().at("summa.rebatch_events"), 1);

  // Bit-identical to the unconstrained run: identical structure AND values
  // (tolerance 0) — the per-column summation order never changed.
  const CscMat adaptive = CscMat::from_triples(std::move(adaptive_triples));
  testing::expect_mat_near(adaptive, base, 0.0);
}

TEST(AdaptiveRebatch, ExhaustionIsClassifiedAsMemoryBudget) {
  // A budget that admits the inputs but nothing else: every granularity
  // down to one column per block overruns, so the protocol must give up
  // with a MemoryError — classified, never a hang.
  const int p = 4, l = 1;
  const Index n = 16;
  const CscMat a = testing::random_matrix(n, n, 4.0, 41);
  vmpi::RunOptions run_opts;
  run_opts.capture_failure = true;
  auto result = vmpi::run(
      p,
      [&](vmpi::Comm& world) {
        Grid3D grid(world, l);
        const DistMat3D da = distribute_a_style(grid, a);
        const DistMat3D db = distribute_b_style(grid, a);
        MemoryTracker tracker(
            static_cast<Bytes>(da.local.nnz() + db.local.nnz()) *
                kBytesPerNonzero +
            1);
        SummaOptions opts;
        opts.force_batches = 1;
        opts.memory = &tracker;
        batched_summa3d<PlusTimes>(grid, da, db, 0, opts, nullptr,
                                   /*keep_output=*/false);
      },
      run_opts);
  ASSERT_TRUE(result.failed());
  EXPECT_EQ(result.failure->kind, "memory_budget");
}

TEST(AdaptiveRebatch, OptOutThrowsOnFirstOverrun) {
  // adaptive_rebatch=false restores the old contract: the first over-budget
  // allocation throws MemoryError immediately.
  const int p = 4, l = 1;
  const Index n = 16;
  const CscMat a = testing::random_matrix(n, n, 4.0, 42);
  EXPECT_THROW(
      vmpi::run(p,
                [&](vmpi::Comm& world) {
                  Grid3D grid(world, l);
                  const DistMat3D da = distribute_a_style(grid, a);
                  const DistMat3D db = distribute_b_style(grid, a);
                  MemoryTracker tracker(
                      static_cast<Bytes>(da.local.nnz() + db.local.nnz()) *
                          kBytesPerNonzero +
                      1);
                  SummaOptions opts;
                  opts.force_batches = 1;
                  opts.memory = &tracker;
                  opts.adaptive_rebatch = false;
                  batched_summa3d<PlusTimes>(grid, da, db, 0, opts, nullptr,
                                             /*keep_output=*/false);
                }),
      MemoryError);
}

TEST(BatchedMemoryTracking, PeakStaysWithinBudgetWhenStreaming) {
  const int p = 8, l = 2;
  const Index n = 40;
  const CscMat a = testing::random_matrix(n, n, 5.0, 38);
  vmpi::run(p, [&](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    SymbolicResult unlimited = symbolic3d(grid, da.local, db.local, 0);
    const Bytes per_rank =
        static_cast<Bytes>(unlimited.max_nnz_a + unlimited.max_nnz_b) *
            kBytesPerNonzero +
        static_cast<Bytes>(unlimited.max_nnz_c) * kBytesPerNonzero / 2;
    const Bytes budget = static_cast<Bytes>(world.size()) * per_rank;

    // Enforce the budget with a tracker; streaming mode (keep_output=false)
    // must not exceed it.
    MemoryTracker tracker(per_rank + per_rank / 2);  // slack for batch copies
    SummaOptions opts;
    opts.memory = &tracker;
    batched_summa3d<PlusTimes>(
        grid, da, db, budget, opts, [](CscMat&&, const BatchInfo&) {},
        /*keep_output=*/false);
    EXPECT_LE(tracker.peak(), tracker.budget());
  });
}

}  // namespace
}  // namespace casp
