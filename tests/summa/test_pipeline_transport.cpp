// Pipelined vs. blocking SUMMA broadcasts: the prefetch schedule must
// change wall-clock only — results bit-equal and the per-phase traffic
// ledger (messages and bytes) identical, so the Table II accounting pinned
// by test_traffic_formulas is preserved by the transport rework.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "grid/dist.hpp"
#include "kernels/reference.hpp"
#include "summa/batched.hpp"
#include "summa/summa3d.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

struct GridCase {
  int p;
  int l;
};

class PipelineTransport : public ::testing::TestWithParam<GridCase> {};

vmpi::RunResult run_summa(const CscMat& a, const CscMat& b, int p, int l,
                          bool pipeline, CscMat* out = nullptr) {
  return vmpi::run(p, [&, l, pipeline](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, b);
    SummaOptions opts;
    opts.pipeline = pipeline;
    DistMat3D dc;
    dc.global_rows = a.nrows();
    dc.global_cols = b.ncols();
    dc.rows = a_style_row_range(grid, a.nrows());
    dc.cols = a_style_col_range(grid, b.ncols());
    dc.local = summa3d<PlusTimes>(grid, da.local, db.local, opts);
    CscMat gathered = gather_dist(grid, dc);
    if (out != nullptr && world.rank() == 0) *out = std::move(gathered);
  });
}

TEST_P(PipelineTransport, PipelinedMatchesBlockingAndReference) {
  const auto [p, l] = GetParam();
  const Index n = 24;
  const CscMat a = testing::random_matrix(n, n, 3.5, 310);
  const CscMat b = testing::random_matrix(n, n, 3.5, 311);
  const CscMat expected = reference_multiply<PlusTimes>(a, b);

  CscMat with_pipeline;
  CscMat without_pipeline;
  run_summa(a, b, p, l, /*pipeline=*/true, &with_pipeline);
  run_summa(a, b, p, l, /*pipeline=*/false, &without_pipeline);

  testing::expect_mat_near(with_pipeline, expected, 1e-9);
  testing::expect_mat_near(without_pipeline, expected, 1e-9);
  testing::expect_mat_near(with_pipeline, without_pipeline, 0.0);
}

TEST_P(PipelineTransport, PerPhaseTrafficIsBitIdenticalEitherMode) {
  const auto [p, l] = GetParam();
  const Index n = 32;
  const CscMat a = testing::random_matrix(n, n, 4.0, 312);
  const CscMat b = testing::random_matrix(n, n, 4.0, 313);

  const auto on = run_summa(a, b, p, l, /*pipeline=*/true).traffic_summary();
  const auto off =
      run_summa(a, b, p, l, /*pipeline=*/false).traffic_summary();

  auto expect_same = [](const std::map<std::string, vmpi::PhaseTraffic>& x,
                        const std::map<std::string, vmpi::PhaseTraffic>& y) {
    ASSERT_EQ(x.size(), y.size());
    for (const auto& [phase, t] : x) {
      const auto it = y.find(phase);
      ASSERT_NE(it, y.end()) << "phase " << phase << " missing";
      EXPECT_EQ(t.messages, it->second.messages) << "phase " << phase;
      EXPECT_EQ(t.bytes, it->second.bytes) << "phase " << phase;
    }
  };
  expect_same(on.total_per_phase, off.total_per_phase);
  expect_same(on.max_per_phase, off.max_per_phase);
}

TEST_P(PipelineTransport, PipelinedBcastCountsStillMatchTableII) {
  // Regression against the pre-rework accounting: the handle-forwarding
  // nonblocking trees must record exactly the closed-form message count
  // (l * q rows/cols, q trees each, q-1 sends per tree).
  const auto [p, l] = GetParam();
  const int q = static_cast<int>(std::sqrt(p / l));
  const Index n = 32;
  const CscMat a = testing::random_matrix(n, n, 4.0, 314);

  const auto traffic =
      run_summa(a, a, p, l, /*pipeline=*/true).traffic_summary();
  auto messages = [&](const char* s) -> std::uint64_t {
    const auto it = traffic.total_per_phase.find(s);
    return it == traffic.total_per_phase.end() ? 0 : it->second.messages;
  };
  const std::uint64_t bcast_msgs = static_cast<std::uint64_t>(l) * q * q *
                                   static_cast<std::uint64_t>(q - 1);
  EXPECT_EQ(messages(steps::kABcast), bcast_msgs);
  EXPECT_EQ(messages(steps::kBBcast), bcast_msgs);
}

INSTANTIATE_TEST_SUITE_P(Grids, PipelineTransport,
                         ::testing::Values(GridCase{1, 1}, GridCase{2, 2},
                                           GridCase{4, 1}, GridCase{4, 4},
                                           GridCase{8, 2}));

TEST(PipelineTransport, BatchedPipelineTogglePreservesResultAndTraffic) {
  // Whole batched pipeline (symbolic + batched broadcasts) under both
  // schedules: same math, same ledger.
  const Index n = 30;
  const CscMat a = testing::random_matrix(n, n, 3.5, 315);
  const CscMat expected = reference_multiply<PlusTimes>(a, a);
  std::map<std::string, vmpi::PhaseTraffic> ledgers[2];
  int idx = 0;
  for (const bool pipeline : {true, false}) {
    auto result = vmpi::run(16, [&, pipeline](vmpi::Comm& world) {
      Grid3D grid(world, 4);
      const DistMat3D da = distribute_a_style(grid, a);
      const DistMat3D db = distribute_b_style(grid, a);
      SummaOptions opts;
      opts.pipeline = pipeline;
      opts.force_batches = 3;
      const BatchedResult r = batched_summa3d<PlusTimes>(grid, da, db, 0, opts);
      testing::expect_mat_near(gather_dist(grid, r.c), expected, 1e-9);
    });
    ledgers[idx++] = result.traffic_summary().total_per_phase;
  }
  ASSERT_EQ(ledgers[0].size(), ledgers[1].size());
  for (const auto& [phase, t] : ledgers[0]) {
    EXPECT_EQ(t.messages, ledgers[1][phase].messages) << "phase " << phase;
    EXPECT_EQ(t.bytes, ledgers[1][phase].bytes) << "phase " << phase;
  }
}

}  // namespace
}  // namespace casp
