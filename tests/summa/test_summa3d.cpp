// SUMMA3D (Algorithm 2) correctness across (p, l) shapes: the result must
// land A-style distributed and equal the serial product.
#include <gtest/gtest.h>

#include "common/math.hpp"
#include "grid/dist.hpp"
#include "kernels/reference.hpp"
#include "sparse/serialize.hpp"
#include "summa/summa3d.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

struct Summa3DCase {
  int p;
  int l;
  Index n;
  double density;
};

class Summa3DCorrectness : public ::testing::TestWithParam<Summa3DCase> {};

TEST_P(Summa3DCorrectness, MatchesSerialReference) {
  const auto [p, l, n, density] = GetParam();
  const CscMat a = testing::random_matrix(n, n, density, 21);
  const CscMat b = testing::random_matrix(n, n, density, 22);
  const CscMat expected = reference_multiply<PlusTimes>(a, b);

  vmpi::run(p, [&, l = l](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, b);
    CscMat local_c = summa3d<PlusTimes>(grid, da.local, db.local, {});

    // The merged fiber piece is the A-style block of C.
    DistMat3D dc;
    dc.local = std::move(local_c);
    dc.global_rows = a.nrows();
    dc.global_cols = b.ncols();
    dc.rows = a_style_row_range(grid, a.nrows());
    dc.cols = a_style_col_range(grid, b.ncols());
    EXPECT_EQ(dc.local.nrows(), dc.rows.count);
    EXPECT_EQ(dc.local.ncols(), dc.cols.count);
    testing::expect_mat_near(gather_dist(grid, dc), expected, 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Summa3DCorrectness,
    ::testing::Values(Summa3DCase{1, 1, 14, 3.0}, Summa3DCase{2, 2, 15, 3.0},
                      Summa3DCase{4, 4, 18, 3.0}, Summa3DCase{8, 2, 25, 3.0},
                      Summa3DCase{16, 4, 33, 3.0}, Summa3DCase{16, 16, 19, 2.0},
                      Summa3DCase{12, 3, 27, 4.0}, Summa3DCase{18, 2, 35, 3.0},
                      // l > n/q slices: many empty layer slices
                      Summa3DCase{16, 4, 7, 2.0}));

TEST(Summa3DFinalSort, OutputColumnsAreSorted) {
  const Index n = 24;
  const CscMat a = testing::random_matrix(n, n, 4.0, 23);
  vmpi::run(8, [&](vmpi::Comm& world) {
    Grid3D grid(world, 2);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    SummaOptions opts;  // defaults: unsorted kernels + one final sort
    CscMat local_c = summa3d<PlusTimes>(grid, da.local, db.local, opts);
    EXPECT_TRUE(local_c.columns_sorted());
  });
}

TEST(Summa3DSemiring, OrAndReachability) {
  const Index n = 20;
  CscMat a = testing::random_matrix(n, n, 3.0, 24);
  for (Value& v : a.vals_mutable()) v = 1.0;
  const CscMat expected = reference_multiply<OrAnd>(a, a);
  vmpi::run(4, [&](vmpi::Comm& world) {
    Grid3D grid(world, 4);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    CscMat local_c = summa3d<OrAnd>(grid, da.local, db.local, {});
    DistMat3D dc{std::move(local_c), n, n, /*global_nnz=*/0,
                 a_style_row_range(grid, n), a_style_col_range(grid, n)};
    testing::expect_mat_near(gather_dist(grid, dc), expected);
  });
}

TEST(Summa3DZeroCopy, FiberExchangeAndMergeNeverDeepCopy) {
  // The ROADMAP claim behind the refcounted-payload transport: the fiber
  // stage — pack (wrap), AllToAll-Fiber (forwarded handles), Merge-Fiber
  // (CscViews borrowing the wire buffers) — performs zero Payload deep
  // copies. The job below runs *only* that stage (matrices generated
  // locally, no barriers or scalar collectives, whose 1–8 byte transport
  // copies are by design), so Payload::deep_copies() must not move at all.
  // Any regression — a copy_of on the exchange path, a release_or_copy
  // deserializing a received piece — fails this test.
  const int p = 4;
  const Index n = 32;

  const std::uint64_t before = Payload::deep_copies();
  vmpi::run(p, [&](vmpi::Comm& world) {
    // My slice of an unmerged D: p column blocks, one per destination.
    const CscMat d = testing::random_matrix(
        n, n, 3.0, 50 + static_cast<std::uint64_t>(world.rank()));

    std::vector<Payload> outgoing(static_cast<std::size_t>(p));
    for (int m = 0; m < p; ++m) {
      const Index lo = part_low(m, p, d.ncols());
      const Index hi = part_low(m + 1, p, d.ncols());
      outgoing[static_cast<std::size_t>(m)] =
          pack_csc_payload(d.slice_cols(lo, hi));
    }
    std::vector<Payload> incoming =
        world.alltoall_payload(std::move(outgoing));

    std::vector<CscView> pieces;
    pieces.reserve(incoming.size());
    for (const Payload& buf : incoming) pieces.push_back(unpack_csc_view(buf));
    const CscMat merged =
        merge_matrices<PlusTimes>(csc_refs(pieces), MergeKind::kUnsortedHash, 1);

    // Sanity: the merge really consumed every rank's piece.
    Index total = 0;
    for (const CscView& v : pieces) total += v.nnz();
    EXPECT_GT(total, 0);
    EXPECT_LE(merged.nnz(), total);
    EXPECT_GT(merged.nnz(), 0);
  });
  EXPECT_EQ(Payload::deep_copies(), before)
      << "the fiber exchange / Merge-Fiber path deep-copied a payload";
}

TEST(Summa3DTraffic, FiberTrafficOnlyWhenLayered) {
  const Index n = 24;
  const CscMat a = testing::random_matrix(n, n, 3.0, 25);
  auto run_with_layers = [&](int p, int l) {
    return vmpi::run(p, [&, l](vmpi::Comm& world) {
      Grid3D grid(world, l);
      const DistMat3D da = distribute_a_style(grid, a);
      const DistMat3D db = distribute_b_style(grid, a);
      (void)summa3d<PlusTimes>(grid, da.local, db.local, {});
    });
  };
  const auto flat = run_with_layers(4, 1).traffic_summary();
  const auto layered = run_with_layers(4, 4).traffic_summary();
  // l=1: the fiber all-to-all moves nothing between ranks (self copy only).
  const auto it = flat.total_per_phase.find(steps::kAllToAllFiber);
  if (it != flat.total_per_phase.end()) {
    EXPECT_EQ(it->second.bytes, 0u);
  }
  EXPECT_GT(layered.total_per_phase.at(steps::kAllToAllFiber).bytes, 0u);
}

}  // namespace
}  // namespace casp
