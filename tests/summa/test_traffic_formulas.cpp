// Regression tests pinning the instrumented communication against the
// Table II closed forms — the assertion-based sibling of
// bench_table2_comm_complexity.
#include <gtest/gtest.h>

#include <cmath>

#include "grid/dist.hpp"
#include "summa/batched.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

struct TrafficCase {
  int p;
  int l;
  Index b;
};

class TrafficFormulas : public ::testing::TestWithParam<TrafficCase> {};

TEST_P(TrafficFormulas, MessageCountsMatchClosedForms) {
  const auto [p, l, b] = GetParam();
  const int q = static_cast<int>(std::sqrt(p / l));
  const Index n = 40;
  const CscMat a = testing::random_matrix(n, n, 3.0, 170);

  auto result = vmpi::run(p, [&, l = l, b = b](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    SummaOptions opts;
    opts.force_batches = b;
    (void)batched_summa3d<PlusTimes>(grid, da, db, 0, opts);
  });
  const auto traffic = result.traffic_summary().total_per_phase;
  auto messages = [&](const char* s) -> std::uint64_t {
    const auto it = traffic.find(s);
    return it == traffic.end() ? 0 : it->second.messages;
  };

  // Binomial-tree broadcasts: q-1 sends per tree; b*q trees per process
  // row; l*q rows (and symmetrically columns).
  const std::uint64_t bcast_msgs = static_cast<std::uint64_t>(l) * q * b * q *
                                   static_cast<std::uint64_t>(q - 1);
  EXPECT_EQ(messages(steps::kABcast), bcast_msgs);
  EXPECT_EQ(messages(steps::kBBcast), bcast_msgs);

  // Pairwise all-to-all: l-1 sends per rank per batch, q*q*l ranks.
  const std::uint64_t fiber_msgs = static_cast<std::uint64_t>(b) * q * q * l *
                                   static_cast<std::uint64_t>(l - 1);
  EXPECT_EQ(messages(steps::kAllToAllFiber), fiber_msgs);
}

TEST_P(TrafficFormulas, ABcastBytesScaleLinearlyWithBatches) {
  const auto [p, l, b] = GetParam();
  if (p / l < 4) GTEST_SKIP();  // need q >= 2 for nonzero broadcasts
  const Index n = 48;
  const CscMat a = testing::random_matrix(n, n, 3.0, 171);
  auto volume_at = [&](Index batches) {
    auto result = vmpi::run(p, [&, l = l, batches](vmpi::Comm& world) {
      Grid3D grid(world, l);
      const DistMat3D da = distribute_a_style(grid, a);
      const DistMat3D db = distribute_b_style(grid, a);
      SummaOptions opts;
      opts.force_batches = batches;
      (void)batched_summa3d<PlusTimes>(grid, da, db, 0, opts);
    });
    return result.traffic_summary().total_per_phase.at(steps::kABcast).bytes;
  };
  const Bytes v1 = volume_at(1);
  const Bytes v4 = volume_at(4);
  // Payload quadruples; per-batch colptr overhead makes it slightly more.
  EXPECT_GE(v4, 3 * v1);
  EXPECT_LE(v4, 5 * v1);
}

INSTANTIATE_TEST_SUITE_P(Grids, TrafficFormulas,
                         ::testing::Values(TrafficCase{4, 1, 1},
                                           TrafficCase{16, 4, 2},
                                           TrafficCase{16, 1, 3},
                                           TrafficCase{36, 4, 2},
                                           TrafficCase{16, 16, 2}));

TEST(TrafficFormulas, BBcastBytesIndependentOfBatches) {
  const int p = 16, l = 4;
  const Index n = 48;
  const CscMat a = testing::random_matrix(n, n, 3.0, 172);
  Bytes volumes[2];
  int idx = 0;
  for (Index b : {Index{1}, Index{6}}) {
    auto result = vmpi::run(p, [&, b](vmpi::Comm& world) {
      Grid3D grid(world, l);
      const DistMat3D da = distribute_a_style(grid, a);
      const DistMat3D db = distribute_b_style(grid, a);
      SummaOptions opts;
      opts.force_batches = b;
      (void)batched_summa3d<PlusTimes>(grid, da, db, 0, opts);
    });
    volumes[idx++] =
        result.traffic_summary().total_per_phase.at(steps::kBBcast).bytes;
  }
  // Same payload split into 6 slices: only headers/colptr framing differ.
  EXPECT_LT(static_cast<double>(volumes[1]),
            1.6 * static_cast<double>(volumes[0]));
}

}  // namespace
}  // namespace casp
