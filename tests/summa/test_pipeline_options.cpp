// The full distributed pipeline under every kernel configuration and
// semiring: whatever the options, the math must not change.
#include <gtest/gtest.h>

#include "grid/dist.hpp"
#include "kernels/reference.hpp"
#include "summa/batched.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

struct OptionCase {
  SpGemmKind local_kind;
  MergeKind merge_kind;
};

class PipelineOptions : public ::testing::TestWithParam<OptionCase> {};

TEST_P(PipelineOptions, BatchedResultIndependentOfKernels) {
  const auto [local_kind, merge_kind] = GetParam();
  const Index n = 26;
  const CscMat a = testing::random_matrix(n, n, 3.5, 150);
  const CscMat b = testing::random_matrix(n, n, 3.5, 151);
  const CscMat expected = reference_multiply<PlusTimes>(a, b);
  vmpi::run(8, [&, local_kind = local_kind,
                merge_kind = merge_kind](vmpi::Comm& world) {
    Grid3D grid(world, 2);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, b);
    SummaOptions opts;
    opts.local_kind = local_kind;
    opts.merge_kind = merge_kind;
    opts.force_batches = 3;
    const BatchedResult r = batched_summa3d<PlusTimes>(grid, da, db, 0, opts);
    testing::expect_mat_near(gather_dist(grid, r.c), expected, 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(
    KernelMatrix, PipelineOptions,
    ::testing::Values(
        OptionCase{SpGemmKind::kUnsortedHash, MergeKind::kUnsortedHash},
        OptionCase{SpGemmKind::kUnsortedHash, MergeKind::kSortedHeap},
        OptionCase{SpGemmKind::kSortedHash, MergeKind::kUnsortedHash},
        OptionCase{SpGemmKind::kSortedHash, MergeKind::kSortedHeap},
        OptionCase{SpGemmKind::kHeap, MergeKind::kSortedHeap},
        OptionCase{SpGemmKind::kHybrid, MergeKind::kSortedHeap},
        OptionCase{SpGemmKind::kSpa, MergeKind::kUnsortedHash}));

TEST(PipelineOptions, UnsortedFinalOutputWhenSortDisabled) {
  const Index n = 30;
  const CscMat a = testing::random_matrix(n, n, 4.0, 152);
  const CscMat expected = reference_multiply<PlusTimes>(a, a);
  vmpi::run(4, [&](vmpi::Comm& world) {
    Grid3D grid(world, 4);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    SummaOptions opts;
    opts.sort_final = false;  // caller wants raw unsorted output
    BatchedResult r = batched_summa3d<PlusTimes>(grid, da, db, 0, opts);
    // Values still correct after an explicit sort.
    testing::expect_mat_near(gather_dist(grid, r.c), expected, 1e-9);
  });
}

TEST(PipelineOptions, MultithreadedRanksMatchSingleThreaded) {
  const Index n = 32;
  const CscMat a = testing::random_matrix(n, n, 4.0, 153);
  const CscMat expected = reference_multiply<PlusTimes>(a, a);
  vmpi::run(4, [&](vmpi::Comm& world) {
    Grid3D grid(world, 1);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    SummaOptions opts;
    opts.threads = 3;  // OpenMP inside each rank
    const BatchedResult r = batched_summa3d<PlusTimes>(grid, da, db, 0, opts);
    testing::expect_mat_near(gather_dist(grid, r.c), expected, 1e-9);
  });
}

class BatchedSemirings3D : public ::testing::TestWithParam<int> {};

TEST_P(BatchedSemirings3D, MinPlusThroughTheWholePipeline) {
  const Index n = 22;
  const CscMat a = testing::random_matrix(n, n, 3.0, 154);
  const CscMat expected = reference_multiply<MinPlus>(a, a);
  const int l = GetParam();
  vmpi::run(16, [&](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    SummaOptions opts;
    opts.force_batches = 2;
    const BatchedResult r = batched_summa3d<MinPlus>(grid, da, db, 0, opts);
    testing::expect_mat_near(gather_dist(grid, r.c), expected, 1e-12);
  });
}

TEST_P(BatchedSemirings3D, MaxMinThroughTheWholePipeline) {
  const Index n = 22;
  const CscMat a = testing::random_matrix(n, n, 3.0, 155);
  const CscMat expected = reference_multiply<MaxMin>(a, a);
  const int l = GetParam();
  vmpi::run(16, [&](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    SummaOptions opts;
    opts.force_batches = 3;
    const BatchedResult r = batched_summa3d<MaxMin>(grid, da, db, 0, opts);
    testing::expect_mat_near(gather_dist(grid, r.c), expected, 1e-12);
  });
}

TEST_P(BatchedSemirings3D, OrAndThroughTheWholePipeline) {
  const Index n = 22;
  CscMat a = testing::random_matrix(n, n, 3.0, 156);
  for (Value& v : a.vals_mutable()) v = 1.0;
  const CscMat expected = reference_multiply<OrAnd>(a, a);
  const int l = GetParam();
  vmpi::run(16, [&](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    const BatchedResult r = batched_summa3d<OrAnd>(grid, da, db, 0, {});
    testing::expect_mat_near(gather_dist(grid, r.c), expected, 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(Layers, BatchedSemirings3D, ::testing::Values(1, 4));

}  // namespace
}  // namespace casp
