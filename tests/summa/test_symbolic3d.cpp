// Symbolic3D (Algorithm 3): the per-process unmerged counts must match
// what SUMMA2D actually materializes; the chosen b must be feasible and
// minimal under Eq. 2's accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "grid/dist.hpp"
#include "kernels/reference.hpp"
#include "sparse/stats.hpp"
#include "summa/batched.hpp"
#include "summa/summa2d.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

TEST(Symbolic3D, TotalFlopsMatchSerialCount) {
  const Index n = 28;
  const CscMat a = testing::random_matrix(n, n, 3.0, 41);
  const CscMat b = testing::random_matrix(n, n, 3.0, 42);
  const Index serial_flops = multiply_flops(a, b);
  for (const auto& [p, l] : std::vector<std::pair<int, int>>{
           {1, 1}, {4, 1}, {4, 4}, {8, 2}, {16, 4}}) {
    vmpi::run(p, [&, l = l](vmpi::Comm& world) {
      Grid3D grid(world, l);
      const DistMat3D da = distribute_a_style(grid, a);
      const DistMat3D db = distribute_b_style(grid, b);
      const SymbolicResult sym = symbolic3d(grid, da.local, db.local, 0);
      EXPECT_EQ(sym.total_flops, serial_flops)
          << "p=" << p << " l=" << l;
      EXPECT_EQ(sym.batches, 1);
    });
  }
}

TEST(Symbolic3D, UnmergedCountMatchesActualStageOutputs) {
  const Index n = 26;
  const CscMat a = testing::random_matrix(n, n, 4.0, 43);
  const CscMat b = testing::random_matrix(n, n, 4.0, 44);
  vmpi::run(8, [&](vmpi::Comm& world) {
    Grid3D grid(world, 2);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, b);
    const SymbolicResult sym = symbolic3d(grid, da.local, db.local, 0);

    // Reproduce what summa2d stores: per-stage merged products. The memory
    // tracker's peak includes exactly those charges.
    MemoryTracker tracker(0);
    SummaOptions opts;
    opts.memory = &tracker;
    (void)summa2d<PlusTimes>(grid, da.local, db.local, opts);
    const Index my_unmerged =
        static_cast<Index>(tracker.peak() / kBytesPerNonzero);
    const Index max_unmerged = world.allreduce_max<Index>(my_unmerged);
    EXPECT_EQ(max_unmerged, sym.max_nnz_c);
  });
}

TEST(Symbolic3D, UnmergedAtLeastFinalAndAtMostFlops) {
  // Eq. 1: flops >= sum_k nnz(D^(k)) >= nnz(C).
  const Index n = 30;
  const CscMat a = testing::random_matrix(n, n, 5.0, 45);
  const CscMat c = reference_multiply<PlusTimes>(a, a);
  const Index flops = multiply_flops(a, a);
  vmpi::run(16, [&](vmpi::Comm& world) {
    Grid3D grid(world, 4);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    const SymbolicResult sym = symbolic3d(grid, da.local, db.local, 0);
    EXPECT_GE(sym.total_unmerged_nnz, c.nnz());
    EXPECT_LE(sym.total_unmerged_nnz, flops);
  });
}

TEST(Symbolic3D, BatchCountFollowsEq2) {
  const Index n = 36;
  const CscMat a = testing::random_matrix(n, n, 5.0, 46);
  vmpi::run(8, [&](vmpi::Comm& world) {
    Grid3D grid(world, 2);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    const SymbolicResult base = symbolic3d(grid, da.local, db.local, 0);

    const double r = static_cast<double>(kBytesPerNonzero);
    const double inputs =
        r * static_cast<double>(base.max_nnz_a + base.max_nnz_b);
    // Sweep budgets; recompute expected b with Eq. 2 arithmetic.
    for (double frac : {1.0, 0.5, 0.25, 0.1}) {
      const double per_rank =
          inputs + frac * r * static_cast<double>(base.max_nnz_c);
      const Bytes total =
          static_cast<Bytes>(per_rank * static_cast<double>(world.size()));
      const SymbolicResult sym = symbolic3d(grid, da.local, db.local, total);
      const double denom =
          static_cast<double>(total) / static_cast<double>(world.size()) -
          inputs;
      const Index expected = std::max<Index>(
          1, static_cast<Index>(
                 std::ceil(r * static_cast<double>(base.max_nnz_c) / denom)));
      EXPECT_EQ(sym.batches, expected) << "frac=" << frac;
    }
  });
}

TEST(Symbolic3D, MoreMemoryNeverMoreBatches) {
  const Index n = 32;
  const CscMat a = testing::random_matrix(n, n, 5.0, 47);
  vmpi::run(4, [&](vmpi::Comm& world) {
    Grid3D grid(world, 1);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    const SymbolicResult base = symbolic3d(grid, da.local, db.local, 0);
    const Bytes inputs = static_cast<Bytes>(base.max_nnz_a + base.max_nnz_b) *
                         kBytesPerNonzero;
    Index prev = std::numeric_limits<Index>::max();
    for (Bytes extra = 64; extra <= 16384; extra *= 2) {
      const Bytes total = static_cast<Bytes>(world.size()) * (inputs + extra);
      const SymbolicResult sym = symbolic3d(grid, da.local, db.local, total);
      EXPECT_LE(sym.batches, prev) << "extra=" << extra;
      prev = sym.batches;
    }
  });
}

}  // namespace
}  // namespace casp
