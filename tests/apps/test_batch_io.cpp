#include <gtest/gtest.h>

#include <filesystem>

#include "apps/batch_io.hpp"
#include "grid/dist.hpp"
#include "kernels/reference.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/casp_batch_io_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(BatchIo, StreamedBatchesReloadToTheExactProduct) {
  const std::string dir = fresh_dir("roundtrip");
  const Index n = 26;
  const CscMat a = testing::random_matrix(n, n, 3.0, 140);
  const CscMat expected = reference_multiply<PlusTimes>(a, a);

  vmpi::run(8, [&](vmpi::Comm& world) {
    Grid3D grid(world, 2);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    SummaOptions opts;
    opts.force_batches = 3;
    batched_summa3d<PlusTimes>(grid, da, db, 0, opts,
                               make_disk_batch_writer(dir, world.rank()),
                               /*keep_output=*/false);
  });

  const CscMat loaded = load_batch_directory(dir);
  testing::expect_mat_near(loaded, expected, 1e-9);
}

TEST(BatchIo, RowwiseBatchesAlsoRoundTrip) {
  const std::string dir = fresh_dir("rowwise");
  const Index n = 20;
  const CscMat a = testing::random_matrix(n, n, 3.0, 141);
  const CscMat expected = reference_multiply<PlusTimes>(a, a);
  vmpi::run(4, [&](vmpi::Comm& world) {
    Grid3D grid(world, 1);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    SummaOptions opts;
    opts.force_batches = 4;
    batched_summa3d_rowwise<PlusTimes>(
        grid, da, db, 0, opts, make_disk_batch_writer(dir, world.rank()),
        /*keep_output=*/false);
  });
  testing::expect_mat_near(load_batch_directory(dir), expected, 1e-9);
}

TEST(BatchIo, PreservesEmptyBorderRowsAndCols) {
  // The header carries the global shape even when the last rows/columns of
  // the product are empty.
  const std::string dir = fresh_dir("borders");
  const Index n = 16;
  TripleMat t(n, n);
  t.push_back(0, 0, 2.0);  // product will live entirely in the top-left
  const CscMat a = CscMat::from_triples(std::move(t));
  vmpi::run(4, [&](vmpi::Comm& world) {
    Grid3D grid(world, 1);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    batched_summa3d<PlusTimes>(grid, da, db, 0, {},
                               make_disk_batch_writer(dir, world.rank()),
                               /*keep_output=*/false);
  });
  const CscMat loaded = load_batch_directory(dir);
  EXPECT_EQ(loaded.nrows(), n);
  EXPECT_EQ(loaded.ncols(), n);
  EXPECT_EQ(loaded.nnz(), 1);
  EXPECT_DOUBLE_EQ(loaded.col_vals(0)[0], 4.0);
}

TEST(BatchIo, MissingDirectoryThrows) {
  EXPECT_THROW(load_batch_directory(::testing::TempDir() + "/casp_nonexistent"),
               InvalidArgument);
}

}  // namespace
}  // namespace casp
