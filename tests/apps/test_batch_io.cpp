#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "apps/batch_io.hpp"
#include "grid/dist.hpp"
#include "kernels/reference.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/casp_batch_io_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// A directory holding one hand-written part-0.txt with `content`.
std::string dir_with_part(const std::string& name, const std::string& content) {
  const std::string dir = fresh_dir(name);
  std::filesystem::create_directories(dir);
  std::ofstream out(dir + "/part-0.txt");
  out << content;
  return dir;
}

// The InputError message load_batch_directory raises for `content`.
std::string load_error(const std::string& name, const std::string& content) {
  const std::string dir = dir_with_part(name, content);
  try {
    load_batch_directory(dir);
  } catch (const InputError& e) {
    return e.what();
  }
  ADD_FAILURE() << "corrupt input in " << dir << " loaded without error";
  return {};
}

TEST(BatchIo, StreamedBatchesReloadToTheExactProduct) {
  const std::string dir = fresh_dir("roundtrip");
  const Index n = 26;
  const CscMat a = testing::random_matrix(n, n, 3.0, 140);
  const CscMat expected = reference_multiply<PlusTimes>(a, a);

  vmpi::run(8, [&](vmpi::Comm& world) {
    Grid3D grid(world, 2);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    SummaOptions opts;
    opts.force_batches = 3;
    batched_summa3d<PlusTimes>(grid, da, db, 0, opts,
                               make_disk_batch_writer(dir, world.rank()),
                               /*keep_output=*/false);
  });

  const CscMat loaded = load_batch_directory(dir);
  testing::expect_mat_near(loaded, expected, 1e-9);
}

TEST(BatchIo, RowwiseBatchesAlsoRoundTrip) {
  const std::string dir = fresh_dir("rowwise");
  const Index n = 20;
  const CscMat a = testing::random_matrix(n, n, 3.0, 141);
  const CscMat expected = reference_multiply<PlusTimes>(a, a);
  vmpi::run(4, [&](vmpi::Comm& world) {
    Grid3D grid(world, 1);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    SummaOptions opts;
    opts.force_batches = 4;
    batched_summa3d_rowwise<PlusTimes>(
        grid, da, db, 0, opts, make_disk_batch_writer(dir, world.rank()),
        /*keep_output=*/false);
  });
  testing::expect_mat_near(load_batch_directory(dir), expected, 1e-9);
}

TEST(BatchIo, PreservesEmptyBorderRowsAndCols) {
  // The header carries the global shape even when the last rows/columns of
  // the product are empty.
  const std::string dir = fresh_dir("borders");
  const Index n = 16;
  TripleMat t(n, n);
  t.push_back(0, 0, 2.0);  // product will live entirely in the top-left
  const CscMat a = CscMat::from_triples(std::move(t));
  vmpi::run(4, [&](vmpi::Comm& world) {
    Grid3D grid(world, 1);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    batched_summa3d<PlusTimes>(grid, da, db, 0, {},
                               make_disk_batch_writer(dir, world.rank()),
                               /*keep_output=*/false);
  });
  const CscMat loaded = load_batch_directory(dir);
  EXPECT_EQ(loaded.nrows(), n);
  EXPECT_EQ(loaded.ncols(), n);
  EXPECT_EQ(loaded.nnz(), 1);
  EXPECT_DOUBLE_EQ(loaded.col_vals(0)[0], 4.0);
}

TEST(BatchIo, MissingDirectoryThrows) {
  EXPECT_THROW(load_batch_directory(::testing::TempDir() + "/casp_nonexistent"),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Hardened loader: corrupt, truncated, and hostile inputs become structured
// InputErrors that name the file and line — never a crash, hang, or
// silently wrong matrix.

TEST(BatchIoHardening, TruncatedEntryNamesFileAndLine) {
  const std::string err =
      load_error("truncated", "casp-batch 4 4\n0 1 2.0\n3 2\n");
  EXPECT_NE(err.find("part-0.txt:3"), std::string::npos);
  EXPECT_NE(err.find("corrupt entry"), std::string::npos);
}

TEST(BatchIoHardening, EntryBeforeHeaderIsRejected) {
  const std::string err = load_error("no_header", "0 1 2.0\n");
  EXPECT_NE(err.find("part-0.txt:1"), std::string::npos);
  EXPECT_NE(err.find("before shape header"), std::string::npos);
}

TEST(BatchIoHardening, NegativeHeaderDimensionIsRejected) {
  const std::string err = load_error("neg_dim", "casp-batch -4 4\n");
  EXPECT_NE(err.find("negative dimension"), std::string::npos);
}

TEST(BatchIoHardening, OversizedHeaderDimensionIsRejected) {
  // 2^50 rows would pass a naive parse and overflow downstream index
  // arithmetic; the loader caps dimensions at 2^48.
  const std::string err =
      load_error("huge_dim", "casp-batch 1125899906842624 4\n");
  EXPECT_NE(err.find("oversized dimension"), std::string::npos);
}

TEST(BatchIoHardening, UnparsableHeaderIsRejected) {
  const std::string err = load_error("bad_header", "casp-batch four 4\n");
  EXPECT_NE(err.find("unparsable shape header"), std::string::npos);
}

TEST(BatchIoHardening, TrailingTokensAreRejected) {
  const std::string header_err =
      load_error("trail_header", "casp-batch 4 4 9\n");
  EXPECT_NE(header_err.find("trailing token '9'"), std::string::npos);
  const std::string entry_err =
      load_error("trail_entry", "casp-batch 4 4\n0 1 2.0 junk\n");
  EXPECT_NE(entry_err.find("trailing token 'junk'"), std::string::npos);
}

TEST(BatchIoHardening, OutOfRangeCoordinatesAreRejected) {
  const std::string err =
      load_error("range", "casp-batch 4 4\n0 9 1.0\n");
  EXPECT_NE(err.find("outside the declared 4x4 shape"), std::string::npos);
  const std::string neg =
      load_error("neg_coord", "casp-batch 4 4\n-1 0 1.0\n");
  EXPECT_NE(neg.find("outside the declared"), std::string::npos);
}

TEST(BatchIoHardening, NonFiniteValuesAreRejected) {
  EXPECT_NE(load_error("nan", "casp-batch 4 4\n0 1 nan\n")
                .find("non-finite value"),
            std::string::npos);
  EXPECT_NE(load_error("inf", "casp-batch 4 4\n0 1 inf\n")
                .find("non-finite value"),
            std::string::npos);
}

TEST(BatchIoHardening, PartsDisagreeingOnShapeAreRejected) {
  const std::string dir = dir_with_part("shape_a", "casp-batch 4 4\n");
  {
    std::ofstream out(dir + "/part-1.txt");
    out << "casp-batch 8 8\n";
  }
  EXPECT_THROW(load_batch_directory(dir), InputError);
}

TEST(BatchIoHardening, ClassifiedAsInputErrorInsideAJob) {
  // A corrupt batch directory read inside a virtual job must classify as
  // kind "input_error" in the FailureReport, like every other failure
  // class — not surface as a bare abort.
  const std::string dir =
      dir_with_part("classified", "casp-batch 4 4\n0 1 garbage\n");
  vmpi::RunOptions opts;
  opts.capture_failure = true;
  auto result = vmpi::run(
      2,
      [&](vmpi::Comm& comm) {
        comm.set_phase("Load");
        if (comm.rank() == 0) (void)load_batch_directory(dir);
      },
      opts);
  ASSERT_TRUE(result.failed());
  EXPECT_EQ(result.failure->kind, "input_error");
  EXPECT_EQ(result.failure->rank, 0);
  EXPECT_EQ(result.failure->phase, "Load");
  EXPECT_NE(result.failure->what.find("part-0.txt:2"), std::string::npos);
}

}  // namespace
}  // namespace casp
