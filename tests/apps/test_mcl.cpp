// Markov clustering: recovers planted families, and the distributed
// batched implementation agrees with the serial reference.
#include <gtest/gtest.h>

#include <map>

#include "apps/mcl.hpp"
#include "gen/protein.hpp"
#include "grid/dist.hpp"
#include "summa/symbolic3d.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

/// Adjusted-Rand-free cluster agreement: fraction of vertex pairs on which
/// two labelings agree (same/different cluster).
double pair_agreement(const std::vector<Index>& a, const std::vector<Index>& b) {
  EXPECT_EQ(a.size(), b.size());
  std::uint64_t agree = 0, total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      ++total;
      if ((a[i] == a[j]) == (b[i] == b[j])) ++agree;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(agree) / static_cast<double>(total);
}

CscMat two_cliques_bridgeless(Index k) {
  // Two disjoint k-cliques with self loops: MCL must find exactly 2
  // clusters.
  TripleMat t(2 * k, 2 * k);
  for (Index block = 0; block < 2; ++block) {
    for (Index i = 0; i < k; ++i)
      for (Index j = 0; j < k; ++j)
        t.push_back(block * k + i, block * k + j, 1.0);
  }
  return CscMat::from_triples(std::move(t));
}

TEST(MclColumnOps, NormalizeMakesColumnsStochastic) {
  CscMat m = testing::random_matrix(20, 20, 3.0, 80);
  mcl_normalize_columns(m);
  for (Index j = 0; j < m.ncols(); ++j) {
    const auto vals = m.col_vals(j);
    if (vals.empty()) continue;
    Value sum = 0;
    for (Value v : vals) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(MclColumnOps, InflationSharpensColumns) {
  // After inflation the largest entry's share must grow.
  CscMat m = testing::random_matrix(30, 30, 5.0, 81);
  mcl_normalize_columns(m);
  std::vector<Value> max_before(static_cast<std::size_t>(m.ncols()), 0.0);
  for (Index j = 0; j < m.ncols(); ++j)
    for (Value v : m.col_vals(j))
      max_before[static_cast<std::size_t>(j)] =
          std::max(max_before[static_cast<std::size_t>(j)], v);
  mcl_inflate(m, 2.0);
  for (Index j = 0; j < m.ncols(); ++j) {
    Value mx = 0;
    for (Value v : m.col_vals(j)) mx = std::max(mx, v);
    if (m.col_nnz(j) > 1) {
      EXPECT_GE(mx + 1e-12, max_before[static_cast<std::size_t>(j)]);
    }
  }
}

TEST(MclColumnOps, PruneThresholdAndTopK) {
  CscMat m = testing::random_matrix(50, 10, 20.0, 82);
  mcl_normalize_columns(m);
  mcl_prune(m, 0.01, 5);
  for (Index j = 0; j < m.ncols(); ++j) {
    EXPECT_LE(m.col_nnz(j), 5);
    for (Value v : m.col_vals(j)) EXPECT_GE(v, 0.01);
  }
}

TEST(MclChaos, ZeroForConvergedAndPositiveForUniform) {
  // Converged: each column a single 1.0 -> chaos 0.
  TripleMat conv(3, 3);
  conv.push_back(0, 0, 1.0);
  conv.push_back(0, 1, 1.0);
  conv.push_back(2, 2, 1.0);
  EXPECT_NEAR(mcl_chaos(CscMat::from_triples(std::move(conv))), 0.0, 1e-12);
  // Uniform column of width 4: chaos = 1/4 - 4*(1/16) - ... = max - sumsq
  TripleMat uni(4, 1);
  for (Index i = 0; i < 4; ++i) uni.push_back(i, 0, 0.25);
  EXPECT_NEAR(mcl_chaos(CscMat::from_triples(std::move(uni))), 0.25 - 0.25,
              1e-12);
  TripleMat two(4, 1);
  two.push_back(0, 0, 0.5);
  two.push_back(1, 0, 0.5);
  EXPECT_NEAR(mcl_chaos(CscMat::from_triples(std::move(two))), 0.5 - 0.5, 1e-12);
  TripleMat skew(4, 1);
  skew.push_back(0, 0, 0.9);
  skew.push_back(1, 0, 0.1);
  EXPECT_NEAR(mcl_chaos(CscMat::from_triples(std::move(skew))), 0.9 - 0.82,
              1e-12);
}

TEST(MclSerial, SeparatesTwoCliques) {
  const CscMat m = two_cliques_bridgeless(6);
  MclParams params;
  const MclResult r = mcl_cluster_serial(m, params);
  EXPECT_EQ(r.num_clusters, 2);
  for (Index i = 0; i < 6; ++i) {
    EXPECT_EQ(r.cluster_of[static_cast<std::size_t>(i)], r.cluster_of[0]);
    EXPECT_EQ(r.cluster_of[static_cast<std::size_t>(6 + i)], r.cluster_of[6]);
  }
  EXPECT_NE(r.cluster_of[0], r.cluster_of[6]);
}

TEST(MclSerial, RecoversPlantedProteinFamilies) {
  ProteinParams gp;
  gp.n = 240;
  gp.min_family = 8;
  gp.max_family = 40;
  gp.within_density = 0.75;
  gp.cross_edges_per_node = 0.05;
  gp.seed = 17;
  const ProteinMatrix pm = generate_protein_similarity(gp);
  MclParams params;
  params.max_iterations = 40;
  const MclResult r = mcl_cluster_serial(pm.mat, params);
  EXPECT_GT(pair_agreement(r.cluster_of, pm.family_of), 0.93);
}

TEST(MclDistributed, MatchesSerialOnCliqueGraph) {
  const CscMat m = two_cliques_bridgeless(5);
  MclParams params;
  const MclResult serial = mcl_cluster_serial(m, params);
  vmpi::run(8, [&](vmpi::Comm& world) {
    Grid3D grid(world, 2);
    const MclResult dist = mcl_cluster_distributed(grid, m, params);
    EXPECT_EQ(dist.num_clusters, serial.num_clusters);
    EXPECT_NEAR(pair_agreement(dist.cluster_of, serial.cluster_of), 1.0, 1e-12);
  });
}

TEST(MclDistributed, MatchesSerialOnProteinGraph) {
  // Regression test: inflation/pruning are column-global; a batch piece
  // holds only a row slice of each column, so per-piece pruning silently
  // over-merges clusters. The distributed implementation must assemble
  // full columns (along col_comm) before pruning.
  ProteinParams gp;
  gp.n = 200;
  gp.min_family = 6;
  gp.max_family = 30;
  gp.within_density = 0.75;
  gp.cross_edges_per_node = 0.05;
  gp.seed = 23;
  const ProteinMatrix pm = generate_protein_similarity(gp);
  MclParams params;
  params.max_iterations = 40;
  const MclResult serial = mcl_cluster_serial(pm.mat, params);
  for (const auto& [p, l] :
       std::vector<std::pair<int, int>>{{4, 1}, {16, 4}, {8, 2}}) {
    vmpi::run(p, [&, l = l](vmpi::Comm& world) {
      Grid3D grid(world, l);
      const MclResult dist = mcl_cluster_distributed(grid, pm.mat, params);
      EXPECT_EQ(dist.num_clusters, serial.num_clusters)
          << "p=" << p << " l=" << l;
      EXPECT_GT(pair_agreement(dist.cluster_of, serial.cluster_of), 0.999);
    });
  }
}

TEST(MclDistributed, BatchedUnderTightMemoryStillClusters) {
  ProteinParams gp;
  gp.n = 150;
  gp.min_family = 6;
  gp.max_family = 25;
  gp.within_density = 0.8;
  gp.cross_edges_per_node = 0.02;
  gp.seed = 19;
  const ProteinMatrix pm = generate_protein_similarity(gp);
  MclParams params;
  params.max_iterations = 30;
  vmpi::run(4, [&](vmpi::Comm& world) {
    Grid3D grid(world, 1);
    // Batch every expansion (as a fixed memory budget would in the paper's
    // setting, where the budget holds across iterations of varying size)
    // and verify clustering quality is unaffected.
    SummaOptions opts;
    opts.force_batches = 4;
    const MclResult r =
        mcl_cluster_distributed(grid, pm.mat, params, /*total_memory=*/0, opts);
    bool saw_batching = false;
    for (const auto& it : r.per_iteration) saw_batching |= it.batches > 1;
    EXPECT_TRUE(saw_batching);
    EXPECT_GT(pair_agreement(r.cluster_of, pm.family_of), 0.9);
  });
}

TEST(MclInterpret, SingletonsForEmptyColumns) {
  const CscMat empty(4, 4);
  const MclResult r = mcl_interpret(empty);
  EXPECT_EQ(r.num_clusters, 4);
}

}  // namespace
}  // namespace casp
