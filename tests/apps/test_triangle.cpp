#include <gtest/gtest.h>

#include "apps/triangle.hpp"
#include "gen/rmat.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

/// O(n^3)-ish brute force over the adjacency pattern.
Index brute_force_triangles(const CscMat& a) {
  const Index n = a.nrows();
  std::vector<std::vector<bool>> adj(
      static_cast<std::size_t>(n),
      std::vector<bool>(static_cast<std::size_t>(n), false));
  for (Index j = 0; j < n; ++j)
    for (Index r : a.col_rowids(j))
      adj[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)] = true;
  Index count = 0;
  for (Index i = 0; i < n; ++i)
    for (Index j = i + 1; j < n; ++j) {
      if (!adj[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) continue;
      for (Index k = j + 1; k < n; ++k)
        if (adj[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] &&
            adj[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)])
          ++count;
    }
  return count;
}

CscMat symmetrize(const CscMat& m) {
  TripleMat t(m.nrows(), m.ncols());
  for (Index j = 0; j < m.ncols(); ++j) {
    for (Index r : m.col_rowids(j)) {
      if (r == j) continue;
      t.push_back(r, j, 1.0);
      t.push_back(j, r, 1.0);
    }
  }
  t.canonicalize();
  for (Triple& e : t.entries()) e.val = 1.0;
  return CscMat::from_triples(std::move(t));
}

TEST(TriangleSerial, KnownSmallGraphs) {
  // Triangle graph: exactly 1.
  TripleMat tri(3, 3);
  for (Index i = 0; i < 3; ++i)
    for (Index j = 0; j < 3; ++j)
      if (i != j) tri.push_back(i, j, 1.0);
  EXPECT_EQ(count_triangles_serial(CscMat::from_triples(std::move(tri))), 1);

  // K5: C(5,3) = 10 triangles.
  TripleMat k5(5, 5);
  for (Index i = 0; i < 5; ++i)
    for (Index j = 0; j < 5; ++j)
      if (i != j) k5.push_back(i, j, 1.0);
  EXPECT_EQ(count_triangles_serial(CscMat::from_triples(std::move(k5))), 10);

  // Star graph: 0 triangles.
  TripleMat star(6, 6);
  for (Index i = 1; i < 6; ++i) {
    star.push_back(0, i, 1.0);
    star.push_back(i, 0, 1.0);
  }
  EXPECT_EQ(count_triangles_serial(CscMat::from_triples(std::move(star))), 0);
}

TEST(TriangleSerial, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const CscMat a = symmetrize(testing::random_matrix(40, 40, 4.0, seed));
    EXPECT_EQ(count_triangles_serial(a), brute_force_triangles(a))
        << "seed " << seed;
  }
}

TEST(TriangleDistributed, MatchesSerialAcrossGrids) {
  const CscMat a = symmetrize(testing::random_matrix(48, 48, 5.0, 7));
  const Index expected = count_triangles_serial(a);
  for (const auto& [p, l] : std::vector<std::pair<int, int>>{
           {1, 1}, {4, 1}, {4, 4}, {8, 2}, {16, 4}}) {
    vmpi::run(p, [&, l = l](vmpi::Comm& world) {
      Grid3D grid(world, l);
      EXPECT_EQ(count_triangles_distributed(grid, a), expected)
          << "p=" << p << " l=" << l;
    });
  }
}

TEST(TriangleDistributed, BatchingDoesNotChangeTheCount) {
  const CscMat a = symmetrize(testing::random_matrix(40, 40, 6.0, 8));
  const Index expected = count_triangles_serial(a);
  vmpi::run(8, [&](vmpi::Comm& world) {
    Grid3D grid(world, 2);
    SummaOptions opts;
    opts.force_batches = 5;
    EXPECT_EQ(count_triangles_distributed(grid, a, 0, opts), expected);
  });
}

TEST(TriangleDistributed, PowerLawGraph) {
  RmatParams p;
  p.scale = 6;
  p.edge_factor = 6.0;
  p.seed = 9;
  const CscMat a = symmetrize(generate_rmat(p));
  const Index expected = brute_force_triangles(a);
  vmpi::run(8, [&](vmpi::Comm& world) {
    Grid3D grid(world, 2);
    EXPECT_EQ(count_triangles_distributed(grid, a), expected);
  });
}

}  // namespace
}  // namespace casp
