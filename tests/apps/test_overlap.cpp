#include <gtest/gtest.h>

#include "apps/overlap.hpp"
#include "gen/kmer.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

KmerMatrix sample_reads(std::uint64_t seed, double keep = 1.0) {
  KmerParams p;
  p.num_reads = 50;
  p.genome_length = 300;
  p.min_read_len = 15;
  p.max_read_len = 40;
  p.kmer_keep_fraction = keep;
  p.seed = seed;
  return generate_kmer_matrix(p);
}

TEST(OverlapSerial, MatchesIntervalGroundTruth) {
  const KmerMatrix km = sample_reads(1);
  const double min_shared = 5.0;
  const auto pairs = find_overlaps_serial(km.mat, min_shared);
  // Every reported pair must have exactly its interval overlap as the
  // shared count (keep fraction 1.0).
  for (const OverlapPair& pr : pairs) {
    EXPECT_LT(pr.read_a, pr.read_b);
    EXPECT_DOUBLE_EQ(pr.shared,
                     static_cast<double>(km.true_overlap(pr.read_a, pr.read_b)));
    EXPECT_GE(pr.shared, min_shared);
  }
  // And every qualifying pair must be reported.
  Index expected = 0;
  for (Index i = 0; i < 50; ++i)
    for (Index j = i + 1; j < 50; ++j)
      if (static_cast<double>(km.true_overlap(i, j)) >= min_shared) ++expected;
  EXPECT_EQ(static_cast<Index>(pairs.size()), expected);
}

TEST(OverlapDistributed, MatchesSerialAcrossGridsAndBatches) {
  const KmerMatrix km = sample_reads(2, 0.8);
  const double min_shared = 3.0;
  const auto expected = find_overlaps_serial(km.mat, min_shared);
  ASSERT_FALSE(expected.empty());
  for (const auto& [p, l, b] : std::vector<std::tuple<int, int, Index>>{
           {1, 1, 1}, {4, 1, 2}, {4, 4, 1}, {8, 2, 3}, {16, 4, 4}}) {
    vmpi::run(p, [&, l = l, b = b](vmpi::Comm& world) {
      Grid3D grid(world, l);
      SummaOptions opts;
      opts.force_batches = b;
      const auto got =
          find_overlaps_distributed(grid, km.mat, min_shared, 0, opts);
      ASSERT_EQ(got.size(), expected.size()) << "p=" << p << " l=" << l;
      for (std::size_t k = 0; k < got.size(); ++k) {
        EXPECT_EQ(got[k].read_a, expected[k].read_a);
        EXPECT_EQ(got[k].read_b, expected[k].read_b);
        EXPECT_DOUBLE_EQ(got[k].shared, expected[k].shared);
      }
    });
  }
}

TEST(OverlapDistributed, ThresholdFiltersEverything) {
  const KmerMatrix km = sample_reads(3);
  vmpi::run(4, [&](vmpi::Comm& world) {
    Grid3D grid(world, 1);
    const auto got = find_overlaps_distributed(grid, km.mat, 1e9);
    EXPECT_TRUE(got.empty());
  });
}

TEST(OverlapSerial, SubsampledSharedCountsAreLowerBounds) {
  // With k-mer subsampling the shared count can only undercount the true
  // overlap (BELLA's sensitivity/specificity tradeoff).
  const KmerMatrix km = sample_reads(4, 0.5);
  const auto pairs = find_overlaps_serial(km.mat, 1.0);
  for (const OverlapPair& pr : pairs)
    EXPECT_LE(pr.shared,
              static_cast<double>(km.true_overlap(pr.read_a, pr.read_b)));
}

}  // namespace
}  // namespace casp
