#include <gtest/gtest.h>

#include <set>

#include "apps/jaccard.hpp"
#include "gen/kmer.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

/// Brute-force Jaccard over row feature sets.
std::vector<JaccardPair> brute_force(const CscMat& incidence, double min_sim) {
  const Index n = incidence.nrows();
  std::vector<std::set<Index>> features(static_cast<std::size_t>(n));
  for (Index j = 0; j < incidence.ncols(); ++j)
    for (Index r : incidence.col_rowids(j))
      features[static_cast<std::size_t>(r)].insert(j);
  std::vector<JaccardPair> pairs;
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      const auto& fi = features[static_cast<std::size_t>(i)];
      const auto& fj = features[static_cast<std::size_t>(j)];
      std::size_t inter = 0;
      for (Index f : fi) inter += fj.count(f);
      const std::size_t uni = fi.size() + fj.size() - inter;
      if (uni == 0) continue;
      const double sim =
          static_cast<double>(inter) / static_cast<double>(uni);
      if (inter > 0 && sim >= min_sim) pairs.push_back({i, j, sim});
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

TEST(JaccardSerial, MatchesBruteForce) {
  const CscMat m = testing::random_matrix(40, 60, 2.0, 90);
  for (double threshold : {0.0, 0.1, 0.3}) {
    const auto expected = brute_force(m, threshold);
    const auto got = jaccard_pairs_serial(m, threshold);
    ASSERT_EQ(got.size(), expected.size()) << "threshold " << threshold;
    for (std::size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k].item_a, expected[k].item_a);
      EXPECT_EQ(got[k].item_b, expected[k].item_b);
      EXPECT_NEAR(got[k].similarity, expected[k].similarity, 1e-12);
    }
  }
}

TEST(JaccardSerial, IgnoresNumericValues) {
  // Jaccard is a set similarity: scaling the values must not change it.
  CscMat m = testing::random_matrix(20, 30, 2.0, 91);
  const auto base = jaccard_pairs_serial(m, 0.05);
  for (Value& v : m.vals_mutable()) v *= 37.5;
  const auto scaled = jaccard_pairs_serial(m, 0.05);
  ASSERT_EQ(base.size(), scaled.size());
  for (std::size_t k = 0; k < base.size(); ++k)
    EXPECT_NEAR(base[k].similarity, scaled[k].similarity, 1e-12);
}

TEST(JaccardSerial, IdenticalRowsScoreOne) {
  TripleMat t(2, 4);
  for (Index f : {0, 2, 3}) {
    t.push_back(0, f, 1.0);
    t.push_back(1, f, 1.0);
  }
  const auto pairs = jaccard_pairs_serial(CscMat::from_triples(std::move(t)), 0.5);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].similarity, 1.0);
}

TEST(JaccardDistributed, MatchesSerial) {
  KmerParams kp;
  kp.num_reads = 40;
  kp.genome_length = 200;
  kp.seed = 92;
  const CscMat m = generate_kmer_matrix(kp).mat;
  const auto expected = jaccard_pairs_serial(m, 0.2);
  ASSERT_FALSE(expected.empty());
  for (const auto& [p, l, b] : std::vector<std::tuple<int, int, Index>>{
           {4, 1, 1}, {8, 2, 3}, {16, 4, 2}}) {
    vmpi::run(p, [&, l = l, b = b](vmpi::Comm& world) {
      Grid3D grid(world, l);
      SummaOptions opts;
      opts.force_batches = b;
      const auto got = jaccard_pairs_distributed(grid, m, 0.2, 0, opts);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t k = 0; k < got.size(); ++k) {
        EXPECT_EQ(got[k].item_a, expected[k].item_a);
        EXPECT_EQ(got[k].item_b, expected[k].item_b);
        EXPECT_NEAR(got[k].similarity, expected[k].similarity, 1e-12);
      }
    });
  }
}

}  // namespace
}  // namespace casp
