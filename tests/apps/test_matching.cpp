// Heavy-connectivity matching: validity, greedy maximality (holds for any
// batch order), and serial/distributed agreement at b = 1.
#include <gtest/gtest.h>

#include <set>

#include "apps/matching.hpp"
#include "gen/kmer.hpp"
#include "kernels/reference.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

/// Brute-force shared-hyperedge counts between all vertex pairs.
std::vector<std::vector<double>> shared_counts(const CscMat& incidence) {
  const CscMat c =
      reference_multiply<PlusTimes>(incidence, incidence.transpose());
  std::vector<std::vector<double>> shared(
      static_cast<std::size_t>(incidence.nrows()),
      std::vector<double>(static_cast<std::size_t>(incidence.nrows()), 0.0));
  for (Index j = 0; j < c.ncols(); ++j) {
    const auto rows = c.col_rowids(j);
    const auto vals = c.col_vals(j);
    for (std::size_t k = 0; k < rows.size(); ++k)
      shared[static_cast<std::size_t>(rows[k])][static_cast<std::size_t>(j)] =
          vals[k];
  }
  return shared;
}

void expect_valid_and_maximal(const MatchingResult& r, const CscMat& incidence,
                              double min_shared) {
  const auto shared = shared_counts(incidence);
  const Index n = incidence.nrows();
  // Validity: involutive, irreflexive, and above threshold.
  Index matched = 0;
  for (Index v = 0; v < n; ++v) {
    const Index m = r.mate[static_cast<std::size_t>(v)];
    if (m < 0) continue;
    ++matched;
    EXPECT_NE(m, v);
    EXPECT_EQ(r.mate[static_cast<std::size_t>(m)], v);
    EXPECT_GE(shared[static_cast<std::size_t>(v)][static_cast<std::size_t>(m)],
              min_shared);
  }
  EXPECT_EQ(matched, 2 * r.matched_pairs);
  // Greedy maximality: no two *unmatched* vertices share >= min_shared.
  for (Index u = 0; u < n; ++u) {
    if (r.mate[static_cast<std::size_t>(u)] >= 0) continue;
    for (Index v = u + 1; v < n; ++v) {
      if (r.mate[static_cast<std::size_t>(v)] >= 0) continue;
      EXPECT_LT(shared[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)],
                min_shared)
          << "unmatched pair (" << u << "," << v << ") still eligible";
    }
  }
}

CscMat sample_hypergraph(std::uint64_t seed) {
  // Reads-over-genome doubles as a vertex x hyperedge incidence with
  // clustered overlap structure.
  KmerParams p;
  p.num_reads = 60;
  p.genome_length = 250;
  p.min_read_len = 10;
  p.max_read_len = 30;
  p.seed = seed;
  return generate_kmer_matrix(p).mat;
}

TEST(MatchingSerial, ValidAndMaximal) {
  const CscMat h = sample_hypergraph(1);
  for (double threshold : {1.0, 4.0, 8.0}) {
    const MatchingResult r = heavy_connectivity_matching_serial(h, threshold);
    expect_valid_and_maximal(r, h, threshold);
  }
}

TEST(MatchingSerial, HeaviestPairWinsFirst) {
  // Path u - v - w where (u, v) share more hyperedges than (v, w): greedy
  // must take (u, v).
  TripleMat t(3, 4);
  t.push_back(0, 0, 1.0);  // u in e0, e1
  t.push_back(0, 1, 1.0);
  t.push_back(1, 0, 1.0);  // v in e0, e1, e2
  t.push_back(1, 1, 1.0);
  t.push_back(1, 2, 1.0);
  t.push_back(2, 2, 1.0);  // w in e2, e3
  t.push_back(2, 3, 1.0);
  const MatchingResult r = heavy_connectivity_matching_serial(
      CscMat::from_triples(std::move(t)), 1.0);
  EXPECT_EQ(r.mate[0], 1);
  EXPECT_EQ(r.mate[1], 0);
  EXPECT_EQ(r.mate[2], -1);
  EXPECT_EQ(r.matched_pairs, 1);
  EXPECT_DOUBLE_EQ(r.total_weight, 2.0);
}

TEST(MatchingDistributed, SingleBatchMatchesSerialExactly) {
  const CscMat h = sample_hypergraph(2);
  const double threshold = 3.0;
  const MatchingResult serial =
      heavy_connectivity_matching_serial(h, threshold);
  for (const auto& [p, l] : std::vector<std::pair<int, int>>{{4, 1}, {8, 2}}) {
    vmpi::run(p, [&, l = l](vmpi::Comm& world) {
      Grid3D grid(world, l);
      const MatchingResult dist =
          heavy_connectivity_matching_distributed(grid, h, threshold);
      EXPECT_EQ(dist.mate, serial.mate) << "p=" << p << " l=" << l;
      EXPECT_DOUBLE_EQ(dist.total_weight, serial.total_weight);
    });
  }
}

TEST(MatchingDistributed, BatchedStaysValidAndMaximal) {
  const CscMat h = sample_hypergraph(3);
  const double threshold = 2.0;
  for (const Index b : {Index{2}, Index{5}}) {
    vmpi::run(8, [&, b](vmpi::Comm& world) {
      Grid3D grid(world, 2);
      SummaOptions opts;
      opts.force_batches = b;
      const MatchingResult r = heavy_connectivity_matching_distributed(
          grid, h, threshold, 0, opts);
      if (world.rank() == 0) expect_valid_and_maximal(r, h, threshold);
    });
  }
}

TEST(MatchingDistributed, AllRanksAgree) {
  const CscMat h = sample_hypergraph(4);
  std::vector<std::vector<Index>> mates(8);
  vmpi::run(8, [&](vmpi::Comm& world) {
    Grid3D grid(world, 2);
    SummaOptions opts;
    opts.force_batches = 3;
    const MatchingResult r =
        heavy_connectivity_matching_distributed(grid, h, 2.0, 0, opts);
    mates[static_cast<std::size_t>(world.rank())] = r.mate;
  });
  for (int r = 1; r < 8; ++r) EXPECT_EQ(mates[static_cast<std::size_t>(r)], mates[0]);
}

}  // namespace
}  // namespace casp
