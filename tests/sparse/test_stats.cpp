#include <gtest/gtest.h>

#include <numeric>

#include "kernels/reference.hpp"
#include "sparse/stats.hpp"
#include "test_util.hpp"

namespace casp {
namespace {

TEST(Stats, MatrixStatsBasics) {
  TripleMat t(4, 3);
  t.push_back(0, 0, 1.0);
  t.push_back(1, 0, 1.0);
  t.push_back(2, 0, 1.0);
  t.push_back(3, 2, 1.0);
  const CscMat m = CscMat::from_triples(std::move(t));
  const MatrixStats s = matrix_stats(m);
  EXPECT_EQ(s.nnz, 4);
  EXPECT_EQ(s.max_nnz_per_col, 3);
  EXPECT_NEAR(s.avg_nnz_per_col, 4.0 / 3.0, 1e-12);
}

TEST(Stats, FlopsCountsScalarMultiplies) {
  // A = [1 1; 0 1] (csc), B = [1 0; 1 1]: flops = nnz(A(:,0)) per B(0,*)
  TripleMat ta(2, 2), tb(2, 2);
  ta.push_back(0, 0, 1.0);
  ta.push_back(0, 1, 1.0);
  ta.push_back(1, 1, 1.0);
  tb.push_back(0, 0, 1.0);
  tb.push_back(1, 0, 1.0);
  tb.push_back(1, 1, 1.0);
  const CscMat a = CscMat::from_triples(std::move(ta));
  const CscMat b = CscMat::from_triples(std::move(tb));
  // B(:,0) hits A columns 0 (1 nnz) and 1 (2 nnz) -> 3; B(:,1) hits A col 1
  // -> 2. Total 5.
  EXPECT_EQ(multiply_flops(a, b), 5);
  const auto per_col = column_flops(a, b);
  EXPECT_EQ(per_col[0], 3);
  EXPECT_EQ(per_col[1], 2);
}

TEST(Stats, ColumnFlopsSumEqualsTotal) {
  const CscMat a = testing::random_matrix(40, 40, 4.0, 20);
  const CscMat b = testing::random_matrix(40, 40, 4.0, 21);
  const auto per_col = column_flops(a, b);
  EXPECT_EQ(std::accumulate(per_col.begin(), per_col.end(), Index{0}),
            multiply_flops(a, b));
}

TEST(Stats, MultiplyStatsAgreeWithReference) {
  const CscMat a = testing::random_matrix(30, 30, 3.0, 22);
  const CscMat b = testing::random_matrix(30, 30, 3.0, 23);
  const MultiplyStats s = multiply_stats(a, b);
  const CscMat c = reference_multiply<PlusTimes>(a, b);
  EXPECT_EQ(s.nnz_c, c.nnz());
  EXPECT_GE(s.compression_factor, 1.0);  // cf >= 1 always (Sec. II-A)
  EXPECT_NEAR(s.compression_factor,
              static_cast<double>(s.flops) / static_cast<double>(s.nnz_c),
              1e-12);
}

TEST(Stats, SquaringDenseClusterHasHighCompression) {
  // A fully-connected block: squaring multiplies the same pairs many times
  // over -> cf ~ block size.
  const Index k = 12;
  TripleMat t(k, k);
  for (Index i = 0; i < k; ++i)
    for (Index j = 0; j < k; ++j) t.push_back(i, j, 1.0);
  const CscMat a = CscMat::from_triples(std::move(t));
  const MultiplyStats s = multiply_stats(a, a);
  EXPECT_NEAR(s.compression_factor, static_cast<double>(k), 1e-9);
}

TEST(Stats, DescribeMentionsShapeAndNnz) {
  const CscMat m = testing::random_matrix(10, 20, 2.0, 24);
  const std::string d = describe("testmat", m);
  EXPECT_NE(d.find("testmat"), std::string::npos);
  EXPECT_NE(d.find("10 x 20"), std::string::npos);
}

}  // namespace
}  // namespace casp
