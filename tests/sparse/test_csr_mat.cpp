#include <gtest/gtest.h>

#include "sparse/csr_mat.hpp"
#include "test_util.hpp"

namespace casp {
namespace {

TEST(CsrMat, FromCscPreservesEntries) {
  const CscMat csc = testing::random_matrix(23, 17, 3.0, 1);
  const CsrMat csr = CsrMat::from_csc(csc);
  EXPECT_EQ(csr.nrows(), csc.nrows());
  EXPECT_EQ(csr.ncols(), csc.ncols());
  EXPECT_EQ(csr.nnz(), csc.nnz());
  // Row-wise view must contain exactly the CSC entries.
  TripleMat from_csr(csr.nrows(), csr.ncols());
  for (Index i = 0; i < csr.nrows(); ++i) {
    const auto cols = csr.row_colids(i);
    const auto vals = csr.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k)
      from_csr.push_back(i, cols[k], vals[k]);
  }
  from_csr.canonicalize();
  TripleMat from_csc_t = csc.to_triples();
  from_csc_t.canonicalize();
  EXPECT_EQ(from_csr, from_csc_t);
}

TEST(CsrMat, RoundTripThroughCsc) {
  const CscMat csc = testing::random_matrix(31, 29, 4.0, 2);
  const CsrMat csr = CsrMat::from_csc(csc);
  testing::expect_mat_near(csr.to_csc(), csc);
}

TEST(CsrMat, FromTriples) {
  TripleMat t(3, 3);
  t.push_back(0, 1, 1.0);
  t.push_back(0, 2, 2.0);
  t.push_back(2, 0, 3.0);
  const CsrMat csr = CsrMat::from_triples(std::move(t));
  EXPECT_EQ(csr.row_nnz(0), 2);
  EXPECT_EQ(csr.row_nnz(1), 0);
  EXPECT_EQ(csr.row_nnz(2), 1);
  EXPECT_EQ(csr.row_colids(0)[0], 1);
  EXPECT_DOUBLE_EQ(csr.row_vals(2)[0], 3.0);
}

TEST(CsrMat, ValidationCatchesBadArrays) {
  EXPECT_THROW(CsrMat(2, 2, {0, 2, 1}, {0, 1}, {1.0, 1.0}), std::logic_error);
  EXPECT_THROW(CsrMat(2, 2, {0, 1, 2}, {0, 9}, {1.0, 1.0}), std::logic_error);
}

TEST(CsrMat, EmptyMatrix) {
  const CsrMat m(4, 6);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_EQ(m.row_nnz(3), 0);
  const CscMat csc = m.to_csc();
  EXPECT_EQ(csc.nrows(), 4);
  EXPECT_EQ(csc.ncols(), 6);
}

}  // namespace
}  // namespace casp
