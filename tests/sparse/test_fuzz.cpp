// Randomized property sweeps ("fuzz") over the sparse containers and the
// algebraic identities the distributed algorithms rely on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kernels/merge.hpp"
#include "kernels/reference.hpp"
#include "kernels/spgemm.hpp"
#include "sparse/serialize.hpp"
#include "test_util.hpp"

namespace casp {
namespace {

TEST(SparseFuzz, RandomShapesRoundTripEverywhere) {
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const Index rows = 1 + rng.range(0, 60);
    const Index cols = 1 + rng.range(0, 60);
    const double d = 0.5 + rng.uniform() * 6.0;
    const CscMat m = testing::random_matrix(rows, cols, d, 3000 + trial);
    // triples round trip
    testing::expect_mat_near(CscMat::from_triples(m.to_triples()), m);
    // wire round trip
    EXPECT_EQ(unpack_csc(pack_csc(m)), m);
    // double transpose
    testing::expect_mat_near(m.transpose().transpose(), m);
    // random column slice + complement reassemble
    const Index cut = rng.range(0, cols + 1);
    const CscMat parts[] = {m.slice_cols(0, cut), m.slice_cols(cut, cols)};
    EXPECT_EQ(CscMat::concat_cols(parts), m);
    // random row slice pair conserves nnz
    const Index rcut = rng.range(0, rows + 1);
    EXPECT_EQ(m.slice_rows(0, rcut).nnz() + m.slice_rows(rcut, rows).nnz(),
              m.nnz());
  }
}

TEST(SparseFuzz, TransposeOfProductIsProductOfTransposes) {
  // (A*B)^T == B^T * A^T — exercised because A*A^T pipelines depend on it.
  Rng rng(77);
  for (int trial = 0; trial < 15; ++trial) {
    const Index m = 2 + rng.range(0, 25);
    const Index k = 2 + rng.range(0, 25);
    const Index n = 2 + rng.range(0, 25);
    const CscMat a = testing::random_matrix(m, k, 3.0, 4000 + trial);
    const CscMat b = testing::random_matrix(k, n, 3.0, 5000 + trial);
    const CscMat ab_t = reference_multiply<PlusTimes>(a, b).transpose();
    const CscMat bt_at =
        reference_multiply<PlusTimes>(b.transpose(), a.transpose());
    testing::expect_mat_near(ab_t, bt_at, 1e-9);
  }
}

TEST(SparseFuzz, MultiplicationDistributesOverColumnSplit) {
  // A * [B1 | B2] == [A*B1 | A*B2] — the algebra behind column batching.
  Rng rng(88);
  for (int trial = 0; trial < 15; ++trial) {
    const Index n = 6 + rng.range(0, 30);
    const CscMat a = testing::random_matrix(n, n, 3.0, 6000 + trial);
    const CscMat b = testing::random_matrix(n, n, 3.0, 7000 + trial);
    const Index cut = rng.range(1, n);
    const CscMat c1 =
        local_spgemm<PlusTimes>(a, b.slice_cols(0, cut));
    const CscMat c2 =
        local_spgemm<PlusTimes>(a, b.slice_cols(cut, n));
    const CscMat pieces[] = {c1, c2};
    testing::expect_mat_near(CscMat::concat_cols(pieces),
                             reference_multiply<PlusTimes>(a, b), 1e-9);
  }
}

TEST(SparseFuzz, MultiplicationSplitsOverInnerDimension) {
  // A*B == A(:,S1)*B(S1,:) + A(:,S2)*B(S2,:) — the algebra behind layering
  // and SUMMA stages (what Merge-Layer/Merge-Fiber sum up).
  Rng rng(99);
  for (int trial = 0; trial < 15; ++trial) {
    const Index n = 6 + rng.range(0, 30);
    const CscMat a = testing::random_matrix(n, n, 3.0, 8000 + trial);
    const CscMat b = testing::random_matrix(n, n, 3.0, 9000 + trial);
    const Index cut = rng.range(1, n);
    const CscMat bt = b.transpose();
    const CscMat b_top = bt.slice_cols(0, cut).transpose();
    const CscMat b_bottom = bt.slice_cols(cut, n).transpose();
    const CscMat d1 = local_spgemm<PlusTimes>(a.slice_cols(0, cut), b_top);
    const CscMat d2 = local_spgemm<PlusTimes>(a.slice_cols(cut, n), b_bottom);
    const CscMat pieces[] = {d1, d2};
    testing::expect_mat_near(
        merge_matrices<PlusTimes>(csc_refs(pieces), MergeKind::kUnsortedHash),
        reference_multiply<PlusTimes>(a, b), 1e-9);
  }
}

TEST(SparseFuzz, PruneThenSortEqualsSortThenPrune) {
  Rng rng(111);
  for (int trial = 0; trial < 10; ++trial) {
    const CscMat base = testing::random_matrix(40, 40, 5.0, 10000 + trial);
    auto pred = [](Index row, Index, Value v) {
      return v > 0.3 && row % 3 != 0;
    };
    CscMat a = base;
    a.prune(pred);
    a.sort_columns();
    CscMat b = base;
    b.sort_columns();
    b.prune(pred);
    EXPECT_EQ(a, b);
  }
}

}  // namespace
}  // namespace casp
