#include <gtest/gtest.h>

#include "sparse/csr_mat.hpp"
#include "test_util.hpp"

namespace casp {
namespace {

TEST(CscMat, FromTriplesRoundTrip) {
  TripleMat t(5, 4);
  t.push_back(1, 0, 1.5);
  t.push_back(4, 0, 2.5);
  t.push_back(0, 2, 3.5);
  t.push_back(3, 3, 4.5);
  TripleMat copy = t;
  copy.canonicalize();
  const CscMat m = CscMat::from_triples(std::move(t));
  EXPECT_EQ(m.nrows(), 5);
  EXPECT_EQ(m.ncols(), 4);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_EQ(m.col_nnz(0), 2);
  EXPECT_EQ(m.col_nnz(1), 0);
  EXPECT_TRUE(m.columns_sorted());
  EXPECT_EQ(m.to_triples(), copy);
}

class CscRandomRoundTrip
    : public ::testing::TestWithParam<std::tuple<Index, Index, double>> {};

TEST_P(CscRandomRoundTrip, TriplesRoundTrip) {
  const auto [rows, cols, d] = GetParam();
  const CscMat m = testing::random_matrix(rows, cols, d, 99);
  const CscMat back = CscMat::from_triples(m.to_triples());
  EXPECT_EQ(m, back);
}

TEST_P(CscRandomRoundTrip, TransposeIsInvolution) {
  const auto [rows, cols, d] = GetParam();
  const CscMat m = testing::random_matrix(rows, cols, d, 100);
  const CscMat t = m.transpose();
  EXPECT_EQ(t.nrows(), m.ncols());
  EXPECT_EQ(t.ncols(), m.nrows());
  EXPECT_TRUE(t.columns_sorted());
  testing::expect_mat_near(t.transpose(), m);
}

TEST_P(CscRandomRoundTrip, SliceConcatIdentity) {
  const auto [rows, cols, d] = GetParam();
  const CscMat m = testing::random_matrix(rows, cols, d, 101);
  if (cols < 3) return;
  const Index c1 = cols / 3, c2 = 2 * cols / 3;
  const CscMat parts[] = {m.slice_cols(0, c1), m.slice_cols(c1, c2),
                          m.slice_cols(c2, cols)};
  const CscMat joined = CscMat::concat_cols(parts);
  EXPECT_EQ(joined, m);
}

TEST_P(CscRandomRoundTrip, SelectRangesEqualsSliceConcat) {
  const auto [rows, cols, d] = GetParam();
  const CscMat m = testing::random_matrix(rows, cols, d, 102);
  if (cols < 5) return;
  const std::pair<Index, Index> ranges[] = {
      {0, cols / 5}, {2 * cols / 5, 3 * cols / 5}, {4 * cols / 5, cols}};
  const CscMat picked = m.select_col_ranges(ranges);
  const CscMat parts[] = {m.slice_cols(ranges[0].first, ranges[0].second),
                          m.slice_cols(ranges[1].first, ranges[1].second),
                          m.slice_cols(ranges[2].first, ranges[2].second)};
  EXPECT_EQ(picked, CscMat::concat_cols(parts));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CscRandomRoundTrip,
    ::testing::Values(std::tuple<Index, Index, double>{1, 1, 0.5},
                      std::tuple<Index, Index, double>{10, 10, 2.0},
                      std::tuple<Index, Index, double>{37, 11, 3.0},
                      std::tuple<Index, Index, double>{11, 37, 3.0},
                      std::tuple<Index, Index, double>{100, 100, 5.0},
                      std::tuple<Index, Index, double>{64, 1, 8.0},
                      std::tuple<Index, Index, double>{1, 64, 0.8}));

TEST(CscMat, SliceRowsReindexesAndFilters) {
  const CscMat m = testing::random_matrix(30, 20, 3.0, 106);
  const CscMat top = m.slice_rows(0, 12);
  const CscMat middle = m.slice_rows(12, 25);
  const CscMat bottom = m.slice_rows(25, 30);
  EXPECT_EQ(top.nrows(), 12);
  EXPECT_EQ(middle.nrows(), 13);
  EXPECT_EQ(top.nnz() + middle.nnz() + bottom.nnz(), m.nnz());
  // Row ids are reindexed into the slice.
  for (Index r : middle.rowids()) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 13);
  }
  // Stacking the slices back (with offsets) restores the matrix.
  TripleMat rebuilt(30, 20);
  for (const auto& [slice, base] :
       std::vector<std::pair<const CscMat*, Index>>{
           {&top, 0}, {&middle, 12}, {&bottom, 25}}) {
    for (Index j = 0; j < slice->ncols(); ++j) {
      const auto rows = slice->col_rowids(j);
      const auto vals = slice->col_vals(j);
      for (std::size_t k = 0; k < rows.size(); ++k)
        rebuilt.push_back(rows[k] + base, j, vals[k]);
    }
  }
  testing::expect_mat_near(CscMat::from_triples(std::move(rebuilt)), m);
}

TEST(CscMat, SliceRowsEmptyAndFull) {
  const CscMat m = testing::random_matrix(10, 10, 2.0, 107);
  EXPECT_EQ(m.slice_rows(3, 3).nnz(), 0);
  testing::expect_mat_near(m.slice_rows(0, 10), m);
}

TEST(CscMat, SortColumnsEstablishesOrderAndPreservesPairs) {
  // Build a deliberately unsorted matrix through raw arrays.
  CscMat m(4, 2, {0, 3, 4}, {3, 0, 2, 1}, {30.0, 0.5, 20.0, 10.0});
  EXPECT_FALSE(m.columns_sorted());
  m.sort_columns();
  EXPECT_TRUE(m.columns_sorted());
  const auto rows = m.col_rowids(0);
  const auto vals = m.col_vals(0);
  EXPECT_EQ(rows[0], 0);
  EXPECT_DOUBLE_EQ(vals[0], 0.5);
  EXPECT_EQ(rows[2], 3);
  EXPECT_DOUBLE_EQ(vals[2], 30.0);
}

TEST(CscMat, MergeDuplicatesSums) {
  CscMat m(3, 1, {0, 3}, {1, 1, 0}, {2.0, 3.0, 1.0});
  m.merge_duplicates();
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.col_vals(0)[1], 5.0);
}

TEST(CscMat, PrunePredicate) {
  CscMat m = testing::random_matrix(20, 20, 3.0, 103);
  const Index before = m.nnz();
  m.prune([](Index row, Index col, Value) { return row != col; });
  EXPECT_LE(m.nnz(), before);
  for (Index j = 0; j < m.ncols(); ++j)
    for (Index r : m.col_rowids(j)) EXPECT_NE(r, j);
  m.check_valid();
}

TEST(CscMat, EmptyAndZeroSized) {
  const CscMat empty;
  EXPECT_EQ(empty.nnz(), 0);
  const CscMat zero_cols(5, 0);
  EXPECT_EQ(zero_cols.nnz(), 0);
  const CscMat t = zero_cols.transpose();
  EXPECT_EQ(t.nrows(), 0);
  EXPECT_EQ(t.ncols(), 5);
}

TEST(CscMat, CheckValidCatchesCorruption) {
  EXPECT_THROW(CscMat(2, 2, {0, 2, 1}, {0, 1}, {1.0, 1.0}),
               std::logic_error);  // non-monotone colptr
  EXPECT_THROW(CscMat(2, 2, {0, 1, 2}, {0, 5}, {1.0, 1.0}),
               std::logic_error);  // row id out of bounds
  EXPECT_THROW(CscMat(2, 2, {0, 1, 3}, {0, 1}, {1.0, 1.0}),
               std::logic_error);  // colptr.back() != nnz
}

TEST(CscMat, StorageBytesIsConsistent) {
  const CscMat m = testing::random_matrix(50, 50, 4.0, 104);
  const Bytes expected =
      static_cast<Bytes>(51) * sizeof(Index) +
      static_cast<Bytes>(m.nnz()) * (sizeof(Index) + sizeof(Value));
  EXPECT_EQ(m.storage_bytes(), expected);
}

TEST(LowerUpperTriangle, SplitsCleanly) {
  const CscMat m = testing::random_matrix(30, 30, 4.0, 105);
  const CscMat lo = lower_triangle(m);
  const CscMat up = upper_triangle(m);
  for (Index j = 0; j < 30; ++j) {
    for (Index r : lo.col_rowids(j)) EXPECT_GT(r, j);
    for (Index r : up.col_rowids(j)) EXPECT_LT(r, j);
  }
  // lower + upper + diagonal == all entries.
  Index diag = 0;
  for (Index j = 0; j < 30; ++j)
    for (Index r : m.col_rowids(j))
      if (r == j) ++diag;
  EXPECT_EQ(lo.nnz() + up.nnz() + diag, m.nnz());
}

}  // namespace
}  // namespace casp
