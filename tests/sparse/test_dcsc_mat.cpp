#include <gtest/gtest.h>

#include "kernels/reference.hpp"
#include "sparse/dcsc_mat.hpp"
#include "test_util.hpp"

namespace casp {
namespace {

/// Hypersparse test matrix: n columns, only a few nonempty.
CscMat hypersparse(Index nrows, Index ncols, Index nonempty, double d,
                   std::uint64_t seed) {
  Rng rng(seed);
  TripleMat t(nrows, ncols);
  for (Index k = 0; k < nonempty; ++k) {
    const Index j = rng.range(0, ncols);
    const Index cnt = 1 + rng.range(0, static_cast<Index>(d * 2) + 1);
    for (Index e = 0; e < cnt; ++e)
      t.push_back(rng.range(0, nrows), j, 1.0 - rng.uniform());
  }
  return CscMat::from_triples(std::move(t));
}

TEST(DcscMat, RoundTripIsExact) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const CscMat csc = hypersparse(500, 100000, 40, 4.0, seed);
    const DcscMat d = DcscMat::from_csc(csc);
    d.check_valid();
    EXPECT_EQ(d.nnz(), csc.nnz());
    EXPECT_LE(d.nonempty_cols(), 40);
    EXPECT_EQ(d.to_csc(), csc);
  }
}

TEST(DcscMat, DenseMatrixAlsoRoundTrips) {
  const CscMat csc = testing::random_matrix(50, 60, 5.0, 9);
  const DcscMat d = DcscMat::from_csc(csc);
  EXPECT_EQ(d.to_csc(), csc);
}

TEST(DcscMat, EmptyMatrix) {
  const CscMat csc(10, 100000);
  const DcscMat d = DcscMat::from_csc(csc);
  EXPECT_EQ(d.nnz(), 0);
  EXPECT_EQ(d.nonempty_cols(), 0);
  EXPECT_EQ(d.to_csc().ncols(), 100000);
  EXPECT_LT(d.storage_bytes(), csc.storage_bytes() / 1000);
}

TEST(DcscMat, StorageBeatsCscWhenHypersparse) {
  // nnz = ~200 entries in a 1M-column matrix: CSC pays 8 MB of colptr,
  // DCSC pays O(nnz).
  const CscMat csc = hypersparse(1000, 1 << 20, 50, 4.0, 11);
  const DcscMat d = DcscMat::from_csc(csc);
  EXPECT_LT(d.storage_bytes() * 100, csc.storage_bytes());
}

TEST(DcscMat, FindColBinarySearch) {
  TripleMat t(4, 1000);
  t.push_back(0, 10, 1.0);
  t.push_back(1, 500, 2.0);
  t.push_back(2, 999, 3.0);
  const DcscMat d = DcscMat::from_csc(CscMat::from_triples(std::move(t)));
  EXPECT_EQ(d.find_col(10), 0);
  EXPECT_EQ(d.find_col(500), 1);
  EXPECT_EQ(d.find_col(999), 2);
  EXPECT_EQ(d.find_col(0), -1);
  EXPECT_EQ(d.find_col(11), -1);
  EXPECT_EQ(d.nonempty_rowids(1)[0], 1);
  EXPECT_DOUBLE_EQ(d.nonempty_vals(2)[0], 3.0);
}

TEST(HypersparseSpGemm, MatchesReferenceOnHypersparseByDense) {
  const CscMat a_csc = hypersparse(300, 4000, 60, 4.0, 12);
  const CscMat b = testing::random_matrix(4000, 30, 2.0, 13);
  const CscMat expected = reference_multiply<PlusTimes>(a_csc, b);
  const CscMat got =
      hypersparse_spgemm<PlusTimes>(DcscMat::from_csc(a_csc), b);
  testing::expect_mat_near(got, expected, 1e-9);
}

TEST(HypersparseSpGemm, MatchesReferenceOnDenseInputs) {
  const CscMat a = testing::random_matrix(40, 40, 4.0, 14);
  const CscMat expected = reference_multiply<PlusTimes>(a, a);
  testing::expect_mat_near(
      hypersparse_spgemm<PlusTimes>(DcscMat::from_csc(a), a), expected, 1e-9);
}

TEST(HypersparseSpGemm, Semirings) {
  const CscMat a = hypersparse(60, 600, 30, 3.0, 15);
  const CscMat b = testing::random_matrix(600, 25, 2.0, 16);
  testing::expect_mat_near(
      hypersparse_spgemm<MinPlus>(DcscMat::from_csc(a), b),
      reference_multiply<MinPlus>(a, b), 1e-12);
  testing::expect_mat_near(
      hypersparse_spgemm<MaxMin>(DcscMat::from_csc(a), b),
      reference_multiply<MaxMin>(a, b), 1e-12);
}

TEST(HypersparseSpGemmDcsc, FullyHypersparsePipelineMatchesReference) {
  const CscMat a = hypersparse(400, 5000, 50, 3.0, 18);
  const CscMat b = hypersparse(5000, 5000, 60, 3.0, 19);
  // Force some inner-dimension overlap so the product is nonempty.
  const CscMat expected = reference_multiply<PlusTimes>(a, b);
  const DcscMat got = hypersparse_spgemm_dcsc<PlusTimes>(
      DcscMat::from_csc(a), DcscMat::from_csc(b));
  got.check_valid();
  testing::expect_mat_near(got.to_csc(), expected, 1e-9);
}

TEST(HypersparseSpGemmDcsc, SelfMultiplyOnOverlappingPattern) {
  // A*A guarantees inner-dimension hits; checks nonempty-column pruning.
  const CscMat a = hypersparse(3000, 3000, 80, 4.0, 20);
  const CscMat expected = reference_multiply<PlusTimes>(a, a);
  const DcscMat d = DcscMat::from_csc(a);
  const DcscMat got = hypersparse_spgemm_dcsc<PlusTimes>(d, d);
  testing::expect_mat_near(got.to_csc(), expected, 1e-9);
  // Output stores only nonempty columns.
  EXPECT_LE(got.nonempty_cols(), 80);
}

TEST(HypersparseSpGemmDcsc, DisjointPatternsProduceEmpty) {
  TripleMat ta(10, 1000), tb(1000, 10);
  ta.push_back(0, 5, 1.0);   // A's only nonempty column: 5
  tb.push_back(700, 0, 1.0); // B's only nonzero row: 700 (never hits col 5)
  const DcscMat got = hypersparse_spgemm_dcsc<PlusTimes>(
      DcscMat::from_csc(CscMat::from_triples(std::move(ta))),
      DcscMat::from_csc(CscMat::from_triples(std::move(tb))));
  EXPECT_EQ(got.nnz(), 0);
  EXPECT_EQ(got.nonempty_cols(), 0);
}

TEST(HypersparseSpGemm, EmptyOperands) {
  const DcscMat a = DcscMat::from_csc(CscMat(10, 500));
  const CscMat b = testing::random_matrix(500, 5, 2.0, 17);
  const CscMat c = hypersparse_spgemm<PlusTimes>(a, b);
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_EQ(c.nrows(), 10);
  EXPECT_EQ(c.ncols(), 5);
}

}  // namespace
}  // namespace casp
