#include <gtest/gtest.h>

#include "sparse/serialize.hpp"
#include "test_util.hpp"

namespace casp {
namespace {

TEST(Serialize, RoundTripPreservesEverything) {
  const CscMat m = testing::random_matrix(41, 23, 3.5, 10);
  const auto buf = pack_csc(m);
  EXPECT_EQ(buf.size(), packed_size(m));
  const CscMat back = unpack_csc(buf);
  EXPECT_EQ(back, m);  // bitwise array equality, not just math equality
}

TEST(Serialize, EmptyMatrix) {
  const CscMat m(7, 5);
  const CscMat back = unpack_csc(pack_csc(m));
  EXPECT_EQ(back.nrows(), 7);
  EXPECT_EQ(back.ncols(), 5);
  EXPECT_EQ(back.nnz(), 0);
}

TEST(Serialize, ZeroDimensional) {
  const CscMat m(0, 0);
  const CscMat back = unpack_csc(pack_csc(m));
  EXPECT_EQ(back.nrows(), 0);
  EXPECT_EQ(back.ncols(), 0);
}

TEST(Serialize, PreservesUnsortedColumns) {
  // The wire format must not canonicalize: unsorted intermediates travel
  // between ranks during SUMMA.
  CscMat m(4, 1, {0, 3}, {2, 0, 1}, {1.0, 2.0, 3.0});
  EXPECT_FALSE(m.columns_sorted());
  const CscMat back = unpack_csc(pack_csc(m));
  EXPECT_EQ(back, m);
  EXPECT_FALSE(back.columns_sorted());
}

TEST(Serialize, RejectsTruncatedBuffer) {
  const CscMat m = testing::random_matrix(10, 10, 2.0, 11);
  auto buf = pack_csc(m);
  buf.resize(buf.size() - 1);
  EXPECT_THROW(unpack_csc(buf), std::logic_error);
}

TEST(Serialize, RejectsTrailingBytes) {
  const CscMat m = testing::random_matrix(10, 10, 2.0, 12);
  auto buf = pack_csc(m);
  buf.push_back(std::byte{0});
  EXPECT_THROW(unpack_csc(buf), std::logic_error);
}

}  // namespace
}  // namespace casp
