#include <gtest/gtest.h>

#include "sparse/serialize.hpp"
#include "test_util.hpp"

namespace casp {
namespace {

TEST(Serialize, RoundTripPreservesEverything) {
  const CscMat m = testing::random_matrix(41, 23, 3.5, 10);
  const auto buf = pack_csc(m);
  EXPECT_EQ(buf.size(), packed_size(m));
  const CscMat back = unpack_csc(buf);
  EXPECT_EQ(back, m);  // bitwise array equality, not just math equality
}

TEST(Serialize, EmptyMatrix) {
  const CscMat m(7, 5);
  const CscMat back = unpack_csc(pack_csc(m));
  EXPECT_EQ(back.nrows(), 7);
  EXPECT_EQ(back.ncols(), 5);
  EXPECT_EQ(back.nnz(), 0);
}

TEST(Serialize, ZeroDimensional) {
  const CscMat m(0, 0);
  const CscMat back = unpack_csc(pack_csc(m));
  EXPECT_EQ(back.nrows(), 0);
  EXPECT_EQ(back.ncols(), 0);
}

TEST(Serialize, PreservesUnsortedColumns) {
  // The wire format must not canonicalize: unsorted intermediates travel
  // between ranks during SUMMA.
  CscMat m(4, 1, {0, 3}, {2, 0, 1}, {1.0, 2.0, 3.0});
  EXPECT_FALSE(m.columns_sorted());
  const CscMat back = unpack_csc(pack_csc(m));
  EXPECT_EQ(back, m);
  EXPECT_FALSE(back.columns_sorted());
}

TEST(Serialize, RejectsTruncatedBuffer) {
  const CscMat m = testing::random_matrix(10, 10, 2.0, 11);
  auto buf = pack_csc(m);
  buf.resize(buf.size() - 1);
  EXPECT_THROW(unpack_csc(buf), std::logic_error);
}

TEST(Serialize, RejectsTrailingBytes) {
  const CscMat m = testing::random_matrix(10, 10, 2.0, 12);
  auto buf = pack_csc(m);
  buf.push_back(std::byte{0});
  EXPECT_THROW(unpack_csc(buf), std::logic_error);
}

TEST(Serialize, RepeatedViewsOfOnePayloadStayConsistent) {
  // unpack_csc_view memoizes validation per payload generation (the SUMMA
  // loop re-views each forwarded block every stage); repeated views of the
  // same payload must be identical, and a *different* corrupt payload must
  // still hit the strict first-contact path and be rejected.
  const CscMat m = testing::random_matrix(30, 20, 3.0, 13);
  const Payload payload = pack_csc_payload(m);
  const CscView first = unpack_csc_view(payload);
  for (int i = 0; i < 5; ++i) {
    const CscView again = unpack_csc_view(payload);
    EXPECT_EQ(again.colptr().data(), first.colptr().data());
    EXPECT_EQ(again.nnz(), m.nnz());
  }
  Payload truncated = pack_csc_payload(m);
  truncated = truncated.subview(0, truncated.size() - 8);
  EXPECT_THROW((void)unpack_csc_view(truncated), std::logic_error);
}

TEST(Serialize, MemoKeysOnBufferIdentityNotJustShape) {
  // Two equal-shaped payloads are distinct generations: corruption in the
  // second must be caught even right after the first validated cleanly.
  const CscMat m = testing::random_matrix(16, 16, 2.0, 14);
  const Payload good = pack_csc_payload(m);
  (void)unpack_csc_view(good);
  std::vector<std::byte> bytes = pack_csc(m);
  // Corrupt colptr[0] (first word after the 24-byte header).
  bytes[24] = std::byte{0x7f};
  EXPECT_THROW((void)unpack_csc_view(Payload::wrap(std::move(bytes))),
               std::logic_error);
}

}  // namespace
}  // namespace casp
