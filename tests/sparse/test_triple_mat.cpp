#include <gtest/gtest.h>

#include <cmath>

#include "sparse/triple_mat.hpp"

namespace casp {
namespace {

TEST(TripleMat, CanonicalizeSortsAndMergesDuplicates) {
  TripleMat m(4, 4);
  m.push_back(2, 1, 1.0);
  m.push_back(0, 0, 2.0);
  m.push_back(2, 1, 3.0);
  m.push_back(1, 1, 4.0);
  m.canonicalize();
  ASSERT_EQ(m.nnz(), 3);
  EXPECT_TRUE(m.is_canonical());
  EXPECT_EQ(m.entries()[0], (Triple{0, 0, 2.0}));
  EXPECT_EQ(m.entries()[1], (Triple{1, 1, 4.0}));
  EXPECT_EQ(m.entries()[2], (Triple{2, 1, 4.0}));  // 1.0 + 3.0
}

TEST(TripleMat, CanonicalizeDropZeros) {
  TripleMat m(3, 3);
  m.push_back(1, 1, 5.0);
  m.push_back(1, 1, -5.0);
  m.push_back(0, 2, 1.0);
  m.canonicalize(/*drop_zeros=*/true);
  ASSERT_EQ(m.nnz(), 1);
  EXPECT_EQ(m.entries()[0].col, 2);
}

TEST(TripleMat, IsCanonicalDetectsDisorderAndDuplicates) {
  TripleMat sorted(3, 3);
  sorted.push_back(0, 0, 1.0);
  sorted.push_back(1, 0, 1.0);
  sorted.push_back(0, 1, 1.0);
  EXPECT_TRUE(sorted.is_canonical());

  TripleMat dup(3, 3);
  dup.push_back(0, 0, 1.0);
  dup.push_back(0, 0, 2.0);
  EXPECT_FALSE(dup.is_canonical());

  TripleMat unsorted(3, 3);
  unsorted.push_back(0, 1, 1.0);
  unsorted.push_back(0, 0, 1.0);
  EXPECT_FALSE(unsorted.is_canonical());
}

TEST(TripleMat, BoundsCheckThrows) {
  std::vector<Triple> bad = {{5, 0, 1.0}};
  EXPECT_THROW(TripleMat(3, 3, std::move(bad)), std::logic_error);
}

TEST(TripleMat, MaxAbsDiff) {
  TripleMat a(2, 2), b(2, 2), c(2, 2);
  a.push_back(0, 0, 1.0);
  a.push_back(1, 1, 2.0);
  b.push_back(0, 0, 1.05);
  b.push_back(1, 1, 2.0);
  c.push_back(0, 1, 1.0);
  c.push_back(1, 1, 2.0);
  EXPECT_NEAR(max_abs_diff(a, b), 0.05, 1e-12);
  EXPECT_TRUE(std::isinf(max_abs_diff(a, c)));  // structure differs
  TripleMat shorter(2, 2);
  shorter.push_back(0, 0, 1.0);
  EXPECT_TRUE(std::isinf(max_abs_diff(a, shorter)));
}

TEST(TripleMat, EmptyMatrixIsCanonical) {
  TripleMat m(0, 0);
  EXPECT_TRUE(m.is_canonical());
  m.canonicalize();
  EXPECT_EQ(m.nnz(), 0);
}

}  // namespace
}  // namespace casp
