#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "sparse/mm_io.hpp"
#include "test_util.hpp"

namespace casp {
namespace {

TEST(MatrixMarket, WriteReadRoundTrip) {
  CscMat m = testing::random_matrix(25, 19, 3.0, 5);
  std::ostringstream out;
  write_matrix_market(out, m.to_triples());
  std::istringstream in(out.str());
  TripleMat back = read_matrix_market(in);
  testing::expect_mat_near(CscMat::from_triples(std::move(back)), m, 1e-15);
}

TEST(MatrixMarket, ReadsGeneralRealWithComments) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment line\n"
      "% another\n"
      "3 4 2\n"
      "1 1 2.5\n"
      "3 4 -1.0\n");
  const TripleMat m = read_matrix_market(in);
  EXPECT_EQ(m.nrows(), 3);
  EXPECT_EQ(m.ncols(), 4);
  ASSERT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.entries()[0], (Triple{0, 0, 2.5}));
  EXPECT_EQ(m.entries()[1], (Triple{2, 3, -1.0}));
}

TEST(MatrixMarket, ExpandsSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 1.0\n"
      "2 1 2.0\n"
      "3 2 3.0\n");
  TripleMat m = read_matrix_market(in);
  m.canonicalize();
  EXPECT_EQ(m.nnz(), 5);  // diagonal stays single; off-diagonals mirrored
}

TEST(MatrixMarket, PatternEntriesReadAsOnes) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const TripleMat m = read_matrix_market(in);
  ASSERT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.entries()[0].val, 1.0);
}

TEST(MatrixMarket, RejectsMalformedInput) {
  {
    std::istringstream in("not a banner\n1 1 0\n");
    EXPECT_THROW(read_matrix_market(in), InvalidArgument);
  }
  {
    std::istringstream in("%%MatrixMarket matrix array real general\n");
    EXPECT_THROW(read_matrix_market(in), InvalidArgument);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n");  // truncated
    EXPECT_THROW(read_matrix_market(in), InvalidArgument);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "5 1 1.0\n");  // out of bounds
    EXPECT_THROW(read_matrix_market(in), std::logic_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate complex general\n"
        "1 1 1\n"
        "1 1 1.0 0.0\n");  // unsupported field
    EXPECT_THROW(read_matrix_market(in), InvalidArgument);
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/casp_mm_test.mtx";
  CscMat m = testing::random_matrix(12, 12, 2.0, 6);
  write_matrix_market_file(path, m.to_triples());
  TripleMat back = read_matrix_market_file(path);
  testing::expect_mat_near(CscMat::from_triples(std::move(back)), m, 1e-15);
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path.mtx"),
               InvalidArgument);
}

}  // namespace
}  // namespace casp
