// Degraded-grid recovery: checkpoints written by one grid shape, consumed
// by another (DESIGN.md §5j shrink, §5k regrow). The ResumeCache unit
// tests pin the exact-coverage and reindexing contracts; the regrid
// matrices prove the headline guarantee in both directions — a job
// relaunched on a survivor OR regrown grid with redistributed checkpoints
// produces C bit-identically (tolerance 0.0), whether every batch comes
// from the cache (fault-free full coverage) or only a prefix does
// (permanent crash mid-run).
//
// Cross-grid bit-identity of *computed* batches only holds when summation
// order cannot matter, so these tests use integer-valued inputs (exact in
// doubles regardless of association). Cached batches are bit-exact copies
// for any values — the integer restriction is about the recomputed tail
// and the different-grid baseline, not the cache.
//
// The Recovery* suite below joins check.sh stage (g)'s CASP_FAULT_SEED
// sweep: each seed perm-kills a different rank at a different op.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "apps/mcl.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/redistribute.hpp"
#include "grid/dist.hpp"
#include "sparse/triple_mat.hpp"
#include "summa/batched.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

namespace fs = std::filesystem;

std::uint64_t sweep_seed() {
  const char* env = std::getenv("CASP_FAULT_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/casp_redist_" + name +
                          "_s" + std::to_string(sweep_seed());
  fs::remove_all(dir);
  return dir;
}

std::int64_t counter_sum(const vmpi::RunResult& result,
                         const std::string& name) {
  std::int64_t sum = 0;
  for (const auto& rec : result.recorders) {
    const auto it = rec.counters().find(name);
    if (it != rec.counters().end()) sum += it->second;
  }
  return sum;
}

// ER matrix with values forced onto small integers: products of these are
// exact in double no matter how a grid shape associates the partial sums,
// which is what makes a cross-grid tolerance-0.0 comparison legitimate.
CscMat integer_matrix(Index rows, Index cols, double density,
                      std::uint64_t seed) {
  const CscMat m = testing::random_matrix(rows, cols, density, seed);
  TripleMat t(rows, cols);
  for (Index j = 0; j < m.ncols(); ++j) {
    const auto ids = m.col_rowids(j);
    const auto vs = m.col_vals(j);
    for (std::size_t k = 0; k < ids.size(); ++k)
      t.push_back(ids[k], j, 1.0 + std::floor(vs[k] * 8.0));
  }
  return CscMat::from_triples(std::move(t));
}

struct GridRun {
  CscMat c;
  vmpi::RunResult result;
  Index final_batches = 0;
};

// One batched SpGEMM a*a on a p-rank grid. ckpt_dir non-empty => write
// batch-boundary checkpoints there (every=1); resume non-null => consume
// redistributed state from a previous grid shape.
GridRun run_spgemm(int p, int layers, const CscMat& a,
                   const SummaOptions& base_opts, const std::string& ckpt_dir,
                   const ckpt::ResumeCache* resume) {
  GridRun out;
  out.result = vmpi::run(p, [&](vmpi::Comm& world) {
    SummaOptions opts = base_opts;
    ckpt::Checkpointer ck;  // disabled unless a directory was given
    if (!ckpt_dir.empty()) {
      ck = ckpt::Checkpointer(ckpt_dir, world.rank(), /*every=*/1,
                              &world.recorder());
      opts.ckpt = &ck;
    }
    opts.resume = resume;
    Grid3D grid(world, layers);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    BatchedResult r = batched_summa3d<PlusTimes>(grid, da, db, 0, opts,
                                                 nullptr, /*keep_output=*/true);
    CscMat full = gather_dist(grid, r.c);
    if (world.rank() == 0) {
      out.c = std::move(full);
      out.final_batches = r.final_batches;
    }
  });
  return out;
}

// ---------------------------------------------------------------------------
// ResumeCache unit contracts.

TEST(RedistributeCache, CoverageIsExactNotAtLeast) {
  ckpt::ResumeCache cache(4, 4);
  EXPECT_TRUE(cache.empty());
  EXPECT_EQ(cache.global_rows(), 4);
  EXPECT_EQ(cache.global_cols(), 4);
  EXPECT_FALSE(cache.cols_covered(0, 1));

  // Top half of columns [0, 4).
  {
    TripleMat t(2, 4);
    t.push_back(0, 0, 5.0);
    t.push_back(1, 2, 7.0);
    cache.add_piece(
        ckpt::CachedPiece{0, 2, 0, 4, CscMat::from_triples(std::move(t))});
  }
  EXPECT_FALSE(cache.cols_covered(0, 4)) << "half-covered must not count";

  // Bottom half of columns [0, 2) only.
  {
    TripleMat t(2, 2);
    t.push_back(0, 1, 9.0);
    cache.add_piece(
        ckpt::CachedPiece{2, 2, 0, 2, CscMat::from_triples(std::move(t))});
  }
  EXPECT_TRUE(cache.cols_covered(0, 2));
  EXPECT_FALSE(cache.cols_covered(0, 3));
  EXPECT_FALSE(cache.cols_covered(2, 4));
  // Out-of-range queries refuse rather than throw (callers branch on it).
  EXPECT_FALSE(cache.cols_covered(-1, 2));
  EXPECT_FALSE(cache.cols_covered(0, 5));

  // An overlapping duplicate piece pushes the tally PAST global_rows: the
  // exact-equality test must refuse coverage (extraction would double
  // entries), degrading to recomputation instead of wrong values.
  {
    TripleMat t(2, 1);
    cache.add_piece(
        ckpt::CachedPiece{2, 2, 1, 1, CscMat::from_triples(std::move(t))});
  }
  EXPECT_FALSE(cache.cols_covered(1, 2)) << "overlap must break coverage";
  EXPECT_TRUE(cache.cols_covered(0, 1)) << "other columns stay covered";
}

TEST(RedistributeCache, ExtractReindexesBitExactly) {
  ckpt::ResumeCache cache(4, 3);
  {
    TripleMat t(2, 3);
    t.push_back(0, 0, 1.5);
    t.push_back(1, 1, 2.5);
    cache.add_piece(
        ckpt::CachedPiece{0, 2, 0, 3, CscMat::from_triples(std::move(t))});
  }
  {
    TripleMat t(2, 3);
    t.push_back(1, 0, 3.5);
    t.push_back(0, 2, 4.5);
    cache.add_piece(
        ckpt::CachedPiece{2, 2, 0, 3, CscMat::from_triples(std::move(t))});
  }
  ASSERT_TRUE(cache.cols_covered(0, 3));

  // Whole shape: global coordinates restored from piece-local ones.
  const CscMat whole = cache.extract(0, 4, 0, 3);
  ASSERT_EQ(whole.nrows(), 4);
  ASSERT_EQ(whole.ncols(), 3);
  ASSERT_EQ(whole.nnz(), 4);
  EXPECT_EQ(whole.col_rowids(0)[0], 0);
  EXPECT_EQ(whole.col_vals(0)[0], 1.5);
  EXPECT_EQ(whole.col_rowids(0)[1], 3);
  EXPECT_EQ(whole.col_vals(0)[1], 3.5);
  EXPECT_EQ(whole.col_rowids(1)[0], 1);
  EXPECT_EQ(whole.col_vals(1)[0], 2.5);
  EXPECT_EQ(whole.col_rowids(2)[0], 2);
  EXPECT_EQ(whole.col_vals(2)[0], 4.5);

  // A sub-block reindexes to ITS origin: global row 3 becomes local row 2
  // of an extract starting at row 1.
  const CscMat block = cache.extract(1, 4, 0, 1);
  ASSERT_EQ(block.nrows(), 3);
  ASSERT_EQ(block.ncols(), 1);
  ASSERT_EQ(block.nnz(), 1);
  EXPECT_EQ(block.col_rowids(0)[0], 2);
  EXPECT_EQ(block.col_vals(0)[0], 3.5);
}

TEST(RedistributeCache, RejectsOutOfShapePieces) {
  ckpt::ResumeCache cache(4, 4);
  TripleMat t(2, 2);
  EXPECT_THROW(cache.add_piece(ckpt::CachedPiece{
                   3, 2, 0, 2, CscMat::from_triples(std::move(t))}),
               std::logic_error);
  TripleMat t2(3, 2);  // matrix dims disagree with declared row_count
  EXPECT_THROW(cache.add_piece(ckpt::CachedPiece{
                   0, 2, 0, 2, CscMat::from_triples(std::move(t2))}),
               std::logic_error);
}

TEST(RedistributeScan, MissingOrForeignDirectoryYieldsEmptyCache) {
  EXPECT_TRUE(ckpt::redistribute_for_grid("", "job").empty());
  EXPECT_TRUE(
      ckpt::redistribute_for_grid("/nonexistent/casp/dir", "job").empty());
  const std::string dir = fresh_dir("foreign");
  fs::create_directories(dir);
  EXPECT_TRUE(ckpt::redistribute_for_grid(dir, "job").empty());
}

// ---------------------------------------------------------------------------
// Fault-free regrid matrix: full coverage => every batch served from the
// cache, zero recomputation, bit-identical output on every target shape.
// The cache stores global coordinates, so the same helper proves both
// directions — shrink onto a survivor grid and regrow onto a larger one.

void expect_full_coverage_regrid(int p_from, int p_to,
                                 const SummaOptions& base_opts,
                                 const std::string& tag) {
  const Index n = 24;
  const CscMat a = integer_matrix(n, n, 3.0, 160);
  const std::string ck_dir = fresh_dir("shrink_" + tag);

  const GridRun full = run_spgemm(p_from, 1, a, base_opts, ck_dir, nullptr);
  ASSERT_GE(full.final_batches, base_opts.force_batches);

  const ckpt::ResumeCache cache = ckpt::redistribute_for_grid(
      ck_dir, summa_ckpt_job_id(n, n, n, a.nnz(), a.nnz(), ""));
  ASSERT_FALSE(cache.empty());
  ASSERT_TRUE(cache.cols_covered(0, n)) << "fault-free run must cover all C";

  const GridRun shrunk = run_spgemm(p_to, 1, a, base_opts, "", &cache);
  testing::expect_mat_near(shrunk.c, full.c, 0.0);
  // Every batch on every survivor rank came from the cache.
  EXPECT_EQ(counter_sum(shrunk.result, "summa.cached_batches"),
            static_cast<std::int64_t>(p_to) * shrunk.final_batches);
}

TEST(RedistributeShrink, SixteenToNine) {
  SummaOptions opts;
  opts.force_batches = 3;
  expect_full_coverage_regrid(16, 9, opts, "16to9");
}

TEST(RedistributeShrink, NineToFour) {
  SummaOptions opts;
  opts.force_batches = 3;
  expect_full_coverage_regrid(9, 4, opts, "9to4");
}

TEST(RedistributeShrink, FourToOne) {
  SummaOptions opts;
  opts.force_batches = 3;
  expect_full_coverage_regrid(4, 1, opts, "4to1");
}

TEST(RedistributeShrink, SparseCommVariant) {
  SummaOptions opts;
  opts.force_batches = 3;
  opts.sparse_comm = true;
  expect_full_coverage_regrid(9, 4, opts, "sparse");
}

TEST(RedistributeShrink, BlockingScheduleVariant) {
  SummaOptions opts;
  opts.force_batches = 3;
  opts.pipeline = false;
  expect_full_coverage_regrid(9, 4, opts, "blocking");
}

TEST(RedistributeShrink, LayeredWriterGrid) {
  // The writer grid uses l=2 layers; the coordinates are grid-independent
  // so a flat survivor grid still consumes them.
  SummaOptions opts;
  opts.force_batches = 2;
  const Index n = 24;
  const CscMat a = integer_matrix(n, n, 3.0, 161);
  const std::string ck_dir = fresh_dir("shrink_layered");

  const GridRun full = run_spgemm(8, 2, a, opts, ck_dir, nullptr);
  const ckpt::ResumeCache cache = ckpt::redistribute_for_grid(
      ck_dir, summa_ckpt_job_id(n, n, n, a.nnz(), a.nnz(), ""));
  ASSERT_TRUE(cache.cols_covered(0, n));
  const GridRun shrunk = run_spgemm(4, 1, a, opts, "", &cache);
  testing::expect_mat_near(shrunk.c, full.c, 0.0);
}

TEST(RedistributeShrink, MismatchedShapeCacheIsIgnored) {
  // A cache built for a different product shape must be disarmed by the
  // consumer, not trip its collectives: the run recomputes everything.
  SummaOptions opts;
  opts.force_batches = 2;
  const Index n = 24;
  const CscMat a = integer_matrix(n, n, 3.0, 162);
  const CscMat other = integer_matrix(n + 2, n + 2, 3.0, 163);
  const std::string ck_dir = fresh_dir("shrink_mismatch");

  (void)run_spgemm(4, 1, other, opts, ck_dir, nullptr);
  const ckpt::ResumeCache cache = ckpt::redistribute_for_grid(
      ck_dir,
      summa_ckpt_job_id(n + 2, n + 2, n + 2, other.nnz(), other.nnz(), ""));
  ASSERT_FALSE(cache.empty());

  const GridRun plain = run_spgemm(4, 1, a, opts, "", nullptr);
  const GridRun with_cache = run_spgemm(4, 1, a, opts, "", &cache);
  testing::expect_mat_near(with_cache.c, plain.c, 0.0);
  EXPECT_EQ(counter_sum(with_cache.result, "summa.cached_batches"), 0);
}

// ---------------------------------------------------------------------------
// Expand direction: the regrow path (DESIGN.md §5k) replays a degraded
// grid's banked batches onto a LARGER grid — the cache coordinates are
// global, so nothing in redistribute is direction-aware. Full coverage
// still means zero recomputation on the bigger shape.

TEST(RedistributeExpand, OneToFour) {
  SummaOptions opts;
  opts.force_batches = 3;
  expect_full_coverage_regrid(1, 4, opts, "1to4");
}

TEST(RedistributeExpand, FourToNine) {
  SummaOptions opts;
  opts.force_batches = 3;
  expect_full_coverage_regrid(4, 9, opts, "4to9");
}

TEST(RedistributeExpand, NineToSixteen) {
  SummaOptions opts;
  opts.force_batches = 3;
  expect_full_coverage_regrid(9, 16, opts, "9to16");
}

TEST(RedistributeExpand, SixteenToFourToSixteenRoundTrip) {
  // Shrink-then-regrow round trip: 16 banks the run, 4 consumes it while
  // re-banking every (cached) batch into its own directory, and 16 consumes
  // THAT. Cached batches flow through the same emit path as computed ones,
  // so the second directory is a complete bank in the 4-grid's shape and
  // the regrown run is fully cache-served and bit-identical.
  SummaOptions opts;
  opts.force_batches = 3;
  const Index n = 24;
  const CscMat a = integer_matrix(n, n, 3.0, 165);
  const std::string job = summa_ckpt_job_id(n, n, n, a.nnz(), a.nnz(), "");
  const std::string dir16 = fresh_dir("roundtrip_16");
  const std::string dir4 = fresh_dir("roundtrip_4");

  const GridRun full = run_spgemm(16, 1, a, opts, dir16, nullptr);
  const ckpt::ResumeCache cache16 = ckpt::redistribute_for_grid(dir16, job);
  ASSERT_TRUE(cache16.cols_covered(0, n));

  const GridRun mid = run_spgemm(4, 1, a, opts, dir4, &cache16);
  testing::expect_mat_near(mid.c, full.c, 0.0);
  EXPECT_EQ(counter_sum(mid.result, "summa.cached_batches"),
            static_cast<std::int64_t>(4) * mid.final_batches);

  const ckpt::ResumeCache cache4 = ckpt::redistribute_for_grid(dir4, job);
  ASSERT_TRUE(cache4.cols_covered(0, n));
  const GridRun regrown = run_spgemm(16, 1, a, opts, "", &cache4);
  testing::expect_mat_near(regrown.c, full.c, 0.0);
  EXPECT_EQ(counter_sum(regrown.result, "summa.cached_batches"),
            static_cast<std::int64_t>(16) * regrown.final_batches);
}

// ---------------------------------------------------------------------------
// Permanent crash mid-run on the big grid, finish on the survivor grid.
// Recovery* prefix: check.sh stage (g) sweeps this across fault seeds.

TEST(RecoveryRedistribute, PermCrashThenShrinkIsBitIdentical) {
  const int p_from = 9, p_to = 4;
  const Index n = 24;
  const CscMat a = integer_matrix(n, n, 3.0, 164);
  SummaOptions opts;
  opts.force_batches = 4;

  // Fault-free reference on the ORIGINAL grid (the output the user was
  // promised before the hardware died).
  const GridRun reference = run_spgemm(p_from, 1, a, opts, "", nullptr);

  // Perm-kill one rank mid-run; each sweep seed picks a different victim
  // and op. The run must fail classified — permanent crashes are not
  // survivable on the same grid.
  const std::string ck_dir = fresh_dir("perm_shrink");
  vmpi::FaultPlan plan;
  plan.seed = sweep_seed();
  plan.perm_crash_rank =
      static_cast<int>(sweep_seed() % static_cast<std::uint64_t>(p_from));
  // Every rank performs ~40 vmpi ops in this run (root duties shift the
  // exact count), so the crash op must stay well below that for every
  // sweep seed — ops 12..24 land between the distribution phase and the
  // middle batches.
  plan.perm_crash_op = 12 + 3 * (sweep_seed() % 5);
  vmpi::RunOptions ropts;
  ropts.faults = plan;
  ropts.capture_failure = true;
  vmpi::RunResult crashed = vmpi::run(
      p_from,
      [&](vmpi::Comm& world) {
        ckpt::Checkpointer ck(ck_dir, world.rank(), /*every=*/1,
                              &world.recorder());
        SummaOptions copts = opts;
        copts.ckpt = &ck;
        Grid3D grid(world, 1);
        const DistMat3D da = distribute_a_style(grid, a);
        const DistMat3D db = distribute_b_style(grid, a);
        (void)batched_summa3d<PlusTimes>(grid, da, db, 0, copts, nullptr,
                                         /*keep_output=*/false);
      },
      ropts);
  ASSERT_TRUE(crashed.failed());
  EXPECT_EQ(crashed.failure->kind, "permanent_crash");
  EXPECT_EQ(crashed.failure->rank, plan.perm_crash_rank);

  // Redistribute whatever the dead grid banked onto the survivor grid and
  // finish there. Partial coverage is fine — uncovered batches recompute —
  // and the result must equal the original grid's fault-free output
  // exactly.
  const ckpt::ResumeCache cache = ckpt::redistribute_for_grid(
      ck_dir, summa_ckpt_job_id(n, n, n, a.nnz(), a.nnz(), ""));
  const GridRun shrunk =
      run_spgemm(p_to, 1, a, opts, "", cache.empty() ? nullptr : &cache);
  testing::expect_mat_near(shrunk.c, reference.c, 0.0);
}

TEST(RecoveryRedistribute, PermCrashThenRegrowIsBitIdentical) {
  // The mirror drill: the SMALL grid dies mid-run and a healed pool offers
  // a LARGER one. Partial coverage regrows — covered batches are copied,
  // the tail recomputes on the 9-grid — and the result still equals the
  // 4-grid's fault-free output bit-for-bit.
  const int p_from = 4, p_to = 9;
  const Index n = 24;
  const CscMat a = integer_matrix(n, n, 3.0, 166);
  SummaOptions opts;
  opts.force_batches = 4;

  const GridRun reference = run_spgemm(p_from, 1, a, opts, "", nullptr);

  const std::string ck_dir = fresh_dir("perm_regrow");
  vmpi::FaultPlan plan;
  plan.seed = sweep_seed();
  plan.perm_crash_rank =
      static_cast<int>(sweep_seed() % static_cast<std::uint64_t>(p_from));
  plan.perm_crash_op = 12 + 3 * (sweep_seed() % 5);
  vmpi::RunOptions ropts;
  ropts.faults = plan;
  ropts.capture_failure = true;
  vmpi::RunResult crashed = vmpi::run(
      p_from,
      [&](vmpi::Comm& world) {
        ckpt::Checkpointer ck(ck_dir, world.rank(), /*every=*/1,
                              &world.recorder());
        SummaOptions copts = opts;
        copts.ckpt = &ck;
        Grid3D grid(world, 1);
        const DistMat3D da = distribute_a_style(grid, a);
        const DistMat3D db = distribute_b_style(grid, a);
        (void)batched_summa3d<PlusTimes>(grid, da, db, 0, copts, nullptr,
                                         /*keep_output=*/false);
      },
      ropts);
  ASSERT_TRUE(crashed.failed());
  EXPECT_EQ(crashed.failure->kind, "permanent_crash");

  const ckpt::ResumeCache cache = ckpt::redistribute_for_grid(
      ck_dir, summa_ckpt_job_id(n, n, n, a.nnz(), a.nnz(), ""));
  const GridRun regrown =
      run_spgemm(p_to, 1, a, opts, "", cache.empty() ? nullptr : &cache);
  testing::expect_mat_near(regrown.c, reference.c, 0.0);
}

// ---------------------------------------------------------------------------
// MCL shrinks natively: its checkpoint job id and iterate are both
// grid-independent (the global network is re-replicated on relaunch), so a
// survivor grid resumes the iteration trajectory without redistribution.

TEST(RecoveryRedistributeMcl, PermCrashResumesOnSmallerGrid) {
  const int p_from = 9, p_to = 4;
  TripleMat t(24, 24);
  for (Index block = 0; block < 2; ++block)
    for (Index i = 0; i < 12; ++i)
      for (Index j = 0; j < 12; ++j)
        t.push_back(block * 12 + i, block * 12 + j,
                    1.0 + 0.1 * static_cast<double>((i * 7 + j * 13) % 5));
  for (Index i = 0; i < 12; ++i) t.push_back(i, 12 + i, 0.05);
  const CscMat network = CscMat::from_triples(std::move(t));
  MclParams params;
  params.max_iterations = 30;

  MclResult base;
  vmpi::run(p_to, [&](vmpi::Comm& world) {
    Grid3D grid(world, 1);
    MclResult r = mcl_cluster_distributed(grid, network, params);
    if (world.rank() == 0) base = std::move(r);
  });
  ASSERT_GE(base.iterations, 3);

  const std::string ck_dir = fresh_dir("mcl_shrink");
  vmpi::FaultPlan plan;
  plan.seed = sweep_seed();
  plan.perm_crash_rank =
      static_cast<int>(sweep_seed() % static_cast<std::uint64_t>(p_from));
  plan.perm_crash_op = 60 + 10 * sweep_seed();
  vmpi::RunOptions ropts;
  ropts.faults = plan;
  ropts.capture_failure = true;
  vmpi::RunResult crashed = vmpi::run(
      p_from,
      [&](vmpi::Comm& world) {
        ckpt::Checkpointer ck(ck_dir, world.rank(), /*every=*/1,
                              &world.recorder());
        SummaOptions opts;
        opts.ckpt = &ck;
        Grid3D grid(world, 1);
        (void)mcl_cluster_distributed(grid, network, params, 0, opts);
      },
      ropts);
  ASSERT_TRUE(crashed.failed());
  EXPECT_EQ(crashed.failure->kind, "permanent_crash");

  // Relaunch on the survivor width with the SAME checkpoint directory: the
  // snapshot carries the full re-replicated iterate, so the 4-rank world
  // resumes whatever common iteration its ranks banked (old ranks 0..3
  // wrote files the new ranks 0..3 read natively). MCL iterates are
  // real-valued, so iterations computed on the 9-grid are not bit-bound to
  // the 4-grid's — the recovery guarantee here is structural: the job
  // finishes and finds the same partition as the fault-free reference.
  MclResult recovered;
  vmpi::RunResult resumed = vmpi::run(p_to, [&](vmpi::Comm& world) {
    ckpt::Checkpointer ck(ck_dir, world.rank(), /*every=*/1,
                          &world.recorder());
    SummaOptions opts;
    opts.ckpt = &ck;
    Grid3D grid(world, 1);
    MclResult r = mcl_cluster_distributed(grid, network, params, 0, opts);
    if (world.rank() == 0) recovered = std::move(r);
  });
  ASSERT_FALSE(resumed.failed());

  const auto canonical = [](const std::vector<Index>& cl) {
    std::map<Index, Index> remap;
    std::vector<Index> out;
    out.reserve(cl.size());
    for (const Index c : cl)
      out.push_back(remap.emplace(c, static_cast<Index>(remap.size()))
                        .first->second);
    return out;
  };
  EXPECT_EQ(recovered.num_clusters, base.num_clusters);
  EXPECT_EQ(canonical(recovered.cluster_of), canonical(base.cluster_of));
}

}  // namespace
}  // namespace casp
