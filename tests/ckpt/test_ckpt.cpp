// Checkpoint subsystem unit tests: the casp.ckpt.v1 snapshot container
// (strict serialize/deserialize, checksum, torn-tail detection) and the
// generation-numbered store (atomic writes, pruning, job-identity
// filtering, fallback to generation N−1).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/snapshot.hpp"
#include "test_util.hpp"

namespace casp::ckpt {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/casp_ckpt_" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<fs::path> files_in(const std::string& dir) {
  std::vector<fs::path> out;
  if (!fs::is_directory(dir)) return out;
  for (const auto& e : fs::directory_iterator(dir)) out.push_back(e.path());
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot container.

TEST(Snapshot, RoundTripsTypedSections) {
  Snapshot snap;
  snap.set_u64("pieces", 7);
  snap.set_string("note", "batch boundary");
  snap.set_array<std::int64_t>("meta", {3, -1, 42});

  const Snapshot back = Snapshot::deserialize(snap.serialize());
  EXPECT_EQ(back.u64("pieces"), 7u);
  EXPECT_EQ(back.string("note"), "batch boundary");
  EXPECT_EQ(back.array<std::int64_t>("meta"),
            (std::vector<std::int64_t>{3, -1, 42}));
  EXPECT_TRUE(back.has("pieces"));
  EXPECT_FALSE(back.has("absent"));
  EXPECT_THROW(back.u64("absent"), CkptError);
}

TEST(Snapshot, MatrixSectionIsBitExact) {
  const CscMat m = testing::random_matrix(23, 17, 4.0, 99);
  Snapshot snap;
  snap.set_matrix("m", m);
  const CscMat back =
      Snapshot::deserialize(snap.serialize()).matrix("m");
  // Recovery correctness demands bit-exactness (tolerance 0.0), not
  // closeness: the resumed run must be byte-identical to the unbroken one.
  testing::expect_mat_near(back, m, 0.0);
}

TEST(Snapshot, SerializeIsDeterministic) {
  auto make = [] {
    Snapshot s;
    s.set_u64("iter", 5);
    s.set_string("tag", "x");
    return s.serialize();
  };
  EXPECT_EQ(make(), make());
}

TEST(Snapshot, ChecksumFlipIsDetected) {
  Snapshot snap;
  snap.set_u64("iter", 3);
  snap.set_array<double>("vals", {1.0, 2.0, 3.0});
  std::vector<std::byte> buf = snap.serialize();
  // Flip one bit in every byte position in turn: no single-bit corruption
  // anywhere in the file may deserialize cleanly.
  for (std::size_t i = 0; i < buf.size(); ++i) {
    std::vector<std::byte> corrupt = buf;
    corrupt[i] ^= std::byte{0x10};
    EXPECT_THROW(Snapshot::deserialize(corrupt), CkptError)
        << "bit flip at byte " << i << " went undetected";
  }
}

TEST(Snapshot, TornTailsAndGarbageAreRejected) {
  Snapshot snap;
  snap.set_u64("iter", 3);
  snap.set_string("tag", "torn-write-probe");
  const std::vector<std::byte> buf = snap.serialize();
  // Every proper prefix is a torn write; none may load.
  for (std::size_t keep = 0; keep < buf.size(); ++keep) {
    std::vector<std::byte> torn(buf.begin(),
                                buf.begin() + static_cast<long>(keep));
    EXPECT_THROW(Snapshot::deserialize(torn), CkptError)
        << "prefix of " << keep << " bytes went undetected";
  }
  // Trailing garbage after a valid snapshot is also rejected.
  std::vector<std::byte> padded = buf;
  padded.push_back(std::byte{0});
  EXPECT_THROW(Snapshot::deserialize(padded), CkptError);
  // So is a buffer that is plausible-length but not a snapshot at all.
  std::vector<std::byte> noise(64, std::byte{0x5a});
  EXPECT_THROW(Snapshot::deserialize(noise), CkptError);
}

// ---------------------------------------------------------------------------
// Generation store.

TEST(CheckpointStore, GenerationsIncreaseAndOldOnesArePruned) {
  const std::string dir = fresh_dir("generations");
  Checkpointer ck(dir, /*rank=*/0);
  ASSERT_TRUE(ck.enabled());
  for (std::uint64_t i = 1; i <= 4; ++i) {
    Snapshot snap;
    snap.set_u64("iter", i);
    ck.save("mcl", "job-a", std::move(snap));
  }
  const auto loaded = ck.load_all("mcl", "job-a");
  // Newest first; only the newest and its predecessor are retained.
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].generation, 4);
  EXPECT_EQ(loaded[0].snap.u64("iter"), 4u);
  EXPECT_EQ(loaded[1].generation, 3);
  EXPECT_EQ(loaded[1].snap.u64("iter"), 3u);
  // Atomicity leaves no stray tmp files behind.
  for (const fs::path& p : files_in(dir))
    EXPECT_EQ(p.extension(), ".ckpt") << p;
}

TEST(CheckpointStore, DisabledCheckpointerIsInert) {
  const Checkpointer ck;
  EXPECT_FALSE(ck.enabled());
  EXPECT_FALSE(ck.due(1));
  EXPECT_FALSE(ck.due(100));
}

TEST(CheckpointStore, DueFollowsTheCadence) {
  const std::string dir = fresh_dir("cadence");
  Checkpointer every3(dir, /*rank=*/0, /*every=*/3);
  EXPECT_FALSE(every3.due(0));
  EXPECT_FALSE(every3.due(1));
  EXPECT_FALSE(every3.due(2));
  EXPECT_TRUE(every3.due(3));
  EXPECT_FALSE(every3.due(4));
  EXPECT_TRUE(every3.due(6));
}

TEST(CheckpointStore, TornNewestGenerationFallsBackToPrevious) {
  const std::string dir = fresh_dir("torn");
  Checkpointer ck(dir, /*rank=*/2);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    Snapshot snap;
    snap.set_u64("iter", i);
    snap.set_array<double>("payload", std::vector<double>(256, double(i)));
    ck.save("mcl", "job-t", std::move(snap));
  }
  // Tear the newest generation mid-write: truncate it to half its size,
  // as if the machine died during the write (the atomic rename makes this
  // scenario require a torn *filesystem*, but the store must still treat
  // a short file as invalid rather than trusting the name).
  const std::string newest = dir + "/mcl-r2-g3.ckpt";
  ASSERT_TRUE(fs::exists(newest));
  const auto size = fs::file_size(newest);
  fs::resize_file(newest, size / 2);

  const auto loaded = ck.load_all("mcl", "job-t");
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].generation, 2);
  EXPECT_EQ(loaded[0].snap.u64("iter"), 2u);
}

TEST(CheckpointStore, CorruptedNewestGenerationIsNeverLoaded) {
  const std::string dir = fresh_dir("corrupt");
  Checkpointer ck(dir, /*rank=*/0);
  for (std::uint64_t i = 1; i <= 2; ++i) {
    Snapshot snap;
    snap.set_u64("iter", i);
    ck.save("summa", "job-c", std::move(snap));
  }
  // Flip one byte in the middle of the newest file: the checksum must
  // catch it and load_all must serve generation 1 instead.
  const std::string newest = dir + "/summa-r0-g2.ckpt";
  std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekp(static_cast<std::streamoff>(fs::file_size(newest) / 2));
  f.put('\x7f');
  f.close();

  const auto loaded = ck.load_all("summa", "job-c");
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].generation, 1);
  EXPECT_EQ(loaded[0].snap.u64("iter"), 1u);
}

TEST(CheckpointStore, ForeignJobSnapshotsAreIgnored) {
  const std::string dir = fresh_dir("jobid");
  Checkpointer ck(dir, /*rank=*/0);
  Snapshot snap;
  snap.set_u64("iter", 9);
  ck.save("mcl", "job-old|n=100", std::move(snap));
  // A run with different parameters (different job id) must not resume
  // from the stale snapshot, even though scope and rank match.
  EXPECT_TRUE(ck.load_all("mcl", "job-new|n=200").empty());
  ASSERT_EQ(ck.load_all("mcl", "job-old|n=100").size(), 1u);
}

TEST(CheckpointStore, ScopesAndRanksAreIsolated) {
  const std::string dir = fresh_dir("scopes");
  Checkpointer r0(dir, /*rank=*/0);
  Checkpointer r1(dir, /*rank=*/1);
  Snapshot a;
  a.set_u64("iter", 1);
  r0.save("summa", "job", std::move(a));
  Snapshot b;
  b.set_u64("iter", 2);
  r1.save("summa", "job", std::move(b));
  Snapshot c;
  c.set_u64("iter", 3);
  r0.save("mcl", "job", std::move(c));

  ASSERT_EQ(r0.load_all("summa", "job").size(), 1u);
  EXPECT_EQ(r0.load_all("summa", "job")[0].snap.u64("iter"), 1u);
  ASSERT_EQ(r1.load_all("summa", "job").size(), 1u);
  EXPECT_EQ(r1.load_all("summa", "job")[0].snap.u64("iter"), 2u);
  ASSERT_EQ(r0.load_all("mcl", "job").size(), 1u);
  EXPECT_EQ(r0.load_all("mcl", "job")[0].snap.u64("iter"), 3u);
}

}  // namespace
}  // namespace casp::ckpt
