// End-to-end crash recovery: a job killed mid-run by an injected fault,
// supervised by vmpi::run_supervised, must fast-forward from the newest
// valid checkpoint generation and finish with results bit-identical to the
// fault-free run — equal product matrices (tolerance 0.0), byte-identical
// streamed batch files, identical MCL cluster assignments.
//
// The Recovery* suites are the body of tools/check.sh stage (g): they read
// CASP_FAULT_SEED (default 1) so the same binaries sweep several crash
// schedules — each seed kills a different rank (seed % p) at a
// seed-dependent op.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/batch_io.hpp"
#include "apps/mcl.hpp"
#include "ckpt/checkpoint.hpp"
#include "grid/dist.hpp"
#include "obs/report.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

namespace fs = std::filesystem;

std::uint64_t sweep_seed() {
  const char* env = std::getenv("CASP_FAULT_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/casp_recovery_" + name +
                          "_s" + std::to_string(sweep_seed());
  fs::remove_all(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::int64_t counter_max(const vmpi::RunResult& result,
                         const std::string& name) {
  std::int64_t best = -1;
  for (const auto& rec : result.recorders) {
    const auto it = rec.counters().find(name);
    if (it != rec.counters().end() && it->second > best) best = it->second;
  }
  return best;
}

std::int64_t counter_sum(const vmpi::RunResult& result,
                         const std::string& name) {
  std::int64_t sum = 0;
  for (const auto& rec : result.recorders) {
    const auto it = rec.counters().find(name);
    if (it != rec.counters().end()) sum += it->second;
  }
  return sum;
}

// A crash plan for this sweep seed on a p-rank job: kill rank (seed % p)
// at an op index that lands mid-run (after at least one batch/iteration
// checkpoint, before the job finishes). The crash tests assert the hard
// guarantees — restarts >= 1 proves the crash fired, and the relaunch must
// reproduce the fault-free output bit-identically. Whether the relaunch
// fast-forwards or restarts cold depends on how far the *other* ranks got
// before the abort reached them (thread scheduling), so the deterministic
// resume proof lives in RecoveryDurability, not here.
vmpi::FaultPlan crash_plan(int p, std::uint64_t op) {
  vmpi::FaultPlan plan;
  plan.seed = sweep_seed();
  plan.crash_rank = static_cast<int>(sweep_seed() % static_cast<std::uint64_t>(p));
  plan.crash_op = op;
  return plan;
}

// ---------------------------------------------------------------------------
// SpGEMM: crash mid-batch, recover, compare against the fault-free run.

TEST(RecoverySpGemm, CrashMidBatchRecoversBitIdentically) {
  const int p = 4, layers = 1;
  const Index n = 30;
  const CscMat a = testing::random_matrix(n, n, 3.0, 150);
  SummaOptions base_opts;
  base_opts.force_batches = 5;

  // Fault-free baseline: the streamed batch files and the gathered C.
  const std::string dir_base = fresh_dir("spgemm_base");
  CscMat base_c;
  vmpi::run(p, [&](vmpi::Comm& world) {
    Grid3D grid(world, layers);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    BatchedResult r = batched_summa3d<PlusTimes>(
        grid, da, db, 0, base_opts,
        make_disk_batch_writer(dir_base, world.rank()), /*keep_output=*/true);
    CscMat full = gather_dist(grid, r.c);
    if (world.rank() == 0) base_c = std::move(full);
  });

  // Crashed + supervised run with batch-boundary checkpoints.
  const std::string dir_sup = fresh_dir("spgemm_sup");
  const std::string ck_dir = fresh_dir("spgemm_ckpt");
  CscMat sup_c;
  vmpi::SupervisorOptions sup_opts;
  sup_opts.faults = crash_plan(p, /*op=*/15 + 2 * sweep_seed());
  sup_opts.max_restarts = 3;
  vmpi::SupervisedResult sup = vmpi::run_supervised(
      p,
      [&](vmpi::Comm& world) {
        ckpt::Checkpointer ck(ck_dir, world.rank(), /*every=*/1,
                              &world.recorder());
        SummaOptions opts = base_opts;
        opts.ckpt = &ck;
        Grid3D grid(world, layers);
        const DistMat3D da = distribute_a_style(grid, a);
        const DistMat3D db = distribute_b_style(grid, a);
        BatchedResult r = batched_summa3d<PlusTimes>(
            grid, da, db, 0, opts,
            make_disk_batch_writer(dir_sup, world.rank()),
            /*keep_output=*/true);
        CscMat full = gather_dist(grid, r.c);
        if (world.rank() == 0) sup_c = std::move(full);
      },
      sup_opts);

  // The crash fired and the supervisor relaunched to completion. (No
  // assertion on ckpt.resumes here: the min-consensus resume only
  // fast-forwards if every rank banked a generation before the abort
  // reached it, which is a thread-scheduling question — the deterministic
  // resume proof is RecoveryDurability below.)
  ASSERT_FALSE(sup.result.failed())
      << sup.result.failure->describe();
  EXPECT_GE(sup.restarts, 1);
  EXPECT_TRUE(sup.recovered());
  ASSERT_EQ(sup.recovered_failures.size(), static_cast<std::size_t>(sup.restarts));
  EXPECT_EQ(sup.recovered_failures[0].kind, "rank_crash");

  // Bit-identical recovery: exact product (tolerance 0.0) and
  // byte-identical streamed batch files.
  testing::expect_mat_near(sup_c, base_c, 0.0);
  for (int r = 0; r < p; ++r) {
    const std::string part = "/part-" + std::to_string(r) + ".txt";
    EXPECT_EQ(slurp(dir_sup + part), slurp(dir_base + part))
        << "rank " << r << " streamed different bytes after recovery";
  }
}

// ---------------------------------------------------------------------------
// MCL: crash mid-iteration, recover, identical clustering.

CscMat noisy_blocks(Index k) {
  // Two k-blocks with jittered weights and weak bridges: enough structure
  // for MCL to need several iterations, so a mid-run crash lands between
  // iteration-boundary checkpoints.
  TripleMat t(2 * k, 2 * k);
  for (Index block = 0; block < 2; ++block) {
    for (Index i = 0; i < k; ++i) {
      for (Index j = 0; j < k; ++j) {
        const double w = 1.0 + 0.1 * static_cast<double>((i * 7 + j * 13) % 5);
        t.push_back(block * k + i, block * k + j, w);
      }
    }
  }
  for (Index i = 0; i < k; ++i)  // weak inter-block bridges
    t.push_back(i, k + i, 0.05);
  return CscMat::from_triples(std::move(t));
}

TEST(RecoveryMcl, CrashMidIterationRecoversIdentically) {
  const int p = 4, layers = 1;
  const CscMat network = noisy_blocks(12);
  MclParams params;
  params.max_iterations = 30;

  MclResult base;
  vmpi::run(p, [&](vmpi::Comm& world) {
    Grid3D grid(world, layers);
    MclResult r = mcl_cluster_distributed(grid, network, params);
    if (world.rank() == 0) base = std::move(r);
  });
  ASSERT_GE(base.iterations, 3)
      << "workload converged too fast to test mid-run recovery";

  const std::string ck_dir = fresh_dir("mcl_ckpt");
  MclResult recovered;
  vmpi::SupervisorOptions sup_opts;
  sup_opts.faults = crash_plan(p, /*op=*/40 + 10 * sweep_seed());
  sup_opts.max_restarts = 3;
  vmpi::SupervisedResult sup = vmpi::run_supervised(
      p,
      [&](vmpi::Comm& world) {
        ckpt::Checkpointer ck(ck_dir, world.rank(), /*every=*/1,
                              &world.recorder());
        SummaOptions opts;
        opts.ckpt = &ck;
        Grid3D grid(world, layers);
        MclResult r = mcl_cluster_distributed(grid, network, params, 0, opts);
        if (world.rank() == 0) recovered = std::move(r);
      },
      sup_opts);

  ASSERT_FALSE(sup.result.failed()) << sup.result.failure->describe();
  EXPECT_GE(sup.restarts, 1);

  // Identical clustering, iteration count, and per-iteration trajectory.
  EXPECT_EQ(recovered.cluster_of, base.cluster_of);
  EXPECT_EQ(recovered.num_clusters, base.num_clusters);
  EXPECT_EQ(recovered.iterations, base.iterations);
  ASSERT_EQ(recovered.per_iteration.size(), base.per_iteration.size());
  for (std::size_t i = 0; i < base.per_iteration.size(); ++i) {
    EXPECT_EQ(recovered.per_iteration[i].nnz_after,
              base.per_iteration[i].nnz_after);
    EXPECT_DOUBLE_EQ(recovered.per_iteration[i].chaos,
                     base.per_iteration[i].chaos);
  }
}

// ---------------------------------------------------------------------------
// Durability end-to-end: a torn newest generation (and a corrupted one on
// another rank) must fall back to generation N−1 and still recover
// bit-identically via the min-consensus resume.

TEST(RecoveryDurability, TornAndCorruptNewestGenerationsFallBack) {
  const int p = 4, layers = 1;
  const Index n = 26;
  const CscMat a = testing::random_matrix(n, n, 3.0, 151);
  SummaOptions base_opts;
  base_opts.force_batches = 5;

  const std::string dir_base = fresh_dir("torn_base");
  const std::string ck_dir = fresh_dir("torn_ckpt");
  CscMat base_c;
  vmpi::run(p, [&](vmpi::Comm& world) {
    ckpt::Checkpointer ck(ck_dir, world.rank(), /*every=*/1,
                          &world.recorder());
    SummaOptions opts = base_opts;
    opts.ckpt = &ck;
    Grid3D grid(world, layers);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    BatchedResult r = batched_summa3d<PlusTimes>(
        grid, da, db, 0, opts,
        make_disk_batch_writer(dir_base, world.rank()), /*keep_output=*/true);
    CscMat full = gather_dist(grid, r.c);
    if (world.rank() == 0) base_c = std::move(full);
  });

  // Damage the newest generation on two ranks: tear (truncate) rank 1's,
  // flip a byte in rank 2's. Both must fail the checksum and fall back.
  const std::string torn = ck_dir + "/summa-r1-g5.ckpt";
  ASSERT_TRUE(fs::exists(torn)) << "expected 5 generations";
  fs::resize_file(torn, fs::file_size(torn) / 2);
  const std::string corrupt = ck_dir + "/summa-r2-g5.ckpt";
  ASSERT_TRUE(fs::exists(corrupt));
  {
    std::fstream f(corrupt, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(corrupt) / 2));
    f.put('\x55');
  }

  // A fresh run over the same job resumes from what survives: damaged
  // ranks fall back to generation 4, and the piece-count min-consensus
  // truncates the healthy ranks to match. Output must still be
  // bit-identical — including the streamed files, which replay re-writes.
  const std::string dir_resume = fresh_dir("torn_resume");
  CscMat resumed_c;
  vmpi::RunResult resumed = vmpi::run(p, [&](vmpi::Comm& world) {
    ckpt::Checkpointer ck(ck_dir, world.rank(), /*every=*/1,
                          &world.recorder());
    SummaOptions opts = base_opts;
    opts.ckpt = &ck;
    Grid3D grid(world, layers);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    BatchedResult r = batched_summa3d<PlusTimes>(
        grid, da, db, 0, opts,
        make_disk_batch_writer(dir_resume, world.rank()),
        /*keep_output=*/true);
    CscMat full = gather_dist(grid, r.c);
    if (world.rank() == 0) resumed_c = std::move(full);
  });

  EXPECT_EQ(counter_sum(resumed, "ckpt.resumes"), p);
  // The damaged ranks' newest valid generation is 4; healthy ranks still
  // load 5 but the consensus replays only the common prefix.
  EXPECT_EQ(counter_max(resumed, "ckpt.resumed_generation"), 5);
  testing::expect_mat_near(resumed_c, base_c, 0.0);
  for (int r = 0; r < p; ++r) {
    const std::string part = "/part-" + std::to_string(r) + ".txt";
    EXPECT_EQ(slurp(dir_resume + part), slurp(dir_base + part));
  }
}

// ---------------------------------------------------------------------------
// Supervisor semantics and report plumbing.

TEST(RecoverySupervisor, NonRecoverableFailuresAreNotRetried) {
  vmpi::SupervisorOptions sup_opts;
  vmpi::FaultPlan plan;
  plan.seed = sweep_seed();
  plan.alloc_fail = 1.0;
  sup_opts.faults = plan;
  sup_opts.max_restarts = 3;
  vmpi::SupervisedResult sup = vmpi::run_supervised(
      2,
      [&](vmpi::Comm& comm) {
        comm.set_phase("Alloc");
        MemoryTracker tracker(1 << 20);
        vmpi::arm_alloc_faults(comm, tracker);
        tracker.allocate(64, "doomed buffer");
      },
      sup_opts);
  // memory_budget is not a crash — rerunning cannot help, so the
  // supervisor must not burn restarts on it.
  ASSERT_TRUE(sup.result.failed());
  EXPECT_EQ(sup.result.failure->kind, "memory_budget");
  EXPECT_EQ(sup.restarts, 0);
  EXPECT_FALSE(sup.recovered());
}

TEST(RecoverySupervisor, MaxRestartsZeroMeansSingleAttempt) {
  vmpi::SupervisorOptions sup_opts;
  sup_opts.faults = crash_plan(2, /*op=*/1);
  sup_opts.max_restarts = 0;
  vmpi::SupervisedResult sup = vmpi::run_supervised(
      2,
      [&](vmpi::Comm& comm) {
        (void)comm.allreduce_sum<int>(comm.rank());
      },
      sup_opts);
  ASSERT_TRUE(sup.result.failed());
  EXPECT_EQ(sup.result.failure->kind, "rank_crash");
  EXPECT_EQ(sup.restarts, 0);
}

TEST(RecoveryReportJson, RecoveryKeyRecordsTheRestart) {
  vmpi::SupervisorOptions sup_opts;
  sup_opts.faults = crash_plan(2, /*op=*/2);
  sup_opts.max_restarts = 2;
  vmpi::SupervisedResult sup = vmpi::run_supervised(
      2,
      [&](vmpi::Comm& comm) {
        comm.set_phase("Work");
        for (int i = 0; i < 4; ++i)
          (void)comm.allreduce_sum<int>(comm.rank() + i);
      },
      sup_opts);
  ASSERT_FALSE(sup.result.failed());
  ASSERT_EQ(sup.restarts, 1);

  const obs::RunReport report = obs::build_report(sup);
  ASSERT_TRUE(report.recovery.has_value());
  EXPECT_EQ(report.recovery->restarts, 1);
  EXPECT_EQ(report.recovery->max_restarts, 2);
  ASSERT_EQ(report.recovery->failure_kinds.size(), 1u);
  EXPECT_EQ(report.recovery->failure_kinds[0], "rank_crash");
  EXPECT_FALSE(report.failure.has_value());

  const std::string json = report.to_json().dump();
  EXPECT_NE(json.find("\"recovery\""), std::string::npos);
  EXPECT_NE(json.find("\"restarts\""), std::string::npos);
  EXPECT_NE(json.find("\"rank_crash\""), std::string::npos);
  // The deterministic subset stays recovery-free (restart counts and
  // failure kinds vary with the fault schedule, not the program).
  const std::string det = report.deterministic_json().dump();
  EXPECT_EQ(det.find("\"recovery\""), std::string::npos);

  // An unsupervised report has no recovery key at all.
  const obs::RunReport plain = obs::build_report(sup.result);
  EXPECT_FALSE(plain.recovery.has_value());
}

}  // namespace
}  // namespace casp
