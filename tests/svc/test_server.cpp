// svc::Server: admission control (Eq. (2)), per-tenant quotas, priority
// scheduling with cancellation, and crash containment on the resident pool.
//
// The FaultSvc suite reads CASP_FAULT_SEED (default 1) so check.sh stage
// (f) sweeps the injected-crash scenarios over several seeds.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "svc/server.hpp"

namespace casp::svc {
namespace {

std::uint64_t fault_seed() {
  const char* env = std::getenv("CASP_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

JobSpec small_spgemm(std::string tenant, std::uint64_t seed = 7) {
  JobSpec s;
  s.tenant = std::move(tenant);
  s.op = JobOp::kSpGemm;
  s.a = MatrixSource::er_square(48, 3.0, seed);
  s.ranks = 4;
  s.layers = 1;
  return s;
}

TEST(Server, OverBudgetJobRejectedAtSubmitNamingEq2) {
  Server server(ServerOptions{});
  JobSpec spec = small_spgemm("alice");
  // 4 KiB aggregate = 1 KiB per process: far below the r*(maxA+maxB) input
  // footprint, so Eq. (2)'s denominator is non-positive and no batch count
  // can make the job fit. Must be refused before it ever reaches the pool.
  spec.memory_bytes = 4096;
  const std::string id = server.submit(std::move(spec));
  const JobRecord* job = server.find(id);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->state, JobState::kRejected);
  EXPECT_FALSE(job->admission.fits);
  // The structured reason names the Eq. (2) estimate that refused the job.
  EXPECT_NE(job->reason.find("Eq. (2)"), std::string::npos) << job->reason;
  EXPECT_NE(job->reason.find("r=24"), std::string::npos) << job->reason;
  EXPECT_FALSE(job->holds_reservation);
  // A rejected job never reserves tenant memory.
  EXPECT_EQ(server.tenant("alice").reserved(), 0u);
}

TEST(Server, AdmissionEstimatesBatchesForFittingJobs) {
  Server server(ServerOptions{});
  JobSpec spec = small_spgemm("alice");
  spec.memory_bytes = Bytes{64} << 20;
  const std::string id = server.submit(std::move(spec));
  const JobRecord& job = server.wait(id);
  EXPECT_EQ(job.state, JobState::kDone) << job.reason;
  EXPECT_TRUE(job.admission.fits);
  EXPECT_GE(job.admission.batches, 1);
  EXPECT_GT(job.admission.max_nnz_c, 0);
  EXPECT_EQ(job.admission.reserved_bytes, Bytes{64} << 20);
  // Terminal states release the reservation.
  EXPECT_EQ(server.tenant("alice").reserved(), 0u);
  EXPECT_GT(server.tenant("alice").peak_reserved(), 0u);
}

TEST(Server, MemoryQuotaRejectsOversizedReservationOutright) {
  ServerOptions opts;
  opts.quotas["alice"].memory_bytes = 1 << 20;
  Server server(opts);
  JobSpec spec = small_spgemm("alice");
  spec.memory_bytes = Bytes{8} << 20;  // declared budget > tenant quota
  const std::string id = server.submit(std::move(spec));
  const JobRecord* job = server.find(id);
  EXPECT_EQ(job->state, JobState::kRejected);
  EXPECT_NE(job->reason.find("memory quota"), std::string::npos)
      << job->reason;
}

TEST(Server, TrafficQuotaThrottlesOneTenantWhileAnotherProceeds) {
  ServerOptions opts;
  opts.quotas["noisy"].traffic_bytes = 1;  // exhausted by any real job
  Server server(opts);

  // Both noisy jobs queue before anything runs: billing happens at
  // execution, so the second must be throttled by the scheduler's re-check,
  // not at submit.
  const std::string n1 = server.submit(small_spgemm("noisy", 7));
  const std::string n2 = server.submit(small_spgemm("noisy", 8));
  const std::string q1 = server.submit(small_spgemm("quiet", 9));
  server.drain();

  EXPECT_EQ(server.find(n1)->state, JobState::kDone)
      << server.find(n1)->reason;
  EXPECT_EQ(server.find(n2)->state, JobState::kThrottled);
  EXPECT_NE(server.find(n2)->reason.find("traffic quota"), std::string::npos);
  EXPECT_EQ(server.find(q1)->state, JobState::kDone)
      << server.find(q1)->reason;

  // Now that the ledger shows the overdraft, later submits refuse upfront.
  const std::string n3 = server.submit(small_spgemm("noisy", 10));
  EXPECT_EQ(server.find(n3)->state, JobState::kThrottled);
  EXPECT_TRUE(server.tenant("noisy").traffic_exhausted());
  EXPECT_FALSE(server.tenant("quiet").traffic_exhausted());
}

TEST(Server, CancelledJobReleasesItsReservation) {
  Server server(ServerOptions{});
  JobSpec first = small_spgemm("alice", 7);
  first.memory_bytes = Bytes{32} << 20;
  JobSpec second = small_spgemm("alice", 8);
  second.memory_bytes = Bytes{16} << 20;
  const std::string id1 = server.submit(std::move(first));
  const std::string id2 = server.submit(std::move(second));
  EXPECT_EQ(server.tenant("alice").reserved(), Bytes{48} << 20);

  EXPECT_TRUE(server.cancel(id2));
  EXPECT_EQ(server.find(id2)->state, JobState::kCancelled);
  EXPECT_EQ(server.tenant("alice").reserved(), Bytes{32} << 20);
  EXPECT_FALSE(server.cancel(id2));  // already terminal

  const JobRecord& job1 = server.wait(id1);
  EXPECT_EQ(job1.state, JobState::kDone) << job1.reason;
  EXPECT_EQ(server.tenant("alice").reserved(), 0u);
  EXPECT_FALSE(server.cancel(id1));  // ran to completion, nothing to cancel
}

TEST(Server, PrioritySchedulingRunsHigherFirstFifoWithin) {
  Server server(ServerOptions{});
  const std::string low = server.submit(small_spgemm("t", 1));
  JobSpec hi = small_spgemm("t", 2);
  hi.priority = 5;
  const std::string high = server.submit(std::move(hi));
  JobSpec hi2 = small_spgemm("t", 3);
  hi2.priority = 5;
  const std::string high2 = server.submit(std::move(hi2));

  // Waiting on the low-priority job must drain both higher ones first —
  // observable through every record being terminal afterwards.
  const JobRecord& job = server.wait(high2);
  EXPECT_EQ(job.state, JobState::kDone);
  EXPECT_EQ(server.find(high)->state, JobState::kDone);
  EXPECT_EQ(server.find(low)->state, JobState::kQueued);
  server.drain();
  EXPECT_EQ(server.find(low)->state, JobState::kDone);
}

TEST(Server, SubSizedJobRunsOnASplitOfThePool) {
  ServerOptions opts;
  opts.pool_ranks = 8;
  Server server(opts);
  JobSpec spec = small_spgemm("alice");
  spec.ranks = 4;  // half the pool idles through the split
  const std::string id = server.submit(std::move(spec));
  const JobRecord& job = server.wait(id);
  EXPECT_EQ(job.state, JobState::kDone) << job.reason;
  EXPECT_GT(job.c.nnz(), 0);
}

TEST(Server, StructuralErrorsThrowInsteadOfRecording) {
  Server server(ServerOptions{});
  JobSpec too_wide = small_spgemm("alice");
  too_wide.ranks = 16;  // pool has 4
  EXPECT_THROW(server.submit(std::move(too_wide)), InvalidArgument);

  JobSpec invalid;  // no input operand
  EXPECT_THROW(server.submit(std::move(invalid)), InvalidArgument);

  JobSpec dup = small_spgemm("alice");
  dup.job_id = "same";
  server.submit(std::move(dup));
  JobSpec dup2 = small_spgemm("alice");
  dup2.job_id = "same";
  EXPECT_THROW(server.submit(std::move(dup2)), InvalidArgument);
}

// One tenant's injected crash is recovered by per-job supervision: the pool
// survives, the job restarts (disarming the fired fault) and completes.
TEST(FaultSvc, SupervisedCrashRecoversOnTheResidentPool) {
  Server server(ServerOptions{});
  JobSpec chaos = small_spgemm("chaos");
  chaos.fault_spec =
      "seed=" + std::to_string(fault_seed()) + ";crash_rank=2;crash_op=10";
  chaos.max_restarts = 3;
  const std::string id = server.submit(std::move(chaos));
  const JobRecord& job = server.wait(id);
  EXPECT_EQ(job.state, JobState::kDone) << job.reason;
  EXPECT_EQ(job.report.billing.restarts, 1u);
  ASSERT_EQ(job.report.billing.recovered_failure_kinds.size(), 1u);
  EXPECT_EQ(job.report.billing.recovered_failure_kinds[0], "rank_crash");

  // The pool is not poisoned: a clean tenant's job runs right after.
  const std::string clean = server.submit(small_spgemm("clean"));
  EXPECT_EQ(server.wait(clean).state, JobState::kDone);
}

// A crash-loop tenant: two independent fault kinds, restart budget of one.
// Attempt 1 dies (say retry_exhausted), the supervisor disarms that fault
// and spends the only restart, attempt 2 dies on the other fault
// (rank_crash) with the budget exhausted — the job fails, the pool and the
// other tenants don't.
TEST(FaultSvc, CrashLoopExhaustsRestartsWithoutPoisoningThePool) {
  Server server(ServerOptions{});
  JobSpec loop = small_spgemm("chaos");
  loop.fault_spec = "seed=" + std::to_string(fault_seed()) +
                    ";send_fail=1.0;crash_rank=1;crash_op=15";
  loop.max_restarts = 1;
  const std::string id = server.submit(std::move(loop));
  const JobRecord& job = server.wait(id);
  EXPECT_EQ(job.state, JobState::kFailed);
  EXPECT_EQ(job.report.billing.restarts, 1u);
  EXPECT_FALSE(job.reason.empty());
  EXPECT_EQ(server.tenant("chaos").reserved(), 0u);

  const std::string clean = server.submit(small_spgemm("clean"));
  EXPECT_EQ(server.wait(clean).state, JobState::kDone);
}

// Unsupervised fault: the failure is captured as a structured kFailed
// record (never an exception, never a poisoned pool).
TEST(FaultSvc, UnsupervisedCrashBecomesAFailedRecord) {
  Server server(ServerOptions{});
  JobSpec chaos = small_spgemm("chaos");
  chaos.fault_spec =
      "seed=" + std::to_string(fault_seed()) + ";crash_rank=1;crash_op=10";
  const std::string id = server.submit(std::move(chaos));
  const JobRecord& job = server.wait(id);
  EXPECT_EQ(job.state, JobState::kFailed);
  EXPECT_NE(job.reason.find("rank_crash"), std::string::npos) << job.reason;

  const std::string clean = server.submit(small_spgemm("clean"));
  EXPECT_EQ(server.wait(clean).state, JobState::kDone);
}

}  // namespace
}  // namespace casp::svc
