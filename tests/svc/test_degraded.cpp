// Service-level elastic degraded-grid recovery (DESIGN.md §5j): a
// permanent rank loss marks the pool's health map, elastic jobs re-run
// Eq. (2) admission for the survivor grid, redistribute their checkpoints
// onto it and finish bit-identically; non-elastic jobs fail classified.
// Plus the deadline path: an over-budget job is cancelled by the watchdog,
// fails with kind "deadline_exceeded", and releases its reservation so the
// tenant's next job runs immediately.
//
// The ElasticSvc suite reads CASP_FAULT_SEED (default 1) so check.sh's
// fault sweeps vary the victim rank and crash op. Inputs use unit values
// (ErParams::random_values = false): partial sums are integers, exact in
// double under any association, which is what makes the cross-grid
// tolerance-0.0 comparison legitimate (see tests/ckpt/test_redistribute).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/triple_mat.hpp"
#include "svc/admission.hpp"
#include "svc/server.hpp"
#include "test_util.hpp"

namespace casp::svc {
namespace {

namespace fs = std::filesystem;

std::uint64_t fault_seed() {
  const char* env = std::getenv("CASP_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/casp_degraded_" + name +
                          "_s" + std::to_string(fault_seed());
  fs::remove_all(dir);
  return dir;
}

/// Square ER source with all values exactly 1.0 (integer-valued products).
MatrixSource ones_er(Index n, double nnz_per_col, std::uint64_t seed) {
  MatrixSource src;
  src.kind = MatrixSource::Kind::kEr;
  src.er.nrows = n;
  src.er.ncols = n;
  src.er.nnz_per_col = nnz_per_col;
  src.er.random_values = false;
  src.er.seed = seed;
  return src;
}

JobSpec elastic_spgemm(const std::string& tenant, const std::string& ck_dir) {
  JobSpec s;
  s.tenant = tenant;
  s.op = JobOp::kSpGemm;
  s.a = ones_er(36, 3.0, 21);
  s.ranks = 9;
  s.layers = 1;
  s.force_batches = 4;
  s.ckpt_dir = ck_dir;
  s.ckpt_every = 1;
  s.elastic = true;
  return s;
}

std::string perm_crash_spec(int pool_ranks, std::uint64_t op_base) {
  return "seed=" + std::to_string(fault_seed()) + ";perm_crash_rank=" +
         std::to_string(fault_seed() %
                        static_cast<std::uint64_t>(pool_ranks)) +
         ";perm_crash_op=" + std::to_string(op_base + 3 * fault_seed());
}

// ---------------------------------------------------------------------------

TEST(ElasticSvc, PermanentCrashShrinksAndFinishesBitIdentically) {
  const int victim = static_cast<int>(fault_seed() % 9);

  // Fault-free reference on the full 9-rank grid: the output the job was
  // promised before the hardware died.
  CscMat reference;
  {
    ServerOptions opts;
    opts.pool_ranks = 9;
    Server ref_server(opts);
    JobSpec ref = elastic_spgemm("alice", "");
    ref.elastic = false;
    const JobRecord& job = ref_server.wait(ref_server.submit(std::move(ref)));
    ASSERT_EQ(job.state, JobState::kDone) << job.reason;
    reference = job.c;
  }

  ServerOptions opts;
  opts.pool_ranks = 9;
  Server server(opts);
  JobSpec chaos = elastic_spgemm("alice", fresh_dir("elastic"));
  chaos.fault_spec = perm_crash_spec(9, /*op_base=*/20);
  const std::string id = server.submit(std::move(chaos));
  const JobRecord& job = server.wait(id);

  ASSERT_EQ(job.state, JobState::kDone) << job.reason;
  // The victim is dead for good in the pool's health map.
  EXPECT_EQ(server.pool().health(victim), vmpi::RankHealth::kDead);
  EXPECT_EQ(server.pool().alive_count(), 8);

  // The recovery report records the shrink: 9 ranks could not be refilled
  // from an 8-rank pool, so the job finished on the largest valid survivor
  // grid (4 x 1).
  ASSERT_TRUE(job.report.run.has_value());
  ASSERT_TRUE(job.report.run->recovery.has_value());
  const obs::RecoveryReport& rec = *job.report.run->recovery;
  EXPECT_EQ(rec.degraded_from_ranks, 9);
  EXPECT_EQ(rec.degraded_from_layers, 1);
  EXPECT_EQ(rec.degraded_to_ranks, 4);
  EXPECT_EQ(rec.degraded_to_layers, 1);
  ASSERT_EQ(rec.dead_ranks.size(), 1u);
  EXPECT_EQ(rec.dead_ranks[0], victim);
  ASSERT_FALSE(rec.failure_kinds.empty());
  EXPECT_EQ(rec.failure_kinds.back(), "permanent_crash");
  // The degraded shape shows up in the rendered report too.
  const std::string json = job.report.run->to_json().dump();
  EXPECT_NE(json.find("\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"dead_ranks\""), std::string::npos);

  // The headline guarantee: the degraded output equals the full-grid
  // fault-free output exactly.
  casp::testing::expect_mat_near(job.c, reference, 0.0);
  EXPECT_EQ(server.tenant("alice").reserved(), 0u);

  // The pool keeps serving: another tenant's 4-rank job runs on the
  // survivors right after.
  JobSpec next;
  next.tenant = "bob";
  next.op = JobOp::kSpGemm;
  next.a = ones_er(36, 3.0, 22);
  next.ranks = 4;
  EXPECT_EQ(server.wait(server.submit(std::move(next))).state,
            JobState::kDone);
}

TEST(ElasticSvc, PermanentCrashOnMclShrinksNatively) {
  // MCL needs no redistribution: its snapshot carries the re-replicated
  // global iterate under a grid-independent id, so the survivor grid
  // resumes the trajectory directly.
  ServerOptions opts;
  opts.pool_ranks = 9;
  Server server(opts);
  JobSpec chaos;
  chaos.tenant = "alice";
  chaos.op = JobOp::kMcl;
  chaos.a = MatrixSource::protein_network(24, 23);
  chaos.ranks = 9;
  chaos.ckpt_dir = fresh_dir("elastic_mcl");
  chaos.elastic = true;
  chaos.fault_spec = perm_crash_spec(9, /*op_base=*/40);
  const JobRecord& job = server.wait(server.submit(std::move(chaos)));
  ASSERT_EQ(job.state, JobState::kDone) << job.reason;
  EXPECT_GE(job.mcl.num_clusters, 1);
  ASSERT_TRUE(job.report.run.has_value());
  ASSERT_TRUE(job.report.run->recovery.has_value());
  EXPECT_EQ(job.report.run->recovery->degraded_to_ranks, 4);
  EXPECT_EQ(server.pool().alive_count(), 8);
}

TEST(ElasticSvc, NonElasticPermanentCrashFailsClassified) {
  Server server(ServerOptions{});  // pool of 4
  const int victim = static_cast<int>(fault_seed() % 4);
  JobSpec chaos;
  chaos.tenant = "chaos";
  chaos.op = JobOp::kSpGemm;
  chaos.a = ones_er(36, 3.0, 24);
  chaos.ranks = 4;
  chaos.memory_bytes = Bytes{64} << 20;  // hold a real reservation
  chaos.fault_spec = perm_crash_spec(4, /*op_base=*/10);
  const JobRecord& job = server.wait(server.submit(std::move(chaos)));
  EXPECT_EQ(job.state, JobState::kFailed);
  EXPECT_NE(job.reason.find("permanent_crash"), std::string::npos)
      << job.reason;
  EXPECT_EQ(server.pool().health(victim), vmpi::RankHealth::kDead);
  EXPECT_EQ(server.tenant("chaos").reserved(), 0u);

  // A later full-width, non-elastic job cannot be placed on the degraded
  // pool: refused with a structured reason, not wedged.
  JobSpec next;
  next.tenant = "chaos";
  next.op = JobOp::kSpGemm;
  next.a = ones_er(36, 3.0, 25);
  next.ranks = 4;
  const JobRecord& refused = server.wait(server.submit(std::move(next)));
  EXPECT_EQ(refused.state, JobState::kFailed);
  EXPECT_NE(refused.reason.find("not elastic"), std::string::npos)
      << refused.reason;

  // An elastic job of the same width shrinks onto the survivors instead.
  JobSpec bend;
  bend.tenant = "chaos";
  bend.op = JobOp::kSpGemm;
  bend.a = ones_er(36, 3.0, 26);
  bend.ranks = 4;
  bend.elastic = true;
  const JobRecord& ok = server.wait(server.submit(std::move(bend)));
  EXPECT_EQ(ok.state, JobState::kDone) << ok.reason;
  ASSERT_TRUE(ok.report.run.has_value());
  ASSERT_TRUE(ok.report.run->recovery.has_value());
  EXPECT_EQ(ok.report.run->recovery->degraded_from_ranks, 4);
  EXPECT_GT(ok.report.run->recovery->degraded_to_ranks, 0);
  EXPECT_LT(ok.report.run->recovery->degraded_to_ranks, 4);
}

TEST(ElasticSvc, DegradedGridRefusedWhenBudgetCannotHoldIt) {
  // The Eq. (2) refusal frontier sits at M = p * r * (maxA + maxB): the
  // aggregate input storage, scaled by the grid's relative load imbalance
  // p * max / total. Balanced inputs keep that factor ~1 on every grid, so
  // shrinking never refuses them — the refusal needs an input whose
  // COARSER partition is relatively more imbalanced. This corner matrix is
  // built for that: all nnz live in the top-left quadrant (rows/cols
  // 0..35 of 72), spread evenly over the four 24-aligned blocks the 3x3
  // grid cuts it into. On 9 ranks each block holds 144 nnz (factor 2.25);
  // on 4 ranks one 36x36 block holds all 576 (factor 4) — so budgets in
  // (9*r*2*144, 4*r*2*576) fit the full grid but not the survivors.
  TripleMat corner(72, 72);
  const auto fill = [&corner](Index r0, Index r1, Index c0, Index c1) {
    int placed = 0;
    for (Index c = c0; c < c1 && placed < 144; ++c)
      for (Index r = r0; r < r1 && placed < 144; ++r, ++placed)
        corner.push_back(r, c, 1.0);
  };
  fill(0, 24, 0, 24);
  fill(0, 24, 24, 36);
  fill(24, 36, 0, 24);
  fill(24, 36, 24, 36);
  const std::string mtx = ::testing::TempDir() + "/casp_degraded_corner72.mtx";
  write_matrix_market_file(mtx, corner);

  // Sweep for a budget that Eq. (2) accepts on 9 ranks but refuses on 4;
  // keep the LARGEST such budget for headroom on the full-grid attempt.
  JobSpec probe;
  probe.op = JobOp::kSpGemm;
  probe.a = MatrixSource::file(mtx);
  const CscMat in = probe.a.materialize();
  Bytes chosen = 0;
  for (Bytes m = Bytes{1} << 13; m <= Bytes{1} << 27; m += m / 4 + 1) {
    JobSpec s9 = probe;
    s9.ranks = 9;
    s9.memory_bytes = m;
    JobSpec s4 = probe;
    s4.ranks = 4;
    s4.memory_bytes = m;
    if (estimate_admission(s9, in, in).fits() &&
        !estimate_admission(s4, in, in).fits())
      chosen = m;
  }
  ASSERT_GT(chosen, 0u) << "no budget separates the 9- and 4-rank frontiers";

  ServerOptions opts;
  opts.pool_ranks = 9;
  Server server(opts);
  JobSpec chaos = probe;
  chaos.tenant = "tight";
  chaos.ranks = 9;
  chaos.memory_bytes = chosen;
  chaos.elastic = true;
  chaos.fault_spec = perm_crash_spec(9, /*op_base=*/10);
  const JobRecord& job = server.wait(server.submit(std::move(chaos)));
  EXPECT_EQ(job.state, JobState::kFailed);
  EXPECT_NE(job.reason.find("degraded grid"), std::string::npos)
      << job.reason;
  EXPECT_EQ(server.tenant("tight").reserved(), 0u);
  EXPECT_EQ(server.pool().alive_count(), 8);
}

// ---------------------------------------------------------------------------
// Self-healing membership (DESIGN.md §5k): with auto_rejoin the crashed
// rank's replacement handshakes back in at a batch-boundary pause and the
// SAME job regrows onto the healed grid, with evidence.

TEST(ElasticSvc, AutoRejoinRegrowsGridWithEvidence) {
  const int victim = static_cast<int>(fault_seed() % 9);

  CscMat reference;
  {
    ServerOptions opts;
    opts.pool_ranks = 9;
    Server ref_server(opts);
    JobSpec ref = elastic_spgemm("alice", "");
    ref.elastic = false;
    const JobRecord& job = ref_server.wait(ref_server.submit(std::move(ref)));
    ASSERT_EQ(job.state, JobState::kDone) << job.reason;
    reference = job.c;
  }

  ServerOptions opts;
  opts.pool_ranks = 9;
  opts.auto_rejoin = true;
  Server server(opts);
  JobSpec chaos = elastic_spgemm("alice", fresh_dir("regrow"));
  chaos.fault_spec = perm_crash_spec(9, /*op_base=*/20);
  const JobRecord& job = server.wait(server.submit(std::move(chaos)));
  ASSERT_EQ(job.state, JobState::kDone) << job.reason;

  // The victim handshook back through probation: alive again, not merely
  // tolerated, and the pool is whole.
  EXPECT_EQ(server.pool().health(victim), vmpi::RankHealth::kAlive);
  EXPECT_EQ(server.pool().alive_count(), 9);
  EXPECT_TRUE(server.pool().quarantined_ranks().empty());

  // Evidence chain: shrank 9 -> 4, then regrew 4 -> 9 absorbing the
  // rejoined rank, and both transitions are in the recovery report.
  ASSERT_TRUE(job.report.run.has_value());
  ASSERT_TRUE(job.report.run->recovery.has_value());
  const obs::RecoveryReport& rec = *job.report.run->recovery;
  EXPECT_EQ(rec.degraded_from_ranks, 9);
  EXPECT_EQ(rec.degraded_to_ranks, 4);
  EXPECT_EQ(rec.regrown_from_ranks, 4);
  EXPECT_EQ(rec.regrown_to_ranks, 9);
  EXPECT_EQ(rec.rejoined_ranks, (std::vector<int>{victim}));
  const std::string json = job.report.run->to_json().dump();
  EXPECT_NE(json.find("\"regrown\""), std::string::npos);
  EXPECT_NE(json.find("\"rejoined_ranks\""), std::string::npos);

  // Output promise survives the shrink/regrow round trip exactly.
  casp::testing::expect_mat_near(job.c, reference, 0.0);
  EXPECT_EQ(server.tenant("alice").reserved(), 0u);

  // The healed pool serves the next full-width, non-elastic job.
  JobSpec next = elastic_spgemm("bob", "");
  next.elastic = false;
  EXPECT_EQ(server.wait(server.submit(std::move(next))).state,
            JobState::kDone);
}

// ---------------------------------------------------------------------------
// Split isolation: two elastic jobs on disjoint splits of one pool; a
// permanent crash in the second split is invisible to the first job.

TEST(ElasticSvc, CrashInOneSplitDegradesOnlyThatJob) {
  const int victim_jr = static_cast<int>(fault_seed() % 4);

  CscMat reference;
  {
    Server ref_server(ServerOptions{});  // pool of 4
    JobSpec ref;
    ref.tenant = "alice";
    ref.op = JobOp::kSpGemm;
    ref.a = ones_er(36, 3.0, 27);
    ref.ranks = 4;
    const JobRecord& job = ref_server.wait(ref_server.submit(std::move(ref)));
    ASSERT_EQ(job.state, JobState::kDone) << job.reason;
    reference = job.c;
  }

  ServerOptions opts;
  opts.pool_ranks = 8;
  opts.concurrency = 2;
  Server server(opts);

  // Same priority => FIFO: "calm" takes pool ranks {0..3}, "storm" takes
  // {4..7}, so the storm's job-world victim maps to pool rank 4 + jr.
  JobSpec calm;
  calm.tenant = "alice";
  calm.op = JobOp::kSpGemm;
  calm.a = ones_er(36, 3.0, 27);
  calm.ranks = 4;
  const std::string calm_id = server.submit(std::move(calm));

  JobSpec storm;
  storm.tenant = "bob";
  storm.op = JobOp::kSpGemm;
  storm.a = ones_er(36, 3.0, 27);
  storm.ranks = 4;
  storm.elastic = true;
  storm.fault_spec = perm_crash_spec(4, /*op_base=*/10);
  const std::string storm_id = server.submit(std::move(storm));

  server.drain();

  const JobRecord* calm_rec = server.find(calm_id);
  const JobRecord* storm_rec = server.find(storm_id);
  ASSERT_NE(calm_rec, nullptr);
  ASSERT_NE(storm_rec, nullptr);

  // The calm job never noticed: done, no recovery evidence, exact output.
  ASSERT_EQ(calm_rec->state, JobState::kDone) << calm_rec->reason;
  ASSERT_TRUE(calm_rec->report.run.has_value());
  EXPECT_FALSE(calm_rec->report.run->recovery.has_value());
  casp::testing::expect_mat_near(calm_rec->c, reference, 0.0);

  // The storm job survived its own crash elastically, with the same bits.
  ASSERT_EQ(storm_rec->state, JobState::kDone) << storm_rec->reason;
  casp::testing::expect_mat_near(storm_rec->c, reference, 0.0);

  // Exactly one pool rank died, and it is in the storm's split.
  EXPECT_EQ(server.pool().alive_count(), 7);
  EXPECT_EQ(server.pool().health(4 + victim_jr), vmpi::RankHealth::kDead);
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(server.pool().health(r), vmpi::RankHealth::kAlive) << r;
}

// ---------------------------------------------------------------------------
// Concurrent drain determinism: the K=2 drain is byte-identical run to run
// AND byte-identical to the serial drain (launcher-deterministic
// scheduling; reports keyed by submission order, not completion order).

void submit_mixed_fleet(Server& server) {
  for (int i = 0; i < 6; ++i) {
    JobSpec s;
    s.tenant = (i % 2 == 0) ? "alice" : "bob";
    s.op = JobOp::kSpGemm;
    s.a = ones_er(36, 3.0, 31 + static_cast<std::uint64_t>(i % 3));
    s.ranks = 4;
    s.priority = i % 3;
    if (i == 2) s.deadline_ms = 60000;  // urgent class, generous budget
    if (i == 4) {
      s.fault_spec = "seed=5;crash_rank=1;crash_op=15";
      s.max_restarts = 2;  // supervised: one transient crash, then done
    }
    server.submit(std::move(s));
  }
}

TEST(ConcurrentSvc, DoubleDrainByteIdenticalAndMatchesSerial) {
  const auto drain_to_json = [](int concurrency) {
    ServerOptions opts;
    opts.pool_ranks = 9;
    opts.concurrency = concurrency;
    Server server(opts);
    submit_mixed_fleet(server);
    server.drain();
    for (const std::string& id : server.job_ids())
      EXPECT_EQ(server.find(id)->state, JobState::kDone)
          << id << ": " << server.find(id)->reason;
    return server.job_reports_json(/*deterministic=*/true).dump();
  };
  const std::string k2_first = drain_to_json(2);
  const std::string k2_second = drain_to_json(2);
  const std::string serial = drain_to_json(1);
  EXPECT_EQ(k2_first, k2_second) << "K=2 drain must be deterministic";
  EXPECT_EQ(k2_first, serial) << "concurrency must not change the reports";
  // The supervised job's restart survived the concurrent path.
  EXPECT_NE(k2_first.find("\"restarts\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------

TEST(DeadlineSvc, ExpiredDeadlineFailsJobAndReleasesReservation) {
  Server server(ServerOptions{});
  JobSpec slow;
  slow.tenant = "alice";
  slow.op = JobOp::kSpGemm;
  slow.a = ones_er(48, 3.0, 28);
  slow.ranks = 4;
  slow.memory_bytes = Bytes{64} << 20;
  // Injected per-op delay makes the job reliably outlive its 50 ms budget
  // without depending on machine speed.
  slow.fault_spec =
      "seed=" + std::to_string(fault_seed()) + ";delay_us=3000;delay_every=1";
  slow.deadline_ms = 50;
  const JobRecord& job = server.wait(server.submit(std::move(slow)));
  EXPECT_EQ(job.state, JobState::kFailed);
  EXPECT_NE(job.reason.find("deadline_exceeded"), std::string::npos)
      << job.reason;
  // The reservation is gone and the pool is healthy: the tenant's next job
  // (no deadline) runs to completion immediately.
  EXPECT_EQ(server.tenant("alice").reserved(), 0u);
  EXPECT_EQ(server.pool().alive_count(), 4);
  JobSpec next;
  next.tenant = "alice";
  next.op = JobOp::kSpGemm;
  next.a = ones_er(48, 3.0, 28);
  next.ranks = 4;
  next.memory_bytes = Bytes{64} << 20;
  EXPECT_EQ(server.wait(server.submit(std::move(next))).state,
            JobState::kDone);
}

TEST(DeadlineSvc, GenerousDeadlineDoesNotFire) {
  Server server(ServerOptions{});
  JobSpec spec;
  spec.tenant = "alice";
  spec.op = JobOp::kSpGemm;
  spec.a = ones_er(36, 3.0, 29);
  spec.ranks = 4;
  spec.deadline_ms = 60000;
  const JobRecord& job = server.wait(server.submit(std::move(spec)));
  EXPECT_EQ(job.state, JobState::kDone) << job.reason;
}

TEST(DeadlineSvc, NegativeDeadlineIsAValidationError) {
  Server server(ServerOptions{});
  JobSpec spec;
  spec.op = JobOp::kSpGemm;
  spec.a = ones_er(36, 3.0, 30);
  spec.deadline_ms = -1;
  EXPECT_THROW(server.submit(std::move(spec)), InvalidArgument);
}

TEST(DeadlineSvc, QueueOrderIsEdfOverPriority) {
  // The full order: urgent class (deadline > 0) first, EDF within it,
  // priority breaking deadline ties; then the legacy strict-priority /
  // FIFO order for deadline-free jobs.
  JobQueue q;
  q.push("a", /*priority=*/0);
  q.push("b", /*priority=*/2);
  q.push("c", /*priority=*/0, /*deadline_ms=*/500);
  q.push("d", /*priority=*/1, /*deadline_ms=*/100);
  q.push("e", /*priority=*/5, /*deadline_ms=*/500);
  q.push("f", /*priority=*/0);
  std::vector<std::string> popped;
  while (!q.empty()) popped.push_back(q.pop());
  EXPECT_EQ(popped, (std::vector<std::string>{"d", "e", "c", "b", "a", "f"}));
}

}  // namespace
}  // namespace casp::svc
