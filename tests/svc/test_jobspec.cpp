// JobSpec: the unified job-description value type. Deterministic JSON
// round-trip (byte-identical dump after parse), strict parsing, structural
// validation, and the thin views over the legacy option structs.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "svc/jobspec.hpp"

namespace casp::svc {
namespace {

JobSpec full_spec() {
  JobSpec s;
  s.job_id = "j1";
  s.tenant = "acme";
  s.priority = 3;
  s.op = JobOp::kMcl;
  s.a = MatrixSource::er_square(32, 3.0, 5);
  s.ranks = 4;
  s.layers = 1;
  s.memory_bytes = 1 << 20;
  s.kernel = "hybrid";
  s.sort_final = false;
  s.pipeline = false;
  s.sparse_comm = true;
  s.threads = 2;
  s.force_batches = 2;
  s.adaptive_rebatch = false;
  s.ckpt_dir = "/tmp/ckpt";
  s.ckpt_every = 2;
  s.ckpt_job_tag = "tag";
  s.mcl.inflation = 2.5;
  s.mcl.prune_threshold = 1e-5;
  s.mcl.keep_per_col = 40;
  s.mcl.max_iterations = 7;
  s.fault_spec = "seed=2;crash_rank=1;crash_op=9";
  s.max_restarts = 2;
  return s;
}

TEST(JobSpec, JsonRoundTripIsByteIdentical) {
  const JobSpec s = full_spec();
  const std::string once = s.dump();
  const std::string twice = JobSpec::parse(once).dump();
  EXPECT_EQ(once, twice);
  // And again through the Json object API.
  EXPECT_EQ(JobSpec::from_json(s.to_json()).to_json().dump(), once);
}

TEST(JobSpec, RoundTripPreservesEveryField) {
  const JobSpec s = full_spec();
  const JobSpec r = JobSpec::parse(s.dump());
  EXPECT_EQ(r.job_id, "j1");
  EXPECT_EQ(r.tenant, "acme");
  EXPECT_EQ(r.priority, 3);
  EXPECT_EQ(r.op, JobOp::kMcl);
  EXPECT_EQ(r.a.kind, MatrixSource::Kind::kEr);
  EXPECT_EQ(r.a.er.nrows, 32);
  EXPECT_TRUE(r.b.empty());
  EXPECT_EQ(r.memory_bytes, Bytes{1} << 20);
  EXPECT_EQ(r.kernel, "hybrid");
  EXPECT_FALSE(r.sort_final);
  EXPECT_FALSE(r.pipeline);
  EXPECT_TRUE(r.sparse_comm);
  EXPECT_EQ(r.threads, 2);
  EXPECT_EQ(r.force_batches, 2);
  EXPECT_FALSE(r.adaptive_rebatch);
  EXPECT_EQ(r.ckpt_dir, "/tmp/ckpt");
  EXPECT_EQ(r.ckpt_every, 2u);
  EXPECT_EQ(r.ckpt_job_tag, "tag");
  EXPECT_DOUBLE_EQ(r.mcl.inflation, 2.5);
  EXPECT_EQ(r.mcl.keep_per_col, 40);
  EXPECT_EQ(r.fault_spec, "seed=2;crash_rank=1;crash_op=9");
  EXPECT_EQ(r.max_restarts, 2);
}

TEST(JobSpec, StrictParseRejectsUnknownKeys) {
  EXPECT_THROW(JobSpec::parse(R"({"bogus": 1})"), InvalidArgument);
  EXPECT_THROW(JobSpec::parse(R"({"a": {"kind": "er", "er": {"zzz": 1}}})"),
               InvalidArgument);
}

TEST(JobSpec, ValidateCatchesStructuralErrors) {
  JobSpec ok;
  ok.a = MatrixSource::er_square(16, 2.0, 1);
  ok.ranks = 4;
  ok.layers = 1;
  EXPECT_NO_THROW(ok.validate());

  JobSpec s = ok;
  s.ranks = 6;  // ranks/layers must form a square grid
  EXPECT_THROW(s.validate(), InvalidArgument);

  s = ok;
  s.kernel = "bogus";
  EXPECT_THROW(s.validate(), InvalidArgument);

  s = ok;
  s.a = MatrixSource{};  // no input operand
  EXPECT_THROW(s.validate(), InvalidArgument);

  s = ok;
  s.aat = true;
  s.b = MatrixSource::er_square(16, 2.0, 2);  // aat and b are exclusive
  EXPECT_THROW(s.validate(), InvalidArgument);

  s = ok;
  s.op = JobOp::kMcl;
  s.b = MatrixSource::er_square(16, 2.0, 2);  // b is SpGEMM-only
  EXPECT_THROW(s.validate(), InvalidArgument);

  s = ok;
  s.threads = 0;
  EXPECT_THROW(s.validate(), InvalidArgument);

  s = ok;
  s.op = JobOp::kMcl;
  s.mcl.inflation = 0.0;
  EXPECT_THROW(s.validate(), InvalidArgument);

  s = ok;
  s.fault_spec = "not-a-fault-spec";
  EXPECT_THROW(s.validate(), InvalidArgument);
}

TEST(JobSpec, SummaOptionsViewMapsKernelAndKnobs) {
  JobSpec s = full_spec();
  s.kernel = "hash";
  SummaOptions hash = s.summa_options();
  EXPECT_EQ(hash.local_kind, SpGemmKind::kUnsortedHash);
  EXPECT_EQ(hash.merge_kind, MergeKind::kUnsortedHash);
  s.kernel = "hybrid";
  SummaOptions hybrid = s.summa_options();
  EXPECT_EQ(hybrid.local_kind, SpGemmKind::kHybrid);
  EXPECT_EQ(hybrid.merge_kind, MergeKind::kSortedHeap);
  EXPECT_FALSE(hybrid.sort_final);
  EXPECT_FALSE(hybrid.pipeline);
  EXPECT_TRUE(hybrid.sparse_comm);
  EXPECT_EQ(hybrid.threads, 2);
  EXPECT_EQ(hybrid.force_batches, 2);
  EXPECT_FALSE(hybrid.adaptive_rebatch);
  EXPECT_EQ(hybrid.ckpt_job_tag, "tag");
  // Non-owning pointers are wired by the executor, never by the view.
  EXPECT_EQ(hybrid.memory, nullptr);
  EXPECT_EQ(hybrid.ckpt, nullptr);
}

TEST(JobSpec, RunOptionsNeverInheritEnvFaults) {
  JobSpec s;
  s.a = MatrixSource::er_square(16, 2.0, 1);
  // Empty fault_spec must pin an explicitly *disabled* plan (not "unset",
  // which would make vmpi::run consult CASP_VMPI_FAULTS) — one tenant's
  // environment chaos must never leak into another tenant's job.
  vmpi::RunOptions quiet = s.run_options();
  ASSERT_TRUE(quiet.faults.has_value());
  EXPECT_FALSE(quiet.faults->enabled());
  EXPECT_TRUE(quiet.capture_failure);

  s.fault_spec = "seed=7;crash_rank=2;crash_op=11";
  vmpi::RunOptions chaos = s.run_options();
  ASSERT_TRUE(chaos.faults.has_value());
  EXPECT_TRUE(chaos.faults->enabled());
  EXPECT_EQ(chaos.faults->crash_rank, 2);
  EXPECT_EQ(chaos.faults->crash_op, 11u);

  s.max_restarts = 5;
  vmpi::SupervisorOptions sup = s.supervisor_options();
  EXPECT_EQ(sup.max_restarts, 5);
  ASSERT_TRUE(sup.faults.has_value());
  EXPECT_TRUE(sup.faults->enabled());
  EXPECT_TRUE(s.supervised());
}

TEST(MatrixSource, GeneratorMaterializationIsDeterministic) {
  const MatrixSource src = MatrixSource::er_square(48, 3.0, 11);
  const CscMat a = src.materialize();
  const CscMat b = src.materialize();
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.nrows(), 48);
}

}  // namespace
}  // namespace casp::svc
