// SvcSoak: the ISSUE's acceptance scenario. A 10-job mixed-tenant queue
// (SpGEMM + MCL + triangle count, one tenant injecting crashes) drains on
// one resident rank pool; every surviving job's result must be bit-identical
// (tolerance 0.0) to its standalone vmpi::run equivalent, the deterministic
// per-job reports must be byte-identical across two independent servers fed
// the same specs, and each tenant's billed totals must reconcile with the
// sum of its jobs' billing (Table II logical volumes).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "apps/triangle.hpp"
#include "grid/dist.hpp"
#include "kernels/semiring.hpp"
#include "summa/batched.hpp"
#include "svc/server.hpp"

namespace casp::svc {
namespace {

std::vector<JobSpec> soak_specs() {
  std::vector<JobSpec> specs;
  auto add = [&](JobSpec s) {
    s.job_id = "soak-" + std::to_string(specs.size());
    specs.push_back(std::move(s));
  };

  // alice: four SpGEMM variants.
  for (int i = 0; i < 4; ++i) {
    JobSpec s;
    s.tenant = "alice";
    s.op = JobOp::kSpGemm;
    s.a = MatrixSource::er_square(56, 3.0, 100 + static_cast<unsigned>(i));
    s.ranks = 4;
    s.priority = i % 2;
    if (i == 1) s.aat = true;
    if (i == 2) s.kernel = "hybrid";
    if (i == 3) {
      s.memory_bytes = Bytes{16} << 20;
      s.force_batches = 2;
    }
    add(std::move(s));
  }
  // bob: three MCL runs and a triangle count.
  for (int i = 0; i < 3; ++i) {
    JobSpec s;
    s.tenant = "bob";
    s.op = JobOp::kMcl;
    s.a = MatrixSource::protein_network(40, 200 + static_cast<unsigned>(i));
    s.ranks = 4;
    s.priority = 2;
    s.mcl.max_iterations = 5;
    add(std::move(s));
  }
  {
    JobSpec s;
    s.tenant = "bob";
    s.op = JobOp::kTriangleCount;
    s.a = MatrixSource::rmat_graph(6, 4.0, 300);
    s.ranks = 4;
    add(std::move(s));
  }
  // chaos: one supervised job that crashes and recovers, one unsupervised
  // job that crashes and fails. Neither may take the pool down.
  {
    JobSpec s;
    s.tenant = "chaos";
    s.op = JobOp::kSpGemm;
    s.a = MatrixSource::er_square(48, 3.0, 400);
    s.ranks = 4;
    s.fault_spec = "seed=1;crash_rank=2;crash_op=15";
    s.max_restarts = 2;
    add(std::move(s));
  }
  {
    JobSpec s;
    s.tenant = "chaos";
    s.op = JobOp::kSpGemm;
    s.a = MatrixSource::er_square(48, 3.0, 401);
    s.ranks = 4;
    s.fault_spec = "seed=2;crash_rank=1;crash_op=20";
    add(std::move(s));
  }
  EXPECT_EQ(specs.size(), 10u);
  return specs;
}

/// Fault-free standalone equivalent of a service SpGEMM job: plain
/// vmpi::run with the exact option views the service derives.
CscMat standalone_spgemm(const JobSpec& spec, const CscMat& a,
                         const CscMat& b) {
  CscMat out;
  vmpi::RunOptions run_opts;
  run_opts.faults = vmpi::FaultPlan{};
  vmpi::run(
      spec.ranks,
      [&](vmpi::Comm& world) {
        MemoryTracker tracker(
            spec.memory_bytes == 0
                ? 0
                : std::max<Bytes>(1, spec.memory_bytes /
                                         static_cast<Bytes>(world.size())));
        vmpi::arm_alloc_faults(world, tracker);
        SummaOptions opts = spec.summa_options();
        if (spec.memory_bytes != 0) opts.memory = &tracker;
        Grid3D grid(world, spec.layers);
        const DistMat3D da = distribute_a_style(grid, a);
        const DistMat3D db = distribute_b_style(grid, b);
        BatchedResult r = batched_summa3d<PlusTimes>(
            grid, da, db, spec.memory_bytes, opts, BatchCallback{},
            /*keep_output=*/true);
        CscMat full = gather_dist(grid, r.c);
        if (world.rank() == 0) out = std::move(full);
      },
      run_opts);
  return out;
}

MclResult standalone_mcl(const JobSpec& spec, const CscMat& a) {
  MclResult out;
  vmpi::RunOptions run_opts;
  run_opts.faults = vmpi::FaultPlan{};
  vmpi::run(
      spec.ranks,
      [&](vmpi::Comm& world) {
        Grid3D grid(world, spec.layers);
        MclResult r = mcl_cluster_distributed(grid, a, spec.mcl,
                                              spec.memory_bytes,
                                              spec.summa_options());
        if (world.rank() == 0) out = std::move(r);
      },
      run_opts);
  return out;
}

Index standalone_triangles(const JobSpec& spec, const CscMat& a) {
  Index out = 0;
  vmpi::RunOptions run_opts;
  run_opts.faults = vmpi::FaultPlan{};
  vmpi::run(
      spec.ranks,
      [&](vmpi::Comm& world) {
        Grid3D grid(world, spec.layers);
        const Index t = count_triangles_distributed(
            grid, a, spec.memory_bytes, spec.summa_options());
        if (world.rank() == 0) out = t;
      },
      run_opts);
  return out;
}

TEST(SvcSoak, MixedTenantQueueMatchesStandaloneBitForBit) {
  Server server(ServerOptions{});
  std::vector<std::string> ids;
  for (JobSpec spec : soak_specs()) ids.push_back(server.submit(spec));
  server.drain();

  int done = 0, failed = 0;
  for (const std::string& id : ids) {
    const JobRecord* job = server.find(id);
    ASSERT_NE(job, nullptr);
    ASSERT_TRUE(job->terminal()) << id << " not terminal";
    if (job->state == JobState::kFailed) {
      ++failed;
      continue;
    }
    ASSERT_EQ(job->state, JobState::kDone) << id << ": " << job->reason;
    ++done;
    switch (job->spec.op) {
      case JobOp::kSpGemm: {
        const CscMat expect =
            standalone_spgemm(job->spec, job->in_a, job->in_b);
        EXPECT_TRUE(job->c == expect) << id << ": product diverged";
        break;
      }
      case JobOp::kMcl: {
        const MclResult expect = standalone_mcl(job->spec, job->in_a);
        EXPECT_EQ(job->mcl.cluster_of, expect.cluster_of) << id;
        EXPECT_EQ(job->mcl.num_clusters, expect.num_clusters) << id;
        EXPECT_EQ(job->mcl.iterations, expect.iterations) << id;
        break;
      }
      case JobOp::kTriangleCount:
        EXPECT_EQ(job->triangles, standalone_triangles(job->spec, job->in_a))
            << id;
        break;
    }
  }
  // Exactly one job (the unsupervised chaos crash) may fail.
  EXPECT_EQ(done, 9);
  EXPECT_EQ(failed, 1);

  // The supervised chaos job recovered on the same pool.
  const JobRecord* recovered = server.find("soak-8");
  EXPECT_EQ(recovered->state, JobState::kDone);
  EXPECT_GE(recovered->report.billing.restarts, 1u);
}

TEST(SvcSoak, DeterministicReportsAreByteIdenticalAcrossServers) {
  std::string dumps[2];
  for (std::string& dump : dumps) {
    Server server(ServerOptions{});
    for (JobSpec spec : soak_specs()) server.submit(spec);
    server.drain();
    dump = server.job_reports_json(/*deterministic=*/true).dump();
  }
  EXPECT_FALSE(dumps[0].empty());
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(SvcSoak, TenantBillingReconcilesWithPerJobReports) {
  Server server(ServerOptions{});
  std::vector<std::string> ids;
  for (JobSpec spec : soak_specs()) ids.push_back(server.submit(spec));
  server.drain();

  std::map<std::string, Bytes> logical, shipped;
  std::map<std::string, std::uint64_t> messages;
  for (const std::string& id : ids) {
    const JobRecord* job = server.find(id);
    logical[job->spec.tenant] += job->report.billing.logical_bytes;
    shipped[job->spec.tenant] += job->report.billing.shipped_bytes;
    messages[job->spec.tenant] += job->report.billing.messages;
  }
  for (const std::string tenant : {"alice", "bob", "chaos"}) {
    const obs::Json rep = server.tenant_report(tenant);
    const obs::Json* traffic = rep.find("traffic");
    ASSERT_NE(traffic, nullptr) << tenant;
    EXPECT_EQ(traffic->find("logical_bytes")->as_int(),
              static_cast<std::int64_t>(logical[tenant]))
        << tenant;
    EXPECT_EQ(traffic->find("shipped_bytes")->as_int(),
              static_cast<std::int64_t>(shipped[tenant]))
        << tenant;
    EXPECT_EQ(traffic->find("messages")->as_int(),
              static_cast<std::int64_t>(messages[tenant]))
        << tenant;
    // Table II reconciliation: the per-phase decomposition sums back to the
    // tenant's logical total.
    const obs::Json* by_phase = traffic->find("logical_bytes_by_phase");
    ASSERT_NE(by_phase, nullptr) << tenant;
    std::int64_t phase_sum = 0;
    for (const auto& [phase, bytes] : by_phase->members())
      phase_sum += bytes.as_int();
    EXPECT_EQ(phase_sum, traffic->find("logical_bytes")->as_int()) << tenant;
    EXPECT_EQ(server.tenant(tenant).traffic_billed(), logical[tenant])
        << tenant;
  }
}

}  // namespace
}  // namespace casp::svc
