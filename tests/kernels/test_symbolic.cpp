#include <gtest/gtest.h>

#include <numeric>

#include "gen/rmat.hpp"
#include "kernels/reference.hpp"
#include "kernels/symbolic.hpp"
#include "sparse/stats.hpp"
#include "test_util.hpp"

namespace casp {
namespace {

class SymbolicSweep
    : public ::testing::TestWithParam<std::tuple<Index, Index, Index, double>> {
};

TEST_P(SymbolicSweep, CountsMatchActualProduct) {
  const auto [m, k, n, d] = GetParam();
  const CscMat a = testing::random_matrix(m, k, d, 60);
  const CscMat b = testing::random_matrix(k, n, d, 61);
  const CscMat c = reference_multiply<PlusTimes>(a, b);
  const auto per_col = symbolic_column_nnz(a, b);
  ASSERT_EQ(per_col.size(), static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j)
    EXPECT_EQ(per_col[static_cast<std::size_t>(j)], c.col_nnz(j)) << "col " << j;
  EXPECT_EQ(symbolic_nnz(a, b), c.nnz());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SymbolicSweep,
    ::testing::Values(std::tuple<Index, Index, Index, double>{10, 10, 10, 2.0},
                      std::tuple<Index, Index, Index, double>{40, 20, 30, 4.0},
                      std::tuple<Index, Index, Index, double>{1, 5, 1, 2.0},
                      std::tuple<Index, Index, Index, double>{80, 80, 80, 6.0},
                      std::tuple<Index, Index, Index, double>{8, 8, 8, 8.0}));

TEST(Symbolic, BoundsRelativeToFlops) {
  // nnz(C) <= flops always; equality iff no compression (cf == 1).
  const CscMat a = testing::random_matrix(50, 50, 3.0, 62);
  EXPECT_LE(symbolic_nnz(a, a), multiply_flops(a, a));
}

TEST(Symbolic, EmptyProduct) {
  const CscMat a(10, 10);
  EXPECT_EQ(symbolic_nnz(a, a), 0);
}

TEST(Symbolic, PowerLawInput) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 4.0;
  p.seed = 63;
  const CscMat a = generate_rmat(p);
  const CscMat c = reference_multiply<PlusTimes>(a, a);
  EXPECT_EQ(symbolic_nnz(a, a), c.nnz());
}

TEST(Symbolic, AcceptsUnsortedInputs) {
  CscMat a(4, 2, {0, 3, 4}, {3, 0, 2, 1}, {1.0, 1.0, 1.0, 1.0});
  // Column 0 of A*A... build B referencing both columns unsorted.
  CscMat b(2, 1, {0, 2}, {1, 0}, {1.0, 1.0});
  const auto per_col = symbolic_column_nnz(a, b);
  EXPECT_EQ(per_col[0], 4);  // rows {3, 0, 2} from col 0 plus {1} from col 1
}

}  // namespace
}  // namespace casp
