#include <gtest/gtest.h>

#include "kernels/merge.hpp"
#include "kernels/reference.hpp"
#include "kernels/spgemm.hpp"
#include "test_util.hpp"

namespace casp {
namespace {

std::vector<CscMat> random_pieces(int count, Index rows, Index cols, double d,
                                  std::uint64_t seed) {
  std::vector<CscMat> pieces;
  for (int i = 0; i < count; ++i)
    pieces.push_back(testing::random_matrix(
        rows, cols, d, seed + static_cast<std::uint64_t>(i)));
  return pieces;
}

class MergeBothKinds : public ::testing::TestWithParam<MergeKind> {};

TEST_P(MergeBothKinds, MatchesReferenceAcrossPieceCounts) {
  const MergeKind kind = GetParam();
  for (int count : {1, 2, 3, 7, 16}) {
    const auto pieces = random_pieces(count, 30, 25, 3.0, 50);
    const CscMat expected = reference_merge<PlusTimes>(pieces);
    const CscMat got = merge_matrices<PlusTimes>(csc_refs(pieces), kind);
    testing::expect_mat_near(got, expected, 1e-9);
    if (kind == MergeKind::kSortedHeap) {
      EXPECT_TRUE(got.columns_sorted());
    }
  }
}

TEST_P(MergeBothKinds, OverlappingEntriesAreSummed) {
  const MergeKind kind = GetParam();
  // All pieces identical: merged value = count * value.
  const CscMat base = testing::random_matrix(20, 20, 3.0, 51);
  const std::vector<CscMat> pieces(4, base);
  const CscMat merged = merge_matrices<PlusTimes>(csc_refs(pieces), kind);
  EXPECT_EQ(merged.nnz(), base.nnz());
  CscMat sorted_merged = merged;
  sorted_merged.sort_columns();
  CscMat expected = base;
  expected.sort_columns();
  for (Value& v : expected.vals_mutable()) v *= 4.0;
  testing::expect_mat_near(sorted_merged, expected, 1e-12);
}

TEST_P(MergeBothKinds, EmptyPieces) {
  const MergeKind kind = GetParam();
  const std::vector<CscMat> pieces(3, CscMat(10, 10));
  const CscMat merged = merge_matrices<PlusTimes>(csc_refs(pieces), kind);
  EXPECT_EQ(merged.nnz(), 0);
  EXPECT_EQ(merged.nrows(), 10);
}

TEST_P(MergeBothKinds, MinPlusSemiring) {
  const MergeKind kind = GetParam();
  const auto pieces = random_pieces(3, 15, 15, 2.0, 52);
  testing::expect_mat_near(merge_matrices<MinPlus>(csc_refs(pieces), kind),
                           reference_merge<MinPlus>(pieces), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Kinds, MergeBothKinds,
                         ::testing::Values(MergeKind::kUnsortedHash,
                                           MergeKind::kSortedHeap));

TEST(Merge, ShapeMismatchThrows) {
  std::vector<CscMat> pieces;
  pieces.push_back(testing::random_matrix(5, 5, 1.0, 53));
  pieces.push_back(testing::random_matrix(5, 6, 1.0, 54));
  EXPECT_THROW(
      merge_matrices<PlusTimes>(csc_refs(pieces), MergeKind::kUnsortedHash),
               std::logic_error);
}

TEST(Merge, HashMergeAcceptsUnsortedInputs) {
  // Feed unsorted-hash SpGEMM outputs (unsorted columns) directly into the
  // hash merge — the exact mid-pipeline situation of BatchedSUMMA3D.
  const CscMat a = testing::random_matrix(40, 40, 3.0, 55);
  const CscMat b = testing::random_matrix(40, 40, 3.0, 56);
  std::vector<CscMat> partials;
  partials.push_back(local_spgemm<PlusTimes>(a, b, SpGemmKind::kUnsortedHash));
  partials.push_back(local_spgemm<PlusTimes>(b, a, SpGemmKind::kUnsortedHash));
  const CscMat merged =
      merge_matrices<PlusTimes>(csc_refs(partials), MergeKind::kUnsortedHash);
  std::vector<CscMat> sorted_partials = partials;
  for (CscMat& m : sorted_partials) m.sort_columns();
  const CscMat expected = reference_merge<PlusTimes>(sorted_partials);
  testing::expect_mat_near(merged, expected, 1e-9);
}

TEST(Merge, HashMergeOutputUnsortedIsAllowed) {
  // Documents the contract: kUnsortedHash merge gives no ordering promise;
  // only the final sort fixes order. (Not a strict requirement that it be
  // unsorted — just that the merged values are right either way.)
  const auto pieces = random_pieces(4, 25, 25, 4.0, 57);
  CscMat merged =
      merge_matrices<PlusTimes>(csc_refs(pieces), MergeKind::kUnsortedHash);
  merged.sort_columns();
  testing::expect_mat_near(merged, reference_merge<PlusTimes>(pieces), 1e-9);
}

TEST(Merge, MultithreadedMatchesSerial) {
  const auto pieces = random_pieces(8, 60, 60, 4.0, 58);
  const CscMat serial =
      merge_matrices<PlusTimes>(csc_refs(pieces), MergeKind::kUnsortedHash, 1);
  const CscMat parallel =
      merge_matrices<PlusTimes>(csc_refs(pieces), MergeKind::kUnsortedHash, 4);
  testing::expect_mat_near(parallel, serial, 1e-12);
}

TEST(Merge, KindNames) {
  EXPECT_STREQ(to_string(MergeKind::kUnsortedHash), "unsorted-hash-merge");
  EXPECT_STREQ(to_string(MergeKind::kSortedHeap), "sorted-heap-merge");
}

}  // namespace
}  // namespace casp
