// Local SpGEMM kernels vs the independent map-based reference, swept over
// kernel kinds, shapes, densities, and semirings.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "gen/rmat.hpp"
#include "kernels/reference.hpp"
#include "kernels/spgemm.hpp"
#include "kernels/symbolic.hpp"
#include "test_util.hpp"

namespace casp {
namespace {

const SpGemmKind kAllKinds[] = {SpGemmKind::kUnsortedHash,
                                SpGemmKind::kSortedHash, SpGemmKind::kHeap,
                                SpGemmKind::kHybrid, SpGemmKind::kSpa};

struct SpGemmCase {
  Index m, k, n;
  double da, db;
  std::uint64_t seed;
};

class SpGemmKinds
    : public ::testing::TestWithParam<std::tuple<SpGemmKind, SpGemmCase>> {};

TEST_P(SpGemmKinds, MatchesReference) {
  const auto [kind, c] = GetParam();
  const CscMat a = testing::random_matrix(c.m, c.k, c.da, c.seed);
  const CscMat b = testing::random_matrix(c.k, c.n, c.db, c.seed + 1);
  const CscMat expected = reference_multiply<PlusTimes>(a, b);
  const CscMat got = local_spgemm<PlusTimes>(a, b, kind);
  testing::expect_mat_near(got, expected, 1e-9);
  if (produces_sorted(kind)) {
    EXPECT_TRUE(got.columns_sorted());
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsTimesShapes, SpGemmKinds,
    ::testing::Combine(
        ::testing::ValuesIn(kAllKinds),
        ::testing::Values(SpGemmCase{20, 20, 20, 3.0, 3.0, 1},
                          SpGemmCase{50, 30, 40, 4.0, 2.0, 2},
                          SpGemmCase{1, 1, 1, 1.0, 1.0, 3},
                          SpGemmCase{100, 100, 100, 5.0, 5.0, 4},
                          // dense-ish: heavy accumulator collisions
                          SpGemmCase{12, 12, 12, 8.0, 8.0, 5},
                          // hyper-sparse: mostly empty columns
                          SpGemmCase{200, 200, 200, 0.2, 0.2, 6},
                          // wildly rectangular
                          SpGemmCase{5, 150, 7, 2.0, 30.0, 7})));

TEST(SpGemm, EmptyOperands) {
  const CscMat a(10, 0);
  const CscMat b(0, 5);
  for (SpGemmKind kind : kAllKinds) {
    const CscMat c = local_spgemm<PlusTimes>(a, b, kind);
    EXPECT_EQ(c.nrows(), 10);
    EXPECT_EQ(c.ncols(), 5);
    EXPECT_EQ(c.nnz(), 0);
  }
}

TEST(SpGemm, DimensionMismatchThrows) {
  const CscMat a = testing::random_matrix(4, 5, 1.0, 8);
  const CscMat b = testing::random_matrix(6, 4, 1.0, 9);
  EXPECT_THROW(local_spgemm<PlusTimes>(a, b), std::logic_error);
}

TEST(SpGemm, UnsortedHashSortsToSameCanonicalForm) {
  const CscMat a = testing::random_matrix(60, 60, 4.0, 10);
  CscMat unsorted = local_spgemm<PlusTimes>(a, a, SpGemmKind::kUnsortedHash);
  const CscMat sorted = local_spgemm<PlusTimes>(a, a, SpGemmKind::kSortedHash);
  // The unsorted kernel's whole point: same math, no intermediate sorting.
  unsorted.sort_columns();
  testing::expect_mat_near(unsorted, sorted, 1e-12);
}

TEST(SpGemm, AcceptsUnsortedInputs) {
  // Hash kernels must work when the inputs themselves are unsorted — that
  // is what Merge-Layer receives mid-pipeline.
  const CscMat a = testing::random_matrix(30, 30, 3.0, 11);
  CscMat shuffled(
      a.nrows(), a.ncols(),
      std::vector<Index>(a.colptr().begin(), a.colptr().end()),
      std::vector<Index>(a.rowids().begin(), a.rowids().end()),
      std::vector<Value>(a.vals().begin(), a.vals().end()));
  // Reverse each column's entry order.
  {
    std::vector<Index> rows(shuffled.rowids().begin(), shuffled.rowids().end());
    std::vector<Value> vals(shuffled.vals().begin(), shuffled.vals().end());
    for (Index j = 0; j < a.ncols(); ++j) {
      const auto lo = static_cast<std::size_t>(a.colptr()[static_cast<std::size_t>(j)]);
      const auto hi = static_cast<std::size_t>(a.colptr()[static_cast<std::size_t>(j) + 1]);
      std::reverse(rows.begin() + static_cast<std::ptrdiff_t>(lo),
                   rows.begin() + static_cast<std::ptrdiff_t>(hi));
      std::reverse(vals.begin() + static_cast<std::ptrdiff_t>(lo),
                   vals.begin() + static_cast<std::ptrdiff_t>(hi));
    }
    shuffled = CscMat(a.nrows(), a.ncols(),
                      std::vector<Index>(a.colptr().begin(), a.colptr().end()),
                      std::move(rows), std::move(vals));
  }
  const CscMat expected = reference_multiply<PlusTimes>(a, a);
  testing::expect_mat_near(
      local_spgemm<PlusTimes>(shuffled, shuffled, SpGemmKind::kUnsortedHash),
      expected, 1e-9);
  testing::expect_mat_near(
      local_spgemm<PlusTimes>(shuffled, shuffled, SpGemmKind::kSpa), expected,
      1e-9);
}

TEST(SpGemmSemirings, MinPlusMatchesReference) {
  const CscMat a = testing::random_matrix(25, 25, 3.0, 12);
  const CscMat expected = reference_multiply<MinPlus>(a, a);
  for (SpGemmKind kind : kAllKinds)
    testing::expect_mat_near(local_spgemm<MinPlus>(a, a, kind), expected,
                             1e-12);
}

TEST(SpGemmSemirings, MaxMinMatchesReference) {
  const CscMat a = testing::random_matrix(25, 25, 3.0, 13);
  const CscMat expected = reference_multiply<MaxMin>(a, a);
  for (SpGemmKind kind : kAllKinds)
    testing::expect_mat_near(local_spgemm<MaxMin>(a, a, kind), expected,
                             1e-12);
}

TEST(SpGemmSemirings, OrAndMatchesReference) {
  CscMat a = testing::random_matrix(25, 25, 3.0, 14);
  for (Value& v : a.vals_mutable()) v = 1.0;
  const CscMat expected = reference_multiply<OrAnd>(a, a);
  for (SpGemmKind kind : kAllKinds)
    testing::expect_mat_near(local_spgemm<OrAnd>(a, a, kind), expected, 0.0);
}

TEST(SpGemm, PowerLawInputsAllKindsAgree) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 6.0;
  p.seed = 15;
  const CscMat a = generate_rmat(p);
  const CscMat expected =
      local_spgemm<PlusTimes>(a, a, SpGemmKind::kSpa);  // SPA as anchor
  for (SpGemmKind kind : kAllKinds)
    testing::expect_mat_near(local_spgemm<PlusTimes>(a, a, kind), expected,
                             1e-9);
}

TEST(SpGemm, MultithreadedMatchesSerial) {
  const CscMat a = testing::random_matrix(120, 120, 5.0, 16);
  const CscMat serial = local_spgemm<PlusTimes>(a, a, SpGemmKind::kUnsortedHash,
                                                /*threads=*/1);
  const CscMat parallel =
      local_spgemm<PlusTimes>(a, a, SpGemmKind::kUnsortedHash, /*threads=*/4);
  testing::expect_mat_near(parallel, serial, 1e-12);
}

TEST(SpGemm, SymbolicHintsPreserveResultsExactly) {
  // Pre-sizing the hash tables from symbolic per-column counts must not
  // change a single byte of the output: emit order is first-touch order,
  // independent of table capacity.
  const CscMat a = testing::random_matrix(90, 90, 4.0, 17);
  const std::vector<Index> hints = symbolic_column_nnz(a, a);
  for (SpGemmKind kind :
       {SpGemmKind::kUnsortedHash, SpGemmKind::kSortedHash,
        SpGemmKind::kHybrid}) {
    const CscMat plain = local_spgemm<PlusTimes>(a, a, kind, /*threads=*/1);
    const CscMat hinted =
        local_spgemm<PlusTimes>(a, a, kind, /*threads=*/1, hints);
    testing::expect_mat_near(hinted, plain, 0.0);
  }
}

TEST(SpGemm, UndersizedHintsStillProduceCorrectResults) {
  // A wrong (too small) hint must cost a rehash, never correctness: the
  // accumulator grows on load instead of looping on a full table.
  const CscMat a = testing::random_matrix(60, 60, 5.0, 18);
  const std::vector<Index> ones(static_cast<std::size_t>(a.ncols()), 1);
  const CscMat plain =
      local_spgemm<PlusTimes>(a, a, SpGemmKind::kUnsortedHash);
  const CscMat hinted = local_spgemm<PlusTimes>(
      a, a, SpGemmKind::kUnsortedHash, /*threads=*/1, ones);
  testing::expect_mat_near(hinted, plain, 1e-12);
}

TEST(SpGemm, HintSpanOfWrongLengthIsRejected) {
  const CscMat a = testing::random_matrix(12, 12, 2.0, 19);
  const std::vector<Index> short_hints(3, 5);
  EXPECT_THROW((void)local_spgemm<PlusTimes>(
                   a, a, SpGemmKind::kUnsortedHash, 1, short_hints),
               std::logic_error);
}

TEST(SpGemm, KindNames) {
  EXPECT_STREQ(to_string(SpGemmKind::kUnsortedHash), "unsorted-hash");
  EXPECT_STREQ(to_string(SpGemmKind::kHybrid), "hybrid");
  EXPECT_FALSE(produces_sorted(SpGemmKind::kUnsortedHash));
  EXPECT_TRUE(produces_sorted(SpGemmKind::kHeap));
}

}  // namespace
}  // namespace casp
