// Masked SpGEMM: C = (A*B) .* pattern(mask).
#include <gtest/gtest.h>

#include <set>

#include "kernels/reference.hpp"
#include "kernels/spgemm.hpp"
#include "test_util.hpp"

namespace casp {
namespace {

/// Reference: full product filtered to the mask's pattern.
CscMat masked_reference(const CscMat& a, const CscMat& b, const CscMat& mask) {
  CscMat full = reference_multiply<PlusTimes>(a, b);
  std::set<std::pair<Index, Index>> allowed;
  for (Index j = 0; j < mask.ncols(); ++j)
    for (Index r : mask.col_rowids(j)) allowed.insert({r, j});
  full.prune([&](Index row, Index col, Value) {
    return allowed.count({row, col}) > 0;
  });
  return full;
}

TEST(MaskedSpGemm, MatchesFilteredFullProduct) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const CscMat a = testing::random_matrix(40, 30, 3.0, 180 + seed);
    const CscMat b = testing::random_matrix(30, 35, 3.0, 190 + seed);
    const CscMat mask = testing::random_matrix(40, 35, 6.0, 200 + seed);
    const CscMat expected = masked_reference(a, b, mask);
    const CscMat got = local_spgemm_masked<PlusTimes>(a, b, mask);
    testing::expect_mat_near(got, expected, 1e-9);
    EXPECT_TRUE(got.columns_sorted());  // inherits mask order
    EXPECT_LE(got.nnz(), mask.nnz());
  }
}

TEST(MaskedSpGemm, SelfMaskIsTheTriangleCountingPattern) {
  // mask = adjacency, product = L*U: the values at masked positions count
  // the triangles through each edge.
  const CscMat a = testing::random_matrix(30, 30, 4.0, 210);
  const CscMat mask = a;
  const CscMat got = local_spgemm_masked<PlusTimes>(a, a, mask);
  const CscMat expected = masked_reference(a, a, mask);
  testing::expect_mat_near(got, expected, 1e-9);
}

TEST(MaskedSpGemm, EmptyMaskYieldsEmptyOutput) {
  const CscMat a = testing::random_matrix(20, 20, 3.0, 211);
  const CscMat mask(20, 20);
  EXPECT_EQ(local_spgemm_masked<PlusTimes>(a, a, mask).nnz(), 0);
}

TEST(MaskedSpGemm, FullMaskEqualsUnmaskedProduct) {
  const Index n = 18;
  TripleMat t(n, n);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j) t.push_back(i, j, 1.0);
  const CscMat mask = CscMat::from_triples(std::move(t));
  const CscMat a = testing::random_matrix(n, n, 3.0, 212);
  testing::expect_mat_near(local_spgemm_masked<PlusTimes>(a, a, mask),
                           reference_multiply<PlusTimes>(a, a), 1e-9);
}

TEST(MaskedSpGemm, ShapeMismatchThrows) {
  const CscMat a = testing::random_matrix(10, 10, 2.0, 213);
  const CscMat bad_mask = testing::random_matrix(9, 10, 2.0, 214);
  EXPECT_THROW(local_spgemm_masked<PlusTimes>(a, a, bad_mask),
               std::logic_error);
}

TEST(MaskedSpGemm, MinPlusSemiring) {
  const CscMat a = testing::random_matrix(25, 25, 3.0, 215);
  const CscMat mask = testing::random_matrix(25, 25, 5.0, 216);
  CscMat full = reference_multiply<MinPlus>(a, a);
  std::set<std::pair<Index, Index>> allowed;
  for (Index j = 0; j < mask.ncols(); ++j)
    for (Index r : mask.col_rowids(j)) allowed.insert({r, j});
  full.prune([&](Index row, Index col, Value) {
    return allowed.count({row, col}) > 0;
  });
  testing::expect_mat_near(local_spgemm_masked<MinPlus>(a, a, mask), full,
                           1e-12);
}

}  // namespace
}  // namespace casp
