// Cost-model tests: Table II/III scaling structure and Table VI trend
// directions must hold, and the model must agree with the instrumented
// runtime on communication volumes.
#include <gtest/gtest.h>

#include "grid/dist.hpp"
#include "model/costs.hpp"
#include "model/scaling.hpp"
#include "summa/batched.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

ProblemStats sample_stats() {
  ProblemStats s;
  s.nnz_a = 100'000'000;
  s.nnz_b = 100'000'000;
  s.flops = 5'000'000'000;
  s.nnz_c = 1'000'000'000;
  return s;
}

TEST(CostModel, TableVITrendsWithBatches) {
  // Fixed l, increasing b: A-Bcast up, B-Bcast bandwidth flat(ish),
  // Local-Multiply flat, Merge flat, fiber steps flat (Table VI row 1).
  const Machine m = cori_knl();
  const ProblemStats s = sample_stats();
  const StepSeconds t1 = predict_steps(m, s, {4096, 16, 1, true});
  const StepSeconds t8 = predict_steps(m, s, {4096, 16, 8, true});
  EXPECT_GT(t8.at(steps::kABcast), 4.0 * t1.at(steps::kABcast));
  // B-Bcast grows only by the latency term.
  EXPECT_LT(t8.at(steps::kBBcast), 2.0 * t1.at(steps::kBBcast));
  EXPECT_DOUBLE_EQ(t8.at(steps::kLocalMultiply), t1.at(steps::kLocalMultiply));
  EXPECT_DOUBLE_EQ(t8.at(steps::kMergeLayer), t1.at(steps::kMergeLayer));
  EXPECT_DOUBLE_EQ(t8.at(steps::kMergeFiber), t1.at(steps::kMergeFiber));
  // AllToAll-Fiber: bandwidth term unchanged, only latency grows.
  EXPECT_NEAR(t8.at(steps::kAllToAllFiber), t1.at(steps::kAllToAllFiber),
              m.alpha * 8 * 16 + 1e-12);
  // Symbolic is independent of b entirely.
  EXPECT_DOUBLE_EQ(t8.at(steps::kSymbolic), t1.at(steps::kSymbolic));
}

TEST(CostModel, TableVITrendsWithLayers) {
  // Fixed b, increasing l: both bcasts down, fiber steps up (Table VI row 2).
  const Machine m = cori_knl();
  const ProblemStats s = sample_stats();
  const StepSeconds l1 = predict_steps(m, s, {4096, 1, 4, true});
  const StepSeconds l16 = predict_steps(m, s, {4096, 16, 4, true});
  EXPECT_LT(l16.at(steps::kABcast), l1.at(steps::kABcast));
  EXPECT_LT(l16.at(steps::kBBcast), l1.at(steps::kBBcast));
  EXPECT_GT(l16.at(steps::kAllToAllFiber), l1.at(steps::kAllToAllFiber));
  EXPECT_GT(l16.at(steps::kMergeFiber), l1.at(steps::kMergeFiber));
  EXPECT_LT(l16.at(steps::kSymbolic), l1.at(steps::kSymbolic));
}

TEST(CostModel, ABcastBandwidthScalesAsSqrtL) {
  // Fig. 5: 4x layers -> ~2x less A-Bcast time (bandwidth regime).
  const Machine m = cori_knl();
  ProblemStats s = sample_stats();
  s.nnz_a = 4'000'000'000;  // bandwidth-dominated
  const double a1 =
      predict_steps(m, s, {4096, 1, 8, true}).at(steps::kABcast);
  const double a4 =
      predict_steps(m, s, {4096, 4, 8, true}).at(steps::kABcast);
  const double a16 =
      predict_steps(m, s, {4096, 16, 8, true}).at(steps::kABcast);
  EXPECT_NEAR(a1 / a4, 2.0, 0.25);
  EXPECT_NEAR(a4 / a16, 2.0, 0.25);
}

TEST(CostModel, HashKernelsBeatHeapKernels) {
  // Table VII: merge steps are an order of magnitude faster with the
  // unsorted-hash kernels at l = 16.
  const Machine m = cori_knl();
  const ProblemStats s = sample_stats();
  const StepSeconds hash = predict_steps(m, s, {4096, 16, 4, true});
  const StepSeconds heap = predict_steps(m, s, {4096, 16, 4, false});
  EXPECT_GT(heap.at(steps::kMergeLayer), 5.0 * hash.at(steps::kMergeLayer));
  EXPECT_GT(heap.at(steps::kMergeFiber), 2.0 * hash.at(steps::kMergeFiber));
}

TEST(CostModel, PredictBatchesMatchesEq2Arithmetic) {
  ProblemStats s = sample_stats();
  const Index p = 1024;
  const double r = static_cast<double>(kBytesPerNonzero);
  // Memory = inputs + exactly 1/5 of the unmerged output.
  const double per_rank = r * static_cast<double>(s.nnz_a + s.nnz_b) /
                              static_cast<double>(p) +
                          r * static_cast<double>(s.flops) /
                              (5.0 * static_cast<double>(p));
  const Bytes total = static_cast<Bytes>(per_rank * static_cast<double>(p));
  EXPECT_EQ(predict_batches(s, p, total), 5);
  EXPECT_EQ(predict_batches(s, p, 0), 1);  // unlimited
  EXPECT_THROW(predict_batches(s, p, 10), MemoryError);
}

TEST(CostModel, ImbalanceIncreasesBatches) {
  ProblemStats s = sample_stats();
  const Index p = 1024;
  const double r = static_cast<double>(kBytesPerNonzero);
  const double per_rank = r * static_cast<double>(s.nnz_a + s.nnz_b) /
                              static_cast<double>(p) * 3.0 +
                          r * static_cast<double>(s.flops) /
                              (4.0 * static_cast<double>(p));
  const Bytes total = static_cast<Bytes>(per_rank * static_cast<double>(p));
  const Index balanced = predict_batches(s, p, total);
  s.imbalance = 2.0;
  const Index skewed = predict_batches(s, p, total);
  EXPECT_GT(skewed, balanced);
}

TEST(CostModel, ModelBandwidthMatchesInstrumentedRun) {
  // The model's A-Bcast byte count must agree with the runtime's actual
  // measured traffic within the serialization-overhead margin.
  const Index n = 32;
  const CscMat a = testing::random_matrix(n, n, 4.0, 70);
  const int p = 16, l = 4;
  const Index b = 2;
  auto result = vmpi::run(p, [&](vmpi::Comm& world) {
    Grid3D grid(world, l);
    const DistMat3D da = distribute_a_style(grid, a);
    const DistMat3D db = distribute_b_style(grid, a);
    SummaOptions opts;
    opts.force_batches = b;
    (void)batched_summa3d<PlusTimes>(grid, da, db, 0, opts);
  });
  const auto traffic = result.traffic_summary();
  const Bytes abcast = traffic.total_per_phase.at(steps::kABcast).bytes;
  // Table II total volume: each of the b*q stage broadcasts ships the
  // root's block to q-1 receivers (tree total = size * (q-1)).
  // Sum over roots of one row = (q-1) * (layer slice of A in that row).
  // Across all rows/layers: (q-1) * b * nnz(A) entries.
  const Index q = 2;  // sqrt(16/4)
  const double expected_entries =
      static_cast<double>((q - 1) * b * a.nnz());
  const double actual_entries =
      static_cast<double>(abcast) / static_cast<double>(kBytesPerNonzero);
  // Serialization adds colptr + headers; allow 2.5x but demand the right
  // order of magnitude and the lower bound.
  EXPECT_GE(actual_entries, expected_entries * 0.9);
  EXPECT_LE(actual_entries, expected_entries * 3.0);
}

TEST(ScalingModel, MoreMemoryFewerBatchesSuperlinearSpeedup) {
  // Fig. 6/7: 4x nodes -> b at least halves -> superlinear total speedup
  // is possible (A-Bcast drops superlinearly).
  const Machine m = cori_knl();
  ProblemStats s = sample_stats();
  // Metaclust50-scale: 37B input nonzeros, 92T flops (Table V) — big enough
  // that 256 nodes need many batches.
  s.nnz_a = 37'000'000'000;
  s.nnz_b = 37'000'000'000;
  s.flops = 92'000'000'000'000;
  s.nnz_c = 1'000'000'000'000;
  const auto series = strong_scaling(m, s, {1024, 4096, 16384}, 16);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_GT(series[0].b, series[1].b);
  EXPECT_GE(series[1].b, series[2].b);
  EXPECT_GT(series[1].total, series[2].total);
  EXPECT_GT(series[0].total, series[1].total);
}

TEST(ScalingModel, LayeredUnmergedVolumeGrowsWithLayers) {
  // More layers -> less within-slice compression -> larger intermediate
  // volume (the mechanism behind Table VI's fiber rows).
  const CscMat a = testing::random_matrix(300, 300, 6.0, 71);
  const Index v1 = layered_unmerged_nnz(a, a, 1);
  const Index v4 = layered_unmerged_nnz(a, a, 4);
  const Index v16 = layered_unmerged_nnz(a, a, 16);
  EXPECT_LE(v1, v4);
  EXPECT_LE(v4, v16);
  // Bounded by flops from above and nnz(C) from below (Eq. 1).
  const ProblemStats s = analyze_problem(a, a);
  EXPECT_GE(v1, s.nnz_c);
  EXPECT_LE(v16, s.flops);
}

TEST(Machines, PresetsAreOrdered) {
  const Machine knl = cori_knl();
  const Machine haswell = cori_haswell();
  const Machine ht = cori_knl_hyperthreaded();
  EXPECT_GT(haswell.multiply_rate, knl.multiply_rate);
  EXPECT_LT(haswell.beta, knl.beta);          // faster network handling
  EXPECT_LT(ht.multiply_rate, knl.multiply_rate);  // slower per process
  EXPECT_GT(ht.cores_per_node, knl.cores_per_node);
  EXPECT_EQ(knl.processes_per_node(), 4);     // 68 cores / 16 threads
}

TEST(CostModel, FormatStepsMentionsEveryStep) {
  const StepSeconds t =
      predict_steps(cori_knl(), sample_stats(), {1024, 4, 2, true});
  const std::string s = format_steps(t);
  for (const char* name : steps::kAll)
    EXPECT_NE(s.find(name), std::string::npos) << name;
}

}  // namespace
}  // namespace casp
