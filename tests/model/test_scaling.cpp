// Scaling-study machinery: strong_scaling invariants, the (l, b) sweep,
// and the p-dependent statistics hook.
#include <gtest/gtest.h>

#include "common/math.hpp"
#include "grid/grid3d.hpp"
#include "kernels/symbolic.hpp"
#include "model/scaling.hpp"
#include "sparse/stats.hpp"
#include "test_util.hpp"

namespace casp {
namespace {

ProblemStats big_stats() {
  ProblemStats s;
  s.nnz_a = 10'000'000'000;
  s.nnz_b = 10'000'000'000;
  s.flops = 20'000'000'000'000;
  s.nnz_c = 500'000'000'000;
  return s;
}

TEST(StrongScaling, FirstPointIsTheBaseline) {
  const auto series =
      strong_scaling(cori_knl(), big_stats(), {256, 1024, 4096}, 16);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].speedup_vs_first, 1.0);
  EXPECT_DOUBLE_EQ(series[0].efficiency, 1.0);
  for (const ScalingPoint& pt : series) {
    EXPECT_GT(pt.total, 0.0);
    EXPECT_EQ(pt.l, 16);
    EXPECT_GE(pt.b, 1);
  }
}

TEST(StrongScaling, TotalsDecreaseWithMoreProcesses) {
  const auto series =
      strong_scaling(cori_knl(), big_stats(), {256, 1024, 4096, 16384}, 16);
  for (std::size_t i = 1; i < series.size(); ++i)
    EXPECT_LT(series[i].total, series[i - 1].total);
}

TEST(StrongScaling, ForcedBatchesPinB) {
  const auto series =
      strong_scaling(cori_knl(), big_stats(), {256, 1024}, 4, /*force_b=*/7);
  for (const ScalingPoint& pt : series) EXPECT_EQ(pt.b, 7);
}

TEST(StrongScaling, PDependentStatsHookIsCalledPerPoint) {
  // Growing the intermediate volume with p must inflate the fiber costs at
  // higher p relative to the constant-stats series.
  ProblemStats base = big_stats();
  base.unmerged_nnz = base.nnz_c * 2;
  const auto grow = [&base](Index p) {
    ProblemStats s = base;
    s.unmerged_nnz = s.nnz_c * 2 + static_cast<Index>(p) * 1'000'000'000;
    return s;
  };
  const std::vector<Index> procs = {256, 4096};
  const auto fixed = strong_scaling(cori_knl(), base, procs, 16, 1);
  const auto growing = strong_scaling(cori_knl(), grow, procs, 16, 1);
  // At the high end, the growing series carries more AllToAll-Fiber time.
  EXPECT_GT(growing[1].steps.at(steps::kAllToAllFiber),
            fixed[1].steps.at(steps::kAllToAllFiber));
}

TEST(LayerBatchSweep, CoversTheFullGridInOrder) {
  const auto sweep = layer_batch_sweep(cori_knl(), big_stats(), 1024,
                                       {1, 4, 16}, {1, 8});
  ASSERT_EQ(sweep.size(), 6u);
  EXPECT_EQ(sweep[0].l, 1);
  EXPECT_EQ(sweep[0].b, 1);
  EXPECT_EQ(sweep[1].b, 8);
  EXPECT_EQ(sweep[5].l, 16);
  EXPECT_EQ(sweep[5].b, 8);
  // A-Bcast monotone in b within each l.
  for (std::size_t i = 0; i + 1 < sweep.size(); i += 2)
    EXPECT_LT(sweep[i].steps.at(steps::kABcast),
              sweep[i + 1].steps.at(steps::kABcast));
}

TEST(LayeredUnmerged, StagesRefineTheVolume) {
  const CscMat a = testing::random_matrix(200, 200, 5.0, 160);
  const Index coarse = layered_unmerged_nnz(a, a, 4, 1);
  const Index fine = layered_unmerged_nnz(a, a, 4, 8);
  EXPECT_LE(coarse, fine);  // finer slices compress less
  // Equivalent factorizations of the slice count agree up to partition
  // boundary placement.
  const Index v16a = layered_unmerged_nnz(a, a, 16, 1);
  const Index v16b = layered_unmerged_nnz(a, a, 1, 16);
  EXPECT_NEAR(static_cast<double>(v16a), static_cast<double>(v16b),
              0.02 * static_cast<double>(v16a));
}

TEST(ChooseLayers, PicksAValidGridAndBeatsTheAlternatives) {
  const ProblemStats stats = big_stats();
  const auto stats_for = [&stats](Index) { return stats; };
  const Index p = 4096;
  const ScalingPoint best = choose_layers(cori_knl(), stats_for, p);
  EXPECT_EQ(best.p, p);
  EXPECT_TRUE(Grid3D::valid_shape(static_cast<int>(p),
                                  static_cast<int>(best.l)));
  // No evaluated candidate is strictly better.
  for (Index l = 1; l <= 64; l *= 2) {
    if (p % l != 0 || exact_isqrt(p / l) <= 0) continue;
    const StepSeconds t = predict_steps(cori_knl(), stats, {p, l, 1, true});
    EXPECT_GE(total_seconds(t) + 1e-12, best.total) << "l=" << l;
  }
}

TEST(ChooseLayers, CommBoundProblemWantsLayersComputeBoundDoesNot) {
  // A communication-dominated problem (huge inputs, tiny flops) should
  // pick l > 1; a compute-dominated one gains little and may stay low.
  ProblemStats comm_bound;
  comm_bound.nnz_a = comm_bound.nnz_b = 50'000'000'000;
  comm_bound.flops = 60'000'000'000;
  comm_bound.nnz_c = 50'000'000'000;
  const ScalingPoint comm_pick = choose_layers(
      cori_knl(), [&](Index) { return comm_bound; }, 4096);
  EXPECT_GT(comm_pick.l, 1);
}

TEST(ChooseLayers, RespectsMemoryBudget) {
  const ProblemStats stats = big_stats();
  const Index p = 1024;
  const Bytes memory =
      static_cast<Bytes>(stats.nnz_a + stats.nnz_b) * kBytesPerNonzero * 4;
  const ScalingPoint best =
      choose_layers(cori_knl(), [&](Index) { return stats; }, p, memory);
  EXPECT_GE(best.b, 2);  // tight budget must force batching
}

TEST(LayeredUnmerged, RectangularOperands) {
  const CscMat a = testing::random_matrix(50, 120, 3.0, 161);
  const CscMat b = testing::random_matrix(120, 40, 3.0, 162);
  const Index v = layered_unmerged_nnz(a, b, 6);
  EXPECT_GE(v, symbolic_nnz(a, b));
  EXPECT_LE(v, multiply_flops(a, b));
}

}  // namespace
}  // namespace casp
