// Payload / zero-copy transport semantics: handle forwarding must never
// copy bytes, mutation must never be observable on another rank, and the
// legacy std::vector APIs must stay fully isolated from shared buffers.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/payload.hpp"
#include "sparse/serialize.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

std::vector<std::byte> make_bytes(std::size_t n, int seed = 0) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::byte>((i * 31 + static_cast<std::size_t>(seed)) &
                                    0xff);
  return out;
}

TEST(Payload, WrapTakesOwnershipWithoutCopying) {
  std::vector<std::byte> src = make_bytes(64);
  const std::byte* raw = src.data();
  const std::uint64_t before = Payload::deep_copies();
  const Payload p = Payload::wrap(std::move(src));
  EXPECT_EQ(Payload::deep_copies(), before);
  EXPECT_EQ(p.size(), 64u);
  EXPECT_EQ(p.data(), raw);  // same allocation, not a copy
}

TEST(Payload, CopyOfCountsExactlyOneDeepCopy) {
  const std::vector<std::byte> src = make_bytes(32);
  const std::uint64_t before = Payload::deep_copies();
  const Payload p = Payload::copy_of(src.data(), src.size());
  EXPECT_EQ(Payload::deep_copies(), before + 1);
  EXPECT_NE(p.data(), src.data());
  EXPECT_EQ(std::memcmp(p.data(), src.data(), src.size()), 0);
}

TEST(Payload, SubviewSharesTheAllocation) {
  const Payload p = Payload::wrap(make_bytes(100));
  const std::uint64_t before = Payload::deep_copies();
  const Payload sub = p.subview(16, 20);
  EXPECT_EQ(Payload::deep_copies(), before);
  EXPECT_EQ(sub.size(), 20u);
  EXPECT_EQ(sub.data(), p.data() + 16);
  EXPECT_EQ(p.use_count(), 2);
  // Nested subview offsets compose.
  const Payload subsub = sub.subview(4, 8);
  EXPECT_EQ(subsub.data(), p.data() + 20);
}

TEST(Payload, SubviewValidatesItsRangeInEveryBuildMode) {
  // Out-of-range requests used to degrade to an empty payload silently —
  // and an offset + length that overflowed size_t passed the old check
  // entirely, yielding a window into bytes the payload does not own. The
  // validation is a plain branch (no assert), so release builds throw too.
  const Payload p = Payload::wrap(make_bytes(100));
  EXPECT_THROW((void)p.subview(90, 20), std::out_of_range);
  EXPECT_THROW((void)p.subview(101, 0), std::out_of_range);
  EXPECT_THROW((void)p.subview(1, SIZE_MAX), std::out_of_range);
  EXPECT_THROW((void)p.subview(SIZE_MAX, 2), std::out_of_range);
  // Boundary cases remain legal: an empty window at the very end, and the
  // full range.
  EXPECT_TRUE(p.subview(100, 0).empty());
  EXPECT_EQ(p.subview(0, 100).size(), 100u);
  const Payload empty;
  EXPECT_TRUE(empty.subview(0, 0).empty());
  EXPECT_THROW((void)empty.subview(0, 1), std::out_of_range);
}

TEST(Payload, ReleaseOrCopyMovesWhenUniqueOwner) {
  Payload p = Payload::wrap(make_bytes(48));
  const std::byte* raw = p.data();
  const std::uint64_t before = Payload::deep_copies();
  const std::vector<std::byte> out = std::move(p).release_or_copy();
  EXPECT_EQ(Payload::deep_copies(), before);  // moved, not copied
  EXPECT_EQ(out.data(), raw);
  EXPECT_EQ(out.size(), 48u);
}

TEST(Payload, ReleaseOrCopyDeepCopiesWhenShared) {
  Payload p = Payload::wrap(make_bytes(48, 7));
  Payload other = p;  // second owner: the move would be visible to it
  const std::uint64_t before = Payload::deep_copies();
  const std::vector<std::byte> out = std::move(p).release_or_copy();
  EXPECT_EQ(Payload::deep_copies(), before + 1);
  EXPECT_NE(out.data(), other.data());
  EXPECT_EQ(out.size(), other.size());
  EXPECT_EQ(std::memcmp(out.data(), other.data(), out.size()), 0);
}

TEST(PayloadTransport, BcastForwardsOneAllocationToEveryRank) {
  // The whole point of the rework: a broadcast of any size performs zero
  // deep copies, and every rank's handle points at the root's allocation.
  // The job body does nothing but the broadcast (even a barrier ships tiny
  // copied signal messages), so the global copy counter is bracketed
  // around the whole job; pointers land in per-rank slots and are compared
  // after the join. Ranks are threads of one process, so pointer identity
  // is observable and proves handle forwarding rather than re-copying.
  std::vector<const std::byte*> ptrs(8, nullptr);
  const std::uint64_t before = Payload::deep_copies();
  vmpi::run(8, [&](vmpi::Comm& comm) {
    Payload mine;
    if (comm.rank() == 0) mine = Payload::wrap(make_bytes(1 << 12));
    const Payload got = comm.bcast_payload(0, std::move(mine));
    EXPECT_EQ(got.size(), std::size_t{1} << 12);
    ptrs[static_cast<std::size_t>(comm.rank())] = got.data();
  });
  EXPECT_EQ(Payload::deep_copies(), before);
  ASSERT_NE(ptrs[0], nullptr);
  for (const std::byte* p : ptrs) EXPECT_EQ(p, ptrs[0]);
}

TEST(PayloadTransport, CopyOfIsolatesTheSenderBuffer) {
  // Payload::copy_of snapshots at the API boundary: the sender may
  // scribble on its buffer the moment send_payload returns without the
  // receiver ever noticing.
  vmpi::run(2, [](vmpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> buf = make_bytes(256, 3);
      comm.send_payload(1, 5, Payload::copy_of(buf.data(), buf.size()));
      for (std::byte& b : buf) b = std::byte{0xee};  // post-send scribble
      comm.barrier();
    } else {
      comm.barrier();  // ensure the scribble happened before the receive
      const std::vector<std::byte> got =
          comm.recv_payload(0, 5).release_or_copy();
      EXPECT_EQ(got, make_bytes(256, 3));
    }
  });
}

TEST(PayloadTransport, ReceivedPayloadSurvivesSenderHandleDrop) {
  // The receiver's handle keeps the allocation alive on its own; the
  // sender dropping every reference must not invalidate it.
  vmpi::run(2, [](vmpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_payload(1, 9, Payload::wrap(make_bytes(128, 11)));
      // Rank 0 holds no reference anymore.
    } else {
      const Payload got = comm.recv_payload(0, 9);
      comm.barrier();  // sender is past any cleanup it would do
      EXPECT_EQ(got.size(), 128u);
      const auto expected = make_bytes(128, 11);
      EXPECT_EQ(std::memcmp(got.data(), expected.data(), 128), 0);
      return;
    }
    comm.barrier();
  });
}

TEST(PayloadTransport, MaterializedViewMutationIsNotObservableElsewhere) {
  // Aliasing safety for the zero-copy CSC path: all ranks view the same
  // broadcast buffer; each materializes and mutates a private copy; nobody
  // (including the root's original CscMat) sees anyone else's writes.
  const CscMat original = testing::random_matrix(30, 30, 4.0, 421);
  vmpi::run(4, [&](vmpi::Comm& comm) {
    Payload wire;
    if (comm.rank() == 0) wire = pack_csc_payload(original);
    wire = comm.bcast_payload(0, std::move(wire));
    const CscView view = unpack_csc_view(wire);

    CscMat mine = view.materialize();
    for (Value& v : mine.vals_mutable()) v *= (comm.rank() + 2);
    comm.barrier();  // every rank has mutated its private copy

    // The shared wire buffer still decodes to the pristine matrix.
    testing::expect_mat_near(unpack_csc_view(wire).materialize(), original,
                             0.0);
    // ... and each rank's copy holds exactly its own scaling.
    CscMat expected = original;
    for (Value& v : expected.vals_mutable()) v *= (comm.rank() + 2);
    testing::expect_mat_near(mine, expected, 0.0);
  });
  // The root's original never left home as anything but a packed copy.
  testing::expect_mat_near(original,
                           testing::random_matrix(30, 30, 4.0, 421), 0.0);
}

TEST(PayloadTransport, AllgatherReturnsSubviewsOfOneBuffer) {
  vmpi::run(4, [](vmpi::Comm& comm) {
    const Payload mine =
        Payload::wrap(make_bytes(64 * (comm.rank() + 1), comm.rank()));
    const std::vector<Payload> all = comm.allgather_payload(mine);
    ASSERT_EQ(all.size(), 4u);
    for (int src = 0; src < 4; ++src) {
      const auto expected = make_bytes(64 * (src + 1), src);
      ASSERT_EQ(all[static_cast<std::size_t>(src)].size(), expected.size());
      EXPECT_EQ(std::memcmp(all[static_cast<std::size_t>(src)].data(),
                            expected.data(), expected.size()),
                0);
    }
    // All four handles are ascending slices of one concatenation buffer
    // (other ranks share it too, so use_count is at least my four).
    for (int src = 0; src + 1 < 4; ++src)
      EXPECT_LT(all[static_cast<std::size_t>(src)].data(),
                all[static_cast<std::size_t>(src) + 1].data());
    EXPECT_GE(all[0].use_count(), 4);
  });
}

}  // namespace
}  // namespace casp
