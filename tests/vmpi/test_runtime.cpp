#include <gtest/gtest.h>

#include <atomic>

#include "vmpi/runtime.hpp"

namespace casp::vmpi {
namespace {

TEST(Runtime, RunsEveryRankExactlyOnce) {
  std::atomic<int> count{0};
  std::atomic<std::uint64_t> rank_mask{0};
  auto result = run(6, [&](Comm& comm) {
    count.fetch_add(1);
    rank_mask.fetch_or(std::uint64_t{1} << comm.rank());
    EXPECT_EQ(comm.size(), 6);
  });
  EXPECT_EQ(count.load(), 6);
  EXPECT_EQ(rank_mask.load(), 0b111111u);
  EXPECT_EQ(result.size, 6);
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(Runtime, SingleRankWorks) {
  auto result = run(1, [](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
    EXPECT_EQ(comm.allreduce_sum<int>(41), 41);
  });
  EXPECT_EQ(result.size, 1);
}

TEST(Runtime, InvalidSizeThrows) {
  EXPECT_THROW(run(0, [](Comm&) {}), std::logic_error);
}

TEST(Runtime, CollectsPerRankTimes) {
  auto result = run(3, [](Comm& comm) {
    comm.times().add("step-x", 0.5 + comm.rank());
  });
  EXPECT_DOUBLE_EQ(result.max_time("step-x"), 2.5);
  const auto names = result.time_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "step-x");
}

TEST(Runtime, TrafficSummaryMaxAndTotal) {
  auto result = run(3, [](Comm& comm) {
    comm.set_phase("p");
    // Ranks 1, 2 send different volumes to rank 0.
    if (comm.rank() == 0) {
      (void)comm.recv_payload(1, 1);
      (void)comm.recv_payload(2, 1);
    } else {
      std::vector<std::byte> payload(
          static_cast<std::size_t>(comm.rank() * 100));
      comm.send_payload(0, 1, Payload::wrap(std::move(payload)));
    }
  });
  const auto summary = result.traffic_summary();
  EXPECT_EQ(summary.total_per_phase.at("p").bytes, 300u);
  EXPECT_EQ(summary.max_per_phase.at("p").bytes, 200u);
  EXPECT_EQ(summary.total_per_phase.at("p").messages, 2u);
}

TEST(Runtime, ExceptionCarriesOriginalMessage) {
  try {
    run(2, [](Comm& comm) {
      if (comm.rank() == 1) throw std::runtime_error("specific failure");
      comm.barrier();
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "specific failure");
  }
}

}  // namespace
}  // namespace casp::vmpi
