// Regression coverage for Comm::allreduce across communicator sizes 1–9:
// the binomial reduce tree takes a different shape at every size (straggler
// ranks above the largest power of two fold in at different rounds), so
// sum/max/min and multi-element vectors are checked against a serially
// computed reference at every size, not just powers of two.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "vmpi/runtime.hpp"

namespace casp::vmpi {
namespace {

class AllreduceSizes : public ::testing::TestWithParam<int> {};

TEST_P(AllreduceSizes, ScalarSumMaxMinMatchSerialReference) {
  const int p = GetParam();
  // Serial reference over the exact per-rank contributions.
  std::int64_t ref_sum = 0, ref_max = INT64_MIN, ref_min = INT64_MAX;
  for (int r = 0; r < p; ++r) {
    const std::int64_t v = 7 * r - 3;  // negative and positive values
    ref_sum += v;
    ref_max = std::max(ref_max, v);
    ref_min = std::min(ref_min, v);
  }
  run(p, [&](Comm& comm) {
    const std::int64_t mine = 7 * comm.rank() - 3;
    EXPECT_EQ(comm.allreduce_sum<std::int64_t>(mine), ref_sum);
    EXPECT_EQ(comm.allreduce_max<std::int64_t>(mine), ref_max);
    EXPECT_EQ(comm.allreduce_min<std::int64_t>(mine), ref_min);
  });
}

TEST_P(AllreduceSizes, VectorLengthsAboveOneReduceElementwise) {
  const int p = GetParam();
  const std::size_t len = 5;
  std::vector<std::int64_t> ref_sum(len, 0);
  std::vector<std::int64_t> ref_min(len, INT64_MAX);
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < len; ++i) {
      const std::int64_t v =
          static_cast<std::int64_t>(i + 1) * (r - 2);  // mixed signs
      ref_sum[i] += v;
      ref_min[i] = std::min(ref_min[i], v);
    }
  }
  run(p, [&](Comm& comm) {
    std::vector<std::int64_t> mine(len);
    for (std::size_t i = 0; i < len; ++i)
      mine[i] = static_cast<std::int64_t>(i + 1) * (comm.rank() - 2);
    const auto sum = comm.allreduce<std::int64_t>(
        std::vector<std::int64_t>(mine),
        [](std::int64_t a, std::int64_t b) { return a + b; });
    const auto mn = comm.allreduce<std::int64_t>(
        std::vector<std::int64_t>(mine),
        [](std::int64_t a, std::int64_t b) { return std::min(a, b); });
    EXPECT_EQ(sum, ref_sum);
    EXPECT_EQ(mn, ref_min);
  });
}

TEST_P(AllreduceSizes, RepeatedRoundsStayConsistentOnSplitChildren) {
  // The same tree shapes must hold on split communicators whose world
  // ranks are non-contiguous (child rank != world rank).
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  run(p, [p](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    std::int64_t ref = 0;
    for (int r = comm.rank() % 2; r < p; r += 2) ref += 100 + r;
    for (int round = 0; round < 3; ++round) {
      EXPECT_EQ(sub.allreduce_sum<std::int64_t>(100 + comm.rank()), ref);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(OneThroughNine, AllreduceSizes,
                         ::testing::Range(1, 10));

}  // namespace
}  // namespace casp::vmpi
