// Injected-bug tests for the vmpi correctness layer: programs that
// mis-order collectives, diverge on allreduce lengths, or plain deadlock
// must fail fast with a diagnostic naming the offending ranks — never hang
// (CTest enforces a timeout on every test here) and never silently corrupt.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp::vmpi {
namespace {

/// Sets an environment variable for the duration of one test. The deadlock
/// tests shrink the watchdog period so detection is near-instant.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

template <typename Exception, typename Body>
std::string capture_failure(int ranks, Body body) {
  try {
    run(ranks, body);
  } catch (const Exception& e) {
    return e.what();
  }
  ADD_FAILURE() << "virtual job completed without the expected diagnostic";
  return {};
}

TEST(CollectiveChecker, SkippedCollectiveTripsSequenceMismatch) {
#ifndef CASP_VMPI_CHECK
  GTEST_SKIP() << "requires CASP_VMPI_CHECK";
#else
  // Rank 0 runs bcast-then-barrier, rank 1 barrier-then-bcast. The tag
  // matching happens to line up (no deadlock), which is exactly the silent
  // reordering the fingerprints exist to catch.
  const std::string what =
      capture_failure<CollectiveMismatch>(2, [](Comm& comm) {
        std::vector<int> payload = {42};
        if (comm.rank() == 0) {
          payload = testing::bcast_typed<int>(comm, 0, std::move(payload));
          comm.barrier();
        } else {
          comm.barrier();
          payload = testing::bcast_typed<int>(comm, 0, {});
        }
      });
  EXPECT_NE(what.find("collective mismatch"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  EXPECT_NE(what.find("barrier"), std::string::npos) << what;
#endif
}

TEST(CollectiveChecker, DivergentBcastRootsTripRootMismatch) {
#ifndef CASP_VMPI_CHECK
  GTEST_SKIP() << "requires CASP_VMPI_CHECK";
#else
  // Ranks 0-2 broadcast from root 0; rank 3 believes the root is 2. The
  // binomial trees overlap enough that rank 3 matches a root-0 message.
  const std::string what =
      capture_failure<CollectiveMismatch>(4, [](Comm& comm) {
        const int root = comm.rank() == 3 ? 2 : 0;
        std::vector<int> payload;
        if (comm.rank() == root) payload = {7};
        (void)testing::bcast_typed<int>(comm, root, std::move(payload));
      });
  EXPECT_NE(what.find("collective mismatch"), std::string::npos) << what;
  EXPECT_NE(what.find("root"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 3"), std::string::npos) << what;
#endif
}

TEST(CollectiveChecker, DivergentAllreduceLengthsAbortWithBothLengths) {
#ifndef CASP_VMPI_CHECK
  GTEST_SKIP() << "requires CASP_VMPI_CHECK";
#else
  const std::string what =
      capture_failure<CollectiveMismatch>(2, [](Comm& comm) {
        std::vector<std::int64_t> mine(comm.rank() == 0 ? 1 : 2, 5);
        (void)comm.allreduce<std::int64_t>(
            std::move(mine),
            [](std::int64_t a, std::int64_t b) { return a + b; });
      });
  EXPECT_NE(what.find("length divergence"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
#endif
}

TEST(CollectiveChecker, CompetingBcastRootsAreCaughtAsLeftoverTraffic) {
#ifndef CASP_VMPI_CHECK
  GTEST_SKIP() << "requires CASP_VMPI_CHECK";
#else
  // Both ranks think they are the bcast root: each sends, neither
  // receives, the job "succeeds" with diverged data. The end-of-job sweep
  // catches the unconsumed collective messages.
  const std::string what =
      capture_failure<CollectiveMismatch>(2, [](Comm& comm) {
        std::vector<int> payload = {comm.rank()};
        (void)testing::bcast_typed<int>(comm, comm.rank(),
                                        std::move(payload));
      });
  EXPECT_NE(what.find("unconsumed"), std::string::npos) << what;
  EXPECT_NE(what.find("bcast"), std::string::npos) << what;
#endif
}

TEST(MessageLeakSweep, UnconsumedSendTripsTheJobEndSweep) {
#ifndef CASP_VMPI_CHECK
  GTEST_SKIP() << "requires CASP_VMPI_CHECK";
#else
  // Rank 0 sends a user-tag message nobody ever receives; the job itself
  // "succeeds", but the end-of-job sweep must name the dropped message.
  const std::string what = capture_failure<MessageLeak>(2, [](Comm& comm) {
    if (comm.rank() == 0) comm.send_value<int>(1, /*tag=*/42, 7);
    comm.barrier();
  });
  EXPECT_NE(what.find("unconsumed"), std::string::npos) << what;
  EXPECT_NE(what.find("tag 42"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 1"), std::string::npos) << what;   // receiver
  EXPECT_NE(what.find("rank 0"), std::string::npos) << what;   // sender
#endif
}

TEST(MessageLeakSweep, FireAndForgetSendsAreExempt) {
  // The same dropped message, declared intentional: the job must complete
  // cleanly (with or without the checker compiled in).
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 7;
      static_assert(std::is_trivially_copyable_v<int>);
      comm.send_payload(
          1, /*tag=*/42,
          Payload::copy_of(reinterpret_cast<const std::byte*>(&v),
                           sizeof(v)),
          /*fire_and_forget=*/true);
    }
    comm.barrier();
  });
}

TEST(MessageLeakSweep, ConsumedTrafficDoesNotTrip) {
  // Heavy but fully-matched point-to-point traffic must never false-alarm.
  run(4, [](Comm& comm) {
    for (int round = 0; round < 8; ++round) {
      const int partner = comm.rank() ^ 1;
      if (comm.rank() < partner) {
        comm.send_value<int>(partner, round, comm.rank());
        EXPECT_EQ(comm.recv_value<int>(partner, round), partner);
      } else {
        EXPECT_EQ(comm.recv_value<int>(partner, round), partner);
        comm.send_value<int>(partner, round, comm.rank());
      }
    }
  });
}

TEST(DeadlockWatchdog, CrossedPointToPointTagsAreReportedNotHung) {
  ScopedEnv fast_watchdog("CASP_VMPI_WATCHDOG_MS", "20");
  const std::string what =
      capture_failure<DeadlockDetected>(2, [](Comm& comm) {
        // Each rank waits on a tag the other never sends.
        (void)comm.recv_value<int>(1 - comm.rank(),
                                   comm.rank() == 0 ? 7 : 8);
      });
  EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
}

TEST(DeadlockWatchdog, BarrierAgainstBcastIsReportedWithCollectiveNames) {
  ScopedEnv fast_watchdog("CASP_VMPI_WATCHDOG_MS", "20");
  // The satellite scenario: rank 0 enters barrier while rank 1 enters a
  // bcast expecting data from rank 0 — tags never match, both block.
  const std::string what =
      capture_failure<DeadlockDetected>(2, [](Comm& comm) {
        if (comm.rank() == 0) {
          comm.barrier();
        } else {
          (void)testing::bcast_typed<int>(comm, 0, {});
        }
      });
  EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
#ifdef CASP_VMPI_CHECK
  // With the checker compiled in, the report names which collective each
  // rank was stuck inside.
  EXPECT_NE(what.find("barrier"), std::string::npos) << what;
  EXPECT_NE(what.find("bcast"), std::string::npos) << what;
#endif
}

TEST(DeadlockWatchdog, ParentChildInterleavingIsDiagnosedByName) {
#ifndef CASP_VMPI_CHECK
  GTEST_SKIP() << "requires CASP_VMPI_CHECK";
#else
  ScopedEnv fast_watchdog("CASP_VMPI_WATCHDOG_MS", "20");
  // Communicator-lifetime bug: rank 0 runs child-barrier then
  // world-barrier, its child peer (rank 1) runs them in the opposite
  // order. Rank 0 waits inside the child collective for rank 1, who is
  // stuck in the world collective waiting for rank 0 — a deadlock, but one
  // the watchdog must diagnose as divergent parent/child collective
  // ordering rather than dump as a generic stall.
  const std::string what =
      capture_failure<CommunicatorOrderViolation>(4, [](Comm& comm) {
        Comm child = comm.split(comm.rank() / 2, comm.rank());
        if (comm.rank() == 0) {
          child.barrier();
          comm.barrier();
        } else {
          comm.barrier();
          child.barrier();
        }
      });
  EXPECT_NE(what.find("communicator-order violation"), std::string::npos)
      << what;
  EXPECT_NE(what.find("split child"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  EXPECT_NE(what.find("barrier"), std::string::npos) << what;
#endif
}

TEST(DeadlockWatchdog, PartialCompletionStillDetected) {
  ScopedEnv fast_watchdog("CASP_VMPI_WATCHDOG_MS", "20");
  // Rank 0 finishes immediately; ranks 1-2 wait for messages that can no
  // longer arrive. The watchdog must treat finished ranks as dead senders.
  const std::string what =
      capture_failure<DeadlockDetected>(3, [](Comm& comm) {
        if (comm.rank() == 0) return;
        (void)comm.recv_value<int>(0, 99);
      });
  EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
  EXPECT_NE(what.find("finished"), std::string::npos) << what;
}

TEST(DeadlockWatchdog, NoFalsePositiveOnCollectiveHeavyTraffic) {
  // An aggressive 5 ms watchdog must never misfire on a correct program
  // that blocks constantly (barriers, reductions, splits, big payloads).
  ScopedEnv fast_watchdog("CASP_VMPI_WATCHDOG_MS", "5");
  run(8, [](Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      comm.barrier();
      EXPECT_EQ(comm.allreduce_sum<std::int64_t>(1), comm.size());
      Comm half = comm.split(comm.rank() % 2, comm.rank());
      (void)half.allgather_value<int>(comm.rank());
    }
  });
}

}  // namespace
}  // namespace casp::vmpi
