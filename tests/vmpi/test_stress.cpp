// Stress and adversarial tests for the virtual runtime: interleaved
// traffic, nested splits, large payloads, repeated collectives.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp::vmpi {
namespace {

TEST(VmpiStress, RandomizedPointToPointStorm) {
  // Every rank sends a deterministic pseudo-random number of messages to
  // every other rank, then receives exactly what it expects, in order.
  const int p = 8;
  const int max_msgs = 17;
  run(p, [&](Comm& comm) {
    auto count_for = [&](int src, int dest) {
      Rng rng(static_cast<std::uint64_t>(src) * 1000 +
              static_cast<std::uint64_t>(dest));
      return 1 + static_cast<int>(rng.below(max_msgs));
    };
    // Send everything first (mailboxes are unbounded, sends don't block).
    for (int dest = 0; dest < p; ++dest) {
      if (dest == comm.rank()) continue;
      const int n = count_for(comm.rank(), dest);
      for (int m = 0; m < n; ++m)
        comm.send_value<std::int64_t>(dest, 5, comm.rank() * 1000 + m);
    }
    // Receive from every source and verify content + order.
    for (int src = 0; src < p; ++src) {
      if (src == comm.rank()) continue;
      const int n = count_for(src, comm.rank());
      for (int m = 0; m < n; ++m)
        EXPECT_EQ(comm.recv_value<std::int64_t>(src, 5), src * 1000 + m);
    }
  });
}

TEST(VmpiStress, InterleavedTagsDoNotCross) {
  run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      // Send on two tags interleaved; the receiver pulls tag 2 first.
      comm.send_value<int>(1, 1, 100);
      comm.send_value<int>(1, 2, 200);
      comm.send_value<int>(1, 1, 101);
      comm.send_value<int>(1, 2, 201);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 2), 200);
      EXPECT_EQ(comm.recv_value<int>(0, 2), 201);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 100);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 101);
    }
  });
}

TEST(VmpiStress, NestedSplitsFormAGridWithIsolatedTraffic) {
  // Build a 4x4 grid by nested splits and run simultaneous allreduces in
  // all rows and all columns; sums must not bleed across communicators.
  run(16, [](Comm& comm) {
    const int row = comm.rank() / 4;
    const int col = comm.rank() % 4;
    Comm row_comm = comm.split(row, col);
    Comm col_comm = comm.split(col, row);
    const std::int64_t row_sum = row_comm.allreduce_sum<std::int64_t>(comm.rank());
    const std::int64_t col_sum = col_comm.allreduce_sum<std::int64_t>(comm.rank());
    // Row r holds ranks {4r..4r+3}; column c holds {c, c+4, c+8, c+12}.
    EXPECT_EQ(row_sum, 4 * (4 * row) + 6);
    EXPECT_EQ(col_sum, 4 * col + 24);
    // Split of a split: pair up within the row.
    Comm pair = row_comm.split(col / 2, col % 2);
    EXPECT_EQ(pair.size(), 2);
    const std::int64_t pair_sum = pair.allreduce_sum<std::int64_t>(1);
    EXPECT_EQ(pair_sum, 2);
  });
}

TEST(VmpiStress, LargePayloadRoundTrip) {
  run(2, [](Comm& comm) {
    const std::size_t n = 1 << 20;  // 8 MB of int64
    if (comm.rank() == 0) {
      std::vector<std::int64_t> data(n);
      for (std::size_t i = 0; i < n; ++i)
        data[i] = static_cast<std::int64_t>(i * 2654435761u);
      comm.send_vec(1, 9, data);
    } else {
      const auto data = comm.recv_vec<std::int64_t>(0, 9);
      ASSERT_EQ(data.size(), n);
      EXPECT_EQ(data[0], 0);
      EXPECT_EQ(data[n - 1],
                static_cast<std::int64_t>((n - 1) * 2654435761u));
    }
  });
}

TEST(VmpiStress, ManyCollectiveRoundsStayConsistent) {
  run(7, [](Comm& comm) {  // deliberately non-power-of-two
    for (int round = 0; round < 50; ++round) {
      const std::int64_t sum = comm.allreduce_sum<std::int64_t>(round);
      EXPECT_EQ(sum, 7 * round);
      auto data = testing::bcast_typed<int>(
          comm, round % 7,
          comm.rank() == round % 7 ? std::vector<int>{round}
                                   : std::vector<int>{});
      ASSERT_EQ(data.size(), 1u);
      EXPECT_EQ(data[0], round);
    }
  });
}

TEST(VmpiStress, AlltoallWithEmptyAndFatBuffers) {
  const int p = 5;
  run(p, [p](Comm& comm) {
    std::vector<Payload> buffers(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      // Rank r sends (r + d) % p bytes to rank d (some zero-length).
      std::vector<std::byte> msg(
          static_cast<std::size_t>((comm.rank() + d) % p),
          static_cast<std::byte>(comm.rank()));
      buffers[static_cast<std::size_t>(d)] = Payload::wrap(std::move(msg));
    }
    const auto got = comm.alltoall_payload(std::move(buffers));
    for (int s = 0; s < p; ++s) {
      const Payload& piece = got[static_cast<std::size_t>(s)];
      EXPECT_EQ(piece.size(),
                static_cast<std::size_t>((s + comm.rank()) % p));
      for (std::size_t i = 0; i < piece.size(); ++i)
        EXPECT_EQ(piece.data()[i], static_cast<std::byte>(s));
    }
  });
}

TEST(VmpiStress, SequentialJobsAreIndependent) {
  // Back-to-back jobs must not leak state (mailboxes, contexts).
  for (int round = 0; round < 5; ++round) {
    auto result = run(4, [round](Comm& comm) {
      EXPECT_EQ(comm.allreduce_sum<int>(round), 4 * round);
    });
    EXPECT_EQ(result.size, 4);
  }
}

}  // namespace
}  // namespace casp::vmpi
