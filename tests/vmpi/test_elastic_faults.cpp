// The fault classes and supervision mechanics behind elastic degraded-grid
// recovery (DESIGN.md §5j): permanent rank crashes (non-recoverable on the
// same grid), payload corruption caught by the transport checksum and
// retried as a transient, per-job wall-clock deadlines enforced by the
// watchdog, the supervisor's bounded exponential restart backoff, and the
// RankPool health map the service layer drives from failure reports.
//
// NO_SCHED: deadlines measure wall clock (disabled under the deterministic
// scheduler) and the backoff assertions time real sleeps.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "vmpi/faults.hpp"
#include "vmpi/pool.hpp"
#include "vmpi/runtime.hpp"

namespace casp {
namespace {

std::int64_t counter_sum(const vmpi::RunResult& result,
                         const std::string& name) {
  std::int64_t sum = 0;
  for (const auto& rec : result.recorders) {
    const auto it = rec.counters().find(name);
    if (it != rec.counters().end()) sum += it->second;
  }
  return sum;
}

// ---------------------------------------------------------------------------
// permanent_crash: classified, carries the rank, and is never retried.

TEST(FaultPermanentCrash, ClassifiedWithRankAndNotRetried) {
  vmpi::FaultPlan plan;
  plan.seed = 7;
  plan.perm_crash_rank = 1;
  plan.perm_crash_op = 3;
  vmpi::RunOptions opts;
  opts.faults = plan;
  opts.capture_failure = true;
  vmpi::RunResult res = vmpi::run(
      4,
      [](vmpi::Comm& comm) {
        for (int i = 0; i < 6; ++i)
          (void)comm.allreduce_sum<int>(comm.rank() + i);
      },
      opts);
  ASSERT_TRUE(res.failed());
  EXPECT_EQ(res.failure->kind, "permanent_crash");
  EXPECT_EQ(res.failure->rank, 1);

  // The supervisor must not burn restarts on a dead-for-good rank: the
  // same grid cannot come back, only the service's shrink path can.
  vmpi::SupervisorOptions sup_opts;
  sup_opts.faults = plan;
  sup_opts.max_restarts = 3;
  vmpi::SupervisedResult sup = vmpi::run_supervised(
      4,
      [](vmpi::Comm& comm) {
        for (int i = 0; i < 6; ++i)
          (void)comm.allreduce_sum<int>(comm.rank() + i);
      },
      sup_opts);
  ASSERT_TRUE(sup.result.failed());
  EXPECT_EQ(sup.result.failure->kind, "permanent_crash");
  EXPECT_EQ(sup.restarts, 0);

  // Disarming the kind removes exactly the permanent crash.
  const vmpi::FaultPlan off = plan.disarmed("permanent_crash");
  EXPECT_EQ(off.perm_crash_rank, -1);
  EXPECT_FALSE(off.enabled());
}

// ---------------------------------------------------------------------------
// corrupt_prob: every corrupted frame is caught by the link checksum and
// surfaces as a transient the retry ladder handles — never as wrong data.

TEST(FaultCorrupt, AlwaysCorruptExhaustsRetriesAndCounts) {
  vmpi::FaultPlan plan;
  plan.seed = 11;
  plan.corrupt_prob = 1.0;
  vmpi::RunOptions opts;
  opts.faults = plan;
  opts.capture_failure = true;
  vmpi::RunResult res = vmpi::run(
      2,
      [](vmpi::Comm& comm) {
        (void)comm.allreduce_sum<int>(comm.rank());
      },
      opts);
  ASSERT_TRUE(res.failed());
  EXPECT_EQ(res.failure->kind, "retry_exhausted");
  // Every attempt of the first doomed send was rejected at the checksum.
  EXPECT_GE(counter_sum(res, "vmpi.checksum_rejects"),
            static_cast<std::int64_t>(plan.retry.max_attempts));
}

TEST(FaultCorrupt, ModerateCorruptionRidesTheRetryLadder) {
  // Per-attempt corruption probability 0.35: an op needs 4 consecutive bad
  // draws to die, so the run overwhelmingly survives on retries — and when
  // a specific seed does exhaust one op, the failure still classifies.
  vmpi::FaultPlan plan;
  plan.seed = 5;
  plan.corrupt_prob = 0.35;
  vmpi::RunOptions opts;
  opts.faults = plan;
  opts.capture_failure = true;
  int expected = 0;
  for (int r = 0; r < 2; ++r) expected += r;
  std::vector<int> sums(2, -1);
  vmpi::RunResult res = vmpi::run(
      2,
      [&sums](vmpi::Comm& comm) {
        int total = 0;
        for (int i = 0; i < 8; ++i)
          total = comm.allreduce_sum<int>(comm.rank());
        sums[static_cast<std::size_t>(comm.rank())] = total;
      },
      opts);
  if (res.failed()) {
    EXPECT_EQ(res.failure->kind, "retry_exhausted");
  } else {
    // Corruption was detected (else the checksum never fired) and repaired:
    // the delivered values are correct.
    for (const int s : sums) EXPECT_EQ(s, expected);
  }
  EXPECT_GE(counter_sum(res, "vmpi.checksum_rejects"), 1);
  // Rejected frames count as injected faults too.
  EXPECT_GE(counter_sum(res, "vmpi.faults_injected"),
            counter_sum(res, "vmpi.checksum_rejects"));
}

TEST(FaultCorrupt, SpecRoundTripsAndDisarms) {
  const vmpi::FaultPlan plan =
      vmpi::FaultPlan::parse("seed=3;corrupt_prob=0.25");
  EXPECT_DOUBLE_EQ(plan.corrupt_prob, 0.25);
  EXPECT_TRUE(plan.enabled());
  const vmpi::FaultPlan back = vmpi::FaultPlan::parse(plan.describe());
  EXPECT_DOUBLE_EQ(back.corrupt_prob, 0.25);
  // retry_exhausted disarms the transient *sources*: send_fail and
  // corrupt_prob both.
  const vmpi::FaultPlan off = plan.disarmed("retry_exhausted");
  EXPECT_DOUBLE_EQ(off.corrupt_prob, 0.0);
  EXPECT_THROW((void)vmpi::FaultPlan::parse("corrupt_prob=1.5"),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Deadlines: the watchdog cancels every rank once the budget is spent.

TEST(FaultDeadline, ExpiredDeadlineCancelsAllRanks) {
  vmpi::RunOptions opts;
  opts.capture_failure = true;
  opts.deadline_ms = 60;
  vmpi::RunResult res = vmpi::run(
      2,
      [](vmpi::Comm& comm) {
        for (int i = 0; i < 400; ++i) {
          (void)comm.allreduce_sum<int>(i);
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      },
      opts);
  ASSERT_TRUE(res.failed());
  EXPECT_EQ(res.failure->kind, "deadline_exceeded");

  // deadline_exceeded is final: rerunning an over-budget job cannot make
  // it fit, so the supervisor hands it straight back.
  vmpi::SupervisorOptions sup_opts;
  sup_opts.max_restarts = 3;
  sup_opts.deadline_ms = 60;
  vmpi::SupervisedResult sup = vmpi::run_supervised(
      2,
      [](vmpi::Comm& comm) {
        for (int i = 0; i < 400; ++i) {
          (void)comm.allreduce_sum<int>(i);
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      },
      sup_opts);
  ASSERT_TRUE(sup.result.failed());
  EXPECT_EQ(sup.result.failure->kind, "deadline_exceeded");
  EXPECT_EQ(sup.restarts, 0);
}

TEST(FaultDeadline, GenerousDeadlineDoesNotFire) {
  vmpi::RunOptions opts;
  opts.capture_failure = true;
  opts.deadline_ms = 60000;
  vmpi::RunResult res = vmpi::run(
      2,
      [](vmpi::Comm& comm) {
        (void)comm.allreduce_sum<int>(comm.rank());
      },
      opts);
  EXPECT_FALSE(res.failed());
}

// ---------------------------------------------------------------------------
// Restart backoff: capped exponential, surfaced per attempt.

TEST(FaultBackoff, LadderDoublesFromBaseAndCaps) {
  // Two distinct recoverable failures in one chain: the transient send
  // storm exhausts retries first (disarmed), then the injected crash kills
  // the relaunch (disarmed), then the third attempt completes.
  vmpi::FaultPlan plan;
  plan.seed = 2;
  plan.send_fail = 1.0;
  plan.crash_rank = 0;
  plan.crash_op = 2;
  vmpi::SupervisorOptions sup_opts;
  sup_opts.faults = plan;
  sup_opts.max_restarts = 4;
  sup_opts.restart_backoff_base_us = 500;
  sup_opts.restart_backoff_cap_us = 100000;
  vmpi::SupervisedResult sup = vmpi::run_supervised(
      2,
      [](vmpi::Comm& comm) {
        for (int i = 0; i < 3; ++i)
          (void)comm.allreduce_sum<int>(comm.rank() + i);
      },
      sup_opts);
  ASSERT_FALSE(sup.result.failed()) << sup.result.failure->describe();
  ASSERT_EQ(sup.restarts, 2);
  // The PLAN ladder is exact (deterministic evidence); the MEASURED sleep
  // is wall clock and only bounded below (sleep_for sleeps at least the
  // requested time).
  ASSERT_EQ(sup.backoff_plan_us.size(), 2u);
  EXPECT_EQ(sup.backoff_plan_us[0], 500);
  EXPECT_EQ(sup.backoff_plan_us[1], 1000);
  ASSERT_EQ(sup.backoff_us.size(), 2u);
  EXPECT_GE(sup.backoff_us[0], 500);
  EXPECT_GE(sup.backoff_us[1], 1000);
}

TEST(FaultBackoff, CapClampsAndZeroBaseDisables) {
  vmpi::FaultPlan plan;
  plan.seed = 2;
  plan.send_fail = 1.0;
  plan.crash_rank = 0;
  plan.crash_op = 2;
  vmpi::SupervisorOptions sup_opts;
  sup_opts.faults = plan;
  sup_opts.max_restarts = 4;
  sup_opts.restart_backoff_base_us = 1000;
  sup_opts.restart_backoff_cap_us = 1500;
  vmpi::SupervisedResult sup = vmpi::run_supervised(
      2,
      [](vmpi::Comm& comm) {
        for (int i = 0; i < 3; ++i)
          (void)comm.allreduce_sum<int>(comm.rank() + i);
      },
      sup_opts);
  ASSERT_FALSE(sup.result.failed()) << sup.result.failure->describe();
  ASSERT_EQ(sup.backoff_plan_us.size(), 2u);
  EXPECT_EQ(sup.backoff_plan_us[0], 1000);
  EXPECT_EQ(sup.backoff_plan_us[1], 1500);  // clamped, not 2000
  ASSERT_EQ(sup.backoff_us.size(), 2u);
  EXPECT_GE(sup.backoff_us[0], 1000);
  EXPECT_GE(sup.backoff_us[1], 1500);

  sup_opts.restart_backoff_base_us = 0;  // disabled: no sleep, entries 0
  vmpi::SupervisedResult fast = vmpi::run_supervised(
      2,
      [](vmpi::Comm& comm) {
        for (int i = 0; i < 3; ++i)
          (void)comm.allreduce_sum<int>(comm.rank() + i);
      },
      sup_opts);
  ASSERT_FALSE(fast.result.failed());
  ASSERT_EQ(fast.backoff_plan_us.size(), 2u);
  EXPECT_EQ(fast.backoff_plan_us[0], 0);
  EXPECT_EQ(fast.backoff_plan_us[1], 0);
  ASSERT_EQ(fast.backoff_us.size(), 2u);
  EXPECT_EQ(fast.backoff_us[0], 0);
  EXPECT_EQ(fast.backoff_us[1], 0);
}

// ---------------------------------------------------------------------------
// RankPool health map: the service-layer view of permanent losses.

TEST(PoolHealth, DeadIsStickySuspectIsNot) {
  vmpi::RankPool pool(4);
  EXPECT_EQ(pool.alive_count(), 4);
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(pool.health(r), vmpi::RankHealth::kAlive);

  pool.mark_suspect(1);
  pool.mark_dead(2);
  EXPECT_EQ(pool.health(1), vmpi::RankHealth::kSuspect);
  EXPECT_EQ(pool.health(2), vmpi::RankHealth::kDead);
  // Suspect ranks still count as schedulable; dead ones never do.
  EXPECT_EQ(pool.alive_count(), 3);
  const std::vector<int> alive = pool.alive_ranks();
  EXPECT_EQ(alive, (std::vector<int>{0, 1, 3}));

  // A clean job vouches for suspects — but cannot resurrect the dead.
  pool.mark_suspect(2);  // dead stays dead
  pool.clear_suspects();
  EXPECT_EQ(pool.health(1), vmpi::RankHealth::kAlive);
  EXPECT_EQ(pool.health(2), vmpi::RankHealth::kDead);
  EXPECT_EQ(pool.alive_count(), 3);

  // Out-of-range queries degrade safely.
  EXPECT_EQ(pool.health(-1), vmpi::RankHealth::kDead);
  EXPECT_EQ(pool.health(99), vmpi::RankHealth::kDead);
  EXPECT_STREQ(vmpi::to_string(vmpi::RankHealth::kAlive), "alive");
  EXPECT_STREQ(vmpi::to_string(vmpi::RankHealth::kSuspect), "suspect");
  EXPECT_STREQ(vmpi::to_string(vmpi::RankHealth::kDead), "dead");
}

}  // namespace
}  // namespace casp
