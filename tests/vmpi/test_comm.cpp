// Unit tests for the virtual message-passing runtime: every collective is
// checked against a serially computed reference across a sweep of rank
// counts, including non-powers-of-two.
#include <gtest/gtest.h>

#include <numeric>

#include "test_util.hpp"
#include "vmpi/runtime.hpp"

namespace casp::vmpi {
namespace {

class CommCollectives : public ::testing::TestWithParam<int> {};

TEST_P(CommCollectives, PointToPointRoundTrip) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  run(p, [](Comm& comm) {
    // Ring: send my rank to the next rank, receive from the previous.
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() - 1 + comm.size()) % comm.size();
    comm.send_value<int>(next, 7, comm.rank());
    const int got = comm.recv_value<int>(prev, 7);
    EXPECT_EQ(got, prev);
  });
}

TEST_P(CommCollectives, PointToPointPreservesOrderPerSourceAndTag) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  run(p, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 32; ++i) comm.send_value<int>(1, 3, i);
    } else if (comm.rank() == 1) {
      for (int i = 0; i < 32; ++i) EXPECT_EQ(comm.recv_value<int>(0, 3), i);
    }
  });
}

TEST_P(CommCollectives, BcastFromEveryRoot) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<std::int64_t> data;
      if (comm.rank() == root) data = {10 + root, 20 + root, 30 + root};
      data = testing::bcast_typed<std::int64_t>(comm, root,
                                                 std::move(data));
      ASSERT_EQ(data.size(), 3u);
      EXPECT_EQ(data[0], 10 + root);
      EXPECT_EQ(data[2], 30 + root);
    }
  });
}

TEST_P(CommCollectives, AllreduceSumMaxMin) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    const std::int64_t r = comm.rank();
    EXPECT_EQ(comm.allreduce_sum<std::int64_t>(r),
              static_cast<std::int64_t>(p) * (p - 1) / 2);
    EXPECT_EQ(comm.allreduce_max<std::int64_t>(r), p - 1);
    EXPECT_EQ(comm.allreduce_min<std::int64_t>(r + 5), 5);
  });
}

TEST_P(CommCollectives, AllreduceVectorElementwise) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    std::vector<std::int64_t> mine = {comm.rank(), 2 * comm.rank()};
    auto out = comm.allreduce<std::int64_t>(
        std::move(mine), [](std::int64_t a, std::int64_t b) { return a + b; });
    const std::int64_t total = static_cast<std::int64_t>(p) * (p - 1) / 2;
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], total);
    EXPECT_EQ(out[1], 2 * total);
  });
}

TEST_P(CommCollectives, AllgatherEveryRankSeesAll) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    auto all = comm.allgather_value<int>(comm.rank() * 3);
    ASSERT_EQ(static_cast<int>(all.size()), p);
    for (int r = 0; r < p; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 3);
  });
}

TEST_P(CommCollectives, AllgatherVariableSizes) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    // Rank r contributes r bytes, each with value r.
    std::vector<std::byte> mine(static_cast<std::size_t>(comm.rank()),
                                static_cast<std::byte>(comm.rank()));
    auto all = comm.allgather_payload(Payload::wrap(std::move(mine)));
    ASSERT_EQ(static_cast<int>(all.size()), p);
    for (int r = 0; r < p; ++r) {
      const Payload& piece = all[static_cast<std::size_t>(r)];
      EXPECT_EQ(piece.size(), static_cast<std::size_t>(r));
      for (std::size_t i = 0; i < piece.size(); ++i)
        EXPECT_EQ(piece.data()[i], static_cast<std::byte>(r));
    }
  });
}

TEST_P(CommCollectives, AllgatherVecConcatenatesInRankOrder) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    // Rank r contributes r+1 typed elements with values 100*r + i.
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()) + 1);
    for (std::size_t i = 0; i < mine.size(); ++i)
      mine[i] = 100 * comm.rank() + static_cast<int>(i);
    const std::vector<int> all = comm.allgather_vec<int>(mine);
    ASSERT_EQ(all.size(),
              static_cast<std::size_t>(p) * static_cast<std::size_t>(p + 1) /
                  2);
    std::size_t pos = 0;
    for (int r = 0; r < p; ++r)
      for (int i = 0; i <= r; ++i) EXPECT_EQ(all[pos++], 100 * r + i);
  });
}

TEST_P(CommCollectives, AlltoallPersonalizedExchange) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    // buffers[d] = [rank, d] so the receiver can verify provenance.
    std::vector<Payload> buffers(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      std::vector<std::byte> msg = {static_cast<std::byte>(comm.rank()),
                                    static_cast<std::byte>(d)};
      buffers[static_cast<std::size_t>(d)] = Payload::wrap(std::move(msg));
    }
    auto got = comm.alltoall_payload(std::move(buffers));
    ASSERT_EQ(static_cast<int>(got.size()), p);
    for (int s = 0; s < p; ++s) {
      const Payload& piece = got[static_cast<std::size_t>(s)];
      ASSERT_EQ(piece.size(), 2u);
      EXPECT_EQ(piece.data()[0], static_cast<std::byte>(s));
      EXPECT_EQ(piece.data()[1], static_cast<std::byte>(comm.rank()));
    }
  });
}

TEST_P(CommCollectives, BarrierCompletes) {
  const int p = GetParam();
  run(p, [](Comm& comm) {
    for (int i = 0; i < 5; ++i) comm.barrier();
  });
}

TEST_P(CommCollectives, SplitEvenOdd) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    const int group = comm.rank() % 2;
    const int expected_size = p / 2 + ((p % 2 == 1 && group == 0) ? 1 : 0);
    EXPECT_EQ(sub.size(), expected_size);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Collectives inside the child work and do not leak across groups.
    const std::int64_t sum = sub.allreduce_sum<std::int64_t>(comm.rank());
    std::int64_t expect = 0;
    for (int r = group; r < p; r += 2) expect += r;
    EXPECT_EQ(sum, expect);
  });
}

TEST_P(CommCollectives, SplitReversedKeyReordersRanks) {
  const int p = GetParam();
  run(p, [p](Comm& comm) {
    Comm sub = comm.split(0, /*key=*/-comm.rank());
    EXPECT_EQ(sub.size(), p);
    EXPECT_EQ(sub.rank(), p - 1 - comm.rank());
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CommCollectives,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(CommAbort, ExceptionInOneRankUnblocksOthers) {
  EXPECT_THROW(
      run(4,
          [](Comm& comm) {
            if (comm.rank() == 2) throw std::runtime_error("rank 2 died");
            // Everyone else blocks on a message that never comes; they must
            // be torn down by the abort instead of deadlocking.
            (void)comm.recv_value<int>((comm.rank() + 1) % 4, 99);
          }),
      std::runtime_error);
}

TEST(CommTraffic, SendBytesAreCounted) {
  auto result = run(2, [](Comm& comm) {
    comm.set_phase("phase-a");
    if (comm.rank() == 0) {
      comm.send_vec<std::int64_t>(1, 1, {1, 2, 3});
    } else {
      (void)comm.recv_vec<std::int64_t>(0, 1);
    }
  });
  const auto summary = result.traffic_summary();
  const auto it = summary.total_per_phase.find("phase-a");
  ASSERT_NE(it, summary.total_per_phase.end());
  EXPECT_EQ(it->second.messages, 1u);
  EXPECT_EQ(it->second.bytes, 3 * sizeof(std::int64_t));
}

}  // namespace
}  // namespace casp::vmpi
