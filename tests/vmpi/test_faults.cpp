// Deterministic fault injection (vmpi/faults.hpp): plan parsing, pure
// per-(rank, op) decisions, transport retries with honest traffic
// accounting, and structured FailureReports for unrecoverable faults.
//
// The FaultMatrix suite is the body of tools/check.sh stage (f): it reads
// CASP_FAULT_SEED from the environment (default 1) so the same binaries
// sweep several seeds. Every previously-fatal path here must terminate
// with a classified FailureReport — never a hang (CTest timeouts bound
// the blast radius) and never a bare abort.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/report.hpp"
#include "vmpi/runtime.hpp"

namespace casp::vmpi {
namespace {

std::uint64_t sweep_seed() {
  const char* env = std::getenv("CASP_FAULT_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return std::strtoull(env, nullptr, 10);
}

std::int64_t counter_sum(const RunResult& result, const std::string& name) {
  std::int64_t sum = 0;
  for (const auto& rec : result.recorders) {
    const auto it = rec.counters().find(name);
    if (it != rec.counters().end()) sum += it->second;
  }
  return sum;
}

// A small SPMD workload that exercises point-to-point and collective
// traffic: a tagged ring exchange per round plus an allreduce checksum.
// Returns the checksum so callers can compare faulty vs fault-free runs.
int ring_workload(Comm& comm, int rounds) {
  comm.set_phase("Ring");
  int checksum = 0;
  const int next = (comm.rank() + 1) % comm.size();
  const int prev = (comm.rank() + comm.size() - 1) % comm.size();
  static_assert(std::is_trivially_copyable_v<int>);
  for (int r = 0; r < rounds; ++r) {
    const int payload = comm.rank() * 1000 + r;
    comm.send_value<int>(next, /*tag=*/7, payload);
    const int received = comm.recv_value<int>(prev, /*tag=*/7);
    EXPECT_EQ(received, prev * 1000 + r);
    checksum += comm.allreduce_sum<int>(received);
  }
  return checksum;
}

// ---------------------------------------------------------------------------
// FaultPlan: spec grammar and pure decision functions.

TEST(FaultPlan, ParseRoundTripsThroughDescribe) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=42;send_fail=0.25;alloc_fail=0.5;delay_us=10;delay_every=3;"
      "delay_rank=2;crash_rank=1;crash_op=9;retry_max=6;retry_base_us=20;"
      "retry_cap_us=100");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.send_fail, 0.25);
  EXPECT_DOUBLE_EQ(plan.alloc_fail, 0.5);
  EXPECT_EQ(plan.delay_us, 10);
  EXPECT_EQ(plan.delay_every, 3);
  EXPECT_EQ(plan.delay_rank, 2);
  EXPECT_EQ(plan.crash_rank, 1);
  EXPECT_EQ(plan.crash_op, 9u);
  EXPECT_EQ(plan.retry.max_attempts, 6);
  EXPECT_EQ(plan.retry.base_delay_us, 20);
  EXPECT_EQ(plan.retry.cap_delay_us, 100);
  EXPECT_TRUE(plan.enabled());

  const FaultPlan again = FaultPlan::parse(plan.describe());
  EXPECT_EQ(again.seed, plan.seed);
  EXPECT_DOUBLE_EQ(again.send_fail, plan.send_fail);
  EXPECT_EQ(again.crash_rank, plan.crash_rank);
  EXPECT_EQ(again.crash_op, plan.crash_op);
  EXPECT_EQ(again.retry.max_attempts, plan.retry.max_attempts);
}

TEST(FaultPlan, EmptySpecIsDisabled) {
  EXPECT_FALSE(FaultPlan::parse("").enabled());
  EXPECT_FALSE(FaultPlan{}.enabled());
}

TEST(FaultPlan, BadSpecsThrow) {
  EXPECT_THROW(FaultPlan::parse("send_fail=1.5"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("send_fail=-0.1"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("retry_max=0"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("crash_op=0"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("no_such_key=1"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("seed"), InvalidArgument);
}

// The message of the thrown InvalidArgument for `spec` — parsing is strict,
// so every rejection must say exactly which key (or item) is at fault.
std::string parse_error(const std::string& spec) {
  try {
    FaultPlan::parse(spec);
  } catch (const InvalidArgument& e) {
    return e.what();
  }
  ADD_FAILURE() << "spec '" << spec << "' parsed without error";
  return {};
}

TEST(FaultPlan, RejectionsNameTheBadKey) {
  EXPECT_NE(parse_error("no_such_key=1").find("unknown key 'no_such_key'"),
            std::string::npos);
  EXPECT_NE(parse_error("seed=1;sed=2").find("unknown key 'sed'"),
            std::string::npos);
  EXPECT_NE(parse_error("send_fail=0.5x").find("bad value '0.5x' for "
                                               "send_fail"),
            std::string::npos);
  EXPECT_NE(parse_error("crash_op=abc").find("bad value 'abc' for crash_op"),
            std::string::npos);
  EXPECT_NE(parse_error("delay_us=").find("bad value '' for delay_us"),
            std::string::npos);
  EXPECT_NE(parse_error("seed").find("expected key=value, got 'seed'"),
            std::string::npos);
}

TEST(FaultPlan, RejectsDuplicateAndEmptyKeys) {
  EXPECT_NE(parse_error("seed=1;seed=2").find("duplicate key 'seed'"),
            std::string::npos);
  EXPECT_NE(
      parse_error("send_fail=0.1;send_fail=0.1").find("duplicate key "
                                                      "'send_fail'"),
      std::string::npos);
  EXPECT_NE(parse_error("=1").find("empty key in '=1'"), std::string::npos);
}

TEST(FaultPlan, RejectsOutOfRangeValuesNamingTheKey) {
  EXPECT_NE(parse_error("send_fail=1.5").find("send_fail must be in [0, 1]"),
            std::string::npos);
  EXPECT_NE(parse_error("alloc_fail=-0.5").find("alloc_fail must be in "
                                                "[0, 1]"),
            std::string::npos);
  EXPECT_NE(parse_error("delay_us=-1").find("delay_us must be >= 0"),
            std::string::npos);
  EXPECT_NE(parse_error("delay_every=-2").find("delay_every must be >= 0"),
            std::string::npos);
  EXPECT_NE(parse_error("delay_rank=-2").find("delay_rank must be >= -1"),
            std::string::npos);
  EXPECT_NE(parse_error("crash_rank=-2").find("crash_rank must be >= -1"),
            std::string::npos);
  EXPECT_NE(parse_error("retry_max=0").find("retry_max must be >= 1"),
            std::string::npos);
  EXPECT_NE(parse_error("retry_base_us=-1").find("retry_base_us must be "
                                                 ">= 0"),
            std::string::npos);
  EXPECT_NE(
      parse_error("retry_base_us=10;retry_cap_us=5").find("retry_cap_us must "
                                                          "be >= "
                                                          "retry_base_us"),
      std::string::npos);
  EXPECT_NE(parse_error("crash_op=0").find("crash_op is 1-based"),
            std::string::npos);
}

TEST(FaultPlan, DisarmedRemovesOnlyTheFiredFaultClass) {
  FaultPlan plan;
  plan.seed = 9;
  plan.send_fail = 0.2;
  plan.crash_rank = 1;
  plan.crash_op = 12;

  const FaultPlan after_crash = plan.disarmed("rank_crash");
  EXPECT_EQ(after_crash.crash_rank, -1);          // dead node replaced
  EXPECT_DOUBLE_EQ(after_crash.send_fail, 0.2);   // network still flaky

  const FaultPlan after_deadlock = plan.disarmed("deadlock");
  EXPECT_EQ(after_deadlock.crash_rank, -1);

  const FaultPlan after_retries = plan.disarmed("retry_exhausted");
  EXPECT_DOUBLE_EQ(after_retries.send_fail, 0.0);  // link replaced
  EXPECT_EQ(after_retries.crash_rank, 1);          // crash schedule stays

  // Unrelated kinds leave the plan untouched.
  const FaultPlan after_other = plan.disarmed("memory_budget");
  EXPECT_EQ(after_other.crash_rank, 1);
  EXPECT_DOUBLE_EQ(after_other.send_fail, 0.2);
}

TEST(FaultPlan, DecisionsArePureFunctionsOfSeedRankOpAttempt) {
  FaultPlan plan;
  plan.seed = sweep_seed();
  plan.send_fail = 0.3;
  int fails = 0;
  const int trials = 2000;
  for (int op = 1; op <= trials; ++op) {
    const bool f = plan.send_attempt_fails(3, static_cast<std::uint64_t>(op),
                                           /*attempt=*/0);
    // Re-evaluating the same coordinates gives the same answer.
    EXPECT_EQ(f, plan.send_attempt_fails(3, static_cast<std::uint64_t>(op), 0));
    if (f) ++fails;
  }
  // ~30% failure rate, generous tolerance (deterministic per seed anyway).
  EXPECT_GT(fails, trials / 10);
  EXPECT_LT(fails, trials / 2);

  // Different rank / op / attempt / seed draw different streams.
  FaultPlan other = plan;
  other.seed = plan.seed + 1;
  int diff = 0;
  for (int op = 1; op <= 256; ++op) {
    const auto u = static_cast<std::uint64_t>(op);
    if (plan.send_attempt_fails(0, u, 0) != other.send_attempt_fails(0, u, 0))
      ++diff;
    if (plan.send_attempt_fails(0, u, 0) != plan.send_attempt_fails(1, u, 0))
      ++diff;
  }
  EXPECT_GT(diff, 0);
}

TEST(FaultPlan, RetryBackoffIsBoundedExponential) {
  RetryPolicy retry;
  retry.base_delay_us = 50;
  retry.cap_delay_us = 300;
  EXPECT_EQ(retry.backoff_us(0), 50);
  EXPECT_EQ(retry.backoff_us(1), 100);
  EXPECT_EQ(retry.backoff_us(2), 200);
  EXPECT_EQ(retry.backoff_us(3), 300);   // capped
  EXPECT_EQ(retry.backoff_us(40), 300);  // no overflow at large attempts
}

// ---------------------------------------------------------------------------
// FaultMatrix: whole-job behaviour, swept over CASP_FAULT_SEED by
// tools/check.sh stage (f).

TEST(FaultMatrix, TransientSendFaultsRetryToCompletion) {
  const int p = 4, rounds = 20;

  // Fault-free baseline: checksum and bytes actually sent.
  int base_checksum = 0;
  auto base = run(p, [&](Comm& comm) {
    const int c = ring_workload(comm, rounds);
    if (comm.rank() == 0) base_checksum = c;
  });
  const auto base_bytes = base.traffic_summary().total_per_phase.at("Ring");

  RunOptions opts;
  FaultPlan plan;
  plan.seed = sweep_seed();
  plan.send_fail = 0.1;
  plan.retry.base_delay_us = 1;  // keep the test fast
  plan.retry.cap_delay_us = 4;
  opts.faults = plan;

  int faulty_checksum = 0;
  auto result = run(
      p,
      [&](Comm& comm) {
        const int c = ring_workload(comm, rounds);
        if (comm.rank() == 0) faulty_checksum = c;
      },
      opts);

  // The job completed with the right answer despite injected failures...
  EXPECT_EQ(faulty_checksum, base_checksum);
  EXPECT_GT(counter_sum(result, "vmpi.retries"), 0);
  EXPECT_GT(counter_sum(result, "vmpi.faults_injected"), 0);
  // ...and every retransmission was charged to the phase ledger, so the
  // faulty run reports strictly more traffic than the clean one (Table II
  // accounting stays honest under faults).
  const auto faulty_bytes = result.traffic_summary().total_per_phase.at("Ring");
  EXPECT_GT(faulty_bytes.bytes, base_bytes.bytes);
  EXPECT_GT(faulty_bytes.messages, base_bytes.messages);
}

TEST(FaultMatrix, RetryExhaustionIsClassified) {
  RunOptions opts;
  FaultPlan plan;
  plan.seed = sweep_seed();
  plan.send_fail = 1.0;  // every attempt fails: retries must run out
  plan.retry.max_attempts = 3;
  plan.retry.base_delay_us = 1;
  plan.retry.cap_delay_us = 2;
  opts.faults = plan;
  opts.capture_failure = true;

  auto result = run(
      2, [&](Comm& comm) { ring_workload(comm, 2); }, opts);
  ASSERT_TRUE(result.failed());
  EXPECT_EQ(result.failure->kind, "retry_exhausted");
  EXPECT_EQ(result.failure->phase, "Ring");
  EXPECT_GE(result.failure->rank, 0);
  EXPECT_NE(result.failure->what.find("exhausted"), std::string::npos);
}

TEST(FaultMatrix, RankCrashIsClassifiedAndNamesTheRank) {
  RunOptions opts;
  FaultPlan plan;
  plan.seed = sweep_seed();
  plan.crash_rank = 2;
  plan.crash_op = 5;
  opts.faults = plan;
  opts.capture_failure = true;

  auto result = run(
      4, [&](Comm& comm) { ring_workload(comm, 10); }, opts);
  ASSERT_TRUE(result.failed());
  EXPECT_EQ(result.failure->kind, "rank_crash");
  EXPECT_EQ(result.failure->rank, 2);
  EXPECT_EQ(result.failure->phase, "Ring");
  EXPECT_NE(result.failure->what.find("rank 2"), std::string::npos);
  // The report names the plan that produced it, for replay.
  EXPECT_NE(result.failure->what.find("crash_rank=2"), std::string::npos);
}

TEST(FaultMatrix, RecvOnCrashedPeerAbortsCleanly) {
  // Rank 1 dies at its very first vmpi op; rank 0 is blocked receiving
  // from it. The job must terminate (abort wakes the receiver) and the
  // report must blame the crash, not the innocent blocked rank.
  RunOptions opts;
  FaultPlan plan;
  plan.seed = sweep_seed();
  plan.crash_rank = 1;
  plan.crash_op = 1;
  opts.faults = plan;
  opts.capture_failure = true;

  auto result = run(
      2,
      [&](Comm& comm) {
        comm.set_phase("Handshake");
        if (comm.rank() == 0) {
          (void)comm.recv_value<int>(1, /*tag=*/3);
        } else {
          comm.send_value<int>(0, /*tag=*/3, 99);
        }
      },
      opts);
  ASSERT_TRUE(result.failed());
  EXPECT_EQ(result.failure->kind, "rank_crash");
  EXPECT_EQ(result.failure->rank, 1);
  EXPECT_EQ(result.failure->phase, "Handshake");
}

TEST(FaultMatrix, CrashReportIsDeterministicAcrossRuns) {
  // Same plan, same program => byte-identical failure classification,
  // independent of thread scheduling. This is the property that makes a
  // fault report replayable from its seed.
  RunOptions opts;
  FaultPlan plan;
  plan.seed = sweep_seed();
  plan.crash_rank = 3;
  plan.crash_op = 7;
  opts.faults = plan;
  opts.capture_failure = true;

  auto once = [&]() {
    return run(
        4, [&](Comm& comm) { ring_workload(comm, 8); }, opts);
  };
  const auto first = once();
  const auto second = once();
  ASSERT_TRUE(first.failed());
  ASSERT_TRUE(second.failed());
  EXPECT_EQ(first.failure->kind, second.failure->kind);
  EXPECT_EQ(first.failure->rank, second.failure->rank);
  EXPECT_EQ(first.failure->phase, second.failure->phase);
  EXPECT_EQ(first.failure->what, second.failure->what);
}

TEST(FaultMatrix, InjectedAllocationFailureIsClassified) {
  RunOptions opts;
  FaultPlan plan;
  plan.seed = sweep_seed();
  plan.alloc_fail = 1.0;  // first tracked allocation dies
  opts.faults = plan;
  opts.capture_failure = true;

  auto result = run(
      2,
      [&](Comm& comm) {
        comm.set_phase("Alloc");
        MemoryTracker tracker(1 << 20);
        arm_alloc_faults(comm, tracker);
        tracker.allocate(64, "doomed buffer");
      },
      opts);
  ASSERT_TRUE(result.failed());
  EXPECT_EQ(result.failure->kind, "memory_budget");
  EXPECT_EQ(result.failure->phase, "Alloc");
  EXPECT_NE(result.failure->what.find("injected"), std::string::npos);
  EXPECT_GT(counter_sum(result, "vmpi.faults_injected"), 0);
}

TEST(FaultMatrix, DelaysPerturbTimingNotResults) {
  RunOptions opts;
  FaultPlan plan;
  plan.seed = sweep_seed();
  plan.delay_us = 100;
  plan.delay_every = 3;
  plan.delay_rank = 1;
  opts.faults = plan;

  int checksum = -1;
  auto result = run(
      4,
      [&](Comm& comm) {
        const int c = ring_workload(comm, 6);
        if (comm.rank() == 0) checksum = c;
      },
      opts);
  int base_checksum = -2;
  run(4, [&](Comm& comm) {
    const int c = ring_workload(comm, 6);
    if (comm.rank() == 0) base_checksum = c;
  });
  EXPECT_EQ(checksum, base_checksum);
  EXPECT_GT(counter_sum(result, "vmpi.faults_injected"), 0);
}

// ---------------------------------------------------------------------------
// Report embedding: --report JSON names the failure.

TEST(FailureReportJson, EmbeddedInRunReport) {
  RunOptions opts;
  FaultPlan plan;
  plan.seed = sweep_seed();
  plan.crash_rank = 0;
  plan.crash_op = 2;
  opts.faults = plan;
  opts.capture_failure = true;

  auto result = run(
      2, [&](Comm& comm) { ring_workload(comm, 4); }, opts);
  ASSERT_TRUE(result.failed());
  const obs::RunReport report = obs::build_report(result);
  ASSERT_TRUE(report.failure.has_value());
  const std::string json = report.to_json().dump();
  EXPECT_NE(json.find("\"failure\""), std::string::npos);
  EXPECT_NE(json.find("\"rank_crash\""), std::string::npos);
  // The deterministic subset stays failure-free (free-text would break
  // byte-identical golden comparisons).
  const std::string det = report.deterministic_json().dump();
  EXPECT_EQ(det.find("\"failure\""), std::string::npos);

  // describe() is the CLI's one-liner: names kind, rank, and phase.
  const std::string line = result.failure->describe();
  EXPECT_NE(line.find("rank_crash"), std::string::npos);
  EXPECT_NE(line.find("rank 0"), std::string::npos);
  EXPECT_NE(line.find("Ring"), std::string::npos);
}

TEST(FailureReportJson, SuccessfulJobHasNoFailure) {
  auto result = run(2, [&](Comm& comm) { ring_workload(comm, 2); });
  EXPECT_FALSE(result.failed());
  const obs::RunReport report = obs::build_report(result);
  EXPECT_FALSE(report.failure.has_value());
  EXPECT_EQ(report.to_json().dump().find("\"failure\""), std::string::npos);
}

}  // namespace
}  // namespace casp::vmpi
