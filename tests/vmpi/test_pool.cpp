#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "vmpi/pool.hpp"
#include "vmpi/runtime.hpp"

namespace casp::vmpi {
namespace {

TEST(Pool, RunsEveryRankOnResidentThreads) {
  RankPool pool(4);
  EXPECT_EQ(pool.size(), 4);

  std::mutex mu;
  std::vector<std::vector<std::thread::id>> ids_per_job;
  for (int job = 0; job < 3; ++job) {
    std::vector<std::thread::id> ids(4);
    std::atomic<int> count{0};
    auto result = pool.run_job([&](Comm& comm) {
      count.fetch_add(1);
      std::lock_guard<std::mutex> lock(mu);
      ids[static_cast<std::size_t>(comm.rank())] = std::this_thread::get_id();
    });
    EXPECT_EQ(count.load(), 4);
    EXPECT_EQ(result.size, 4);
    ids_per_job.push_back(ids);
  }
  EXPECT_EQ(pool.jobs_run(), 3u);
  // Residency: every job ran rank r on the same pool thread.
  for (int job = 1; job < 3; ++job)
    for (int r = 0; r < 4; ++r)
      EXPECT_EQ(ids_per_job[static_cast<std::size_t>(job)]
                           [static_cast<std::size_t>(r)],
                ids_per_job[0][static_cast<std::size_t>(r)])
          << "job " << job << " rank " << r << " migrated threads";
}

TEST(Pool, ResultsMatchStandaloneRun) {
  const auto body = [](Comm& comm) {
    comm.set_phase("work");
    const std::vector<double> mine = {1.5 * comm.rank(), 2.5};
    const std::vector<double> all = comm.allgather_vec<double>(mine);
    double sum = 0;
    for (double v : all) sum += v;
    comm.recorder().set_counter("sum_x10",
                               static_cast<std::int64_t>(sum * 10));
  };
  RankPool pool(6);
  const RunResult pooled = pool.run_job(body);
  const RunResult standalone = run(6, body);

  ASSERT_EQ(pooled.recorders.size(), standalone.recorders.size());
  for (std::size_t r = 0; r < pooled.recorders.size(); ++r)
    EXPECT_EQ(pooled.recorders[r].counters().at("sum_x10"),
              standalone.recorders[r].counters().at("sum_x10"));
  const auto pt = pooled.traffic_summary();
  const auto st = standalone.traffic_summary();
  EXPECT_EQ(pt.total_per_phase.at("work").bytes,
            st.total_per_phase.at("work").bytes);
  EXPECT_EQ(pt.total_per_phase.at("work").messages,
            st.total_per_phase.at("work").messages);
}

TEST(Pool, FailedJobDoesNotPoisonPool) {
  RankPool pool(3);
  FaultPlan plan;
  plan.seed = 7;
  plan.crash_rank = 1;
  plan.crash_op = 2;

  RunOptions opts;
  opts.faults = plan;
  opts.capture_failure = true;
  const RunResult crashed = pool.run_job(
      [](Comm& comm) {
        comm.barrier();
        comm.barrier();
        comm.barrier();
      },
      opts);
  ASSERT_TRUE(crashed.failed());
  EXPECT_EQ(crashed.failure->kind, "rank_crash");
  EXPECT_EQ(crashed.failure->rank, 1);

  // The next tenant's job starts from a clean world on the same threads.
  const RunResult clean = pool.run_job([](Comm& comm) {
    const int total = comm.allreduce_sum<int>(comm.rank() + 1);
    EXPECT_EQ(total, 6);
  });
  EXPECT_FALSE(clean.failed());
  EXPECT_EQ(pool.jobs_run(), 2u);
}

TEST(Pool, RethrowsWithoutCaptureAndStaysUsable) {
  RankPool pool(2);
  try {
    pool.run_job([](Comm& comm) {
      if (comm.rank() == 1) throw std::runtime_error("tenant bug");
      comm.barrier();
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "tenant bug");
  }
  const RunResult ok = pool.run_job([](Comm& comm) { comm.barrier(); });
  EXPECT_FALSE(ok.failed());
}

TEST(Pool, SupervisedRecoversInjectedCrash) {
  RankPool pool(4);
  FaultPlan plan;
  plan.seed = 3;
  plan.crash_rank = 2;
  plan.crash_op = 4;

  SupervisorOptions opts;
  opts.faults = plan;
  opts.max_restarts = 2;
  std::atomic<int> attempts{0};
  const SupervisedResult sup = pool.run_supervised(
      [&](Comm& comm) {
        if (comm.rank() == 0) attempts.fetch_add(1);
        for (int i = 0; i < 6; ++i) comm.barrier();
        const int total = comm.allreduce_sum<int>(1);
        EXPECT_EQ(total, 4);
      },
      opts);
  EXPECT_TRUE(sup.recovered());
  EXPECT_EQ(sup.restarts, 1);
  ASSERT_EQ(sup.recovered_failures.size(), 1u);
  EXPECT_EQ(sup.recovered_failures[0].kind, "rank_crash");
  EXPECT_FALSE(sup.result.failed());
  EXPECT_EQ(attempts.load(), 2);
  // Both attempts ran on the one resident gang.
  EXPECT_EQ(pool.jobs_run(), 2u);
}

TEST(Pool, InvalidSizeThrows) {
  EXPECT_THROW(RankPool(0), std::logic_error);
}

// -- Membership lifecycle (DESIGN.md §5k) ------------------------------------

TEST(Pool, MembershipEdgesAndRejoinGuards) {
  RankPool pool(4);
  EXPECT_EQ(pool.health(2), RankHealth::kAlive);
  // Re-join is only legal from the dead state.
  EXPECT_FALSE(pool.request_rejoin(2));
  pool.mark_dead(2);
  EXPECT_EQ(pool.health(2), RankHealth::kDead);
  EXPECT_EQ(pool.alive_count(), 3);
  EXPECT_TRUE(pool.request_rejoin(2));
  EXPECT_EQ(pool.health(2), RankHealth::kProbation);
  // Probationary ranks are not yet schedulable.
  EXPECT_EQ(pool.alive_count(), 3);
  EXPECT_EQ(pool.probation_ranks(), (std::vector<int>{2}));
  // A second request while already in probation is refused, and
  // out-of-range ranks are ignored.
  EXPECT_FALSE(pool.request_rejoin(2));
  EXPECT_FALSE(pool.request_rejoin(17));
}

TEST(Pool, ProbationHandshakeAdmitsHealthyReplacement) {
  RankPool pool(4);
  pool.mark_dead(1);
  ASSERT_TRUE(pool.request_rejoin(1));
  const std::vector<int> admitted = pool.admit_probationers();
  EXPECT_EQ(admitted, (std::vector<int>{1}));
  EXPECT_EQ(pool.health(1), RankHealth::kAlive);
  EXPECT_EQ(pool.alive_count(), 4);
  EXPECT_EQ(pool.probation_failures(1), 0);
  // The readmitted rank does real work again on the full gang.
  const RunResult ok = pool.run_job(
      [](Comm& comm) { EXPECT_EQ(comm.allreduce_sum<int>(1), 4); });
  EXPECT_FALSE(ok.failed());
}

TEST(Pool, FlappingReplacementQuarantinedAfterMaxFailures) {
  RankPool pool(4);
  MembershipOptions membership;
  membership.max_failures = 3;
  membership.corrupt = [](int rank, int) { return rank == 3; };
  pool.mark_dead(3);
  ASSERT_TRUE(pool.request_rejoin(3));
  for (int strike = 1; strike <= 3; ++strike) {
    EXPECT_TRUE(pool.admit_probationers(membership).empty());
    EXPECT_EQ(pool.probation_failures(3), strike);
  }
  EXPECT_EQ(pool.health(3), RankHealth::kQuarantined);
  EXPECT_EQ(pool.quarantined_ranks(), (std::vector<int>{3}));
  // Quarantine is terminal: no way back through rejoin, and the admit
  // sweep no longer considers the rank.
  EXPECT_FALSE(pool.request_rejoin(3));
  EXPECT_TRUE(pool.admit_probationers(membership).empty());
  EXPECT_EQ(pool.health(3), RankHealth::kQuarantined);
  EXPECT_EQ(pool.alive_count(), 3);
}

TEST(Pool, FlakyReplacementAdmittedOnceCorruptionStops) {
  // Two strikes, then a clean handshake: the rank re-enters below the
  // quarantine threshold, with its strike history retained.
  RankPool pool(4);
  MembershipOptions membership;
  membership.max_failures = 3;
  int flaky_attempts = 2;
  membership.corrupt = [&flaky_attempts](int, int) {
    return flaky_attempts-- > 0;
  };
  pool.mark_dead(0);
  ASSERT_TRUE(pool.request_rejoin(0));
  EXPECT_TRUE(pool.admit_probationers(membership).empty());
  EXPECT_TRUE(pool.admit_probationers(membership).empty());
  EXPECT_EQ(pool.admit_probationers(membership), (std::vector<int>{0}));
  EXPECT_EQ(pool.health(0), RankHealth::kAlive);
  EXPECT_EQ(pool.probation_failures(0), 2);
}

// -- Disjoint split dispatch -------------------------------------------------

TEST(Pool, DisjointSplitsRunConcurrently) {
  RankPool pool(4);
  std::atomic<bool> a_ready{false};
  std::atomic<bool> b_ready{false};
  // Each split's job rendezvouses with the OTHER split's job before its
  // own barrier: only possible when both splits genuinely run at once.
  const JobTicketPtr ticket_a = pool.start_job_on({0, 1}, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 2);
    if (comm.rank() == 0) a_ready.store(true);
    while (!b_ready.load()) std::this_thread::yield();
    comm.barrier();
  });
  const JobTicketPtr ticket_b = pool.start_job_on({2, 3}, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 2);
    if (comm.rank() == 0) b_ready.store(true);
    while (!a_ready.load()) std::this_thread::yield();
    comm.barrier();
  });
  const RunResult ra = pool.finish_job(ticket_a);
  const RunResult rb = pool.finish_job(ticket_b);
  EXPECT_FALSE(ra.failed());
  EXPECT_FALSE(rb.failed());
  EXPECT_EQ(ra.size, 2);
  EXPECT_EQ(rb.size, 2);
}

TEST(Pool, SplitJobSeesDenseJobWorld) {
  // members[i] backs job-world rank i: a job on pool ranks {1, 3} runs a
  // 2-rank world, bit-identical to the same body on any other split.
  RankPool pool(4);
  const auto body = [](Comm& comm) {
    const std::vector<int> all = comm.allgather_vec<int>({comm.rank() * 10});
    EXPECT_EQ(all, (std::vector<int>{0, 10}));
  };
  const RunResult high = pool.finish_job(pool.start_job_on({1, 3}, body));
  const RunResult low = pool.finish_job(pool.start_job_on({0, 1}, body));
  EXPECT_FALSE(high.failed());
  EXPECT_FALSE(low.failed());
}

TEST(Pool, OverlappingSplitDispatchThrows) {
  RankPool pool(4);
  std::atomic<bool> release{false};
  const JobTicketPtr ticket = pool.start_job_on({1, 2}, [&](Comm&) {
    while (!release.load()) std::this_thread::yield();
  });
  // Rank 2 is mid-job on the first split: dispatching onto it must fail,
  // as must unsorted or duplicated member lists.
  EXPECT_THROW(pool.start_job_on({2, 3}, [](Comm&) {}), std::logic_error);
  EXPECT_THROW(pool.start_job_on({3, 0}, [](Comm&) {}), std::logic_error);
  EXPECT_THROW(pool.start_job_on({0, 0}, [](Comm&) {}), std::logic_error);
  release.store(true);
  EXPECT_FALSE(pool.finish_job(ticket).failed());
  EXPECT_EQ(pool.idle_ranks(), (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace casp::vmpi
