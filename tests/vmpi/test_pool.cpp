#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "vmpi/pool.hpp"
#include "vmpi/runtime.hpp"

namespace casp::vmpi {
namespace {

TEST(Pool, RunsEveryRankOnResidentThreads) {
  RankPool pool(4);
  EXPECT_EQ(pool.size(), 4);

  std::mutex mu;
  std::vector<std::vector<std::thread::id>> ids_per_job;
  for (int job = 0; job < 3; ++job) {
    std::vector<std::thread::id> ids(4);
    std::atomic<int> count{0};
    auto result = pool.run_job([&](Comm& comm) {
      count.fetch_add(1);
      std::lock_guard<std::mutex> lock(mu);
      ids[static_cast<std::size_t>(comm.rank())] = std::this_thread::get_id();
    });
    EXPECT_EQ(count.load(), 4);
    EXPECT_EQ(result.size, 4);
    ids_per_job.push_back(ids);
  }
  EXPECT_EQ(pool.jobs_run(), 3u);
  // Residency: every job ran rank r on the same pool thread.
  for (int job = 1; job < 3; ++job)
    for (int r = 0; r < 4; ++r)
      EXPECT_EQ(ids_per_job[static_cast<std::size_t>(job)]
                           [static_cast<std::size_t>(r)],
                ids_per_job[0][static_cast<std::size_t>(r)])
          << "job " << job << " rank " << r << " migrated threads";
}

TEST(Pool, ResultsMatchStandaloneRun) {
  const auto body = [](Comm& comm) {
    comm.set_phase("work");
    const std::vector<double> mine = {1.5 * comm.rank(), 2.5};
    const std::vector<double> all = comm.allgather_vec<double>(mine);
    double sum = 0;
    for (double v : all) sum += v;
    comm.recorder().set_counter("sum_x10",
                               static_cast<std::int64_t>(sum * 10));
  };
  RankPool pool(6);
  const RunResult pooled = pool.run_job(body);
  const RunResult standalone = run(6, body);

  ASSERT_EQ(pooled.recorders.size(), standalone.recorders.size());
  for (std::size_t r = 0; r < pooled.recorders.size(); ++r)
    EXPECT_EQ(pooled.recorders[r].counters().at("sum_x10"),
              standalone.recorders[r].counters().at("sum_x10"));
  const auto pt = pooled.traffic_summary();
  const auto st = standalone.traffic_summary();
  EXPECT_EQ(pt.total_per_phase.at("work").bytes,
            st.total_per_phase.at("work").bytes);
  EXPECT_EQ(pt.total_per_phase.at("work").messages,
            st.total_per_phase.at("work").messages);
}

TEST(Pool, FailedJobDoesNotPoisonPool) {
  RankPool pool(3);
  FaultPlan plan;
  plan.seed = 7;
  plan.crash_rank = 1;
  plan.crash_op = 2;

  RunOptions opts;
  opts.faults = plan;
  opts.capture_failure = true;
  const RunResult crashed = pool.run_job(
      [](Comm& comm) {
        comm.barrier();
        comm.barrier();
        comm.barrier();
      },
      opts);
  ASSERT_TRUE(crashed.failed());
  EXPECT_EQ(crashed.failure->kind, "rank_crash");
  EXPECT_EQ(crashed.failure->rank, 1);

  // The next tenant's job starts from a clean world on the same threads.
  const RunResult clean = pool.run_job([](Comm& comm) {
    const int total = comm.allreduce_sum<int>(comm.rank() + 1);
    EXPECT_EQ(total, 6);
  });
  EXPECT_FALSE(clean.failed());
  EXPECT_EQ(pool.jobs_run(), 2u);
}

TEST(Pool, RethrowsWithoutCaptureAndStaysUsable) {
  RankPool pool(2);
  try {
    pool.run_job([](Comm& comm) {
      if (comm.rank() == 1) throw std::runtime_error("tenant bug");
      comm.barrier();
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "tenant bug");
  }
  const RunResult ok = pool.run_job([](Comm& comm) { comm.barrier(); });
  EXPECT_FALSE(ok.failed());
}

TEST(Pool, SupervisedRecoversInjectedCrash) {
  RankPool pool(4);
  FaultPlan plan;
  plan.seed = 3;
  plan.crash_rank = 2;
  plan.crash_op = 4;

  SupervisorOptions opts;
  opts.faults = plan;
  opts.max_restarts = 2;
  std::atomic<int> attempts{0};
  const SupervisedResult sup = pool.run_supervised(
      [&](Comm& comm) {
        if (comm.rank() == 0) attempts.fetch_add(1);
        for (int i = 0; i < 6; ++i) comm.barrier();
        const int total = comm.allreduce_sum<int>(1);
        EXPECT_EQ(total, 4);
      },
      opts);
  EXPECT_TRUE(sup.recovered());
  EXPECT_EQ(sup.restarts, 1);
  ASSERT_EQ(sup.recovered_failures.size(), 1u);
  EXPECT_EQ(sup.recovered_failures[0].kind, "rank_crash");
  EXPECT_FALSE(sup.result.failed());
  EXPECT_EQ(attempts.load(), 2);
  // Both attempts ran on the one resident gang.
  EXPECT_EQ(pool.jobs_run(), 2u);
}

TEST(Pool, InvalidSizeThrows) {
  EXPECT_THROW(RankPool(0), std::logic_error);
}

}  // namespace
}  // namespace casp::vmpi
