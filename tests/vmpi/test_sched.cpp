// casp-verify acceptance tests: deterministic replay, known-bug rediscovery,
// and schedule-string plumbing. Everything here runs the real runtime under
// the token-passing scheduler — no mocks — so these tests double as the
// proof that scheduled runs produce byte-identical reports and that a
// printed schedule string is a complete reproducer.
#ifdef CASP_VMPI_SCHED

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "vmpi/sched.hpp"
#include "vmpi/sched_corpus.hpp"
#include "vmpi/sched_explore.hpp"

namespace casp::vmpi {
namespace {

corpus::Program prog(const std::string& name) { return corpus::find(name); }

RunResult run_scheduled(const corpus::Program& p, const SchedPlan& plan) {
  RunOptions options;
  options.capture_failure = true;
  options.faults = FaultPlan{};  // ignore any CASP_VMPI_FAULTS in the env
  options.sched = plan;
  return run(p.size, p.body, options);
}

// -- schedule-string plumbing -----------------------------------------------

TEST(SchedPlan, ParsesSeedReplayAndBareScheduleStrings) {
  const SchedPlan seeded = SchedPlan::parse("seed=42");
  EXPECT_EQ(seeded.mode, SchedPlan::Mode::kSeeded);
  EXPECT_EQ(seeded.seed, 42u);

  const SchedPlan replayed = SchedPlan::parse("replay=casp-sched.v1:p2:0110");
  EXPECT_EQ(replayed.mode, SchedPlan::Mode::kReplay);
  EXPECT_EQ(replayed.replay_size, 2);
  EXPECT_EQ(replayed.choices, (std::vector<int>{0, 1, 1, 0}));

  // A bare schedule string means replay too — so a pasted diagnostic line
  // works without editing.
  const SchedPlan bare = SchedPlan::parse("casp-sched.v1:p3:012");
  EXPECT_EQ(bare.mode, SchedPlan::Mode::kReplay);
  EXPECT_EQ(bare.replay_size, 3);

  EXPECT_THROW(SchedPlan::parse("casp-sched.v1:p0:01"), std::invalid_argument);
  EXPECT_THROW(SchedPlan::parse("casp-sched.v1:px:01"), std::invalid_argument);
  EXPECT_THROW(SchedPlan::parse("seed="), std::invalid_argument);
  EXPECT_THROW(SchedPlan::parse("casp-sched.v2:p2:01"),
               std::invalid_argument);
}

TEST(SchedPlan, RecordedScheduleRoundTripsThroughParse) {
  const RunResult r = run_scheduled(prog("bcast_tree"), SchedPlan::seeded(5));
  ASSERT_TRUE(r.sched.has_value());
  const std::string sched = r.sched->schedule;
  ASSERT_FALSE(sched.empty());
  const SchedPlan plan = SchedPlan::parse(sched);
  EXPECT_EQ(plan.mode, SchedPlan::Mode::kReplay);
  EXPECT_EQ(plan.replay_size, 4);
  EXPECT_EQ(static_cast<std::size_t>(plan.choices.size()),
            r.sched->trace.decisions.size() -
                [&] {
                  std::size_t forced = 0;
                  for (const SchedDecision& d : r.sched->trace.decisions)
                    if (d.runnable.size() < 2) ++forced;
                  return forced;
                }());
}

// -- replay determinism ------------------------------------------------------

TEST(SchedReplay, SameSeedIsByteIdenticalAcrossTenRuns) {
  const corpus::Program p = prog("bcast_tree");
  const RunResult first = run_scheduled(p, SchedPlan::seeded(7));
  ASSERT_FALSE(first.failure.has_value()) << first.failure->what;
  ASSERT_TRUE(first.sched.has_value());
  const std::string report =
      obs::build_report(first).deterministic_json().dump();
  for (int i = 1; i < 10; ++i) {
    const RunResult again = run_scheduled(p, SchedPlan::seeded(7));
    ASSERT_TRUE(again.sched.has_value());
    EXPECT_EQ(again.sched->schedule, first.sched->schedule) << "run " << i;
    EXPECT_EQ(obs::build_report(again).deterministic_json().dump(), report)
        << "run " << i;
  }
}

TEST(SchedReplay, ReplayingTheRecordedStringReproducesTheRun) {
  const corpus::Program p = prog("ckpt_consensus");
  const RunResult seeded = run_scheduled(p, SchedPlan::seeded(11));
  ASSERT_TRUE(seeded.sched.has_value());
  const std::string report =
      obs::build_report(seeded).deterministic_json().dump();
  const RunResult replayed =
      run_scheduled(p, SchedPlan::parse(seeded.sched->schedule));
  ASSERT_TRUE(replayed.sched.has_value());
  EXPECT_EQ(replayed.sched->schedule, seeded.sched->schedule);
  EXPECT_EQ(obs::build_report(replayed).deterministic_json().dump(), report);
}

TEST(SchedReplay, DifferentSeedsExploreDifferentSchedules) {
  std::set<std::string> schedules;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RunResult r =
        run_scheduled(prog("bcast_tree"), SchedPlan::seeded(seed));
    ASSERT_TRUE(r.sched.has_value());
    schedules.insert(r.sched->schedule);
  }
  // Not all 8 need be distinct, but a scheduler that ignores its seed
  // would produce exactly one.
  EXPECT_GT(schedules.size(), 1u);
}

// -- known-bug rediscovery ---------------------------------------------------

ExploreResult explore_program(const corpus::Program& p, bool systematic) {
  ExploreOptions opt;
  opt.size = p.size;
  opt.random_schedules = 32;
  opt.systematic = systematic;
  opt.max_schedules = 64;
  return explore(p.body, opt);
}

TEST(SchedExplore, MutationAfterSendCaughtWithin64Schedules) {
  const corpus::Program p = prog("mutation_after_send");
  const ExploreResult r = explore_program(p, /*systematic=*/true);
  EXPECT_LE(r.schedules_run, 64);
  const ScheduleOutcome* hit = r.first_with("mutation_after_send");
  ASSERT_NE(hit, nullptr);
  EXPECT_FALSE(hit->schedule.empty());
}

TEST(SchedExplore, RediscoversTheSoleOwnerRaceAndReplayReproducesIt) {
  // The PR-2 bug, reintroduced as release_or_copy_relaxed: only some
  // interleavings (receiver drops first) are racy, so this needs actual
  // exploration — and the printed schedule string must reproduce the exact
  // diagnostic, finding for finding.
  const corpus::Program p = prog("sole_owner_race");
  const ExploreResult r = explore_program(p, /*systematic=*/false);
  const ScheduleOutcome* hit = r.first_with("sole_owner_race");
  ASSERT_NE(hit, nullptr);

  const ScheduleOutcome again = run_schedule(
      p.size, p.body, SchedPlan::parse(hit->schedule), std::nullopt, 0);
  EXPECT_EQ(again.schedule, hit->schedule);
  ASSERT_EQ(again.findings.size(), hit->findings.size());
  for (std::size_t i = 0; i < again.findings.size(); ++i) {
    EXPECT_EQ(again.findings[i].kind, hit->findings[i].kind);
    EXPECT_EQ(again.findings[i].rank, hit->findings[i].rank);
    EXPECT_EQ(again.findings[i].detail, hit->findings[i].detail);
  }
  EXPECT_EQ(again.failure_what, hit->failure_what);
}

TEST(SchedExplore, RediscoversTheCrossedTagDeadlockExactly) {
  // The PR-1 deadlock. Under the scheduler there is no watchdog sampling:
  // the empty-runnable-set check is exact, the report carries per-rank
  // schedule analysis, and replaying the schedule string reproduces the
  // report byte for byte.
  const corpus::Program p = prog("crossed_tags");
  const ExploreResult r = explore_program(p, /*systematic=*/false);
  const ScheduleOutcome* hit = r.first_with("deadlock");
  ASSERT_NE(hit, nullptr);
  EXPECT_NE(hit->failure_what.find("schedule analysis:"), std::string::npos);
  EXPECT_NE(hit->failure_what.find("replay: CASP_VMPI_SCHED="),
            std::string::npos);

  const ScheduleOutcome again = run_schedule(
      p.size, p.body, SchedPlan::parse(hit->schedule), std::nullopt, 0);
  EXPECT_EQ(again.failure_kind, "deadlock");
  EXPECT_EQ(again.failure_what, hit->failure_what);
}

TEST(SchedExplore, GoodTwinStaysCleanOnEverySchedule) {
  // sole_owner_handoff is the acquire-ordered twin of sole_owner_race:
  // the analyzer models the refcount synchronization, so no schedule —
  // including the ones that flag the relaxed variant — may produce a
  // finding here.
  const corpus::Program p = prog("sole_owner_handoff");
  const ExploreResult r = explore_program(p, /*systematic=*/true);
  EXPECT_TRUE(r.clean()) << r.flagged.front().failure_what;
}

// -- virtual-clock deadlines -------------------------------------------------

TEST(SchedDeadline, BudgetProgramFlagsOnExploredSchedules) {
  // The corpus program burns more virtual time than its 1 ms budget on any
  // interleaving, so exploration must surface deadline_exceeded — the
  // deterministic analogue of a tenant blowing JobSpec::deadline_ms.
  const corpus::Program p = prog("deadline_budget");
  ASSERT_EQ(p.expected, "deadline_exceeded");
  ASSERT_GT(p.deadline_ms, 0);
  ExploreOptions opt;
  opt.size = p.size;
  opt.random_schedules = 16;
  opt.max_schedules = 32;
  opt.deadline_ms = p.deadline_ms;
  const ExploreResult r = explore(p.body, opt);
  const ScheduleOutcome* hit = r.first_with("deadline_exceeded");
  ASSERT_NE(hit, nullptr);
  EXPECT_FALSE(hit->schedule.empty());
}

TEST(SchedDeadline, VirtualExpiryReplaysExactly) {
  // The virtual clock advances per scheduling decision, not per wall-clock
  // tick: replaying the recorded schedule string expires the deadline at
  // the same decision and reproduces the diagnostic byte for byte.
  const corpus::Program p = prog("deadline_budget");
  const ScheduleOutcome first = run_schedule(
      p.size, p.body, SchedPlan::seeded(9), std::nullopt, 0, p.deadline_ms);
  EXPECT_EQ(first.failure_kind, "deadline_exceeded");
  const ScheduleOutcome again =
      run_schedule(p.size, p.body, SchedPlan::parse(first.schedule),
                   std::nullopt, 0, p.deadline_ms);
  EXPECT_EQ(again.schedule, first.schedule);
  EXPECT_EQ(again.failure_kind, first.failure_kind);
  EXPECT_EQ(again.failure_what, first.failure_what);
}

TEST(SchedDeadline, UnarmedClockNeverExpires) {
  const corpus::Program p = prog("deadline_budget");
  const ScheduleOutcome o =
      run_schedule(p.size, p.body, SchedPlan::seeded(9), std::nullopt, 0);
  EXPECT_NE(o.failure_kind, "deadline_exceeded") << o.failure_what;
}

TEST(SchedExplore, LostWakeupDeadlockNamesConsumedMessages) {
  // Receiving the same message twice: the second receive can never be
  // satisfied, and the analyzer should say WHY — the matching message was
  // already consumed — rather than just "deadlock".
  const auto body = [](Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(1, 3, 99);
    } else {
      (void)c.recv_value<int>(0, 3);
      (void)c.recv_value<int>(0, 3);  // lost wakeup: nothing left to match
    }
  };
  const ScheduleOutcome o =
      run_schedule(2, body, SchedPlan::seeded(1), std::nullopt, 0);
  EXPECT_EQ(o.failure_kind, "deadlock");
  EXPECT_NE(o.failure_what.find("lost wakeup"), std::string::npos)
      << o.failure_what;
}

}  // namespace
}  // namespace casp::vmpi

#endif  // CASP_VMPI_SCHED
