// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include "gen/er.hpp"
#include "sparse/csc_mat.hpp"
#include "sparse/triple_mat.hpp"

namespace casp::testing {

/// Assert mathematical equality of two sparse matrices: same shape, same
/// canonical structure, values within tol.
inline void expect_mat_near(const CscMat& a, const CscMat& b,
                            double tol = 1e-9) {
  ASSERT_EQ(a.nrows(), b.nrows());
  ASSERT_EQ(a.ncols(), b.ncols());
  CscMat sa = a;
  CscMat sb = b;
  sa.sort_columns();
  sb.sort_columns();
  ASSERT_EQ(sa.nnz(), sb.nnz()) << "nonzero count mismatch";
  TripleMat ta = sa.to_triples();
  TripleMat tb = sb.to_triples();
  const double diff = max_abs_diff(ta, tb);
  EXPECT_LE(diff, tol) << "max elementwise difference " << diff;
}

/// Random rectangular test matrix with approximately d nnz per column.
inline CscMat random_matrix(Index rows, Index cols, double d,
                            std::uint64_t seed) {
  ErParams p;
  p.nrows = rows;
  p.ncols = cols;
  p.nnz_per_col = d;
  p.seed = seed;
  return generate_er(p);
}

}  // namespace casp::testing
