// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gen/er.hpp"
#include "sparse/csc_mat.hpp"
#include "sparse/triple_mat.hpp"
#include "vmpi/comm.hpp"

namespace casp::testing {

/// Typed broadcast over the payload-first Comm surface, for tests that
/// exercise the collective machinery with small typed vectors. (The old
/// Comm::bcast_vec compat wrapper this replaces is gone; production code
/// broadcasts Payload handles directly.)
template <typename T>
std::vector<T> bcast_typed(vmpi::Comm& comm, int root, std::vector<T> data) {
  static_assert(std::is_trivially_copyable_v<T>);
  Payload p;
  if (comm.rank() == root)
    p = Payload::copy_of(
        reinterpret_cast<const std::byte*>(data.data()),
        data.size() * sizeof(T));
  p = comm.bcast_payload(root, std::move(p));
  std::vector<T> out(p.size() / sizeof(T));
  if (p.size() != 0) std::memcpy(out.data(), p.data(), p.size());
  return out;
}

/// Assert mathematical equality of two sparse matrices: same shape, same
/// canonical structure, values within tol.
inline void expect_mat_near(const CscMat& a, const CscMat& b,
                            double tol = 1e-9) {
  ASSERT_EQ(a.nrows(), b.nrows());
  ASSERT_EQ(a.ncols(), b.ncols());
  CscMat sa = a;
  CscMat sb = b;
  sa.sort_columns();
  sb.sort_columns();
  ASSERT_EQ(sa.nnz(), sb.nnz()) << "nonzero count mismatch";
  TripleMat ta = sa.to_triples();
  TripleMat tb = sb.to_triples();
  const double diff = max_abs_diff(ta, tb);
  EXPECT_LE(diff, tol) << "max elementwise difference " << diff;
}

/// Random rectangular test matrix with approximately d nnz per column.
inline CscMat random_matrix(Index rows, Index cols, double d,
                            std::uint64_t seed) {
  ErParams p;
  p.nrows = rows;
  p.ncols = cols;
  p.nnz_per_col = d;
  p.seed = seed;
  return generate_er(p);
}

}  // namespace casp::testing
