file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_options.dir/summa/test_pipeline_options.cpp.o"
  "CMakeFiles/test_pipeline_options.dir/summa/test_pipeline_options.cpp.o.d"
  "test_pipeline_options"
  "test_pipeline_options.pdb"
  "test_pipeline_options[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
