# Empty dependencies file for test_pipeline_options.
# This may be replaced when dependencies are built.
