# Empty compiler generated dependencies file for test_triple_mat.
# This may be replaced when dependencies are built.
