file(REMOVE_RECURSE
  "CMakeFiles/test_triple_mat.dir/sparse/test_triple_mat.cpp.o"
  "CMakeFiles/test_triple_mat.dir/sparse/test_triple_mat.cpp.o.d"
  "test_triple_mat"
  "test_triple_mat.pdb"
  "test_triple_mat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_triple_mat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
