# Empty dependencies file for test_masked.
# This may be replaced when dependencies are built.
