file(REMOVE_RECURSE
  "CMakeFiles/test_masked.dir/kernels/test_masked.cpp.o"
  "CMakeFiles/test_masked.dir/kernels/test_masked.cpp.o.d"
  "test_masked"
  "test_masked.pdb"
  "test_masked[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_masked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
