file(REMOVE_RECURSE
  "CMakeFiles/test_summa2d.dir/summa/test_summa2d.cpp.o"
  "CMakeFiles/test_summa2d.dir/summa/test_summa2d.cpp.o.d"
  "test_summa2d"
  "test_summa2d.pdb"
  "test_summa2d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summa2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
