# Empty dependencies file for test_summa2d.
# This may be replaced when dependencies are built.
