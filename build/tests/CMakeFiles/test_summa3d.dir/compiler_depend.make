# Empty compiler generated dependencies file for test_summa3d.
# This may be replaced when dependencies are built.
