file(REMOVE_RECURSE
  "CMakeFiles/test_summa3d.dir/summa/test_summa3d.cpp.o"
  "CMakeFiles/test_summa3d.dir/summa/test_summa3d.cpp.o.d"
  "test_summa3d"
  "test_summa3d.pdb"
  "test_summa3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summa3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
