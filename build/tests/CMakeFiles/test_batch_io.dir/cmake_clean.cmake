file(REMOVE_RECURSE
  "CMakeFiles/test_batch_io.dir/apps/test_batch_io.cpp.o"
  "CMakeFiles/test_batch_io.dir/apps/test_batch_io.cpp.o.d"
  "test_batch_io"
  "test_batch_io.pdb"
  "test_batch_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
