# Empty dependencies file for test_batch_io.
# This may be replaced when dependencies are built.
