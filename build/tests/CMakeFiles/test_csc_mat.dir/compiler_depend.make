# Empty compiler generated dependencies file for test_csc_mat.
# This may be replaced when dependencies are built.
