file(REMOVE_RECURSE
  "CMakeFiles/test_csc_mat.dir/sparse/test_csc_mat.cpp.o"
  "CMakeFiles/test_csc_mat.dir/sparse/test_csc_mat.cpp.o.d"
  "test_csc_mat"
  "test_csc_mat.pdb"
  "test_csc_mat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csc_mat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
