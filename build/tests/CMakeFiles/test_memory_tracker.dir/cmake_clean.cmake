file(REMOVE_RECURSE
  "CMakeFiles/test_memory_tracker.dir/common/test_memory_tracker.cpp.o"
  "CMakeFiles/test_memory_tracker.dir/common/test_memory_tracker.cpp.o.d"
  "test_memory_tracker"
  "test_memory_tracker.pdb"
  "test_memory_tracker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
