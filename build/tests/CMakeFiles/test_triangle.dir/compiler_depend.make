# Empty compiler generated dependencies file for test_triangle.
# This may be replaced when dependencies are built.
