# Empty dependencies file for test_traffic_formulas.
# This may be replaced when dependencies are built.
