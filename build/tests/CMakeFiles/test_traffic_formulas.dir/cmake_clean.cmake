file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_formulas.dir/summa/test_traffic_formulas.cpp.o"
  "CMakeFiles/test_traffic_formulas.dir/summa/test_traffic_formulas.cpp.o.d"
  "test_traffic_formulas"
  "test_traffic_formulas.pdb"
  "test_traffic_formulas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_formulas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
