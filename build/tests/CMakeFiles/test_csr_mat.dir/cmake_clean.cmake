file(REMOVE_RECURSE
  "CMakeFiles/test_csr_mat.dir/sparse/test_csr_mat.cpp.o"
  "CMakeFiles/test_csr_mat.dir/sparse/test_csr_mat.cpp.o.d"
  "test_csr_mat"
  "test_csr_mat.pdb"
  "test_csr_mat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csr_mat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
