# Empty compiler generated dependencies file for test_csr_mat.
# This may be replaced when dependencies are built.
