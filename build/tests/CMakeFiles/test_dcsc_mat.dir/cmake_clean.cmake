file(REMOVE_RECURSE
  "CMakeFiles/test_dcsc_mat.dir/sparse/test_dcsc_mat.cpp.o"
  "CMakeFiles/test_dcsc_mat.dir/sparse/test_dcsc_mat.cpp.o.d"
  "test_dcsc_mat"
  "test_dcsc_mat.pdb"
  "test_dcsc_mat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcsc_mat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
