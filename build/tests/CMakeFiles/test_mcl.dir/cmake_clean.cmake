file(REMOVE_RECURSE
  "CMakeFiles/test_mcl.dir/apps/test_mcl.cpp.o"
  "CMakeFiles/test_mcl.dir/apps/test_mcl.cpp.o.d"
  "test_mcl"
  "test_mcl.pdb"
  "test_mcl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
