# Empty dependencies file for test_mcl.
# This may be replaced when dependencies are built.
