file(REMOVE_RECURSE
  "CMakeFiles/test_grid3d.dir/grid/test_grid3d.cpp.o"
  "CMakeFiles/test_grid3d.dir/grid/test_grid3d.cpp.o.d"
  "test_grid3d"
  "test_grid3d.pdb"
  "test_grid3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
