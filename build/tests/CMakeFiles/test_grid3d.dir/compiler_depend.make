# Empty compiler generated dependencies file for test_grid3d.
# This may be replaced when dependencies are built.
