# Empty dependencies file for test_symbolic3d.
# This may be replaced when dependencies are built.
