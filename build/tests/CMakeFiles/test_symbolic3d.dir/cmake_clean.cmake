file(REMOVE_RECURSE
  "CMakeFiles/test_symbolic3d.dir/summa/test_symbolic3d.cpp.o"
  "CMakeFiles/test_symbolic3d.dir/summa/test_symbolic3d.cpp.o.d"
  "test_symbolic3d"
  "test_symbolic3d.pdb"
  "test_symbolic3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symbolic3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
