# Empty dependencies file for protein_clustering.
# This may be replaced when dependencies are built.
