file(REMOVE_RECURSE
  "CMakeFiles/protein_clustering.dir/protein_clustering.cpp.o"
  "CMakeFiles/protein_clustering.dir/protein_clustering.cpp.o.d"
  "protein_clustering"
  "protein_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
