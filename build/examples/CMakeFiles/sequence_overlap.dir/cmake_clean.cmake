file(REMOVE_RECURSE
  "CMakeFiles/sequence_overlap.dir/sequence_overlap.cpp.o"
  "CMakeFiles/sequence_overlap.dir/sequence_overlap.cpp.o.d"
  "sequence_overlap"
  "sequence_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
