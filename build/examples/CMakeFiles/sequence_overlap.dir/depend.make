# Empty dependencies file for sequence_overlap.
# This may be replaced when dependencies are built.
