# Empty dependencies file for semiring_paths.
# This may be replaced when dependencies are built.
