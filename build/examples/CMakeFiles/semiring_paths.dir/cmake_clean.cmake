file(REMOVE_RECURSE
  "CMakeFiles/semiring_paths.dir/semiring_paths.cpp.o"
  "CMakeFiles/semiring_paths.dir/semiring_paths.cpp.o.d"
  "semiring_paths"
  "semiring_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semiring_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
