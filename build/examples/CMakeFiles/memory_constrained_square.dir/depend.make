# Empty dependencies file for memory_constrained_square.
# This may be replaced when dependencies are built.
