file(REMOVE_RECURSE
  "CMakeFiles/memory_constrained_square.dir/memory_constrained_square.cpp.o"
  "CMakeFiles/memory_constrained_square.dir/memory_constrained_square.cpp.o.d"
  "memory_constrained_square"
  "memory_constrained_square.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_constrained_square.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
