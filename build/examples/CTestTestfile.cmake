# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "128" "4" "1")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protein_clustering "/root/repo/build/examples/protein_clustering" "200" "4" "1")
set_tests_properties(example_protein_clustering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_triangle_counting "/root/repo/build/examples/triangle_counting" "8" "4" "1")
set_tests_properties(example_triangle_counting PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sequence_overlap "/root/repo/build/examples/sequence_overlap" "100" "800" "4" "1")
set_tests_properties(example_sequence_overlap PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_memory_constrained "/root/repo/build/examples/memory_constrained_square" "300" "4" "1")
set_tests_properties(example_memory_constrained PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_semiring_paths "/root/repo/build/examples/semiring_paths" "150" "4" "1")
set_tests_properties(example_semiring_paths PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
