# Empty dependencies file for spgemm.
# This may be replaced when dependencies are built.
