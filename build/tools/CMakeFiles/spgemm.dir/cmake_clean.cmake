file(REMOVE_RECURSE
  "CMakeFiles/spgemm.dir/spgemm_cli.cpp.o"
  "CMakeFiles/spgemm.dir/spgemm_cli.cpp.o.d"
  "spgemm"
  "spgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
