file(REMOVE_RECURSE
  "CMakeFiles/mcl.dir/mcl_cli.cpp.o"
  "CMakeFiles/mcl.dir/mcl_cli.cpp.o.d"
  "mcl"
  "mcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
