# Empty dependencies file for mcl.
# This may be replaced when dependencies are built.
