file(REMOVE_RECURSE
  "../bench/bench_fig12_hyperthreading"
  "../bench/bench_fig12_hyperthreading.pdb"
  "CMakeFiles/bench_fig12_hyperthreading.dir/bench_fig12_hyperthreading.cpp.o"
  "CMakeFiles/bench_fig12_hyperthreading.dir/bench_fig12_hyperthreading.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_hyperthreading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
