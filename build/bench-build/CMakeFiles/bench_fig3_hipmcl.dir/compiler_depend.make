# Empty compiler generated dependencies file for bench_fig3_hipmcl.
# This may be replaced when dependencies are built.
