file(REMOVE_RECURSE
  "../bench/bench_fig3_hipmcl"
  "../bench/bench_fig3_hipmcl.pdb"
  "CMakeFiles/bench_fig3_hipmcl.dir/bench_fig3_hipmcl.cpp.o"
  "CMakeFiles/bench_fig3_hipmcl.dir/bench_fig3_hipmcl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_hipmcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
