file(REMOVE_RECURSE
  "../bench/bench_fig10_aat_metaclust"
  "../bench/bench_fig10_aat_metaclust.pdb"
  "CMakeFiles/bench_fig10_aat_metaclust.dir/bench_fig10_aat_metaclust.cpp.o"
  "CMakeFiles/bench_fig10_aat_metaclust.dir/bench_fig10_aat_metaclust.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_aat_metaclust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
