# Empty dependencies file for bench_fig10_aat_metaclust.
# This may be replaced when dependencies are built.
