file(REMOVE_RECURSE
  "../bench/bench_table3_comp_complexity"
  "../bench/bench_table3_comp_complexity.pdb"
  "CMakeFiles/bench_table3_comp_complexity.dir/bench_table3_comp_complexity.cpp.o"
  "CMakeFiles/bench_table3_comp_complexity.dir/bench_table3_comp_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_comp_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
