# Empty compiler generated dependencies file for bench_table3_comp_complexity.
# This may be replaced when dependencies are built.
