file(REMOVE_RECURSE
  "CMakeFiles/casp_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/casp_bench_util.dir/bench_util.cpp.o.d"
  "libcasp_bench_util.a"
  "libcasp_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
