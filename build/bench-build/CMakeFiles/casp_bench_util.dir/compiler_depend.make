# Empty compiler generated dependencies file for casp_bench_util.
# This may be replaced when dependencies are built.
