file(REMOVE_RECURSE
  "libcasp_bench_util.a"
)
