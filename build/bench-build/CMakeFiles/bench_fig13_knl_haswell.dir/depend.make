# Empty dependencies file for bench_fig13_knl_haswell.
# This may be replaced when dependencies are built.
