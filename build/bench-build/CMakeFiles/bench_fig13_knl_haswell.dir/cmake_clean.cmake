file(REMOVE_RECURSE
  "../bench/bench_fig13_knl_haswell"
  "../bench/bench_fig13_knl_haswell.pdb"
  "CMakeFiles/bench_fig13_knl_haswell.dir/bench_fig13_knl_haswell.cpp.o"
  "CMakeFiles/bench_fig13_knl_haswell.dir/bench_fig13_knl_haswell.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_knl_haswell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
