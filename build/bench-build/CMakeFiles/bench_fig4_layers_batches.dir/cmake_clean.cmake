file(REMOVE_RECURSE
  "../bench/bench_fig4_layers_batches"
  "../bench/bench_fig4_layers_batches.pdb"
  "CMakeFiles/bench_fig4_layers_batches.dir/bench_fig4_layers_batches.cpp.o"
  "CMakeFiles/bench_fig4_layers_batches.dir/bench_fig4_layers_batches.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_layers_batches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
