# Empty compiler generated dependencies file for bench_fig4_layers_batches.
# This may be replaced when dependencies are built.
