file(REMOVE_RECURSE
  "../bench/bench_table2_comm_complexity"
  "../bench/bench_table2_comm_complexity.pdb"
  "CMakeFiles/bench_table2_comm_complexity.dir/bench_table2_comm_complexity.cpp.o"
  "CMakeFiles/bench_table2_comm_complexity.dir/bench_table2_comm_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_comm_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
