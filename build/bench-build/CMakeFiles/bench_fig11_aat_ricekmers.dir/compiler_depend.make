# Empty compiler generated dependencies file for bench_fig11_aat_ricekmers.
# This may be replaced when dependencies are built.
