file(REMOVE_RECURSE
  "../bench/bench_fig11_aat_ricekmers"
  "../bench/bench_fig11_aat_ricekmers.pdb"
  "CMakeFiles/bench_fig11_aat_ricekmers.dir/bench_fig11_aat_ricekmers.cpp.o"
  "CMakeFiles/bench_fig11_aat_ricekmers.dir/bench_fig11_aat_ricekmers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_aat_ricekmers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
