# Empty dependencies file for bench_table6_trends.
# This may be replaced when dependencies are built.
