file(REMOVE_RECURSE
  "../bench/bench_table6_trends"
  "../bench/bench_table6_trends.pdb"
  "CMakeFiles/bench_table6_trends.dir/bench_table6_trends.cpp.o"
  "CMakeFiles/bench_table6_trends.dir/bench_table6_trends.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
