file(REMOVE_RECURSE
  "../bench/bench_fig8_symbolic"
  "../bench/bench_fig8_symbolic.pdb"
  "CMakeFiles/bench_fig8_symbolic.dir/bench_fig8_symbolic.cpp.o"
  "CMakeFiles/bench_fig8_symbolic.dir/bench_fig8_symbolic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
