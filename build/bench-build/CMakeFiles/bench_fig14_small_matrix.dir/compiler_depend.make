# Empty compiler generated dependencies file for bench_fig14_small_matrix.
# This may be replaced when dependencies are built.
