file(REMOVE_RECURSE
  "../bench/bench_fig14_small_matrix"
  "../bench/bench_fig14_small_matrix.pdb"
  "CMakeFiles/bench_fig14_small_matrix.dir/bench_fig14_small_matrix.cpp.o"
  "CMakeFiles/bench_fig14_small_matrix.dir/bench_fig14_small_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_small_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
