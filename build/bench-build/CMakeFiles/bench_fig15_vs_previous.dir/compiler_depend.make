# Empty compiler generated dependencies file for bench_fig15_vs_previous.
# This may be replaced when dependencies are built.
