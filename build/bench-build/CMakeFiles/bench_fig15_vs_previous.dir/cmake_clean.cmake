file(REMOVE_RECURSE
  "../bench/bench_fig15_vs_previous"
  "../bench/bench_fig15_vs_previous.pdb"
  "CMakeFiles/bench_fig15_vs_previous.dir/bench_fig15_vs_previous.cpp.o"
  "CMakeFiles/bench_fig15_vs_previous.dir/bench_fig15_vs_previous.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_vs_previous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
