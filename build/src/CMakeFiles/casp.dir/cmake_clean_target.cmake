file(REMOVE_RECURSE
  "libcasp.a"
)
