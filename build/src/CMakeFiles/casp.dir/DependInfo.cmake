
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/batch_io.cpp" "src/CMakeFiles/casp.dir/apps/batch_io.cpp.o" "gcc" "src/CMakeFiles/casp.dir/apps/batch_io.cpp.o.d"
  "/root/repo/src/apps/jaccard.cpp" "src/CMakeFiles/casp.dir/apps/jaccard.cpp.o" "gcc" "src/CMakeFiles/casp.dir/apps/jaccard.cpp.o.d"
  "/root/repo/src/apps/matching.cpp" "src/CMakeFiles/casp.dir/apps/matching.cpp.o" "gcc" "src/CMakeFiles/casp.dir/apps/matching.cpp.o.d"
  "/root/repo/src/apps/mcl.cpp" "src/CMakeFiles/casp.dir/apps/mcl.cpp.o" "gcc" "src/CMakeFiles/casp.dir/apps/mcl.cpp.o.d"
  "/root/repo/src/apps/overlap.cpp" "src/CMakeFiles/casp.dir/apps/overlap.cpp.o" "gcc" "src/CMakeFiles/casp.dir/apps/overlap.cpp.o.d"
  "/root/repo/src/apps/triangle.cpp" "src/CMakeFiles/casp.dir/apps/triangle.cpp.o" "gcc" "src/CMakeFiles/casp.dir/apps/triangle.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/casp.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/casp.dir/common/log.cpp.o.d"
  "/root/repo/src/common/memory_tracker.cpp" "src/CMakeFiles/casp.dir/common/memory_tracker.cpp.o" "gcc" "src/CMakeFiles/casp.dir/common/memory_tracker.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/casp.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/casp.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/timer.cpp" "src/CMakeFiles/casp.dir/common/timer.cpp.o" "gcc" "src/CMakeFiles/casp.dir/common/timer.cpp.o.d"
  "/root/repo/src/gen/er.cpp" "src/CMakeFiles/casp.dir/gen/er.cpp.o" "gcc" "src/CMakeFiles/casp.dir/gen/er.cpp.o.d"
  "/root/repo/src/gen/kmer.cpp" "src/CMakeFiles/casp.dir/gen/kmer.cpp.o" "gcc" "src/CMakeFiles/casp.dir/gen/kmer.cpp.o.d"
  "/root/repo/src/gen/protein.cpp" "src/CMakeFiles/casp.dir/gen/protein.cpp.o" "gcc" "src/CMakeFiles/casp.dir/gen/protein.cpp.o.d"
  "/root/repo/src/gen/rmat.cpp" "src/CMakeFiles/casp.dir/gen/rmat.cpp.o" "gcc" "src/CMakeFiles/casp.dir/gen/rmat.cpp.o.d"
  "/root/repo/src/grid/dist.cpp" "src/CMakeFiles/casp.dir/grid/dist.cpp.o" "gcc" "src/CMakeFiles/casp.dir/grid/dist.cpp.o.d"
  "/root/repo/src/grid/grid3d.cpp" "src/CMakeFiles/casp.dir/grid/grid3d.cpp.o" "gcc" "src/CMakeFiles/casp.dir/grid/grid3d.cpp.o.d"
  "/root/repo/src/kernels/merge.cpp" "src/CMakeFiles/casp.dir/kernels/merge.cpp.o" "gcc" "src/CMakeFiles/casp.dir/kernels/merge.cpp.o.d"
  "/root/repo/src/kernels/reference.cpp" "src/CMakeFiles/casp.dir/kernels/reference.cpp.o" "gcc" "src/CMakeFiles/casp.dir/kernels/reference.cpp.o.d"
  "/root/repo/src/kernels/spgemm.cpp" "src/CMakeFiles/casp.dir/kernels/spgemm.cpp.o" "gcc" "src/CMakeFiles/casp.dir/kernels/spgemm.cpp.o.d"
  "/root/repo/src/kernels/symbolic.cpp" "src/CMakeFiles/casp.dir/kernels/symbolic.cpp.o" "gcc" "src/CMakeFiles/casp.dir/kernels/symbolic.cpp.o.d"
  "/root/repo/src/model/costs.cpp" "src/CMakeFiles/casp.dir/model/costs.cpp.o" "gcc" "src/CMakeFiles/casp.dir/model/costs.cpp.o.d"
  "/root/repo/src/model/machine.cpp" "src/CMakeFiles/casp.dir/model/machine.cpp.o" "gcc" "src/CMakeFiles/casp.dir/model/machine.cpp.o.d"
  "/root/repo/src/model/scaling.cpp" "src/CMakeFiles/casp.dir/model/scaling.cpp.o" "gcc" "src/CMakeFiles/casp.dir/model/scaling.cpp.o.d"
  "/root/repo/src/sparse/csc_mat.cpp" "src/CMakeFiles/casp.dir/sparse/csc_mat.cpp.o" "gcc" "src/CMakeFiles/casp.dir/sparse/csc_mat.cpp.o.d"
  "/root/repo/src/sparse/csr_mat.cpp" "src/CMakeFiles/casp.dir/sparse/csr_mat.cpp.o" "gcc" "src/CMakeFiles/casp.dir/sparse/csr_mat.cpp.o.d"
  "/root/repo/src/sparse/dcsc_mat.cpp" "src/CMakeFiles/casp.dir/sparse/dcsc_mat.cpp.o" "gcc" "src/CMakeFiles/casp.dir/sparse/dcsc_mat.cpp.o.d"
  "/root/repo/src/sparse/mm_io.cpp" "src/CMakeFiles/casp.dir/sparse/mm_io.cpp.o" "gcc" "src/CMakeFiles/casp.dir/sparse/mm_io.cpp.o.d"
  "/root/repo/src/sparse/serialize.cpp" "src/CMakeFiles/casp.dir/sparse/serialize.cpp.o" "gcc" "src/CMakeFiles/casp.dir/sparse/serialize.cpp.o.d"
  "/root/repo/src/sparse/stats.cpp" "src/CMakeFiles/casp.dir/sparse/stats.cpp.o" "gcc" "src/CMakeFiles/casp.dir/sparse/stats.cpp.o.d"
  "/root/repo/src/sparse/triple_mat.cpp" "src/CMakeFiles/casp.dir/sparse/triple_mat.cpp.o" "gcc" "src/CMakeFiles/casp.dir/sparse/triple_mat.cpp.o.d"
  "/root/repo/src/summa/batched.cpp" "src/CMakeFiles/casp.dir/summa/batched.cpp.o" "gcc" "src/CMakeFiles/casp.dir/summa/batched.cpp.o.d"
  "/root/repo/src/summa/summa2d.cpp" "src/CMakeFiles/casp.dir/summa/summa2d.cpp.o" "gcc" "src/CMakeFiles/casp.dir/summa/summa2d.cpp.o.d"
  "/root/repo/src/summa/summa3d.cpp" "src/CMakeFiles/casp.dir/summa/summa3d.cpp.o" "gcc" "src/CMakeFiles/casp.dir/summa/summa3d.cpp.o.d"
  "/root/repo/src/summa/symbolic3d.cpp" "src/CMakeFiles/casp.dir/summa/symbolic3d.cpp.o" "gcc" "src/CMakeFiles/casp.dir/summa/symbolic3d.cpp.o.d"
  "/root/repo/src/vmpi/comm.cpp" "src/CMakeFiles/casp.dir/vmpi/comm.cpp.o" "gcc" "src/CMakeFiles/casp.dir/vmpi/comm.cpp.o.d"
  "/root/repo/src/vmpi/runtime.cpp" "src/CMakeFiles/casp.dir/vmpi/runtime.cpp.o" "gcc" "src/CMakeFiles/casp.dir/vmpi/runtime.cpp.o.d"
  "/root/repo/src/vmpi/traffic.cpp" "src/CMakeFiles/casp.dir/vmpi/traffic.cpp.o" "gcc" "src/CMakeFiles/casp.dir/vmpi/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
