# Empty compiler generated dependencies file for casp.
# This may be replaced when dependencies are built.
