// 3D process grid (Sec. III-B).
//
// p ranks arranged as sqrt(p/l) x sqrt(p/l) x l. Layer k is a 2D grid
// P(:,:,k); fiber P(i,j,:) links the same 2D position across layers. The
// constructor is collective: it splits the world communicator into the
// row / column / fiber / layer communicators SUMMA needs. l = 1 recovers
// the plain 2D algorithm.
#pragma once

#include "vmpi/comm.hpp"

namespace casp {

class Grid3D {
 public:
  /// Collective: every rank of `world` must call with the same `layers`.
  /// Requires world.size() divisible by layers and p/layers a perfect
  /// square.
  Grid3D(vmpi::Comm& world, int layers);

  /// Side of each square layer grid, q = sqrt(p/l). Also the number of
  /// SUMMA stages.
  int q() const { return q_; }
  int layers() const { return layers_; }
  int size() const { return world_.size(); }

  int row() const { return row_; }      ///< i: 2D row coordinate
  int col() const { return col_; }      ///< j: 2D column coordinate
  int layer() const { return layer_; }  ///< k: layer coordinate

  /// World communicator (all p ranks).
  vmpi::Comm& world() { return world_; }
  /// All q*q ranks in my layer, ordered row-major: rank = i*q + j.
  vmpi::Comm& layer_comm() { return layer_comm_; }
  /// Ranks P(i, :, k) sharing my row within my layer; local rank = j.
  vmpi::Comm& row_comm() { return row_comm_; }
  /// Ranks P(:, j, k) sharing my column within my layer; local rank = i.
  vmpi::Comm& col_comm() { return col_comm_; }
  /// Ranks P(i, j, :) sharing my 2D position; local rank = k.
  vmpi::Comm& fiber_comm() { return fiber_comm_; }

  /// Validate that (p, layers) form a legal grid without constructing one.
  static bool valid_shape(int p, int layers);

 private:
  int q_;
  int layers_;
  int row_;
  int col_;
  int layer_;
  vmpi::Comm world_;
  vmpi::Comm layer_comm_;
  vmpi::Comm row_comm_;
  vmpi::Comm col_comm_;
  vmpi::Comm fiber_comm_;
};

}  // namespace casp
