#include "grid/grid3d.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace casp {

bool Grid3D::valid_shape(int p, int layers) {
  if (p < 1 || layers < 1 || p % layers != 0) return false;
  return exact_isqrt(p / layers) > 0;
}

Grid3D::Grid3D(vmpi::Comm& world, int layers)
    : q_(0),
      layers_(layers),
      row_(0),
      col_(0),
      layer_(0),
      world_(world),
      // Placeholders; rebuilt below once coordinates are known (Comm has no
      // default constructor).
      layer_comm_(world),
      row_comm_(world),
      col_comm_(world),
      fiber_comm_(world) {
  const int p = world.size();
  CASP_CHECK_MSG(valid_shape(p, layers),
                 "invalid 3D grid: p=" << p << " layers=" << layers
                                       << " (need p % l == 0 and p/l square)");
  const Index q = exact_isqrt(p / layers);
  q_ = static_cast<int>(q);

  // World rank -> (i, j, k): layers are contiguous rank blocks, row-major
  // within a layer.
  const int r = world.rank();
  layer_ = r / (q_ * q_);
  const int in_layer = r % (q_ * q_);
  row_ = in_layer / q_;
  col_ = in_layer % q_;

  layer_comm_ = world_.split(/*color=*/layer_, /*key=*/in_layer);
  row_comm_ = layer_comm_.split(/*color=*/row_, /*key=*/col_);
  col_comm_ = layer_comm_.split(/*color=*/col_, /*key=*/row_);
  fiber_comm_ = world_.split(/*color=*/in_layer, /*key=*/layer_);

  CASP_CHECK(layer_comm_.size() == q_ * q_);
  CASP_CHECK(row_comm_.size() == q_ && row_comm_.rank() == col_);
  CASP_CHECK(col_comm_.size() == q_ && col_comm_.rank() == row_);
  CASP_CHECK(fiber_comm_.size() == layers_ && fiber_comm_.rank() == layer_);
}

}  // namespace casp
