#include "grid/dist.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace casp {

LocalRange a_style_row_range(const Grid3D& grid, Index global_rows) {
  const Index q = grid.q();
  return {part_low(grid.row(), q, global_rows),
          part_size(grid.row(), q, global_rows)};
}

LocalRange a_style_col_range(const Grid3D& grid, Index global_cols) {
  const Index q = grid.q();
  const Index l = grid.layers();
  const Index part_start = part_low(grid.col(), q, global_cols);
  const Index psize = part_size(grid.col(), q, global_cols);
  return {part_start + part_low(grid.layer(), l, psize),
          part_size(grid.layer(), l, psize)};
}

LocalRange b_style_row_range(const Grid3D& grid, Index global_rows) {
  const Index q = grid.q();
  const Index l = grid.layers();
  const Index part_start = part_low(grid.row(), q, global_rows);
  const Index psize = part_size(grid.row(), q, global_rows);
  return {part_start + part_low(grid.layer(), l, psize),
          part_size(grid.layer(), l, psize)};
}

LocalRange b_style_col_range(const Grid3D& grid, Index global_cols) {
  const Index q = grid.q();
  return {part_low(grid.col(), q, global_cols),
          part_size(grid.col(), q, global_cols)};
}

CscMat extract_block(const CscMat& m, Index r0, Index r1, Index c0, Index c1) {
  CASP_CHECK(0 <= r0 && r0 <= r1 && r1 <= m.nrows());
  CASP_CHECK(0 <= c0 && c0 <= c1 && c1 <= m.ncols());
  const Index ncols = c1 - c0;
  std::vector<Index> colptr(static_cast<std::size_t>(ncols) + 1, 0);
  std::vector<Index> rowids;
  std::vector<Value> vals;
  for (Index j = c0; j < c1; ++j) {
    const auto rows = m.col_rowids(j);
    const auto values = m.col_vals(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (rows[k] >= r0 && rows[k] < r1) {
        rowids.push_back(rows[k] - r0);
        vals.push_back(values[k]);
      }
    }
    colptr[static_cast<std::size_t>(j - c0) + 1] =
        static_cast<Index>(rowids.size());
  }
  return CscMat(r1 - r0, ncols, std::move(colptr), std::move(rowids),
                std::move(vals));
}

DistMat3D distribute_a_style(const Grid3D& grid, const CscMat& global) {
  DistMat3D d;
  d.global_rows = global.nrows();
  d.global_cols = global.ncols();
  d.global_nnz = global.nnz();
  d.rows = a_style_row_range(grid, global.nrows());
  d.cols = a_style_col_range(grid, global.ncols());
  d.local = extract_block(global, d.rows.start, d.rows.start + d.rows.count,
                          d.cols.start, d.cols.start + d.cols.count);
  return d;
}

DistMat3D distribute_b_style(const Grid3D& grid, const CscMat& global) {
  DistMat3D d;
  d.global_rows = global.nrows();
  d.global_cols = global.ncols();
  d.global_nnz = global.nnz();
  d.rows = b_style_row_range(grid, global.nrows());
  d.cols = b_style_col_range(grid, global.ncols());
  d.local = extract_block(global, d.rows.start, d.rows.start + d.rows.count,
                          d.cols.start, d.cols.start + d.cols.count);
  return d;
}

CscMat gather_dist(Grid3D& grid, const DistMat3D& dist) {
  // Ship local entries as (global row, global col, value) triples.
  std::vector<Triple> mine;
  mine.reserve(static_cast<std::size_t>(dist.local.nnz()));
  for (Index j = 0; j < dist.local.ncols(); ++j) {
    const auto rows = dist.local.col_rowids(j);
    const auto values = dist.local.col_vals(j);
    for (std::size_t k = 0; k < rows.size(); ++k)
      mine.push_back(
          {rows[k] + dist.rows.start, j + dist.cols.start, values[k]});
  }
  TripleMat global(dist.global_rows, dist.global_cols);
  global.entries() = grid.world().allgather_vec<Triple>(mine);
  global.check_bounds();
  return CscMat::from_triples(std::move(global));
}

}  // namespace casp
