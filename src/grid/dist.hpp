// Matrix distribution on the 3D grid (Fig. 1).
//
// A-style (used for A, C, and the per-layer D): rows are split into q
// parts by grid row i; columns are split into q parts by grid column j and
// each part further into l layer slices by k — so layer k holds an
// n x (n/l) slice of A that respects the 2D block boundaries (Fig. 1c-e).
//
// B-style: the mirror image — rows get the (part j -> then -> layer slice)
// treatment keyed by grid *row* i, columns are split into q parts by grid
// column j (Fig. 1f-h). With these two layouts the stage-s broadcasts in
// SUMMA2D align exactly: A's column slice (part s, sub k) meets B's row
// slice (part s, sub k).
//
// All partition boundaries use part_low (floor) arithmetic, so nothing
// requires divisibility; nested splits compose exactly (see common/math.hpp).
#pragma once

#include <utility>
#include <vector>

#include "grid/grid3d.hpp"
#include "sparse/csc_mat.hpp"

namespace casp {

/// A contiguous global index range [start, start + count).
struct LocalRange {
  Index start = 0;
  Index count = 0;
};

/// One rank's piece of a matrix distributed on the 3D grid, with the global
/// coordinates it covers. Local indices are 0-based within the ranges.
struct DistMat3D {
  CscMat local;
  Index global_rows = 0;
  Index global_cols = 0;
  /// Total nonzeros of the *global* matrix. Grid-independent (both styles
  /// partition every nonzero exactly once), so checkpoint job identities
  /// built from it survive a resume on a different grid shape.
  Index global_nnz = 0;
  LocalRange rows;
  LocalRange cols;
};

// Global ranges owned by rank (i, j, k) of the grid:
LocalRange a_style_row_range(const Grid3D& grid, Index global_rows);
LocalRange a_style_col_range(const Grid3D& grid, Index global_cols);
LocalRange b_style_row_range(const Grid3D& grid, Index global_rows);
LocalRange b_style_col_range(const Grid3D& grid, Index global_cols);

/// Extract the submatrix [r0, r1) x [c0, c1) with reindexed (local)
/// coordinates. O(entries in the column range).
CscMat extract_block(const CscMat& m, Index r0, Index r1, Index c0, Index c1);

/// Each rank extracts its block from a replicated global matrix.
/// (Real deployments would scatter from parallel I/O; for experiments the
/// generator output is available everywhere and extraction is exact.)
DistMat3D distribute_a_style(const Grid3D& grid, const CscMat& global);
DistMat3D distribute_b_style(const Grid3D& grid, const CscMat& global);

/// Collective: reassemble a distributed matrix onto every rank (for tests
/// and result verification). Works for both styles since DistMat3D carries
/// its global ranges.
CscMat gather_dist(Grid3D& grid, const DistMat3D& dist);

}  // namespace casp
