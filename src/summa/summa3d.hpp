// 3D Sparse SUMMA (Algorithm 2).
//
// Per layer: SUMMA2D produces a low-rank local D^(k). Each rank column-
// splits its D into l pieces, exchanges piece m with layer m along its
// fiber (AllToAll-Fiber), and merges the l received pieces (Merge-Fiber)
// into its final C block. The split boundaries are a parameter: the plain
// algorithm splits into l equal slices (so C lands A-style distributed),
// while the batched algorithm passes its block-cyclic boundaries.
#pragma once

#include <span>

#include "grid/grid3d.hpp"
#include "sparse/csc_mat.hpp"
#include "summa/steps.hpp"

namespace casp {

/// Collective over the whole grid. local_a / local_b as in summa2d.
/// col_splits: l+1 ascending boundaries over local_b.ncols() (piece m =
/// columns [col_splits[m], col_splits[m+1])); empty means equal l-way
/// part_low splitting. Returns this rank's merged piece (piece `layer()`),
/// with columns still numbered as in the *input* piece (callers track the
/// global mapping).
template <typename SR = PlusTimes>
CscMat summa3d(Grid3D& grid, const CscMat& local_a, const CscMat& local_b,
               const SummaOptions& opts = {},
               std::span<const Index> col_splits = {});

}  // namespace casp
