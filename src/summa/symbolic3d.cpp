#include "summa/symbolic3d.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "kernels/symbolic.hpp"
#include "obs/recorder.hpp"
#include "sparse/serialize.hpp"
#include "sparse/stats.hpp"
#include "summa/sparse_comm.hpp"

namespace casp {

SymbolicResult symbolic3d(Grid3D& grid, const CscMat& local_a,
                          const CscMat& local_b, Bytes total_memory,
                          const SummaOptions& opts) {
  vmpi::Comm& row_comm = grid.row_comm();
  vmpi::Comm& col_comm = grid.col_comm();
  vmpi::Comm& world = grid.world();
  const int stages = grid.q();

  // Whole step is one span, its traffic recorded under "Symbolic": the
  // experiments (Fig. 8) break the symbolic step out of the bcast steps.
  // All comms here share the world's recorder, so the single top-level
  // phase covers the row/column broadcasts too.
  obs::Recorder& rec = world.recorder();
  obs::PhaseSpan world_span(rec, steps::kSymbolic);

  // Same broadcast schedule as summa2d: handle-forwarding ibcasts, with
  // stage s+1 prefetched during stage s's symbolic pass when pipelining.
  struct StageBcasts {
    vmpi::PendingBcast a;
    vmpi::PendingBcast b;
  };
  auto post_stage = [&](int s) {
    StageBcasts pending;
    pending.a = row_comm.ibcast_payload(
        s, row_comm.rank() == s ? pack_csc_payload(local_a) : Payload{});
    pending.b = col_comm.ibcast_payload(
        s, col_comm.rank() == s ? pack_csc_payload(local_b) : Payload{});
    return pending;
  };

  Index my_unmerged = 0;
  Index my_flops = 0;
  std::vector<Index> my_col_nnz;
  // Per-stage column counts accumulate into the whole-multiplication
  // per-column totals; their sum is exactly the old symbolic_nnz term.
  auto tally_stage = [&](const CscConstRef& a_view,
                         const CscConstRef& b_view) {
    const std::vector<Index> stage_cols = symbolic_column_nnz(a_view, b_view);
    if (my_col_nnz.empty()) my_col_nnz.assign(stage_cols.size(), 0);
    CASP_CHECK_MSG(my_col_nnz.size() == stage_cols.size(),
                   "symbolic3d: stage B widths disagree within a block "
                   "column");
    for (std::size_t j = 0; j < stage_cols.size(); ++j) {
      my_col_nnz[j] += stage_cols[j];
      my_unmerged += stage_cols[j];
    }
    my_flops += multiply_flops(a_view, b_view);
  };

  if (opts.sparse_comm) {
    // Same need-list A exchange as the numeric loop (summa2d_sparse): B
    // keeps its ibcast schedule, each stage's A request is derived from
    // the row support of that stage's B block.
    SparseAExchange a_exchange(row_comm, local_a);
    auto post_b = [&](int s) {
      return col_comm.ibcast_payload(
          s, col_comm.rank() == s ? pack_csc_payload(local_b) : Payload{});
    };
    auto prepare_stage = [&](int s, vmpi::PendingBcast& b_pending) {
      CscView view = unpack_csc_view(col_comm.bcast_wait(b_pending));
      a_exchange.post(s, view);
      return view;
    };
    vmpi::PendingBcast b_pending = post_b(0);
    CscView b_view = prepare_stage(0, b_pending);
    for (int s = 0; s < stages; ++s) {
      obs::ScopedTag stage_tag(rec, obs::ScopedTag::Kind::kStage, s);
      if (opts.pipeline && s + 1 < stages) b_pending = post_b(s + 1);
      CscView a_view = a_exchange.wait(s);
      tally_stage(a_view, b_view);
      if (s + 1 < stages) {
        if (!opts.pipeline) b_pending = post_b(s + 1);
        b_view = prepare_stage(s + 1, b_pending);
      }
    }
  } else {
    StageBcasts current = post_stage(0);
    for (int s = 0; s < stages; ++s) {
      obs::ScopedTag stage_tag(rec, obs::ScopedTag::Kind::kStage, s);
      CscView a_view = unpack_csc_view(row_comm.bcast_wait(current.a));
      CscView b_view = unpack_csc_view(col_comm.bcast_wait(current.b));
      if (opts.pipeline && s + 1 < stages) current = post_stage(s + 1);

      tally_stage(a_view, b_view);
      if (!opts.pipeline && s + 1 < stages) current = post_stage(s + 1);
    }
  }

  SymbolicResult result;
  result.col_nnz = std::move(my_col_nnz);
  result.max_nnz_c = world.allreduce_max<Index>(my_unmerged);
  result.max_nnz_a = world.allreduce_max<Index>(local_a.nnz());
  result.max_nnz_b = world.allreduce_max<Index>(local_b.nnz());
  result.total_unmerged_nnz = world.allreduce_sum<Index>(my_unmerged);
  result.total_flops = world.allreduce_sum<Index>(my_flops);

  if (total_memory == 0) {
    result.batches = 1;
    return result;
  }

  // Alg. 3 line 12: b = r * maxnnzC / (M/p - r * (maxnnzA + maxnnzB)).
  const double r = static_cast<double>(kBytesPerNonzero);
  const double per_process_memory =
      static_cast<double>(total_memory) / static_cast<double>(world.size());
  const double input_bytes =
      r * static_cast<double>(result.max_nnz_a + result.max_nnz_b);
  const double denom = per_process_memory - input_bytes;
  if (denom <= 0.0) {
    throw MemoryError(
        "symbolic3d: inputs alone exceed the per-process memory share; "
        "batching cannot help (Eq. 2 denominator <= 0)");
  }
  const double b = r * static_cast<double>(result.max_nnz_c) / denom;
  result.batches = std::max<Index>(1, static_cast<Index>(std::ceil(b)));
  return result;
}

}  // namespace casp
