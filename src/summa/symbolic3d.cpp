#include "summa/symbolic3d.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "kernels/symbolic.hpp"
#include "sparse/serialize.hpp"
#include "sparse/stats.hpp"

namespace casp {

SymbolicResult symbolic3d(Grid3D& grid, const CscMat& local_a,
                          const CscMat& local_b, Bytes total_memory,
                          const SummaOptions& opts) {
  (void)opts;
  vmpi::Comm& row_comm = grid.row_comm();
  vmpi::Comm& col_comm = grid.col_comm();
  vmpi::Comm& world = grid.world();
  const int stages = grid.q();

  // Whole step is timed and its traffic recorded under "Symbolic": the
  // experiments (Fig. 8) break the symbolic step out of the bcast steps.
  vmpi::ScopedPhase world_phase(world.traffic(), steps::kSymbolic);
  ScopedTimer world_timer(world.times(), steps::kSymbolic);

  Index my_unmerged = 0;
  Index my_flops = 0;
  for (int s = 0; s < stages; ++s) {
    vmpi::ScopedPhase row_phase(row_comm.traffic(), steps::kSymbolic);
    vmpi::ScopedPhase col_phase(col_comm.traffic(), steps::kSymbolic);
    std::vector<std::byte> abuf =
        row_comm.rank() == s ? pack_csc(local_a) : std::vector<std::byte>{};
    abuf = row_comm.bcast_bytes(s, std::move(abuf));
    const CscMat a_recv = unpack_csc(abuf);

    std::vector<std::byte> bbuf =
        col_comm.rank() == s ? pack_csc(local_b) : std::vector<std::byte>{};
    bbuf = col_comm.bcast_bytes(s, std::move(bbuf));
    const CscMat b_recv = unpack_csc(bbuf);

    my_unmerged += symbolic_nnz(a_recv, b_recv);
    my_flops += multiply_flops(a_recv, b_recv);
  }

  SymbolicResult result;
  result.max_nnz_c = world.allreduce_max<Index>(my_unmerged);
  result.max_nnz_a = world.allreduce_max<Index>(local_a.nnz());
  result.max_nnz_b = world.allreduce_max<Index>(local_b.nnz());
  result.total_unmerged_nnz = world.allreduce_sum<Index>(my_unmerged);
  result.total_flops = world.allreduce_sum<Index>(my_flops);

  if (total_memory == 0) {
    result.batches = 1;
    return result;
  }

  // Alg. 3 line 12: b = r * maxnnzC / (M/p - r * (maxnnzA + maxnnzB)).
  const double r = static_cast<double>(kBytesPerNonzero);
  const double per_process_memory =
      static_cast<double>(total_memory) / static_cast<double>(world.size());
  const double input_bytes =
      r * static_cast<double>(result.max_nnz_a + result.max_nnz_b);
  const double denom = per_process_memory - input_bytes;
  if (denom <= 0.0) {
    throw MemoryError(
        "symbolic3d: inputs alone exceed the per-process memory share; "
        "batching cannot help (Eq. 2 denominator <= 0)");
  }
  const double b = r * static_cast<double>(result.max_nnz_c) / denom;
  result.batches = std::max<Index>(1, static_cast<Index>(std::ceil(b)));
  return result;
}

}  // namespace casp
