#include "summa/summa3d.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "obs/recorder.hpp"
#include "sparse/serialize.hpp"
#include "summa/summa2d.hpp"

namespace casp {

template <typename SR>
CscMat summa3d(Grid3D& grid, const CscMat& local_a, const CscMat& local_b,
               const SummaOptions& opts, std::span<const Index> col_splits) {
  const int l = grid.layers();

  // Stage loop + Merge-Layer within my layer.
  CscMat d = summa2d<SR>(grid, local_a, local_b, opts);
  MemoryCharge d_charge;
  if (opts.memory != nullptr)
    d_charge = MemoryCharge(*opts.memory,
                            static_cast<Bytes>(d.nnz()) * kBytesPerNonzero,
                            "layer-merged D");

  // ColSplit (line 4, Alg. 2).
  std::vector<Index> splits;
  if (col_splits.empty()) {
    splits.resize(static_cast<std::size_t>(l) + 1);
    for (int m = 0; m <= l; ++m)
      splits[static_cast<std::size_t>(m)] = part_low(m, l, d.ncols());
  } else {
    CASP_CHECK_MSG(static_cast<int>(col_splits.size()) == l + 1,
                   "summa3d: need l+1 column split boundaries");
    splits.assign(col_splits.begin(), col_splits.end());
    CASP_CHECK(splits.front() == 0 && splits.back() == d.ncols());
  }

  vmpi::Comm& fiber = grid.fiber_comm();
  obs::Recorder& rec = fiber.recorder();
  obs::ScopedTag layer_tag(rec, obs::ScopedTag::Kind::kLayer, grid.layer());
  if (opts.memory != nullptr)
    rec.sample_memory(*opts.memory, "memory.live_bytes");

  // AllToAll-Fiber (line 5): piece m of my D goes to layer m, packed once
  // into a payload whose handle the exchange forwards without copying.
  std::vector<Payload> outgoing(static_cast<std::size_t>(l));
  for (int m = 0; m < l; ++m) {
    outgoing[static_cast<std::size_t>(m)] = pack_csc_payload(d.slice_cols(
        splits[static_cast<std::size_t>(m)], splits[static_cast<std::size_t>(m) + 1]));
  }
  d = CscMat();  // release D before holding l received pieces
  d_charge.reset();

  std::vector<Payload> incoming;
  {
    obs::PhaseSpan span(rec, steps::kAllToAllFiber);
    incoming = fiber.alltoall_payload(std::move(outgoing));
  }

  // Merge straight out of the received wire buffers — the views borrow the
  // payload arrays, so the pieces are never deserialized into owned copies.
  std::vector<CscView> pieces;
  pieces.reserve(static_cast<std::size_t>(l));
  std::vector<MemoryCharge> piece_charges;
  for (const Payload& buf : incoming) {
    pieces.push_back(unpack_csc_view(buf));
    if (opts.memory != nullptr)
      piece_charges.emplace_back(
          *opts.memory,
          static_cast<Bytes>(pieces.back().nnz()) * kBytesPerNonzero,
          "fiber piece");
  }

  // Merge-Fiber (line 6) + the single final sort.
  CscMat c;
  {
    obs::Span span(rec, steps::kMergeFiber);
    c = merge_matrices<SR>(csc_refs(pieces), opts.merge_kind, opts.threads);
    if (opts.sort_final) c.sort_columns();
  }
  if (opts.memory != nullptr)
    rec.sample_memory(*opts.memory, "memory.live_bytes");
  return c;
}

template CscMat summa3d<PlusTimes>(Grid3D&, const CscMat&, const CscMat&,
                                   const SummaOptions&,
                                   std::span<const Index>);
template CscMat summa3d<MinPlus>(Grid3D&, const CscMat&, const CscMat&,
                                 const SummaOptions&, std::span<const Index>);
template CscMat summa3d<MaxMin>(Grid3D&, const CscMat&, const CscMat&,
                                const SummaOptions&, std::span<const Index>);
template CscMat summa3d<OrAnd>(Grid3D&, const CscMat&, const CscMat&,
                               const SummaOptions&, std::span<const Index>);

}  // namespace casp
