// Step names and options shared by the SUMMA family.
//
// The seven major steps of BatchedSUMMA3D (Sec. IV-B). Timing and traffic
// are recorded under these exact labels, and every bench reports the same
// breakdown the paper's figures use.
#pragma once

#include <span>
#include <string>

#include "common/memory_tracker.hpp"
#include "common/types.hpp"
#include "kernels/merge.hpp"
#include "kernels/spgemm.hpp"

namespace casp {

namespace ckpt {
class Checkpointer;
class ResumeCache;
}  // namespace ckpt

namespace steps {
inline constexpr const char* kSymbolic = "Symbolic";
inline constexpr const char* kABcast = "A-Bcast";
inline constexpr const char* kBBcast = "B-Bcast";
inline constexpr const char* kLocalMultiply = "Local-Multiply";
inline constexpr const char* kMergeLayer = "Merge-Layer";
inline constexpr const char* kAllToAllFiber = "AllToAll-Fiber";
inline constexpr const char* kMergeFiber = "Merge-Fiber";

inline constexpr const char* kAll[] = {
    kSymbolic,   kABcast,        kBBcast,     kLocalMultiply,
    kMergeLayer, kAllToAllFiber, kMergeFiber,
};

/// Not one of the paper's seven steps (hence not in kAll): the per-batch
/// overrun-consensus allreduce of the adaptive re-batch protocol. Only
/// present when a memory tracker enforces the budget.
inline constexpr const char* kRebatchConsensus = "Rebatch-Consensus";

/// Also outside the paper's seven steps: the resume-consensus collective
/// run once at job start when checkpointing is enabled, where ranks agree
/// on the common restore point (ranks may hold generations one save apart,
/// since a crash is not a barrier).
inline constexpr const char* kCkptResume = "Ckpt-Resume";
}  // namespace steps

/// Knobs for the SUMMA family. Defaults are this paper's configuration
/// (unsorted hash kernels, one final sort); set local_kind/merge_kind to
/// kHybrid / kSortedHeap to reproduce the prior-work pipeline of [13, 25]
/// for the Fig. 15 / Table VII comparisons.
struct SummaOptions {
  SpGemmKind local_kind = SpGemmKind::kUnsortedHash;
  MergeKind merge_kind = MergeKind::kUnsortedHash;
  /// Sort the final output's columns (done once, after Merge-Fiber).
  bool sort_final = true;
  /// Prefetch stage s+1's A/B broadcasts (nonblocking ibcast) while stage
  /// s's Local-Multiply runs. Off = post and complete each stage's
  /// broadcasts before its multiply (the classic blocking schedule). Both
  /// modes send exactly the same messages in the same phases, so Table II
  /// traffic accounting is unchanged.
  bool pipeline = true;
  /// Sparsity-aware A exchange (summa/sparse_comm.hpp): replace the dense
  /// A-Bcast with a need-list request round plus need-only replies shipped
  /// as zero-copy subviews. Results are bit-identical either way; the
  /// traffic ledger's shipped-vs-logical columns expose the savings. B
  /// stays dense (its dead weight is row-filtered, not subview-shaped).
  bool sparse_comm = false;
  /// Per-local-output-column unmerged nnz from a prior symbolic pass
  /// (SymbolicResult::col_nnz, sliced per batch); when non-empty, the
  /// local kernels pre-size their hash tables from it instead of growing
  /// from the flops upper bound. Borrowed, not owned.
  std::span<const Index> symbolic_col_nnz = {};
  /// OpenMP threads for local kernels within each rank.
  int threads = 1;
  /// Optional per-rank memory budget enforcement. Not owned.
  MemoryTracker* memory = nullptr;
  /// Batched algorithm only: override the symbolic batch count (0 = let
  /// Symbolic3D decide). Used by the (l, b) sweep experiments.
  Index force_batches = 0;
  /// Batched algorithm only, and only with opts.memory set: when a batch
  /// overruns the budget, reach consensus at the batch boundary and re-run
  /// the remaining work at double the batch count instead of failing the
  /// job. part_low's nesting property keeps the recovered output
  /// bit-identical to the unconstrained run (see batched.cpp).
  bool adaptive_rebatch = true;
  /// Batch-boundary checkpointing (batched_summa3d only). Not owned; null
  /// or a disabled Checkpointer turns the feature off with zero hot-path
  /// cost. Must be configured uniformly across ranks (enabled-ness and
  /// cadence), because resuming runs a consensus collective.
  ckpt::Checkpointer* ckpt = nullptr;
  /// Extra disambiguator mixed into the checkpoint job identity — callers
  /// nesting batched SUMMA inside an outer loop (MCL sets
  /// "mcl-iter-<k>") use it so a stale snapshot from another iteration
  /// can never be resumed.
  std::string ckpt_job_tag;
  /// Redistributed checkpoint state from a *previous grid shape*
  /// (ckpt::redistribute_for_grid). When set, every batch whose output
  /// columns the cache fully covers is emitted from the cached pieces
  /// instead of recomputed — the degraded-grid resume path. Must be set
  /// uniformly across ranks (coverage is agreed by consensus per batch).
  /// Borrowed, not owned.
  const ckpt::ResumeCache* resume = nullptr;
  /// Batched algorithm only: when > 0, stop after this many freshly
  /// *computed* batches (cache-recovered batches don't count) at the next
  /// batch boundary — force a checkpoint of everything emitted so far, set
  /// BatchedResult::paused, and return without assembling the kept output.
  /// The service's regrow path uses this to park an elastic job so the grid
  /// can change shape between attempts. Must be set uniformly across ranks
  /// (the pause decision reads only SPMD-consistent state).
  Index pause_after_batches = 0;
};

}  // namespace casp
