#include "summa/sparse_comm.hpp"

#include <cstring>
#include <type_traits>

#include "common/error.hpp"
#include "model/costs.hpp"
#include "sparse/serialize.hpp"

namespace casp {

namespace {

constexpr std::size_t kWord = sizeof(std::uint64_t);
static_assert(sizeof(Index) == kWord && sizeof(Value) == kWord,
              "the sparse-exchange wire protocol assumes 8-byte elements");

/// Byte offsets of the three CSC arrays inside a packed block (mirrors the
/// wire layout of sparse/serialize.cpp: 24-byte header, then colptr,
/// rowids, vals — all 8-byte elements, so every offset is 8-aligned).
struct BlockLayout {
  std::size_t colptr = 0;
  std::size_t rowids = 0;
  std::size_t vals = 0;
};

BlockLayout block_layout(Index ncols, Index nnz) {
  BlockLayout l;
  l.colptr = 3 * sizeof(Index);  // Header{nrows, ncols, nnz}
  l.rowids = l.colptr + (static_cast<std::size_t>(ncols) + 1) * sizeof(Index);
  l.vals = l.rowids + static_cast<std::size_t>(nnz) * sizeof(Index);
  return l;
}

void append_u64(std::vector<std::byte>& buf, std::uint64_t v) {
  static_assert(std::is_trivially_copyable_v<std::uint64_t>);
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  buf.insert(buf.end(), p, p + sizeof(v));
}

std::uint64_t read_u64(const std::byte* base, std::size_t word) {
  std::uint64_t v = 0;
  std::memcpy(&v, base + word * kWord, sizeof(v));
  return v;
}

}  // namespace

std::vector<Index> row_support(const CscConstRef& b) {
  std::vector<bool> seen(static_cast<std::size_t>(b.nrows()), false);
  for (Index r : b.rowids()) seen[static_cast<std::size_t>(r)] = true;
  std::vector<Index> support;
  for (Index r = 0; r < b.nrows(); ++r)
    if (seen[static_cast<std::size_t>(r)]) support.push_back(r);
  return support;
}

std::vector<ColRange> coalesce_cols(std::span<const Index> cols,
                                    Index max_gap) {
  std::vector<ColRange> ranges;
  for (Index c : cols) {
    if (!ranges.empty() && c - ranges.back().end <= max_gap) {
      ranges.back().end = c + 1;
    } else {
      ranges.push_back({c, c + 1});
    }
  }
  return ranges;
}

Payload pack_need_request(std::span<const ColRange> ranges) {
  std::vector<std::byte> buf;
  buf.reserve((1 + 2 * ranges.size()) * kWord);
  append_u64(buf, ranges.size());
  for (const ColRange& r : ranges) {
    append_u64(buf, static_cast<std::uint64_t>(r.begin));
    append_u64(buf, static_cast<std::uint64_t>(r.end));
  }
  return Payload::wrap(std::move(buf));
}

std::vector<ColRange> unpack_need_request(const Payload& request) {
  CASP_CHECK_MSG(request.size() >= kWord && request.size() % kWord == 0,
                 "unpack_need_request: malformed request");
  const std::byte* base = request.data();
  const std::uint64_t nranges = read_u64(base, 0);
  CASP_CHECK_MSG(request.size() == (1 + 2 * nranges) * kWord,
                 "unpack_need_request: size does not match range count");
  std::vector<ColRange> ranges(nranges);
  Index prev_end = 0;
  for (std::size_t i = 0; i < nranges; ++i) {
    ranges[i].begin = static_cast<Index>(read_u64(base, 1 + 2 * i));
    ranges[i].end = static_cast<Index>(read_u64(base, 2 + 2 * i));
    CASP_CHECK_MSG(ranges[i].begin >= prev_end &&
                       ranges[i].begin < ranges[i].end,
                   "unpack_need_request: ranges not ascending half-open");
    prev_end = ranges[i].end;
  }
  return ranges;
}

vmpi::SparseReply make_sparse_reply(const Payload& packed_block,
                                    const Payload& request,
                                    const Machine* machine) {
  const CscView block = unpack_csc_view(packed_block);
  const std::vector<ColRange> ranges = unpack_need_request(request);
  const std::span<const Index> colptr = block.colptr();

  vmpi::SparseReply reply;
  reply.dense_equivalent_bytes = static_cast<Bytes>(packed_block.size());

  // Size the sparse reply before building anything: descriptor words plus
  // the rowids/vals volume of the requested ranges.
  std::size_t desc_words = 4;  // kind, nrows, ncols, nranges
  Index range_nnz = 0;
  for (const ColRange& r : ranges) {
    CASP_CHECK_MSG(r.end <= block.ncols(),
                   "make_sparse_reply: range past block width");
    desc_words += 2 + static_cast<std::size_t>(r.end - r.begin) + 1;
    range_nnz += colptr[static_cast<std::size_t>(r.end)] -
                 colptr[static_cast<std::size_t>(r.begin)];
  }
  const Bytes sparse_bytes =
      static_cast<Bytes>(desc_words * kWord) +
      static_cast<Bytes>(range_nnz) * (sizeof(Index) + sizeof(Value));

  bool go_sparse = sparse_bytes < reply.dense_equivalent_bytes;
  if (go_sparse && machine != nullptr)
    go_sparse = sparse_exchange_pays_off(
        *machine, reply.dense_equivalent_bytes, sparse_bytes,
        2 * static_cast<std::uint64_t>(ranges.size()));

  if (!go_sparse) {
    // Dense fallback: a one-word descriptor plus the whole packed block as
    // a single subview handle — no worse than the dense broadcast path
    // beyond the fixed metadata.
    std::vector<std::byte> desc;
    append_u64(desc, 0);
    reply.messages.push_back(Payload::wrap(std::move(desc)));
    reply.messages.push_back(packed_block.subview(0, packed_block.size()));
    return reply;
  }

  const BlockLayout layout = block_layout(block.ncols(), block.nnz());
  std::vector<std::byte> desc;
  desc.reserve(desc_words * kWord);
  append_u64(desc, 1);
  append_u64(desc, static_cast<std::uint64_t>(block.nrows()));
  append_u64(desc, static_cast<std::uint64_t>(block.ncols()));
  append_u64(desc, ranges.size());
  for (const ColRange& r : ranges) {
    append_u64(desc, static_cast<std::uint64_t>(r.begin));
    append_u64(desc, static_cast<std::uint64_t>(r.end));
  }
  static_assert(std::is_trivially_copyable_v<Index>);
  for (const ColRange& r : ranges) {
    const auto* p = reinterpret_cast<const std::byte*>(
        colptr.data() + static_cast<std::size_t>(r.begin));
    desc.insert(desc.end(), p,
                p + (static_cast<std::size_t>(r.end - r.begin) + 1) * kWord);
  }
  reply.messages.reserve(1 + 2 * ranges.size());
  reply.messages.push_back(Payload::wrap(std::move(desc)));
  for (const ColRange& r : ranges) {
    const auto lo =
        static_cast<std::size_t>(colptr[static_cast<std::size_t>(r.begin)]);
    const auto hi =
        static_cast<std::size_t>(colptr[static_cast<std::size_t>(r.end)]);
    reply.messages.push_back(packed_block.subview(
        layout.rowids + lo * sizeof(Index), (hi - lo) * sizeof(Index)));
    reply.messages.push_back(packed_block.subview(
        layout.vals + lo * sizeof(Value), (hi - lo) * sizeof(Value)));
  }
  return reply;
}

CscView assemble_sparse_block(std::span<const Payload> messages) {
  CASP_CHECK_MSG(!messages.empty(), "assemble_sparse_block: empty reply");
  const Payload& desc = messages[0];
  CASP_CHECK_MSG(desc.size() >= kWord && desc.size() % kWord == 0,
                 "assemble_sparse_block: malformed descriptor");
  const std::byte* base = desc.data();
  const std::uint64_t kind = read_u64(base, 0);
  if (kind == 0) {
    CASP_CHECK_MSG(messages.size() == 2,
                   "assemble_sparse_block: dense reply needs the block");
    return unpack_csc_view(messages[1]);
  }
  CASP_CHECK_MSG(kind == 1, "assemble_sparse_block: unknown reply kind");
  CASP_CHECK_MSG(desc.size() >= 4 * kWord,
                 "assemble_sparse_block: descriptor too short");
  const auto nrows = static_cast<Index>(read_u64(base, 1));
  const auto ncols = static_cast<Index>(read_u64(base, 2));
  const std::uint64_t nranges = read_u64(base, 3);
  CASP_CHECK_MSG(messages.size() == 1 + 2 * nranges,
                 "assemble_sparse_block: range message count mismatch");

  std::vector<ColRange> ranges(nranges);
  std::size_t w = 4;
  for (auto& r : ranges) {
    r.begin = static_cast<Index>(read_u64(base, w++));
    r.end = static_cast<Index>(read_u64(base, w++));
  }
  std::vector<std::size_t> slice_word(nranges);
  Index total_nnz = 0;
  for (std::size_t i = 0; i < nranges; ++i) {
    slice_word[i] = w;
    const auto width =
        static_cast<std::size_t>(ranges[i].end - ranges[i].begin) + 1;
    CASP_CHECK_MSG(desc.size() >= (w + width) * kWord,
                   "assemble_sparse_block: truncated colptr slices");
    total_nnz += static_cast<Index>(read_u64(base, w + width - 1)) -
                 static_cast<Index>(read_u64(base, w));
    w += width;
  }
  CASP_CHECK_MSG(desc.size() == w * kWord,
                 "assemble_sparse_block: trailing descriptor bytes");

  // Splice the shipped ranges into one fresh full-width packed block:
  // colptr rebased to the shipped nnz (unrequested columns empty), the
  // rowids/vals bytes copied verbatim so every requested column is
  // bit-identical to the sender's.
  const BlockLayout layout = block_layout(ncols, total_nnz);
  std::vector<std::byte> buf(layout.vals +
                             static_cast<std::size_t>(total_nnz) *
                                 sizeof(Value));
  const Index header[3] = {nrows, ncols, total_nnz};
  std::memcpy(buf.data(), header, sizeof(header));
  static_assert(std::is_trivially_copyable_v<Index>);
  auto* out_colptr = reinterpret_cast<Index*>(buf.data() + layout.colptr);
  out_colptr[0] = 0;
  Index running = 0;
  Index col = 0;
  for (std::size_t i = 0; i < nranges; ++i) {
    const ColRange& r = ranges[i];
    CASP_CHECK_MSG(r.begin >= col && r.begin < r.end && r.end <= ncols,
                   "assemble_sparse_block: ranges not ascending half-open");
    for (; col < r.begin; ++col)
      out_colptr[static_cast<std::size_t>(col) + 1] = running;
    const Index start = running;
    const std::size_t sw = slice_word[i];
    const auto first = static_cast<Index>(read_u64(base, sw));
    for (Index c = r.begin; c < r.end; ++c) {
      const auto off = static_cast<std::size_t>(c - r.begin);
      const auto lo = static_cast<Index>(read_u64(base, sw + off));
      const auto hi = static_cast<Index>(read_u64(base, sw + off + 1));
      CASP_CHECK_MSG(hi >= lo && lo >= first,
                     "assemble_sparse_block: corrupt colptr slice");
      running += hi - lo;
      out_colptr[static_cast<std::size_t>(c) + 1] = running;
    }
    col = r.end;
    const auto nnz_i = static_cast<std::size_t>(running - start);
    const Payload& rowids = messages[1 + 2 * i];
    const Payload& vals = messages[2 + 2 * i];
    CASP_CHECK_MSG(rowids.size() == nnz_i * sizeof(Index) &&
                       vals.size() == nnz_i * sizeof(Value),
                   "assemble_sparse_block: range payload size mismatch");
    if (nnz_i != 0) {
      std::memcpy(buf.data() + layout.rowids +
                      static_cast<std::size_t>(start) * sizeof(Index),
                  rowids.data(), rowids.size());
      std::memcpy(buf.data() + layout.vals +
                      static_cast<std::size_t>(start) * sizeof(Value),
                  vals.data(), vals.size());
    }
  }
  for (; col < ncols; ++col)
    out_colptr[static_cast<std::size_t>(col) + 1] = running;
  CASP_CHECK(running == total_nnz);
  return unpack_csc_view(Payload::wrap(std::move(buf)));
}

SparseAExchange::SparseAExchange(vmpi::Comm& row_comm, const CscMat& local_a,
                                 const Machine* machine)
    : row_comm_(row_comm), local_a_(local_a), machine_(machine) {}

void SparseAExchange::post(int stage, const CscConstRef& b_view) {
  Payload request;
  if (row_comm_.rank() != stage) {
    const std::vector<Index> support = row_support(b_view);
    const std::vector<ColRange> ranges =
        coalesce_cols(support, kSparseCoalesceGap);
    request = pack_need_request(ranges);
  }
  pending_ = row_comm_.isparse_exchange(stage, std::move(request));
  posted_stage_ = stage;
}

CscView SparseAExchange::wait(int stage) {
  CASP_CHECK_MSG(stage == posted_stage_,
                 "SparseAExchange: wait(" << stage << ") but stage "
                                          << posted_stage_ << " is posted");
  auto serve = [this](int /*src*/, Payload req) {
    return make_sparse_reply(packed_, req, machine_);
  };
  if (row_comm_.rank() == stage) {
    if (packed_.size() == 0) packed_ = pack_csc_payload(local_a_);
    (void)row_comm_.sparse_wait(pending_, serve);
    return unpack_csc_view(packed_);
  }
  std::vector<Payload> messages = row_comm_.sparse_wait(pending_, serve);
  return assemble_sparse_block(messages);
}

}  // namespace casp
