// Sparsity-aware A-block exchange for the SUMMA stage loop (SpComm3D
// direction, Abubaker & Hoefler).
//
// In stage s, rank (i,j) multiplies A_is x B_sj, and the only columns of
// A_is the Gustavson kernel dereferences are the *row support* of B_sj —
// on skewed inputs a small fraction of the block. Instead of broadcasting
// the whole CSC block, each receiver sends the stage root a need-list of
// coalesced column ranges (metadata round), and the root replies with only
// those ranges (data round), packed as Payload::subviews of its
// already-packed block so no block bytes are ever copied on the sender.
// The receiver splices the ranges back into a full-width CscView-compatible
// block, so the kernels are untouched and the result is bit-identical to
// the dense path. B stays dense: its dead weight is *rows* of B_sj (those
// hitting empty A columns), which is not expressible as contiguous
// subviews of a CSC payload without sender-side copies.
//
// Wire protocol (all fields 8-byte words, so every subview stays 8-aligned):
//   request  = [u64 nranges] [i64 begin, i64 end]*nranges      (half-open)
//   reply    = descriptor message + range messages:
//     kind 0 (dense fallback): [u64 0], then the full packed block (one
//       subview handle of the whole payload — still zero-copy).
//     kind 1 (sparse):  [u64 1][i64 nrows][i64 ncols][u64 nranges]
//       [i64 begin, i64 end]*nranges
//       [colptr[begin..end] slices, (end-begin+1) words each]
//       then per range: the rowids subview and the vals subview of the
//       packed block.
// The root falls back to kind 0 whenever the sparse reply would ship at
// least as many bytes as the dense block, and additionally (when a Machine
// is supplied) when the cost model says the extra per-range messages cost
// more latency than the saved bandwidth is worth.
#pragma once

#include <span>
#include <vector>

#include "common/payload.hpp"
#include "model/machine.hpp"
#include "sparse/csc_ref.hpp"
#include "sparse/csc_view.hpp"
#include "vmpi/comm.hpp"

namespace casp {

/// Half-open needed-column range [begin, end) of the sender's block.
struct ColRange {
  Index begin = 0;
  Index end = 0;
};

/// Receiver-side gap bridging: ranges separated by at most this many
/// unneeded columns merge into one. Bridging a gap ships its columns as
/// dead weight (their colptr words plus whatever nnz they hold) while
/// splitting costs a fixed ~3 descriptor words and two extra messages, so
/// the break-even gap is small; a large value degenerates scattered
/// supports into one whole-block range and the dense fallback. 2 keeps
/// nearly all of the volume savings while bounding the range count on
/// supports with many single-column holes.
inline constexpr Index kSparseCoalesceGap = 2;

/// Distinct row indices of `b`, ascending: exactly the A columns the
/// stage's local multiply will dereference.
std::vector<Index> row_support(const CscConstRef& b);

/// Coalesce an ascending column list into half-open ranges, bridging gaps
/// of at most `max_gap` columns.
std::vector<ColRange> coalesce_cols(std::span<const Index> cols,
                                    Index max_gap);

/// Request payload for a need-list (see wire protocol above).
Payload pack_need_request(std::span<const ColRange> ranges);
std::vector<ColRange> unpack_need_request(const Payload& request);

/// Root side: build the reply for one peer from the root's packed CSC
/// block. All block bytes are subviews of `packed_block`; only the small
/// descriptor is freshly built. `machine` null = byte-count fallback rule
/// only (the in-process transport has no per-message latency); non-null
/// additionally applies sparse_exchange_pays_off.
vmpi::SparseReply make_sparse_reply(const Payload& packed_block,
                                    const Payload& request,
                                    const Machine* machine = nullptr);

/// Receiver side: reassemble a reply into a full-width block whose
/// requested columns are bit-identical to the sender's. Unrequested
/// columns are empty, which the multiply never observes (it only touches
/// the row support the request covered).
CscView assemble_sparse_block(std::span<const Payload> messages);

/// Stage-loop driver shared by summa2d and symbolic3d: posts the stage's
/// exchange from the received B block's row support and completes it on
/// either side. One exchange in flight at a time (post s, wait s, post
/// s+1, ...), matching the pipeline order of the callers.
class SparseAExchange {
 public:
  /// `local_a` must outlive *this; `machine` (optional, not owned) enables
  /// the latency-aware fallback predicate on root replies.
  SparseAExchange(vmpi::Comm& row_comm, const CscMat& local_a,
                  const Machine* machine = nullptr);

  /// Post the stage-s exchange. `b_view` is the received stage-s B block.
  void post(int stage, const CscConstRef& b_view);
  /// Complete the stage-s exchange: the root serves every peer, then reads
  /// its own packed block; peers reassemble their reply. Returns the
  /// full-width A view for the stage's multiply.
  CscView wait(int stage);

 private:
  vmpi::Comm& row_comm_;
  const CscMat& local_a_;
  const Machine* machine_;
  Payload packed_;  ///< my block, packed once on first root duty
  vmpi::PendingSparse pending_;
  int posted_stage_ = -1;
};

}  // namespace casp
