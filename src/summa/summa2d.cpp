#include "summa/summa2d.hpp"

#include <utility>
#include <vector>

#include "common/error.hpp"
#include "obs/recorder.hpp"
#include "sparse/serialize.hpp"
#include "summa/sparse_comm.hpp"

namespace casp {

namespace {

/// The two in-flight broadcasts of one SUMMA stage.
struct StageBcasts {
  vmpi::PendingBcast a;
  vmpi::PendingBcast b;
};

/// Sparse-comm stage loop: B keeps the dense ibcast schedule, but A ships
/// via the need-list exchange — each stage's request is derived from the
/// row support of the B block received for that stage, so the B wait moves
/// ahead of the A exchange (prepare_stage) while the reply round and the
/// request for s+1 overlap the multiplies around them. Bit-identical to
/// the dense loop: shipped A columns cover exactly the row support the
/// multiply dereferences.
template <typename SR>
CscMat summa2d_sparse(Grid3D& grid, const CscMat& local_a,
                      const CscMat& local_b, const SummaOptions& opts) {
  vmpi::Comm& row_comm = grid.row_comm();
  vmpi::Comm& col_comm = grid.col_comm();
  obs::Recorder& rec = row_comm.recorder();
  obs::ScopedTag layer_tag(rec, obs::ScopedTag::Kind::kLayer, grid.layer());
  const int stages = grid.q();

  std::vector<CscMat> partials;
  partials.reserve(static_cast<std::size_t>(stages));
  std::vector<MemoryCharge> partial_charges;
  partial_charges.reserve(static_cast<std::size_t>(stages));

  SparseAExchange a_exchange(row_comm, local_a);

  auto post_b = [&](int s) {
    obs::PhaseSpan span(rec, steps::kBBcast);
    Payload buf =
        col_comm.rank() == s ? pack_csc_payload(local_b) : Payload{};
    return col_comm.ibcast_payload(s, std::move(buf));
  };
  // Wait the stage's B, then post the A need-list it induces.
  auto prepare_stage = [&](int s, vmpi::PendingBcast& b_pending) {
    CscView b_view;
    {
      obs::PhaseSpan span(rec, steps::kBBcast);
      b_view = unpack_csc_view(col_comm.bcast_wait(b_pending));
    }
    {
      obs::PhaseSpan span(rec, steps::kABcast);
      a_exchange.post(s, b_view);
    }
    return b_view;
  };

  vmpi::PendingBcast b_pending = post_b(0);
  CscView b_view = prepare_stage(0, b_pending);
  for (int s = 0; s < stages; ++s) {
    obs::ScopedTag stage_tag(rec, obs::ScopedTag::Kind::kStage, s);
    if (opts.pipeline && s + 1 < stages) b_pending = post_b(s + 1);
    CscView a_view;
    {
      obs::PhaseSpan span(rec, steps::kABcast);
      a_view = a_exchange.wait(s);
    }
    CASP_CHECK_MSG(a_view.ncols() == b_view.nrows(),
                   "summa2d stage " << s << ": inner dim mismatch "
                                    << a_view.ncols() << " vs "
                                    << b_view.nrows());
    {
      obs::Span span(rec, steps::kLocalMultiply);
      partials.push_back(local_spgemm<SR>(a_view, b_view, opts.local_kind,
                                          opts.threads,
                                          opts.symbolic_col_nnz));
    }
    if (opts.memory != nullptr) {
      partial_charges.emplace_back(
          *opts.memory,
          static_cast<Bytes>(partials.back().nnz()) * kBytesPerNonzero,
          "unmerged stage output");
      rec.sample_memory(*opts.memory, "memory.live_bytes");
    }
    if (s + 1 < stages) {
      if (!opts.pipeline) b_pending = post_b(s + 1);
      b_view = prepare_stage(s + 1, b_pending);
    }
  }

  CscMat merged;
  {
    obs::Span span(rec, steps::kMergeLayer);
    merged =
        merge_matrices<SR>(csc_refs(partials), opts.merge_kind, opts.threads);
  }
  return merged;
}

}  // namespace

template <typename SR>
CscMat summa2d(Grid3D& grid, const CscMat& local_a, const CscMat& local_b,
               const SummaOptions& opts) {
  if (opts.sparse_comm)
    return summa2d_sparse<SR>(grid, local_a, local_b, opts);
  vmpi::Comm& row_comm = grid.row_comm();
  vmpi::Comm& col_comm = grid.col_comm();
  // Split communicators share the world's recorder, so spans opened through
  // either comm land on the same per-rank timeline.
  obs::Recorder& rec = row_comm.recorder();
  obs::ScopedTag layer_tag(rec, obs::ScopedTag::Kind::kLayer, grid.layer());
  const int stages = grid.q();

  std::vector<CscMat> partials;
  partials.reserve(static_cast<std::size_t>(stages));
  std::vector<MemoryCharge> partial_charges;
  partial_charges.reserve(static_cast<std::size_t>(stages));

  // The stage-s owner serializes its block once into a payload; the
  // broadcast forwards the handle, and receivers multiply straight out of
  // the wire buffer (unpack_csc_view) — no per-hop or per-rank copies.
  auto post_stage = [&](int s) {
    StageBcasts pending;
    {
      obs::PhaseSpan span(rec, steps::kABcast);
      Payload buf =
          row_comm.rank() == s ? pack_csc_payload(local_a) : Payload{};
      pending.a = row_comm.ibcast_payload(s, std::move(buf));
    }
    {
      obs::PhaseSpan span(rec, steps::kBBcast);
      Payload buf =
          col_comm.rank() == s ? pack_csc_payload(local_b) : Payload{};
      pending.b = col_comm.ibcast_payload(s, std::move(buf));
    }
    return pending;
  };
  auto wait_stage = [&](StageBcasts& pending) {
    CscView a_view;
    {
      obs::PhaseSpan span(rec, steps::kABcast);
      a_view = unpack_csc_view(row_comm.bcast_wait(pending.a));
    }
    CscView b_view;
    {
      obs::PhaseSpan span(rec, steps::kBBcast);
      b_view = unpack_csc_view(col_comm.bcast_wait(pending.b));
    }
    return std::pair<CscView, CscView>(std::move(a_view), std::move(b_view));
  };

  StageBcasts current = post_stage(0);
  for (int s = 0; s < stages; ++s) {
    obs::ScopedTag stage_tag(rec, obs::ScopedTag::Kind::kStage, s);
    auto [a_view, b_view] = wait_stage(current);
    // Pipelined: stage s+1's broadcasts go into flight before stage s's
    // multiply, overlapping communication with compute. Blocking: post only
    // after the multiply finishes. Either way every stage posts then waits
    // its own broadcasts in SPMD order, so the traffic is identical.
    if (opts.pipeline && s + 1 < stages) current = post_stage(s + 1);
    CASP_CHECK_MSG(a_view.ncols() == b_view.nrows(),
                   "summa2d stage " << s << ": inner dim mismatch "
                                    << a_view.ncols() << " vs "
                                    << b_view.nrows());
    {
      obs::Span span(rec, steps::kLocalMultiply);
      partials.push_back(local_spgemm<SR>(a_view, b_view, opts.local_kind,
                                          opts.threads,
                                          opts.symbolic_col_nnz));
    }
    if (opts.memory != nullptr) {
      // Unmerged per-stage results are exactly the mem(C) term of Eq. 1:
      // they stay live until Merge-Layer.
      partial_charges.emplace_back(
          *opts.memory,
          static_cast<Bytes>(partials.back().nnz()) * kBytesPerNonzero,
          "unmerged stage output");
      rec.sample_memory(*opts.memory, "memory.live_bytes");
    }
    if (!opts.pipeline && s + 1 < stages) current = post_stage(s + 1);
  }

  CscMat merged;
  {
    obs::Span span(rec, steps::kMergeLayer);
    merged =
        merge_matrices<SR>(csc_refs(partials), opts.merge_kind, opts.threads);
  }
  return merged;
}

template CscMat summa2d<PlusTimes>(Grid3D&, const CscMat&, const CscMat&,
                                   const SummaOptions&);
template CscMat summa2d<MinPlus>(Grid3D&, const CscMat&, const CscMat&,
                                 const SummaOptions&);
template CscMat summa2d<MaxMin>(Grid3D&, const CscMat&, const CscMat&,
                                const SummaOptions&);
template CscMat summa2d<OrAnd>(Grid3D&, const CscMat&, const CscMat&,
                               const SummaOptions&);

}  // namespace casp
