#include "summa/summa2d.hpp"

#include <vector>

#include "common/error.hpp"
#include "sparse/serialize.hpp"

namespace casp {

template <typename SR>
CscMat summa2d(Grid3D& grid, const CscMat& local_a, const CscMat& local_b,
               const SummaOptions& opts) {
  vmpi::Comm& row_comm = grid.row_comm();
  vmpi::Comm& col_comm = grid.col_comm();
  const int stages = grid.q();

  std::vector<CscMat> partials;
  partials.reserve(static_cast<std::size_t>(stages));
  std::vector<MemoryCharge> partial_charges;
  partial_charges.reserve(static_cast<std::size_t>(stages));

  for (int s = 0; s < stages; ++s) {
    CscMat a_recv;
    {
      vmpi::ScopedPhase phase(row_comm.traffic(), steps::kABcast);
      ScopedTimer timer(row_comm.times(), steps::kABcast);
      // The stage-s owner in my process row serializes its block; everyone
      // deserializes the broadcast copy (the owner round-trips through the
      // same bytes so all ranks run identical code).
      std::vector<std::byte> buf =
          row_comm.rank() == s ? pack_csc(local_a) : std::vector<std::byte>{};
      buf = row_comm.bcast_bytes(s, std::move(buf));
      a_recv = unpack_csc(buf);
    }
    CscMat b_recv;
    {
      vmpi::ScopedPhase phase(col_comm.traffic(), steps::kBBcast);
      ScopedTimer timer(col_comm.times(), steps::kBBcast);
      std::vector<std::byte> buf =
          col_comm.rank() == s ? pack_csc(local_b) : std::vector<std::byte>{};
      buf = col_comm.bcast_bytes(s, std::move(buf));
      b_recv = unpack_csc(buf);
    }
    CASP_CHECK_MSG(a_recv.ncols() == b_recv.nrows(),
                   "summa2d stage " << s << ": inner dim mismatch "
                                    << a_recv.ncols() << " vs "
                                    << b_recv.nrows());
    {
      ScopedTimer timer(row_comm.times(), steps::kLocalMultiply);
      partials.push_back(local_spgemm<SR>(a_recv, b_recv, opts.local_kind,
                                          opts.threads));
    }
    if (opts.memory != nullptr) {
      // Unmerged per-stage results are exactly the mem(C) term of Eq. 1:
      // they stay live until Merge-Layer.
      partial_charges.emplace_back(
          *opts.memory,
          static_cast<Bytes>(partials.back().nnz()) * kBytesPerNonzero,
          "unmerged stage output");
    }
  }

  CscMat merged;
  {
    ScopedTimer timer(row_comm.times(), steps::kMergeLayer);
    merged = merge_matrices<SR>(partials, opts.merge_kind, opts.threads);
  }
  return merged;
}

template CscMat summa2d<PlusTimes>(Grid3D&, const CscMat&, const CscMat&,
                                   const SummaOptions&);
template CscMat summa2d<MinPlus>(Grid3D&, const CscMat&, const CscMat&,
                                 const SummaOptions&);
template CscMat summa2d<MaxMin>(Grid3D&, const CscMat&, const CscMat&,
                                const SummaOptions&);
template CscMat summa2d<OrAnd>(Grid3D&, const CscMat&, const CscMat&,
                               const SummaOptions&);

}  // namespace casp
