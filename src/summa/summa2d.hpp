// 2D Sparse SUMMA (Algorithm 1), run within one layer of the 3D grid.
//
// Executes q stages; at stage s the owners in grid column s broadcast
// their A block along each process row and the owners in grid row s
// broadcast their B block down each process column. Partial products are
// kept per stage (merging incrementally is asymptotically worse [34]) and
// merged once at the end (Merge-Layer).
#pragma once

#include "grid/grid3d.hpp"
#include "sparse/csc_mat.hpp"
#include "summa/steps.hpp"

namespace casp {

/// Collective over grid.layer_comm(). local_a is this rank's A-style block
/// (rows part i x A-col slice), local_b its B-style block (B-row slice x
/// cols part j) — or any column subset of it (batching). Returns the local
/// block of D = A*B on this layer: rows part i x local_b.ncols(), merged
/// across stages but *not* across layers.
template <typename SR = PlusTimes>
CscMat summa2d(Grid3D& grid, const CscMat& local_a, const CscMat& local_b,
               const SummaOptions& opts = {});

}  // namespace casp
