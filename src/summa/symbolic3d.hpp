// Distributed symbolic step (Algorithm 3).
//
// Runs the same stage loop as SUMMA2D per layer but with LocalSymbolic
// (nonzero counting) instead of the numeric multiply, then AllReduceMax
// over the whole grid to find the most loaded process. Its per-process
// unmerged output count, the available memory M, and the r bytes/nonzero
// constant give the batch count b (Alg. 3 line 12 / Eq. 2). Using the max
// rather than the average makes the choice robust to load imbalance: no
// process can exhaust its memory, at the cost of possibly more batches.
#pragma once

#include <vector>

#include "grid/grid3d.hpp"
#include "sparse/csc_mat.hpp"
#include "summa/steps.hpp"

namespace casp {

struct SymbolicResult {
  /// Batch count needed so the per-batch unmerged output of the most
  /// loaded process fits in its memory share.
  Index batches = 1;
  /// Max over processes of the unmerged output nnz (sum over stages of the
  /// per-stage merged product nnz) for the *whole* multiplication.
  Index max_nnz_c = 0;
  Index max_nnz_a = 0;
  Index max_nnz_b = 0;
  /// Global totals (AllReduce-sum), reported for the experiments.
  Index total_unmerged_nnz = 0;
  Index total_flops = 0;
  /// This process's per-local-output-column unmerged nnz, summed over the
  /// SUMMA stages (so it upper-bounds any single stage's column). Feed it
  /// to SummaOptions::symbolic_col_nnz — sliced per batch with the same
  /// column ranges as the B batch split — so the numeric kernels pre-size
  /// their hash tables. sum(col_nnz) equals the my_unmerged term behind
  /// max_nnz_c.
  std::vector<Index> col_nnz;
};

/// Collective over the whole grid. total_memory is M, the aggregate memory
/// in bytes across all p processes (0 = unlimited -> b = 1). Throws
/// MemoryError when even the inputs do not fit (denominator of Eq. 2
/// non-positive).
SymbolicResult symbolic3d(Grid3D& grid, const CscMat& local_a,
                          const CscMat& local_b, Bytes total_memory,
                          const SummaOptions& opts = {});

}  // namespace casp
