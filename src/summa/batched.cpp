#include "summa/batched.hpp"

#include <cstdint>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/redistribute.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "obs/recorder.hpp"
#include "summa/summa3d.hpp"
#include "vmpi/traffic.hpp"

namespace casp {

// The on-disk layout lives with its reader: ckpt::SummaPieceMeta in
// ckpt/redistribute.hpp carries batch coordinates (same-grid resume) plus
// global piece coordinates (cross-grid redistribution).
using PieceMeta = ckpt::SummaPieceMeta;
static_assert(std::is_trivially_copyable_v<PieceMeta>);

std::string summa_ckpt_job_id(Index rows, Index inner, Index cols,
                              Index global_nnz_a, Index global_nnz_b,
                              const std::string& tag) {
  std::ostringstream id;
  id << "batched_summa3d|" << rows << 'x' << inner << 'x' << cols
     << "|gnnzA=" << global_nnz_a << "|gnnzB=" << global_nnz_b
     << "|tag=" << tag;
  return id.str();
}

template <typename SR>
BatchedResult batched_summa3d(Grid3D& grid, const DistMat3D& a,
                              const DistMat3D& b, Bytes total_memory,
                              const SummaOptions& opts,
                              const BatchCallback& on_batch,
                              bool keep_output) {
  CASP_CHECK_MSG(a.global_cols == b.global_rows,
                 "batched_summa3d: inner dimension mismatch");

  MemoryCharge input_charge;
  if (opts.memory != nullptr)
    input_charge = MemoryCharge(
        *opts.memory,
        static_cast<Bytes>(a.local.nnz() + b.local.nnz()) * kBytesPerNonzero,
        "input matrices");

  BatchedResult result;

  // Line 2, Alg. 4: the symbolic step decides b (unless the experiment
  // pins it to sweep the (l, b) space).
  if (opts.force_batches > 0) {
    result.batches = opts.force_batches;
  } else {
    result.symbolic = symbolic3d(grid, a.local, b.local, total_memory, opts);
    result.batches = result.symbolic.batches;
  }
  result.batches = std::max<Index>(
      1, std::min(result.batches, std::max<Index>(1, b.global_cols)));

  const Index num_batches = result.batches;
  const Index l = grid.layers();
  const Index psize = b.cols.count;  // my B column part width

  obs::Recorder& rec = grid.world().recorder();
  rec.set_counter("batches", num_batches);

  std::vector<CscMat> kept_pieces;
  if (keep_output) kept_pieces.reserve(static_cast<std::size_t>(num_batches));

  // Adaptive re-batch state. eff_batches is the current granularity and bi
  // the next batch at that granularity; when a batch overruns the budget,
  // both double (part_low nesting: batch bi of b == batches 2bi, 2bi+1 of
  // 2b, so completed coarser batches and the refined remainder still tile
  // my layer's column slice in ascending order). Empty blocks past
  // max_batches cannot shrink further, so a failure there is final.
  const bool adaptive = opts.adaptive_rebatch && opts.memory != nullptr;
  const Index max_batches = std::max<Index>(1, b.global_cols);
  Index eff_batches = num_batches;
  Index bi = 0;

  // Batch-boundary checkpointing. Every emitted piece (plus its PieceMeta
  // coordinates) is retained and snapshotted at the save cadence; a
  // relaunched job replays the restored prefix through the callback — the
  // uniform contract whether the consumer streams to disk (the writer
  // re-truncates, so recovered streamed output is byte-identical) or
  // gathers pieces in memory — then continues the loop from the next batch.
  ckpt::Checkpointer* ck = opts.ckpt;
  const bool ckpt_on = ck != nullptr && ck->enabled();
  std::vector<PieceMeta> emitted_meta;
  std::vector<CscMat> emitted_mats;
  std::string ckpt_job;
  const auto save_ckpt = [&]() {
    ckpt::Snapshot snap;
    snap.set_u64("pieces", emitted_meta.size());
    // Grid facts guard the per-rank resume path: rank r of a *different*
    // grid shape holds ranges that do not match rank r's old pieces, so a
    // mismatch routes recovery through redistribute_for_grid instead. The
    // global shape lets that reader rebuild coverage without the inputs.
    snap.set_u64("grid_ranks",
                 static_cast<std::uint64_t>(grid.world().size()));
    snap.set_u64("grid_layers", static_cast<std::uint64_t>(l));
    snap.set_u64("global_rows", static_cast<std::uint64_t>(a.global_rows));
    snap.set_u64("global_cols", static_cast<std::uint64_t>(b.global_cols));
    snap.set_array("piece_meta", emitted_meta);
    for (std::size_t k = 0; k < emitted_mats.size(); ++k)
      snap.set_matrix("piece" + std::to_string(k), emitted_mats[k]);
    ck->save(ckpt::kSummaCkptScope, ckpt_job, std::move(snap));
  };
  if (ckpt_on) {
    // Job identity: deterministic and grid-independent, so a snapshot can
    // resume the run (and, via ckpt_job_tag, the outer-loop iteration) that
    // wrote it even when the relaunch uses a different grid shape. Stale
    // snapshots in the same directory are skipped by load_all.
    ckpt_job = summa_ckpt_job_id(a.global_rows, a.global_cols, b.global_cols,
                                 a.global_nnz, b.global_nnz,
                                 opts.ckpt_job_tag);
    auto loaded = ck->load_all(ckpt::kSummaCkptScope, ckpt_job);
    // A snapshot written by a different grid shape is useless to the
    // per-rank fast-forward (this rank's ranges changed); contribute 0 to
    // the consensus and let the caller's ResumeCache recover the pieces.
    const bool same_grid =
        !loaded.empty() && loaded.front().snap.has("grid_ranks") &&
        loaded.front().snap.u64("grid_ranks") ==
            static_cast<std::uint64_t>(grid.world().size()) &&
        loaded.front().snap.u64("grid_layers") ==
            static_cast<std::uint64_t>(l);
    const std::int64_t mine =
        same_grid ? static_cast<std::int64_t>(loaded.front().snap.u64("pieces"))
                  : 0;
    // Resume consensus: a crash is not a barrier, so ranks may hold
    // snapshots a save apart. Every rank's pieces are a prefix of the same
    // deterministic emission sequence, so the job-wide minimum available
    // progress is a state every rank can reconstruct (ranks that saved
    // further truncate their prefix).
    std::int64_t agreed = 0;
    {
      vmpi::ScopedPhase resume_phase(grid.world().traffic(),
                                     steps::kCkptResume);
      agreed = grid.world().allreduce_min<std::int64_t>(mine);
    }
    if (agreed > 0) {
      const ckpt::Snapshot& snap = loaded.front().snap;
      const std::vector<PieceMeta> metas = snap.array<PieceMeta>("piece_meta");
      CASP_CHECK(static_cast<std::int64_t>(metas.size()) >= agreed);
      for (std::int64_t k = 0; k < agreed; ++k) {
        const PieceMeta& pm = metas[static_cast<std::size_t>(k)];
        obs::ScopedTag replay_tag(rec, obs::ScopedTag::Kind::kBatch,
                                  static_cast<int>(pm.batch_index));
        CscMat piece = snap.matrix("piece" + std::to_string(k));
        BatchInfo info;
        info.batch_index = pm.batch_index;
        info.num_batches = pm.num_batches;
        info.global_nrows = a.global_rows;
        info.global_ncols = b.global_cols;
        info.global_rows = {pm.row_start, pm.row_count};
        info.global_cols = {pm.col_start, pm.col_count};
        CASP_CHECK(piece.ncols() == info.global_cols.count);
        emitted_meta.push_back(pm);
        emitted_mats.push_back(piece);
        if (keep_output) kept_pieces.push_back(piece);
        if (on_batch) on_batch(std::move(piece), info);
      }
      const PieceMeta& last = emitted_meta.back();
      bi = last.batch_index + 1;
      eff_batches = last.num_batches;
      result.rebatch_events = last.rebatch_events;
      if (result.rebatch_events > 0)
        rec.add_counter("summa.rebatch_events", result.rebatch_events);
      ck->note_resume(loaded.front().generation);
    }
  }

  // Degraded-grid resume: a shared ResumeCache built from another grid's
  // snapshots. Armed only when its global shape matches this product (the
  // cache is job-keyed upstream; the shape check makes a mis-wired cache
  // inert instead of fatal).
  const ckpt::ResumeCache* resume = opts.resume;
  if (resume != nullptr &&
      (resume->empty() || resume->global_rows() != a.global_rows ||
       resume->global_cols() != b.global_cols))
    resume = nullptr;

  // Cooperative pause (regrow support): counts freshly computed batches —
  // cache-recovered ones are free and don't consume the allowance. Every
  // input to the decision is SPMD-consistent, so all ranks pause together.
  const Index pause_after = opts.pause_after_batches;
  Index fresh_batches = 0;

  while (bi < eff_batches) {
    obs::ScopedTag batch_tag(rec, obs::ScopedTag::Kind::kBatch,
                             static_cast<int>(bi));
    const Index nblocks = l * eff_batches;
    const Index my_block =
        bi + static_cast<Index>(grid.layer()) * eff_batches;
    BatchInfo info;
    info.batch_index = bi;
    info.num_batches = eff_batches;
    info.global_nrows = a.global_rows;
    info.global_ncols = b.global_cols;
    info.global_rows = a.rows;
    info.global_cols = {b.cols.start + part_low(my_block, nblocks, psize),
                        part_size(my_block, nblocks, psize)};
    const auto emit = [&](CscMat piece) {
      CASP_CHECK(piece.ncols() == info.global_cols.count);
      if (keep_output) kept_pieces.push_back(piece);
      if (ckpt_on) {
        emitted_meta.push_back(PieceMeta{
            bi, eff_batches, result.rebatch_events, info.global_rows.start,
            info.global_rows.count, info.global_cols.start,
            info.global_cols.count});
        emitted_mats.push_back(piece);
      }
      if (on_batch) on_batch(std::move(piece), info);
      ++bi;
      if (ckpt_on && ck->due(emitted_meta.size())) save_ckpt();
    };

    if (resume != nullptr) {
      // Per-batch coverage consensus. Verdicts could skew across ranks when
      // the old grid's ranks saved a generation apart (my columns recovered,
      // a peer's not), and summa3d is collective — every rank must take the
      // same branch, so the job-wide minimum decides.
      const int mine_covered =
          resume->cols_covered(info.global_cols.start,
                               info.global_cols.start +
                                   info.global_cols.count)
              ? 1
              : 0;
      int all_covered = 0;
      {
        vmpi::ScopedPhase resume_phase(grid.world().traffic(),
                                       steps::kCkptResume);
        all_covered = grid.world().allreduce_min<int>(mine_covered);
      }
      if (all_covered != 0) {
        // Every value is copied from the saved pieces, never recomputed —
        // the redistributed batch is bit-exact regardless of grid shape.
        rec.add_counter("summa.cached_batches", 1);
        emit(resume->extract(a.rows.start, a.rows.start + a.rows.count,
                             info.global_cols.start,
                             info.global_cols.start +
                                 info.global_cols.count));
        continue;
      }
    }

    // Line 4, Alg. 4 + Fig. 1(i): batch bi = blocks {bi + m*b : m < l} of
    // the (l*b)-way block-cyclic column split of my local B part.
    std::vector<std::pair<Index, Index>> ranges(static_cast<std::size_t>(l));
    std::vector<Index> splits(static_cast<std::size_t>(l) + 1, 0);
    for (Index m = 0; m < l; ++m) {
      const Index t = bi + m * eff_batches;
      ranges[static_cast<std::size_t>(m)] = {part_low(t, nblocks, psize),
                                             part_low(t + 1, nblocks, psize)};
      splits[static_cast<std::size_t>(m) + 1] =
          splits[static_cast<std::size_t>(m)] +
          (ranges[static_cast<std::size_t>(m)].second -
           ranges[static_cast<std::size_t>(m)].first);
    }
    if (adaptive) opts.memory->begin_probe();
    CscMat local_b_batch = b.local.select_col_ranges(ranges);
    MemoryCharge batch_charge;
    if (opts.memory != nullptr)
      batch_charge = MemoryCharge(
          *opts.memory,
          static_cast<Bytes>(local_b_batch.nnz()) * kBytesPerNonzero,
          "B batch slice");

    // The symbolic per-column counts index my full local B part; the
    // batch's hint slice is the same range concatenation as its column
    // selection above, so hint j lines up with batch output column j.
    SummaOptions batch_opts = opts;
    std::vector<Index> batch_hints;
    const std::vector<Index>& sym_cols = result.symbolic.col_nnz;
    if (!sym_cols.empty() &&
        static_cast<Index>(sym_cols.size()) == psize) {
      batch_hints.reserve(static_cast<std::size_t>(local_b_batch.ncols()));
      for (const auto& [lo, hi] : ranges)
        batch_hints.insert(batch_hints.end(),
                           sym_cols.begin() + static_cast<std::ptrdiff_t>(lo),
                           sym_cols.begin() + static_cast<std::ptrdiff_t>(hi));
      batch_opts.symbolic_col_nnz = batch_hints;
    }

    // Line 6, Alg. 4: one SUMMA3D per batch, with the batch's block
    // boundaries as the fiber split points. My merged piece is block
    // (bi + layer*b), a contiguous global column range.
    CscMat c_piece =
        summa3d<SR>(grid, a.local, local_b_batch, batch_opts, splits);
    if (opts.memory != nullptr)
      rec.sample_memory(*opts.memory, "memory.live_bytes");

    if (adaptive) {
      // Batch-boundary consensus: inside the probe window no rank throws,
      // so every rank reaches this allreduce; the job-wide max of the
      // overrun flags is the SPMD-consistent verdict every rank acts on.
      const int my_overrun = opts.memory->end_probe() ? 1 : 0;
      int any_overrun = 0;
      {
        vmpi::ScopedPhase consensus_phase(grid.world().traffic(),
                                          steps::kRebatchConsensus);
        any_overrun = grid.world().allreduce_max<int>(my_overrun);
      }
      if (any_overrun != 0) {
        // Release the failed batch's partial state, then refine: the
        // remaining batches bi..eff-1 become 2bi..2eff-1 at the doubled
        // granularity. When even single-column blocks overrun, splitting
        // cannot help — give up with the classified budget error.
        c_piece = CscMat();
        local_b_batch = CscMat();
        batch_charge.reset();
        if (eff_batches >= max_batches) {
          // Single-column blocks still overrun: no granularity can fit.
          // eff_batches is SPMD-consistent, so every rank throws here
          // together; vmpi::run classifies this as "memory_budget".
          throw MemoryError(
              "adaptive re-batching exhausted: batch overruns the memory "
              "budget even at one column per block (" +
              std::to_string(eff_batches) + " batches)");
        }
        ++result.rebatch_events;
        rec.add_counter("summa.rebatch_events", 1);
        bi *= 2;
        eff_batches *= 2;
        continue;
      }
    }

    emit(std::move(c_piece));
    if (pause_after > 0 && ++fresh_batches >= pause_after &&
        bi < eff_batches) {
      // Park at the boundary: a forced save makes the pause durable even
      // off the regular cadence, so the resumed attempt (possibly on a
      // different grid via redistribute_for_grid) loses nothing.
      if (ckpt_on) save_ckpt();
      result.paused = true;
      break;
    }
  }
  result.final_batches = eff_batches;
  rec.set_counter("summa.final_batches", eff_batches);

  if (keep_output && !result.paused) {
    // Line 7, Alg. 4: batch pieces are blocks layer*b .. layer*b + b - 1 in
    // ascending global order, so plain concatenation restores the A-style
    // layer slice of C exactly (part_low nesting: see common/math.hpp).
    result.c.global_rows = a.global_rows;
    result.c.global_cols = b.global_cols;
    result.c.rows = a.rows;
    const Index k = grid.layer();
    result.c.cols = {b.cols.start + part_low(k, l, psize),
                     part_size(k, l, psize)};
    result.c.local = CscMat::concat_cols(kept_pieces);
    CASP_CHECK(result.c.local.ncols() == result.c.cols.count);
    if (opts.memory != nullptr) {
      // The kept output is a deliberate *extra* cost on top of the batched
      // working set; charge it transiently to surface budget violations.
      MemoryCharge output_charge(
          *opts.memory,
          static_cast<Bytes>(result.c.local.nnz()) * kBytesPerNonzero,
          "concatenated output");
    }
  }
  return result;
}

namespace {
/// Vertical concatenation of row-batch pieces (ascending, disjoint rows).
CscMat concat_rows(const std::vector<CscMat>& pieces, Index total_rows) {
  CASP_CHECK(!pieces.empty());
  const Index ncols = pieces.front().ncols();
  Index nnz = 0;
  for (const CscMat& m : pieces) {
    CASP_CHECK(m.ncols() == ncols);
    nnz += m.nnz();
  }
  TripleMat triples(total_rows, ncols);
  triples.reserve(nnz);
  Index row_base = 0;
  for (const CscMat& m : pieces) {
    for (Index j = 0; j < m.ncols(); ++j) {
      const auto rows = m.col_rowids(j);
      const auto vals = m.col_vals(j);
      for (std::size_t k = 0; k < rows.size(); ++k)
        triples.push_back(rows[k] + row_base, j, vals[k]);
    }
    row_base += m.nrows();
  }
  CASP_CHECK(row_base == total_rows);
  return CscMat::from_triples(std::move(triples));
}
}  // namespace

template <typename SR>
BatchedResult batched_summa3d_rowwise(Grid3D& grid, const DistMat3D& a,
                                      const DistMat3D& b, Bytes total_memory,
                                      const SummaOptions& opts,
                                      const BatchCallback& on_batch,
                                      bool keep_output) {
  CASP_CHECK_MSG(a.global_cols == b.global_rows,
                 "batched_summa3d_rowwise: inner dimension mismatch");

  BatchedResult result;
  if (opts.force_batches > 0) {
    result.batches = opts.force_batches;
  } else {
    // Eq. 2 is symmetric in how the output is sliced: the per-batch
    // unmerged output shrinks ~1/b whether C is cut by rows or columns.
    result.symbolic = symbolic3d(grid, a.local, b.local, total_memory, opts);
    result.batches = result.symbolic.batches;
  }
  result.batches = std::max<Index>(
      1, std::min(result.batches, std::max<Index>(1, a.global_rows)));
  const Index num_batches = result.batches;

  obs::Recorder& rec = grid.world().recorder();
  rec.set_counter("batches", num_batches);

  std::vector<CscMat> kept_pieces;
  if (keep_output) kept_pieces.reserve(static_cast<std::size_t>(num_batches));

  const Index my_rows = a.rows.count;
  const LocalRange out_cols = a_style_col_range(grid, b.global_cols);
  for (Index bi = 0; bi < num_batches; ++bi) {
    obs::ScopedTag batch_tag(rec, obs::ScopedTag::Kind::kBatch,
                             static_cast<int>(bi));
    const Index lo = part_low(bi, num_batches, my_rows);
    const Index hi = part_low(bi + 1, num_batches, my_rows);
    CscMat a_batch = a.local.slice_rows(lo, hi);
    MemoryCharge batch_charge;
    if (opts.memory != nullptr)
      batch_charge = MemoryCharge(
          *opts.memory, static_cast<Bytes>(a_batch.nnz()) * kBytesPerNonzero,
          "A batch slice");

    // Row batches keep B (and hence the output column set) intact, and a
    // row subset can only shrink each column, so the full-run symbolic
    // counts remain valid upper bounds as-is.
    SummaOptions batch_opts = opts;
    if (!result.symbolic.col_nnz.empty() &&
        static_cast<Index>(result.symbolic.col_nnz.size()) == b.local.ncols())
      batch_opts.symbolic_col_nnz = result.symbolic.col_nnz;

    CscMat c_piece = summa3d<SR>(grid, a_batch, b.local, batch_opts);

    BatchInfo info;
    info.batch_index = bi;
    info.num_batches = num_batches;
    info.global_nrows = a.global_rows;
    info.global_ncols = b.global_cols;
    info.global_rows = {a.rows.start + lo, hi - lo};
    info.global_cols = out_cols;
    CASP_CHECK(c_piece.nrows() == info.global_rows.count);
    CASP_CHECK(c_piece.ncols() == info.global_cols.count);

    if (keep_output) kept_pieces.push_back(c_piece);
    if (on_batch) on_batch(std::move(c_piece), info);
  }

  if (keep_output) {
    result.c.global_rows = a.global_rows;
    result.c.global_cols = b.global_cols;
    result.c.rows = a.rows;
    result.c.cols = out_cols;
    result.c.local = concat_rows(kept_pieces, my_rows);
  }
  result.final_batches = num_batches;
  return result;
}

template BatchedResult batched_summa3d_rowwise<PlusTimes>(
    Grid3D&, const DistMat3D&, const DistMat3D&, Bytes, const SummaOptions&,
    const BatchCallback&, bool);
template BatchedResult batched_summa3d_rowwise<MinPlus>(
    Grid3D&, const DistMat3D&, const DistMat3D&, Bytes, const SummaOptions&,
    const BatchCallback&, bool);
template BatchedResult batched_summa3d_rowwise<MaxMin>(
    Grid3D&, const DistMat3D&, const DistMat3D&, Bytes, const SummaOptions&,
    const BatchCallback&, bool);
template BatchedResult batched_summa3d_rowwise<OrAnd>(
    Grid3D&, const DistMat3D&, const DistMat3D&, Bytes, const SummaOptions&,
    const BatchCallback&, bool);

template BatchedResult batched_summa3d<PlusTimes>(Grid3D&, const DistMat3D&,
                                                  const DistMat3D&, Bytes,
                                                  const SummaOptions&,
                                                  const BatchCallback&, bool);
template BatchedResult batched_summa3d<MinPlus>(Grid3D&, const DistMat3D&,
                                                const DistMat3D&, Bytes,
                                                const SummaOptions&,
                                                const BatchCallback&, bool);
template BatchedResult batched_summa3d<MaxMin>(Grid3D&, const DistMat3D&,
                                               const DistMat3D&, Bytes,
                                               const SummaOptions&,
                                               const BatchCallback&, bool);
template BatchedResult batched_summa3d<OrAnd>(Grid3D&, const DistMat3D&,
                                              const DistMat3D&, Bytes,
                                              const SummaOptions&,
                                              const BatchCallback&, bool);

}  // namespace casp
