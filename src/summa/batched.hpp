// BatchedSUMMA3D (Algorithm 4) — the paper's primary contribution.
//
// When the unmerged output would not fit in memory, B (and hence C) is
// processed in b column batches. The batch count comes from the symbolic
// step; the batch columns are chosen *block-cyclically* with l blocks per
// batch (Fig. 1(i)) so that after AllToAll-Fiber every layer merges an
// equal share — a plain block split would leave Merge-Fiber imbalanced.
// Each finished batch is handed to the application through a callback
// (prune it, write it to disk, feed it to a matching pass, ...) and can be
// discarded; keeping the concatenated C is optional and only sensible when
// it fits.
//
// Eq. 2 picks b from *estimates*; when a batch still overruns the enforced
// budget (opts.memory), the adaptive re-batch protocol recovers instead of
// aborting: the batch runs inside a MemoryTracker probe window, ranks
// allreduce an overrun flag at the batch boundary, and on consensus the
// failed batch's partial state is released and the remaining work re-runs
// at double the batch count. part_low's nesting property (block t of l*b
// == blocks 2t, 2t+1 of 2*l*b) makes the recovered output bit-identical
// to the unconstrained run no matter where splits happen.
#pragma once

#include <functional>

#include "grid/dist.hpp"
#include "grid/grid3d.hpp"
#include "summa/symbolic3d.hpp"

namespace casp {

/// Where one rank's piece of a finished batch lives globally.
/// Under adaptive re-batching both fields describe the *effective*
/// granularity at emission time: indices stay unique and strictly
/// ascending across splits (a failed batch bi at granularity g re-emerges
/// as batches 2*bi, 2*bi+1 at granularity 2g).
struct BatchInfo {
  Index batch_index = 0;
  Index num_batches = 1;
  /// Full dimensions of the product C.
  Index global_nrows = 0;
  Index global_ncols = 0;
  /// Global rows covered by the local piece (same for all batches).
  LocalRange global_rows;
  /// Global columns covered by the local piece: contiguous, because a
  /// rank's share of batch i is exactly block (i + layer*b) of the
  /// (l*b)-way block-cyclic split of its B column part.
  LocalRange global_cols;
};

/// Called on every rank once per batch with that rank's merged, sorted
/// piece of C[batch]. The piece may be moved from.
using BatchCallback = std::function<void(CscMat&& local_c, const BatchInfo&)>;

struct BatchedResult {
  /// Concatenated output (A-style distributed); empty if keep_output=false.
  DistMat3D c;
  /// What the symbolic step measured/decided.
  SymbolicResult symbolic;
  /// Initial batch count (Eq. 2's answer, or force_batches).
  Index batches = 1;
  /// Effective batch count the run finished at — larger than `batches`
  /// when adaptive re-batching had to split (each split doubles it).
  Index final_batches = 1;
  /// Number of overrun-consensus events that forced a split. Mirrored in
  /// the run report as the `summa.rebatch_events` counter.
  Index rebatch_events = 0;
  /// True when SummaOptions::pause_after_batches stopped the run at a batch
  /// boundary with batches still outstanding. A forced checkpoint holds all
  /// emitted progress; `c` is left empty. Re-running the job against the
  /// same checkpoint directory fast-forwards past the emitted prefix.
  bool paused = false;
};

/// The checkpoint job identity batched_summa3d stamps into its snapshots
/// (ckpt scope "summa", see ckpt/redistribute.hpp). Built from global facts
/// only — dimensions, *global* nonzero counts, and the caller's tag — never
/// from the grid shape or local partitions, so a job relaunched on a shrunk
/// survivor grid still matches the snapshots the full grid wrote. The
/// service's degraded-resume path rebuilds the id from the replicated
/// inputs to locate a job's checkpoints without its DistMat3D views.
std::string summa_ckpt_job_id(Index rows, Index inner, Index cols,
                              Index global_nnz_a, Index global_nnz_b,
                              const std::string& tag);

/// Collective over the whole grid. `a` must be A-style distributed and `b`
/// B-style distributed (see grid/dist.hpp); inner dimensions must agree.
/// total_memory: aggregate byte budget M across all ranks (0 = unlimited).
/// When opts.memory is set, per-rank allocations are enforced against it.
template <typename SR = PlusTimes>
BatchedResult batched_summa3d(Grid3D& grid, const DistMat3D& a,
                              const DistMat3D& b, Bytes total_memory,
                              const SummaOptions& opts = {},
                              const BatchCallback& on_batch = nullptr,
                              bool keep_output = true);

/// Row-wise batching variant (Sec. IV-B's remark): when nnz(A) >> nnz(B),
/// column batching re-broadcasts the expensive A once per batch; batching
/// C *by rows* slices A instead, so B is the operand re-communicated.
/// A batch computes a contiguous block of C's rows (no block-cyclic
/// interleaving needed — the fiber exchange splits columns, which row
/// batching leaves untouched). Each callback piece covers
/// (row block of this batch within my row part) x (A-style column range).
template <typename SR = PlusTimes>
BatchedResult batched_summa3d_rowwise(Grid3D& grid, const DistMat3D& a,
                                      const DistMat3D& b, Bytes total_memory,
                                      const SummaOptions& opts = {},
                                      const BatchCallback& on_batch = nullptr,
                                      bool keep_output = true);

}  // namespace casp
