#include "sparse/mm_io.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace casp {

namespace {
std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}
}  // namespace

TripleMat read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line))
    throw InvalidArgument("matrix market: empty input");

  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket")
    throw InvalidArgument("matrix market: missing %%MatrixMarket banner");
  object = lower(object);
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  if (object != "matrix" || format != "coordinate")
    throw InvalidArgument("matrix market: only 'matrix coordinate' supported");
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && !pattern)
    throw InvalidArgument("matrix market: unsupported field '" + field + "'");
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general")
    throw InvalidArgument("matrix market: unsupported symmetry '" + symmetry +
                          "'");

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  Index nrows = 0, ncols = 0, nnz = 0;
  {
    std::istringstream sizes(line);
    if (!(sizes >> nrows >> ncols >> nnz))
      throw InvalidArgument("matrix market: bad size line");
  }

  TripleMat mat(nrows, ncols);
  mat.reserve(symmetric ? 2 * nnz : nnz);
  for (Index k = 0; k < nnz; ++k) {
    if (!std::getline(in, line))
      throw InvalidArgument("matrix market: truncated entry list");
    std::istringstream entry(line);
    Index r = 0, c = 0;
    Value v = 1.0;
    if (!(entry >> r >> c))
      throw InvalidArgument("matrix market: bad entry line");
    if (!pattern && !(entry >> v))
      throw InvalidArgument("matrix market: missing value");
    --r;
    --c;
    CASP_CHECK_MSG(r >= 0 && r < nrows && c >= 0 && c < ncols,
                   "matrix market: entry out of bounds");
    mat.push_back(r, c, v);
    if (symmetric && r != c) mat.push_back(c, r, v);
  }
  return mat;
}

TripleMat read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidArgument("cannot open matrix market file: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const TripleMat& mat) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << mat.nrows() << " " << mat.ncols() << " " << mat.nnz() << "\n";
  out.precision(17);
  for (const Triple& t : mat.entries())
    out << (t.row + 1) << " " << (t.col + 1) << " " << t.val << "\n";
}

void write_matrix_market_file(const std::string& path, const TripleMat& mat) {
  std::ofstream out(path);
  if (!out) throw InvalidArgument("cannot open file for writing: " + path);
  write_matrix_market(out, mat);
}

}  // namespace casp
