// Coordinate (COO / "triples") sparse matrix.
//
// Triples are the interchange format: generators emit them, Matrix Market
// I/O reads them, distributed scatter/gather ships them, and tests
// canonicalize them for equality checks. Compute kernels use CscMat.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace casp {

struct Triple {
  Index row;
  Index col;
  Value val;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.row == b.row && a.col == b.col && a.val == b.val;
  }
};

class TripleMat {
 public:
  TripleMat() : nrows_(0), ncols_(0) {}
  TripleMat(Index nrows, Index ncols) : nrows_(nrows), ncols_(ncols) {}
  TripleMat(Index nrows, Index ncols, std::vector<Triple> entries);

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  Index nnz() const { return static_cast<Index>(entries_.size()); }
  bool empty() const { return entries_.empty(); }

  const std::vector<Triple>& entries() const { return entries_; }
  std::vector<Triple>& entries() { return entries_; }

  void push_back(Index row, Index col, Value val) {
    entries_.push_back({row, col, val});
  }
  void reserve(Index n) { entries_.reserve(static_cast<std::size_t>(n)); }

  /// Sort by (col, row) — the order CSC construction expects.
  void sort();

  /// Sort and sum duplicate (row, col) entries; drops explicit zeros if
  /// `drop_zeros`. After this the matrix is in canonical form and two
  /// mathematically equal matrices compare equal with operator==.
  void canonicalize(bool drop_zeros = false);

  /// True if sorted by (col, row) with no duplicate coordinates.
  bool is_canonical() const;

  /// Validates all coordinates are within [0, nrows) x [0, ncols).
  void check_bounds() const;

  friend bool operator==(const TripleMat& a, const TripleMat& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ &&
           a.entries_ == b.entries_;
  }

 private:
  Index nrows_;
  Index ncols_;
  std::vector<Triple> entries_;
};

/// Max absolute elementwise difference between two canonical matrices with
/// identical sparsity structure; infinity if structures differ.
double max_abs_diff(const TripleMat& a, const TripleMat& b);

}  // namespace casp
