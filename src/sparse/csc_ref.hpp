// CscConstRef — the one non-owning matrix-argument type the kernels take.
//
// The local kernels (SpGEMM, merge, symbolic) read matrices through the
// same accessor contract whether the storage is an owned CscMat or a
// CscView borrowing a received payload. Instead of instantiating every
// kernel for both types (2× the template instantiations for an identical
// duck type), each kernel entry point takes CscConstRef: three spans plus
// the shape, implicitly convertible from either source. A ref borrows —
// the caller keeps the CscMat/CscView (and, for views, the payload it
// keeps alive) alive for the ref's lifetime, exactly like std::string_view.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "sparse/csc_mat.hpp"
#include "sparse/csc_view.hpp"

namespace casp {

class CscConstRef {
 public:
  CscConstRef() = default;

  // Implicit by design: kernel call sites pass CscMat/CscView unchanged.
  CscConstRef(const CscMat& m)
      : nrows_(m.nrows()),
        ncols_(m.ncols()),
        colptr_(m.colptr()),
        rowids_(m.rowids()),
        vals_(m.vals()) {}

  CscConstRef(const CscView& v)
      : nrows_(v.nrows()),
        ncols_(v.ncols()),
        colptr_(v.colptr()),
        rowids_(v.rowids()),
        vals_(v.vals()) {}

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  Index nnz() const {
    return colptr_.empty() ? 0 : colptr_[static_cast<std::size_t>(ncols_)];
  }
  bool empty() const { return nnz() == 0; }

  std::span<const Index> colptr() const { return colptr_; }
  std::span<const Index> rowids() const { return rowids_; }
  std::span<const Value> vals() const { return vals_; }

  /// Row ids / values of column j (same contract as CscMat/CscView).
  std::span<const Index> col_rowids(Index j) const {
    return rowids_.subspan(
        static_cast<std::size_t>(colptr_[static_cast<std::size_t>(j)]),
        static_cast<std::size_t>(col_nnz(j)));
  }
  std::span<const Value> col_vals(Index j) const {
    return vals_.subspan(
        static_cast<std::size_t>(colptr_[static_cast<std::size_t>(j)]),
        static_cast<std::size_t>(col_nnz(j)));
  }
  Index col_nnz(Index j) const {
    return colptr_[static_cast<std::size_t>(j) + 1] -
           colptr_[static_cast<std::size_t>(j)];
  }

  /// Deep-copy into an owned, mutable CscMat.
  CscMat materialize() const {
    return CscMat(nrows_, ncols_, {colptr_.begin(), colptr_.end()},
                  {rowids_.begin(), rowids_.end()},
                  {vals_.begin(), vals_.end()});
  }

 private:
  Index nrows_ = 0;
  Index ncols_ = 0;
  std::span<const Index> colptr_;
  std::span<const Index> rowids_;
  std::span<const Value> vals_;
};

/// Borrow a whole collection at once (for the span-of-matrices merge entry
/// point). The source container must outlive the returned refs.
inline std::vector<CscConstRef> csc_refs(std::span<const CscMat> mats) {
  return {mats.begin(), mats.end()};
}
inline std::vector<CscConstRef> csc_refs(std::span<const CscView> views) {
  return {views.begin(), views.end()};
}

}  // namespace casp
