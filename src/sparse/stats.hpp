// Matrix and multiplication statistics: the quantities Table V reports
// (nnz(A), nnz(C), flops) plus the compression factor cf = flops / nnz(C)
// that drives accumulator selection and the performance model.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "sparse/csc_mat.hpp"

namespace casp {

struct MatrixStats {
  Index nrows = 0;
  Index ncols = 0;
  Index nnz = 0;
  double avg_nnz_per_col = 0.0;
  Index max_nnz_per_col = 0;
};

MatrixStats matrix_stats(const CscMat& a);

/// Number of scalar multiplications in A*B: sum over nonzeros B(i,j) of
/// nnz(A(:,i)). O(nnz(B)) given CSC A. This is "flops" in the paper
/// (they count multiplications, not multiply-adds). Templated over the CSC
/// read interface so owned matrices (CscMat) and borrowed payload views
/// (CscView) both work.
template <typename MatA, typename MatB>
Index multiply_flops(const MatA& a, const MatB& b) {
  CASP_CHECK_MSG(a.ncols() == b.nrows(), "multiply_flops: inner dim mismatch");
  Index flops = 0;
  for (Index i : b.rowids()) flops += a.col_nnz(i);
  return flops;
}

/// flops for each column j of the product A*B(:,j); used by kernels to size
/// hash tables and by the hybrid kernel to pick per-column accumulators.
template <typename MatA, typename MatB>
std::vector<Index> column_flops(const MatA& a, const MatB& b) {
  CASP_CHECK_MSG(a.ncols() == b.nrows(), "column_flops: inner dim mismatch");
  std::vector<Index> flops(static_cast<std::size_t>(b.ncols()), 0);
  for (Index j = 0; j < b.ncols(); ++j) {
    Index f = 0;
    for (Index i : b.col_rowids(j)) f += a.col_nnz(i);
    flops[static_cast<std::size_t>(j)] = f;
  }
  return flops;
}

struct MultiplyStats {
  Index flops = 0;       ///< scalar multiplications
  Index nnz_c = 0;       ///< nonzeros in the (merged) product
  double compression_factor = 0.0;  ///< flops / nnz_c, >= 1
};

/// Full multiplication statistics; runs a symbolic pass to get nnz(C).
MultiplyStats multiply_stats(const CscMat& a, const CscMat& b);

/// One-line human-readable summary ("3Mx3M nnz=360M ..."), used by benches
/// to print Table V rows.
std::string describe(const std::string& name, const CscMat& a);

}  // namespace casp
