// Matrix and multiplication statistics: the quantities Table V reports
// (nnz(A), nnz(C), flops) plus the compression factor cf = flops / nnz(C)
// that drives accumulator selection and the performance model.
#pragma once

#include <string>

#include "sparse/csc_mat.hpp"

namespace casp {

struct MatrixStats {
  Index nrows = 0;
  Index ncols = 0;
  Index nnz = 0;
  double avg_nnz_per_col = 0.0;
  Index max_nnz_per_col = 0;
};

MatrixStats matrix_stats(const CscMat& a);

/// Number of scalar multiplications in A*B: sum over nonzeros B(i,j) of
/// nnz(A(:,i)). O(nnz(B)) given CSC A. This is "flops" in the paper
/// (they count multiplications, not multiply-adds).
Index multiply_flops(const CscMat& a, const CscMat& b);

/// flops for each column j of the product A*B(:,j); used by kernels to size
/// hash tables and by the hybrid kernel to pick per-column accumulators.
std::vector<Index> column_flops(const CscMat& a, const CscMat& b);

struct MultiplyStats {
  Index flops = 0;       ///< scalar multiplications
  Index nnz_c = 0;       ///< nonzeros in the (merged) product
  double compression_factor = 0.0;  ///< flops / nnz_c, >= 1
};

/// Full multiplication statistics; runs a symbolic pass to get nnz(C).
MultiplyStats multiply_stats(const CscMat& a, const CscMat& b);

/// One-line human-readable summary ("3Mx3M nnz=360M ..."), used by benches
/// to print Table V rows.
std::string describe(const std::string& name, const CscMat& a);

}  // namespace casp
