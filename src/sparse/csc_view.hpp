// Borrowed, read-only CSC matrix over a received Payload.
//
// unpack_csc_view (sparse/serialize.hpp) points the three CSC arrays
// directly into the packed wire buffer — no deserialization copy — and the
// view keeps the Payload alive for as long as it is in use. The wire format
// guarantees 8-byte alignment of every array (24-byte header, 8-byte Index
// and Value elements), which unpack_csc_view re-checks at runtime.
//
// A CscView is copy-on-write at the type level: it exposes only the const
// read accessors the kernels need (mirroring CscMat), and a rank that wants
// to mutate must materialize() its own private CscMat first. Several ranks
// of a vmpi job can therefore read the same broadcast buffer concurrently
// without any rank observing another's writes.
#pragma once

#include <span>

#include "common/payload.hpp"
#include "common/types.hpp"
#include "sparse/csc_mat.hpp"

namespace casp {

class CscView {
 public:
  CscView() = default;

  /// Borrow raw CSC arrays; `keepalive` owns (a share of) the allocation
  /// the spans point into.
  CscView(Index nrows, Index ncols, std::span<const Index> colptr,
          std::span<const Index> rowids, std::span<const Value> vals,
          Payload keepalive)
      : nrows_(nrows),
        ncols_(ncols),
        colptr_(colptr),
        rowids_(rowids),
        vals_(vals),
        keepalive_(std::move(keepalive)) {}

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  Index nnz() const {
    return colptr_.empty() ? 0 : colptr_[static_cast<std::size_t>(ncols_)];
  }
  bool empty() const { return nnz() == 0; }

  std::span<const Index> colptr() const { return colptr_; }
  std::span<const Index> rowids() const { return rowids_; }
  std::span<const Value> vals() const { return vals_; }

  /// Row ids / values of column j (same contract as CscMat).
  std::span<const Index> col_rowids(Index j) const {
    return rowids_.subspan(
        static_cast<std::size_t>(colptr_[static_cast<std::size_t>(j)]),
        static_cast<std::size_t>(col_nnz(j)));
  }
  std::span<const Value> col_vals(Index j) const {
    return vals_.subspan(
        static_cast<std::size_t>(colptr_[static_cast<std::size_t>(j)]),
        static_cast<std::size_t>(col_nnz(j)));
  }
  Index col_nnz(Index j) const {
    return colptr_[static_cast<std::size_t>(j) + 1] -
           colptr_[static_cast<std::size_t>(j)];
  }

  /// Deep-copy into an owned, mutable CscMat — the copy-on-write boundary.
  CscMat materialize() const {
    return CscMat(nrows_, ncols_, {colptr_.begin(), colptr_.end()},
                  {rowids_.begin(), rowids_.end()},
                  {vals_.begin(), vals_.end()});
  }

  /// The payload whose allocation the spans borrow (empty for views over
  /// caller-owned arrays).
  const Payload& keepalive() const { return keepalive_; }

 private:
  Index nrows_ = 0;
  Index ncols_ = 0;
  std::span<const Index> colptr_;
  std::span<const Index> rowids_;
  std::span<const Value> vals_;
  Payload keepalive_;
};

}  // namespace casp
