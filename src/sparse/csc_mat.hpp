// Compressed Sparse Column matrix — the compute format.
//
// Gustavson's column algorithm (the basis of every local SpGEMM kernel in
// Sec. IV-D) forms C(:,j) from columns of A selected by B(:,j), so both
// operands and results live in CSC. Columns may be *unsorted* (row ids in
// arbitrary order within a column): the paper's key local-kernel
// optimization is to defer sorting until after Merge-Fiber, and this class
// deliberately supports both states, tracked by the caller.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sparse/triple_mat.hpp"

namespace casp {

class CscMat {
 public:
  CscMat() : nrows_(0), ncols_(0), colptr_{0} {}

  /// Empty matrix of the given shape.
  CscMat(Index nrows, Index ncols);

  /// Build from raw CSC arrays. colptr must have ncols+1 entries.
  CscMat(Index nrows, Index ncols, std::vector<Index> colptr,
         std::vector<Index> rowids, std::vector<Value> vals);

  /// Build from triples. The input is canonicalized first (sorted,
  /// duplicates summed), so the result has sorted, duplicate-free columns.
  static CscMat from_triples(TripleMat triples);

  /// Convert back to triples in canonical order iff columns are sorted.
  TripleMat to_triples() const;

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  Index nnz() const { return colptr_.back(); }
  bool empty() const { return nnz() == 0; }

  std::span<const Index> colptr() const { return colptr_; }
  std::span<const Index> rowids() const { return rowids_; }
  std::span<const Value> vals() const { return vals_; }
  std::span<Value> vals_mutable() { return vals_; }

  /// Row ids / values of column j.
  std::span<const Index> col_rowids(Index j) const {
    return std::span<const Index>(rowids_).subspan(
        static_cast<std::size_t>(colptr_[static_cast<std::size_t>(j)]),
        static_cast<std::size_t>(col_nnz(j)));
  }
  std::span<const Value> col_vals(Index j) const {
    return std::span<const Value>(vals_).subspan(
        static_cast<std::size_t>(colptr_[static_cast<std::size_t>(j)]),
        static_cast<std::size_t>(col_nnz(j)));
  }
  Index col_nnz(Index j) const {
    return colptr_[static_cast<std::size_t>(j) + 1] -
           colptr_[static_cast<std::size_t>(j)];
  }

  /// A^T, with sorted columns (counting-sort based, O(nnz + nrows)).
  CscMat transpose() const;

  /// Columns [c0, c1) as a new matrix with ncols = c1 - c0.
  CscMat slice_cols(Index c0, Index c1) const;

  /// Extract and concatenate several disjoint, ascending column ranges —
  /// used to pull one block-cyclic batch out of a local B.
  CscMat select_col_ranges(
      std::span<const std::pair<Index, Index>> ranges) const;

  /// Rows [r0, r1) as a new matrix with nrows = r1 - r0 (row indices
  /// reindexed). Used by row-wise batching to slice a batch out of A.
  CscMat slice_rows(Index r0, Index r1) const;

  /// Horizontal concatenation: [mats[0] | mats[1] | ...]. All inputs must
  /// share nrows.
  static CscMat concat_cols(std::span<const CscMat> mats);

  /// Sort row ids (and values) within every column ascending. This is the
  /// single final sort the paper performs after Merge-Fiber.
  void sort_columns();
  bool columns_sorted() const;

  /// Sum duplicate row entries within each column (requires or establishes
  /// sortedness). Needed only when assembling from non-merged pieces.
  void merge_duplicates();

  /// Keep only entries satisfying pred(row, col, val). Preserves order.
  template <typename Pred>
  void prune(Pred&& pred) {
    std::vector<Index> new_colptr(colptr_.size(), 0);
    std::size_t out = 0;
    for (Index j = 0; j < ncols_; ++j) {
      for (Index k = colptr_[static_cast<std::size_t>(j)];
           k < colptr_[static_cast<std::size_t>(j) + 1]; ++k) {
        const auto ku = static_cast<std::size_t>(k);
        if (pred(rowids_[ku], j, vals_[ku])) {
          rowids_[out] = rowids_[ku];
          vals_[out] = vals_[ku];
          ++out;
        }
      }
      new_colptr[static_cast<std::size_t>(j) + 1] = static_cast<Index>(out);
    }
    colptr_ = std::move(new_colptr);
    rowids_.resize(out);
    vals_.resize(out);
  }

  /// Memory footprint in bytes (array storage only).
  Bytes storage_bytes() const {
    return static_cast<Bytes>(colptr_.size()) * sizeof(Index) +
           static_cast<Bytes>(rowids_.size()) * (sizeof(Index) + sizeof(Value));
  }

  /// Structural + numerical equality of the raw arrays (callers wanting
  /// mathematical equality should sort_columns() both sides first).
  friend bool operator==(const CscMat& a, const CscMat& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ &&
           a.colptr_ == b.colptr_ && a.rowids_ == b.rowids_ &&
           a.vals_ == b.vals_;
  }

  /// Internal-consistency check (monotone colptr, bounds); for tests.
  void check_valid() const;

 private:
  Index nrows_;
  Index ncols_;
  std::vector<Index> colptr_;
  std::vector<Index> rowids_;
  std::vector<Value> vals_;
};

}  // namespace casp
