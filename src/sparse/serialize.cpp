#include "sparse/serialize.hpp"

#include <cstring>

#include "common/error.hpp"

namespace casp {

namespace {
struct Header {
  Index nrows;
  Index ncols;
  Index nnz;
};

template <typename T>
void append(std::vector<std::byte>& buf, const T* data, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (count == 0) return;
  const auto* p = reinterpret_cast<const std::byte*>(data);
  buf.insert(buf.end(), p, p + count * sizeof(T));
}

template <typename T>
void read(const std::vector<std::byte>& buf, std::size_t& offset, T* data,
          std::size_t count) {
  CASP_CHECK(offset + count * sizeof(T) <= buf.size());
  if (count != 0) std::memcpy(data, buf.data() + offset, count * sizeof(T));
  offset += count * sizeof(T);
}
}  // namespace

Bytes packed_size(const CscMat& mat) {
  return sizeof(Header) +
         (static_cast<Bytes>(mat.ncols()) + 1) * sizeof(Index) +
         static_cast<Bytes>(mat.nnz()) * (sizeof(Index) + sizeof(Value));
}

std::vector<std::byte> pack_csc(const CscMat& mat) {
  std::vector<std::byte> buf;
  buf.reserve(packed_size(mat));
  const Header h{mat.nrows(), mat.ncols(), mat.nnz()};
  append(buf, &h, 1);
  append(buf, mat.colptr().data(), mat.colptr().size());
  append(buf, mat.rowids().data(), mat.rowids().size());
  append(buf, mat.vals().data(), mat.vals().size());
  return buf;
}

CscMat unpack_csc(const std::vector<std::byte>& buffer) {
  std::size_t offset = 0;
  Header h{};
  read(buffer, offset, &h, 1);
  std::vector<Index> colptr(static_cast<std::size_t>(h.ncols) + 1);
  std::vector<Index> rowids(static_cast<std::size_t>(h.nnz));
  std::vector<Value> vals(static_cast<std::size_t>(h.nnz));
  read(buffer, offset, colptr.data(), colptr.size());
  read(buffer, offset, rowids.data(), rowids.size());
  read(buffer, offset, vals.data(), vals.size());
  CASP_CHECK_MSG(offset == buffer.size(), "unpack_csc: trailing bytes");
  return CscMat(h.nrows, h.ncols, std::move(colptr), std::move(rowids),
                std::move(vals));
}

}  // namespace casp
