#include "sparse/serialize.hpp"

#include <cstdint>
#include <cstring>

#include "common/error.hpp"

namespace casp {

namespace {
struct Header {
  Index nrows;
  Index ncols;
  Index nnz;
};

template <typename T>
void append(std::vector<std::byte>& buf, const T* data, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (count == 0) return;
  const auto* p = reinterpret_cast<const std::byte*>(data);
  buf.insert(buf.end(), p, p + count * sizeof(T));
}

template <typename T>
void read(const std::vector<std::byte>& buf, std::size_t& offset, T* data,
          std::size_t count) {
  CASP_CHECK(offset + count * sizeof(T) <= buf.size());
  if (count != 0) std::memcpy(data, buf.data() + offset, count * sizeof(T));
  offset += count * sizeof(T);
}
}  // namespace

Bytes packed_size(const CscMat& mat) {
  return sizeof(Header) +
         (static_cast<Bytes>(mat.ncols()) + 1) * sizeof(Index) +
         static_cast<Bytes>(mat.nnz()) * (sizeof(Index) + sizeof(Value));
}

std::vector<std::byte> pack_csc(const CscMat& mat) {
  std::vector<std::byte> buf;
  buf.reserve(packed_size(mat));
  const Header h{mat.nrows(), mat.ncols(), mat.nnz()};
  append(buf, &h, 1);
  append(buf, mat.colptr().data(), mat.colptr().size());
  append(buf, mat.rowids().data(), mat.rowids().size());
  append(buf, mat.vals().data(), mat.vals().size());
  return buf;
}

Payload pack_csc_payload(const CscMat& mat) {
  return Payload::wrap(pack_csc(mat));
}

namespace {

/// Identity of a payload generation already validated by this thread: the
/// wire checks depend only on the buffer address, its length and the
/// header, so a repeat viewing of the same generation (SUMMA unpacks each
/// forwarded block once per stage it participates in) can skip straight to
/// view construction. Per-thread because ranks are threads and each sees
/// its own working set of in-flight payloads.
struct ValidatedBuffer {
  const std::byte* data = nullptr;
  std::size_t size = 0;
  Header header{};
};

constexpr std::size_t kValidatedRing = 8;
thread_local ValidatedBuffer g_validated[kValidatedRing];
thread_local std::size_t g_validated_next = 0;

bool already_validated(const std::byte* data, std::size_t size,
                       const Header& h) {
  for (const ValidatedBuffer& v : g_validated) {
    if (v.data == data && v.size == size && v.header.nrows == h.nrows &&
        v.header.ncols == h.ncols && v.header.nnz == h.nnz)
      return true;
  }
  return false;
}

void note_validated(const std::byte* data, std::size_t size,
                    const Header& h) {
  g_validated[g_validated_next] = ValidatedBuffer{data, size, h};
  g_validated_next = (g_validated_next + 1) % kValidatedRing;
}

}  // namespace

CscView unpack_csc_view(const Payload& payload) {
  CASP_CHECK_MSG(payload.size() >= sizeof(Header),
                 "unpack_csc_view: payload shorter than header");
  Header h{};
  std::memcpy(&h, payload.data(), sizeof(Header));
  const auto ncolptr = static_cast<std::size_t>(h.ncols) + 1;
  const auto nnz = static_cast<std::size_t>(h.nnz);
  const std::byte* base = payload.data();
  static_assert(std::is_trivially_copyable_v<Index> &&
                std::is_trivially_copyable_v<Value>);
  // Strict path on first contact with this payload generation only; the
  // memoized path skips the re-validation of a buffer this thread already
  // vetted (the checks are pure in (address, size, header)).
  if (!already_validated(base, payload.size(), h)) {
    CASP_CHECK_MSG(payload.size() ==
                       sizeof(Header) + ncolptr * sizeof(Index) +
                           nnz * (sizeof(Index) + sizeof(Value)),
                   "unpack_csc_view: size does not match header");
    // The arrays are read in place, so the wire layout must satisfy Index /
    // Value alignment: 24-byte header then 8-byte elements keeps every
    // array 8-aligned as long as the payload itself starts aligned.
    CASP_CHECK_MSG(
        reinterpret_cast<std::uintptr_t>(base) % alignof(Value) == 0,
        "unpack_csc_view: payload is not 8-byte aligned");
    const auto* check_colptr =
        reinterpret_cast<const Index*>(base + sizeof(Header));
    CASP_CHECK_MSG(ncolptr > 0 && check_colptr[0] == 0 &&
                       check_colptr[ncolptr - 1] == h.nnz,
                   "unpack_csc_view: corrupt colptr");
    note_validated(base, payload.size(), h);
  }
  const auto* colptr = reinterpret_cast<const Index*>(base + sizeof(Header));
  const auto* rowids = colptr + ncolptr;
  const auto* vals = reinterpret_cast<const Value*>(rowids + nnz);
  return CscView(h.nrows, h.ncols, {colptr, ncolptr}, {rowids, nnz},
                 {vals, nnz}, payload);
}

CscMat unpack_csc(const std::vector<std::byte>& buffer) {
  std::size_t offset = 0;
  Header h{};
  read(buffer, offset, &h, 1);
  std::vector<Index> colptr(static_cast<std::size_t>(h.ncols) + 1);
  std::vector<Index> rowids(static_cast<std::size_t>(h.nnz));
  std::vector<Value> vals(static_cast<std::size_t>(h.nnz));
  read(buffer, offset, colptr.data(), colptr.size());
  read(buffer, offset, rowids.data(), rowids.size());
  read(buffer, offset, vals.data(), vals.size());
  CASP_CHECK_MSG(offset == buffer.size(), "unpack_csc: trailing bytes");
  return CscMat(h.nrows, h.ncols, std::move(colptr), std::move(rowids),
                std::move(vals));
}

}  // namespace casp
