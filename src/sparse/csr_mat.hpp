// Compressed Sparse Row matrix.
//
// Row-oriented companion of CscMat. The SUMMA kernels are column-based, but
// applications (triangle counting's L·U split, row-wise analyses) and tests
// want a row view; CSR of A is exactly CSC of A^T, so most logic delegates.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "sparse/csc_mat.hpp"

namespace casp {

class CsrMat {
 public:
  CsrMat() : nrows_(0), ncols_(0), rowptr_{0} {}
  CsrMat(Index nrows, Index ncols);
  CsrMat(Index nrows, Index ncols, std::vector<Index> rowptr,
         std::vector<Index> colids, std::vector<Value> vals);

  /// Build from CSC (sorted rows within each row of the result).
  static CsrMat from_csc(const CscMat& csc);

  /// Convert to CSC (sorted columns).
  CscMat to_csc() const;

  static CsrMat from_triples(TripleMat triples);

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  Index nnz() const { return rowptr_.back(); }

  std::span<const Index> rowptr() const { return rowptr_; }
  std::span<const Index> colids() const { return colids_; }
  std::span<const Value> vals() const { return vals_; }

  std::span<const Index> row_colids(Index i) const {
    return std::span<const Index>(colids_).subspan(
        static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i)]),
        static_cast<std::size_t>(row_nnz(i)));
  }
  std::span<const Value> row_vals(Index i) const {
    return std::span<const Value>(vals_).subspan(
        static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(i)]),
        static_cast<std::size_t>(row_nnz(i)));
  }
  Index row_nnz(Index i) const {
    return rowptr_[static_cast<std::size_t>(i) + 1] -
           rowptr_[static_cast<std::size_t>(i)];
  }

  void check_valid() const;

  friend bool operator==(const CsrMat& a, const CsrMat& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ &&
           a.rowptr_ == b.rowptr_ && a.colids_ == b.colids_ &&
           a.vals_ == b.vals_;
  }

 private:
  Index nrows_;
  Index ncols_;
  std::vector<Index> rowptr_;
  std::vector<Index> colids_;
  std::vector<Value> vals_;
};

/// Strictly-lower-triangular part of a square matrix (CSC in, CSC out).
CscMat lower_triangle(const CscMat& a);
/// Strictly-upper-triangular part of a square matrix.
CscMat upper_triangle(const CscMat& a);

}  // namespace casp
