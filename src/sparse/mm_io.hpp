// Matrix Market (coordinate) I/O.
//
// Supports the subset the paper's test matrices use: `matrix coordinate
// real|integer|pattern general|symmetric`. Pattern entries read as 1.0;
// symmetric inputs are expanded to general storage on read.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/triple_mat.hpp"

namespace casp {

/// Parse a Matrix Market stream into triples (1-based file indices are
/// converted to 0-based). Throws InvalidArgument on malformed input.
TripleMat read_matrix_market(std::istream& in);
TripleMat read_matrix_market_file(const std::string& path);

/// Write triples as `matrix coordinate real general` (0-based indices are
/// converted to 1-based).
void write_matrix_market(std::ostream& out, const TripleMat& mat);
void write_matrix_market_file(const std::string& path, const TripleMat& mat);

}  // namespace casp
