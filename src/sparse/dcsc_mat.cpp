#include "sparse/dcsc_mat.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"
#include "kernels/semiring.hpp"

namespace casp {

DcscMat DcscMat::from_csc(const CscMat& csc) {
  DcscMat d;
  d.nrows_ = csc.nrows();
  d.ncols_ = csc.ncols();
  d.cp_.clear();
  d.cp_.push_back(0);
  for (Index j = 0; j < csc.ncols(); ++j) {
    const Index cnt = csc.col_nnz(j);
    if (cnt == 0) continue;
    d.jc_.push_back(j);
    d.cp_.push_back(d.cp_.back() + cnt);
  }
  d.ir_.assign(csc.rowids().begin(), csc.rowids().end());
  d.num_.assign(csc.vals().begin(), csc.vals().end());
  return d;
}

CscMat DcscMat::to_csc() const {
  std::vector<Index> colptr(static_cast<std::size_t>(ncols_) + 1, 0);
  for (std::size_t k = 0; k < jc_.size(); ++k)
    colptr[static_cast<std::size_t>(jc_[k]) + 1] = cp_[k + 1] - cp_[k];
  for (std::size_t j = 0; j < static_cast<std::size_t>(ncols_); ++j)
    colptr[j + 1] += colptr[j];
  return CscMat(nrows_, ncols_, std::move(colptr),
                std::vector<Index>(ir_.begin(), ir_.end()),
                std::vector<Value>(num_.begin(), num_.end()));
}

Index DcscMat::find_col(Index j) const {
  const auto it = std::lower_bound(jc_.begin(), jc_.end(), j);
  if (it == jc_.end() || *it != j) return -1;
  return static_cast<Index>(it - jc_.begin());
}

void DcscMat::check_valid() const {
  CASP_CHECK(cp_.size() == jc_.size() + 1);
  CASP_CHECK(cp_.front() == 0);
  CASP_CHECK(std::is_sorted(jc_.begin(), jc_.end()));
  for (std::size_t k = 0; k + 1 < cp_.size(); ++k)
    CASP_CHECK_MSG(cp_[k] < cp_[k + 1], "DCSC column " << k << " is empty");
  for (Index j : jc_) CASP_CHECK(j >= 0 && j < ncols_);
  for (Index r : ir_) CASP_CHECK(r >= 0 && r < nrows_);
  CASP_CHECK(cp_.back() == static_cast<Index>(ir_.size()));
  CASP_CHECK(ir_.size() == num_.size());
}

namespace {
/// Minimal hash accumulator (same scheme as kernels/spgemm.cpp, private
/// copy to keep the hypersparse path self-contained).
template <typename SR>
class Acc {
 public:
  void require(Index cap) {
    const std::uint64_t want =
        next_pow2(static_cast<std::uint64_t>(std::max<Index>(16, 2 * cap)));
    if (want > keys_.size()) {
      keys_.assign(want, -1);
      vals_.resize(want);
      mask_ = want - 1;
      used_.clear();
    }
  }
  void reset() {
    for (auto slot : used_) keys_[slot] = -1;
    used_.clear();
  }
  void add(Index row, Value v) {
    std::uint64_t slot =
        (static_cast<std::uint64_t>(row) * 0x9e3779b97f4a7c15ULL) & mask_;
    while (true) {
      if (keys_[slot] == -1) {
        keys_[slot] = row;
        vals_[slot] = v;
        used_.push_back(slot);
        return;
      }
      if (keys_[slot] == row) {
        vals_[slot] = SR::add(vals_[slot], v);
        return;
      }
      slot = (slot + 1) & mask_;
    }
  }
  Index size() const { return static_cast<Index>(used_.size()); }
  void emit(std::vector<Index>& rows, std::vector<Value>& vals) const {
    for (auto slot : used_) {
      rows.push_back(keys_[slot]);
      vals.push_back(vals_[slot]);
    }
  }

 private:
  std::vector<Index> keys_;
  std::vector<Value> vals_;
  std::vector<std::uint64_t> used_;
  std::uint64_t mask_ = 0;
};
}  // namespace

template <typename SR>
CscMat hypersparse_spgemm(const DcscMat& a, const CscMat& b) {
  CASP_CHECK_MSG(a.ncols() == b.nrows(),
                 "hypersparse_spgemm: inner dimension mismatch");
  std::vector<Index> colptr(static_cast<std::size_t>(b.ncols()) + 1, 0);
  std::vector<Index> rowids;
  std::vector<Value> vals;
  Acc<SR> acc;
  for (Index j = 0; j < b.ncols(); ++j) {
    const auto brows = b.col_rowids(j);
    const auto bvals = b.col_vals(j);
    // Upper bound on this column's output size for the table.
    Index cap = 0;
    // Two passes over the (typically tiny) B column: bound, then multiply.
    std::vector<Index> hit(brows.size(), -1);
    for (std::size_t t = 0; t < brows.size(); ++t) {
      const Index k = a.find_col(brows[t]);
      hit[t] = k;
      if (k >= 0) cap += static_cast<Index>(a.nonempty_rowids(k).size());
    }
    if (cap > 0) {
      acc.require(std::min(cap, a.nrows()));
      acc.reset();
      for (std::size_t t = 0; t < brows.size(); ++t) {
        if (hit[t] < 0) continue;
        const auto arows = a.nonempty_rowids(hit[t]);
        const auto avals = a.nonempty_vals(hit[t]);
        for (std::size_t s = 0; s < arows.size(); ++s)
          acc.add(arows[s], SR::mul(avals[s], bvals[t]));
      }
      acc.emit(rowids, vals);
    }
    colptr[static_cast<std::size_t>(j) + 1] = static_cast<Index>(rowids.size());
  }
  return CscMat(a.nrows(), b.ncols(), std::move(colptr), std::move(rowids),
                std::move(vals));
}

template <typename SR>
DcscMat hypersparse_spgemm_dcsc(const DcscMat& a, const DcscMat& b) {
  CASP_CHECK_MSG(a.ncols() == b.nrows(),
                 "hypersparse_spgemm_dcsc: inner dimension mismatch");
  std::vector<Index> jc;
  std::vector<Index> cp{0};
  std::vector<Index> ir;
  std::vector<Value> num;
  Acc<SR> acc;
  // Only B's nonempty columns can produce output columns.
  for (Index t = 0; t < b.nonempty_cols(); ++t) {
    const auto brows = b.nonempty_rowids(t);
    const auto bvals = b.nonempty_vals(t);
    Index cap = 0;
    std::vector<Index> hit(brows.size(), -1);
    for (std::size_t s = 0; s < brows.size(); ++s) {
      const Index k = a.find_col(brows[s]);
      hit[s] = k;
      if (k >= 0) cap += static_cast<Index>(a.nonempty_rowids(k).size());
    }
    if (cap == 0) continue;
    acc.require(std::min(cap, a.nrows()));
    acc.reset();
    for (std::size_t s = 0; s < brows.size(); ++s) {
      if (hit[s] < 0) continue;
      const auto arows = a.nonempty_rowids(hit[s]);
      const auto avals = a.nonempty_vals(hit[s]);
      for (std::size_t e = 0; e < arows.size(); ++e)
        acc.add(arows[e], SR::mul(avals[e], bvals[s]));
    }
    if (acc.size() == 0) continue;
    std::vector<Index> rows;
    std::vector<Value> vals;
    acc.emit(rows, vals);
    jc.push_back(b.col_ids()[static_cast<std::size_t>(t)]);
    ir.insert(ir.end(), rows.begin(), rows.end());
    num.insert(num.end(), vals.begin(), vals.end());
    cp.push_back(static_cast<Index>(ir.size()));
  }
  return DcscMat(a.nrows(), b.ncols(), std::move(jc), std::move(cp),
                 std::move(ir), std::move(num));
}

template DcscMat hypersparse_spgemm_dcsc<PlusTimes>(const DcscMat&,
                                                    const DcscMat&);
template DcscMat hypersparse_spgemm_dcsc<MinPlus>(const DcscMat&,
                                                  const DcscMat&);
template DcscMat hypersparse_spgemm_dcsc<MaxMin>(const DcscMat&,
                                                 const DcscMat&);
template DcscMat hypersparse_spgemm_dcsc<OrAnd>(const DcscMat&,
                                                const DcscMat&);

template CscMat hypersparse_spgemm<PlusTimes>(const DcscMat&, const CscMat&);
template CscMat hypersparse_spgemm<MinPlus>(const DcscMat&, const CscMat&);
template CscMat hypersparse_spgemm<MaxMin>(const DcscMat&, const CscMat&);
template CscMat hypersparse_spgemm<OrAnd>(const DcscMat&, const CscMat&);

}  // namespace casp
