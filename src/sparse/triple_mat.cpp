#include "sparse/triple_mat.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace casp {

namespace {
bool col_row_less(const Triple& a, const Triple& b) {
  return a.col != b.col ? a.col < b.col : a.row < b.row;
}
}  // namespace

TripleMat::TripleMat(Index nrows, Index ncols, std::vector<Triple> entries)
    : nrows_(nrows), ncols_(ncols), entries_(std::move(entries)) {
  check_bounds();
}

void TripleMat::sort() {
  std::sort(entries_.begin(), entries_.end(), col_row_less);
}

void TripleMat::canonicalize(bool drop_zeros) {
  sort();
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size();) {
    Triple merged = entries_[i];
    std::size_t j = i + 1;
    while (j < entries_.size() && entries_[j].row == merged.row &&
           entries_[j].col == merged.col) {
      merged.val += entries_[j].val;
      ++j;
    }
    if (!drop_zeros || merged.val != Value{0}) entries_[out++] = merged;
    i = j;
  }
  entries_.resize(out);
}

bool TripleMat::is_canonical() const {
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const Triple& prev = entries_[i - 1];
    const Triple& cur = entries_[i];
    if (!col_row_less(prev, cur)) return false;
  }
  return true;
}

void TripleMat::check_bounds() const {
  for (const Triple& t : entries_) {
    CASP_CHECK_MSG(t.row >= 0 && t.row < nrows_ && t.col >= 0 && t.col < ncols_,
                   "triple (" << t.row << "," << t.col << ") out of bounds "
                              << nrows_ << "x" << ncols_);
  }
}

double max_abs_diff(const TripleMat& a, const TripleMat& b) {
  if (a.nrows() != b.nrows() || a.ncols() != b.ncols() || a.nnz() != b.nnz())
    return std::numeric_limits<double>::infinity();
  double diff = 0.0;
  for (Index i = 0; i < a.nnz(); ++i) {
    const Triple& ta = a.entries()[static_cast<std::size_t>(i)];
    const Triple& tb = b.entries()[static_cast<std::size_t>(i)];
    if (ta.row != tb.row || ta.col != tb.col)
      return std::numeric_limits<double>::infinity();
    diff = std::max(diff, std::abs(ta.val - tb.val));
  }
  return diff;
}

}  // namespace casp
