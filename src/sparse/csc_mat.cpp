#include "sparse/csc_mat.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace casp {

CscMat::CscMat(Index nrows, Index ncols)
    : nrows_(nrows),
      ncols_(ncols),
      colptr_(static_cast<std::size_t>(ncols) + 1, 0) {
  CASP_CHECK(nrows >= 0 && ncols >= 0);
}

CscMat::CscMat(Index nrows, Index ncols, std::vector<Index> colptr,
               std::vector<Index> rowids, std::vector<Value> vals)
    : nrows_(nrows),
      ncols_(ncols),
      colptr_(std::move(colptr)),
      rowids_(std::move(rowids)),
      vals_(std::move(vals)) {
  check_valid();
}

CscMat CscMat::from_triples(TripleMat triples) {
  triples.canonicalize();
  CscMat m(triples.nrows(), triples.ncols());
  m.rowids_.reserve(triples.entries().size());
  m.vals_.reserve(triples.entries().size());
  for (const Triple& t : triples.entries()) {
    ++m.colptr_[static_cast<std::size_t>(t.col) + 1];
    m.rowids_.push_back(t.row);
    m.vals_.push_back(t.val);
  }
  std::partial_sum(m.colptr_.begin(), m.colptr_.end(), m.colptr_.begin());
  return m;
}

TripleMat CscMat::to_triples() const {
  TripleMat t(nrows_, ncols_);
  t.reserve(nnz());
  for (Index j = 0; j < ncols_; ++j) {
    for (Index k = colptr_[static_cast<std::size_t>(j)];
         k < colptr_[static_cast<std::size_t>(j) + 1]; ++k) {
      const auto ku = static_cast<std::size_t>(k);
      t.push_back(rowids_[ku], j, vals_[ku]);
    }
  }
  return t;
}

CscMat CscMat::transpose() const {
  CscMat t(ncols_, nrows_);
  t.rowids_.resize(rowids_.size());
  t.vals_.resize(vals_.size());
  // Count entries per row of *this (= per column of the transpose).
  std::vector<Index>& tptr = t.colptr_;
  for (Index r : rowids_) ++tptr[static_cast<std::size_t>(r) + 1];
  std::partial_sum(tptr.begin(), tptr.end(), tptr.begin());
  std::vector<Index> cursor(tptr.begin(), tptr.end() - 1);
  for (Index j = 0; j < ncols_; ++j) {
    for (Index k = colptr_[static_cast<std::size_t>(j)];
         k < colptr_[static_cast<std::size_t>(j) + 1]; ++k) {
      const auto ku = static_cast<std::size_t>(k);
      const Index r = rowids_[ku];
      const auto pos = static_cast<std::size_t>(cursor[static_cast<std::size_t>(r)]++);
      t.rowids_[pos] = j;
      t.vals_[pos] = vals_[ku];
    }
  }
  // Scanning columns of *this ascending means row ids land sorted only if we
  // scan all columns for each row in order — which the cursor walk above
  // already guarantees (column index j increases monotonically per row).
  return t;
}

CscMat CscMat::slice_cols(Index c0, Index c1) const {
  CASP_CHECK(0 <= c0 && c0 <= c1 && c1 <= ncols_);
  CscMat s(nrows_, c1 - c0);
  const Index base = colptr_[static_cast<std::size_t>(c0)];
  const Index end = colptr_[static_cast<std::size_t>(c1)];
  s.rowids_.assign(rowids_.begin() + base, rowids_.begin() + end);
  s.vals_.assign(vals_.begin() + base, vals_.begin() + end);
  for (Index j = c0; j <= c1; ++j)
    s.colptr_[static_cast<std::size_t>(j - c0)] =
        colptr_[static_cast<std::size_t>(j)] - base;
  return s;
}

CscMat CscMat::select_col_ranges(
    std::span<const std::pair<Index, Index>> ranges) const {
  Index total_cols = 0;
  Index total_nnz = 0;
  Index prev_end = 0;
  for (const auto& [c0, c1] : ranges) {
    CASP_CHECK_MSG(prev_end <= c0 && c0 <= c1 && c1 <= ncols_,
                   "ranges must be disjoint and ascending");
    prev_end = c1;
    total_cols += c1 - c0;
    total_nnz += colptr_[static_cast<std::size_t>(c1)] -
                 colptr_[static_cast<std::size_t>(c0)];
  }
  CscMat s(nrows_, total_cols);
  s.rowids_.reserve(static_cast<std::size_t>(total_nnz));
  s.vals_.reserve(static_cast<std::size_t>(total_nnz));
  Index out_col = 0;
  for (const auto& [c0, c1] : ranges) {
    const Index base = colptr_[static_cast<std::size_t>(c0)];
    const Index end = colptr_[static_cast<std::size_t>(c1)];
    s.rowids_.insert(s.rowids_.end(), rowids_.begin() + base,
                     rowids_.begin() + end);
    s.vals_.insert(s.vals_.end(), vals_.begin() + base, vals_.begin() + end);
    for (Index j = c0; j < c1; ++j) {
      s.colptr_[static_cast<std::size_t>(out_col) + 1] =
          s.colptr_[static_cast<std::size_t>(out_col)] + col_nnz(j);
      ++out_col;
    }
  }
  return s;
}

CscMat CscMat::slice_rows(Index r0, Index r1) const {
  CASP_CHECK(0 <= r0 && r0 <= r1 && r1 <= nrows_);
  CscMat s(r1 - r0, ncols_);
  s.rowids_.reserve(rowids_.size());
  s.vals_.reserve(vals_.size());
  for (Index j = 0; j < ncols_; ++j) {
    for (Index k = colptr_[static_cast<std::size_t>(j)];
         k < colptr_[static_cast<std::size_t>(j) + 1]; ++k) {
      const auto ku = static_cast<std::size_t>(k);
      if (rowids_[ku] >= r0 && rowids_[ku] < r1) {
        s.rowids_.push_back(rowids_[ku] - r0);
        s.vals_.push_back(vals_[ku]);
      }
    }
    s.colptr_[static_cast<std::size_t>(j) + 1] =
        static_cast<Index>(s.rowids_.size());
  }
  return s;
}

CscMat CscMat::concat_cols(std::span<const CscMat> mats) {
  CASP_CHECK(!mats.empty());
  const Index nrows = mats.front().nrows();
  Index ncols = 0;
  Index nnz = 0;
  for (const CscMat& m : mats) {
    CASP_CHECK_MSG(m.nrows() == nrows, "concat_cols: nrows mismatch");
    ncols += m.ncols();
    nnz += m.nnz();
  }
  CscMat out(nrows, ncols);
  out.rowids_.reserve(static_cast<std::size_t>(nnz));
  out.vals_.reserve(static_cast<std::size_t>(nnz));
  Index col = 0;
  for (const CscMat& m : mats) {
    out.rowids_.insert(out.rowids_.end(), m.rowids_.begin(), m.rowids_.end());
    out.vals_.insert(out.vals_.end(), m.vals_.begin(), m.vals_.end());
    const Index base = out.colptr_[static_cast<std::size_t>(col)];
    for (Index j = 0; j < m.ncols(); ++j) {
      out.colptr_[static_cast<std::size_t>(col) + 1] =
          base + m.colptr_[static_cast<std::size_t>(j) + 1];
      ++col;
    }
  }
  return out;
}

void CscMat::sort_columns() {
  std::vector<std::pair<Index, Value>> buffer;
  for (Index j = 0; j < ncols_; ++j) {
    const auto lo = static_cast<std::size_t>(colptr_[static_cast<std::size_t>(j)]);
    const auto hi = static_cast<std::size_t>(colptr_[static_cast<std::size_t>(j) + 1]);
    if (hi - lo <= 1) continue;
    bool sorted = true;
    for (std::size_t k = lo + 1; k < hi; ++k) {
      if (rowids_[k - 1] > rowids_[k]) {
        sorted = false;
        break;
      }
    }
    if (sorted) continue;
    buffer.clear();
    buffer.reserve(hi - lo);
    for (std::size_t k = lo; k < hi; ++k) buffer.emplace_back(rowids_[k], vals_[k]);
    std::sort(buffer.begin(), buffer.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t k = lo; k < hi; ++k) {
      rowids_[k] = buffer[k - lo].first;
      vals_[k] = buffer[k - lo].second;
    }
  }
}

bool CscMat::columns_sorted() const {
  for (Index j = 0; j < ncols_; ++j) {
    for (Index k = colptr_[static_cast<std::size_t>(j)] + 1;
         k < colptr_[static_cast<std::size_t>(j) + 1]; ++k) {
      if (rowids_[static_cast<std::size_t>(k - 1)] >=
          rowids_[static_cast<std::size_t>(k)])
        return false;
    }
  }
  return true;
}

void CscMat::merge_duplicates() {
  sort_columns();
  std::vector<Index> new_colptr(colptr_.size(), 0);
  std::size_t out = 0;
  for (Index j = 0; j < ncols_; ++j) {
    std::size_t k = static_cast<std::size_t>(colptr_[static_cast<std::size_t>(j)]);
    const std::size_t hi =
        static_cast<std::size_t>(colptr_[static_cast<std::size_t>(j) + 1]);
    while (k < hi) {
      Index row = rowids_[k];
      Value sum = vals_[k];
      std::size_t k2 = k + 1;
      while (k2 < hi && rowids_[k2] == row) sum += vals_[k2++];
      rowids_[out] = row;
      vals_[out] = sum;
      ++out;
      k = k2;
    }
    new_colptr[static_cast<std::size_t>(j) + 1] = static_cast<Index>(out);
  }
  colptr_ = std::move(new_colptr);
  rowids_.resize(out);
  vals_.resize(out);
}

void CscMat::check_valid() const {
  CASP_CHECK(nrows_ >= 0 && ncols_ >= 0);
  CASP_CHECK(colptr_.size() == static_cast<std::size_t>(ncols_) + 1);
  CASP_CHECK(colptr_.front() == 0);
  for (std::size_t j = 0; j < static_cast<std::size_t>(ncols_); ++j)
    CASP_CHECK_MSG(colptr_[j] <= colptr_[j + 1], "colptr not monotone at " << j);
  CASP_CHECK(colptr_.back() == static_cast<Index>(rowids_.size()));
  CASP_CHECK(rowids_.size() == vals_.size());
  for (Index r : rowids_)
    CASP_CHECK_MSG(r >= 0 && r < nrows_, "row id " << r << " out of bounds");
}

}  // namespace casp
