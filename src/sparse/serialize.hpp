// Flat byte serialization of CscMat for message passing.
//
// One matrix = one message: header (nrows, ncols, nnz) followed by the
// three CSC arrays. The on-wire size is what the traffic instrumentation
// records, so serialized bytes are the "communication volume" of the
// experiments.
#pragma once

#include <vector>

#include "common/payload.hpp"
#include "sparse/csc_mat.hpp"
#include "sparse/csc_view.hpp"

namespace casp {

std::vector<std::byte> pack_csc(const CscMat& mat);
CscMat unpack_csc(const std::vector<std::byte>& buffer);

/// Pack straight into a transport payload (one allocation, no intermediate
/// buffer) for handle-forwarding sends.
Payload pack_csc_payload(const CscMat& mat);

/// Borrow the CSC arrays directly from a packed payload — the zero-copy
/// receive path. The returned view shares ownership of the payload's
/// allocation, so it stays valid for the view's lifetime. Requires the
/// payload start to be 8-byte aligned (the wire format guarantees this for
/// whole messages and for allgather subviews: 24-byte header, 8-byte
/// elements, 8-byte length prefixes).
CscView unpack_csc_view(const Payload& payload);

/// On-wire size without building the buffer.
Bytes packed_size(const CscMat& mat);

}  // namespace casp
