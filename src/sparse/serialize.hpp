// Flat byte serialization of CscMat for message passing.
//
// One matrix = one message: header (nrows, ncols, nnz) followed by the
// three CSC arrays. The on-wire size is what the traffic instrumentation
// records, so serialized bytes are the "communication volume" of the
// experiments.
#pragma once

#include <vector>

#include "sparse/csc_mat.hpp"

namespace casp {

std::vector<std::byte> pack_csc(const CscMat& mat);
CscMat unpack_csc(const std::vector<std::byte>& buffer);

/// On-wire size without building the buffer.
Bytes packed_size(const CscMat& mat);

}  // namespace casp
