#include "sparse/stats.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"

namespace casp {

MatrixStats matrix_stats(const CscMat& a) {
  MatrixStats s;
  s.nrows = a.nrows();
  s.ncols = a.ncols();
  s.nnz = a.nnz();
  s.avg_nnz_per_col =
      a.ncols() == 0 ? 0.0
                     : static_cast<double>(a.nnz()) / static_cast<double>(a.ncols());
  for (Index j = 0; j < a.ncols(); ++j)
    s.max_nnz_per_col = std::max(s.max_nnz_per_col, a.col_nnz(j));
  return s;
}

MultiplyStats multiply_stats(const CscMat& a, const CscMat& b) {
  MultiplyStats s;
  s.flops = multiply_flops(a, b);
  // Symbolic pass: count distinct output rows per column with a sparse
  // "visited" marker array (SPA-style; reset lazily via a generation stamp).
  std::vector<Index> stamp(static_cast<std::size_t>(a.nrows()), -1);
  for (Index j = 0; j < b.ncols(); ++j) {
    for (Index i : b.col_rowids(j)) {
      for (Index r : a.col_rowids(i)) {
        if (stamp[static_cast<std::size_t>(r)] != j) {
          stamp[static_cast<std::size_t>(r)] = j;
          ++s.nnz_c;
        }
      }
    }
  }
  s.compression_factor =
      s.nnz_c == 0 ? 0.0
                   : static_cast<double>(s.flops) / static_cast<double>(s.nnz_c);
  return s;
}

std::string describe(const std::string& name, const CscMat& a) {
  const MatrixStats s = matrix_stats(a);
  std::ostringstream os;
  os << name << ": " << s.nrows << " x " << s.ncols << ", nnz=" << s.nnz
     << ", avg nnz/col=" << s.avg_nnz_per_col
     << ", max nnz/col=" << s.max_nnz_per_col;
  return os.str();
}

}  // namespace casp
