#include "sparse/csr_mat.hpp"

#include <numeric>

#include "common/error.hpp"

namespace casp {

CsrMat::CsrMat(Index nrows, Index ncols)
    : nrows_(nrows),
      ncols_(ncols),
      rowptr_(static_cast<std::size_t>(nrows) + 1, 0) {
  CASP_CHECK(nrows >= 0 && ncols >= 0);
}

CsrMat::CsrMat(Index nrows, Index ncols, std::vector<Index> rowptr,
               std::vector<Index> colids, std::vector<Value> vals)
    : nrows_(nrows),
      ncols_(ncols),
      rowptr_(std::move(rowptr)),
      colids_(std::move(colids)),
      vals_(std::move(vals)) {
  check_valid();
}

CsrMat CsrMat::from_csc(const CscMat& csc) {
  // CSR(A) has the same arrays as CSC(A^T).
  const CscMat t = csc.transpose();
  CsrMat r(csc.nrows(), csc.ncols());
  r.rowptr_.assign(t.colptr().begin(), t.colptr().end());
  r.colids_.assign(t.rowids().begin(), t.rowids().end());
  r.vals_.assign(t.vals().begin(), t.vals().end());
  return r;
}

CscMat CsrMat::to_csc() const {
  // CSC(A) == transpose of CSC(A^T); reuse CscMat::transpose.
  CscMat as_csc_of_t(ncols_, nrows_,
                     std::vector<Index>(rowptr_.begin(), rowptr_.end()),
                     std::vector<Index>(colids_.begin(), colids_.end()),
                     std::vector<Value>(vals_.begin(), vals_.end()));
  return as_csc_of_t.transpose();
}

CsrMat CsrMat::from_triples(TripleMat triples) {
  return from_csc(CscMat::from_triples(std::move(triples)));
}

void CsrMat::check_valid() const {
  CASP_CHECK(rowptr_.size() == static_cast<std::size_t>(nrows_) + 1);
  CASP_CHECK(rowptr_.front() == 0);
  for (std::size_t i = 0; i < static_cast<std::size_t>(nrows_); ++i)
    CASP_CHECK(rowptr_[i] <= rowptr_[i + 1]);
  CASP_CHECK(rowptr_.back() == static_cast<Index>(colids_.size()));
  CASP_CHECK(colids_.size() == vals_.size());
  for (Index c : colids_) CASP_CHECK(c >= 0 && c < ncols_);
}

CscMat lower_triangle(const CscMat& a) {
  CscMat out = a;
  out.prune([](Index row, Index col, Value) { return row > col; });
  return out;
}

CscMat upper_triangle(const CscMat& a) {
  CscMat out = a;
  out.prune([](Index row, Index col, Value) { return row < col; });
  return out;
}

}  // namespace casp
