// Doubly-Compressed Sparse Column (DCSC) — hypersparse storage.
//
// At high layer counts "the result of local multiplication becomes
// hyper-sparse with many layers" (Sec. V-D): local blocks have nnz << ncols,
// so CSC's O(ncols) colptr array dominates memory and traversal. DCSC
// (Buluc & Gilbert, the format CombBLAS uses for exactly this situation)
// stores only the nonempty columns: jc lists their ids, cp delimits their
// entry ranges. Storage is O(nnz + nzc) instead of O(nnz + ncols).
#pragma once

#include <span>
#include <vector>

#include "kernels/semiring.hpp"
#include "sparse/csc_mat.hpp"

namespace casp {

class DcscMat {
 public:
  DcscMat() : nrows_(0), ncols_(0) { cp_.push_back(0); }

  /// Build from raw DCSC arrays (validated).
  DcscMat(Index nrows, Index ncols, std::vector<Index> jc,
          std::vector<Index> cp, std::vector<Index> ir,
          std::vector<Value> num)
      : nrows_(nrows),
        ncols_(ncols),
        jc_(std::move(jc)),
        cp_(std::move(cp)),
        ir_(std::move(ir)),
        num_(std::move(num)) {
    check_valid();
  }

  /// Compress a CSC matrix (cheap: one pass over colptr).
  static DcscMat from_csc(const CscMat& csc);
  /// Expand back (exact inverse).
  CscMat to_csc() const;

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  Index nnz() const { return cp_.back(); }
  /// Number of nonempty columns ("nzc").
  Index nonempty_cols() const { return static_cast<Index>(jc_.size()); }

  /// Global ids of the nonempty columns, ascending.
  std::span<const Index> col_ids() const { return jc_; }
  /// Entry range of the k-th *nonempty* column.
  std::span<const Index> nonempty_rowids(Index k) const {
    return std::span<const Index>(ir_).subspan(
        static_cast<std::size_t>(cp_[static_cast<std::size_t>(k)]),
        static_cast<std::size_t>(cp_[static_cast<std::size_t>(k) + 1] -
                                 cp_[static_cast<std::size_t>(k)]));
  }
  std::span<const Value> nonempty_vals(Index k) const {
    return std::span<const Value>(num_).subspan(
        static_cast<std::size_t>(cp_[static_cast<std::size_t>(k)]),
        static_cast<std::size_t>(cp_[static_cast<std::size_t>(k) + 1] -
                                 cp_[static_cast<std::size_t>(k)]));
  }

  /// Index of global column j among the nonempty columns, or -1 if empty.
  /// O(log nzc) binary search — the hypersparse replacement for colptr[j].
  Index find_col(Index j) const;

  /// Actual storage bytes: O(nnz + nzc), vs CSC's O(nnz + ncols).
  Bytes storage_bytes() const {
    return static_cast<Bytes>(jc_.size()) * sizeof(Index) +
           static_cast<Bytes>(cp_.size()) * sizeof(Index) +
           static_cast<Bytes>(ir_.size()) * (sizeof(Index) + sizeof(Value));
  }

  void check_valid() const;

  friend bool operator==(const DcscMat& a, const DcscMat& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ && a.jc_ == b.jc_ &&
           a.cp_ == b.cp_ && a.ir_ == b.ir_ && a.num_ == b.num_;
  }

 private:
  Index nrows_;
  Index ncols_;
  std::vector<Index> jc_;  ///< nonempty column ids, ascending
  std::vector<Index> cp_;  ///< entry offsets per nonempty column (nzc+1)
  std::vector<Index> ir_;  ///< row ids
  std::vector<Value> num_; ///< values
};

/// Gustavson SpGEMM with a hypersparse (DCSC) left operand: C = A * B.
/// A's columns are located via binary search over jc instead of colptr
/// indexing, so cost is O(flops * log nzc + nnz(B)) with *no* O(ncols(A))
/// term. Output is returned as ordinary CSC (callers merge it immediately).
template <typename SR = PlusTimes>
CscMat hypersparse_spgemm(const DcscMat& a, const CscMat& b);

/// Fully hypersparse SpGEMM: both operands and the output in DCSC. The
/// column loop visits only B's nonempty columns and the output stores only
/// its nonempty columns, so the whole multiply is O(flops * log nzc(A) +
/// nzc(B)) with no term proportional to any matrix *dimension* — the
/// property that keeps many-layer (hypersparse) local multiplies viable
/// where CSC would pay O(ncols) per stage just for colptr arrays.
template <typename SR = PlusTimes>
DcscMat hypersparse_spgemm_dcsc(const DcscMat& a, const DcscMat& b);

}  // namespace casp
