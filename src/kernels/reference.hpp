// Deliberately simple reference implementations for testing.
//
// Independent of the optimized kernels (std::map accumulation) so a shared
// bug cannot hide: every fast path is validated against these on small
// inputs.
#pragma once

#include "kernels/semiring.hpp"
#include "sparse/csc_mat.hpp"

namespace casp {

/// C = A * B via per-column ordered-map accumulation. O(flops log n) — use
/// on small matrices only.
template <typename SR = PlusTimes>
CscMat reference_multiply(const CscMat& a, const CscMat& b);

/// Sum of same-shaped matrices via map accumulation.
template <typename SR = PlusTimes>
CscMat reference_merge(std::span<const CscMat> pieces);

}  // namespace casp
