#include "kernels/merge.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"

namespace casp {

const char* to_string(MergeKind kind) {
  switch (kind) {
    case MergeKind::kUnsortedHash: return "unsorted-hash-merge";
    case MergeKind::kSortedHeap: return "sorted-heap-merge";
  }
  return "?";
}

namespace {

/// Hash map row -> value, reset between columns via used list.
template <typename SR>
class MergeTable {
 public:
  void require(Index min_capacity) {
    std::uint64_t want =
        next_pow2(static_cast<std::uint64_t>(std::max<Index>(16, 2 * min_capacity)));
    if (want > keys_.size()) {
      keys_.assign(want, -1);
      vals_.resize(want);
      mask_ = want - 1;
      used_.clear();
    }
  }
  void reset() {
    for (std::uint64_t slot : used_) keys_[slot] = -1;
    used_.clear();
  }
  void accumulate(Index row, Value v) {
    std::uint64_t slot =
        (static_cast<std::uint64_t>(row) * 0x9e3779b97f4a7c15ULL) & mask_;
    while (true) {
      if (keys_[slot] == -1) {
        keys_[slot] = row;
        vals_[slot] = v;
        used_.push_back(slot);
        return;
      }
      if (keys_[slot] == row) {
        vals_[slot] = SR::add(vals_[slot], v);
        return;
      }
      slot = (slot + 1) & mask_;
    }
  }
  Index size() const { return static_cast<Index>(used_.size()); }
  void emit(Index* rowids, Value* vals) const {
    for (std::size_t k = 0; k < used_.size(); ++k) {
      rowids[k] = keys_[used_[k]];
      vals[k] = vals_[used_[k]];
    }
  }

 private:
  std::vector<Index> keys_;
  std::vector<Value> vals_;
  std::vector<std::uint64_t> used_;
  std::uint64_t mask_ = 0;
};

}  // namespace

template <typename SR>
CscMat merge_matrices(std::span<const CscConstRef> pieces, MergeKind kind,
                      int threads) {
  CASP_CHECK(!pieces.empty());
  const Index nrows = pieces.front().nrows();
  const Index ncols = pieces.front().ncols();
  for (const CscConstRef& m : pieces)
    CASP_CHECK_MSG(m.nrows() == nrows && m.ncols() == ncols,
                   "merge: shape mismatch");

  // Upper bound per output column: total input entries in that column.
  std::vector<Index> ub_ptr(static_cast<std::size_t>(ncols) + 1, 0);
  for (Index j = 0; j < ncols; ++j) {
    Index ub = 0;
    for (const CscConstRef& m : pieces) ub += m.col_nnz(j);
    ub_ptr[static_cast<std::size_t>(j) + 1] = ub_ptr[static_cast<std::size_t>(j)] + ub;
  }
  std::vector<Index> rowids(static_cast<std::size_t>(ub_ptr.back()));
  std::vector<Value> vals(rowids.size());
  std::vector<Index> counts(static_cast<std::size_t>(ncols), 0);

#if defined(CASP_HAVE_OPENMP)
#pragma omp parallel num_threads(std::max(1, threads))
#else
  (void)threads;
#endif
  {
    MergeTable<SR> table;
    // Per-thread scratch for the sorted-emit (heap) path, reused across all
    // columns this thread processes instead of reallocated per column.
    using HeapItem = std::pair<Index, std::size_t>;  // (row, piece index)
    std::vector<HeapItem> heap;
    std::vector<std::size_t> pos;
#if defined(CASP_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 32)
#endif
    for (Index j = 0; j < ncols; ++j) {
      const Index cap = ub_ptr[static_cast<std::size_t>(j) + 1] -
                        ub_ptr[static_cast<std::size_t>(j)];
      if (cap == 0) continue;
      Index* out_rows = rowids.data() + ub_ptr[static_cast<std::size_t>(j)];
      Value* out_vals = vals.data() + ub_ptr[static_cast<std::size_t>(j)];
      Index cnt = 0;
      if (kind == MergeKind::kUnsortedHash) {
        table.require(cap);
        table.reset();
        for (const CscConstRef& m : pieces) {
          const auto rows = m.col_rowids(j);
          const auto mv = m.col_vals(j);
          for (std::size_t k = 0; k < rows.size(); ++k)
            table.accumulate(rows[k], mv[k]);
        }
        cnt = table.size();
        table.emit(out_rows, out_vals);
      } else {
        // k-way heap merge over sorted input columns (min-heap maintained
        // manually on the hoisted vector).
        heap.clear();
        pos.assign(pieces.size(), 0);
        for (std::size_t s = 0; s < pieces.size(); ++s) {
          if (pieces[s].col_nnz(j) > 0)
            heap.emplace_back(pieces[s].col_rowids(j)[0], s);
        }
        std::make_heap(heap.begin(), heap.end(), std::greater<>{});
        while (!heap.empty()) {
          std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
          const auto [row, s] = heap.back();
          heap.pop_back();
          const Value v = pieces[s].col_vals(j)[pos[s]];
          if (cnt > 0 && out_rows[cnt - 1] == row) {
            out_vals[cnt - 1] = SR::add(out_vals[cnt - 1], v);
          } else {
            out_rows[cnt] = row;
            out_vals[cnt] = v;
            ++cnt;
          }
          if (++pos[s] < static_cast<std::size_t>(pieces[s].col_nnz(j))) {
            heap.emplace_back(pieces[s].col_rowids(j)[pos[s]], s);
            std::push_heap(heap.begin(), heap.end(), std::greater<>{});
          }
        }
      }
      counts[static_cast<std::size_t>(j)] = cnt;
    }
  }

  // Compact.
  std::vector<Index> colptr(static_cast<std::size_t>(ncols) + 1, 0);
  for (Index j = 0; j < ncols; ++j)
    colptr[static_cast<std::size_t>(j) + 1] =
        colptr[static_cast<std::size_t>(j)] + counts[static_cast<std::size_t>(j)];
  std::vector<Index> out_rowids(static_cast<std::size_t>(colptr.back()));
  std::vector<Value> out_vals(out_rowids.size());
  for (Index j = 0; j < ncols; ++j) {
    const auto src = static_cast<std::size_t>(ub_ptr[static_cast<std::size_t>(j)]);
    const auto dst = static_cast<std::size_t>(colptr[static_cast<std::size_t>(j)]);
    const auto cnt = static_cast<std::size_t>(counts[static_cast<std::size_t>(j)]);
    std::copy_n(rowids.begin() + static_cast<std::ptrdiff_t>(src), cnt,
                out_rowids.begin() + static_cast<std::ptrdiff_t>(dst));
    std::copy_n(vals.begin() + static_cast<std::ptrdiff_t>(src), cnt,
                out_vals.begin() + static_cast<std::ptrdiff_t>(dst));
  }
  return CscMat(nrows, ncols, std::move(colptr), std::move(out_rowids),
                std::move(out_vals));
}

template CscMat merge_matrices<PlusTimes>(std::span<const CscConstRef>,
                                          MergeKind, int);
template CscMat merge_matrices<MinPlus>(std::span<const CscConstRef>,
                                        MergeKind, int);
template CscMat merge_matrices<MaxMin>(std::span<const CscConstRef>,
                                       MergeKind, int);
template CscMat merge_matrices<OrAnd>(std::span<const CscConstRef>, MergeKind,
                                      int);

}  // namespace casp
