// Merging partial results — Merge-Layer and Merge-Fiber kernels.
//
// Merging adds entries with equal (row, column) across a collection of
// same-shaped matrices. The paper replaces the prior sorted heap-merge [13]
// with an *unsorted hash merge* that is an order of magnitude faster
// (Table VII) because it neither requires nor produces sorted columns; the
// single final sort happens once, after Merge-Fiber.
#pragma once

#include <span>

#include "kernels/semiring.hpp"
#include "sparse/csc_mat.hpp"
#include "sparse/csc_ref.hpp"

namespace casp {

enum class MergeKind {
  kUnsortedHash,  ///< this paper: hash per column, unsorted in/out
  kSortedHeap,    ///< prior work: k-way heap merge, sorted in/out
};

const char* to_string(MergeKind kind);

/// Merge matrices of identical shape by summing duplicates (over SR::add).
/// kSortedHeap requires every input to have sorted columns.
/// `threads`: OpenMP threads over output columns.
///
/// The single entry point takes non-owning refs; wrap an owned collection
/// with csc_refs(...) — works identically for CscMat vectors and CscView
/// vectors (e.g. the fiber all-to-all buffers, merged zero-copy without
/// deserializing them first).
template <typename SR = PlusTimes>
CscMat merge_matrices(std::span<const CscConstRef> pieces,
                      MergeKind kind = MergeKind::kUnsortedHash,
                      int threads = 1);

}  // namespace casp
