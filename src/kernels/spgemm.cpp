#include "kernels/spgemm.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "sparse/stats.hpp"

namespace casp {

const char* to_string(SpGemmKind kind) {
  switch (kind) {
    case SpGemmKind::kUnsortedHash: return "unsorted-hash";
    case SpGemmKind::kSortedHash: return "sorted-hash";
    case SpGemmKind::kHeap: return "heap";
    case SpGemmKind::kHybrid: return "hybrid";
    case SpGemmKind::kSpa: return "spa";
  }
  return "?";
}

bool produces_sorted(SpGemmKind kind) {
  return kind != SpGemmKind::kUnsortedHash;
}

namespace {

/// Open-addressing hash accumulator keyed by row index. Reused across
/// columns: `reset` clears only the slots the previous column touched.
template <typename SR>
class HashAccumulator {
 public:
  void require(Index min_capacity) {
    std::uint64_t want = next_pow2(static_cast<std::uint64_t>(
        std::max<Index>(16, 2 * min_capacity)));
    if (want > keys_.size()) {
      keys_.assign(want, kEmpty);
      vals_.resize(want);
      mask_ = want - 1;
      used_.clear();
    }
  }

  void reset() {
    for (std::uint64_t slot : used_) keys_[slot] = kEmpty;
    used_.clear();
  }

  void accumulate(Index row, Value contribution) {
    std::uint64_t slot =
        (static_cast<std::uint64_t>(row) * 0x9e3779b97f4a7c15ULL) & mask_;
    while (true) {
      if (keys_[slot] == kEmpty) {
        keys_[slot] = row;
        vals_[slot] = contribution;
        used_.push_back(slot);
        // Guard against an under-sized initial table (a too-small symbolic
        // hint): rehash at 50% load. Emit order is used_'s insertion order,
        // not slot order, so growing never changes the output.
        if (2 * used_.size() > keys_.size()) grow();
        return;
      }
      if (keys_[slot] == row) {
        vals_[slot] = SR::add(vals_[slot], contribution);
        return;
      }
      slot = (slot + 1) & mask_;
    }
  }

  Index size() const { return static_cast<Index>(used_.size()); }

  /// Emit accumulated entries in hash-table order (unsorted).
  void emit(Index* rowids, Value* vals) const {
    for (std::size_t k = 0; k < used_.size(); ++k) {
      rowids[k] = keys_[used_[k]];
      vals[k] = vals_[used_[k]];
    }
  }

 private:
  void grow() {
    std::vector<Index> old_keys = std::move(keys_);
    std::vector<Value> old_vals = std::move(vals_);
    std::vector<std::uint64_t> old_used = std::move(used_);
    const std::uint64_t want = 2 * old_keys.size();
    keys_.assign(want, kEmpty);
    vals_.resize(want);
    used_.clear();
    used_.reserve(old_used.size());
    mask_ = want - 1;
    for (std::uint64_t old_slot : old_used) {
      const Index row = old_keys[old_slot];
      std::uint64_t slot =
          (static_cast<std::uint64_t>(row) * 0x9e3779b97f4a7c15ULL) & mask_;
      while (keys_[slot] != kEmpty) slot = (slot + 1) & mask_;
      keys_[slot] = row;
      vals_[slot] = old_vals[old_slot];
      used_.push_back(slot);
    }
  }

  static constexpr Index kEmpty = -1;
  std::vector<Index> keys_;
  std::vector<Value> vals_;
  std::vector<std::uint64_t> used_;
  std::uint64_t mask_ = 0;
};

/// Dense sparse accumulator (Gilbert-Moler-Schreiber SPA).
template <typename SR>
class SpaAccumulator {
 public:
  explicit SpaAccumulator(Index nrows)
      : stamp_(static_cast<std::size_t>(nrows), -1),
        vals_(static_cast<std::size_t>(nrows)) {}

  void begin_column(Index col) { col_ = col; touched_.clear(); }

  void accumulate(Index row, Value contribution) {
    const auto r = static_cast<std::size_t>(row);
    if (stamp_[r] != col_) {
      stamp_[r] = col_;
      vals_[r] = contribution;
      touched_.push_back(row);
    } else {
      vals_[r] = SR::add(vals_[r], contribution);
    }
  }

  Index size() const { return static_cast<Index>(touched_.size()); }

  /// Emit sorted by row.
  void emit_sorted(Index* rowids, Value* vals) {
    std::sort(touched_.begin(), touched_.end());
    for (std::size_t k = 0; k < touched_.size(); ++k) {
      rowids[k] = touched_[k];
      vals[k] = vals_[static_cast<std::size_t>(touched_[k])];
    }
  }

 private:
  std::vector<Index> stamp_;
  std::vector<Value> vals_;
  std::vector<Index> touched_;
  Index col_ = -1;
};

/// Shared output assembly: callers fill per-column slices of an
/// upper-bound-sized buffer; compact() squeezes out the slack.
struct OutputBuilder {
  template <typename MatA, typename MatB>
  explicit OutputBuilder(const MatA& a, const MatB& b) {
    const std::vector<Index> flops = column_flops(a, b);
    ub_ptr.resize(flops.size() + 1, 0);
    for (std::size_t j = 0; j < flops.size(); ++j)
      ub_ptr[j + 1] = ub_ptr[j] + std::min(flops[j], a.nrows());
    rowids.resize(static_cast<std::size_t>(ub_ptr.back()));
    vals.resize(static_cast<std::size_t>(ub_ptr.back()));
    counts.assign(flops.size(), 0);
  }

  CscMat compact(Index nrows, Index ncols) {
    std::vector<Index> colptr(static_cast<std::size_t>(ncols) + 1, 0);
    for (Index j = 0; j < ncols; ++j)
      colptr[static_cast<std::size_t>(j) + 1] =
          colptr[static_cast<std::size_t>(j)] + counts[static_cast<std::size_t>(j)];
    std::vector<Index> out_rowids(static_cast<std::size_t>(colptr.back()));
    std::vector<Value> out_vals(out_rowids.size());
    for (Index j = 0; j < ncols; ++j) {
      const auto src = static_cast<std::size_t>(ub_ptr[static_cast<std::size_t>(j)]);
      const auto dst = static_cast<std::size_t>(colptr[static_cast<std::size_t>(j)]);
      const auto cnt = static_cast<std::size_t>(counts[static_cast<std::size_t>(j)]);
      std::copy_n(rowids.begin() + static_cast<std::ptrdiff_t>(src), cnt,
                  out_rowids.begin() + static_cast<std::ptrdiff_t>(dst));
      std::copy_n(vals.begin() + static_cast<std::ptrdiff_t>(src), cnt,
                  out_vals.begin() + static_cast<std::ptrdiff_t>(dst));
    }
    return CscMat(nrows, ncols, std::move(colptr), std::move(out_rowids),
                  std::move(out_vals));
  }

  Index* col_rowids(Index j) {
    return rowids.data() + ub_ptr[static_cast<std::size_t>(j)];
  }
  Value* col_vals(Index j) {
    return vals.data() + ub_ptr[static_cast<std::size_t>(j)];
  }
  Index col_capacity(Index j) const {
    return ub_ptr[static_cast<std::size_t>(j) + 1] -
           ub_ptr[static_cast<std::size_t>(j)];
  }

  std::vector<Index> ub_ptr;
  std::vector<Index> rowids;
  std::vector<Value> vals;
  std::vector<Index> counts;
};

/// Per-thread reusable buffer for the sorted-emit path: sorting a column's
/// (row, val) pairs reuses one allocation across all columns a thread
/// processes instead of allocating a fresh vector per column.
using SortScratch = std::vector<std::pair<Index, Value>>;

/// Sort `cnt` (row, val) pairs in place through `scratch`.
inline void sort_column_pairs(Index* rowids, Value* vals, Index cnt,
                              SortScratch& scratch) {
  scratch.resize(static_cast<std::size_t>(cnt));
  for (Index k = 0; k < cnt; ++k)
    scratch[static_cast<std::size_t>(k)] = {rowids[k], vals[k]};
  std::sort(scratch.begin(), scratch.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (Index k = 0; k < cnt; ++k) {
    rowids[k] = scratch[static_cast<std::size_t>(k)].first;
    vals[k] = scratch[static_cast<std::size_t>(k)].second;
  }
}

/// One output column via hash accumulation. Returns entry count.
template <typename SR, typename MatA, typename MatB>
Index hash_column(const MatA& a, const MatB& b, Index j,
                  HashAccumulator<SR>& acc, Index capacity, Index* rowids,
                  Value* vals, bool sort_output, SortScratch& sort_scratch) {
  acc.require(capacity);
  acc.reset();
  const auto brows = b.col_rowids(j);
  const auto bvals = b.col_vals(j);
  for (std::size_t t = 0; t < brows.size(); ++t) {
    const Index i = brows[t];
    const Value bv = bvals[t];
    const auto arows = a.col_rowids(i);
    const auto avals = a.col_vals(i);
    for (std::size_t k = 0; k < arows.size(); ++k)
      acc.accumulate(arows[k], SR::mul(avals[k], bv));
  }
  acc.emit(rowids, vals);
  const Index cnt = acc.size();
  if (sort_output && cnt > 1) sort_column_pairs(rowids, vals, cnt, sort_scratch);
  return cnt;
}

/// One output column via multiway heap merge of sorted A columns.
/// Requires sorted input columns; emits sorted output.
template <typename SR, typename MatA, typename MatB>
Index heap_column(const MatA& a, const MatB& b, Index j, Index* rowids,
                  Value* vals) {
  struct Run {
    std::span<const Index> rows;
    std::span<const Value> vals;
    Value scale;
    std::size_t pos;
  };
  const auto brows = b.col_rowids(j);
  const auto bvals = b.col_vals(j);
  std::vector<Run> runs;
  runs.reserve(brows.size());
  for (std::size_t t = 0; t < brows.size(); ++t) {
    const Index i = brows[t];
    if (a.col_nnz(i) == 0) continue;
    runs.push_back({a.col_rowids(i), a.col_vals(i), bvals[t], 0});
  }
  using HeapItem = std::pair<Index, std::size_t>;  // (row, run index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (std::size_t r = 0; r < runs.size(); ++r)
    heap.emplace(runs[r].rows[0], r);
  Index cnt = 0;
  while (!heap.empty()) {
    const auto [row, r] = heap.top();
    heap.pop();
    Run& run = runs[r];
    const Value contribution = SR::mul(run.vals[run.pos], run.scale);
    if (cnt > 0 && rowids[cnt - 1] == row) {
      vals[cnt - 1] = SR::add(vals[cnt - 1], contribution);
    } else {
      rowids[cnt] = row;
      vals[cnt] = contribution;
      ++cnt;
    }
    if (++run.pos < run.rows.size()) heap.emplace(run.rows[run.pos], r);
  }
  return cnt;
}

enum class ColumnChoice { kHash, kSortedHash, kHeap, kSpa };

template <typename SR, typename MatA, typename MatB>
CscMat run_spgemm(const MatA& a, const MatB& b, SpGemmKind kind, int threads,
                  std::span<const Index> col_nnz_hints) {
  CASP_CHECK_MSG(a.ncols() == b.nrows(),
                 "local_spgemm: inner dimension mismatch " << a.ncols()
                                                           << " vs " << b.nrows());
  CASP_CHECK_MSG(col_nnz_hints.empty() ||
                     static_cast<Index>(col_nnz_hints.size()) == b.ncols(),
                 "local_spgemm: col_nnz_hints has " << col_nnz_hints.size()
                                                    << " entries for "
                                                    << b.ncols() << " columns");
  OutputBuilder out(a, b);
  const Index ncols = b.ncols();

  // Per-column flop counts for the hybrid heuristic (recomputed cheaply —
  // OutputBuilder already has the sum as capacities).
#if defined(CASP_HAVE_OPENMP)
#pragma omp parallel num_threads(std::max(1, threads))
#else
  (void)threads;
#endif
  {
    HashAccumulator<SR> hash_acc;
    SortScratch sort_scratch;
    std::unique_ptr<SpaAccumulator<SR>> spa;
    if (kind == SpGemmKind::kSpa)
      spa = std::make_unique<SpaAccumulator<SR>>(a.nrows());

#if defined(CASP_HAVE_OPENMP)
#pragma omp for schedule(dynamic, 16)
#endif
    for (Index j = 0; j < ncols; ++j) {
      const Index cap = out.col_capacity(j);
      if (cap == 0) {
        out.counts[static_cast<std::size_t>(j)] = 0;
        continue;
      }
      Index cnt = 0;
      // The symbolic hint bounds the merged column's nnz across all stages,
      // so it also bounds this stage's contribution — size the hash table
      // from it when it beats the flops bound (clamped to >= 1 so a column
      // with flops but a zero hint still gets a table; CASP checks would
      // have caught a genuinely wrong symbolic count upstream).
      const Index hash_cap =
          col_nnz_hints.empty()
              ? cap
              : std::min(cap, std::max<Index>(
                                  col_nnz_hints[static_cast<std::size_t>(j)],
                                  Index{1}));
      switch (kind) {
        case SpGemmKind::kUnsortedHash:
          cnt = hash_column<SR>(a, b, j, hash_acc, hash_cap, out.col_rowids(j),
                                out.col_vals(j), /*sort_output=*/false,
                                sort_scratch);
          break;
        case SpGemmKind::kSortedHash:
          cnt = hash_column<SR>(a, b, j, hash_acc, hash_cap, out.col_rowids(j),
                                out.col_vals(j), /*sort_output=*/true,
                                sort_scratch);
          break;
        case SpGemmKind::kHeap:
          cnt = heap_column<SR>(a, b, j, out.col_rowids(j), out.col_vals(j));
          break;
        case SpGemmKind::kHybrid: {
          // Nagasaka et al. [25]: heap wins when the column has few input
          // runs and little compression; hash wins otherwise. Proxy: run
          // heap for short columns.
          const Index k_runs = b.col_nnz(j);
          if (k_runs <= 8 && cap <= 256) {
            cnt = heap_column<SR>(a, b, j, out.col_rowids(j), out.col_vals(j));
          } else {
            cnt = hash_column<SR>(a, b, j, hash_acc, hash_cap,
                                  out.col_rowids(j), out.col_vals(j),
                                  /*sort_output=*/true, sort_scratch);
          }
          break;
        }
        case SpGemmKind::kSpa: {
          spa->begin_column(j);
          const auto brows = b.col_rowids(j);
          const auto bvals = b.col_vals(j);
          for (std::size_t t = 0; t < brows.size(); ++t) {
            const Index i = brows[t];
            const Value bv = bvals[t];
            const auto arows = a.col_rowids(i);
            const auto avals = a.col_vals(i);
            for (std::size_t k = 0; k < arows.size(); ++k)
              spa->accumulate(arows[k], SR::mul(avals[k], bv));
          }
          cnt = spa->size();
          spa->emit_sorted(out.col_rowids(j), out.col_vals(j));
          break;
        }
      }
      out.counts[static_cast<std::size_t>(j)] = cnt;
    }
  }
  return out.compact(a.nrows(), ncols);
}

}  // namespace

template <typename SR>
CscMat local_spgemm(const CscConstRef& a, const CscConstRef& b,
                    SpGemmKind kind, int threads,
                    std::span<const Index> col_nnz_hints) {
  return run_spgemm<SR>(a, b, kind, threads, col_nnz_hints);
}

template <typename SR>
CscMat local_spgemm_masked(const CscConstRef& a, const CscConstRef& b,
                           const CscConstRef& mask) {
  CASP_CHECK_MSG(a.ncols() == b.nrows(),
                 "local_spgemm_masked: inner dimension mismatch");
  CASP_CHECK_MSG(mask.nrows() == a.nrows() && mask.ncols() == b.ncols(),
                 "local_spgemm_masked: mask shape mismatch");
  // Dense accumulator restricted to the mask's positions: per column,
  // stamp the allowed rows, accumulate only stamped ones, emit in mask
  // order (so the output inherits the mask's sortedness).
  std::vector<Index> stamp(static_cast<std::size_t>(a.nrows()), -1);
  std::vector<Value> acc(static_cast<std::size_t>(a.nrows()));
  std::vector<bool> touched(static_cast<std::size_t>(a.nrows()), false);

  std::vector<Index> colptr(static_cast<std::size_t>(b.ncols()) + 1, 0);
  std::vector<Index> rowids;
  std::vector<Value> vals;
  rowids.reserve(static_cast<std::size_t>(mask.nnz()));
  vals.reserve(static_cast<std::size_t>(mask.nnz()));

  for (Index j = 0; j < b.ncols(); ++j) {
    const auto allowed = mask.col_rowids(j);
    for (Index r : allowed) {
      stamp[static_cast<std::size_t>(r)] = j;
      touched[static_cast<std::size_t>(r)] = false;
    }
    const auto brows = b.col_rowids(j);
    const auto bvals = b.col_vals(j);
    for (std::size_t t = 0; t < brows.size(); ++t) {
      const Index i = brows[t];
      const Value bv = bvals[t];
      const auto arows = a.col_rowids(i);
      const auto avals = a.col_vals(i);
      for (std::size_t k = 0; k < arows.size(); ++k) {
        const auto r = static_cast<std::size_t>(arows[k]);
        if (stamp[r] != j) continue;  // masked out
        const Value contribution = SR::mul(avals[k], bv);
        if (!touched[r]) {
          touched[r] = true;
          acc[r] = contribution;
        } else {
          acc[r] = SR::add(acc[r], contribution);
        }
      }
    }
    for (Index r : allowed) {
      if (touched[static_cast<std::size_t>(r)]) {
        rowids.push_back(r);
        vals.push_back(acc[static_cast<std::size_t>(r)]);
      }
    }
    colptr[static_cast<std::size_t>(j) + 1] = static_cast<Index>(rowids.size());
  }
  return CscMat(a.nrows(), b.ncols(), std::move(colptr), std::move(rowids),
                std::move(vals));
}

template CscMat local_spgemm_masked<PlusTimes>(const CscConstRef&,
                                               const CscConstRef&,
                                               const CscConstRef&);
template CscMat local_spgemm_masked<MinPlus>(const CscConstRef&,
                                             const CscConstRef&,
                                             const CscConstRef&);
template CscMat local_spgemm_masked<MaxMin>(const CscConstRef&,
                                            const CscConstRef&,
                                            const CscConstRef&);
template CscMat local_spgemm_masked<OrAnd>(const CscConstRef&,
                                           const CscConstRef&,
                                           const CscConstRef&);

template CscMat local_spgemm<PlusTimes>(const CscConstRef&,
                                        const CscConstRef&, SpGemmKind, int,
                                        std::span<const Index>);
template CscMat local_spgemm<MinPlus>(const CscConstRef&, const CscConstRef&,
                                      SpGemmKind, int, std::span<const Index>);
template CscMat local_spgemm<MaxMin>(const CscConstRef&, const CscConstRef&,
                                     SpGemmKind, int, std::span<const Index>);
template CscMat local_spgemm<OrAnd>(const CscConstRef&, const CscConstRef&,
                                    SpGemmKind, int, std::span<const Index>);

}  // namespace casp
