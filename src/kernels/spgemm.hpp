// Local (in-process) SpGEMM kernels — Gustavson column algorithm with
// pluggable accumulators (Sec. IV-D).
//
// The paper's optimization: Local-Multiply and Merge-Layer outputs do not
// need sorted columns because only the final Merge-Fiber result is handed
// to the application, so the *unsorted hash* kernel skips all intermediate
// sorting. The heap and hybrid kernels reproduce the prior state of the art
// ([13] and [25]) for the Fig. 15 / Table VII comparisons.
#pragma once

#include <span>

#include "kernels/semiring.hpp"
#include "sparse/csc_mat.hpp"
#include "sparse/csc_ref.hpp"

namespace casp {

enum class SpGemmKind {
  kUnsortedHash,  ///< this paper's Local-Multiply kernel: hash, no sorting
  kSortedHash,    ///< hash accumulation + per-column sort
  kHeap,          ///< multiway heap merge of scaled A-columns (sorted output)
  kHybrid,        ///< per-column heap-or-hash by compression heuristic,
                  ///< sorted output (prior state of the art, Nagasaka et al.)
  kSpa,           ///< dense sparse-accumulator (sorted output)
};

const char* to_string(SpGemmKind kind);

/// Whether a kernel's output has sorted columns.
bool produces_sorted(SpGemmKind kind);

/// C = A * B over semiring SR. Requires a.ncols() == b.nrows(). Input
/// columns may be unsorted for the hash/spa kernels; the heap and hybrid
/// kernels require sorted inputs (they merge sorted runs).
/// `threads`: OpenMP threads to parallelize over output columns.
///
/// Operands are non-owning refs, implicitly convertible from an owned
/// CscMat or a payload-borrowing CscView — the one entry point serves both
/// the owned and the zero-copy (wire buffers read in place) paths.
///
/// `col_nnz_hints`, when non-empty (length b.ncols()), gives per-output-
/// column nnz upper bounds from a prior symbolic pass
/// (SymbolicResult::col_nnz): the hash accumulators size their tables from
/// min(flops bound, hint) up front instead of growing from the flops upper
/// bound — the hint is a sum over stages, so it always covers one stage's
/// column. Ignored by the heap/spa accumulators.
template <typename SR = PlusTimes>
CscMat local_spgemm(const CscConstRef& a, const CscConstRef& b,
                    SpGemmKind kind = SpGemmKind::kUnsortedHash,
                    int threads = 1,
                    std::span<const Index> col_nnz_hints = {});

/// Masked SpGEMM: C = (A * B) .* pattern(mask). Only entries whose
/// (row, col) position is nonzero in `mask` are accumulated, so the
/// intermediate never exceeds nnz(mask) — the optimization masked
/// triangle counting [3] relies on (the mask there is the adjacency
/// itself). mask must have sorted columns and the shape of the product.
/// Output columns are sorted in mask order.
template <typename SR = PlusTimes>
CscMat local_spgemm_masked(const CscConstRef& a, const CscConstRef& b,
                           const CscConstRef& mask);

}  // namespace casp
