// Symbolic local SpGEMM: count output nonzeros without computing values.
//
// LocalSymbolic in Algorithm 3. Much cheaper than Local-Multiply (no value
// arithmetic, no output materialization); Symbolic3D calls it once per
// SUMMA stage to compute the per-process unmerged-output nnz that drives
// the batch count b (Eq. 2 / Alg. 3 line 12).
#pragma once

#include <vector>

#include "sparse/csc_ref.hpp"

namespace casp {

/// Number of nonzeros in each column of A*B after merging duplicates
/// within the column. Hash-based; inputs may be unsorted. Operands are
/// non-owning refs (implicitly convertible from CscMat or CscView).
std::vector<Index> symbolic_column_nnz(const CscConstRef& a,
                                       const CscConstRef& b);

/// Total nnz(A*B) (merged). Equals the sum of symbolic_column_nnz.
Index symbolic_nnz(const CscConstRef& a, const CscConstRef& b);

}  // namespace casp
