// Symbolic local SpGEMM: count output nonzeros without computing values.
//
// LocalSymbolic in Algorithm 3. Much cheaper than Local-Multiply (no value
// arithmetic, no output materialization); Symbolic3D calls it once per
// SUMMA stage to compute the per-process unmerged-output nnz that drives
// the batch count b (Eq. 2 / Alg. 3 line 12).
#pragma once

#include <vector>

#include "sparse/csc_mat.hpp"
#include "sparse/csc_view.hpp"

namespace casp {

/// Number of nonzeros in each column of A*B after merging duplicates
/// within the column. Hash-based; inputs may be unsorted. Instantiated for
/// CscMat and CscView operands (definitions in symbolic.cpp).
template <typename MatA, typename MatB>
std::vector<Index> symbolic_column_nnz(const MatA& a, const MatB& b);

/// Total nnz(A*B) (merged). Equals the sum of symbolic_column_nnz.
template <typename MatA, typename MatB>
Index symbolic_nnz(const MatA& a, const MatB& b);

}  // namespace casp
