#include "kernels/reference.hpp"

#include <map>
#include <vector>

#include "common/error.hpp"

namespace casp {

template <typename SR>
CscMat reference_multiply(const CscMat& a, const CscMat& b) {
  CASP_CHECK(a.ncols() == b.nrows());
  std::vector<Index> colptr(static_cast<std::size_t>(b.ncols()) + 1, 0);
  std::vector<Index> rowids;
  std::vector<Value> vals;
  for (Index j = 0; j < b.ncols(); ++j) {
    std::map<Index, Value> acc;
    const auto brows = b.col_rowids(j);
    const auto bvals = b.col_vals(j);
    for (std::size_t t = 0; t < brows.size(); ++t) {
      const Index i = brows[t];
      const auto arows = a.col_rowids(i);
      const auto avals = a.col_vals(i);
      for (std::size_t k = 0; k < arows.size(); ++k) {
        const Value contribution = SR::mul(avals[k], bvals[t]);
        auto [it, inserted] = acc.emplace(arows[k], contribution);
        if (!inserted) it->second = SR::add(it->second, contribution);
      }
    }
    for (const auto& [row, v] : acc) {
      rowids.push_back(row);
      vals.push_back(v);
    }
    colptr[static_cast<std::size_t>(j) + 1] = static_cast<Index>(rowids.size());
  }
  return CscMat(a.nrows(), b.ncols(), std::move(colptr), std::move(rowids),
                std::move(vals));
}

template <typename SR>
CscMat reference_merge(std::span<const CscMat> pieces) {
  CASP_CHECK(!pieces.empty());
  const Index nrows = pieces.front().nrows();
  const Index ncols = pieces.front().ncols();
  std::vector<Index> colptr(static_cast<std::size_t>(ncols) + 1, 0);
  std::vector<Index> rowids;
  std::vector<Value> vals;
  for (Index j = 0; j < ncols; ++j) {
    std::map<Index, Value> acc;
    for (const CscMat& m : pieces) {
      CASP_CHECK(m.nrows() == nrows && m.ncols() == ncols);
      const auto rows = m.col_rowids(j);
      const auto mv = m.col_vals(j);
      for (std::size_t k = 0; k < rows.size(); ++k) {
        auto [it, inserted] = acc.emplace(rows[k], mv[k]);
        if (!inserted) it->second = SR::add(it->second, mv[k]);
      }
    }
    for (const auto& [row, v] : acc) {
      rowids.push_back(row);
      vals.push_back(v);
    }
    colptr[static_cast<std::size_t>(j) + 1] = static_cast<Index>(rowids.size());
  }
  return CscMat(nrows, ncols, std::move(colptr), std::move(rowids),
                std::move(vals));
}

template CscMat reference_multiply<PlusTimes>(const CscMat&, const CscMat&);
template CscMat reference_multiply<MinPlus>(const CscMat&, const CscMat&);
template CscMat reference_multiply<MaxMin>(const CscMat&, const CscMat&);
template CscMat reference_multiply<OrAnd>(const CscMat&, const CscMat&);

template CscMat reference_merge<PlusTimes>(std::span<const CscMat>);
template CscMat reference_merge<MinPlus>(std::span<const CscMat>);
template CscMat reference_merge<MaxMin>(std::span<const CscMat>);
template CscMat reference_merge<OrAnd>(std::span<const CscMat>);

}  // namespace casp
