// Semiring abstraction.
//
// The paper notes (Sec. II-A) that the algorithms work over an arbitrary
// semiring because nothing Strassen-like is used. Kernels are templated on
// a static semiring policy; the library explicitly instantiates the four
// below (plus-times for numerics, min-plus for shortest paths, max-min for
// bottleneck paths, or-and for boolean reachability).
#pragma once

#include <algorithm>
#include <limits>

#include "common/types.hpp"

namespace casp {

/// Classic arithmetic: C(i,j) = sum_k A(i,k) * B(k,j).
struct PlusTimes {
  static constexpr Value zero() { return 0.0; }
  static Value add(Value a, Value b) { return a + b; }
  static Value mul(Value a, Value b) { return a * b; }
};

/// Tropical semiring: C(i,j) = min_k A(i,k) + B(k,j).
struct MinPlus {
  static constexpr Value zero() { return std::numeric_limits<Value>::infinity(); }
  static Value add(Value a, Value b) { return std::min(a, b); }
  static Value mul(Value a, Value b) { return a + b; }
};

/// Bottleneck semiring: C(i,j) = max_k min(A(i,k), B(k,j)).
struct MaxMin {
  static constexpr Value zero() { return -std::numeric_limits<Value>::infinity(); }
  static Value add(Value a, Value b) { return std::max(a, b); }
  static Value mul(Value a, Value b) { return std::min(a, b); }
};

/// Boolean reachability on {0.0, 1.0}.
struct OrAnd {
  static constexpr Value zero() { return 0.0; }
  static Value add(Value a, Value b) { return (a != 0.0 || b != 0.0) ? 1.0 : 0.0; }
  static Value mul(Value a, Value b) { return (a != 0.0 && b != 0.0) ? 1.0 : 0.0; }
};

}  // namespace casp
