#include "kernels/symbolic.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/math.hpp"
#include "sparse/stats.hpp"

namespace casp {

namespace {
/// Insert-only hash set of row ids, reset between columns via used list.
class RowSet {
 public:
  void require(Index min_capacity) {
    std::uint64_t want =
        next_pow2(static_cast<std::uint64_t>(std::max<Index>(16, 2 * min_capacity)));
    if (want > keys_.size()) {
      keys_.assign(want, -1);
      mask_ = want - 1;
      used_.clear();
    }
  }
  void reset() {
    for (std::uint64_t slot : used_) keys_[slot] = -1;
    used_.clear();
  }
  /// Returns true if the row was newly inserted.
  bool insert(Index row) {
    std::uint64_t slot =
        (static_cast<std::uint64_t>(row) * 0x9e3779b97f4a7c15ULL) & mask_;
    while (true) {
      if (keys_[slot] == -1) {
        keys_[slot] = row;
        used_.push_back(slot);
        return true;
      }
      if (keys_[slot] == row) return false;
      slot = (slot + 1) & mask_;
    }
  }

 private:
  std::vector<Index> keys_;
  std::vector<std::uint64_t> used_;
  std::uint64_t mask_ = 0;
};
}  // namespace

std::vector<Index> symbolic_column_nnz(const CscConstRef& a,
                                       const CscConstRef& b) {
  CASP_CHECK_MSG(a.ncols() == b.nrows(), "symbolic: inner dimension mismatch");
  const std::vector<Index> flops = column_flops(a, b);
  std::vector<Index> nnz(static_cast<std::size_t>(b.ncols()), 0);
  RowSet set;
  for (Index j = 0; j < b.ncols(); ++j) {
    const Index cap = std::min(flops[static_cast<std::size_t>(j)], a.nrows());
    if (cap == 0) continue;
    set.require(cap);
    set.reset();
    Index cnt = 0;
    for (Index i : b.col_rowids(j)) {
      for (Index r : a.col_rowids(i)) {
        if (set.insert(r)) ++cnt;
      }
    }
    nnz[static_cast<std::size_t>(j)] = cnt;
  }
  return nnz;
}

Index symbolic_nnz(const CscConstRef& a, const CscConstRef& b) {
  const std::vector<Index> per_col = symbolic_column_nnz(a, b);
  return std::accumulate(per_col.begin(), per_col.end(), Index{0});
}

}  // namespace casp
