// RunReport: the machine-readable aggregation of a virtual job's recorders.
//
// build_report folds the per-rank Recorders of a vmpi::RunResult into one
// document: per-phase message/byte totals and per-rank maxima (identical to
// TrafficStats' Table II accounting — the report is a *view* of the same
// ledger, never a re-count), per-phase rank×rank traffic matrices, step
// timings, named counters, and memory high-water marks. Serialized as JSON
// ("casp.run_report.v1"); the deterministic subset (counts, matrices,
// counters — no timings) is byte-identical across repeated runs of the same
// program, which is what the golden tests compare.
//
// chrome_trace_string renders all ranks' timeline spans as a Chrome
// trace-event document (one tid per rank) loadable in chrome://tracing or
// Perfetto. Span events are emitted per rank in recording order; RAII
// spans guarantee paired B/E events and nondecreasing timestamps per tid.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/json.hpp"
#include "vmpi/runtime.hpp"

namespace casp::obs {

/// Aggregated per-phase entry: traffic is summed/maxed over ranks, timing
/// over the ranks' accumulators for the same name (phase names and span
/// names coincide for communication steps via PhaseSpan).
struct PhaseEntry {
  vmpi::PhaseTraffic total;  ///< sum over ranks (Table II totals)
  vmpi::PhaseTraffic max;    ///< max over ranks (critical path)
  double seconds_sum = 0.0;
  double seconds_max = 0.0;
};

/// Dense rank×rank matrix for one phase, row-major: entry (src, dst) is the
/// traffic rank `src` sent to rank `dst`. Row sums reproduce the per-rank
/// phase totals exactly (charged by the same record_send call).
struct TrafficMatrix {
  int ranks = 0;
  std::vector<std::uint64_t> messages;
  std::vector<std::uint64_t> bytes;    ///< logical (Table II) bytes
  std::vector<std::uint64_t> shipped;  ///< wire bytes; == bytes unless the
                                       ///< sparse exchange elided some

  std::uint64_t& msg_at(int src, int dst) {
    return messages[static_cast<std::size_t>(src) *
                        static_cast<std::size_t>(ranks) +
                    static_cast<std::size_t>(dst)];
  }
  std::uint64_t& bytes_at(int src, int dst) {
    return bytes[static_cast<std::size_t>(src) *
                     static_cast<std::size_t>(ranks) +
                 static_cast<std::size_t>(dst)];
  }
  std::uint64_t& shipped_at(int src, int dst) {
    return shipped[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(ranks) +
                   static_cast<std::size_t>(dst)];
  }
};

/// Recovery history of a supervised run (vmpi::run_supervised): how many
/// relaunches happened, what killed each failed attempt, which checkpoint
/// generation the job fast-forwarded from, and the wall-clock cost of the
/// failed attempts. Serialized under the "recovery" key in to_json() only —
/// wasted_seconds is timing and the failure kinds carry free text, so the
/// deterministic subset excludes it.
struct RecoveryReport {
  int restarts = 0;
  int max_restarts = 0;
  std::vector<std::string> failure_kinds;  ///< one per relaunched attempt
  /// Max over ranks of the checkpoint generation resumed on the final
  /// attempt; -1 when the job restarted cold (no valid snapshot).
  std::int64_t resumed_generation = -1;
  double wasted_seconds = 0.0;
  /// Microseconds *measured* asleep before each relaunch (wall clock, so
  /// to_json() only). One entry per restart, zero when backoff is disabled.
  std::vector<std::int64_t> backoff_us;
  /// The *planned* sleep per relaunch: the deterministic bounded-exponential
  /// ladder min(base << k, cap) per SupervisorOptions::restart_backoff_*.
  /// Same length as backoff_us; this half of the backoff evidence is a pure
  /// function of the attempt index, so it belongs to the deterministic
  /// subset (JobReport::deterministic_json).
  std::vector<std::int64_t> backoff_plan_us;
  /// Degraded-grid recovery (svc elastic jobs): the grid shape before the
  /// first shrink and after the last, plus the pool ranks declared
  /// permanently dead. degraded_to_ranks == 0 <=> the job never shrank.
  int degraded_from_ranks = 0;
  int degraded_from_layers = 0;
  int degraded_to_ranks = 0;
  int degraded_to_layers = 0;
  std::vector<int> dead_ranks;
  /// Grid regrowth (svc elastic jobs with membership enabled): the shape the
  /// job was paused at and the larger shape it resumed on after probationary
  /// ranks rejoined. regrown_to_ranks == 0 <=> the job never regrew.
  int regrown_from_ranks = 0;
  int regrown_from_layers = 0;
  int regrown_to_ranks = 0;
  int regrown_to_layers = 0;
  /// Pool ranks that passed probation and were folded back into this job's
  /// grid at the regrow boundary.
  std::vector<int> rejoined_ranks;
};

struct RunReport {
  int ranks = 0;
  double wall_seconds = 0.0;
  std::map<std::string, PhaseEntry> phases;
  std::map<std::string, TrafficMatrix> matrices;
  /// Merged named counters (rank 0 wins on conflicts; SPMD counters are
  /// identical across ranks anyway).
  std::map<std::string, std::int64_t> counters;
  std::vector<Bytes> peak_bytes_per_rank;
  Bytes peak_bytes_max = 0;
  /// Present when the job failed and vmpi::run captured the failure
  /// (RunOptions::capture_failure). Serialized in to_json() only — failures
  /// carry free-text and are not part of the deterministic subset.
  std::optional<vmpi::FailureReport> failure;
  /// Present when the job ran under vmpi::run_supervised (see
  /// build_report(SupervisedResult)). to_json() only, like `failure`.
  std::optional<RecoveryReport> recovery;

  /// Full document, including timings and memory.
  Json to_json() const;
  /// Only the run-deterministic fields (phase counts, matrices, counters);
  /// two runs of the same program serialize byte-identically.
  Json deterministic_json() const;
};

RunReport build_report(const vmpi::RunResult& result);

/// Report for a supervised run: the final attempt's report plus a
/// RecoveryReport under `recovery` (restart count, per-attempt failure
/// kinds, the resumed checkpoint generation read from the ranks'
/// `ckpt.resumed_generation` counters, wasted seconds).
RunReport build_report(const vmpi::SupervisedResult& supervised);

/// Pretty-printed report JSON to `path`; throws std::runtime_error on I/O
/// failure.
void write_report_json(const RunReport& report, const std::string& path);

/// Chrome trace-event JSON ({"traceEvents": [...]}, ts in microseconds,
/// pid 0, tid = rank) of every rank's spans, counter samples, and
/// thread-name metadata.
std::string chrome_trace_string(const vmpi::RunResult& result);
void write_chrome_trace(const vmpi::RunResult& result,
                        const std::string& path);

}  // namespace casp::obs
