#include "obs/report.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace casp::obs {

namespace {

constexpr const char* kSchema = "casp.run_report.v1";

TrafficMatrix& ensure_matrix(std::map<std::string, TrafficMatrix>& matrices,
                             const std::string& phase, int ranks) {
  TrafficMatrix& m = matrices[phase];
  if (m.ranks == 0) {
    m.ranks = ranks;
    const std::size_t n =
        static_cast<std::size_t>(ranks) * static_cast<std::size_t>(ranks);
    m.messages.assign(n, 0);
    m.bytes.assign(n, 0);
    m.shipped.assign(n, 0);
  }
  return m;
}

Json matrix_rows(const std::vector<std::uint64_t>& flat, int ranks) {
  Json rows = Json::array();
  for (int s = 0; s < ranks; ++s) {
    Json row = Json::array();
    for (int d = 0; d < ranks; ++d)
      row.push_back(flat[static_cast<std::size_t>(s) *
                             static_cast<std::size_t>(ranks) +
                         static_cast<std::size_t>(d)]);
    rows.push_back(std::move(row));
  }
  return rows;
}

Json phases_json(const RunReport& report, bool with_times) {
  Json phases = Json::object();
  for (const auto& [name, e] : report.phases) {
    Json p = Json::object();
    p.set("messages", e.total.messages);
    p.set("bytes", static_cast<std::uint64_t>(e.total.bytes));
    p.set("shipped_bytes", static_cast<std::uint64_t>(e.total.shipped));
    p.set("max_messages", e.max.messages);
    p.set("max_bytes", static_cast<std::uint64_t>(e.max.bytes));
    p.set("max_shipped_bytes", static_cast<std::uint64_t>(e.max.shipped));
    if (with_times) {
      p.set("seconds_sum", e.seconds_sum);
      p.set("seconds_max", e.seconds_max);
    }
    phases.set(name, std::move(p));
  }
  return phases;
}

Json matrices_json(const RunReport& report) {
  Json out = Json::object();
  for (const auto& [name, m] : report.matrices) {
    Json entry = Json::object();
    entry.set("ranks", m.ranks);
    entry.set("messages", matrix_rows(m.messages, m.ranks));
    entry.set("bytes", matrix_rows(m.bytes, m.ranks));
    entry.set("shipped_bytes", matrix_rows(m.shipped, m.ranks));
    out.set(name, std::move(entry));
  }
  return out;
}

Json counters_json(const RunReport& report) {
  Json out = Json::object();
  for (const auto& [name, v] : report.counters) out.set(name, v);
  return out;
}

}  // namespace

RunReport build_report(const vmpi::RunResult& result) {
  RunReport report;
  report.ranks = result.size;
  report.wall_seconds = result.wall_seconds;

  for (const vmpi::TrafficStats& stats : result.traffic) {
    for (const auto& [phase, t] : stats.per_phase()) {
      PhaseEntry& e = report.phases[phase];
      e.total += t;
      e.max.messages = std::max(e.max.messages, t.messages);
      e.max.bytes = std::max(e.max.bytes, t.bytes);
      e.max.shipped = std::max(e.max.shipped, t.shipped);
    }
  }
  for (const TimeAccumulator& acc : result.times) {
    for (const auto& [name, seconds] : acc.all()) {
      PhaseEntry& e = report.phases[name];
      e.seconds_sum += seconds;
      e.seconds_max = std::max(e.seconds_max, seconds);
    }
  }
  for (std::size_t r = 0; r < result.traffic.size(); ++r) {
    for (const auto& [phase, dests] : result.traffic[r].per_dest()) {
      TrafficMatrix& m = ensure_matrix(report.matrices, phase, result.size);
      for (const auto& [dst, t] : dests) {
        m.msg_at(static_cast<int>(r), dst) += t.messages;
        m.bytes_at(static_cast<int>(r), dst) +=
            static_cast<std::uint64_t>(t.bytes);
        m.shipped_at(static_cast<int>(r), dst) +=
            static_cast<std::uint64_t>(t.shipped);
      }
    }
  }
  for (const obs::Recorder& rec : result.recorders) {
    for (const auto& [name, v] : rec.counters())
      report.counters.emplace(name, v);
    report.peak_bytes_per_rank.push_back(rec.peak_bytes());
    report.peak_bytes_max = std::max(report.peak_bytes_max, rec.peak_bytes());
  }
  report.failure = result.failure;
  return report;
}

RunReport build_report(const vmpi::SupervisedResult& supervised) {
  RunReport report = build_report(supervised.result);
  RecoveryReport rec;
  rec.restarts = supervised.restarts;
  rec.max_restarts = supervised.max_restarts;
  for (const vmpi::FailureReport& f : supervised.recovered_failures)
    rec.failure_kinds.push_back(f.kind);
  rec.wasted_seconds = supervised.wasted_seconds;
  rec.backoff_us = supervised.backoff_us;
  rec.backoff_plan_us = supervised.backoff_plan_us;
  for (const obs::Recorder& r : supervised.result.recorders) {
    const auto it = r.counters().find("ckpt.resumed_generation");
    if (it != r.counters().end())
      rec.resumed_generation = std::max(rec.resumed_generation, it->second);
  }
  report.recovery = rec;
  return report;
}

Json RunReport::to_json() const {
  Json doc = Json::object();
  doc.set("schema", kSchema);
  doc.set("ranks", ranks);
  doc.set("wall_seconds", wall_seconds);
  doc.set("phases", phases_json(*this, /*with_times=*/true));
  doc.set("counters", counters_json(*this));
  Json mem = Json::object();
  mem.set("peak_bytes_max", static_cast<std::uint64_t>(peak_bytes_max));
  Json per_rank = Json::array();
  for (const Bytes b : peak_bytes_per_rank)
    per_rank.push_back(static_cast<std::uint64_t>(b));
  mem.set("peak_bytes_per_rank", std::move(per_rank));
  doc.set("memory", std::move(mem));
  doc.set("traffic_matrix", matrices_json(*this));
  if (failure.has_value()) {
    Json f = Json::object();
    f.set("kind", failure->kind);
    f.set("rank", failure->rank);
    f.set("phase", failure->phase);
    f.set("what", failure->what);
    doc.set("failure", std::move(f));
  }
  if (recovery.has_value()) {
    Json r = Json::object();
    r.set("restarts", recovery->restarts);
    r.set("max_restarts", recovery->max_restarts);
    Json kinds = Json::array();
    for (const std::string& k : recovery->failure_kinds) kinds.push_back(k);
    r.set("failure_kinds", std::move(kinds));
    r.set("resumed_generation",
          static_cast<std::int64_t>(recovery->resumed_generation));
    r.set("wasted_seconds", recovery->wasted_seconds);
    Json backoff = Json::array();
    for (const std::int64_t us : recovery->backoff_us) backoff.push_back(us);
    r.set("backoff_us", std::move(backoff));
    Json plan = Json::array();
    for (const std::int64_t us : recovery->backoff_plan_us)
      plan.push_back(us);
    r.set("backoff_plan_us", std::move(plan));
    if (recovery->degraded_to_ranks > 0) {
      Json d = Json::object();
      d.set("from_ranks", recovery->degraded_from_ranks);
      d.set("from_layers", recovery->degraded_from_layers);
      d.set("to_ranks", recovery->degraded_to_ranks);
      d.set("to_layers", recovery->degraded_to_layers);
      Json dead = Json::array();
      for (const int dr : recovery->dead_ranks) dead.push_back(dr);
      d.set("dead_ranks", std::move(dead));
      r.set("degraded", std::move(d));
    }
    if (recovery->regrown_to_ranks > 0) {
      Json g = Json::object();
      g.set("from_ranks", recovery->regrown_from_ranks);
      g.set("from_layers", recovery->regrown_from_layers);
      g.set("to_ranks", recovery->regrown_to_ranks);
      g.set("to_layers", recovery->regrown_to_layers);
      Json rj = Json::array();
      for (const int rr : recovery->rejoined_ranks) rj.push_back(rr);
      g.set("rejoined_ranks", std::move(rj));
      r.set("regrown", std::move(g));
    }
    doc.set("recovery", std::move(r));
  }
  return doc;
}

Json RunReport::deterministic_json() const {
  Json doc = Json::object();
  doc.set("schema", kSchema);
  doc.set("ranks", ranks);
  doc.set("phases", phases_json(*this, /*with_times=*/false));
  doc.set("counters", counters_json(*this));
  doc.set("traffic_matrix", matrices_json(*this));
  return doc;
}

void write_report_json(const RunReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open report file: " + path);
  out << report.to_json().dump_pretty();
  if (!out) throw std::runtime_error("failed writing report file: " + path);
}

std::string chrome_trace_string(const vmpi::RunResult& result) {
  Json events = Json::array();
  for (std::size_t r = 0; r < result.recorders.size(); ++r) {
    Json meta = Json::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 0);
    meta.set("tid", static_cast<std::int64_t>(r));
    Json margs = Json::object();
    margs.set("name", "rank " + std::to_string(r));
    meta.set("args", std::move(margs));
    events.push_back(std::move(meta));
  }
  for (std::size_t r = 0; r < result.recorders.size(); ++r) {
    for (const TimelineEvent& ev : result.recorders[r].events()) {
      Json e = Json::object();
      e.set("name", ev.name);
      switch (ev.kind) {
        case TimelineEvent::Kind::kBegin:
          e.set("ph", "B");
          break;
        case TimelineEvent::Kind::kEnd:
          e.set("ph", "E");
          break;
        case TimelineEvent::Kind::kCounter:
          e.set("ph", "C");
          break;
      }
      e.set("ts", ev.t * 1e6);  // Chrome trace timestamps are microseconds
      e.set("pid", 0);
      e.set("tid", static_cast<std::int64_t>(r));
      Json args = Json::object();
      if (ev.kind == TimelineEvent::Kind::kCounter)
        args.set("value", ev.value);
      if (ev.tags.stage >= 0) args.set("stage", ev.tags.stage);
      if (ev.tags.batch >= 0) args.set("batch", ev.tags.batch);
      if (ev.tags.layer >= 0) args.set("layer", ev.tags.layer);
      if (ev.tags.iteration >= 0) args.set("iteration", ev.tags.iteration);
      if (!args.members().empty()) e.set("args", std::move(args));
      events.push_back(std::move(e));
    }
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  return doc.dump();
}

void write_chrome_trace(const vmpi::RunResult& result,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  out << chrome_trace_string(result) << "\n";
  if (!out) throw std::runtime_error("failed writing trace file: " + path);
}

}  // namespace casp::obs
