#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace casp::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::set(std::string key, Json v) {
  kind_ = Kind::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void write_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "0";  // JSON has no inf/nan; reports never produce them
    return;
  }
  // Shortest representation that round-trips; integral doubles keep a
  // trailing ".0" so the type survives a parse/dump cycle.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  std::string s(buf, res.ptr);
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos) {
    s += ".0";
  }
  out += s;
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const auto newline_indent = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof(buf), int_);
      out.append(buf, res.ptr);
      break;
    }
    case Kind::kDouble:
      write_double(out, double_);
      break;
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ',';
        newline_indent(depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      if (!items_.empty()) newline_indent(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        newline_indent(depth + 1);
        out += '"';
        out += json_escape(members_[i].first);
        out += pretty ? "\": " : "\":";
        members_[i].second.write(out, indent, depth + 1);
      }
      if (!members_.empty()) newline_indent(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Json::dump_pretty() const {
  std::string out;
  write(out, 2, 0);
  out += '\n';
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Json(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Json(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Json(nullptr);
    }
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad hex digit in \\u escape");
          }
          // The writer only emits \u for control characters; decode the
          // BMP subset as UTF-8 and reject surrogates.
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate escapes unsupported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (!is_double) {
      std::int64_t v = 0;
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (res.ec == std::errc() && res.ptr == tok.data() + tok.size())
        return Json(v);
    }
    double d = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size())
      fail("malformed number");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace casp::obs
