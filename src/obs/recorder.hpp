// Per-rank observability recorder — one structured event stream unifying
// the three ledgers the benches used to re-aggregate by hand.
//
// A Recorder owns the rank's TrafficStats (per-phase totals + rank×rank
// matrix), its TimeAccumulator (per-step breakdowns), a chronological
// timeline of begin/end span events tagged with (SUMMA stage, batch, layer,
// MCL iteration), named counters, and memory high-water samples taken from
// a MemoryTracker. Spans are RAII and strictly nested per rank, so each
// rank's timeline is a valid bracket sequence in nondecreasing time order —
// the Chrome-trace export is well-formed by construction, no sorting or
// repair pass needed.
//
// All ranks of a job share one epoch (a Stopwatch copied from the World at
// communicator construction), so cross-rank timestamps are comparable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/memory_tracker.hpp"
#include "common/timer.hpp"
#include "vmpi/traffic.hpp"

namespace casp::obs {

/// Structured context attached to every event recorded while it is active.
/// -1 means "not inside one".
struct Tags {
  int stage = -1;      ///< SUMMA broadcast stage index
  int batch = -1;      ///< batched-3D batch index
  int layer = -1;      ///< 3D grid layer
  int iteration = -1;  ///< MCL iteration
};

/// One timeline entry. kBegin/kEnd bracket a span; kCounter is a point
/// sample (memory high-water, per-iteration stats).
struct TimelineEvent {
  enum class Kind : std::uint8_t { kBegin, kEnd, kCounter };
  Kind kind = Kind::kBegin;
  std::string name;
  double t = 0.0;  ///< seconds since the job epoch
  Tags tags;
  std::int64_t value = 0;  ///< kCounter payload
};

/// Per-rank recorder. Not thread-safe: each rank owns one (split
/// communicators share their parent's, exactly like TrafficStats did).
class Recorder {
 public:
  vmpi::TrafficStats& traffic() { return traffic_; }
  const vmpi::TrafficStats& traffic() const { return traffic_; }
  TimeAccumulator& times() { return times_; }
  const TimeAccumulator& times() const { return times_; }

  /// Adopt the job-wide time base (all ranks copy the same Stopwatch).
  void set_epoch(const Stopwatch& epoch) { epoch_ = epoch; }
  double now() const { return epoch_.seconds(); }

  Tags& tags() { return tags_; }
  const Tags& tags() const { return tags_; }

  /// Open a span: emits the kBegin event and returns its timestamp (the
  /// Span guard passes it back to end_span for the duration).
  double begin_span(const std::string& name) {
    const double t = now();
    events_.push_back({TimelineEvent::Kind::kBegin, name, t, tags_, 0});
    return t;
  }

  /// Close a span opened at `t_begin`; charges the duration to the rank's
  /// TimeAccumulator under the span name.
  void end_span(const std::string& name, double t_begin) {
    const double t = now();
    events_.push_back({TimelineEvent::Kind::kEnd, name, t, tags_, 0});
    times_.add(name, t - t_begin);
  }

  /// Point sample of a named quantity (renders as a Chrome-trace counter).
  void sample(const std::string& name, std::int64_t value) {
    events_.push_back({TimelineEvent::Kind::kCounter, name, now(), tags_, value});
  }

  /// Sample a MemoryTracker's live bytes and fold its peak into the rank's
  /// high-water mark.
  void sample_memory(const MemoryTracker& mem, const std::string& label) {
    sample(label, static_cast<std::int64_t>(mem.live()));
    peak_bytes_ = std::max(peak_bytes_, mem.peak());
  }
  Bytes peak_bytes() const { return peak_bytes_; }

  /// Named scalar results (batch count, output nnz, MCL iterations…);
  /// surfaced verbatim in the RunReport.
  void set_counter(const std::string& name, std::int64_t value) {
    counters_[name] = value;
  }
  void add_counter(const std::string& name, std::int64_t delta) {
    counters_[name] += delta;
  }
  const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }

  const std::vector<TimelineEvent>& events() const { return events_; }

  void clear() {
    traffic_.clear();
    times_.clear();
    events_.clear();
    counters_.clear();
    peak_bytes_ = 0;
    tags_ = Tags{};
  }

 private:
  Stopwatch epoch_;
  Tags tags_;
  vmpi::TrafficStats traffic_;
  TimeAccumulator times_;
  std::vector<TimelineEvent> events_;
  std::map<std::string, std::int64_t> counters_;
  Bytes peak_bytes_ = 0;
};

/// RAII span: timeline B/E events + a TimeAccumulator entry under `name`.
class Span {
 public:
  Span(Recorder& rec, std::string name)
      : rec_(rec), name_(std::move(name)), t_begin_(rec_.begin_span(name_)) {}
  ~Span() { rec_.end_span(name_, t_begin_); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Recorder& rec_;
  std::string name_;
  double t_begin_;
};

/// Span that also labels the rank's traffic phase for its extent — the
/// one-liner replacing the ScopedPhase + ScopedTimer pairs. record_send
/// sites are untouched, so Table II totals are bit-identical.
class PhaseSpan {
 public:
  PhaseSpan(Recorder& rec, std::string name)
      : phase_(rec.traffic(), name), span_(rec, std::move(name)) {}

 private:
  vmpi::ScopedPhase phase_;
  Span span_;
};

/// RAII tag: sets one Tags field for the scope, restoring the old value on
/// exit (nesting-safe).
class ScopedTag {
 public:
  enum class Kind { kStage, kBatch, kLayer, kIteration };

  ScopedTag(Recorder& rec, Kind kind, int value) : rec_(rec), kind_(kind) {
    int& slot = field();
    saved_ = slot;
    slot = value;
  }
  ~ScopedTag() { field() = saved_; }
  ScopedTag(const ScopedTag&) = delete;
  ScopedTag& operator=(const ScopedTag&) = delete;

 private:
  int& field() {
    Tags& t = rec_.tags();
    switch (kind_) {
      case Kind::kStage:
        return t.stage;
      case Kind::kBatch:
        return t.batch;
      case Kind::kLayer:
        return t.layer;
      case Kind::kIteration:
      default:
        return t.iteration;
    }
  }

  Recorder& rec_;
  Kind kind_;
  int saved_ = -1;
};

}  // namespace casp::obs
