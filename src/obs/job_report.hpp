// JobReport: the per-job billing / SLO record of the multi-tenant service.
//
// One document per submitted job ("casp.job_report.v1"): who submitted it,
// what the admission controller decided from the Eq. (2) symbolic estimate,
// how the job ended, and what traffic the tenant is billed for — the
// logical (Table II) and shipped byte totals of the executed run, folded
// from the same per-rank TrafficStats ledgers the RunReport views. Executed
// jobs embed their full RunReport; rejected / cancelled / throttled jobs
// carry the structured reason instead. The deterministic subset
// (deterministic_json) excludes timings and free-text messages, so two runs
// of the same job queue serialize byte-identically — the property the
// check.sh stage (i) soak compares.
#pragma once

#include <optional>
#include <string>

#include "common/types.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

namespace casp::obs {

/// The admission controller's Eq. (2) numbers for one job (Alg. 3 line 12:
/// b = r * maxnnzC / (M/p - r * (maxnnzA + maxnnzB))). Recorded whether
/// the job was admitted or rejected, so a rejection names its evidence.
struct JobAdmission {
  bool fits = false;
  Index batches = 1;       ///< Eq. (2) batch count (1 when unconstrained)
  Index max_nnz_a = 0;     ///< max over processes, symbolic pass
  Index max_nnz_b = 0;
  Index max_nnz_c = 0;     ///< max per-process unmerged output nnz
  Bytes per_process_share = 0;  ///< M/p for the job's declared budget
  Bytes input_bytes = 0;        ///< r * (maxnnzA + maxnnzB)
  Bytes reserved_bytes = 0;     ///< what the tenant's memory quota was charged
};

/// Tenant-visible billing of one executed attempt chain: traffic totals
/// summed over ranks and phases from the final attempt's ledgers, plus the
/// supervision history (restart count and per-attempt failure kinds).
struct JobBilling {
  std::uint64_t messages = 0;
  Bytes logical_bytes = 0;  ///< Table II accounting (bytes column)
  Bytes shipped_bytes = 0;  ///< wire truth (<= logical with sparse_comm)
  int restarts = 0;
  std::vector<std::string> recovered_failure_kinds;
};

struct JobReport {
  std::string job_id;
  std::string tenant;
  std::string op;        ///< "spgemm" | "mcl" | "triangle"
  int priority = 0;
  std::string state;     ///< terminal JobState name ("done", "rejected", ...)
  std::string reason;    ///< structured reason for rejected/cancelled/throttled
  JobAdmission admission;
  JobBilling billing;
  /// Present iff the job executed (successfully or not).
  std::optional<RunReport> run;

  /// Full document, including the embedded RunReport with timings.
  Json to_json() const;
  /// Run-deterministic subset: identity, admission, state, billing counts
  /// and the RunReport's deterministic subset. Free-text failure messages
  /// and the `reason` string are included only when they are themselves
  /// deterministic (reasons are built from admission numbers, not timings).
  /// Failed jobs drop their billing and run sub-reports entirely and
  /// collapse `reason` to the closed-set failure kind: a torn-down
  /// attempt's traffic — and which rank's describe() latched first — depend
  /// on how far each rank got before teardown, which is
  /// thread-schedule-dependent. Done jobs that restarted, resumed from
  /// checkpoints, or ran degraded likewise drop billing and run: the
  /// surviving traffic depends on where the fault landed relative to the
  /// checkpoints. The outcome itself stays — done + admission plus a
  /// `recovery` stub with the fault-plan-determined facts (restart count,
  /// shrink shape) but none of the schedule-dependent costs.
  Json deterministic_json() const;
};

/// Fold the billing totals out of a finished run's per-rank ledgers.
JobBilling bill_traffic(const vmpi::RunResult& result);

}  // namespace casp::obs
