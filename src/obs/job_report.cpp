#include "obs/job_report.hpp"

namespace casp::obs {

namespace {
constexpr const char* kJobSchema = "casp.job_report.v1";

Json admission_json(const JobAdmission& a) {
  Json j = Json::object();
  j.set("fits", a.fits);
  j.set("batches", static_cast<std::int64_t>(a.batches));
  j.set("max_nnz_a", static_cast<std::int64_t>(a.max_nnz_a));
  j.set("max_nnz_b", static_cast<std::int64_t>(a.max_nnz_b));
  j.set("max_nnz_c", static_cast<std::int64_t>(a.max_nnz_c));
  j.set("per_process_share", a.per_process_share);
  j.set("input_bytes", a.input_bytes);
  j.set("reserved_bytes", a.reserved_bytes);
  return j;
}

Json billing_json(const JobBilling& b) {
  Json j = Json::object();
  j.set("messages", b.messages);
  j.set("logical_bytes", b.logical_bytes);
  j.set("shipped_bytes", b.shipped_bytes);
  j.set("restarts", b.restarts);
  Json kinds = Json::array();
  for (const std::string& k : b.recovered_failure_kinds) kinds.push_back(k);
  j.set("recovered_failure_kinds", std::move(kinds));
  return j;
}

Json header_json(const JobReport& r) {
  Json j = Json::object();
  j.set("schema", kJobSchema);
  j.set("job_id", r.job_id);
  j.set("tenant", r.tenant);
  j.set("op", r.op);
  j.set("priority", r.priority);
  j.set("state", r.state);
  j.set("reason", r.reason);
  j.set("admission", admission_json(r.admission));
  j.set("billing", billing_json(r.billing));
  return j;
}
}  // namespace

Json JobReport::to_json() const {
  Json j = header_json(*this);
  j.set("run", run.has_value() ? run->to_json() : Json());
  return j;
}

Json JobReport::deterministic_json() const {
  Json j = header_json(*this);
  if (state == "failed") {
    // A failed run's traffic measures how far each rank happened to get
    // before teardown — schedule-dependent, like wall clock. So is the
    // free-text reason (FailureReport::describe names the phase/op the
    // latched rank was in); only the closed-set failure kind is stable.
    // The classification (state/kind/admission) stays; the attempt-shaped
    // reason, billing and run sub-report go.
    j.set("reason",
          run.has_value() && run->failure.has_value() ? run->failure->kind
                                                      : std::string());
    j.set("billing", Json());
    j.set("run", Json());
    return j;
  }
  // A recovered job's surviving traffic depends on where the crash landed
  // relative to its checkpoints (and, for degraded-grid jobs, on how much
  // of the dead grid's progress the redistributed cache covered) — all
  // thread-schedule-dependent. The outcome (done, admission) is
  // deterministic; the recovery-shaped billing and run sub-report are not.
  const bool recovered =
      run.has_value() && run->recovery.has_value() &&
      (run->recovery->restarts > 0 || run->recovery->resumed_generation >= 0 ||
       run->recovery->degraded_to_ranks > 0 ||
       run->recovery->regrown_to_ranks > 0);
  if (recovered) {
    // What recovery *happened* is fault-plan-determined and survives:
    // relaunch count, the shrink/regrow shapes, and the planned backoff
    // ladder (a pure function of the attempt index). What it *cost*
    // (measured backoff waits, resumed generation, traffic) does not.
    Json rec;
    rec.set("restarts", run->recovery->restarts);
    if (run->recovery->degraded_to_ranks > 0) {
      rec.set("degraded_from_ranks", run->recovery->degraded_from_ranks);
      rec.set("degraded_to_ranks", run->recovery->degraded_to_ranks);
    }
    if (run->recovery->regrown_to_ranks > 0) {
      rec.set("regrown_from_ranks", run->recovery->regrown_from_ranks);
      rec.set("regrown_to_ranks", run->recovery->regrown_to_ranks);
    }
    Json plan = Json::array();
    for (const std::int64_t us : run->recovery->backoff_plan_us)
      plan.push_back(us);
    rec.set("backoff_plan_us", std::move(plan));
    j.set("recovery", rec);
    j.set("billing", Json());
    j.set("run", Json());
    return j;
  }
  j.set("run", run.has_value() ? run->deterministic_json() : Json());
  return j;
}

JobBilling bill_traffic(const vmpi::RunResult& result) {
  JobBilling bill;
  for (const vmpi::TrafficStats& stats : result.traffic) {
    const vmpi::PhaseTraffic t = stats.total();
    bill.messages += t.messages;
    bill.logical_bytes += t.bytes;
    bill.shipped_bytes += t.shipped;
  }
  return bill;
}

}  // namespace casp::obs
