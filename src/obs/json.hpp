// Minimal JSON document model for the observability layer.
//
// The run reports and Chrome traces the Recorder emits must be (a)
// deterministic — two runs with identical traffic produce byte-identical
// documents, so the report tests can compare whole strings — and (b)
// parseable from the C++ tests without an external dependency. This is a
// deliberately small value type: null/bool/int64/double/string/array/object,
// insertion-ordered objects (std::map ordering would scramble the schema's
// reading order), exact integer formatting, and a strict parser for the
// subset the writer emits.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace casp::obs {

/// One JSON value. Objects preserve insertion order so the emitted schema
/// reads top-down (and stays byte-stable across runs).
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  Json(int i) : kind_(Kind::kInt), int_(i) {}
  Json(std::uint64_t u)
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(u)) {}
  Json(double d) : kind_(Kind::kDouble), double_(d) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const {
    return kind_ == Kind::kDouble ? static_cast<std::int64_t>(double_) : int_;
  }
  double as_double() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }

  // -- Array access ---------------------------------------------------------
  void push_back(Json v) { items_.push_back(std::move(v)); }
  std::size_t size() const { return items_.size(); }
  const Json& at(std::size_t i) const { return items_.at(i); }
  const std::vector<Json>& items() const { return items_; }

  // -- Object access --------------------------------------------------------
  /// Append or overwrite `key` (lookup is linear; documents are small).
  void set(std::string key, Json v);
  /// nullptr when absent.
  const Json* find(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  // -- Serialization --------------------------------------------------------
  /// Compact deterministic serialization. Integers print exactly;
  /// doubles use shortest-roundtrip formatting.
  std::string dump() const;
  /// Pretty serialization with 2-space indentation (for files humans read).
  std::string dump_pretty() const;

  /// Strict parse of a complete JSON document; throws std::runtime_error
  /// with an offset on malformed input.
  static Json parse(std::string_view text);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// JSON string escaping (shared with hand-rolled writers elsewhere).
std::string json_escape(std::string_view s);

}  // namespace casp::obs
