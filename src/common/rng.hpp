// Deterministic, fast pseudo-random number generation.
//
// All generators in the library consume an explicit Rng so experiments are
// reproducible bit-for-bit: the same seed yields the same matrix on every
// run and every virtual-rank count. xoshiro256** is used for speed; seeding
// goes through splitmix64 per the authors' recommendation.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace casp {

/// splitmix64: used to expand a single 64-bit seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedca5fULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t n);

  /// Uniform Index in [lo, hi).
  Index range(Index lo, Index hi) {
    return lo + static_cast<Index>(below(static_cast<std::uint64_t>(hi - lo)));
  }

  /// Derive an independent child stream, e.g. one per column or per rank.
  Rng fork(std::uint64_t stream_id) const;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace casp
