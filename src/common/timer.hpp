// Wall-clock timing for the per-step breakdowns the paper reports
// (A-Bcast, B-Bcast, Local-Multiply, Merge-Layer, AllToAll-Fiber,
// Merge-Fiber, Symbolic).
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace casp {

/// Simple monotonic stopwatch. seconds() reads elapsed time since the last
/// reset without stopping the clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named durations; used per-rank to build step breakdowns.
class TimeAccumulator {
 public:
  void add(const std::string& name, double seconds) { total_[name] += seconds; }
  double get(const std::string& name) const {
    auto it = total_.find(name);
    return it == total_.end() ? 0.0 : it->second;
  }
  const std::map<std::string, double>& all() const { return total_; }
  void clear() { total_.clear(); }

 private:
  std::map<std::string, double> total_;
};

/// RAII guard: adds the scope's duration to an accumulator entry.
class ScopedTimer {
 public:
  ScopedTimer(TimeAccumulator& acc, std::string name)
      : acc_(acc), name_(std::move(name)) {}
  ~ScopedTimer() { acc_.add(name_, watch_.seconds()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeAccumulator& acc_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace casp
