#include "common/timer.hpp"

// Header-only in practice; this TU anchors the component in the library so
// every module has a .cpp and link-time symbols stay in one place.
namespace casp {}
