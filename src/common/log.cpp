#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace casp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// The logger is the one sanctioned cross-rank shared resource: it guards
// stderr so interleaved vmpi ranks produce whole lines. It never blocks on
// runtime state, so it cannot participate in a vmpi deadlock.
std::mutex g_mutex;  // casp-lint: allow(threading)

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);  // casp-lint: allow(threading)
  std::cerr << "[casp " << level_name(level) << "] " << message << "\n";
}

}  // namespace casp
