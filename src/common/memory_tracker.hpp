// Memory accounting for the memory-constrained execution mode.
//
// On Cori the constraint is physical: 112 GB per KNL node. Here the
// constraint is configured: each virtual rank gets a byte budget, every
// nonzero buffer the distributed algorithm materializes is charged against
// it, and exceeding it throws MemoryError. Symbolic3D exists to pick the
// batch count b so this never fires — and when its estimate is wrong,
// BatchedSUMMA3D probes each batch inside a soft "probe window" (see
// begin_probe) and re-batches instead of dying mid-collective.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"

namespace casp {

/// Tracks live and peak bytes against an optional budget. Thread-safe: the
/// budget check and the charge commit are a single CAS on the live count,
/// so two racing allocations can never jointly slip past the budget (and a
/// failed allocation never transiently inflates what a third thread sees).
class MemoryTracker {
 public:
  /// budget == 0 means unlimited.
  explicit MemoryTracker(Bytes budget = 0) : budget_(budget) {}

  /// Charge `bytes`; throws MemoryError if this would exceed the budget
  /// (unless a probe window is open — then the charge is taken anyway and
  /// the window is marked overrun). The injected-failure hook, when armed,
  /// is consulted first and fails the allocation the same way.
  void allocate(Bytes bytes, const char* what = "buffer");

  /// Release a previous charge.
  void release(Bytes bytes);

  Bytes live() const { return live_.load(std::memory_order_relaxed); }
  Bytes peak() const { return peak_.load(std::memory_order_relaxed); }
  Bytes budget() const { return budget_; }
  void set_budget(Bytes budget) { budget_ = budget; }
  void reset_peak() { peak_.store(live()); }

  // -- Probe window (BatchedSUMMA3D's re-batch protocol) -------------------
  //
  // While a probe window is open, an allocation that would exceed the
  // budget is charged anyway and recorded as an overrun instead of
  // throwing. A rank that threw mid-batch would strand its peers inside
  // the batch's collectives; probing lets every rank reach the batch
  // boundary, agree on the overrun via an allreduce, release the batch's
  // partial state and retry at a finer batch granularity. The transient
  // over-budget peak is reported honestly via peak().

  /// Open the window (clears the overrun flag). Not reentrant.
  void begin_probe() {
    overrun_.store(false, std::memory_order_relaxed);
    probing_.store(true, std::memory_order_relaxed);
  }
  /// Close the window; returns true iff any allocation overran inside it.
  bool end_probe() {
    probing_.store(false, std::memory_order_relaxed);
    return overrun_.load(std::memory_order_relaxed);
  }
  bool probing() const { return probing_.load(std::memory_order_relaxed); }

  // -- Injected allocation failures ----------------------------------------

  /// Hook consulted at the top of allocate(); returning true fails the
  /// allocation (MemoryError outside a probe window, overrun inside one).
  /// Armed by vmpi::arm_alloc_faults; set before sharing the tracker across
  /// threads — the hook itself must be thread-safe.
  using FailureHook = std::function<bool(Bytes bytes, const char* what)>;
  void set_failure_hook(FailureHook hook) { failure_hook_ = std::move(hook); }

 private:
  Bytes budget_;
  std::atomic<Bytes> live_{0};
  std::atomic<Bytes> peak_{0};
  std::atomic<bool> probing_{false};
  std::atomic<bool> overrun_{false};
  FailureHook failure_hook_;
};

/// RAII charge: holds `bytes` on a tracker for the scope's lifetime.
class MemoryCharge {
 public:
  MemoryCharge() : tracker_(nullptr), bytes_(0) {}
  MemoryCharge(MemoryTracker& tracker, Bytes bytes, const char* what = "buffer")
      : tracker_(&tracker), bytes_(bytes) {
    tracker_->allocate(bytes_, what);
  }
  ~MemoryCharge() { reset(); }
  MemoryCharge(MemoryCharge&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryCharge& operator=(MemoryCharge&& other) noexcept {
    if (this != &other) {
      reset();
      tracker_ = other.tracker_;
      bytes_ = other.bytes_;
      other.tracker_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryCharge(const MemoryCharge&) = delete;
  MemoryCharge& operator=(const MemoryCharge&) = delete;

  void reset() {
    if (tracker_ != nullptr) tracker_->release(bytes_);
    tracker_ = nullptr;
    bytes_ = 0;
  }
  Bytes bytes() const { return bytes_; }

 private:
  MemoryTracker* tracker_;
  Bytes bytes_;
};

}  // namespace casp
