// Memory accounting for the memory-constrained execution mode.
//
// On Cori the constraint is physical: 112 GB per KNL node. Here the
// constraint is configured: each virtual rank gets a byte budget, every
// nonzero buffer the distributed algorithm materializes is charged against
// it, and exceeding it throws MemoryError. Symbolic3D exists to pick the
// batch count b so this never fires.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"

namespace casp {

/// Tracks live and peak bytes against an optional budget. Thread-safe.
class MemoryTracker {
 public:
  /// budget == 0 means unlimited.
  explicit MemoryTracker(Bytes budget = 0) : budget_(budget) {}

  /// Charge `bytes`; throws MemoryError if this would exceed the budget.
  void allocate(Bytes bytes, const char* what = "buffer");

  /// Release a previous charge.
  void release(Bytes bytes);

  Bytes live() const { return live_.load(std::memory_order_relaxed); }
  Bytes peak() const { return peak_.load(std::memory_order_relaxed); }
  Bytes budget() const { return budget_; }
  void set_budget(Bytes budget) { budget_ = budget; }
  void reset_peak() { peak_.store(live()); }

 private:
  Bytes budget_;
  std::atomic<Bytes> live_{0};
  std::atomic<Bytes> peak_{0};
};

/// RAII charge: holds `bytes` on a tracker for the scope's lifetime.
class MemoryCharge {
 public:
  MemoryCharge() : tracker_(nullptr), bytes_(0) {}
  MemoryCharge(MemoryTracker& tracker, Bytes bytes, const char* what = "buffer")
      : tracker_(&tracker), bytes_(bytes) {
    tracker_->allocate(bytes_, what);
  }
  ~MemoryCharge() { reset(); }
  MemoryCharge(MemoryCharge&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryCharge& operator=(MemoryCharge&& other) noexcept {
    if (this != &other) {
      reset();
      tracker_ = other.tracker_;
      bytes_ = other.bytes_;
      other.tracker_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryCharge(const MemoryCharge&) = delete;
  MemoryCharge& operator=(const MemoryCharge&) = delete;

  void reset() {
    if (tracker_ != nullptr) tracker_->release(bytes_);
    tracker_ = nullptr;
    bytes_ = 0;
  }
  Bytes bytes() const { return bytes_; }

 private:
  MemoryTracker* tracker_;
  Bytes bytes_;
};

}  // namespace casp
