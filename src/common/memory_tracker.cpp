#include "common/memory_tracker.hpp"

#include <sstream>

#include "common/schedhook.hpp"

namespace casp {

void MemoryTracker::allocate(Bytes bytes, const char* what) {
  const bool injected =
      failure_hook_ != nullptr && failure_hook_(bytes, what);
  // CAS loop: the budget comparison and the charge commit are one atomic
  // step on live_, so concurrent allocations cannot jointly exceed the
  // budget, and a rejected allocation never shows up in live_ at all (the
  // old fetch_add/rollback scheme transiently inflated it, failing
  // innocent bystanders).
  Bytes cur = live_.load(std::memory_order_relaxed);
  Bytes now = 0;
  bool over = false;
  while (true) {
    now = cur + bytes;
    over = injected || (budget_ != 0 && now > budget_);
    if (over && !probing()) {
      std::ostringstream os;
      if (injected) {
        os << "injected allocation failure: " << bytes << " bytes for "
           << what << " (live " << cur << ", budget " << budget_ << ")";
      } else {
        os << "memory budget exceeded allocating " << bytes << " bytes for "
           << what << ": live " << cur << " + " << bytes << " > budget "
           << budget_;
      }
      throw MemoryError(os.str());
    }
    if (live_.compare_exchange_weak(cur, now, std::memory_order_relaxed))
      break;
  }
  if (over) overrun_.store(true, std::memory_order_relaxed);
  // Budget-charge commit: a schedule point, so the explorer can interleave
  // ranks right where concurrent charges contend for the same budget.
  CASP_SCHED_EVENT(kAllocCommit, this, static_cast<long>(bytes));
  // Lock-free peak update.
  Bytes prev_peak = peak_.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, now,
                                      std::memory_order_relaxed)) {
  }
}

void MemoryTracker::release(Bytes bytes) {
  live_.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace casp
