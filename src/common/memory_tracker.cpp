#include "common/memory_tracker.hpp"

#include <sstream>

namespace casp {

void MemoryTracker::allocate(Bytes bytes, const char* what) {
  Bytes now = live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (budget_ != 0 && now > budget_) {
    live_.fetch_sub(bytes, std::memory_order_relaxed);
    std::ostringstream os;
    os << "memory budget exceeded allocating " << bytes << " bytes for "
       << what << ": live " << (now - bytes) << " + " << bytes << " > budget "
       << budget_;
    throw MemoryError(os.str());
  }
  // Lock-free peak update.
  Bytes prev_peak = peak_.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, now,
                                      std::memory_order_relaxed)) {
  }
}

void MemoryTracker::release(Bytes bytes) {
  live_.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace casp
