// Error handling: checked preconditions that throw, and a dedicated
// exception for memory-budget violations (the condition the batched
// algorithm exists to avoid).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace casp {

/// Thrown when an operation would exceed the configured memory budget,
/// e.g. Symbolic3D discovering that even the inputs do not fit.
class MemoryError : public std::runtime_error {
 public:
  explicit MemoryError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on malformed input (bad file, inconsistent dimensions, ...).
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Thrown when external input data (a batch file, a matrix file) is
/// truncated, oversized, or corrupt. Derives from InvalidArgument so
/// existing catch sites keep working, but vmpi::run classifies it as its
/// own FailureReport kind ("input_error") — bad data names itself instead
/// of masquerading as a caller bug.
class InputError : public InvalidArgument {
 public:
  explicit InputError(const std::string& what) : InvalidArgument(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CASP_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}
}  // namespace detail

}  // namespace casp

/// Precondition check that stays enabled in release builds. Distributed
/// algorithms are hard to debug post-hoc, so invariants fail loudly.
#define CASP_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::casp::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define CASP_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream casp_os_;                                    \
      casp_os_ << msg;                                                \
      ::casp::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                   casp_os_.str());                   \
    }                                                                 \
  } while (0)
