// Core scalar types used throughout the library.
//
// Indices are 64-bit signed integers: the paper's matrices have up to 282M
// rows and trillions of nonzeros, so 32-bit indices overflow even for the
// nnz counters of modest instances. Signed types allow -1 sentinels in hash
// tables and make subtraction in partition arithmetic safe.
#pragma once

#include <cstddef>
#include <cstdint>

namespace casp {

/// Row/column index and nnz offset type.
using Index = std::int64_t;

/// Numeric value type stored in matrices. Semirings reinterpret the
/// semantics of addition/multiplication but share this representation.
using Value = double;

/// Byte counts (memory accounting, message sizes).
using Bytes = std::uint64_t;

/// Number of bytes needed to store one nonzero in distributed triples form:
/// 8-byte row index + 8-byte column index + 8-byte value. This matches the
/// paper's r = 24 bytes/nonzero accounting (Sec. IV-A).
inline constexpr Bytes kBytesPerNonzero = 24;

}  // namespace casp
