// Small integer math helpers used by partitioning, grids and hash tables.
#pragma once

#include <bit>
#include <cstdint>

#include "common/error.hpp"
#include "common/types.hpp"

namespace casp {

/// ceil(a / b) for non-negative a, positive b.
constexpr Index ceil_div(Index a, Index b) { return (a + b - 1) / b; }

/// True iff x is a power of two (x > 0).
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x >= 1). next_pow2(0) == 1.
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  return x <= 1 ? 1 : std::bit_ceil(x);
}

/// floor(log2(x)) for x >= 1.
constexpr int ilog2(std::uint64_t x) {
  return 63 - std::countl_zero(x | 1);
}

/// ceil(log2(x)) for x >= 1; number of rounds in a binomial-tree broadcast.
constexpr int ceil_log2(std::uint64_t x) {
  return x <= 1 ? 0 : 64 - std::countl_zero(x - 1);
}

/// Exact integer square root check: returns s if p == s*s, else -1.
constexpr Index exact_isqrt(Index p) {
  if (p < 0) return -1;
  Index s = 0;
  while ((s + 1) * (s + 1) <= p) ++s;
  return s * s == p ? s : -1;
}

/// Lower boundary of part i when dividing n items into `parts` balanced
/// contiguous parts: part i covers [part_low(i), part_low(i+1)).
/// This is the canonical partition used *everywhere* (2D blocks, layer
/// slices, batch blocks) so nested partitions compose exactly:
///   part_low(k*b, l*b, n) == part_low(k, l, n).
constexpr Index part_low(Index i, Index parts, Index n) {
  CASP_CHECK(parts > 0 && i >= 0 && i <= parts);
  return (i * n) / parts;
}

/// Size of part i under the same partition.
constexpr Index part_size(Index i, Index parts, Index n) {
  return part_low(i + 1, parts, n) - part_low(i, parts, n);
}

/// Which part a global position g falls into under part_low partitioning.
/// Inverse of part_low: part_of(part_low(i), parts, n) == i for nonempty
/// parts.
constexpr Index part_of(Index g, Index parts, Index n) {
  CASP_CHECK(n > 0 && g >= 0 && g < n);
  // candidate via proportional guess, then correct (floor partition means
  // the guess can be off by at most one in either direction).
  Index i = (g * parts) / n;
  while (i + 1 <= parts && part_low(i + 1, parts, n) <= g) ++i;
  while (i > 0 && part_low(i, parts, n) > g) --i;
  return i;
}

}  // namespace casp
