// Shared non-cryptographic hashing. One FNV-1a64 implementation serves both
// the checkpoint container checksum ("casp.ckpt.v1" trailing word) and the
// debug-mode per-message transport checksum in vmpi::Comm, so a snapshot
// written on one layer and a payload verified on another agree on what
// "checksummed" means.
#pragma once

#include <cstddef>
#include <cstdint>

namespace casp {

/// FNV-1a 64-bit over a raw byte range. Deterministic across platforms for
/// the same bytes; NOT collision-resistant against an adversary — it guards
/// against torn writes and injected bit flips, not tampering.
inline std::uint64_t fnv1a64(const std::byte* data, std::size_t size) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<std::uint64_t>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace casp
