// Minimal leveled logging. Distributed runs interleave output from many
// virtual ranks, so every line is emitted atomically under one mutex.
#pragma once

#include <sstream>
#include <string>

namespace casp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line (thread-safe, newline appended).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace casp

#define CASP_LOG_DEBUG ::casp::detail::LogStream(::casp::LogLevel::kDebug)
#define CASP_LOG_INFO ::casp::detail::LogStream(::casp::LogLevel::kInfo)
#define CASP_LOG_WARN ::casp::detail::LogStream(::casp::LogLevel::kWarn)
#define CASP_LOG_ERROR ::casp::detail::LogStream(::casp::LogLevel::kError)
