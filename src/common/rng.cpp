#include "common/rng.hpp"

namespace casp {

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the current state with the stream id through splitmix so sibling
  // streams are decorrelated regardless of how much of the parent was used.
  std::uint64_t mix = s_[0] ^ (s_[3] + 0x9e3779b97f4a7c15ULL * (stream_id + 1));
  Rng child(0);
  child.reseed(splitmix64(mix));
  return child;
}

}  // namespace casp
