// Refcounted immutable byte buffer — the transport currency of the library.
//
// A Payload owns (a share of) one heap allocation that is never written
// after construction. Handing a Payload to another owner copies a pointer,
// not the bytes, so the vmpi collectives can forward a broadcast through
// every binomial-tree hop without re-copying the data, and a received
// matrix can be *viewed* in place (sparse/csc_view.hpp) instead of
// deserialized. Immutability is what makes the sharing safe across rank
// threads: the only synchronization needed is the mailbox handoff itself.
//
// Mutation therefore always goes through an explicit copy:
// `release_or_copy()` gives the caller a private std::vector (moving the
// allocation out only when this handle is the sole owner), and CscView
// materializes to a CscMat before any write. casp_lint's payload-ownership
// rule bans const_cast so nothing can break the contract silently.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/schedhook.hpp"

namespace casp {

class Payload {
 public:
  /// Empty payload (size 0, no allocation).
  Payload() = default;

  Payload(const Payload& other)
      : owner_(other.owner_), offset_(other.offset_), size_(other.size_) {
    if (owner_) {
      const long n =
          owner_->handles.fetch_add(1, std::memory_order_relaxed) + 1;
      CASP_SCHED_EVENT(kHandleAcquire, owner_.get(), n);
    }
  }

  Payload(Payload&& other) noexcept
      : owner_(std::move(other.owner_)),
        offset_(other.offset_),
        size_(other.size_) {
    other.offset_ = 0;
    other.size_ = 0;
  }

  Payload& operator=(const Payload& other) {
    if (this == &other) return *this;
    if (other.owner_) {
      const long n =
          other.owner_->handles.fetch_add(1, std::memory_order_relaxed) + 1;
      CASP_SCHED_EVENT(kHandleAcquire, other.owner_.get(), n);
    }
    drop();
    owner_ = other.owner_;
    offset_ = other.offset_;
    size_ = other.size_;
    return *this;
  }

  Payload& operator=(Payload&& other) noexcept {
    if (this == &other) return *this;
    drop();
    owner_ = std::move(other.owner_);
    offset_ = other.offset_;
    size_ = other.size_;
    other.offset_ = 0;
    other.size_ = 0;
    return *this;
  }

  ~Payload() { drop(); }

  /// Deep-copies `size` bytes — the one copy at the transport API boundary.
  static Payload copy_of(const std::byte* data, std::size_t size) {
    Payload p;
    if (size > 0) {
      count_copy(size);
      p.owner_ = std::make_shared<Buffer>(
          std::vector<std::byte>(data, data + size));
      p.size_ = size;
      CASP_SCHED_EVENT(kBufferCreate, p.owner_.get(), 1);
    }
    return p;
  }

  /// Takes ownership of an existing buffer without copying.
  static Payload wrap(std::vector<std::byte> bytes) {
    Payload p;
    if (!bytes.empty()) {
      p.size_ = bytes.size();
      p.owner_ = std::make_shared<Buffer>(std::move(bytes));
      CASP_SCHED_EVENT(kBufferCreate, p.owner_.get(), 1);
    }
    return p;
  }

  const std::byte* data() const {
    if (owner_)
      CASP_SCHED_EVENT(kAccess, owner_.get(), static_cast<long>(size_));
    return owner_ ? owner_->bytes.data() + offset_ : nullptr;
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::span<const std::byte> view() const { return {data(), size_}; }

  /// Sub-range sharing the same allocation (used to slice one broadcast
  /// concatenation into per-rank payloads without copying). A range that
  /// escapes this handle's window throws: silently returning an empty (or
  /// aliased) view would let a corrupted length header read as valid data.
  /// The two comparisons are overflow-safe (offset + length never computed).
  Payload subview(std::size_t offset, std::size_t length) const {
    if (offset > size_ || length > size_ - offset)
      throw std::out_of_range("Payload::subview: range [" +
                              std::to_string(offset) + ", " +
                              std::to_string(offset) + " + " +
                              std::to_string(length) +
                              ") escapes a payload of " +
                              std::to_string(size_) + " bytes");
    Payload p;
    if (length > 0) {
      const long n =
          owner_->handles.fetch_add(1, std::memory_order_relaxed) + 1;
      CASP_SCHED_EVENT(kHandleAcquire, owner_.get(), n);
      p.owner_ = owner_;
      p.offset_ = offset_ + offset;
      p.size_ = length;
    }
    return p;
  }

  /// Number of owners of the underlying allocation (0 when empty).
  long use_count() const {
    return owner_ ? owner_->handles.load(std::memory_order_relaxed) : 0;
  }

  /// Private mutable copy of the bytes. Steals the allocation when this
  /// handle is the unique full-range owner; deep-copies otherwise — the
  /// aliasing-safety boundary for callers of the std::vector-based APIs.
  /// The sole-owner check is an acquire load against the release decrement
  /// every other handle performed on destruction, so the reads those ranks
  /// made through the shared buffer happen-before the move below
  /// (shared_ptr::use_count alone is a relaxed load and cannot give that
  /// ordering — this is why Buffer carries its own handle count).
  std::vector<std::byte> release_or_copy() && {
    if (!owner_) return {};
    if (offset_ == 0 && size_ == owner_->bytes.size()) {
      const long observed =
          owner_->handles.load(std::memory_order_acquire);
      CASP_SCHED_EVENT(kObserveSoleAcquire, owner_.get(), observed);
      if (observed == 1) {
        CASP_SCHED_EVENT(kSteal, owner_.get(), observed);
        std::vector<std::byte> out = std::move(owner_->bytes);
        drop();
        return out;
      }
    }
    count_copy(size_);
    std::vector<std::byte> out(data(), data() + size_);
    drop();
    return out;
  }

#ifdef CASP_VMPI_SCHED
  /// Known-bug corpus instrument (scheduled builds only): release_or_copy
  /// with the PR-2 *relaxed* sole-owner check reintroduced. An observed
  /// count of 1 synchronizes with nothing, so another rank's reads through
  /// a just-dropped handle can race the move — exactly what the
  /// happens-before analyzer must rediscover. Never call outside tests.
  std::vector<std::byte> release_or_copy_relaxed() && {
    if (!owner_) return {};
    if (offset_ == 0 && size_ == owner_->bytes.size()) {
      const long observed =
          owner_->handles.load(std::memory_order_relaxed);
      CASP_SCHED_EVENT(kObserveSoleRelaxed, owner_.get(), observed);
      if (observed == 1) {
        CASP_SCHED_EVENT(kSteal, owner_.get(), observed);
        std::vector<std::byte> out = std::move(owner_->bytes);
        drop();
        return out;
      }
    }
    count_copy(size_);
    std::vector<std::byte> out(data(), data() + size_);
    drop();
    return out;
  }

  /// Known-bug corpus instrument (scheduled builds only): mutate the bytes
  /// in place through a shared handle, violating the immutability contract
  /// on purpose so the analyzer can flag mutation-after-send.
  std::byte* unsafe_mutable_data() {
    if (!owner_) return nullptr;
    CASP_SCHED_EVENT(kMutate, owner_.get(), static_cast<long>(size_));
    return owner_->bytes.data() + offset_;
  }

  /// Stable identity of the owning allocation for the happens-before
  /// analyzer (null for empty payloads).
  const void* buffer_id() const { return owner_.get(); }
#endif

  /// Global count of deep copies performed through Payload (bench/test
  /// instrumentation for the "copies per broadcast" claims).
  static std::uint64_t deep_copies() {
    return copy_counter().load(std::memory_order_relaxed);
  }

 private:
  // Bytes are immutable while shared; `handles` counts live Payload handles
  // on this buffer (released with memory_order_release in drop()) so
  // release_or_copy can prove sole ownership with proper ordering before
  // mutating `bytes`. The shared_ptr only manages lifetime.
  struct Buffer {
    explicit Buffer(std::vector<std::byte> b) : bytes(std::move(b)) {}
    std::vector<std::byte> bytes;
    std::atomic<long> handles{1};
  };

  void drop() noexcept {
    if (owner_) {
      const long n =
          owner_->handles.fetch_sub(1, std::memory_order_release) - 1;
      CASP_SCHED_EVENT(kHandleRelease, owner_.get(), n);
      owner_.reset();
    }
    offset_ = 0;
    size_ = 0;
  }

  static void count_copy(std::size_t size) {
    if (size > 0) copy_counter().fetch_add(1, std::memory_order_relaxed);
  }
  static std::atomic<std::uint64_t>& copy_counter() {
    static std::atomic<std::uint64_t> counter{0};
    return counter;
  }

  std::shared_ptr<Buffer> owner_;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

}  // namespace casp
