// Schedule-point hook surface for the casp-verify analysis plane.
//
// Layers below vmpi (Payload, MemoryTracker) cannot depend on the virtual
// runtime, yet their refcount transitions and budget commits are exactly
// the events a schedule explorer must interleave and a happens-before
// analyzer must see. This header is the one-way bridge: when compiled with
// CASP_VMPI_SCHED, the low-level code reports events through a process-wide
// callback that src/vmpi/sched.cpp installs for the duration of a scheduled
// run; without the macro every call site compiles to nothing — release
// builds carry zero hook code (asserted by the perf_diff gate over the
// release-preset benches, where CASP_VMPI_SCHED is OFF).
//
// Events are identified by the buffer/tracker address plus an event kind.
// The callback runs on the emitting rank thread; under the cooperative
// scheduler only one rank thread runs at a time, so the handler needs no
// locking of its own beyond the scheduler's.
#pragma once

#ifdef CASP_VMPI_SCHED

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace casp::schedhook {

/// What just happened to a refcounted buffer or a tracker. The numeric
/// values are stable (they appear in diagnostics).
enum class Event : int {
  /// A fresh Buffer came into existence (Payload::wrap / copy_of).
  kBufferCreate = 0,
  /// A handle on an existing buffer was acquired (copy ctor / subview).
  kHandleAcquire = 1,
  /// A handle was dropped (Payload::drop) — a release-ordered decrement.
  kHandleRelease = 2,
  /// The bytes of a buffer were read through a handle (Payload::data).
  kAccess = 3,
  /// release_or_copy observed the handle count with *acquire* ordering —
  /// an observed count of 1 synchronizes with every prior release.
  kObserveSoleAcquire = 4,
  /// The known-bug variant: the sole-owner check ran with relaxed
  /// ordering, so it synchronizes with nothing (PR-2 race, reintroduced
  /// for the casp-verify known-bug corpus).
  kObserveSoleRelaxed = 5,
  /// release_or_copy stole the allocation for mutation (sole-owner move).
  kSteal = 6,
  /// The bytes were mutated in place through unsafe_mutable_data — the
  /// instrument for injecting mutation-after-send bugs.
  kMutate = 7,
  /// A MemoryTracker budget check + charge committed (the CAS point).
  kAllocCommit = 8,
};

/// Handler signature: (event, buffer/tracker address, observed count or
/// byte amount — meaning depends on the event).
using Handler = void (*)(Event event, const void* object, long value);

/// The installed handler; null when no scheduled run is active. The
/// double-checked `active` flag keeps the inactive path to one relaxed
/// atomic load.
inline std::atomic<Handler>& handler() {
  static std::atomic<Handler> h{nullptr};
  return h;
}
inline std::atomic<bool>& active() {
  static std::atomic<bool> a{false};
  return a;
}

/// Emit an event. No-op unless a handler is installed.
inline void emit(Event event, const void* object, long value) {
  if (!active().load(std::memory_order_relaxed)) return;
  Handler h = handler().load(std::memory_order_acquire);
  if (h != nullptr) h(event, object, value);
}

/// Install/remove the process-wide handler (sched.cpp only).
inline void install(Handler h) {
  handler().store(h, std::memory_order_release);
  active().store(h != nullptr, std::memory_order_release);
}

}  // namespace casp::schedhook

/// Call-site macro: compiles away entirely without CASP_VMPI_SCHED.
#define CASP_SCHED_EVENT(event, object, value) \
  ::casp::schedhook::emit(::casp::schedhook::Event::event, object, value)

#else

// sizeof keeps the operands unevaluated (no codegen, no side effects) while
// still marking locals computed only for the hook as used.
#define CASP_SCHED_EVENT(event, object, value) \
  do {                                         \
    (void)sizeof(object);                      \
    (void)sizeof(value);                       \
  } while (0)

#endif  // CASP_VMPI_SCHED
