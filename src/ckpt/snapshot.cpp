#include "ckpt/snapshot.hpp"

#include <utility>

#include "common/hash.hpp"
#include "sparse/serialize.hpp"

namespace casp::ckpt {
namespace {

// "casp.ckpt.v1" on the wire: 8 magic bytes carrying the version digit.
constexpr char kMagic[8] = {'C', 'A', 'S', 'P', 'C', 'K', 'P', '1'};
constexpr std::size_t kMagicSize = sizeof(kMagic);
constexpr std::size_t kChecksumSize = sizeof(std::uint64_t);

void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
  std::byte raw[sizeof(v)];
  std::memcpy(raw, &v, sizeof(v));
  out.insert(out.end(), raw, raw + sizeof(v));
}

/// Cursor over a byte buffer whose reads are bounds-checked before any
/// offset arithmetic, so hostile section lengths cannot overflow.
class Reader {
 public:
  Reader(const std::byte* data, std::size_t size) : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }

  std::uint64_t read_u64(const char* what) {
    if (remaining() < sizeof(std::uint64_t))
      throw CkptError(std::string("snapshot truncated reading ") + what);
    std::uint64_t v = 0;
    std::memcpy(&v, data_ + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
  }

  const std::byte* read_span(std::uint64_t len, const char* what) {
    if (len > remaining())
      throw CkptError(std::string("snapshot truncated reading ") + what);
    const std::byte* p = data_ + pos_;
    pos_ += static_cast<std::size_t>(len);
    return p;
  }

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace

void Snapshot::set_u64(const std::string& name, std::uint64_t v) {
  std::vector<std::byte> buf(sizeof(v));
  std::memcpy(buf.data(), &v, sizeof(v));
  set_bytes(name, std::move(buf));
}

void Snapshot::set_string(const std::string& name, const std::string& s) {
  std::vector<std::byte> buf(s.size());
  if (!buf.empty()) std::memcpy(buf.data(), s.data(), buf.size());
  set_bytes(name, std::move(buf));
}

void Snapshot::set_matrix(const std::string& name, const CscMat& m) {
  set_bytes(name, pack_csc(m));
}

const std::vector<std::byte>& Snapshot::bytes(const std::string& name) const {
  auto it = sections_.find(name);
  if (it == sections_.end())
    throw CkptError("snapshot has no section '" + name + "'");
  return it->second;
}

std::uint64_t Snapshot::u64(const std::string& name) const {
  const std::vector<std::byte>& buf = bytes(name);
  if (buf.size() != sizeof(std::uint64_t))
    throw CkptError("snapshot section '" + name + "' is not a u64");
  std::uint64_t v = 0;
  std::memcpy(&v, buf.data(), sizeof(v));
  return v;
}

std::string Snapshot::string(const std::string& name) const {
  const std::vector<std::byte>& buf = bytes(name);
  std::string out(buf.size(), '\0');
  if (!buf.empty()) std::memcpy(out.data(), buf.data(), buf.size());
  return out;
}

CscMat Snapshot::matrix(const std::string& name) const {
  const std::vector<std::byte>& buf = bytes(name);
  try {
    return unpack_csc(buf);
  } catch (const std::exception& e) {
    throw CkptError("snapshot section '" + name +
                    "' is not a valid matrix: " + e.what());
  }
}

std::vector<std::byte> Snapshot::serialize() const {
  std::vector<std::byte> out;
  std::size_t total = kMagicSize + sizeof(std::uint64_t) + kChecksumSize;
  for (const auto& [name, data] : sections_)
    total += 2 * sizeof(std::uint64_t) + name.size() + data.size();
  out.reserve(total);

  static_assert(std::is_trivially_copyable_v<char> &&
                sizeof(char) == sizeof(std::byte));
  const std::byte* magic = reinterpret_cast<const std::byte*>(kMagic);
  out.insert(out.end(), magic, magic + kMagicSize);
  append_u64(out, sections_.size());
  for (const auto& [name, data] : sections_) {
    append_u64(out, name.size());
    const std::byte* nb = reinterpret_cast<const std::byte*>(name.data());
    out.insert(out.end(), nb, nb + name.size());
    append_u64(out, data.size());
    out.insert(out.end(), data.begin(), data.end());
  }
  append_u64(out, fnv1a64(out.data(), out.size()));
  return out;
}

Snapshot Snapshot::deserialize(const std::vector<std::byte>& buf) {
  if (buf.size() < kMagicSize + sizeof(std::uint64_t) + kChecksumSize)
    throw CkptError("snapshot too small to be valid");
  if (std::memcmp(buf.data(), kMagic, kMagicSize) != 0)
    throw CkptError("snapshot has bad magic (unknown format or version)");

  const std::size_t body = buf.size() - kChecksumSize;
  std::uint64_t stored = 0;
  std::memcpy(&stored, buf.data() + body, kChecksumSize);
  if (fnv1a64(buf.data(), body) != stored)
    throw CkptError("snapshot checksum mismatch (torn or corrupted write)");

  Reader r(buf.data(), body);
  r.read_span(kMagicSize, "magic");
  const std::uint64_t count = r.read_u64("section count");
  // Each section costs at least two length words; anything claiming more
  // sections than the buffer could hold is corrupt despite the checksum.
  if (count > body / (2 * sizeof(std::uint64_t)))
    throw CkptError("snapshot section count is implausible");

  Snapshot snap;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t name_len = r.read_u64("section name length");
    const std::byte* name_ptr = r.read_span(name_len, "section name");
    std::string name(static_cast<std::size_t>(name_len), '\0');
    if (name_len > 0) std::memcpy(name.data(), name_ptr, name.size());
    const std::uint64_t data_len = r.read_u64("section payload length");
    const std::byte* data_ptr = r.read_span(data_len, "section payload");
    snap.set_bytes(name, std::vector<std::byte>(data_ptr, data_ptr + data_len));
  }
  if (r.remaining() != 0)
    throw CkptError("snapshot has trailing bytes after last section");
  return snap;
}

}  // namespace casp::ckpt
