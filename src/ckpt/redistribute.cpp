#include "ckpt/redistribute.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <set>
#include <utility>

#include "ckpt/checkpoint.hpp"
#include "common/error.hpp"
#include "sparse/triple_mat.hpp"

namespace casp::ckpt {

ResumeCache::ResumeCache(Index global_rows, Index global_cols)
    : global_rows_(global_rows), global_cols_(global_cols) {
  CASP_CHECK_MSG(global_rows >= 0 && global_cols >= 0,
                 "ResumeCache: negative global shape");
  covered_rows_.assign(static_cast<std::size_t>(global_cols), 0);
}

void ResumeCache::add_piece(CachedPiece piece) {
  CASP_CHECK_MSG(
      piece.row_start >= 0 && piece.row_count >= 0 && piece.col_start >= 0 &&
          piece.col_count >= 0 &&
          piece.row_start + piece.row_count <= global_rows_ &&
          piece.col_start + piece.col_count <= global_cols_,
      "ResumeCache: piece outside the declared global shape");
  CASP_CHECK_MSG(piece.piece.nrows() == piece.row_count &&
                     piece.piece.ncols() == piece.col_count,
                 "ResumeCache: piece matrix does not match its coordinates");
  for (Index c = piece.col_start; c < piece.col_start + piece.col_count; ++c)
    covered_rows_[static_cast<std::size_t>(c)] += piece.row_count;
  pieces_.push_back(std::move(piece));
}

bool ResumeCache::cols_covered(Index c0, Index c1) const {
  if (c0 < 0 || c1 > global_cols_) return false;
  for (Index c = c0; c < c1; ++c) {
    // Exact equality, not >=: pieces of one job tile C disjointly, so a
    // tally above global_rows means the directory mixes incompatible piece
    // sets for this column — extraction would double entries. Refusing
    // coverage degrades to recomputation, never to wrong values.
    if (covered_rows_[static_cast<std::size_t>(c)] != global_rows_)
      return false;
  }
  return true;
}

CscMat ResumeCache::extract(Index r0, Index r1, Index c0, Index c1) const {
  CASP_CHECK_MSG(0 <= r0 && r0 <= r1 && r1 <= global_rows_ && 0 <= c0 &&
                     c0 <= c1 && c1 <= global_cols_,
                 "ResumeCache::extract: range outside the global shape");
  TripleMat triples(r1 - r0, c1 - c0);
  for (const CachedPiece& p : pieces_) {
    const Index pr1 = p.row_start + p.row_count;
    const Index pc1 = p.col_start + p.col_count;
    if (pr1 <= r0 || p.row_start >= r1 || pc1 <= c0 || p.col_start >= c1)
      continue;
    const Index jlo = std::max(c0, p.col_start) - p.col_start;
    const Index jhi = std::min(c1, pc1) - p.col_start;
    for (Index j = jlo; j < jhi; ++j) {
      const Index gcol = p.col_start + j;
      const auto rows = p.piece.col_rowids(j);
      const auto vals = p.piece.col_vals(j);
      for (std::size_t k = 0; k < rows.size(); ++k) {
        const Index grow = p.row_start + rows[k];
        if (grow < r0 || grow >= r1) continue;
        triples.push_back(grow - r0, gcol - c0, vals[k]);
      }
    }
  }
  // from_triples canonicalizes (column-major sort, rows ascending) — the
  // same final order sort_final produces — and the disjoint-tiling
  // invariant means no duplicates exist to merge, so every value survives
  // bit-exactly.
  return CscMat::from_triples(std::move(triples));
}

ResumeCache redistribute_for_grid(const std::string& dir,
                                  const std::string& job_id) {
  namespace fs = std::filesystem;
  ResumeCache cache;
  std::error_code ec;
  if (dir.empty() || !fs::is_directory(dir, ec) || ec) return cache;

  // Which old ranks ever saved here? The filenames carry the rank:
  // summa-r<rank>-g<gen>.ckpt.
  std::set<int> ranks;
  const std::string prefix = std::string(kSummaCkptScope) + "-r";
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    std::size_t end = prefix.size();
    while (end < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[end])))
      ++end;
    if (end == prefix.size()) continue;
    ranks.insert(std::stoi(name.substr(prefix.size(), end - prefix.size())));
  }

  // Newest valid snapshot per rank (load_all filters the job id and skips
  // torn files — the same fallback discipline as the per-rank path).
  struct Candidate {
    LoadedSnapshot loaded;
    std::uint64_t grid_ranks = 0;
    std::uint64_t grid_layers = 0;
  };
  std::vector<Candidate> candidates;
  for (int r : ranks) {
    Checkpointer ck(dir, r, 1);
    std::vector<LoadedSnapshot> loaded = ck.load_all(kSummaCkptScope, job_id);
    if (loaded.empty()) continue;
    Candidate cand{std::move(loaded.front()), 0, 0};
    const Snapshot& snap = cand.loaded.snap;
    // Snapshots without grid facts predate the redistributable format (or
    // are from another writer) and carry no usable coordinates.
    if (!snap.has("grid_ranks") || !snap.has("grid_layers") ||
        !snap.has("global_rows") || !snap.has("global_cols") ||
        !snap.has("piece_meta"))
      continue;
    cand.grid_ranks = snap.u64("grid_ranks");
    cand.grid_layers = snap.u64("grid_layers");
    candidates.push_back(std::move(cand));
  }
  if (candidates.empty()) return cache;

  // A directory can hold snapshots from several grid epochs of the same job
  // (a job shrunk twice leaves the first degraded grid's saves next to the
  // original's). Mixing epochs could overlap pieces, so keep only the epoch
  // of the globally newest generation — the latest writer re-checkpointed
  // all recovered progress under its own grid, so nothing is lost.
  const Candidate* newest = &candidates.front();
  for (const Candidate& c : candidates)
    if (c.loaded.generation > newest->loaded.generation) newest = &c;
  const std::uint64_t epoch_ranks = newest->grid_ranks;
  const std::uint64_t epoch_layers = newest->grid_layers;

  cache = ResumeCache(
      static_cast<Index>(newest->loaded.snap.u64("global_rows")),
      static_cast<Index>(newest->loaded.snap.u64("global_cols")));
  for (const Candidate& c : candidates) {
    if (c.grid_ranks != epoch_ranks || c.grid_layers != epoch_layers)
      continue;
    const Snapshot& snap = c.loaded.snap;
    const std::vector<SummaPieceMeta> metas =
        snap.array<SummaPieceMeta>("piece_meta");
    const std::uint64_t n =
        std::min<std::uint64_t>(snap.u64("pieces"), metas.size());
    for (std::uint64_t k = 0; k < n; ++k) {
      const SummaPieceMeta& pm = metas[static_cast<std::size_t>(k)];
      cache.add_piece(CachedPiece{pm.row_start, pm.row_count, pm.col_start,
                                  pm.col_count,
                                  snap.matrix("piece" + std::to_string(k))});
    }
  }
  return cache;
}

}  // namespace casp::ckpt
