// Checkpoint snapshot format (`casp.ckpt.v1`).
//
// The paper's flagship workloads are hours-long iterative jobs
// (HipMCL-style clustering over BatchedSUMMA3D); a rank crash that forfeits
// every completed iteration makes the fault-injection layer a diagnostic,
// not a guarantee. A Snapshot is the unit of durable state: a named-section
// binary container (iteration counters, packed CSC matrices, batch
// metadata) serialized with a magic/version header and a trailing FNV-1a
// checksum. Deserialization is strict — bad magic, torn tails, section
// lengths that overrun the buffer, or a checksum mismatch all throw
// CkptError, which is how the generation store (checkpoint.hpp) tells a
// valid snapshot from a torn or corrupted one and falls back a generation.
//
// The format is host-endian: snapshots are rank-local scratch a restarted
// job reads on the same machine, not an interchange format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "sparse/csc_mat.hpp"

namespace casp::ckpt {

/// A snapshot failed to load: torn write, checksum mismatch, unknown
/// version, or a section that is absent / malformed. Recoverable by
/// construction — the store falls back to the previous generation.
class CkptError : public std::runtime_error {
 public:
  explicit CkptError(const std::string& what) : std::runtime_error(what) {}
};

/// One checkpoint: an ordered set of named byte sections with typed
/// helpers. Section names starting with "__" are reserved for the store
/// (the job-identity stamp lives in "__job").
class Snapshot {
 public:
  void set_bytes(const std::string& name, std::vector<std::byte> data) {
    sections_[name] = std::move(data);
  }
  void set_u64(const std::string& name, std::uint64_t v);
  void set_string(const std::string& name, const std::string& s);
  void set_matrix(const std::string& name, const CscMat& m);

  /// Any trivially-copyable record array (batch metadata, iteration stats).
  template <typename T>
  void set_array(const std::string& name, const std::vector<T>& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> buf(data.size() * sizeof(T));
    if (!buf.empty()) std::memcpy(buf.data(), data.data(), buf.size());
    set_bytes(name, std::move(buf));
  }

  bool has(const std::string& name) const {
    return sections_.find(name) != sections_.end();
  }
  /// Throws CkptError when the section is absent.
  const std::vector<std::byte>& bytes(const std::string& name) const;
  std::uint64_t u64(const std::string& name) const;
  std::string string(const std::string& name) const;
  CscMat matrix(const std::string& name) const;

  template <typename T>
  std::vector<T> array(const std::string& name) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte>& buf = bytes(name);
    if (buf.size() % sizeof(T) != 0)
      throw CkptError("snapshot section '" + name +
                      "' is not a whole number of records");
    std::vector<T> out(buf.size() / sizeof(T));
    if (!buf.empty()) std::memcpy(out.data(), buf.data(), buf.size());
    return out;
  }

  /// Serialize: magic, section count, (name, payload) pairs, trailing
  /// FNV-1a64 checksum over everything before it.
  std::vector<std::byte> serialize() const;
  /// Strict parse of serialize()'s output. All size arithmetic is
  /// overflow-safe (lengths are validated against the remaining buffer
  /// before any offset moves); any inconsistency throws CkptError.
  static Snapshot deserialize(const std::vector<std::byte>& buf);

 private:
  std::map<std::string, std::vector<std::byte>> sections_;
};

}  // namespace casp::ckpt
