// Checkpoint redistribution: resume a batched SUMMA job on a DIFFERENT
// grid shape than the one that wrote the snapshots.
//
// The per-rank "summa" snapshots written by batched_summa3d carry, for each
// emitted batch piece, its grid-independent global coordinates (rows x
// cols of C it covers) alongside the piece matrix. When a rank dies for
// good, the survivors cannot use the per-rank resume path — rank r's new
// local ranges no longer match rank r's old pieces — but the union of ALL
// saved pieces is still a valid partial C in global coordinates.
//
// redistribute_for_grid() scans a checkpoint directory, takes every old
// rank's newest valid snapshot for the job, and builds a ResumeCache: the
// saved pieces plus a per-global-column covered-row tally. Because the
// pieces of one job tile C disjointly (each (row, col) of C lives in
// exactly one rank's piece of one batch), a column is fully recovered iff
// its covered-row tally equals C's row count — an exact, grid-independent
// test. The relaunched job (any q'×q'×l' grid) then asks the cache batch
// by batch: a batch whose output columns are all fully covered is emitted
// from cached values (bit-exact — every value is copied, never recomputed)
// and a batch that is not falls through to normal compute. See DESIGN.md
// §5j.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "sparse/csc_mat.hpp"

namespace casp::ckpt {

/// Scope under which batched_summa3d files its checkpoints
/// (`<dir>/summa-r<rank>-g<gen>.ckpt`).
inline constexpr const char* kSummaCkptScope = "summa";

/// On-disk per-piece record of the "summa" snapshot's "piece_meta" array.
/// Defined here — next to the reader — so the writer in batched_summa3d and
/// redistribute_for_grid share one layout. The global coordinates are the
/// grid-independent half: they let a different grid shape re-shard the
/// pieces; batch_index/num_batches are only meaningful to a same-grid
/// resume.
struct SummaPieceMeta {
  Index batch_index;
  Index num_batches;
  Index rebatch_events;  ///< cumulative re-batch count at emission time
  Index row_start;       ///< global rows covered: [row_start, row_start+count)
  Index row_count;
  Index col_start;       ///< global cols covered: [col_start, col_start+count)
  Index col_count;
};

/// One saved batch piece in global coordinates. `piece` uses local indices
/// within the ranges (row 0 of `piece` is global row `row_start`).
struct CachedPiece {
  Index row_start = 0;
  Index row_count = 0;
  Index col_start = 0;
  Index col_count = 0;
  CscMat piece;
};

/// Grid-independent view of a job's recovered output prefix. Built once on
/// the launcher thread and shared read-only by every rank of the relaunch
/// (SummaOptions::resume): coverage verdicts must be identical across
/// ranks, which sharing one cache object guarantees.
class ResumeCache {
 public:
  ResumeCache() = default;
  /// Declare C's global shape. Must be called before add_piece/finalize.
  ResumeCache(Index global_rows, Index global_cols);

  bool empty() const { return pieces_.empty(); }
  std::size_t piece_count() const { return pieces_.size(); }
  Index global_rows() const { return global_rows_; }
  Index global_cols() const { return global_cols_; }

  /// Register one saved piece. Pieces must tile C disjointly (the
  /// batched_summa3d emission invariant); out-of-range pieces throw.
  void add_piece(CachedPiece piece);

  /// True iff every global column in [c0, c1) is fully covered (all
  /// global_rows rows recovered). Identical on every rank sharing the
  /// cache, so it is safe to branch collectives on the verdict.
  bool cols_covered(Index c0, Index c1) const;

  /// Assemble the [r0, r1) x [c0, c1) block of C from the cached pieces,
  /// reindexed to local coordinates with sorted columns. Values are copied
  /// bit-exactly from the saved pieces. The caller is responsible for only
  /// extracting covered regions (cols_covered); uncovered entries are
  /// simply absent from the result.
  CscMat extract(Index r0, Index r1, Index c0, Index c1) const;

 private:
  Index global_rows_ = 0;
  Index global_cols_ = 0;
  std::vector<CachedPiece> pieces_;
  /// covered_rows_[c] == global_rows_ iff column c is fully recovered.
  std::vector<Index> covered_rows_;
};

/// Build a ResumeCache for `job_id` from every rank's newest valid "summa"
/// snapshot under `dir`. Snapshots from any grid shape contribute; torn or
/// mismatched files are skipped exactly like the per-rank fallback path.
/// Returns an empty cache when the directory holds nothing usable (the
/// relaunch then recomputes from scratch).
ResumeCache redistribute_for_grid(const std::string& dir,
                                  const std::string& job_id);

}  // namespace casp::ckpt
