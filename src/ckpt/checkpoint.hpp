// Generation-numbered checkpoint store + save-cadence policy.
//
// Each rank owns its own files: `<dir>/<scope>-r<rank>-g<gen>.ckpt`, where
// `scope` separates coexisting save points ("summa" batch boundaries vs
// "mcl" iteration boundaries) and `gen` increases by one per save. Writes
// are atomic — bytes go to `<final><kTmpSuffix>` and are renamed over the
// final path only after a successful flush — and the previous generation
// is retained until the new one exists, so a torn or corrupted newest
// generation (detected by the Snapshot checksum on load) falls back to
// generation N−1 instead of losing the job.
//
// A snapshot is only resumable for the job that wrote it: save() stamps a
// caller-supplied job id (shapes, nnz, parameters, nesting tag) into the
// reserved "__job" section and load_all() filters on it, so stale
// checkpoints from a different job or iteration in the same directory are
// ignored rather than mis-restored.
//
// SPMD contract: whether checkpointing is enabled (and its cadence) must be
// uniform across ranks — consumers run resume-consensus collectives only
// when a Checkpointer is present.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "obs/recorder.hpp"

namespace casp::ckpt {

/// Suffix for in-flight checkpoint writes. The `ckpt-atomic-write` lint
/// rule keys on this: every file-open in src/ckpt/ must target a
/// `kTmpSuffix` path, never a final checkpoint path.
inline constexpr const char* kTmpSuffix = ".tmp";

struct LoadedSnapshot {
  Snapshot snap;
  std::int64_t generation = -1;
};

class Checkpointer {
 public:
  /// Default-constructed checkpointer is disabled: due() is always false
  /// and save()/load_all() must not be called.
  Checkpointer() = default;
  Checkpointer(std::string dir, int rank, std::uint64_t every = 1,
               obs::Recorder* recorder = nullptr);

  bool enabled() const { return !dir_.empty(); }
  /// True when a save is due after `completed` units of progress
  /// (batches emitted, iterations finished).
  bool due(std::uint64_t completed) const {
    return enabled() && completed > 0 && completed % every_ == 0;
  }

  /// Stamp `job_id`, serialize, and atomically write `snap` as the next
  /// generation of `scope`; generations older than the immediately
  /// previous one are pruned afterwards. Throws CkptError on I/O failure.
  void save(const std::string& scope, const std::string& job_id,
            Snapshot snap);

  /// All generations of `scope` that deserialize cleanly (checksum intact)
  /// and carry `job_id`, newest first. Torn, corrupted, or mismatched
  /// files are skipped, which is exactly the generation-fallback path.
  std::vector<LoadedSnapshot> load_all(const std::string& scope,
                                       const std::string& job_id);

  /// Record that this rank resumed from `generation` (counters
  /// `ckpt.resumes` / `ckpt.resumed_generation`).
  void note_resume(std::int64_t generation);

 private:
  std::string file_prefix(const std::string& scope) const;

  std::string dir_;
  int rank_ = 0;
  std::uint64_t every_ = 1;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace casp::ckpt
