#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "common/error.hpp"

namespace casp::ckpt {
namespace {

namespace fs = std::filesystem;

constexpr const char* kCkptExtension = ".ckpt";
constexpr const char* kJobSection = "__job";

/// Write `bytes` atomically: everything goes to the kTmpSuffix sibling and
/// only a successful flush promotes it (rename) over `final_path`. A crash
/// mid-write leaves at worst a stale tmp file, never a torn final file.
void atomic_write_file(const fs::path& final_path,
                       const std::vector<std::byte>& bytes) {
  const fs::path tmp = final_path.string() + kTmpSuffix;
  {
    std::ofstream out(final_path.string() + kTmpSuffix,
                      std::ios::binary | std::ios::trunc);
    if (!out)
      throw CkptError("cannot open checkpoint tmp file " + tmp.string());
    static_assert(std::is_trivially_copyable_v<std::byte> &&
                  sizeof(char) == sizeof(std::byte));
    if (!bytes.empty())
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good())
      throw CkptError("short write to checkpoint tmp file " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec)
    throw CkptError("cannot promote checkpoint " + final_path.string() +
                    ": " + ec.message());
}

std::vector<std::byte> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw CkptError("cannot open checkpoint " + path.string());
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  static_assert(std::is_trivially_copyable_v<std::byte> &&
                sizeof(char) == sizeof(std::byte));
  if (!bytes.empty())
    in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in.good())
    throw CkptError("short read from checkpoint " + path.string());
  return bytes;
}

/// Generations present for one prefix, newest first.
std::vector<std::pair<std::int64_t, fs::path>> list_generations(
    const fs::path& dir, const std::string& prefix) {
  std::vector<std::pair<std::int64_t, fs::path>> found;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() <= prefix.size() + std::strlen(kCkptExtension)) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    const std::size_t ext_at = name.size() - std::strlen(kCkptExtension);
    if (name.compare(ext_at, std::string::npos, kCkptExtension) != 0) continue;
    std::int64_t gen = -1;
    const char* first = name.data() + prefix.size();
    const char* last = name.data() + ext_at;
    auto [ptr, parse_ec] = std::from_chars(first, last, gen);
    if (parse_ec != std::errc{} || ptr != last || gen < 0) continue;
    found.emplace_back(gen, it->path());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

}  // namespace

Checkpointer::Checkpointer(std::string dir, int rank, std::uint64_t every,
                           obs::Recorder* recorder)
    : dir_(std::move(dir)),
      rank_(rank),
      every_(every == 0 ? 1 : every),
      recorder_(recorder) {
  CASP_CHECK_MSG(!dir_.empty(), "checkpoint directory must be non-empty");
}

std::string Checkpointer::file_prefix(const std::string& scope) const {
  return scope + "-r" + std::to_string(rank_) + "-g";
}

void Checkpointer::save(const std::string& scope, const std::string& job_id,
                        Snapshot snap) {
  CASP_CHECK_MSG(enabled(), "save() on a disabled Checkpointer");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  const std::string prefix = file_prefix(scope);
  auto existing = list_generations(dir_, prefix);
  const std::int64_t gen = existing.empty() ? 1 : existing.front().first + 1;

  snap.set_string(kJobSection, job_id);
  const fs::path final_path =
      fs::path(dir_) / (prefix + std::to_string(gen) + kCkptExtension);
  atomic_write_file(final_path, snap.serialize());

  // The freshly written generation validated (the write flushed and the
  // rename landed); everything older than gen-1 is now dead weight.
  for (const auto& [old_gen, path] : existing) {
    if (old_gen < gen - 1) fs::remove(path, ec);
  }
  if (recorder_ != nullptr) {
    recorder_->add_counter("ckpt.saves", 1);
    recorder_->set_counter("ckpt.generation", gen);
  }
}

std::vector<LoadedSnapshot> Checkpointer::load_all(const std::string& scope,
                                                   const std::string& job_id) {
  CASP_CHECK_MSG(enabled(), "load_all() on a disabled Checkpointer");
  std::vector<LoadedSnapshot> out;
  for (const auto& [gen, path] : list_generations(dir_, file_prefix(scope))) {
    try {
      Snapshot snap = Snapshot::deserialize(read_file(path));
      if (snap.string(kJobSection) != job_id) continue;
      out.push_back(LoadedSnapshot{std::move(snap), gen});
    } catch (const CkptError&) {
      // Torn or corrupted generation: skip it and keep scanning older
      // ones — this is the fallback path, not an error.
      continue;
    }
  }
  return out;
}

void Checkpointer::note_resume(std::int64_t generation) {
  if (recorder_ == nullptr) return;
  recorder_->add_counter("ckpt.resumes", 1);
  std::int64_t prev = 0;
  auto it = recorder_->counters().find("ckpt.resumed_generation");
  if (it != recorder_->counters().end()) prev = it->second;
  recorder_->set_counter("ckpt.resumed_generation",
                         std::max(prev, generation));
}

}  // namespace casp::ckpt
