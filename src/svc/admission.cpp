#include "svc/admission.hpp"

#include <sstream>

#include "common/math.hpp"
#include "grid/dist.hpp"
#include "grid/grid3d.hpp"
#include "summa/symbolic3d.hpp"
#include "vmpi/runtime.hpp"

namespace casp::svc {

AdmissionEstimate estimate_admission(const JobSpec& spec, const CscMat& a,
                                     const CscMat& b) {
  AdmissionEstimate est;

  // Scratch symbolic job: explicitly fault-free (admission must never be
  // perturbed by a tenant's chaos plan or by CASP_VMPI_FAULTS) and with an
  // unlimited budget so symbolic3d reports the maxima instead of throwing.
  SymbolicResult sym;
  vmpi::RunOptions scratch;
  scratch.faults = vmpi::FaultPlan{};
  vmpi::run(
      spec.ranks,
      [&](vmpi::Comm& world) {
        Grid3D grid(world, spec.layers);
        DistMat3D da = distribute_a_style(grid, a);
        DistMat3D db = distribute_b_style(grid, b);
        SummaOptions opts = spec.summa_options();
        SymbolicResult local =
            symbolic3d(grid, da.local, db.local, /*total_memory=*/0, opts);
        if (world.rank() == 0) sym = std::move(local);
      },
      scratch);

  obs::JobAdmission& adm = est.admission;
  adm.max_nnz_a = sym.max_nnz_a;
  adm.max_nnz_b = sym.max_nnz_b;
  adm.max_nnz_c = sym.max_nnz_c;

  const Bytes r = kBytesPerNonzero;
  adm.input_bytes =
      r * static_cast<Bytes>(sym.max_nnz_a + sym.max_nnz_b);
  if (spec.memory_bytes == 0) {
    // Unlimited budget: Eq. (2) degenerates to b = 1.
    adm.fits = true;
    adm.batches = 1;
    adm.per_process_share = 0;
    return est;
  }

  adm.per_process_share = spec.memory_bytes / static_cast<Bytes>(spec.ranks);
  if (adm.per_process_share <= adm.input_bytes) {
    // Eq. (2) denominator M/p - r*(maxnnzA + maxnnzB) <= 0: the inputs
    // alone overflow the most loaded process; no batch count helps.
    adm.fits = false;
    adm.batches = 0;
    std::ostringstream os;
    os << "admission: Eq. (2) denominator non-positive — per-process share "
       << adm.per_process_share << " B (M=" << spec.memory_bytes << " B / p="
       << spec.ranks << ") <= input footprint " << adm.input_bytes
       << " B (r=" << r << " B/nnz * (maxnnzA=" << adm.max_nnz_a
       << " + maxnnzB=" << adm.max_nnz_b
       << ")); batching cannot make the inputs fit";
    est.reason = os.str();
    return est;
  }

  adm.fits = true;
  adm.batches = std::max<Index>(
      1, ceil_div(static_cast<Index>(r) * sym.max_nnz_c,
                  static_cast<Index>(adm.per_process_share - adm.input_bytes)));
  return est;
}

Bytes reservation_bytes(const JobSpec& spec, const obs::JobAdmission& a) {
  if (spec.memory_bytes > 0) return spec.memory_bytes;
  const Bytes r = kBytesPerNonzero;
  return static_cast<Bytes>(spec.ranks) * r *
         static_cast<Bytes>(a.max_nnz_a + a.max_nnz_b + a.max_nnz_c);
}

}  // namespace casp::svc
