#include "svc/quota.hpp"

namespace casp::svc {

void TenantLedger::bill(const obs::JobBilling& bill,
                        const vmpi::RunResult& run) {
  messages_billed_ += bill.messages;
  logical_billed_ += bill.logical_bytes;
  shipped_billed_ += bill.shipped_bytes;
  restarts_billed_ += bill.restarts;
  for (const vmpi::TrafficStats& stats : run.traffic)
    for (const auto& [phase, t] : stats.per_phase())
      logical_by_phase_[phase] += t.bytes;
}

obs::Json TenantLedger::report() const {
  obs::Json j = obs::Json::object();
  j.set("schema", "casp.tenant_report.v1");
  j.set("tenant", name_);

  obs::Json q = obs::Json::object();
  q.set("memory_bytes", quota_.memory_bytes);
  q.set("traffic_bytes", quota_.traffic_bytes);
  j.set("quota", std::move(q));

  obs::Json mem = obs::Json::object();
  mem.set("reserved_bytes", reserved());
  mem.set("peak_reserved_bytes", peak_reserved());
  j.set("memory", std::move(mem));

  obs::Json traffic = obs::Json::object();
  traffic.set("messages", messages_billed_);
  traffic.set("logical_bytes", logical_billed_);
  traffic.set("shipped_bytes", shipped_billed_);
  traffic.set("restarts", restarts_billed_);
  traffic.set("exhausted", traffic_exhausted());
  obs::Json phases = obs::Json::object();
  for (const auto& [phase, bytes] : logical_by_phase_)
    phases.set(phase, bytes);
  traffic.set("logical_bytes_by_phase", std::move(phases));
  j.set("traffic", std::move(traffic));

  obs::Json jobs = obs::Json::object();
  for (const auto& [state, count] : jobs_by_state_) jobs.set(state, count);
  j.set("jobs_by_state", std::move(jobs));
  return j;
}

}  // namespace casp::svc
